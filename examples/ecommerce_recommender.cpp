// E-commerce scenario (the paper's Amazon Clothing/Toys setting): many users
// with *short, sparse* histories — the regime the paper's introduction
// motivates and where self-supervised signals matter most. Trains the
// popularity baseline, SASRec, and Meta-SGCL, then breaks results down by
// history length to show where the contrastive-generative signal pays off.
//
// Run: ./build/examples/ecommerce_recommender [--quick]
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "models/pop.h"
#include "models/sasrec.h"

namespace {

using namespace msgcl;

/// HR@10 restricted to users whose training history length is in [lo, hi).
double Hr10ForCohort(eval::Ranker& model, const data::SequenceDataset& ds, int64_t max_len,
                     size_t lo, size_t hi) {
  std::vector<std::vector<int32_t>> inputs;
  std::vector<int32_t> targets;
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    const size_t len = ds.train_seqs[u].size();
    if (len < lo || len >= hi) continue;
    inputs.push_back(ds.TestInput(u));
    targets.push_back(ds.test_targets[u]);
  }
  if (inputs.empty()) return 0.0;
  eval::MetricAccumulator acc({5, 10});
  const int64_t N1 = ds.num_items + 1;
  for (size_t start = 0; start < inputs.size(); start += 128) {
    std::vector<int32_t> rows;
    for (size_t u = start; u < std::min(inputs.size(), start + 128); ++u) {
      rows.push_back(static_cast<int32_t>(u));
    }
    data::Batch b = data::MakeEvalBatch(inputs, rows, max_len);
    std::vector<float> scores = model.ScoreAll(b);
    for (int64_t i = 0; i < b.batch_size; ++i) {
      std::vector<float> row(scores.begin() + i * N1, scores.begin() + (i + 1) * N1);
      acc.Add(eval::RankOfTarget(row, targets[rows[i]]));
    }
  }
  return acc.Hr(10);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  data::SyntheticConfig cfg = data::ClothingLike(quick ? 0.08 : 0.25);
  data::InteractionLog log = data::GenerateSynthetic(cfg).value();
  data::SequenceDataset ds = data::LeaveOneOutSplit(log);
  const int64_t max_len = 16;
  std::printf("e-commerce log: %d shoppers, %d products, sparsity %.2f%%\n",
              log.num_users(), log.num_items, 100.0 * log.sparsity());

  models::TrainConfig train;
  train.epochs = quick ? 6 : 30;
  train.max_len = max_len;
  train.lr = 3e-3f;          // calibrated for this scale
  train.eval_every = 2;      // early stopping on validation NDCG@10


  models::BackboneConfig backbone;
  backbone.num_items = ds.num_items;
  backbone.max_len = max_len;
  backbone.dim = 32;
  backbone.layers = 1;

  eval::EvalConfig ecfg;
  ecfg.max_len = max_len;

  models::Pop pop;
  pop.Fit(ds);
  models::SasRec sasrec(backbone, train, Rng(21));
  std::printf("training SASRec...\n");
  sasrec.Fit(ds);
  core::MetaSgclConfig mcfg;
  mcfg.backbone = backbone;
  mcfg.beta = 0.3f;  // the paper's Clothing setting
  mcfg.alpha = 0.1f;
  mcfg.use_decoder = false;
  core::MetaSgcl metasgcl(mcfg, train, Rng(22));
  std::printf("training Meta-SGCL...\n");
  metasgcl.Fit(ds);

  std::printf("\n%-12s %s\n", "Pop", eval::Evaluate(pop, ds, eval::Split::kTest, ecfg).ToString().c_str());
  std::printf("%-12s %s\n", "SASRec",
              eval::Evaluate(sasrec, ds, eval::Split::kTest, ecfg).ToString().c_str());
  std::printf("%-12s %s\n", "Meta-SGCL",
              eval::Evaluate(metasgcl, ds, eval::Split::kTest, ecfg).ToString().c_str());

  // Cohort breakdown: short histories are where SSL should help most.
  std::printf("\nHR@10 by training-history length:\n");
  std::printf("%-12s %10s %10s %10s\n", "model", "len<5", "5..8", ">=8");
  struct Cohort { size_t lo, hi; };
  const Cohort cohorts[] = {{0, 5}, {5, 8}, {8, 100000}};
  for (auto* model : std::initializer_list<eval::Ranker*>{&pop, &sasrec, &metasgcl}) {
    std::printf("%-12s", model->name().c_str());
    for (const auto& c : cohorts) {
      std::printf(" %10.4f", Hr10ForCohort(*model, ds, max_len, c.lo, c.hi));
    }
    std::printf("\n");
  }
  return 0;
}
