// Quickstart: the 60-line tour of the public API.
//
//   1. generate a synthetic interaction log (stand-in for real data)
//   2. split it leave-one-out
//   3. train Meta-SGCL
//   4. evaluate HR/NDCG on the held-out items
//   5. produce top-5 recommendations for one user
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"

int main() {
  using namespace msgcl;

  // 1. A small synthetic dataset (see data/synthetic.h for presets).
  data::InteractionLog log = data::GenerateSynthetic(data::TinyDataset()).value();
  std::printf("dataset: %d users, %d items, %lld interactions\n", log.num_users(),
              log.num_items, static_cast<long long>(log.num_interactions()));

  // 2. Leave-one-out split: last item = test, penultimate = validation.
  data::SequenceDataset ds = data::LeaveOneOutSplit(log);

  // 3. Configure and train Meta-SGCL.
  core::MetaSgclConfig config;
  config.backbone.num_items = ds.num_items;
  config.backbone.max_len = 12;
  config.backbone.dim = 16;
  config.backbone.layers = 1;   // scaled-down setting (see EXPERIMENTS.md)
  config.alpha = 0.1f;          // contrastive weight
  config.beta = 0.2f;           // KL weight
  config.use_decoder = false;   // score from the latent (Eq. 21-22)

  models::TrainConfig train;
  train.epochs = 25;
  train.max_len = 12;
  train.batch_size = 64;
  train.lr = 3e-3f;  // calibrated for this scale

  core::MetaSgcl model(config, train, Rng(7));
  std::printf("training %s (%lld parameters)...\n", model.name().c_str(),
              static_cast<long long>(model.NumParameters()));
  model.Fit(ds);

  // 4. Evaluate on the held-out test items (full ranking over all items).
  eval::EvalConfig eval_cfg;
  eval_cfg.max_len = 12;
  eval::Metrics metrics = eval::Evaluate(model, ds, eval::Split::kTest, eval_cfg);
  std::printf("test metrics: %s\n", metrics.ToString().c_str());

  // 5. Top-5 next-item recommendations for user 0.
  const int32_t user = 0;
  data::Batch batch = data::MakeEvalBatch({ds.TestInput(user)}, {0}, 12);
  std::vector<float> scores = model.ScoreAll(batch);
  std::vector<int32_t> items(ds.num_items);
  std::iota(items.begin(), items.end(), 1);
  std::partial_sort(items.begin(), items.begin() + 5, items.end(),
                    [&](int32_t a, int32_t b) { return scores[a] > scores[b]; });
  std::printf("user %d history ends with item %d; top-5 recommendations:", user,
              ds.TestInput(user).back());
  for (int i = 0; i < 5; ++i) std::printf(" %d", items[i]);
  std::printf("\n");
  return 0;
}
