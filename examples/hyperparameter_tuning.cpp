// Hyper-parameter tuning scenario: use the grid-search tuner to pick
// Meta-SGCL's alpha/beta on validation data (the workflow behind the
// paper's RQ4 analysis), then train the winner to convergence and report
// test metrics plus a significance check against SASRec.
//
// Run: ./build/examples/hyperparameter_tuning [--quick]
#include <cstdio>
#include <cstring>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "models/sasrec.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  auto log = data::GenerateSynthetic(data::ToysLike(quick ? 0.08 : 0.2)).value();
  auto ds = data::LeaveOneOutSplit(log);
  const int64_t max_len = 16;
  std::printf("dataset: %d users, %d items\n", ds.num_users(), ds.num_items);

  models::TrainConfig tune_train;
  tune_train.epochs = quick ? 2 : 10;  // cheap runs during the search
  tune_train.max_len = max_len;
  tune_train.lr = 3e-3f;

  core::MetaSgclConfig base;
  base.backbone.num_items = ds.num_items;
  base.backbone.max_len = max_len;
  base.backbone.dim = 32;
  base.backbone.layers = 1;
  base.use_decoder = false;

  core::TuneGrid grid;
  grid.alphas = quick ? std::vector<float>{0.1f} : std::vector<float>{0.03f, 0.1f};
  grid.betas = quick ? std::vector<float>{0.2f} : std::vector<float>{0.1f, 0.2f, 0.3f};

  std::printf("grid searching %zu configurations...\n",
              std::max<size_t>(1, grid.alphas.size()) *
                  std::max<size_t>(1, grid.betas.size()));
  auto results = core::GridSearch(base, tune_train, ds, grid, /*seed=*/7,
                                  /*verbose=*/true);
  const auto& best = results.front();
  std::printf("best: alpha=%.3f beta=%.2f (val NDCG@10 %.4f)\n", best.config.alpha,
              best.config.beta, best.val_ndcg10);

  // Final training run at full budget with the winning configuration.
  models::TrainConfig full_train = tune_train;
  full_train.epochs = quick ? 4 : 30;
  full_train.eval_every = 2;
  core::MetaSgcl model(best.config, full_train, Rng(8));
  model.Fit(ds);

  models::BackboneConfig sas_cfg = best.config.backbone;
  models::SasRec sasrec(sas_cfg, full_train, Rng(9));
  sasrec.Fit(ds);

  eval::EvalConfig ecfg;
  ecfg.max_len = max_len;
  std::printf("\nSASRec     %s\n",
              eval::Evaluate(sasrec, ds, eval::Split::kTest, ecfg).ToString().c_str());
  std::printf("Meta-SGCL  %s\n",
              eval::Evaluate(model, ds, eval::Split::kTest, ecfg).ToString().c_str());

  // Is the gap meaningful? Paired bootstrap over per-user NDCG@10.
  auto a = eval::PerUserNdcg10(model, ds, eval::Split::kTest, ecfg);
  auto b = eval::PerUserNdcg10(sasrec, ds, eval::Split::kTest, ecfg);
  Rng boot_rng(10);
  auto sig = eval::PairedBootstrap(a, b, boot_rng, quick ? 200 : 2000);
  std::printf("paired bootstrap: Meta-SGCL %.4f vs SASRec %.4f, p ~= %.3f\n", sig.mean_a,
              sig.mean_b, sig.p_value);
  return 0;
}
