// Movie-recommendation scenario (the paper's ML-1M setting): long, dense
// viewing histories. Trains SASRec and Meta-SGCL on an ML-1M-like log,
// compares their ranking quality, and walks one user's recommendation list
// with the latent "genre" (cluster) of each movie, showing that the
// recommender respects the viewer's recent genre trajectory.
//
// Run: ./build/examples/movie_recommender [--quick]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "models/sasrec.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  // An ML-1M-like log: few users, long dense sequences.
  data::SyntheticConfig cfg = data::Ml1mLike(quick ? 1.0 : 1.0);
  if (quick) {
    cfg.num_users = 150;
    cfg.avg_length = 30;
    cfg.min_length = 8;
  }
  data::InteractionLog log = data::GenerateSynthetic(cfg).value();
  data::SequenceDataset ds = data::LeaveOneOutSplit(log);
  const int64_t max_len = quick ? 24 : 50;
  std::printf("MovieLens-like log: %d viewers, %d movies, avg history %.1f\n",
              log.num_users(), log.num_items, log.avg_length());

  models::TrainConfig train;
  train.epochs = quick ? 6 : 30;
  train.max_len = max_len;
  train.lr = 3e-3f;          // calibrated for this scale
  train.eval_every = 2;      // early stopping on validation NDCG@10


  models::BackboneConfig backbone;
  backbone.num_items = ds.num_items;
  backbone.max_len = max_len;
  backbone.dim = 32;
  backbone.layers = 1;

  eval::EvalConfig ecfg;
  ecfg.max_len = max_len;

  models::SasRec sasrec(backbone, train, Rng(11));
  std::printf("training %s...\n", sasrec.name().c_str());
  sasrec.Fit(ds);
  eval::Metrics ms = eval::Evaluate(sasrec, ds, eval::Split::kTest, ecfg);

  core::MetaSgclConfig mcfg;
  mcfg.backbone = backbone;
  mcfg.alpha = 0.1f;
  mcfg.use_decoder = false;
  core::MetaSgcl metasgcl(mcfg, train, Rng(12));
  std::printf("training %s...\n", metasgcl.name().c_str());
  metasgcl.Fit(ds);
  eval::Metrics mm = eval::Evaluate(metasgcl, ds, eval::Split::kTest, ecfg);

  std::printf("\n%-12s %s\n", "SASRec", ms.ToString().c_str());
  std::printf("%-12s %s\n\n", "Meta-SGCL", mm.ToString().c_str());

  // Inspect one viewer: recent genres vs recommended genres.
  const int32_t K = cfg.num_clusters;
  auto genre_of = [K](int32_t movie) { return (movie - 1) % K; };
  const int32_t user = 3;
  auto history = ds.TestInput(user);
  std::printf("viewer %d's last 5 movies (genre):", user);
  for (size_t i = history.size() >= 5 ? history.size() - 5 : 0; i < history.size(); ++i) {
    std::printf(" %d(g%d)", history[i], genre_of(history[i]));
  }
  data::Batch batch = data::MakeEvalBatch({history}, {0}, max_len);
  std::vector<float> scores = metasgcl.ScoreAll(batch);
  std::vector<int32_t> items(ds.num_items);
  std::iota(items.begin(), items.end(), 1);
  std::partial_sort(items.begin(), items.begin() + 5, items.end(),
                    [&](int32_t a, int32_t b) { return scores[a] > scores[b]; });
  std::printf("\nMeta-SGCL's top-5 next movies (genre):");
  for (int i = 0; i < 5; ++i) std::printf(" %d(g%d)", items[i], genre_of(items[i]));
  std::printf("\nheld-out next movie: %d(g%d)\n", ds.test_targets[user],
              genre_of(ds.test_targets[user]));
  return 0;
}
