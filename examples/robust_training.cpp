// Robust-training scenario (the paper's RQ5): production interaction logs
// carry accidental clicks and bot traffic. This example injects 20% random
// items into every training sequence and compares how much SASRec and
// Meta-SGCL lose relative to their clean-data performance.
//
// Run: ./build/examples/robust_training [--quick]
#include <cstdio>
#include <cstring>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "models/sasrec.h"

namespace {

using namespace msgcl;

template <typename MakeModel>
void Compare(const char* name, MakeModel make, const data::SequenceDataset& clean,
             const data::SequenceDataset& noisy, const eval::EvalConfig& ecfg) {
  auto clean_model = make(1);
  clean_model->Fit(clean);
  eval::Metrics mc = eval::Evaluate(*clean_model, clean, eval::Split::kTest, ecfg);
  auto noisy_model = make(2);
  noisy_model->Fit(noisy);
  // Test targets are identical in both splits; only training data differs.
  eval::Metrics mn = eval::Evaluate(*noisy_model, clean, eval::Split::kTest, ecfg);
  const double drop = mc.hr10 > 0 ? 100.0 * (1.0 - mn.hr10 / mc.hr10) : 0.0;
  std::printf("%-12s clean HR@10 %.4f -> noisy HR@10 %.4f (drop %.1f%%)\n", name, mc.hr10,
              mn.hr10, drop);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  data::SyntheticConfig cfg = data::ToysLike(quick ? 0.08 : 0.25);
  data::SequenceDataset clean =
      data::LeaveOneOutSplit(data::GenerateSynthetic(cfg).value());
  Rng noise_rng(3);
  data::SequenceDataset noisy = data::InjectTrainingNoise(clean, 0.2, noise_rng);
  const int64_t max_len = 16;
  std::printf("injected 20%% random items into %d training sequences\n",
              clean.num_users());

  models::TrainConfig train;
  train.epochs = quick ? 6 : 30;
  train.max_len = max_len;
  train.lr = 3e-3f;          // calibrated for this scale
  train.eval_every = 2;      // early stopping on validation NDCG@10


  models::BackboneConfig backbone;
  backbone.num_items = clean.num_items;
  backbone.max_len = max_len;
  backbone.dim = 32;
  backbone.layers = 1;

  eval::EvalConfig ecfg;
  ecfg.max_len = max_len;

  Compare("SASRec",
          [&](uint64_t seed) {
            return std::make_unique<models::SasRec>(backbone, train, Rng(seed));
          },
          clean, noisy, ecfg);
  Compare("Meta-SGCL",
          [&](uint64_t seed) {
            core::MetaSgclConfig c;
            c.backbone = backbone;
            c.alpha = 0.1f;
            c.use_decoder = false;
            return std::make_unique<core::MetaSgcl>(c, train, Rng(seed));
          },
          clean, noisy, ecfg);
  std::printf("\nexpected: Meta-SGCL's generative views make it degrade less\n");
  return 0;
}
