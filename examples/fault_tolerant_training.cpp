// Fault-tolerant training demo: the runtime surviving faults that would
// silently ruin (or simply lose) an unguarded run.
//
//   1. inject a NaN gradient mid-training; the numeric-health guard detects
//      it, rolls back to the last healthy snapshot, decays the lr, and
//      retries — the run finishes with finite weights and reports the event
//   2. checkpoint every epoch, "kill" the run at epoch 3, resume from the
//      v2 train state, and verify the weights are bit-identical to an
//      uninterrupted run with the same seed
//   3. bit-flip the checkpoint file and show the CRC32 footer rejecting it
//
// Build & run:  cmake --build build && ./build/examples/fault_tolerant_training
#include <cstdio>
#include <cstdlib>

#include "data/data.h"
#include "eval/eval.h"
#include "models/models.h"
#include "runtime/runtime.h"

int main() {
  using namespace msgcl;

  data::InteractionLog log = data::GenerateSynthetic(data::TinyDataset()).value();
  data::SequenceDataset ds = data::LeaveOneOutSplit(log);

  models::BackboneConfig backbone;
  backbone.num_items = ds.num_items;
  backbone.max_len = 12;
  backbone.dim = 16;
  backbone.layers = 1;

  models::TrainConfig train;
  train.epochs = 6;
  train.max_len = 12;
  train.batch_size = 64;
  train.lr = 3e-3f;
  train.seed = 7;

  // ---- 1. Survive an injected NaN gradient -------------------------------
  std::printf("== 1. NaN gradient injection ==\n");
  runtime::FaultPlan plan;
  plan.corrupt_grad_steps = {4};  // poison the gradients of global step 4
  plan.kind = runtime::FaultKind::kNaN;
  runtime::FaultInjector injector(plan);

  models::FitHistory history;
  models::TrainConfig faulty = train;
  faulty.fault_injector = &injector;
  faulty.history = &history;
  faulty.recovery.policy = runtime::RecoveryPolicy::kRollbackRetry;
  faulty.recovery.max_retries = 3;

  models::SasRec survivor(backbone, faulty, Rng(7));
  Status s = survivor.Fit(ds);
  std::printf("training status: %s\n", s.ToString().c_str());
  std::printf("weights finite after recovery: %s\n",
              nn::AllFinite(survivor.Parameters()) ? "yes" : "NO");
  for (const auto& e : history.recovery_events) {
    std::printf("recovery event: epoch %lld step %lld — %s\n",
                static_cast<long long>(e.epoch), static_cast<long long>(e.global_step),
                e.detail.c_str());
  }

  // Contrast: the same fault under the fail-fast policy aborts the run.
  injector.Reset();
  models::TrainConfig strict = faulty;
  strict.history = nullptr;
  strict.recovery.policy = runtime::RecoveryPolicy::kAbort;
  models::SasRec doomed(backbone, strict, Rng(7));
  std::printf("same fault with --recovery=abort: %s\n", doomed.Fit(ds).ToString().c_str());

  // ---- 2. Kill at epoch 3, resume bit-exactly ----------------------------
  std::printf("\n== 2. resumable v2 checkpoint ==\n");
  const char* state_path = "fault_demo.state";

  models::TrainConfig full = train;
  models::SasRec uninterrupted(backbone, full, Rng(7));
  (void)uninterrupted.Fit(ds);

  models::TrainConfig first_leg = train;
  first_leg.epochs = 3;  // "the process dies after epoch 3"
  first_leg.checkpoint_path = state_path;
  models::SasRec killed(backbone, first_leg, Rng(7));
  (void)killed.Fit(ds);

  models::TrainConfig second_leg = train;  // same 6-epoch target
  second_leg.resume_from = state_path;
  models::SasRec resumed(backbone, second_leg, Rng(7));
  s = resumed.Fit(ds);
  std::printf("resume status: %s\n", s.ToString().c_str());

  bool identical = true;
  auto a = uninterrupted.Parameters(), b = resumed.Parameters();
  for (size_t i = 0; i < a.size() && identical; ++i) identical = a[i].data() == b[i].data();
  std::printf("resumed weights identical to uninterrupted run: %s\n",
              identical ? "yes" : "NO");

  // ---- 3. Corrupt the checkpoint, watch the CRC reject it ----------------
  std::printf("\n== 3. corrupted checkpoint rejection ==\n");
  (void)injector.BitFlipFile(state_path, /*num_flips=*/1, /*skip_prefix=*/64);
  models::SasRec victim(backbone, second_leg, Rng(7));
  s = victim.Fit(ds);
  std::printf("load of bit-flipped state: %s\n", s.ToString().c_str());
  std::remove(state_path);
  return 0;
}
