// Extension ablation (DESIGN.md §5): sensitivity to the stage-2 (meta) step
// size. The paper fixes the meta encoder's learning rate to the main rate;
// this sweep asks how much that choice matters.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  auto datasets = bench::MakeDatasets(scale, seed);
  datasets.resize(2);

  std::printf("== Meta-step-size ablation (scale=%.2f, epochs=%lld) ==\n", scale,
              static_cast<long long>(epochs));
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-10s %8s %8s %8s %8s\n", "lr scale", "HR@5", "HR@10", "NDCG@5",
                "NDCG@10");
    for (double s : quick ? std::vector<double>{1.0}
                          : std::vector<double>{0.1, 0.5, 1.0, 2.0, 10.0}) {
      core::MetaSgclConfig c;
      c.backbone = bench::MakeBackbone(ds, bench::HyperParams{});
      c.beta = ds.beta;
      c.meta_lr_scale = static_cast<float>(s);
      core::MetaSgcl model(c, bench::MakeTrainConfig(ds, epochs, seed), Rng(seed));
      auto r = bench::TrainAndEvaluate(model, ds);
      std::printf("%-10g %8.4f %8.4f %8.4f %8.4f\n", s, r.metrics.hr5, r.metrics.hr10,
                  r.metrics.ndcg5, r.metrics.ndcg10);
      std::fflush(stdout);
    }
  }
  return 0;
}
