// Fig. 5 (RQ5): robustness to noisy training interactions. A proportion
// {0, 10%, ..., 50%} of random items is injected into every training
// sequence; SASRec, DuoRec and Meta-SGCL are retrained and tested on the
// clean held-out targets.
// Paper shape: all models degrade with noise; self-supervised models
// (DuoRec, Meta-SGCL) degrade more slowly; Meta-SGCL is the most robust —
// at 10% noise it still beats the others trained on clean data.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  auto datasets = bench::MakeDatasets(scale, seed);
  datasets.resize(2);  // Toys and Clothing, as in the paper's Fig. 5

  const std::vector<double> ratios =
      quick ? std::vector<double>{0.0, 0.3}
            : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<std::string> model_names = {"SASRec", "DuoRec", "Meta-SGCL"};

  std::printf("== Fig. 5: robustness to noisy training data (scale=%.2f, epochs=%lld) ==\n",
              scale, static_cast<long long>(epochs));
  for (auto& ds : datasets) {
    std::printf("\n-- %s (HR@10 by noise ratio) --\n", ds.name.c_str());
    std::printf("%-12s", "model");
    for (double r : ratios) std::printf(" %7.0f%%", 100.0 * r);
    std::printf("\n");
    for (const auto& name : model_names) {
      std::printf("%-12s", name.c_str());
      for (double ratio : ratios) {
        Rng noise_rng(seed + static_cast<uint64_t>(1000 * ratio));
        bench::DatasetSpec noisy = ds;
        noisy.split = data::InjectTrainingNoise(ds.split, ratio, noise_rng);
        bench::HyperParams hp;
        auto model = bench::MakeModel(name, noisy, hp, epochs, seed);
        auto r = bench::TrainAndEvaluate(*model, noisy);
        std::printf(" %8.4f", r.metrics.hr10);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper shape: all degrade with noise; Meta-SGCL degrades the least\n");
  return 0;
}
