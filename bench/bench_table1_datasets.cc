// Table I: dataset statistics. Regenerates the statistics table for the
// three synthetic stand-ins and prints the paper's reported values alongside
// (scaled ~1/10; the calibration targets are avg. length and the sparsity
// ordering, not absolute counts).
#include <cstdio>

#include "bench_util.h"

namespace {

struct PaperRow {
  const char* name;
  int users;
  int items;
  long interactions;
  double avg_length;
  double sparsity;
};

constexpr PaperRow kPaper[] = {
    {"Clothing", 39387, 23033, 278677, 7.1, 0.9997},
    {"Toys", 19412, 11924, 167597, 8.6, 0.9993},
    {"ML-1M", 6040, 3416, 999611, 165.5, 0.9516},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", flags.GetBool("quick") ? 0.1 : 1.0);
  const uint64_t seed = flags.GetInt("seed", 42);

  std::printf("== Table I: dataset statistics (scale=%.2f) ==\n", scale);
  std::printf("%-10s %9s %9s %13s %10s %9s   (paper: avg.len, sparsity)\n", "dataset",
              "users", "items", "interactions", "avg.len", "sparsity");
  std::vector<data::SyntheticConfig> configs = {
      data::ClothingLike(scale, seed), data::ToysLike(scale, seed + 1),
      data::Ml1mLike(std::max(scale, 1.0), seed + 2)};
  for (size_t i = 0; i < configs.size(); ++i) {
    auto log = data::GenerateSynthetic(configs[i]).value();
    std::printf("%-10s %9d %9d %13lld %10.1f %8.2f%%   (%.1f, %.2f%%)\n",
                kPaper[i].name, log.num_users(), log.num_items,
                static_cast<long long>(log.num_interactions()), log.avg_length(),
                100.0 * log.sparsity(), kPaper[i].avg_length,
                100.0 * kPaper[i].sparsity);
  }
  return 0;
}
