// Table II (RQ1): overall performance comparison of all eleven models on the
// three datasets, reporting HR@{5,10} and NDCG@{5,10} plus the relative
// improvement of Meta-SGCL over the best baseline.
//
// Paper shape to reproduce: Pop/BPR-MF < GRU4Rec/Caser < SASRec/BERT4Rec <
// VSAN/ACVAE < DuoRec/ContrastVAE < Meta-SGCL, with Meta-SGCL improving a
// few-to-twenty percent over the strongest baseline on each dataset.
#include <cstdio>

#include "bench_util.h"

namespace {

// Paper-reported Table II values [dataset][model] for HR@5, HR@10, N@5, N@10.
struct PaperCell {
  double hr5, hr10, n5, n10;
};
const std::map<std::string, std::map<std::string, PaperCell>> kPaper = {
    {"Clothing",
     {{"Pop", {0.0042, 0.0076, 0.0032, 0.0045}},
      {"BPR-MF", {0.0067, 0.0094, 0.0052, 0.0069}},
      {"GRU4Rec", {0.0095, 0.0165, 0.0061, 0.0083}},
      {"Caser", {0.0108, 0.0174, 0.0067, 0.0098}},
      {"SASRec", {0.0168, 0.0272, 0.0091, 0.0124}},
      {"BERT4Rec", {0.0125, 0.0208, 0.0075, 0.0102}},
      {"VSAN", {0.0152, 0.0246, 0.0090, 0.0106}},
      {"ACVAE", {0.0164, 0.0255, 0.0098, 0.0120}},
      {"DuoRec", {0.0193, 0.0302, 0.0113, 0.0148}},
      {"ContrastVAE", {0.0159, 0.0283, 0.0102, 0.0135}},
      {"Meta-SGCL", {0.0216, 0.0309, 0.0142, 0.0167}}}},
    {"Toys",
     {{"Pop", {0.0065, 0.0090, 0.0044, 0.0052}},
      {"BPR-MF", {0.0120, 0.0179, 0.0067, 0.0090}},
      {"GRU4Rec", {0.0121, 0.0184, 0.0077, 0.0097}},
      {"Caser", {0.0205, 0.0333, 0.0125, 0.0168}},
      {"SASRec", {0.0429, 0.0652, 0.0248, 0.0320}},
      {"BERT4Rec", {0.0371, 0.0524, 0.0259, 0.0309}},
      {"VSAN", {0.0472, 0.0689, 0.0328, 0.0395}},
      {"ACVAE", {0.0457, 0.0663, 0.0291, 0.0364}},
      {"DuoRec", {0.0539, 0.0744, 0.0340, 0.0406}},
      {"ContrastVAE", {0.0548, 0.0760, 0.0353, 0.0441}},
      {"Meta-SGCL", {0.0642, 0.0907, 0.0420, 0.0506}}}},
    {"ML-1M",
     {{"Pop", {0.0078, 0.0162, 0.0052, 0.0079}},
      {"BPR-MF", {0.0068, 0.0162, 0.0052, 0.0079}},
      {"GRU4Rec", {0.0763, 0.1658, 0.0385, 0.0671}},
      {"Caser", {0.0816, 0.1593, 0.0372, 0.0624}},
      {"SASRec", {0.1087, 0.1904, 0.0638, 0.0910}},
      {"BERT4Rec", {0.0733, 0.1323, 0.0432, 0.0619}},
      {"VSAN", {0.1210, 0.1815, 0.0634, 0.0881}},
      {"ACVAE", {0.1356, 0.2033, 0.0837, 0.1145}},
      {"DuoRec", {0.2038, 0.2946, 0.1390, 0.1680}},
      {"ContrastVAE", {0.1152, 0.1894, 0.0687, 0.0935}},
      {"Meta-SGCL", {0.2387, 0.3560, 0.1622, 0.1953}}}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.25);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 40);
  const uint64_t seed = flags.GetInt("seed", 42);
  const std::string only = flags.GetString("models", "");
  const std::string only_ds = flags.GetString("datasets", "");

  std::vector<std::string> model_names = {"Pop",    "BPR-MF",   "GRU4Rec", "Caser",
                                          "SASRec", "BERT4Rec", "VSAN",    "ACVAE",
                                          "DuoRec", "ContrastVAE", "Meta-SGCL"};
  if (!only.empty()) {
    std::vector<std::string> filtered;
    for (const auto& m : model_names) {
      if (only.find(m) != std::string::npos) filtered.push_back(m);
    }
    model_names = filtered;
  }

  std::printf("== Table II: overall performance (scale=%.2f, epochs=%lld) ==\n", scale,
              static_cast<long long>(epochs));
  auto datasets = bench::MakeDatasets(scale, seed);
  for (auto& ds : datasets) {
    if (!only_ds.empty() && only_ds.find(ds.name) == std::string::npos) continue;
    std::printf("\n-- %s: %d users, %d items --\n", ds.name.c_str(), ds.split.num_users(),
                ds.split.num_items);
    std::printf("%-14s %8s %8s %8s %8s %8s   (paper HR@10, N@10)\n", "model", "HR@5",
                "HR@10", "NDCG@5", "NDCG@10", "sec");
    double best_baseline_n10 = 0.0, metasgcl_n10 = 0.0;
    double best_baseline_h10 = 0.0, metasgcl_h10 = 0.0;
    for (const auto& name : model_names) {
      bench::HyperParams hp;
      auto model = bench::MakeModel(name, ds, hp, epochs, seed);
      auto result = bench::TrainAndEvaluate(*model, ds);
      const auto& paper = kPaper.at(ds.name).at(name);
      std::printf("%-14s %8.4f %8.4f %8.4f %8.4f %7.1fs   (%.4f, %.4f)\n", name.c_str(),
                  result.metrics.hr5, result.metrics.hr10, result.metrics.ndcg5,
                  result.metrics.ndcg10, result.train_seconds, paper.hr10, paper.n10);
      std::fflush(stdout);
      if (name == "Meta-SGCL") {
        metasgcl_n10 = result.metrics.ndcg10;
        metasgcl_h10 = result.metrics.hr10;
      } else {
        best_baseline_n10 = std::max(best_baseline_n10, result.metrics.ndcg10);
        best_baseline_h10 = std::max(best_baseline_h10, result.metrics.hr10);
      }
    }
    if (metasgcl_n10 > 0.0 && best_baseline_n10 > 0.0) {
      std::printf("Meta-SGCL vs best baseline: HR@10 %+.1f%%, NDCG@10 %+.1f%% "
                  "(paper: +2.3%% to +20.8%%)\n",
                  100.0 * (metasgcl_h10 / best_baseline_h10 - 1.0),
                  100.0 * (metasgcl_n10 / best_baseline_n10 - 1.0));
    }
  }
  return 0;
}
