// §IV.F complexity analysis: google-benchmark micro-benchmarks backing the
// paper's claims that self-attention costs O(n^2 d), the feed-forward layer
// O(n d^2), and that the model's parameter count is O(N d + n d + d^2).
//
// Kernel-throughput report mode (writes BENCH_kernels.json):
//   bench_micro_kernels --threads=4 --json=BENCH_kernels.json
// times the hot tensor kernels at 1 thread and at N threads and records the
// speedup, verifying the intra-op pool actually scales. `--threads N`
// (space-separated) is accepted too. Without these flags the binary runs the
// normal google-benchmark suite.
//
// Instrumentation-overhead check (see tools/check_no_obs_overhead.sh):
//   bench_micro_kernels --check_overhead=BENCH_kernels.json [--max_regress=0.02]
// re-times the kernels single-threaded and exits non-zero when any kernel's
// t1_ms is more than max_regress slower than the named baseline report —
// used to assert the MSGCL_OBS scoped timers cost under 2% on the hot path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "models/backbone.h"
#include "nn/nn.h"
#include "parallel/parallel.h"
#include "tensor/kernels.h"

namespace {

using namespace msgcl;

// Attention forward over sequence length n (fixed d): expect ~n^2 growth.
void BM_AttentionSeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(1);
  nn::MultiHeadSelfAttention attn(d, 2, 0.0f, rng);
  attn.SetTraining(false);
  Tensor x = Tensor::Randn({1, n, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(2);
    benchmark::DoNotOptimize(attn.Forward(x, true, nullptr, fwd));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AttentionSeqLen)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Attention forward over model dim d (fixed n): expect ~linear-in-d for the
// score term plus d^2 for the projections.
void BM_AttentionDim(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(3);
  nn::MultiHeadSelfAttention attn(d, 2, 0.0f, rng);
  attn.SetTraining(false);
  Tensor x = Tensor::Randn({1, 64, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(4);
    benchmark::DoNotOptimize(attn.Forward(x, true, nullptr, fwd));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_AttentionDim)->RangeMultiplier(2)->Range(16, 128)->Complexity();

// Feed-forward layer over d (fixed n): expect ~d^2.
void BM_FfnDim(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(5);
  nn::PositionwiseFfn ffn(d, 0.0f, rng);
  ffn.SetTraining(false);
  Tensor x = Tensor::Randn({1, 64, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(6);
    benchmark::DoNotOptimize(ffn.Forward(x, fwd));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_FfnDim)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// GRU forward over sequence length: sequential O(n d^2) with no
// parallelism across time steps — the contrast the paper draws with
// attention's parallelizable computation.
void BM_GruSeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(7);
  nn::Gru gru(d, d, rng);
  Tensor x = Tensor::Randn({1, n, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.Forward(x));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GruSeqLen)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Dense matmul kernel throughput (the backbone of everything above).
void BM_MatMul(benchmark::State& state) {
  const int64_t m = state.range(0);
  Rng rng(8);
  Tensor a = Tensor::Randn({m, m}, rng);
  Tensor b = Tensor::Randn({m, m}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_MatMul)->RangeMultiplier(2)->Range(32, 256);

// Same matmul at varying intra-op thread counts (256^3, the acceptance
// workload): thread scaling under the google-benchmark harness.
void BM_MatMulThreads(benchmark::State& state) {
  const int saved = parallel::MaxThreads();
  parallel::SetNumThreads(static_cast<int>(state.range(0)));
  const int64_t m = 256;
  Rng rng(8);
  Tensor a = Tensor::Randn({m, m}, rng);
  Tensor b = Tensor::Randn({m, m}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
  parallel::SetNumThreads(saved);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Space complexity O(N d + n d + d^2): parameter count of the backbone as
// the item count N grows (reported as a counter, not timed work).
void BM_BackboneParams(benchmark::State& state) {
  const int64_t num_items = state.range(0);
  models::BackboneConfig cfg;
  cfg.num_items = num_items;
  cfg.max_len = 50;
  cfg.dim = 32;
  Rng rng(9);
  for (auto _ : state) {
    models::SasBackbone backbone(cfg, rng);
    benchmark::DoNotOptimize(backbone.NumParameters());
    state.counters["params"] = static_cast<double>(backbone.NumParameters());
  }
}
BENCHMARK(BM_BackboneParams)->RangeMultiplier(4)->Range(256, 16384);

// ---- Kernel-throughput report (--threads / --json) --------------------------

/// Best-of-reps wall time in milliseconds for `fn`, after one warmup call.
/// Repeats until ~300 ms total or 20 reps, whichever comes first.
template <typename Fn>
double BestMs(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup (pool spawn, cache fill)
  double best = 1e300, total = 0.0;
  int reps = 0;
  while (reps < 3 || (total < 300.0 && reps < 20)) {
    const auto t0 = clock::now();
    fn();
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            clock::now() - t0)
            .count();
    best = std::min(best, ms);
    total += ms;
    ++reps;
  }
  return best;
}

struct KernelResult {
  std::string name;
  double work;          // flops (matmul) or elements (others) per run
  const char* work_unit;
  double t1_ms = 0.0;
  double tn_ms = 0.0;
  double t1_scalar_ms = 0.0;  // single-thread, simd::Isa::kScalar dispatch
};

/// Times the hot kernel families: best-of-reps at 1 thread, and (when
/// `measure_tn`) at `threads` threads. With `measure_scalar` each kernel is
/// also re-timed single-threaded under the scalar kernel dispatch, so the
/// report records the SIMD-vs-scalar speedup (tools/check_kernel_speedup.sh
/// gates on it). The kernel set and names are fixed — the overhead checker
/// matches them against a baseline report by name.
std::vector<KernelResult> MeasureKernels(int threads, bool measure_tn,
                                         bool measure_scalar = false) {
  NoGradGuard guard;
  Rng rng(99);

  // The acceptance workload plus the other hot kernel families.
  const int64_t M = 256;
  Tensor ma = Tensor::Randn({M, M}, rng);
  Tensor mb = Tensor::Randn({M, M}, rng);
  const int64_t kElems = 1 << 20;
  Tensor ea = Tensor::Randn({kElems}, rng);
  Tensor eb = Tensor::Randn({kElems}, rng);
  // Division is compute-bound (unlike the bandwidth-bound 1M add), so this
  // is where the vector win on elementwise work is visible; denominators
  // bounded away from zero.
  const int64_t kDivElems = 1 << 18;
  Tensor da = Tensor::Randn({kDivElems}, rng);
  Tensor db = Tensor::Rand({kDivElems}, rng, 0.5f, 1.5f);
  const int64_t kRows = 4096, kCols = 256;
  Tensor sm = Tensor::Randn({kRows, kCols}, rng);
  Tensor gamma = Tensor::Randn({kCols}, rng);
  Tensor beta = Tensor::Randn({kCols}, rng);

  std::vector<KernelResult> results = {
      {"matmul_256x256x256", 2.0 * M * M * M, "flops"},
      {"elementwise_add_1m", static_cast<double>(kElems), "elems"},
      {"elementwise_div_256k", static_cast<double>(kDivElems), "elems"},
      {"softmax_rows_4096x256", static_cast<double>(kRows * kCols), "elems"},
      {"layernorm_4096x256", static_cast<double>(kRows * kCols), "elems"},
      {"reduce_sum_1m", static_cast<double>(kElems), "elems"},
  };
  const auto run_kernel = [&](size_t idx) {
    switch (idx) {
      case 0: { Tensor c = ma.MatMul(mb); benchmark::DoNotOptimize(c); break; }
      case 1: { Tensor c = ea.Add(eb); benchmark::DoNotOptimize(c); break; }
      case 2: { Tensor c = da.Div(db); benchmark::DoNotOptimize(c); break; }
      case 3: { Tensor c = sm.SoftmaxLastDim(); benchmark::DoNotOptimize(c); break; }
      case 4: {
        Tensor c = LayerNormLastDim(sm, gamma, beta, 1e-5f);
        benchmark::DoNotOptimize(c);
        break;
      }
      case 5: { Tensor c = ea.Sum(); benchmark::DoNotOptimize(c); break; }
    }
  };

  for (size_t i = 0; i < results.size(); ++i) {
    parallel::SetNumThreads(1);
    results[i].t1_ms = BestMs([&] { run_kernel(i); });
    if (measure_scalar) {
      const simd::Isa prev = simd::ActiveIsa();
      simd::SetIsa(simd::Isa::kScalar);
      results[i].t1_scalar_ms = BestMs([&] { run_kernel(i); });
      simd::SetIsa(prev);
    }
    if (measure_tn) {
      parallel::SetNumThreads(threads);
      results[i].tn_ms = BestMs([&] { run_kernel(i); });
    }
  }
  return results;
}

int RunKernelReport(int threads, const std::string& json_path) {
  if (threads < 1) threads = 4;
  std::vector<KernelResult> results =
      MeasureKernels(threads, /*measure_tn=*/true, /*measure_scalar=*/true);
  const char* isa = simd::IsaName(simd::ActiveIsa());

  for (const auto& r : results) {
    const double speedup = r.tn_ms > 0.0 ? r.t1_ms / r.tn_ms : 0.0;
    const double simd_speedup =
        r.t1_ms > 0.0 ? r.t1_scalar_ms / r.t1_ms : 0.0;
    std::printf(
        "%-24s 1t %8.3f ms   %dt %8.3f ms   speedup %.2fx   %s-vs-scalar %.2fx\n",
        r.name.c_str(), r.t1_ms, threads, r.tn_ms, speedup, isa, simd_speedup);
  }

  if (!json_path.empty()) {
    const unsigned hw = std::thread::hardware_concurrency();
    Status s = bench::WriteBenchReport(json_path, "micro_kernels", [&](obs::JsonWriter& w) {
      w.Key("threads");
      w.Int(threads);
      w.Key("hardware_concurrency");
      w.UInt(hw);
      w.Key("isa");
      w.String(isa);
      w.Key("kernels");
      w.BeginArray();
      for (const auto& r : results) {
        w.BeginObject();
        w.Key("name");
        w.String(r.name);
        w.Key("work");
        w.Double(r.work);
        w.Key("work_unit");
        w.String(r.work_unit);
        w.Key("t1_ms");
        w.Double(r.t1_ms);
        w.Key("tN_ms");
        w.Double(r.tn_ms);
        w.Key("t1_scalar_ms");
        w.Double(r.t1_scalar_ms);
        w.Key("gwork_per_s_1t");
        w.Double(r.work / (r.t1_ms * 1e6));
        w.Key("gwork_per_s_Nt");
        w.Double(r.tn_ms > 0.0 ? r.work / (r.tn_ms * 1e6) : 0.0);
        w.Key("speedup");
        w.Double(r.tn_ms > 0.0 ? r.t1_ms / r.tn_ms : 0.0);
        w.Key("simd_speedup");
        w.Double(r.t1_ms > 0.0 ? r.t1_scalar_ms / r.t1_ms : 0.0);
        w.EndObject();
      }
      w.EndArray();
    });
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ---- Instrumentation-overhead check ----------------------------------------

/// Extracts `"t1_ms": <number>` for the kernel named `kernel` from a
/// BENCH_kernels.json document. Tolerates both the compact JsonWriter output
/// and pretty-printed baselines (optional whitespace after ':'), and parses
/// the number with from_chars so the result is locale-independent.
bool BaselineT1Ms(const std::string& json, const std::string& kernel, double* out) {
  const auto find_key_value = [&](const std::string& key, size_t from) -> size_t {
    size_t pos = json.find("\"" + key + "\"", from);
    if (pos == std::string::npos) return std::string::npos;
    pos = json.find(':', pos);
    if (pos == std::string::npos) return std::string::npos;
    ++pos;
    while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\t')) ++pos;
    return pos;
  };
  // Locate this kernel's object by its name value, then its t1_ms field.
  size_t pos = find_key_value("name", 0);
  while (pos != std::string::npos) {
    if (json.compare(pos, kernel.size() + 2, "\"" + kernel + "\"") == 0) break;
    pos = find_key_value("name", pos);
  }
  if (pos == std::string::npos) return false;
  pos = find_key_value("t1_ms", pos);
  if (pos == std::string::npos) return false;
  const auto res = std::from_chars(json.data() + pos, json.data() + json.size(), *out);
  return res.ec == std::errc();
}

/// --check_overhead mode: re-times the kernels single-threaded and fails
/// when any kernel's t1_ms exceeds the baseline's by more than `max_regress`
/// (fractional; 0.02 = 2%). tools/check_no_obs_overhead.sh builds the two
/// MSGCL_OBS variants and runs this in both directions to bound the scoped
/// timers' hot-path cost.
int RunOverheadCheck(const std::string& baseline_path, double max_regress) {
  std::ifstream in(baseline_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", baseline_path.c_str());
    return 2;
  }
  const std::string baseline((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());

  std::vector<KernelResult> results = MeasureKernels(1, /*measure_tn=*/false);
  int failures = 0;
  for (const auto& r : results) {
    double base_ms = 0.0;
    if (!BaselineT1Ms(baseline, r.name, &base_ms) || base_ms <= 0.0) {
      std::fprintf(stderr, "%-24s missing from baseline %s\n", r.name.c_str(),
                   baseline_path.c_str());
      ++failures;
      continue;
    }
    const double ratio = r.t1_ms / base_ms;
    const bool ok = ratio <= 1.0 + max_regress;
    std::printf("%-24s baseline %8.3f ms   now %8.3f ms   ratio %.3f   %s\n",
                r.name.c_str(), base_ms, r.t1_ms, ratio, ok ? "ok" : "REGRESSED");
    if (!ok) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "overhead check FAILED: %d kernel(s) regressed more than %.1f%%\n",
                 failures, max_regress * 100.0);
    return 1;
  }
  std::printf("overhead check passed (every kernel within %.1f%% of baseline)\n",
              max_regress * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --threads=N / --json=PATH (or space-separated) select the kernel report;
  // --check_overhead=BASELINE.json selects the overhead check; anything else
  // falls through to google-benchmark.
  int threads = 0;
  std::string json_path;
  std::string baseline_path;
  double max_regress = 0.02;
  bool report_mode = false;
  bool check_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      const std::string f(flag);
      if (arg.rfind(f + "=", 0) == 0) return arg.substr(f.size() + 1);
      if (arg == f && i + 1 < argc) return argv[++i];
      return "";
    };
    if (arg.rfind("--threads", 0) == 0) {
      threads = std::atoi(value("--threads").c_str());
      report_mode = true;
    } else if (arg.rfind("--json", 0) == 0) {
      json_path = value("--json");
      report_mode = true;
    } else if (arg.rfind("--check_overhead", 0) == 0) {
      baseline_path = value("--check_overhead");
      check_mode = true;
    } else if (arg.rfind("--max_regress", 0) == 0) {
      max_regress = std::atof(value("--max_regress").c_str());
    }
  }
  if (check_mode) return RunOverheadCheck(baseline_path, max_regress);
  if (report_mode) return RunKernelReport(threads, json_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
