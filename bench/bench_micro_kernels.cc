// §IV.F complexity analysis: google-benchmark micro-benchmarks backing the
// paper's claims that self-attention costs O(n^2 d), the feed-forward layer
// O(n d^2), and that the model's parameter count is O(N d + n d + d^2).
#include <benchmark/benchmark.h>

#include "models/backbone.h"
#include "nn/nn.h"

namespace {

using namespace msgcl;

// Attention forward over sequence length n (fixed d): expect ~n^2 growth.
void BM_AttentionSeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(1);
  nn::MultiHeadSelfAttention attn(d, 2, 0.0f, rng);
  attn.SetTraining(false);
  Tensor x = Tensor::Randn({1, n, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(2);
    benchmark::DoNotOptimize(attn.Forward(x, true, nullptr, fwd));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AttentionSeqLen)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Attention forward over model dim d (fixed n): expect ~linear-in-d for the
// score term plus d^2 for the projections.
void BM_AttentionDim(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(3);
  nn::MultiHeadSelfAttention attn(d, 2, 0.0f, rng);
  attn.SetTraining(false);
  Tensor x = Tensor::Randn({1, 64, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(4);
    benchmark::DoNotOptimize(attn.Forward(x, true, nullptr, fwd));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_AttentionDim)->RangeMultiplier(2)->Range(16, 128)->Complexity();

// Feed-forward layer over d (fixed n): expect ~d^2.
void BM_FfnDim(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(5);
  nn::PositionwiseFfn ffn(d, 0.0f, rng);
  ffn.SetTraining(false);
  Tensor x = Tensor::Randn({1, 64, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(6);
    benchmark::DoNotOptimize(ffn.Forward(x, fwd));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_FfnDim)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// GRU forward over sequence length: sequential O(n d^2) with no
// parallelism across time steps — the contrast the paper draws with
// attention's parallelizable computation.
void BM_GruSeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(7);
  nn::Gru gru(d, d, rng);
  Tensor x = Tensor::Randn({1, n, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.Forward(x));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GruSeqLen)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Dense matmul kernel throughput (the backbone of everything above).
void BM_MatMul(benchmark::State& state) {
  const int64_t m = state.range(0);
  Rng rng(8);
  Tensor a = Tensor::Randn({m, m}, rng);
  Tensor b = Tensor::Randn({m, m}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_MatMul)->RangeMultiplier(2)->Range(32, 256);

// Space complexity O(N d + n d + d^2): parameter count of the backbone as
// the item count N grows (reported as a counter, not timed work).
void BM_BackboneParams(benchmark::State& state) {
  const int64_t num_items = state.range(0);
  models::BackboneConfig cfg;
  cfg.num_items = num_items;
  cfg.max_len = 50;
  cfg.dim = 32;
  Rng rng(9);
  for (auto _ : state) {
    models::SasBackbone backbone(cfg, rng);
    benchmark::DoNotOptimize(backbone.NumParameters());
    state.counters["params"] = static_cast<double>(backbone.NumParameters());
  }
}
BENCHMARK(BM_BackboneParams)->RangeMultiplier(4)->Range(256, 16384);

}  // namespace

BENCHMARK_MAIN();
