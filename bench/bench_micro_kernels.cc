// §IV.F complexity analysis: google-benchmark micro-benchmarks backing the
// paper's claims that self-attention costs O(n^2 d), the feed-forward layer
// O(n d^2), and that the model's parameter count is O(N d + n d + d^2).
//
// Kernel-throughput report mode (writes BENCH_kernels.json):
//   bench_micro_kernels --threads=4 --json=BENCH_kernels.json
// times the hot tensor kernels at 1 thread and at N threads and records the
// speedup, verifying the intra-op pool actually scales. `--threads N`
// (space-separated) is accepted too. Without these flags the binary runs the
// normal google-benchmark suite.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "models/backbone.h"
#include "nn/nn.h"
#include "parallel/parallel.h"

namespace {

using namespace msgcl;

// Attention forward over sequence length n (fixed d): expect ~n^2 growth.
void BM_AttentionSeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(1);
  nn::MultiHeadSelfAttention attn(d, 2, 0.0f, rng);
  attn.SetTraining(false);
  Tensor x = Tensor::Randn({1, n, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(2);
    benchmark::DoNotOptimize(attn.Forward(x, true, nullptr, fwd));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AttentionSeqLen)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Attention forward over model dim d (fixed n): expect ~linear-in-d for the
// score term plus d^2 for the projections.
void BM_AttentionDim(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(3);
  nn::MultiHeadSelfAttention attn(d, 2, 0.0f, rng);
  attn.SetTraining(false);
  Tensor x = Tensor::Randn({1, 64, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(4);
    benchmark::DoNotOptimize(attn.Forward(x, true, nullptr, fwd));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_AttentionDim)->RangeMultiplier(2)->Range(16, 128)->Complexity();

// Feed-forward layer over d (fixed n): expect ~d^2.
void BM_FfnDim(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(5);
  nn::PositionwiseFfn ffn(d, 0.0f, rng);
  ffn.SetTraining(false);
  Tensor x = Tensor::Randn({1, 64, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    Rng fwd(6);
    benchmark::DoNotOptimize(ffn.Forward(x, fwd));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_FfnDim)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// GRU forward over sequence length: sequential O(n d^2) with no
// parallelism across time steps — the contrast the paper draws with
// attention's parallelizable computation.
void BM_GruSeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(7);
  nn::Gru gru(d, d, rng);
  Tensor x = Tensor::Randn({1, n, d}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.Forward(x));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GruSeqLen)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Dense matmul kernel throughput (the backbone of everything above).
void BM_MatMul(benchmark::State& state) {
  const int64_t m = state.range(0);
  Rng rng(8);
  Tensor a = Tensor::Randn({m, m}, rng);
  Tensor b = Tensor::Randn({m, m}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_MatMul)->RangeMultiplier(2)->Range(32, 256);

// Same matmul at varying intra-op thread counts (256^3, the acceptance
// workload): thread scaling under the google-benchmark harness.
void BM_MatMulThreads(benchmark::State& state) {
  const int saved = parallel::MaxThreads();
  parallel::SetNumThreads(static_cast<int>(state.range(0)));
  const int64_t m = 256;
  Rng rng(8);
  Tensor a = Tensor::Randn({m, m}, rng);
  Tensor b = Tensor::Randn({m, m}, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
  parallel::SetNumThreads(saved);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Space complexity O(N d + n d + d^2): parameter count of the backbone as
// the item count N grows (reported as a counter, not timed work).
void BM_BackboneParams(benchmark::State& state) {
  const int64_t num_items = state.range(0);
  models::BackboneConfig cfg;
  cfg.num_items = num_items;
  cfg.max_len = 50;
  cfg.dim = 32;
  Rng rng(9);
  for (auto _ : state) {
    models::SasBackbone backbone(cfg, rng);
    benchmark::DoNotOptimize(backbone.NumParameters());
    state.counters["params"] = static_cast<double>(backbone.NumParameters());
  }
}
BENCHMARK(BM_BackboneParams)->RangeMultiplier(4)->Range(256, 16384);

// ---- Kernel-throughput report (--threads / --json) --------------------------

/// Best-of-reps wall time in milliseconds for `fn`, after one warmup call.
/// Repeats until ~300 ms total or 20 reps, whichever comes first.
template <typename Fn>
double BestMs(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup (pool spawn, cache fill)
  double best = 1e300, total = 0.0;
  int reps = 0;
  while (reps < 3 || (total < 300.0 && reps < 20)) {
    const auto t0 = clock::now();
    fn();
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            clock::now() - t0)
            .count();
    best = std::min(best, ms);
    total += ms;
    ++reps;
  }
  return best;
}

struct KernelResult {
  std::string name;
  double work;          // flops (matmul) or elements (others) per run
  const char* work_unit;
  double t1_ms = 0.0;
  double tn_ms = 0.0;
};

int RunKernelReport(int threads, const std::string& json_path) {
  if (threads < 1) threads = 4;
  NoGradGuard guard;
  Rng rng(99);

  // The acceptance workload plus the other hot kernel families.
  const int64_t M = 256;
  Tensor ma = Tensor::Randn({M, M}, rng);
  Tensor mb = Tensor::Randn({M, M}, rng);
  const int64_t kElems = 1 << 20;
  Tensor ea = Tensor::Randn({kElems}, rng);
  Tensor eb = Tensor::Randn({kElems}, rng);
  const int64_t kRows = 4096, kCols = 256;
  Tensor sm = Tensor::Randn({kRows, kCols}, rng);

  std::vector<KernelResult> results = {
      {"matmul_256x256x256", 2.0 * M * M * M, "flops"},
      {"elementwise_add_1m", static_cast<double>(kElems), "elems"},
      {"softmax_rows_4096x256", static_cast<double>(kRows * kCols), "elems"},
      {"reduce_sum_1m", static_cast<double>(kElems), "elems"},
  };
  const auto run_kernel = [&](size_t idx) {
    switch (idx) {
      case 0: { Tensor c = ma.MatMul(mb); benchmark::DoNotOptimize(c); break; }
      case 1: { Tensor c = ea.Add(eb); benchmark::DoNotOptimize(c); break; }
      case 2: { Tensor c = sm.SoftmaxLastDim(); benchmark::DoNotOptimize(c); break; }
      case 3: { Tensor c = ea.Sum(); benchmark::DoNotOptimize(c); break; }
    }
  };

  for (size_t i = 0; i < results.size(); ++i) {
    parallel::SetNumThreads(1);
    results[i].t1_ms = BestMs([&] { run_kernel(i); });
    parallel::SetNumThreads(threads);
    results[i].tn_ms = BestMs([&] { run_kernel(i); });
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::string out = "{\n";
  out += "  \"benchmark\": \"micro_kernels\",\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  out += "  \"kernels\": [\n";
  char buf[512];
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double speedup = r.tn_ms > 0.0 ? r.t1_ms / r.tn_ms : 0.0;
    const double thr1 = r.work / (r.t1_ms * 1e6);   // Gwork/s
    const double thrn = r.work / (r.tn_ms * 1e6);
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"work\": %.0f, \"work_unit\": \"%s\", "
                  "\"t1_ms\": %.4f, \"tN_ms\": %.4f, "
                  "\"gwork_per_s_1t\": %.4f, \"gwork_per_s_Nt\": %.4f, "
                  "\"speedup\": %.3f}%s\n",
                  r.name.c_str(), r.work, r.work_unit, r.t1_ms, r.tn_ms, thr1, thrn,
                  speedup, i + 1 < results.size() ? "," : "");
    out += buf;
    std::printf("%-24s 1t %8.3f ms   %dt %8.3f ms   speedup %.2fx\n", r.name.c_str(),
                r.t1_ms, threads, r.tn_ms, speedup);
  }
  out += "  ]\n}\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --threads=N / --json=PATH (or space-separated) select the kernel report;
  // anything else falls through to google-benchmark.
  int threads = 0;
  std::string json_path;
  bool report_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      const std::string f(flag);
      if (arg.rfind(f + "=", 0) == 0) return arg.substr(f.size() + 1);
      if (arg == f && i + 1 < argc) return argv[++i];
      return "";
    };
    if (arg.rfind("--threads", 0) == 0) {
      threads = std::atoi(value("--threads").c_str());
      report_mode = true;
    } else if (arg.rfind("--json", 0) == 0) {
      json_path = value("--json");
      report_mode = true;
    }
  }
  if (report_mode) return RunKernelReport(threads, json_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
