// Table IV (RQ4.4): influence of the number of self-attention heads
// h in {1, 2, 4, 8} on Clothing and Toys.
// Paper shape: h = 2 best overall (h = 1 competitive on Clothing NDCG);
// more heads do not help — the task "may not require too complex structures".
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  auto datasets = bench::MakeDatasets(scale, seed);
  datasets.resize(2);  // Clothing, Toys

  std::printf("== Table IV: number of attention heads (scale=%.2f, epochs=%lld) ==\n",
              scale, static_cast<long long>(epochs));
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-6s %8s %8s %8s %8s\n", "h", "HR@5", "HR@10", "NDCG@5", "NDCG@10");
    for (int64_t h : quick ? std::vector<int64_t>{1, 2} : std::vector<int64_t>{1, 2, 4, 8}) {
      bench::HyperParams hp;
      hp.heads = h;
      auto model = bench::MakeModel("Meta-SGCL", ds, hp, epochs, seed);
      auto r = bench::TrainAndEvaluate(*model, ds);
      std::printf("%-6lld %8.4f %8.4f %8.4f %8.4f\n", static_cast<long long>(h),
                  r.metrics.hr5, r.metrics.hr10, r.metrics.ndcg5, r.metrics.ndcg10);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: h=2 best; h=8 worst\n");
  return 0;
}
