// Serving throughput/latency benchmark (DESIGN.md §9–10): drives a
// closed-loop request storm through the MicroBatcher + fused ScoreTopK path
// for SASRec and Meta-SGCL and reports QPS plus exact p50/p95/p99 latency
// percentiles.
//
//   bench_serving [--scale=0.25] [--requests=2000] [--clients=16]
//                 [--max_batch=32] [--max_wait_us=1000] [--workers=2]
//                 [--k=10] [--threads=N] [--quick] [--json=BENCH_serving.json]
//
// Chaos mode (--chaos) injects scoring faults (throw + NaN-poisoned scores)
// into a fraction of batches (--fault_rate=0.1) with the circuit breaker and
// popularity fallback active, and additionally reports availability, shed
// rate, degraded-serve rate, and garbage count. --no_fallback drops the
// fallback ranker (failed batches then surface as typed errors);
// --queue_capacity bounds the admission queue.
//
// Fleet mode (--fleet=N) routes each storm across N consistent-hash replicas
// (DESIGN.md §11); --kill_replica=R --kill_at_us=T kills replica R T
// microseconds into every storm and --restart_at_us=T brings it back, with
// the exit code judging min availability >= 99% and zero garbage. The CLI
// equivalent (`msgcl serve-bench --replicas=...`) backs
// tools/check_chaos_drill.sh / check_swap_drill.sh.
//
// Sharded mode runs by default (outside chaos/fleet): each storm is repeated
// through a ShardedRanker at S ∈ {1, 2, 4} (or the single value --shards=S)
// and lands in the "sharded" section of BENCH_serving.json. The merge is
// exact, so the section isolates the cost of per-shard fused top-k + merge.
//
// Session mode (--repeat_user_frac=0.8) additionally runs a returning-user
// mix per model through the per-session KV-state cache (DESIGN.md §12):
// each request either revisits a live session with one appended interaction
// (warm incremental path) or starts a fresh one (cold full encode), with
// --session_cache_mb bounding the cache and --session_initial_len setting
// the cold-start history length. Warm/cold p50/p95 and the hit rate go into
// the "sessions" section of BENCH_serving.json. Session storms run at
// max_batch=1 so warm and cold latencies are per-request truths, not
// artifacts of sharing a batch with colder rows.
//
// This is a systems benchmark: it measures the serving subsystem only and
// says nothing about recommendation quality (models are served with freshly
// initialized weights — the scoring work is identical either way).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "parallel/parallel.h"
#include "serve/serve.h"

namespace {

using namespace msgcl;

struct ServingRow {
  std::string model;
  std::string dataset;
  int64_t max_batch = 0;
  serve::LoadgenReport report;
};

// Fleet mode (--fleet=N): route the storm across N replicas, optionally
// killing one mid-run (--kill_at_us) and restarting it (--restart_at_us).
struct FleetSpec {
  int replicas = 1;
  int victim = 0;
  int64_t kill_at_us = 0;
  int64_t restart_at_us = 0;
  const serve::FallbackRanker* fallback = nullptr;
};

ServingRow RunStorm(const std::string& model_name, const bench::DatasetSpec& ds,
                    const bench::HyperParams& hp, const serve::ServeConfig& config,
                    const serve::LoadgenConfig& load, uint64_t seed,
                    const FleetSpec& fleet_spec) {
  // Each storm gets a rewound injector so fault sequences are comparable
  // across models and batch sizes.
  if (config.fault_injector != nullptr) config.fault_injector->Reset();
  ServingRow row;
  row.model = model_name;
  row.dataset = ds.name;
  row.max_batch = config.max_batch;
  if (fleet_spec.replicas > 1) {
    std::vector<std::unique_ptr<models::Recommender>> owned;
    std::vector<eval::Ranker*> rankers;
    for (int r = 0; r < fleet_spec.replicas; ++r) {
      owned.push_back(bench::MakeModel(model_name, ds, hp, /*epochs=*/1, seed));
      rankers.push_back(owned.back().get());
    }
    serve::FleetConfig fleet;
    fleet.replicas = fleet_spec.replicas;
    fleet.serve = config;
    fleet.fallback = fleet_spec.fallback;
    serve::Router router(std::move(rankers), ds.split.num_items, fleet);
    std::vector<serve::FleetChaosEvent> events;
    if (fleet_spec.kill_at_us > 0) {
      events.push_back({fleet_spec.kill_at_us, fleet_spec.victim,
                        serve::FleetChaosEvent::Action::kKill});
    }
    if (fleet_spec.restart_at_us > 0) {
      events.push_back({fleet_spec.restart_at_us, fleet_spec.victim,
                        serve::FleetChaosEvent::Action::kRestart});
    }
    row.report = serve::RunFleetLoad(router, ds.split.train_seqs, load,
                                     std::move(events));
    router.Stop();
  } else {
    auto model = bench::MakeModel(model_name, ds, hp, /*epochs=*/1, seed);
    serve::MicroBatcher batcher(*model, ds.split.num_items, config);
    row.report = serve::RunLoad(batcher, ds.split.train_seqs, load);
    batcher.Stop();
  }
  return row;
}

struct ShardRow {
  std::string model;
  int shards = 1;
  serve::LoadgenReport report;
};

// Sharded mode (DESIGN.md §14): the same storm served through a
// ShardedRanker over S contiguous id-range shards. The merge is exact
// (bit-identical lists, gated by `ctest -L shards`), so this section
// measures pure cost: per-shard fused top-k plus the k-way merge.
ShardRow RunShardedStorm(const std::string& model_name,
                         const bench::DatasetSpec& ds,
                         const bench::HyperParams& hp,
                         const serve::ServeConfig& config,
                         const serve::LoadgenConfig& load, uint64_t seed,
                         int num_shards) {
  if (config.fault_injector != nullptr) config.fault_injector->Reset();
  ShardRow row;
  row.model = model_name;
  row.shards = num_shards;
  auto model = bench::MakeModel(model_name, ds, hp, /*epochs=*/1, seed);
  serve::ShardedRanker sharded(
      *model, serve::MakeItemShards(ds.split.num_items, num_shards));
  serve::MicroBatcher batcher(sharded, ds.split.num_items, config);
  row.report = serve::RunLoad(batcher, ds.split.train_seqs, load);
  batcher.Stop();
  return row;
}

void PrintShardRow(const ShardRow& r) {
  std::printf("%-10s sharded S=%-2d %8.1f qps  p50=%6.0fus p95=%6.0fus "
              "p99=%6.0fus  ok=%lld err=%lld garbage=%lld\n",
              r.model.c_str(), r.shards, r.report.qps, r.report.p50_us,
              r.report.p95_us, r.report.p99_us,
              static_cast<long long>(r.report.ok),
              static_cast<long long>(r.report.errors),
              static_cast<long long>(r.report.garbage));
}

struct SessionRow {
  std::string model;
  serve::SessionLoadReport report;
  serve::SessionCache::Stats cache;
};

// Session mode: a returning-user storm through one batcher with a session
// cache. Runs at max_batch=1/max_wait_us=0 so the warm/cold latency split is
// per-request (a shared batch would charge warm rows for cold encodes).
SessionRow RunSessionStorm(const std::string& model_name,
                           const bench::DatasetSpec& ds,
                           const bench::HyperParams& hp,
                           const serve::ServeConfig& base_config,
                           const serve::SessionLoadConfig& session_load,
                           uint64_t seed, int64_t cache_mb) {
  SessionRow row;
  row.model = model_name;
  auto model = bench::MakeModel(model_name, ds, hp, /*epochs=*/1, seed);
  serve::SessionCache cache(cache_mb << 20);
  serve::ServeConfig config = base_config;
  config.max_batch = 1;
  config.max_wait_us = 0;
  config.session_cache = &cache;
  serve::MicroBatcher batcher(*model, ds.split.num_items, config);
  row.report = serve::RunSessionLoad(batcher, session_load);
  batcher.Stop();
  row.cache = cache.stats();
  return row;
}

void PrintSessionRow(const SessionRow& r) {
  std::printf("%-10s sessions  %8.1f qps  hit_rate=%.3f  warm p50=%6.0fus "
              "p95=%6.0fus  cold p50=%6.0fus p95=%6.0fus  warm=%lld cold=%lld "
              "evicted=%lld garbage=%lld\n",
              r.model.c_str(), r.report.all.qps, r.report.hit_rate,
              r.report.warm_p50_us, r.report.warm_p95_us, r.report.cold_p50_us,
              r.report.cold_p95_us, static_cast<long long>(r.report.warm),
              static_cast<long long>(r.report.cold),
              static_cast<long long>(r.cache.evictions),
              static_cast<long long>(r.report.all.garbage));
}

void PrintRow(const ServingRow& r, bool chaos) {
  std::printf("%-10s %-9s batch<=%-3lld %8.1f qps  p50=%6.0fus p95=%6.0fus "
              "p99=%6.0fus  ok=%lld dl=%lld err=%lld",
              r.model.c_str(), r.dataset.c_str(), static_cast<long long>(r.max_batch),
              r.report.qps, r.report.p50_us, r.report.p95_us, r.report.p99_us,
              static_cast<long long>(r.report.ok),
              static_cast<long long>(r.report.deadline_expired),
              static_cast<long long>(r.report.errors));
  if (chaos) {
    std::printf("  avail=%.4f degraded=%lld shed=%lld garbage=%lld",
                r.report.availability, static_cast<long long>(r.report.degraded),
                static_cast<long long>(r.report.shed),
                static_cast<long long>(r.report.garbage));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const bool chaos = flags.GetBool("chaos");
  const bool no_fallback = flags.GetBool("no_fallback");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.25);
  const uint64_t seed = flags.GetInt("seed", 42);
  if (const int64_t threads = flags.GetInt("threads", 0); threads > 0) {
    parallel::SetNumThreads(static_cast<int>(threads));
  }

  serve::ServeConfig config;
  config.k = flags.GetInt("k", 10);
  config.max_batch = flags.GetInt("max_batch", 32);
  config.max_wait_us = flags.GetInt("max_wait_us", 1000);
  config.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  config.queue_capacity = flags.GetInt("queue_capacity", 0);
  serve::LoadgenConfig load;
  load.requests = flags.GetInt("requests", quick ? 200 : 2000);
  load.clients = static_cast<int>(flags.GetInt("clients", 16));
  load.deadline_us = flags.GetInt("deadline_us", 0);
  load.k = config.k;

  FleetSpec fleet_spec;
  fleet_spec.replicas = static_cast<int>(flags.GetInt("fleet", 1));
  fleet_spec.victim = static_cast<int>(flags.GetInt("kill_replica", 0));
  fleet_spec.kill_at_us = flags.GetInt("kill_at_us", 0);
  fleet_spec.restart_at_us = flags.GetInt("restart_at_us", 0);
  const bool fleet_mode = fleet_spec.replicas > 1;

  const double fault_rate = flags.GetDouble("fault_rate", 0.10);
  std::unique_ptr<runtime::ServeFaultInjector> injector;
  if (chaos) {
    runtime::ServeFaultPlan plan;
    plan.fault_rate = fault_rate;
    plan.kinds = {runtime::ServeFaultKind::kScoreThrow,
                  runtime::ServeFaultKind::kNaNScores};
    plan.seed = seed;
    injector = std::make_unique<runtime::ServeFaultInjector>(std::move(plan));
    config.fault_injector = injector.get();
    // Breaker tuned for a storm: open quickly, probe quickly, so the drill
    // exercises the full Healthy -> Open -> Healthy cycle many times.
    config.breaker.degraded_after = 1;
    config.breaker.open_after = 2;
    config.breaker.open_backoff_us = 2000;
    config.breaker.max_backoff_us = 100000;
  }

  bench::HyperParams hp;
  std::printf("== Serving benchmark: %lld requests, %d clients, %d workers, "
              "max_wait=%lldus, fleet=%d%s ==\n",
              static_cast<long long>(load.requests), load.clients, config.num_workers,
              static_cast<long long>(config.max_wait_us), fleet_spec.replicas,
              chaos ? ", CHAOS" : "");

  // One dataset (Toys-like) is enough for a latency benchmark; batching
  // behavior is what varies, so sweep max_batch per model.
  auto datasets = bench::MakeDatasets(scale, seed);
  const bench::DatasetSpec& ds = datasets[1];
  config.max_len = ds.max_len;
  std::printf("dataset %s: %d users, %d items\n\n", ds.name.c_str(),
              ds.split.num_users(), ds.split.num_items);

  serve::FallbackRanker fallback;
  if ((chaos || fleet_mode) && !no_fallback) {
    fallback = serve::FallbackRanker::FromSequences(ds.split.train_seqs,
                                                    ds.split.num_items);
    config.fallback = &fallback;
    fleet_spec.fallback = &fallback;
  }

  std::vector<ServingRow> rows;
  const std::vector<int64_t> batch_sizes =
      quick ? std::vector<int64_t>{config.max_batch}
            : std::vector<int64_t>{1, 8, config.max_batch};
  for (const std::string model_name : {"SASRec", "Meta-SGCL"}) {
    for (const int64_t max_batch : batch_sizes) {
      serve::ServeConfig c = config;
      c.max_batch = max_batch;
      rows.push_back(RunStorm(model_name, ds, hp, c, load, seed, fleet_spec));
      PrintRow(rows.back(), chaos || fleet_mode);
    }
  }

  // Sharded scoring (DESIGN.md §14): S-way intra-model sharding at the base
  // max_batch. --shards=S pins one value; the default sweeps {1, 2, 4}.
  // Skipped under chaos/fleet — those drills measure resilience, not the
  // shard overhead.
  std::vector<ShardRow> shard_rows;
  if (!fleet_mode && !chaos) {
    std::vector<int> shard_counts = {1, 2, 4};
    if (const int64_t s = flags.GetInt("shards", 0); s > 0) {
      shard_counts = {static_cast<int>(s)};
    }
    std::printf("\nsharded scoring (exact merge, max_batch=%lld):\n",
                static_cast<long long>(config.max_batch));
    for (const std::string model_name : {"SASRec", "Meta-SGCL"}) {
      for (const int s : shard_counts) {
        shard_rows.push_back(
            RunShardedStorm(model_name, ds, hp, config, load, seed, s));
        PrintShardRow(shard_rows.back());
      }
    }
  }

  // Session mode: warm/cold returning-user mix (DESIGN.md §12).
  const double repeat_user_frac = flags.GetDouble("repeat_user_frac", 0.0);
  const int64_t session_cache_mb = flags.GetInt("session_cache_mb", 64);
  std::vector<SessionRow> session_rows;
  if (repeat_user_frac > 0.0) {
    serve::SessionLoadConfig session_load;
    session_load.base = load;
    session_load.repeat_frac = repeat_user_frac;
    session_load.num_items = ds.split.num_items;
    session_load.max_session_len = ds.max_len;
    session_load.initial_len = flags.GetInt(
        "session_initial_len", std::max<int64_t>(1, ds.max_len - 10));
    session_load.seed = seed;
    std::printf("\nsession mix: repeat=%.2f cache=%lldMB initial_len=%lld "
                "max_len=%lld (max_batch=1)\n",
                repeat_user_frac, static_cast<long long>(session_cache_mb),
                static_cast<long long>(session_load.initial_len),
                static_cast<long long>(ds.max_len));
    for (const std::string model_name : {"SASRec", "Meta-SGCL"}) {
      session_rows.push_back(RunSessionStorm(model_name, ds, hp, config,
                                             session_load, seed,
                                             session_cache_mb));
      PrintSessionRow(session_rows.back());
    }
  }

  double min_availability = 1.0;
  int64_t total_garbage = 0;
  for (const ServingRow& r : rows) {
    min_availability = std::min(min_availability, r.report.availability);
    total_garbage += r.report.garbage;
  }
  for (const ShardRow& r : shard_rows) {
    min_availability = std::min(min_availability, r.report.availability);
    total_garbage += r.report.garbage;
  }
  for (const SessionRow& r : session_rows) {
    min_availability = std::min(min_availability, r.report.all.availability);
    total_garbage += r.report.all.garbage;
  }
  if (chaos) {
    std::printf("\nchaos summary: min_availability=%.4f total_garbage=%lld "
                "fallback=%s fault_rate=%.2f\n",
                min_availability, static_cast<long long>(total_garbage),
                no_fallback ? "off" : "on", fault_rate);
  }

  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    Status s = bench::WriteBenchReport(json_path, "serving", [&](obs::JsonWriter& w) {
      w.Key("note");
      w.String("throughput/latency only; serves untrained weights, no quality metrics");
      w.Key("config");
      w.BeginObject();
      w.Key("requests");
      w.Int(load.requests);
      w.Key("clients");
      w.Int(load.clients);
      w.Key("workers");
      w.Int(config.num_workers);
      w.Key("max_wait_us");
      w.Int(config.max_wait_us);
      w.Key("k");
      w.Int(config.k);
      w.Key("threads");
      w.Int(parallel::MaxThreads());
      w.Key("chaos");
      w.Bool(chaos);
      w.Key("fault_rate");
      w.Double(chaos ? fault_rate : 0.0);
      w.Key("fallback");
      w.Bool(chaos && !no_fallback);
      w.Key("queue_capacity");
      w.Int(config.queue_capacity);
      w.Key("fleet");
      w.Int(fleet_spec.replicas);
      w.Key("kill_at_us");
      w.Int(fleet_spec.kill_at_us);
      w.Key("restart_at_us");
      w.Int(fleet_spec.restart_at_us);
      w.Key("repeat_user_frac");
      w.Double(repeat_user_frac);
      w.Key("session_cache_mb");
      w.Int(session_cache_mb);
      w.EndObject();
      w.Key("min_availability");
      w.Double(min_availability);
      w.Key("total_garbage");
      w.Int(total_garbage);
      w.Key("runs");
      w.BeginArray();
      for (const ServingRow& r : rows) {
        w.BeginObject();
        w.Key("model");
        w.String(r.model);
        w.Key("dataset");
        w.String(r.dataset);
        w.Key("max_batch");
        w.Int(r.max_batch);
        w.Key("qps");
        w.Double(r.report.qps);
        w.Key("p50_us");
        w.Double(r.report.p50_us);
        w.Key("p95_us");
        w.Double(r.report.p95_us);
        w.Key("p99_us");
        w.Double(r.report.p99_us);
        w.Key("mean_us");
        w.Double(r.report.mean_us);
        w.Key("max_us");
        w.Double(r.report.max_us);
        w.Key("ok");
        w.Int(r.report.ok);
        w.Key("degraded");
        w.Int(r.report.degraded);
        w.Key("shed");
        w.Int(r.report.shed);
        w.Key("deadline_expired");
        w.Int(r.report.deadline_expired);
        w.Key("errors");
        w.Int(r.report.errors);
        w.Key("garbage");
        w.Int(r.report.garbage);
        w.Key("availability");
        w.Double(r.report.availability);
        w.EndObject();
      }
      w.EndArray();
      if (!shard_rows.empty()) {
        w.Key("sharded");
        w.BeginArray();
        for (const ShardRow& r : shard_rows) {
          w.BeginObject();
          w.Key("model");
          w.String(r.model);
          w.Key("shards");
          w.Int(r.shards);
          w.Key("qps");
          w.Double(r.report.qps);
          w.Key("p50_us");
          w.Double(r.report.p50_us);
          w.Key("p95_us");
          w.Double(r.report.p95_us);
          w.Key("p99_us");
          w.Double(r.report.p99_us);
          w.Key("mean_us");
          w.Double(r.report.mean_us);
          w.Key("ok");
          w.Int(r.report.ok);
          w.Key("errors");
          w.Int(r.report.errors);
          w.Key("garbage");
          w.Int(r.report.garbage);
          w.Key("availability");
          w.Double(r.report.availability);
          w.EndObject();
        }
        w.EndArray();
      }
      if (!session_rows.empty()) {
        w.Key("sessions");
        w.BeginArray();
        for (const SessionRow& r : session_rows) {
          w.BeginObject();
          w.Key("model");
          w.String(r.model);
          w.Key("qps");
          w.Double(r.report.all.qps);
          w.Key("hit_rate");
          w.Double(r.report.hit_rate);
          w.Key("warm");
          w.Int(r.report.warm);
          w.Key("cold");
          w.Int(r.report.cold);
          w.Key("warm_p50_us");
          w.Double(r.report.warm_p50_us);
          w.Key("warm_p95_us");
          w.Double(r.report.warm_p95_us);
          w.Key("cold_p50_us");
          w.Double(r.report.cold_p50_us);
          w.Key("cold_p95_us");
          w.Double(r.report.cold_p95_us);
          w.Key("cache_hits");
          w.Int(r.cache.hits);
          w.Key("cache_misses");
          w.Int(r.cache.misses);
          w.Key("cache_evictions");
          w.Int(r.cache.evictions);
          w.Key("cache_invalidations");
          w.Int(r.cache.invalidations);
          w.Key("cache_bytes");
          w.Int(r.cache.bytes);
          w.Key("garbage");
          w.Int(r.report.all.garbage);
          w.Key("availability");
          w.Double(r.report.all.availability);
          w.EndObject();
        }
        w.EndArray();
      }
    });
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // Garbage is never acceptable. Errors are expected in a chaos run that
  // deliberately dropped the fallback, and in a shard-kill drill (a killed
  // replica honestly fails its queued requests) — the kill drill is judged on
  // availability instead.
  if (total_garbage != 0) return 1;
  if (fleet_mode && fleet_spec.kill_at_us > 0) {
    return min_availability >= 0.99 ? 0 : 1;
  }
  const bool errors_expected = chaos && no_fallback;
  if (!errors_expected) {
    for (const ServingRow& r : rows) {
      if (r.report.errors != 0) return 1;
    }
  }
  for (const ShardRow& r : shard_rows) {
    if (r.report.errors != 0) return 1;
  }
  for (const SessionRow& r : session_rows) {
    if (r.report.all.errors != 0) return 1;
  }
  return 0;
}
