// Serving throughput/latency benchmark (DESIGN.md §9): drives a closed-loop
// request storm through the MicroBatcher + fused ScoreTopK path for SASRec
// and Meta-SGCL and reports QPS plus exact p50/p95/p99 latency percentiles.
//
//   bench_serving [--scale=0.25] [--requests=2000] [--clients=16]
//                 [--max_batch=32] [--max_wait_us=1000] [--workers=2]
//                 [--k=10] [--threads=N] [--quick] [--json=BENCH_serving.json]
//
// This is a systems benchmark: it measures the serving subsystem only and
// says nothing about recommendation quality (models are served with freshly
// initialized weights — the scoring work is identical either way).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "parallel/parallel.h"
#include "serve/serve.h"

namespace {

using namespace msgcl;

struct ServingRow {
  std::string model;
  std::string dataset;
  int64_t max_batch = 0;
  serve::LoadgenReport report;
};

ServingRow RunStorm(const std::string& model_name, const bench::DatasetSpec& ds,
                    const bench::HyperParams& hp, const serve::ServeConfig& config,
                    const serve::LoadgenConfig& load, uint64_t seed) {
  auto model = bench::MakeModel(model_name, ds, hp, /*epochs=*/1, seed);
  serve::MicroBatcher batcher(*model, ds.split.num_items, config);
  ServingRow row;
  row.model = model_name;
  row.dataset = ds.name;
  row.max_batch = config.max_batch;
  row.report = serve::RunLoad(batcher, ds.split.train_seqs, load);
  batcher.Stop();
  return row;
}

void PrintRow(const ServingRow& r) {
  std::printf("%-10s %-9s batch<=%-3lld %8.1f qps  p50=%6.0fus p95=%6.0fus "
              "p99=%6.0fus  ok=%lld dl=%lld err=%lld\n",
              r.model.c_str(), r.dataset.c_str(), static_cast<long long>(r.max_batch),
              r.report.qps, r.report.p50_us, r.report.p95_us, r.report.p99_us,
              static_cast<long long>(r.report.ok),
              static_cast<long long>(r.report.deadline_expired),
              static_cast<long long>(r.report.errors));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.25);
  const uint64_t seed = flags.GetInt("seed", 42);
  if (const int64_t threads = flags.GetInt("threads", 0); threads > 0) {
    parallel::SetNumThreads(static_cast<int>(threads));
  }

  serve::ServeConfig config;
  config.k = flags.GetInt("k", 10);
  config.max_batch = flags.GetInt("max_batch", 32);
  config.max_wait_us = flags.GetInt("max_wait_us", 1000);
  config.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  serve::LoadgenConfig load;
  load.requests = flags.GetInt("requests", quick ? 200 : 2000);
  load.clients = static_cast<int>(flags.GetInt("clients", 16));
  load.deadline_us = flags.GetInt("deadline_us", 0);
  load.k = config.k;

  bench::HyperParams hp;
  std::printf("== Serving benchmark: %lld requests, %d clients, %d workers, "
              "max_wait=%lldus ==\n",
              static_cast<long long>(load.requests), load.clients, config.num_workers,
              static_cast<long long>(config.max_wait_us));

  // One dataset (Toys-like) is enough for a latency benchmark; batching
  // behavior is what varies, so sweep max_batch per model.
  auto datasets = bench::MakeDatasets(scale, seed);
  const bench::DatasetSpec& ds = datasets[1];
  config.max_len = ds.max_len;
  std::printf("dataset %s: %d users, %d items\n\n", ds.name.c_str(),
              ds.split.num_users(), ds.split.num_items);

  std::vector<ServingRow> rows;
  const std::vector<int64_t> batch_sizes =
      quick ? std::vector<int64_t>{config.max_batch}
            : std::vector<int64_t>{1, 8, config.max_batch};
  for (const std::string model_name : {"SASRec", "Meta-SGCL"}) {
    for (const int64_t max_batch : batch_sizes) {
      serve::ServeConfig c = config;
      c.max_batch = max_batch;
      rows.push_back(RunStorm(model_name, ds, hp, c, load, seed));
      PrintRow(rows.back());
    }
  }

  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    Status s = bench::WriteBenchReport(json_path, "serving", [&](obs::JsonWriter& w) {
      w.Key("note");
      w.String("throughput/latency only; serves untrained weights, no quality metrics");
      w.Key("config");
      w.BeginObject();
      w.Key("requests");
      w.Int(load.requests);
      w.Key("clients");
      w.Int(load.clients);
      w.Key("workers");
      w.Int(config.num_workers);
      w.Key("max_wait_us");
      w.Int(config.max_wait_us);
      w.Key("k");
      w.Int(config.k);
      w.Key("threads");
      w.Int(parallel::MaxThreads());
      w.EndObject();
      w.Key("runs");
      w.BeginArray();
      for (const ServingRow& r : rows) {
        w.BeginObject();
        w.Key("model");
        w.String(r.model);
        w.Key("dataset");
        w.String(r.dataset);
        w.Key("max_batch");
        w.Int(r.max_batch);
        w.Key("qps");
        w.Double(r.report.qps);
        w.Key("p50_us");
        w.Double(r.report.p50_us);
        w.Key("p95_us");
        w.Double(r.report.p95_us);
        w.Key("p99_us");
        w.Double(r.report.p99_us);
        w.Key("mean_us");
        w.Double(r.report.mean_us);
        w.Key("max_us");
        w.Double(r.report.max_us);
        w.Key("ok");
        w.Int(r.report.ok);
        w.Key("deadline_expired");
        w.Int(r.report.deadline_expired);
        w.Key("errors");
        w.Int(r.report.errors);
        w.EndObject();
      }
      w.EndArray();
    });
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  for (const ServingRow& r : rows) {
    if (r.report.errors != 0) return 1;
  }
  return 0;
}
