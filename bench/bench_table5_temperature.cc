// Table V (RQ4.5): influence of the InfoNCE temperature tau in
// {0.05, 0.1, 0.5, 1, 2, 5} on Clothing and Toys.
// Paper shape: an interior optimum (tau ~ 0.1 on Clothing, ~1 on Toys);
// both extremes (0.05 and 5) hurt.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  auto datasets = bench::MakeDatasets(scale, seed);
  datasets.resize(2);

  std::printf("== Table V: InfoNCE temperature (scale=%.2f, epochs=%lld) ==\n", scale,
              static_cast<long long>(epochs));
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-6s %8s %8s %8s %8s\n", "tau", "HR@5", "HR@10", "NDCG@5", "NDCG@10");
    for (double tau : quick ? std::vector<double>{0.1, 1.0}
                            : std::vector<double>{0.05, 0.1, 0.5, 1.0, 2.0, 5.0}) {
      bench::HyperParams hp;
      hp.tau = static_cast<float>(tau);
      auto model = bench::MakeModel("Meta-SGCL", ds, hp, epochs, seed);
      auto r = bench::TrainAndEvaluate(*model, ds);
      std::printf("%-6g %8.4f %8.4f %8.4f %8.4f\n", tau, r.metrics.hr5, r.metrics.hr10,
                  r.metrics.ndcg5, r.metrics.ndcg10);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: interior optimum in 0.1..1; tau=5 and tau=0.05 hurt\n");
  return 0;
}
