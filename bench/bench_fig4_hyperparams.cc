// Fig. 4 (RQ4.1-4.3): sensitivity of Meta-SGCL to
//   (a,b) the contrastive weight alpha   — best around 0.03, degrades when
//         CL dominates;
//   (c,d) the KL weight beta             — rises then falls over 0.1..0.5;
//   (e,f) the embedding dimension d      — rises then saturates/declines.
// Run one sweep with --param=alpha|beta|dim (default: all three).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using msgcl::bench::DatasetSpec;
using msgcl::bench::HyperParams;

void RunSweep(const std::string& param, const std::vector<double>& values,
              std::vector<DatasetSpec>& datasets, int64_t epochs, uint64_t seed) {
  std::printf("\n== Fig. 4 sweep: %s ==\n", param.c_str());
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-10s %8s %8s %8s %8s\n", param.c_str(), "HR@5", "HR@10", "NDCG@5",
                "NDCG@10");
    for (double v : values) {
      HyperParams hp;
      DatasetSpec spec = ds;  // beta is per-dataset; copies are cheap enough
      if (param == "alpha") hp.alpha = static_cast<float>(v);
      if (param == "beta") spec.beta = static_cast<float>(v);
      if (param == "dim") hp.dim = static_cast<int64_t>(v);
      auto model = msgcl::bench::MakeModel("Meta-SGCL", spec, hp, epochs, seed);
      auto r = msgcl::bench::TrainAndEvaluate(*model, spec);
      std::printf("%-10g %8.4f %8.4f %8.4f %8.4f\n", v, r.metrics.hr5, r.metrics.hr10,
                  r.metrics.ndcg5, r.metrics.ndcg10);
      std::fflush(stdout);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);
  const std::string param = flags.GetString("param", "all");

  // The paper's Fig. 4 uses the two Amazon datasets.
  auto datasets = bench::MakeDatasets(scale, seed);
  datasets.resize(2);  // Clothing, Toys

  std::printf("== Fig. 4: hyper-parameter sensitivity (scale=%.2f, epochs=%lld) ==\n",
              scale, static_cast<long long>(epochs));
  if (param == "alpha" || param == "all") {
    RunSweep("alpha", quick ? std::vector<double>{0.03, 0.3}
                            : std::vector<double>{0.01, 0.03, 0.05, 0.1, 0.3, 0.5},
             datasets, epochs, seed);
    std::printf("paper shape: best near alpha=0.03; large alpha hurts\n");
  }
  if (param == "beta" || param == "all") {
    RunSweep("beta", quick ? std::vector<double>{0.2, 0.5}
                           : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5},
             datasets, epochs, seed);
    std::printf("paper shape: rises then falls over 0.1..0.5\n");
  }
  if (param == "dim" || param == "all") {
    // Paper sweeps d in {32..512}; scaled here to {8..64} around the
    // default 32 (128+ exceeds the single-core budget; pass --param=dim
    // --scale/--epochs manually to extend).
    RunSweep("dim", quick ? std::vector<double>{16, 32}
                          : std::vector<double>{8, 16, 32, 64},
             datasets, epochs, seed);
    std::printf("paper shape: improves with d then saturates/overfits\n");
  }
  return 0;
}
