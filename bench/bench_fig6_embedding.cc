// Fig. 6 (RQ6): item-embedding distribution of SASRec vs Meta-SGCL on the
// three datasets. The paper shows t-SNE scatters ("SASRec produces a narrow
// cone; Meta-SGCL spreads more uniformly"); this harness reports the
// quantitative statistics substituting for that picture (DESIGN.md §1.3):
// mean pairwise cosine (higher = narrower cone), Wang-Isola uniformity
// (lower = more uniform), and normalised singular-value entropy (higher =
// variance spread over more directions).
// Paper shape: Meta-SGCL has lower mean cosine, lower uniformity loss and
// higher SV entropy than SASRec on every dataset.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  std::printf("== Fig. 6: item-embedding distribution, SASRec vs Meta-SGCL "
              "(scale=%.2f, epochs=%lld) ==\n",
              scale, static_cast<long long>(epochs));
  auto datasets = bench::MakeDatasets(scale, seed);
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-12s %10s %11s %11s %10s\n", "model", "mean_cos", "uniformity",
                "sv_entropy", "HR@10");
    for (const std::string name : {"SASRec", "Meta-SGCL"}) {
      bench::HyperParams hp;
      auto model = bench::MakeModel(name, ds, hp, epochs, seed);
      auto r = bench::TrainAndEvaluate(*model, ds);
      const Tensor* table = nullptr;
      if (name == "SASRec") {
        table = &static_cast<models::SasRec*>(model.get())->backbone().item_embedding().table();
      } else {
        table = &static_cast<core::MetaSgcl*>(model.get())
                     ->generator().backbone().item_embedding().table();
      }
      Rng stats_rng(seed + 5);
      eval::EmbeddingStats stats = eval::ComputeEmbeddingStats(*table, stats_rng);
      std::printf("%-12s %10.4f %11.4f %11.4f %10.4f\n", name.c_str(), stats.mean_cosine,
                  stats.uniformity, stats.sv_entropy, r.metrics.hr10);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: Meta-SGCL less cone-like (lower mean_cos, lower "
              "uniformity, higher sv_entropy) than SASRec\n");
  return 0;
}
