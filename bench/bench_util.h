// Shared infrastructure for the experiment harness: flag parsing, dataset
// presets, the model factory (one entry per Table II column), timing, and
// paper-style table printing.
//
// Every bench binary accepts:
//   --scale=<float>    dataset size multiplier (default 0.25; 1.0 = the
//                      DESIGN.md presets, ~1/10 of the paper's Table I)
//   --epochs=<int>     training epochs (default per binary)
//   --seed=<int>       RNG seed
//   --quick            tiny settings for smoke runs
#ifndef MSGCL_BENCH_BENCH_UTIL_H_
#define MSGCL_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "models/models.h"
#include "obs/obs.h"

namespace msgcl {
namespace bench {

/// Minimal --key=value / --flag parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::stod(it->second);
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::stoll(it->second);
  }
  std::string GetString(const std::string& key, std::string def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  bool GetBool(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// A prepared benchmark dataset plus its per-dataset hyper-parameters.
struct DatasetSpec {
  std::string name;
  data::SequenceDataset split;
  int64_t max_len = 16;
  float beta = 0.2f;  // paper: 0.3 on Clothing, 0.2 on Toys
};

/// Builds the three Table I stand-ins at the given scale.
inline std::vector<DatasetSpec> MakeDatasets(double scale, uint64_t seed = 42) {
  std::vector<DatasetSpec> out;
  {
    DatasetSpec s;
    s.name = "Clothing";
    s.split = data::LeaveOneOutSplit(
        data::GenerateSynthetic(data::ClothingLike(scale, seed)).value());
    s.max_len = 16;
    s.beta = 0.3f;
    out.push_back(std::move(s));
  }
  {
    DatasetSpec s;
    s.name = "Toys";
    s.split = data::LeaveOneOutSplit(
        data::GenerateSynthetic(data::ToysLike(scale, seed + 1)).value());
    s.max_len = 16;
    s.beta = 0.2f;
    out.push_back(std::move(s));
  }
  {
    DatasetSpec s;
    s.name = "ML-1M";
    // The ML-1M preset is already small (600 users); keep it >= scale 1.
    s.split = data::LeaveOneOutSplit(
        data::GenerateSynthetic(data::Ml1mLike(std::max(scale, 1.0), seed + 2)).value());
    s.max_len = 32;  // paper: 200; scaled with the rest of the harness
    s.beta = 0.2f;
    out.push_back(std::move(s));
  }
  return out;
}

/// Model hyper-parameters shared by the harness (paper §V.A, scaled).
struct HyperParams {
  int64_t dim = 32;
  int64_t heads = 2;
  int64_t layers = 1;
  float dropout = 0.2f;
  float alpha = 0.1f;  // calibrated at this scale; the paper's 0.03 is the
                       // MetaSgclConfig default (see EXPERIMENTS.md)
  float tau = 1.0f;
  bool use_decoder = false;  // score from z (Eq. 21-22); see DESIGN.md
  nn::Similarity similarity = nn::Similarity::kDot;
  core::TrainingMode mode = core::TrainingMode::kMetaTwoStep;
  int64_t meta_steps = 3;  // calibrated: stage-2 repetitions per batch
  bool use_cl = true;
  bool use_kl = true;

  // Early stopping (paper §V.A trains to convergence with a large patience;
  // scaled down here). eval_every = 0 disables (fixed-epoch training).
  int64_t eval_every = 2;
  int64_t patience = 4;
};

inline models::TrainConfig MakeTrainConfig(const DatasetSpec& ds, int64_t epochs,
                                           uint64_t seed, const HyperParams& hp = {}) {
  models::TrainConfig t;
  t.epochs = epochs;
  t.batch_size = 128;
  t.max_len = ds.max_len;
  t.lr = 3e-3f;
  t.seed = seed;
  t.eval_every = hp.eval_every;
  t.patience = hp.patience;
  return t;
}

inline models::BackboneConfig MakeBackbone(const DatasetSpec& ds, const HyperParams& hp) {
  models::BackboneConfig b;
  b.num_items = ds.split.num_items;
  b.max_len = ds.max_len;
  b.dim = hp.dim;
  b.heads = hp.heads;
  b.layers = hp.layers;
  b.dropout = hp.dropout;
  return b;
}

/// Creates a Table II model by name. Names: Pop, BPR-MF, GRU4Rec, Caser,
/// SASRec, BERT4Rec, VSAN, ACVAE, DuoRec, ContrastVAE, Meta-SGCL.
inline std::unique_ptr<models::Recommender> MakeModel(const std::string& name,
                                                      const DatasetSpec& ds,
                                                      const HyperParams& hp,
                                                      int64_t epochs, uint64_t seed) {
  models::TrainConfig train = MakeTrainConfig(ds, epochs, seed, hp);
  Rng rng(seed * 7919 + 17);
  if (name == "Pop") return std::make_unique<models::Pop>();
  if (name == "BPR-MF") {
    return std::make_unique<models::BprMf>(models::BprMfConfig{hp.dim, 1e-5f}, train, rng);
  }
  if (name == "GRU4Rec") {
    models::Gru4RecConfig c;
    c.num_items = ds.split.num_items;
    c.dim = hp.dim;
    c.dropout = hp.dropout;
    return std::make_unique<models::Gru4Rec>(c, train, rng);
  }
  if (name == "Caser") {
    models::CaserConfig c;
    c.num_items = ds.split.num_items;
    c.dim = hp.dim;
    c.dropout = hp.dropout;
    return std::make_unique<models::Caser>(c, train, rng);
  }
  if (name == "SASRec") {
    return std::make_unique<models::SasRec>(MakeBackbone(ds, hp), train, rng);
  }
  if (name == "BERT4Rec") {
    models::Bert4RecConfig c;
    c.backbone = MakeBackbone(ds, hp);
    return std::make_unique<models::Bert4Rec>(c, train, rng);
  }
  if (name == "VSAN") {
    models::VsanConfig c;
    c.backbone = MakeBackbone(ds, hp);
    c.beta = ds.beta;
    return std::make_unique<models::Vsan>(c, train, rng);
  }
  if (name == "ACVAE") {
    models::AcvaeConfig c;
    c.backbone = MakeBackbone(ds, hp);
    c.beta = ds.beta;
    c.tau = hp.tau;
    return std::make_unique<models::Acvae>(c, train, rng);
  }
  if (name == "DuoRec") {
    models::DuoRecConfig c;
    c.backbone = MakeBackbone(ds, hp);
    c.lambda = 0.1f;
    // DuoRec's views are post-LayerNorm hidden states (norm ~ sqrt(d));
    // unnormalised dot-product logits saturate, so its CL head uses cosine
    // with a moderate temperature (calibrated; see EXPERIMENTS.md).
    c.tau = 0.5f;
    c.similarity = nn::Similarity::kCosine;
    return std::make_unique<models::DuoRec>(c, train, rng);
  }
  if (name == "ContrastVAE") {
    models::ContrastVaeConfig c;
    c.backbone = MakeBackbone(ds, hp);
    c.alpha = hp.alpha;
    c.beta = ds.beta;
    c.tau = hp.tau;
    return std::make_unique<models::ContrastVae>(std::move(c), train, rng);
  }
  if (name == "Meta-SGCL") {
    core::MetaSgclConfig c;
    c.backbone = MakeBackbone(ds, hp);
    c.alpha = hp.alpha;
    c.beta = ds.beta;
    c.tau = hp.tau;
    c.similarity = hp.similarity;
    c.mode = hp.mode;
    c.use_cl = hp.use_cl;
    c.use_kl = hp.use_kl;
    c.use_decoder = hp.use_decoder;
    c.meta_steps = hp.meta_steps;
    return std::make_unique<core::MetaSgcl>(c, train, rng);
  }
  MSGCL_CHECK_MSG(false, "unknown model name: " << name);
  return nullptr;
}

/// Trains and evaluates; returns the four Table II metrics + wall time.
struct RunResult {
  eval::Metrics metrics;
  double train_seconds = 0.0;
};

inline RunResult TrainAndEvaluate(models::Recommender& model, const DatasetSpec& ds) {
  const auto t0 = std::chrono::steady_clock::now();
  model.Fit(ds.split);
  const auto t1 = std::chrono::steady_clock::now();
  eval::EvalConfig cfg;
  cfg.max_len = ds.max_len;
  RunResult r;
  r.metrics = eval::Evaluate(model, ds.split, eval::Split::kTest, cfg);
  r.train_seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

// ---- JSON reports ---------------------------------------------------------

/// Appends a "profile" section with the per-op kernel timings accumulated in
/// `reg` so far (calls, wall nanoseconds, bytes touched) plus every non-zero
/// counter. Empty op list in an MSGCL_OBS=OFF build.
inline void AppendProfileSection(obs::JsonWriter& w, const obs::Registry& reg) {
  const obs::Snapshot snap = reg.TakeSnapshot();
  w.Key("profile");
  w.BeginObject();
  w.Key("obs_enabled");
  w.Bool(obs::kEnabled);
  w.Key("ops");
  w.BeginArray();
  for (const auto& op : snap.ops) {
    w.BeginObject();
    w.Key("name");
    w.String(op.name);
    w.Key("calls");
    w.Int(op.calls);
    w.Key("total_ns");
    w.Int(op.total_ns);
    w.Key("self_ns");
    w.Int(op.self_ns);
    w.Key("bytes");
    w.Int(op.bytes);
    w.EndObject();
  }
  w.EndArray();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.EndObject();
}

/// Writes a BENCH_*.json report through the shared obs::JsonWriter, the one
/// JSON emitter in the repo (escaped strings, locale-independent to_chars
/// floats — see src/obs/json.h for the bugs this replaces). `body` receives
/// the writer positioned inside the top-level object, right after the
/// "benchmark" key; a "profile" section with the kernel profile of the run
/// that produced the report is attached automatically.
inline Status WriteBenchReport(const std::string& path, const std::string& benchmark,
                               const std::function<void(obs::JsonWriter&)>& body) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("benchmark");
  w.String(benchmark);
  body(w);
  AppendProfileSection(w, obs::Registry::Global());
  w.EndObject();
  std::string out = w.Take();
  out += '\n';
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  if (std::fclose(f) != 0 || written != out.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

// ---- Table printing -------------------------------------------------------

inline void PrintRule(int label_width, int cols) {
  std::printf("%s", std::string(label_width + 2, '-').c_str());
  for (int i = 0; i < cols; ++i) std::printf("+--------");
  std::printf("\n");
}

inline void PrintHeader(const std::string& label, const std::vector<std::string>& cols) {
  std::printf("%-22s", label.c_str());
  for (const auto& c : cols) std::printf("| %6s ", c.c_str());
  std::printf("\n");
  PrintRule(20, static_cast<int>(cols.size()));
}

inline void PrintMetricsRow(const std::string& label, const eval::Metrics& m) {
  std::printf("%-22s| %.4f | %.4f | %.4f | %.4f\n", label.c_str(), m.hr5, m.hr10, m.ndcg5,
              m.ndcg10);
}

/// The standard HR/NDCG column set used by most tables.
inline std::vector<std::string> MetricCols() { return {"HR@5", "HR@10", "NDCG@5", "NDCG@10"}; }

}  // namespace bench
}  // namespace msgcl

#endif  // MSGCL_BENCH_BENCH_UTIL_H_
