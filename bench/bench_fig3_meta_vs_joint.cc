// Fig. 3 (RQ2): meta-optimized two-step training vs plain joint training of
// the identical architecture and objective, on all three datasets.
// Paper shape: the two-step strategy beats joint learning everywhere.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.25);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  std::printf("== Fig. 3: joint learning vs meta-optimized two-step (scale=%.2f, "
              "epochs=%lld) ==\n",
              scale, static_cast<long long>(epochs));
  auto datasets = bench::MakeDatasets(scale, seed);
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-18s %8s %8s %8s %8s\n", "strategy", "HR@5", "HR@10", "NDCG@5",
                "NDCG@10");
    for (auto mode : {core::TrainingMode::kJoint, core::TrainingMode::kMetaTwoStep}) {
      bench::HyperParams hp;
      hp.mode = mode;
      auto model = bench::MakeModel("Meta-SGCL", ds, hp, epochs, seed);
      auto r = bench::TrainAndEvaluate(*model, ds);
      std::printf("%-18s %8.4f %8.4f %8.4f %8.4f\n",
                  mode == core::TrainingMode::kJoint ? "joint" : "meta-two-step",
                  r.metrics.hr5, r.metrics.hr10, r.metrics.ndcg5, r.metrics.ndcg10);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: meta-two-step > joint on every dataset\n");
  return 0;
}
