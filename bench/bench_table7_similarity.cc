// Table VII (RQ4.7): dot-product vs cosine similarity inside the InfoNCE
// objective, on Clothing and Toys.
// Paper shape: dot product wins on both datasets.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  auto datasets = bench::MakeDatasets(scale, seed);
  datasets.resize(2);

  std::printf("== Table VII: similarity function in InfoNCE (scale=%.2f, epochs=%lld) ==\n",
              scale, static_cast<long long>(epochs));
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-8s %8s %8s %8s %8s\n", "sim", "HR@5", "HR@10", "NDCG@5", "NDCG@10");
    for (auto sim : {nn::Similarity::kDot, nn::Similarity::kCosine}) {
      bench::HyperParams hp;
      hp.similarity = sim;
      auto model = bench::MakeModel("Meta-SGCL", ds, hp, epochs, seed);
      auto r = bench::TrainAndEvaluate(*model, ds);
      std::printf("%-8s %8.4f %8.4f %8.4f %8.4f\n",
                  sim == nn::Similarity::kDot ? "dot" : "cosine", r.metrics.hr5,
                  r.metrics.hr10, r.metrics.ndcg5, r.metrics.ndcg10);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: dot product >= cosine on both datasets\n");
  return 0;
}
