// Table III (RQ3): ablation of Meta-SGCL. Variants:
//   -clkl : no KL, no CL (degenerates to a deterministic SASRec-style model)
//   -cl   : KL only (single-view variational model)
//   -kl   : CL only (two generated views, no prior matching)
//   full  : Meta-SGCL
// Paper shape: -clkl worst, -cl and -kl in between (roughly equal), full best.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.25);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  struct Variant {
    const char* label;
    bool use_cl, use_kl;
  };
  const Variant variants[] = {
      {"-clkl", false, false}, {"-cl", false, true}, {"-kl", true, false},
      {"Meta-SGCL", true, true}};

  std::printf("== Table III: ablation study (scale=%.2f, epochs=%lld) ==\n", scale,
              static_cast<long long>(epochs));
  auto datasets = bench::MakeDatasets(scale, seed);
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-12s %8s %8s %8s %8s\n", "variant", "HR@5", "HR@10", "NDCG@5", "NDCG@10");
    for (const auto& v : variants) {
      bench::HyperParams hp;
      hp.use_cl = v.use_cl;
      hp.use_kl = v.use_kl;
      auto model = bench::MakeModel("Meta-SGCL", ds, hp, epochs, seed);
      auto r = bench::TrainAndEvaluate(*model, ds);
      std::printf("%-12s %8.4f %8.4f %8.4f %8.4f\n", v.label, r.metrics.hr5, r.metrics.hr10,
                  r.metrics.ndcg5, r.metrics.ndcg10);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: -clkl worst; -cl ~ -kl in between; full Meta-SGCL best\n");
  return 0;
}
