// Table VI (RQ4.6): influence of the dropout rate in {0, 0.1, 0.2, 0.3, 0.4}
// on Clothing and Toys.
// Paper shape: 0 worst (overfitting), ~0.2 best, large rates decline.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  auto datasets = bench::MakeDatasets(scale, seed);
  datasets.resize(2);

  std::printf("== Table VI: dropout rate (scale=%.2f, epochs=%lld) ==\n", scale,
              static_cast<long long>(epochs));
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-8s %8s %8s %8s %8s\n", "dropout", "HR@5", "HR@10", "NDCG@5", "NDCG@10");
    for (double p : quick ? std::vector<double>{0.0, 0.2}
                          : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4}) {
      bench::HyperParams hp;
      hp.dropout = static_cast<float>(p);
      auto model = bench::MakeModel("Meta-SGCL", ds, hp, epochs, seed);
      auto r = bench::TrainAndEvaluate(*model, ds);
      std::printf("%-8g %8.4f %8.4f %8.4f %8.4f\n", p, r.metrics.hr5, r.metrics.hr10,
                  r.metrics.ndcg5, r.metrics.ndcg10);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: rate 0 worst; ~0.2 best; decline beyond\n");
  return 0;
}
