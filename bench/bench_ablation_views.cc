// Extension ablation (DESIGN.md §5, motivated by the paper's Fig. 1): where
// should contrastive views come from? Compares, under the identical InfoNCE
// head and backbone:
//   * generated views  — Meta-SGCL's Seq2Seq generator (sigma / sigma' heads)
//   * dropout views    — DuoRec-style model augmentation (two dropout passes)
//   * edit views       — CL4SRec crop/mask/reorder data augmentation
//                        (ContrastVAE without the variational machinery would
//                        be the closest paper analogue)
// Paper's implied shape: generated views win because random edits can break
// sequential semantics.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace msgcl;
  bench::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const double scale = flags.GetDouble("scale", quick ? 0.08 : 0.2);
  const int64_t epochs = flags.GetInt("epochs", quick ? 2 : 20);
  const uint64_t seed = flags.GetInt("seed", 42);

  auto datasets = bench::MakeDatasets(scale, seed);
  datasets.resize(2);

  std::printf("== View-source ablation (scale=%.2f, epochs=%lld) ==\n", scale,
              static_cast<long long>(epochs));
  for (auto& ds : datasets) {
    std::printf("\n-- %s --\n", ds.name.c_str());
    std::printf("%-22s %8s %8s %8s %8s\n", "view source", "HR@5", "HR@10", "NDCG@5",
                "NDCG@10");
    {
      bench::HyperParams hp;
      auto model = bench::MakeModel("Meta-SGCL", ds, hp, epochs, seed);
      auto r = bench::TrainAndEvaluate(*model, ds);
      std::printf("%-22s %8.4f %8.4f %8.4f %8.4f\n", "generated (Meta-SGCL)",
                  r.metrics.hr5, r.metrics.hr10, r.metrics.ndcg5, r.metrics.ndcg10);
    }
    {
      // Dropout-based views with no supervised sampling = pure model
      // augmentation.
      models::DuoRecConfig c;
      c.backbone = bench::MakeBackbone(ds, bench::HyperParams{});
      c.supervised_positives = false;
      c.lambda = 0.1f;
      models::DuoRec model(c, bench::MakeTrainConfig(ds, epochs, seed), Rng(seed));
      auto r = bench::TrainAndEvaluate(model, ds);
      std::printf("%-22s %8.4f %8.4f %8.4f %8.4f\n", "dropout (DuoRec-u)", r.metrics.hr5,
                  r.metrics.hr10, r.metrics.ndcg5, r.metrics.ndcg10);
    }
    {
      // Crop/mask/reorder views through the variational pipeline.
      models::ContrastVaeConfig c;
      c.backbone = bench::MakeBackbone(ds, bench::HyperParams{});
      c.beta = ds.beta;
      models::ContrastVae model(std::move(c), bench::MakeTrainConfig(ds, epochs, seed),
                                Rng(seed));
      auto r = bench::TrainAndEvaluate(model, ds);
      std::printf("%-22s %8.4f %8.4f %8.4f %8.4f\n", "edits (ContrastVAE)", r.metrics.hr5,
                  r.metrics.hr10, r.metrics.ndcg5, r.metrics.ndcg10);
    }
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: generated views >= dropout views >= random edits\n");
  return 0;
}
