// Tests for the baseline recommenders: construction, loss finiteness,
// gradient flow, scoring contracts, determinism in eval mode, and small
// end-to-end learning checks on a tiny synthetic dataset.
#include <cmath>
#include <numeric>

#include "data/data.h"
#include "eval/eval.h"
#include "gtest/gtest.h"
#include "models/models.h"

namespace msgcl {
namespace models {
namespace {

data::SequenceDataset TinySplit(uint64_t seed = 7) {
  auto log = data::GenerateSynthetic(data::TinyDataset(seed)).value();
  return data::LeaveOneOutSplit(log);
}

TrainConfig QuickTrain(int64_t epochs = 3) {
  TrainConfig t;
  t.epochs = epochs;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  t.seed = 99;
  return t;
}

BackboneConfig TinyBackbone(const data::SequenceDataset& ds) {
  BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  b.dropout = 0.1f;
  return b;
}

bool AllFinite(const std::vector<float>& v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// ---------- Pop ----------

TEST(PopTest, RanksByFrequency) {
  data::SequenceDataset ds;
  ds.num_items = 4;
  ds.train_seqs = {{1, 1, 1, 2, 2, 3}};
  ds.valid_targets = {1};
  ds.test_targets = {1};
  Pop pop;
  pop.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 6);
  auto scores = pop.ScoreAll(b);
  EXPECT_GT(scores[1], scores[2]);
  EXPECT_GT(scores[2], scores[3]);
  EXPECT_GT(scores[3], scores[4]);  // unseen item 4 scores 0
  EXPECT_LT(scores[0], 0.0f);       // padding is never recommended
}

TEST(PopTest, SameScoresForEveryUser) {
  auto ds = TinySplit();
  Pop pop;
  pop.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1}, 8);
  auto scores = pop.ScoreAll(b);
  const int64_t n1 = ds.num_items + 1;
  for (int64_t i = 0; i < n1; ++i) EXPECT_EQ(scores[i], scores[n1 + i]);
}

// ---------- BPR-MF ----------

TEST(BprMfTest, TrainsAndScores) {
  auto ds = TinySplit();
  BprMf model({/*dim=*/8, /*weight_decay=*/1e-5f}, QuickTrain(3), Rng(1));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1, 2}, 8);
  auto scores = model.ScoreAll(b);
  ASSERT_EQ(scores.size(), 3u * (ds.num_items + 1));
  EXPECT_TRUE(AllFinite(scores));
  // Personalised: different users get different score vectors.
  bool differ = false;
  const int64_t n1 = ds.num_items + 1;
  for (int64_t i = 1; i < n1; ++i) differ = differ || scores[i] != scores[n1 + i];
  EXPECT_TRUE(differ);
}

TEST(BprMfTest, LearnsToPreferSeenItems) {
  // One user interacting only with item 1 should come to score it above a
  // never-seen item.
  data::SequenceDataset ds;
  ds.num_items = 20;
  for (int u = 0; u < 8; ++u) {
    ds.train_seqs.push_back({1, 2, 1, 2, 1});
    ds.valid_targets.push_back(1);
    ds.test_targets.push_back(2);
  }
  BprMf model({8, 0.0f}, QuickTrain(40), Rng(2));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 6);
  auto scores = model.ScoreAll(b);
  EXPECT_GT(scores[1], scores[15]);
  EXPECT_GT(scores[2], scores[15]);
}

// ---------- Shared neural-model contracts ----------

template <typename ModelT>
void ExpectScoreContract(ModelT& model, const data::SequenceDataset& ds) {
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1, 2, 3}, 12);
  auto s1 = model.ScoreAll(b);
  ASSERT_EQ(s1.size(), 4u * (ds.num_items + 1));
  EXPECT_TRUE(AllFinite(s1));
  // Eval-mode scoring must be deterministic.
  auto s2 = model.ScoreAll(b);
  EXPECT_EQ(s1, s2);
}

TEST(SasRecTest, ScoreContractAndDeterminism) {
  auto ds = TinySplit();
  SasRec model(TinyBackbone(ds), QuickTrain(2), Rng(3));
  ExpectScoreContract(model, ds);
}

TEST(SasRecTest, LossDecreasesOverTraining) {
  auto ds = TinySplit();
  SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(4));
  Rng rng(5);
  data::Batch batch = data::MakeTrainBatch(
      ds, []{ std::vector<int32_t> r(32); std::iota(r.begin(), r.end(), 0); return r; }(),
      12);
  model.SetTraining(true);
  const float before = model.Loss(batch, rng).item();
  model.Fit(ds);  // a couple of epochs
  model.SetTraining(true);
  Rng rng2(5);
  const float after = model.Loss(batch, rng2).item();
  model.SetTraining(false);
  EXPECT_LT(after, before);
}

TEST(SasRecTest, GradientsReachAllParameters) {
  auto ds = TinySplit();
  SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(6));
  Rng rng(7);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1, 2, 3}, 12);
  model.SetTraining(true);
  model.Loss(batch, rng).Backward();
  int with_grad = 0, total = 0;
  for (auto& [name, p] : model.NamedParameters()) {
    ++total;
    bool nz = false;
    for (float g : p.grad()) nz = nz || g != 0.0f;
    with_grad += nz;
  }
  // Position embeddings for padded slots may stay zero, but the vast
  // majority of tensors must receive gradient.
  EXPECT_GE(with_grad, total - 1);
}

TEST(Gru4RecTest, ScoreContract) {
  auto ds = TinySplit();
  Gru4RecConfig cfg;
  cfg.num_items = ds.num_items;
  cfg.dim = 16;
  cfg.dropout = 0.1f;
  Gru4Rec model(cfg, QuickTrain(2), Rng(8));
  ExpectScoreContract(model, ds);
}

TEST(CaserTest, ScoreContract) {
  auto ds = TinySplit();
  CaserConfig cfg;
  cfg.num_items = ds.num_items;
  cfg.dim = 16;
  Caser model(cfg, QuickTrain(2), Rng(9));
  ExpectScoreContract(model, ds);
}

TEST(Bert4RecTest, ScoreContract) {
  auto ds = TinySplit();
  Bert4RecConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  Bert4Rec model(cfg, QuickTrain(2), Rng(10));
  ExpectScoreContract(model, ds);
}

TEST(Bert4RecTest, MaskTokenNeverRecommended) {
  auto ds = TinySplit();
  Bert4RecConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  Bert4Rec model(cfg, QuickTrain(1), Rng(11));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  auto scores = model.ScoreAll(b);
  // Logits cover ids 0..num_items only — the mask token is excluded.
  EXPECT_EQ(scores.size(), static_cast<size_t>(ds.num_items + 1));
}

TEST(VsanTest, ScoreContract) {
  auto ds = TinySplit();
  VsanConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  Vsan model(cfg, QuickTrain(2), Rng(12));
  ExpectScoreContract(model, ds);
}

TEST(VsanTest, KlTermIsNonNegative) {
  auto ds = TinySplit();
  VsanConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  Vsan model(cfg, QuickTrain(1), Rng(13));
  Rng rng(14);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1, 2, 3}, 12);
  model.SetTraining(true);
  // KL >= 0 implies loss(with KL) >= plain CE for the same forward; here we
  // simply require the total loss to be finite and positive.
  Tensor loss = model.Loss(batch, rng);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(AcvaeTest, ScoreContract) {
  auto ds = TinySplit();
  AcvaeConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  Acvae model(cfg, QuickTrain(2), Rng(15));
  ExpectScoreContract(model, ds);
}

TEST(DuoRecTest, ScoreContract) {
  auto ds = TinySplit();
  DuoRecConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  DuoRec model(cfg, QuickTrain(2), Rng(16));
  ExpectScoreContract(model, ds);
}

TEST(DuoRecTest, UnsupervisedOnlyVariantRuns) {
  auto ds = TinySplit();
  DuoRecConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  cfg.supervised_positives = false;
  DuoRec model(cfg, QuickTrain(1), Rng(17));
  ExpectScoreContract(model, ds);
}

TEST(ContrastVaeTest, ScoreContract) {
  auto ds = TinySplit();
  ContrastVaeConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  ContrastVae model(cfg, QuickTrain(2), Rng(18));
  ExpectScoreContract(model, ds);
}

// ---------- Early stopping ----------

TEST(TrainerTest, EarlyStoppingRestoresBestWeights) {
  auto ds = TinySplit();
  TrainConfig t = QuickTrain(6);
  t.eval_every = 1;
  t.patience = 2;
  SasRec model(TinyBackbone(ds), t, Rng(19));
  model.Fit(ds);  // must terminate without crashing, weights restored
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  EXPECT_TRUE(AllFinite(model.ScoreAll(b)));
}

// ---------- Learning-signal integration ----------

TEST(IntegrationTest, SasRecBeatsPopOnSequentialData) {
  // The synthetic generator has a strong Markov signal; an order-aware model
  // must beat popularity ranking by a clear margin.
  auto ds = TinySplit(123);
  eval::EvalConfig ecfg;
  ecfg.max_len = 12;

  Pop pop;
  pop.Fit(ds);
  eval::Metrics mp = eval::Evaluate(pop, ds, eval::Split::kTest, ecfg);

  TrainConfig t = QuickTrain(12);
  SasRec sas(TinyBackbone(ds), t, Rng(20));
  sas.Fit(ds);
  eval::Metrics ms = eval::Evaluate(sas, ds, eval::Split::kTest, ecfg);

  EXPECT_GT(ms.hr10, mp.hr10 + 0.05) << "Pop " << mp.ToString() << " vs SASRec "
                                     << ms.ToString();
}

}  // namespace
}  // namespace models
}  // namespace msgcl
