// Chaos tests for the serving resilience layer (DESIGN.md §10): circuit
// breaker state machine under a fake clock, degraded-mode fallback ranking,
// admission-control shedding with exact counter deltas, numeric-health and
// timeout guards, serve-fault injector determinism, and a SystemClock chaos
// storm asserting availability 1.0 with zero garbage.
//
// These carry the `chaos` ctest label so the sanitized presets
// (`ctest --preset asan-serve` / `tsan-serve`) pick them up alongside the
// `serve` suite.
#include <chrono>
#include <cmath>
#include <future>
#include <vector>

#include "gtest/gtest.h"
#include "obs/registry.h"
#include "runtime/fault_injector.h"
#include "serve/serve.h"

namespace msgcl {
namespace serve {
namespace {

int64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetCounter(name).value();
}

// Same deterministic toy ranker as serve_test.cc: score depends only on the
// most recent input item, so expected lists are computable per request.
constexpr int32_t kToyItems = 50;

float ToyScore(int32_t last, int32_t i) {
  return static_cast<float>((i * 31 + last * 7) % 97);
}

class ToyRanker : public eval::Ranker {
 public:
  std::string name() const override { return "Toy"; }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    std::vector<float> scores(batch.batch_size * (kToyItems + 1), 0.0f);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const int32_t last = batch.inputs[(b + 1) * batch.seq_len - 1];
      for (int32_t i = 1; i <= kToyItems; ++i) {
        scores[b * (kToyItems + 1) + i] = ToyScore(last, i);
      }
    }
    return scores;
  }
};

eval::TopKList ToyExpected(const std::vector<int32_t>& history, int64_t k) {
  const int32_t last = history.empty() ? 0 : history.back();
  eval::TopKList all;
  for (int32_t i = 1; i <= kToyItems; ++i) {
    if (std::find(history.begin(), history.end(), i) != history.end()) continue;
    all.push_back({i, ToyScore(last, i)});
  }
  std::sort(all.begin(), all.end(), eval::BetterScored);
  if (static_cast<int64_t>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

/// One-batch-per-submit config: max_batch=1 flushes every request as its own
/// batch without any clock advance, so scored-batch indices line up with
/// submit order and ServeFaultPlan::fault_batches targets exact requests.
ServeConfig ChaosConfig() {
  ServeConfig c;
  c.k = 5;
  c.max_len = 8;
  c.max_batch = 1;
  c.max_wait_us = 100;
  c.breaker.degraded_after = 1;
  c.breaker.open_after = 2;
  c.breaker.open_backoff_us = 1000;
  c.breaker.backoff_multiplier = 2.0;
  c.breaker.max_backoff_us = 8000;
  return c;
}

FallbackRanker ToyFallback() {
  // Popularity: item 1 most popular, then 2, then 3; the rest count 0.
  return FallbackRanker::FromSequences({{1, 1, 1, 2, 2, 3}}, kToyItems);
}

Result<Response> SubmitAndGet(MicroBatcher& batcher,
                              const std::vector<int32_t>& history) {
  return batcher.Submit({history, 0}).get();
}

// ---- Circuit breaker unit tests (FakeClock, no batcher) --------------------

TEST(BreakerTest, WalksHealthyDegradedOpenAndClosesOnProbeSuccess) {
  FakeClock clock;
  BreakerConfig config;
  config.degraded_after = 1;
  config.open_after = 3;
  config.open_backoff_us = 1000;
  CircuitBreaker breaker(config, &clock);

  EXPECT_EQ(breaker.state(), BreakerState::kHealthy);
  EXPECT_EQ(breaker.OnBatchStart(), CircuitBreaker::Decision::kScore);

  breaker.OnBatchResult(false);
  EXPECT_EQ(breaker.state(), BreakerState::kDegraded);
  breaker.OnBatchResult(false);
  EXPECT_EQ(breaker.state(), BreakerState::kDegraded);
  breaker.OnBatchResult(false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.consecutive_failures(), 3);

  // Open and inside the backoff window: everything falls back.
  EXPECT_EQ(breaker.OnBatchStart(), CircuitBreaker::Decision::kFallback);
  clock.Advance(500);
  EXPECT_EQ(breaker.OnBatchStart(), CircuitBreaker::Decision::kFallback);

  // Past the backoff: exactly one probe is admitted; concurrent batches
  // still fall back while it is in flight.
  clock.Advance(600);
  EXPECT_EQ(breaker.OnBatchStart(), CircuitBreaker::Decision::kScore);
  EXPECT_EQ(breaker.OnBatchStart(), CircuitBreaker::Decision::kFallback);

  breaker.OnBatchResult(true);  // probe succeeds -> closed
  EXPECT_EQ(breaker.state(), BreakerState::kHealthy);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_EQ(breaker.OnBatchStart(), CircuitBreaker::Decision::kScore);
}

TEST(BreakerTest, FailedProbeGrowsBackoffExponentiallyUpToCap) {
  FakeClock clock;
  BreakerConfig config;
  config.degraded_after = 1;
  config.open_after = 1;
  config.open_backoff_us = 1000;
  config.backoff_multiplier = 2.0;
  config.max_backoff_us = 3000;
  CircuitBreaker breaker(config, &clock);

  breaker.OnBatchResult(false);  // open immediately
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.backoff_us(), 1000);

  // Each failed probe doubles the backoff until the cap.
  for (const int64_t expected : {2000, 3000, 3000}) {
    clock.Advance(breaker.backoff_us() + 1);
    ASSERT_EQ(breaker.OnBatchStart(), CircuitBreaker::Decision::kScore);
    breaker.OnBatchResult(false);
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.backoff_us(), expected);
  }

  // A successful probe resets the backoff schedule.
  clock.Advance(breaker.backoff_us() + 1);
  ASSERT_EQ(breaker.OnBatchStart(), CircuitBreaker::Decision::kScore);
  breaker.OnBatchResult(true);
  EXPECT_EQ(breaker.state(), BreakerState::kHealthy);
  EXPECT_EQ(breaker.backoff_us(), 1000);
}

// ---- Batcher-level chaos (FakeClock, deterministic fault plans) ------------

TEST(ChaosTest, ScoreThrowDegradesToFallbackAndBreakerRecovers) {
  const int64_t degraded0 = CounterValue("serve.degraded");
  const int64_t failures0 = CounterValue("serve.score_failures");
  const int64_t opens0 = CounterValue("serve.breaker.opens");
  const int64_t probes0 = CounterValue("serve.breaker.probes");
  const int64_t probe_ok0 = CounterValue("serve.breaker.probe_successes");

  ToyRanker model;
  FakeClock clock;
  runtime::ServeFaultPlan plan;
  plan.fault_batches = {0, 1};  // first two scored batches throw
  plan.kinds = {runtime::ServeFaultKind::kScoreThrow};
  runtime::ServeFaultInjector injector(plan);
  const FallbackRanker fallback = ToyFallback();

  ServeConfig config = ChaosConfig();
  config.fallback = &fallback;
  config.fault_injector = &injector;
  MicroBatcher batcher(model, kToyItems, config, &clock);

  // Batch 0 throws: served degraded, breaker enters Degraded.
  Result<Response> r = SubmitAndGet(batcher, {7});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);
  EXPECT_EQ(batcher.breaker().state(), BreakerState::kDegraded);
  // Fallback order is popularity: 1, 2, 3, then ids ascending among count-0.
  ASSERT_EQ(r.value().topk.size(), 5u);
  EXPECT_EQ(r.value().topk[0].item, 1);
  EXPECT_EQ(r.value().topk[1].item, 2);
  EXPECT_EQ(r.value().topk[2].item, 3);

  // Batch 1 throws: breaker opens.
  r = SubmitAndGet(batcher, {7});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().degraded);
  EXPECT_EQ(batcher.breaker().state(), BreakerState::kOpen);

  // Open + inside backoff: served from fallback WITHOUT scoring — the
  // injector sees no new batch.
  r = SubmitAndGet(batcher, {7});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().degraded);
  EXPECT_EQ(injector.injected_faults(), 2);

  // Past the backoff, the half-open probe scores cleanly and closes the
  // breaker; the response is a real model result.
  clock.Advance(1500);
  r = SubmitAndGet(batcher, {7});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().degraded);
  EXPECT_EQ(batcher.breaker().state(), BreakerState::kHealthy);
  const eval::TopKList expected = ToyExpected({7}, 5);
  ASSERT_EQ(r.value().topk.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.value().topk[i].item, expected[i].item);
  }

  EXPECT_EQ(CounterValue("serve.degraded") - degraded0, 3);
  EXPECT_EQ(CounterValue("serve.score_failures") - failures0, 2);
  EXPECT_EQ(CounterValue("serve.breaker.opens") - opens0, 1);
  EXPECT_EQ(CounterValue("serve.breaker.probes") - probes0, 1);
  EXPECT_EQ(CounterValue("serve.breaker.probe_successes") - probe_ok0, 1);
}

TEST(ChaosTest, WithoutFallbackFailuresSurfaceAsTypedErrors) {
  ToyRanker model;
  FakeClock clock;
  runtime::ServeFaultPlan plan;
  plan.fault_batches = {0, 1};
  plan.kinds = {runtime::ServeFaultKind::kScoreThrow};
  runtime::ServeFaultInjector injector(plan);

  ServeConfig config = ChaosConfig();
  config.fault_injector = &injector;  // no fallback configured
  MicroBatcher batcher(model, kToyItems, config, &clock);

  // Failed batches: INTERNAL carrying the scoring failure.
  Result<Response> r = SubmitAndGet(batcher, {3});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
  r = SubmitAndGet(batcher, {3});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
  ASSERT_EQ(batcher.breaker().state(), BreakerState::kOpen);

  // Open breaker with no fallback: UNAVAILABLE, not a hang or garbage.
  r = SubmitAndGet(batcher, {3});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kUnavailable);

  // Recovery still works end to end.
  clock.Advance(1500);
  r = SubmitAndGet(batcher, {3});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().degraded);
  EXPECT_EQ(batcher.breaker().state(), BreakerState::kHealthy);
}

TEST(ChaosTest, NaNScoresFailTheBatchInsteadOfServingGarbage) {
  ToyRanker model;
  FakeClock clock;
  runtime::ServeFaultPlan plan;
  plan.fault_batches = {0};
  plan.kinds = {runtime::ServeFaultKind::kNaNScores};
  runtime::ServeFaultInjector injector(plan);
  const FallbackRanker fallback = ToyFallback();

  ServeConfig config = ChaosConfig();
  config.fallback = &fallback;
  config.fault_injector = &injector;
  MicroBatcher batcher(model, kToyItems, config, &clock);

  // Poisoned batch: the numeric guard rejects it and the fallback answers.
  // Every score in the response must be finite — NaNs never reach clients.
  Result<Response> r = SubmitAndGet(batcher, {5});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);
  for (const eval::ScoredItem& s : r.value().topk) {
    EXPECT_TRUE(std::isfinite(s.score));
  }
  EXPECT_EQ(batcher.breaker().state(), BreakerState::kDegraded);

  // Clean batch afterwards: model-scored again.
  r = SubmitAndGet(batcher, {5});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().degraded);
  EXPECT_EQ(batcher.breaker().state(), BreakerState::kHealthy);
}

TEST(ChaosTest, NaNScoresWithoutFallbackReportNonFiniteInternalError) {
  ToyRanker model;
  FakeClock clock;
  runtime::ServeFaultPlan plan;
  plan.fault_batches = {0};
  plan.kinds = {runtime::ServeFaultKind::kNaNScores};
  runtime::ServeFaultInjector injector(plan);

  ServeConfig config = ChaosConfig();
  config.fault_injector = &injector;
  MicroBatcher batcher(model, kToyItems, config, &clock);

  const Result<Response> r = SubmitAndGet(batcher, {5});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
  EXPECT_NE(r.status().ToString().find("non-finite"), std::string::npos)
      << r.status().ToString();
}

TEST(ChaosTest, SlowScoreBeyondTimeoutCountsAsBatchFailure) {
  ToyRanker model;
  FakeClock clock;
  runtime::ServeFaultPlan plan;
  plan.fault_batches = {0};
  plan.kinds = {runtime::ServeFaultKind::kSlowScore};
  runtime::ServeFaultInjector injector(plan);
  // Deterministic stall: advance the fake clock instead of sleeping.
  injector.set_slow_fn([&clock] { clock.Advance(1000); });
  const FallbackRanker fallback = ToyFallback();

  ServeConfig config = ChaosConfig();
  config.score_timeout_us = 500;
  config.fallback = &fallback;
  config.fault_injector = &injector;
  MicroBatcher batcher(model, kToyItems, config, &clock);

  const int64_t failures0 = CounterValue("serve.score_failures");
  Result<Response> r = SubmitAndGet(batcher, {9});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);  // too late to be useful -> degraded
  EXPECT_EQ(batcher.breaker().state(), BreakerState::kDegraded);
  EXPECT_EQ(CounterValue("serve.score_failures") - failures0, 1);

  // A fast batch is under the timeout and serves normally.
  r = SubmitAndGet(batcher, {9});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().degraded);
  EXPECT_EQ(batcher.breaker().state(), BreakerState::kHealthy);
}

TEST(ChaosTest, QueueCapacityShedsExcessWithExactCounts) {
  ToyRanker model;
  FakeClock clock;
  ServeConfig config;
  config.k = 5;
  config.max_len = 8;
  config.max_batch = 8;          // larger than capacity: nothing flushes early
  config.max_wait_us = 1000000;  // park the batch until we advance the clock
  config.queue_capacity = 4;
  MicroBatcher batcher(model, kToyItems, config, &clock);

  const int64_t shed0 = CounterValue("serve.shed");
  std::vector<std::future<Result<Response>>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(batcher.Submit({{static_cast<int32_t>(i + 1)}, 0}));
  }
  EXPECT_EQ(batcher.queue_depth(), 4);

  // Admission control: the next three are shed synchronously.
  for (int i = 0; i < 3; ++i) {
    const Result<Response> shed = batcher.Submit({{20}, 0}).get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), Status::Code::kResourceExhausted);
  }
  EXPECT_EQ(CounterValue("serve.shed") - shed0, 3);
  EXPECT_EQ(batcher.queue_depth(), 4);

  // The queued requests are unharmed: flush and serve them all.
  clock.Advance(2000000);
  for (int i = 0; i < 4; ++i) {
    const Result<Response> r = queued[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.value().degraded);
  }
  EXPECT_EQ(CounterValue("serve.shed") - shed0, 3);  // no further sheds
}

// ---- Fallback ranker -------------------------------------------------------

TEST(FallbackRankerTest, RanksByPopularityWithIdTiebreakAndExclusion) {
  const FallbackRanker ranker =
      FallbackRanker::FromSequences({{1, 2, 2, 3, 3, 3}}, 5);
  ASSERT_TRUE(ranker.ready());
  EXPECT_EQ(ranker.num_items(), 5);

  eval::ExcludeSet none;
  none.Seal();
  const eval::TopKList top3 = ranker.TopK(3, none);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].item, 3);  // count 3
  EXPECT_EQ(top3[1].item, 2);  // count 2
  EXPECT_EQ(top3[2].item, 1);  // count 1

  // k beyond the catalogue: all items, zero-count ties broken by id.
  const eval::TopKList all = ranker.TopK(10, none);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[3].item, 4);
  EXPECT_EQ(all[4].item, 5);

  // Exclusion skips items without disturbing the order of the rest.
  eval::ExcludeSet exclude;
  exclude.InsertRange({3, 4});
  exclude.Seal();
  const eval::TopKList filtered = ranker.TopK(3, exclude);
  ASSERT_EQ(filtered.size(), 3u);
  EXPECT_EQ(filtered[0].item, 2);
  EXPECT_EQ(filtered[1].item, 1);
  EXPECT_EQ(filtered[2].item, 5);

  EXPECT_FALSE(FallbackRanker().ready());
}

TEST(FallbackRankerTest, EmptyTrainingInteractionsYieldWellFormedZeroCountList) {
  // Regression: a fleet can come up before any interactions are logged. The
  // fallback must still produce a deterministic, well-formed list — every
  // item at count 0, ties broken by ascending id per the repo total order.
  const FallbackRanker ranker = FallbackRanker::FromSequences({}, 4);
  ASSERT_TRUE(ranker.ready());
  eval::ExcludeSet none;
  none.Seal();
  const eval::TopKList top = ranker.TopK(3, none);
  ASSERT_EQ(top.size(), 3u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].item, static_cast<int32_t>(i + 1));
    EXPECT_EQ(top[i].score, 0.0f);
  }
  // Sequences that exist but are empty are the same case.
  const FallbackRanker from_empty_seqs =
      FallbackRanker::FromSequences({{}, {}, {}}, 4);
  ASSERT_TRUE(from_empty_seqs.ready());
  const eval::TopKList top2 = from_empty_seqs.TopK(3, none);
  ASSERT_EQ(top2.size(), 3u);
  EXPECT_EQ(top2[0].item, 1);
}

TEST(FallbackRankerTest, KBeyondDistinctItemsReturnsShortWellFormedList) {
  // Regression: k >= the distinct-item count (or >= the non-excluded count)
  // returns min(k, available) entries in total order — never padding, never
  // duplicates, never an over-long list.
  const FallbackRanker ranker = FallbackRanker::FromSequences({{2, 2, 1}}, 3);
  eval::ExcludeSet none;
  none.Seal();
  const eval::TopKList all = ranker.TopK(100, none);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].item, 2);  // count 2
  EXPECT_EQ(all[1].item, 1);  // count 1
  EXPECT_EQ(all[2].item, 3);  // count 0

  // Every item excluded: an empty list is the well-formed answer.
  eval::ExcludeSet everything;
  everything.InsertRange({1, 2, 3});
  everything.Seal();
  EXPECT_TRUE(ranker.TopK(5, everything).empty());

  // A degraded response built from a short fallback list passes the same
  // structural check the loadgen applies to every response.
  Response degraded;
  degraded.topk = ranker.TopK(100, none);
  degraded.degraded = true;
  EXPECT_TRUE(ResponseIsUsable(degraded, 100));
}

// ---- Serve-fault injector determinism --------------------------------------

TEST(ServeFaultInjectorTest, SeededDrawSequenceIsDeterministicAndReplayable) {
  runtime::ServeFaultPlan plan;
  plan.fault_rate = 0.35;
  plan.seed = 123;
  plan.kinds = {runtime::ServeFaultKind::kScoreThrow,
                runtime::ServeFaultKind::kNaNScores,
                runtime::ServeFaultKind::kSlowScore};

  runtime::ServeFaultInjector a(plan);
  runtime::ServeFaultInjector b(plan);
  std::vector<runtime::ServeFaultKind> draws_a, draws_b;
  for (int i = 0; i < 200; ++i) draws_a.push_back(a.NextBatchFault());
  for (int i = 0; i < 200; ++i) draws_b.push_back(b.NextBatchFault());
  EXPECT_EQ(draws_a, draws_b);
  EXPECT_EQ(a.injected_faults(), b.injected_faults());
  EXPECT_GT(a.injected_faults(), 0);
  EXPECT_LT(a.injected_faults(), 200);

  // Reset rewinds to an identical replay.
  a.Reset();
  std::vector<runtime::ServeFaultKind> replay;
  for (int i = 0; i < 200; ++i) replay.push_back(a.NextBatchFault());
  EXPECT_EQ(replay, draws_a);
}

TEST(ServeFaultInjectorTest, ExplicitFaultBatchesFireExactly) {
  runtime::ServeFaultPlan plan;
  plan.fault_batches = {1, 3};
  plan.kinds = {runtime::ServeFaultKind::kScoreThrow};
  runtime::ServeFaultInjector injector(plan);
  EXPECT_EQ(injector.NextBatchFault(), runtime::ServeFaultKind::kNone);
  EXPECT_EQ(injector.NextBatchFault(), runtime::ServeFaultKind::kScoreThrow);
  EXPECT_EQ(injector.NextBatchFault(), runtime::ServeFaultKind::kNone);
  EXPECT_EQ(injector.NextBatchFault(), runtime::ServeFaultKind::kScoreThrow);
  EXPECT_EQ(injector.injected_faults(), 2);
}

// ---- End-to-end chaos storm (SystemClock) ----------------------------------

TEST(ChaosTest, StormWithFallbackKeepsFullAvailabilityAndZeroGarbage) {
  ToyRanker model;
  runtime::ServeFaultPlan plan;
  // Bernoulli faults at a 20% clip — well past the breaker's open threshold,
  // so the storm exercises shedding into fallback and recovery repeatedly.
  plan.fault_rate = 0.20;
  plan.kinds = {runtime::ServeFaultKind::kScoreThrow,
                runtime::ServeFaultKind::kNaNScores};
  plan.seed = 7;
  runtime::ServeFaultInjector injector(plan);
  const FallbackRanker fallback = ToyFallback();

  ServeConfig config;
  config.k = 5;
  config.max_len = 8;
  config.max_batch = 8;
  config.max_wait_us = 200;
  config.num_workers = 2;
  config.fallback = &fallback;
  config.fault_injector = &injector;
  config.breaker.degraded_after = 1;
  config.breaker.open_after = 2;
  config.breaker.open_backoff_us = 1000;
  config.breaker.max_backoff_us = 50000;
  MicroBatcher batcher(model, kToyItems, config);  // real SystemClock

  std::vector<std::vector<int32_t>> histories;
  for (int32_t i = 1; i <= 16; ++i) histories.push_back({i, (i % kToyItems) + 1});

  LoadgenConfig load;
  load.requests = 240;
  load.clients = 6;
  load.k = config.k;
  const LoadgenReport report = RunLoad(batcher, histories, load);
  batcher.Stop();

  EXPECT_EQ(report.requests, 240);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.garbage, 0);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.ok + report.degraded, 240);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
  // With a 20% fault rate some batches certainly failed; the fallback must
  // actually have been exercised, not just configured.
  if (injector.injected_faults() > 0) {
    EXPECT_GT(report.degraded, 0);
  }
}

}  // namespace
}  // namespace serve
}  // namespace msgcl
