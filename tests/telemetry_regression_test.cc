// Telemetry regression test: trains SASRec for two epochs on the fixed-seed
// tiny synthetic dataset and compares the per-epoch telemetry CSV against a
// checked-in golden file cell by cell (rtol 1e-5). Catches silent drift in
// the loss curve, grad norms, validation metrics, or the CSV schema itself.
//
// The golden was recorded with the default Release flags; this test is
// intentionally NOT under the `obs` ctest label so sanitizer presets (which
// build with different codegen flags) do not compare floats against it.
// Regenerate with: MSGCL_REGEN_GOLDEN=1 ./telemetry_regression_test
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/data.h"
#include "gtest/gtest.h"
#include "models/models.h"

namespace msgcl {
namespace {

struct Csv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

Csv ParseCsv(const std::string& path) {
  Csv csv;
  std::ifstream in(path);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (!line.empty() && line.back() == ',') cells.push_back("");
    if (first) {
      csv.header = cells;
      first = false;
    } else {
      csv.rows.push_back(cells);
    }
  }
  return csv;
}

std::string RunTraining(const std::string& csv_path) {
  std::remove(csv_path.c_str());
  auto log = data::GenerateSynthetic(data::TinyDataset(7)).value();
  auto ds = data::LeaveOneOutSplit(log);

  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  b.dropout = 0.1f;

  models::TrainConfig t;
  t.epochs = 2;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  t.seed = 99;
  t.eval_every = 1;  // every row carries validation HR/NDCG
  t.patience = 10;
  t.telemetry_path = csv_path;

  models::SasRec model(b, t, Rng(11));
  Status s = model.Fit(ds);
  return s.ok() ? std::string() : s.ToString();
}

TEST(TelemetryRegressionTest, TwoEpochSasRecCsvMatchesGolden) {
  const std::string golden_path =
      std::string(MSGCL_GOLDEN_DIR) + "/telemetry_sasrec_2epoch.csv";
  const std::string got_path = ::testing::TempDir() + "/telemetry_regression.csv";
  const std::string err = RunTraining(got_path);
  ASSERT_TRUE(err.empty()) << err;

  if (std::getenv("MSGCL_REGEN_GOLDEN") != nullptr) {
    std::ifstream in(got_path, std::ios::binary);
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
    ASSERT_TRUE(out.good()) << "cannot write golden " << golden_path;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  ASSERT_TRUE(std::ifstream(golden_path).good())
      << "missing golden " << golden_path
      << " (regenerate with MSGCL_REGEN_GOLDEN=1)";
  const Csv want = ParseCsv(golden_path);
  const Csv got = ParseCsv(got_path);

  ASSERT_EQ(got.header, want.header) << "telemetry CSV schema changed";
  ASSERT_EQ(got.rows.size(), want.rows.size());
  constexpr double kRtol = 1e-5;
  for (size_t r = 0; r < want.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].size(), want.header.size()) << "row " << r;
    ASSERT_EQ(want.rows[r].size(), want.header.size()) << "golden row " << r;
    for (size_t c = 0; c < want.header.size(); ++c) {
      const std::string& col = want.header[c];
      const std::string& g = got.rows[r][c];
      const std::string& w = want.rows[r][c];
      if (col == "wall_seconds") {
        // Timing is environment-dependent; require presence and positivity.
        EXPECT_GT(std::stod(g), 0.0) << "row " << r;
        continue;
      }
      if (w.empty()) {
        EXPECT_TRUE(g.empty()) << col << " row " << r;
        continue;
      }
      const double gv = std::stod(g);
      const double wv = std::stod(w);
      EXPECT_LE(std::fabs(gv - wv), kRtol * std::max(1.0, std::fabs(wv)))
          << col << " row " << r << ": got " << g << " want " << w;
    }
  }
  std::remove(got_path.c_str());
}

}  // namespace
}  // namespace msgcl
