// Property-based tests for the nn layer library: linearity laws, shape
// sweeps, optimizer convergence properties, and architecture invariants.
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"
#include "nn/nn.h"
#include "test_util.h"

namespace msgcl {
namespace nn {
namespace {

using msgcl::testing::CheckGradients;
using msgcl::testing::ExpectTensorNear;

// ---------- Linear layer laws ----------

class LinearSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LinearSweep, IsAffine) {
  // f(ax + by) == a f(x) + b f(y) - (a + b - 1) bias; test homogeneity of the
  // linear part via f(x) - f(0) which must be linear.
  auto [in, out] = GetParam();
  Rng rng(in * 100 + out);
  Linear lin(in, out, rng);
  Rng data_rng(7);
  Tensor x = Tensor::Randn({2, in}, data_rng);
  Tensor y = Tensor::Randn({2, in}, data_rng);
  Tensor zero = Tensor::Zeros({2, in});
  Tensor f0 = lin.Forward(zero);
  Tensor lhs = lin.Forward(x + y).Sub(f0);
  Tensor rhs = lin.Forward(x).Sub(f0).Add(lin.Forward(y).Sub(f0));
  ExpectTensorNear(lhs, rhs, 1e-4f, 1e-3f);
}

TEST_P(LinearSweep, GradCheck) {
  auto [in, out] = GetParam();
  Rng rng(in * 31 + out);
  Linear lin(in, out, rng);
  Rng data_rng(11);
  Tensor x = Tensor::Rand({2, in}, data_rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& v) { return lin.Forward(v[0]).Square().Sum(); }, {x});
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinearSweep,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 4, 6)));

// ---------- LayerNorm invariants ----------

class LayerNormSweep : public ::testing::TestWithParam<int> {};

TEST_P(LayerNormSweep, OutputInvariantToInputShiftAndScale) {
  const int d = GetParam();
  LayerNorm ln(d);
  Rng rng(d);
  Tensor x = Tensor::Randn({3, d}, rng);
  Tensor shifted = x.AddScalar(5.0f).MulScalar(2.0f);
  ExpectTensorNear(ln.Forward(x), ln.Forward(shifted), 1e-3f, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Dims, LayerNormSweep, ::testing::Values(2, 4, 16, 33));

// ---------- Dropout expectation property ----------

class DropoutSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropoutSweep, PreservesExpectation) {
  const double rate = GetParam();
  Dropout drop(static_cast<float>(rate));
  Rng rng(13);
  Tensor x = Tensor::Ones({20000});
  Tensor y = drop.Forward(x, rng);
  double mean = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) mean += y.at(i);
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 1.0, 0.05) << "inverted dropout must preserve E[x]";
}

INSTANTIATE_TEST_SUITE_P(Rates, DropoutSweep, ::testing::Values(0.1, 0.2, 0.4, 0.7));

// ---------- Attention invariants ----------

TEST(AttentionPropertyTest, PermutingBatchPermutesOutput) {
  Rng rng(17);
  MultiHeadSelfAttention attn(8, 2, 0.0f, rng);
  attn.SetTraining(false);
  Rng data_rng(18);
  Tensor a = Tensor::Randn({1, 4, 8}, data_rng);
  Tensor b = Tensor::Randn({1, 4, 8}, data_rng);
  Tensor ab = Tensor::Concat({a, b}, 0);
  Tensor ba = Tensor::Concat({b, a}, 0);
  Rng r1(1), r2(1);
  Tensor out_ab = attn.Forward(ab, true, nullptr, r1);
  Tensor out_ba = attn.Forward(ba, true, nullptr, r2);
  // Row 0 of ab == row 1 of ba.
  for (int64_t i = 0; i < 4 * 8; ++i) {
    ASSERT_NEAR(out_ab.at(i), out_ba.at(4 * 8 + i), 1e-5);
  }
}

TEST(AttentionPropertyTest, FirstPositionDependsOnlyOnItself) {
  // Under a causal mask, position 0 attends only to itself, so its output is
  // independent of every later position.
  Rng rng(19);
  MultiHeadSelfAttention attn(4, 1, 0.0f, rng);
  attn.SetTraining(false);
  Rng data_rng(20);
  Tensor x1 = Tensor::Randn({1, 5, 4}, data_rng);
  Tensor x2 = x1.Detach();
  for (int64_t i = 4; i < x2.numel(); ++i) x2.set(i, -x2.at(i));
  Rng r1(1), r2(1);
  Tensor y1 = attn.Forward(x1, true, nullptr, r1);
  Tensor y2 = attn.Forward(x2, true, nullptr, r2);
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(y1.at(j), y2.at(j), 1e-5);
}

// ---------- Optimizer properties ----------

TEST(OptimPropertyTest, AdamInvariantToGradientScale) {
  // Adam's update direction is scale-invariant: optimizing f and 100*f from
  // the same start should move parameters (nearly) identically.
  auto run = [](float scale) {
    Tensor p = Tensor::FromVector({1}, {5.0f}, true);
    Adam opt({p}, 0.1f);
    for (int i = 0; i < 20; ++i) {
      opt.ZeroGrad();
      p.Square().MulScalar(scale).Sum().Backward();
      opt.Step();
    }
    return p.at(0);
  };
  EXPECT_NEAR(run(1.0f), run(100.0f), 1e-2f);
}

TEST(OptimPropertyTest, SgdDivergesWithHugeLrAdamStaysBounded) {
  Tensor p1 = Tensor::FromVector({1}, {1.0f}, true);
  Adam adam({p1}, 1.0f);
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    p1.Square().Sum().Backward();
    adam.Step();
  }
  // Adam's per-step movement is bounded by ~lr regardless of curvature.
  EXPECT_LT(std::fabs(p1.at(0)), 60.0f);
}

class AdamLrSweep : public ::testing::TestWithParam<float> {};

TEST_P(AdamLrSweep, ConvergesOnConvexQuadratic) {
  Tensor p = Tensor::FromVector({2}, {4.0f, -2.0f}, true);
  Adam opt({p}, GetParam());
  for (int i = 0; i < 2500; ++i) {
    opt.ZeroGrad();
    p.Square().Sum().Backward();
    opt.Step();
  }
  EXPECT_NEAR(p.at(0), 0.0f, 0.1f);
  EXPECT_NEAR(p.at(1), 0.0f, 0.1f);
}

INSTANTIATE_TEST_SUITE_P(Lrs, AdamLrSweep, ::testing::Values(0.01f, 0.05f, 0.2f));

// ---------- Transformer scaling law (space complexity) ----------

class TransformerParamSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TransformerParamSweep, ParamsScaleLinearlyInLayersQuadraticallyInDim) {
  auto [dim, layers] = GetParam();
  Rng rng(dim * 7 + layers);
  TransformerConfig cfg;
  cfg.dim = dim;
  cfg.heads = 1;
  cfg.layers = layers;
  TransformerEncoder enc(cfg, rng);
  const int64_t d = dim;
  const int64_t per_block = 4 * (d * d + d) + 2 * (d * d + d) + 2 * 2 * d;
  EXPECT_EQ(enc.NumParameters(), layers * per_block);
}

INSTANTIATE_TEST_SUITE_P(Cfg, TransformerParamSweep,
                         ::testing::Combine(::testing::Values(4, 8, 16),
                                            ::testing::Values(1, 2, 4)));

// ---------- InfoNCE batch-size sweep ----------

class InfoNceBatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(InfoNceBatchSweep, LossIsFiniteAndPositive) {
  const int B = GetParam();
  Rng rng(B);
  Tensor z = Tensor::Randn({B, 8}, rng);
  Tensor zp = Tensor::Randn({B, 8}, rng);
  const float loss = InfoNce(z, zp, 1.0f).item();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
}

TEST_P(InfoNceBatchSweep, MoreNegativesRaiseRandomViewLoss) {
  // With random views, the loss should roughly grow with log(#negatives):
  // check it is at least log(B) - 2 (a loose information-theoretic floor).
  const int B = GetParam();
  Rng rng(B + 100);
  Tensor z = Tensor::Randn({B, 8}, rng);
  Tensor zp = Tensor::Randn({B, 8}, rng);
  EXPECT_GT(InfoNce(z, zp, 1.0f).item(), std::log(static_cast<float>(B)) - 2.0f);
}

INSTANTIATE_TEST_SUITE_P(Batches, InfoNceBatchSweep, ::testing::Values(2, 4, 16, 64));

}  // namespace
}  // namespace nn
}  // namespace msgcl
