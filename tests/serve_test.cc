// Tests for the batched serving subsystem (DESIGN.md §9): micro-batch
// coalescing under a fake clock, deadline fail-fast semantics, stop/drain
// behavior, and the fused ScoreTopK bit-identity contract — the fused
// backbone path must return byte-identical (item, score) lists to the
// ScoreAll + sort reference at every thread count.
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/meta_sgcl.h"
#include "data/data.h"
#include "gtest/gtest.h"
#include "models/models.h"
#include "obs/registry.h"
#include "parallel/parallel.h"
#include "serve/serve.h"

namespace msgcl {
namespace serve {
namespace {

/// Restores the entry thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallel::MaxThreads()) {}
  ~ThreadCountGuard() { parallel::SetNumThreads(saved_); }

 private:
  int saved_;
};

/// Bytewise equality of two top-k lists: same items AND bit-identical
/// scores (memcmp on the floats, so -0.0 vs 0.0 or NaN payloads would fail).
::testing::AssertionResult ListsBitEqual(const eval::TopKList& a,
                                         const eval::TopKList& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].item != b[i].item ||
        std::memcmp(&a[i].score, &b[i].score, sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "entry " << i << ": (" << a[i].item << ", " << a[i].score << ") vs ("
             << b[i].item << ", " << b[i].score << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---- Deterministic toy ranker for batcher-level tests ----------------------

constexpr int32_t kToyItems = 50;

/// Score of item `i` for a row whose most recent input item is `last`: a
/// cheap hash, so every request's expected top-k is computable independently
/// of how requests were batched together.
float ToyScore(int32_t last, int32_t i) {
  return static_cast<float>((i * 31 + last * 7) % 97);
}

class ToyRanker : public eval::Ranker {
 public:
  std::string name() const override { return "Toy"; }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    std::vector<float> scores(batch.batch_size * (kToyItems + 1), 0.0f);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const int32_t last = batch.inputs[(b + 1) * batch.seq_len - 1];
      for (int32_t i = 1; i <= kToyItems; ++i) {
        scores[b * (kToyItems + 1) + i] = ToyScore(last, i);
      }
    }
    return scores;
  }
};

/// Expected top-k for one toy request, computed with plain sort.
eval::TopKList ToyExpected(const std::vector<int32_t>& history, int64_t k,
                           bool exclude_seen) {
  const int32_t last = history.empty() ? 0 : history.back();
  eval::TopKList all;
  for (int32_t i = 1; i <= kToyItems; ++i) {
    if (exclude_seen &&
        std::find(history.begin(), history.end(), i) != history.end()) {
      continue;
    }
    all.push_back({i, ToyScore(last, i)});
  }
  std::sort(all.begin(), all.end(), eval::BetterScored);
  if (static_cast<int64_t>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

ServeConfig ToyConfig() {
  ServeConfig c;
  c.k = 5;
  c.max_len = 8;
  c.max_batch = 4;
  c.max_wait_us = 100;
  return c;
}

// ---- MicroBatcher: coalescing and failure semantics ------------------------

TEST(MicroBatcherTest, FullBatchFlushesWithoutTimeAdvancing) {
  ToyRanker model;
  FakeClock clock;
  MicroBatcher batcher(model, kToyItems, ToyConfig(), &clock);
  std::vector<std::vector<int64_t>> batches;
  batcher.set_batch_observer([&](const std::vector<int64_t>& ids) {
    batches.push_back(ids);
  });

  std::vector<std::future<Result<Response>>> futures;
  for (int r = 0; r < 4; ++r) {
    futures.push_back(batcher.Submit({{static_cast<int32_t>(r + 1), 10}, 0}));
  }
  for (int r = 0; r < 4; ++r) {
    const Result<Response> result = futures[static_cast<size_t>(r)].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result.value().degraded);
    EXPECT_TRUE(ListsBitEqual(
        result.value().topk,
        ToyExpected({static_cast<int32_t>(r + 1), 10}, 5, true)));
  }
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(MicroBatcherTest, PartialBatchFlushesAfterMaxWait) {
  ToyRanker model;
  FakeClock clock;
  MicroBatcher batcher(model, kToyItems, ToyConfig(), &clock);
  std::vector<std::vector<int64_t>> batches;
  batcher.set_batch_observer([&](const std::vector<int64_t>& ids) {
    batches.push_back(ids);
  });

  auto f0 = batcher.Submit({{3, 7}, 0});
  auto f1 = batcher.Submit({{4, 9}, 0});
  // Two of four slots filled: nothing flushes until the clock passes
  // arrival + max_wait_us.
  EXPECT_EQ(f0.wait_for(std::chrono::milliseconds(20)), std::future_status::timeout);
  clock.Advance(200);
  ASSERT_TRUE(f0.get().ok());
  ASSERT_TRUE(f1.get().ok());
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], (std::vector<int64_t>{0, 1}));
}

TEST(MicroBatcherTest, CoalescingIsDeterministicUnderFakeClock) {
  // Same submissions + same Advance calls => identical batch composition,
  // run to run.
  auto run_once = [] {
    ToyRanker model;
    FakeClock clock;
    MicroBatcher batcher(model, kToyItems, ToyConfig(), &clock);
    std::vector<std::vector<int64_t>> batches;
    batcher.set_batch_observer([&](const std::vector<int64_t>& ids) {
      batches.push_back(ids);
    });
    std::vector<std::future<Result<Response>>> futures;
    for (int r = 0; r < 4; ++r) {
      futures.push_back(batcher.Submit({{static_cast<int32_t>(r + 1)}, 0}));
    }
    for (auto& f : futures) ASSERT_TRUE(f.get().ok());
    futures.clear();
    futures.push_back(batcher.Submit({{11, 12}, 0}));
    futures.push_back(batcher.Submit({{13}, 0}));
    clock.Advance(200);
    for (auto& f : futures) ASSERT_TRUE(f.get().ok());
    batcher.Stop();
    ASSERT_EQ(batches.size(), 2u);
    EXPECT_EQ(batches[0], (std::vector<int64_t>{0, 1, 2, 3}));
    EXPECT_EQ(batches[1], (std::vector<int64_t>{4, 5}));
  };
  run_once();
  run_once();
}

TEST(MicroBatcherTest, ExpiredDeadlineFailsFastWithoutPoisoningBatch) {
  ToyRanker model;
  FakeClock clock;
  MicroBatcher batcher(model, kToyItems, ToyConfig(), &clock);

  auto expired = batcher.Submit({{5, 6}, /*deadline_us=*/50});
  auto live = batcher.Submit({{7, 8}, /*deadline_us=*/0});
  clock.Advance(200);  // flush at 100; deadline 50 already passed

  const Result<Response> dead = expired.get();
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), Status::Code::kDeadlineExceeded);

  const Result<Response> ok = live.get();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ListsBitEqual(ok.value().topk, ToyExpected({7, 8}, 5, true)));
}

TEST(MicroBatcherTest, InvalidItemIdsAreRejectedImmediately) {
  ToyRanker model;
  FakeClock clock;
  MicroBatcher batcher(model, kToyItems, ToyConfig(), &clock);
  auto zero = batcher.Submit({{0, 3}, 0});
  auto high = batcher.Submit({{kToyItems + 1}, 0});
  // Rejected synchronously — no clock advance needed for the futures.
  EXPECT_EQ(zero.get().status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(high.get().status().code(), Status::Code::kInvalidArgument);
}

TEST(MicroBatcherTest, MalformedTopKOptionsThrowTypedNotAbort) {
  // k <= 0 / negative num_items used to hit MSGCL_CHECK and abort the
  // process; on the serve path they are caller errors and must surface as
  // typed std::invalid_argument (TopKOptions::ValidateOrThrow).
  ToyRanker model;
  const std::vector<std::vector<int32_t>> inputs = {{1, 2, 3}};
  const data::Batch batch = data::MakeEvalBatch(inputs, {0}, 8);
  eval::TopKOptions opt;
  opt.k = 0;
  EXPECT_THROW(model.ScoreTopK(batch, opt), std::invalid_argument);
  opt.k = -4;
  EXPECT_THROW(model.ScoreTopK(batch, opt), std::invalid_argument);
  opt.k = 5;
  opt.num_items = -1;
  EXPECT_THROW(model.ScoreTopK(batch, opt), std::invalid_argument);
}

TEST(MicroBatcherTest, InvalidArgumentFromScoringIsTypedNotDegraded) {
  // A scoring call that throws std::invalid_argument is a deterministic
  // caller error: the batcher must fail the requests INVALID_ARGUMENT —
  // never INTERNAL, never the fallback (even when one is configured), and
  // without feeding the breaker — and keep serving the next batch exactly.
  class FlakyOptRanker : public eval::Ranker {
   public:
    std::string name() const override { return "FlakyOpt"; }
    std::vector<float> ScoreAll(const data::Batch& batch) override {
      if (throw_next.exchange(false)) {
        throw std::invalid_argument("TopKOptions: k must be > 0");
      }
      return ToyRanker().ScoreAll(batch);
    }
    std::atomic<bool> throw_next{false};
  };
  FlakyOptRanker model;
  const FallbackRanker fallback =
      FallbackRanker::FromSequences({{1, 2}, {2, 3}}, kToyItems);
  ServeConfig config = ToyConfig();
  config.max_batch = 1;
  config.max_wait_us = 0;
  config.fallback = &fallback;
  MicroBatcher batcher(model, kToyItems, config);

  const int64_t rejected_before =
      obs::Registry::Global().GetCounter("serve.rejected").value();
  model.throw_next = true;
  const auto bad = batcher.Submit({{1, 2, 3}, 0}).get();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(obs::Registry::Global().GetCounter("serve.rejected").value(),
            rejected_before + 1);

  // The very next request scores exactly — no degraded fallback, so the
  // invalid_argument neither tripped the breaker nor poisoned the worker.
  const std::vector<int32_t> history = {1, 2, 3};
  const auto good = batcher.Submit({history, 0}).get();
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_FALSE(good.value().degraded);
  EXPECT_TRUE(ListsBitEqual(good.value().topk,
                            ToyExpected(history, config.k, config.exclude_seen)));
  batcher.Stop();
}

TEST(MicroBatcherTest, StopDrainsQueueWithUnavailable) {
  ToyRanker model;
  FakeClock clock;
  ServeConfig config = ToyConfig();
  config.max_wait_us = 1000000;  // park the request until Stop
  MicroBatcher batcher(model, kToyItems, config, &clock);
  auto parked = batcher.Submit({{2}, 0});
  batcher.Stop();
  EXPECT_EQ(parked.get().status().code(), Status::Code::kUnavailable);
  // Submissions after Stop are rejected, not enqueued.
  EXPECT_EQ(batcher.Submit({{2}, 0}).get().status().code(),
            Status::Code::kUnavailable);
}

TEST(MicroBatcherTest, EmptyHistoryIsRejectedImmediately) {
  ToyRanker model;
  FakeClock clock;
  MicroBatcher batcher(model, kToyItems, ToyConfig(), &clock);
  // Resolved synchronously (no clock advance): validation happens at Submit.
  const Result<Response> r = batcher.Submit({{}, 0}).get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(MicroBatcherTest, LongHistoryScoresWindowButExcludesFullHistory) {
  // Truncation policy (DESIGN.md §10): scoring sees the most recent max_len
  // items, but exclude_seen applies to the FULL history — items the user
  // touched before the window must still never be recommended back.
  ToyRanker model;
  FakeClock clock;
  ServeConfig config = ToyConfig();
  config.max_len = 4;
  MicroBatcher batcher(model, kToyItems, config, &clock);

  const std::vector<int32_t> history = {9, 10, 1, 2, 3, 4};  // window: {1,2,3,4}
  auto future = batcher.Submit({history, 0});
  clock.Advance(200);
  const Result<Response> result = future.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // ToyRanker scores off the last item only, so the expected list is the
  // full-history exclusion over last-item scores.
  EXPECT_TRUE(ListsBitEqual(result.value().topk, ToyExpected(history, 5, true)));
  for (const eval::ScoredItem& s : result.value().topk) {
    EXPECT_NE(s.item, 9);   // outside the scoring window, still excluded
    EXPECT_NE(s.item, 10);
  }
}

TEST(MicroBatcherTest, StopSubmitRaceResolvesEveryFuture) {
  // Regression test for the Stop()/Submit() race (run under TSan via the
  // tsan-serve preset): submitters hammer the batcher while the main thread
  // stops it. Every future must resolve — to a served response or
  // UNAVAILABLE — and never hang or leak its promise.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  ToyRanker model;
  ServeConfig config = ToyConfig();
  config.num_workers = 2;
  MicroBatcher batcher(model, kToyItems, config);  // real SystemClock

  std::vector<std::vector<std::future<Result<Response>>>> futures(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        futures[static_cast<size_t>(t)].push_back(
            batcher.Submit({{static_cast<int32_t>(i % kToyItems + 1)}, 0}));
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::microseconds(300));
  batcher.Stop();  // races with in-flight Submits by design
  for (std::thread& th : submitters) th.join();

  int resolved = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready)
          << "future hung across Stop()";
      const Result<Response> r = f.get();
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), Status::Code::kUnavailable);
      }
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, kThreads * kPerThread);
}

TEST(MicroBatcherTest, DoubleStopIsIdempotent) {
  ToyRanker model;
  MicroBatcher batcher(model, kToyItems, ToyConfig());  // real SystemClock
  batcher.Stop();
  batcher.Stop();  // second Stop is a no-op, not a crash or a hang
  auto result = batcher.Submit({{1}, 0}).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(batcher.queue_depth(), 0);
}

TEST(MicroBatcherTest, ConcurrentStopsAllReturnAfterDrain) {
  // Regression test for concurrent Stop() (run under TSan via the tsan-serve
  // preset): the fleet Router stops a replica it failed out while the
  // destructor or a drill stops it too. Every Stop() call must block until
  // the workers are joined and the queue is drained — a caller returning
  // early while promises are unresolved would let the Router tear down state
  // the drain still needs.
  constexpr int kStoppers = 4;
  ToyRanker model;
  ServeConfig config = ToyConfig();
  config.max_wait_us = 1000000;  // park submissions until Stop drains them
  FakeClock clock;
  MicroBatcher batcher(model, kToyItems, config, &clock);
  std::vector<std::future<Result<Response>>> parked;
  for (int i = 0; i < 3; ++i) {
    parked.push_back(batcher.Submit({{static_cast<int32_t>(i + 1)}, 0}));
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> stoppers;
  for (int t = 0; t < kStoppers; ++t) {
    stoppers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      batcher.Stop();
      // Post-condition of ANY Stop() returning: the queue is fully drained.
      EXPECT_EQ(batcher.queue_depth(), 0);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& th : stoppers) th.join();

  for (auto& f : parked) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "parked future unresolved after Stop() returned";
    const Result<Response> r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kUnavailable);
  }
  auto rejected = batcher.Submit({{1}, 0}).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kUnavailable);
}

TEST(MicroBatcherTest, ServesRealModelUnderConcurrentLoad) {
  auto log = data::GenerateSynthetic(data::TinyDataset(7)).value();
  auto ds = data::LeaveOneOutSplit(log);
  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  models::SasRec model(b, models::TrainConfig{}, Rng(3));

  ServeConfig config;
  config.k = 10;
  config.max_len = 12;
  config.max_batch = 8;
  config.max_wait_us = 200;
  config.num_workers = 2;
  MicroBatcher batcher(model, ds.num_items, config);  // real SystemClock

  LoadgenConfig load;
  load.requests = 64;
  load.clients = 4;
  const LoadgenReport report = RunLoad(batcher, ds.train_seqs, load);
  EXPECT_EQ(report.requests, 64);
  EXPECT_EQ(report.ok, 64);
  EXPECT_EQ(report.errors, 0);
  EXPECT_GT(report.qps, 0.0);

  // Spot-check one request directly: k results, descending order, history
  // excluded.
  const std::vector<int32_t>& history = ds.train_seqs[0];
  auto result = batcher.Submit({history, 0}).get();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().degraded);
  const eval::TopKList& list = result.value().topk;
  ASSERT_EQ(list.size(), 10u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_TRUE(eval::BetterScored(list[i - 1], list[i]));
  }
  for (const eval::ScoredItem& s : list) {
    EXPECT_EQ(std::find(history.begin(), history.end(), s.item), history.end());
  }
}

// ---- Fused ScoreTopK bit-identity ------------------------------------------

/// Reference selection: full ScoreAll matrix + std::sort under the same
/// total order — deliberately a different algorithm from both the bounded
/// heap and the fused blocked-dot path.
std::vector<eval::TopKList> ReferenceTopK(eval::Ranker& model,
                                          const data::Batch& batch,
                                          const eval::TopKOptions& opt) {
  const std::vector<float> scores = model.ScoreAll(batch);
  const int64_t N1 = static_cast<int64_t>(scores.size()) / batch.batch_size;
  const std::vector<eval::ExcludeSet> exclude = eval::BuildExcludeSets(batch, opt);
  std::vector<eval::TopKList> out(batch.batch_size);
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    eval::TopKList all;
    for (int32_t i = 1; i < N1; ++i) {
      if (exclude[b].Contains(i)) continue;
      all.push_back({i, scores[b * N1 + i]});
    }
    std::sort(all.begin(), all.end(), eval::BetterScored);
    if (static_cast<int64_t>(all.size()) > opt.k) all.resize(static_cast<size_t>(opt.k));
    out[b] = std::move(all);
  }
  return out;
}

void ExpectFusedMatchesReference(eval::Ranker& model, const data::Batch& batch,
                                 const eval::TopKOptions& opt) {
  ThreadCountGuard guard;
  std::vector<std::vector<eval::TopKList>> per_thread_count;
  for (int threads : {1, 2, 7}) {
    parallel::SetNumThreads(threads);
    const std::vector<eval::TopKList> reference = ReferenceTopK(model, batch, opt);
    const std::vector<eval::TopKList> fused = model.ScoreTopK(batch, opt);
    ASSERT_EQ(fused.size(), reference.size());
    for (size_t b = 0; b < fused.size(); ++b) {
      EXPECT_TRUE(ListsBitEqual(fused[b], reference[b]))
          << "row " << b << " at " << threads << " threads";
    }
    per_thread_count.push_back(fused);
  }
  // Thread-invariance across counts, independent of the reference.
  for (size_t t = 1; t < per_thread_count.size(); ++t) {
    for (size_t b = 0; b < per_thread_count[t].size(); ++b) {
      EXPECT_TRUE(ListsBitEqual(per_thread_count[0][b], per_thread_count[t][b]))
          << "row " << b << " differs between thread counts";
    }
  }
}

TEST(ScoreTopKTest, SasRecFusedBitIdenticalToReference) {
  auto log = data::GenerateSynthetic(data::TinyDataset(11)).value();
  auto ds = data::LeaveOneOutSplit(log);
  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  models::SasRec model(b, models::TrainConfig{}, Rng(5));
  data::Batch batch = data::MakeEvalBatch(ds.train_seqs, {0, 1, 2, 3, 4}, 12);

  eval::TopKOptions opt;
  opt.k = 10;
  opt.num_items = ds.num_items;
  ExpectFusedMatchesReference(model, batch, opt);
}

TEST(ScoreTopKTest, SasRecFusedExcludeSeenParity) {
  auto log = data::GenerateSynthetic(data::TinyDataset(13)).value();
  auto ds = data::LeaveOneOutSplit(log);
  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  models::SasRec model(b, models::TrainConfig{}, Rng(6));
  data::Batch batch = data::MakeEvalBatch(ds.train_seqs, {0, 1, 2}, 12);

  eval::TopKOptions opt;
  opt.k = 7;
  opt.exclude_seen = true;
  std::vector<std::vector<int32_t>> extra(3);
  extra[1] = {1, 2, 3};  // extra per-row exclusions on top of the window
  opt.exclude = &extra;
  ExpectFusedMatchesReference(model, batch, opt);

  // Excluded ids must actually be absent.
  const std::vector<eval::TopKList> fused = model.ScoreTopK(batch, opt);
  for (const eval::ScoredItem& s : fused[1]) {
    EXPECT_GT(s.item, 3);
  }
}

TEST(ScoreTopKTest, MetaSgclFusedBitIdenticalToReference) {
  auto log = data::GenerateSynthetic(data::TinyDataset(17)).value();
  auto ds = data::LeaveOneOutSplit(log);
  core::MetaSgclConfig c;
  c.backbone.num_items = ds.num_items;
  c.backbone.max_len = 12;
  c.backbone.dim = 16;
  c.backbone.heads = 2;
  c.backbone.layers = 1;
  core::MetaSgcl model(c, models::TrainConfig{}, Rng(9));
  data::Batch batch = data::MakeEvalBatch(ds.train_seqs, {0, 1, 2, 3}, 12);

  eval::TopKOptions opt;
  opt.k = 10;
  opt.num_items = ds.num_items;
  ExpectFusedMatchesReference(model, batch, opt);
}

TEST(ScoreTopKTest, KLargerThanCatalogueReturnsAllItems) {
  ToyRanker model;
  data::Batch batch = data::MakeEvalBatch({{1, 2, 3}}, {0}, 8);
  eval::TopKOptions opt;
  opt.k = kToyItems * 2;
  const std::vector<eval::TopKList> lists = model.ScoreTopK(batch, opt);
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].size(), static_cast<size_t>(kToyItems));
  EXPECT_TRUE(ListsBitEqual(lists[0], ToyExpected({1, 2, 3}, kToyItems, false)));
}

// ---- Loadgen percentile helper ---------------------------------------------

TEST(LoadgenTest, ExactPercentilesAreOrderStatistics) {
  std::vector<int64_t> lat;
  for (int64_t i = 100; i >= 1; --i) lat.push_back(i);  // 1..100, shuffled-ish
  EXPECT_DOUBLE_EQ(ExactPercentileUs(lat, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs(lat, 95.0), 95.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs(lat, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs(lat, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs({42}, 99.0), 42.0);
}

TEST(LoadgenTest, PercentileEdgeCases) {
  // n = 1: every percentile is the single sample.
  EXPECT_DOUBLE_EQ(ExactPercentileUs({7}, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs({7}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs({7}, 100.0), 7.0);
  // n = 2, nearest rank: ceil(0.50 * 2) = 1 -> first order statistic;
  // ceil(0.95 * 2) = ceil(0.99 * 2) = 2 -> second.
  EXPECT_DOUBLE_EQ(ExactPercentileUs({20, 10}, 50.0), 10.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs({20, 10}, 95.0), 20.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs({20, 10}, 99.0), 20.0);
  // All-equal sample: flat across every percentile.
  const std::vector<int64_t> flat(9, 5);
  EXPECT_DOUBLE_EQ(ExactPercentileUs(flat, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs(flat, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs(flat, 99.0), 5.0);
  EXPECT_DOUBLE_EQ(ExactPercentileUs(flat, 100.0), 5.0);
}

// ---- BoundedTopK boundary behavior -----------------------------------------

TEST(BoundedTopKTest, KAtLeastCandidateCountReturnsAllSorted) {
  // k greater than the number of pushed candidates: everything comes back,
  // in the repo total order (score desc, id asc on ties).
  eval::BoundedTopK big(10);
  big.Push(3, 1.0f);
  big.Push(1, 2.0f);
  big.Push(2, 2.0f);  // score tie with item 1: lower id ranks first
  const eval::TopKList all = big.Take();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].item, 1);
  EXPECT_EQ(all[1].item, 2);
  EXPECT_EQ(all[2].item, 3);

  // k exactly equal to the candidate count is bit-identical to k > count.
  eval::BoundedTopK exact(3);
  exact.Push(3, 1.0f);
  exact.Push(1, 2.0f);
  exact.Push(2, 2.0f);
  EXPECT_TRUE(ListsBitEqual(exact.Take(), all));
}

// ---- ServeConfig validation at construction -------------------------------
//
// A nonsensical knob must be a typed error the embedding application can
// catch (std::invalid_argument from the PR 9 ValidateOrThrow convention),
// not a silent runtime misbehavior or a process abort.

TEST(ServeConfigValidationTest, EachBadKnobIsTypedInvalidArgument) {
  struct Case {
    const char* name;
    std::function<void(ServeConfig&)> set;
  };
  const std::vector<Case> cases = {
      {"k = 0", [](ServeConfig& c) { c.k = 0; }},
      {"negative k", [](ServeConfig& c) { c.k = -3; }},
      {"max_len = 0", [](ServeConfig& c) { c.max_len = 0; }},
      {"max_batch = 0", [](ServeConfig& c) { c.max_batch = 0; }},
      {"negative max_wait_us", [](ServeConfig& c) { c.max_wait_us = -1; }},
      {"num_workers = 0", [](ServeConfig& c) { c.num_workers = 0; }},
      {"negative queue_capacity", [](ServeConfig& c) { c.queue_capacity = -1; }},
      {"negative score_timeout_us", [](ServeConfig& c) { c.score_timeout_us = -1; }},
      {"negative session_idle_evict_us",
       [](ServeConfig& c) { c.session_idle_evict_us = -1; }},
      {"breaker degraded_after = 0",
       [](ServeConfig& c) { c.breaker.degraded_after = 0; }},
      {"breaker open_after below degraded_after",
       [](ServeConfig& c) {
         c.breaker.degraded_after = 3;
         c.breaker.open_after = 1;
       }},
  };
  ToyRanker model;
  FakeClock clock;
  for (const Case& c : cases) {
    ServeConfig config = ToyConfig();
    c.set(config);
    const Status s = config.Validate();
    ASSERT_FALSE(s.ok()) << c.name;
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << c.name;
    EXPECT_THROW(config.ValidateOrThrow(), std::invalid_argument) << c.name;
    EXPECT_THROW(MicroBatcher(model, kToyItems, config, &clock), std::invalid_argument)
        << c.name << ": construction must throw, not abort";
  }
}

TEST(ServeConfigValidationTest, ZeroQueueCapacityMeansUnboundedAndStaysValid) {
  ServeConfig config = ToyConfig();
  config.queue_capacity = 0;  // documented: 0 = unbounded admission queue
  EXPECT_TRUE(config.Validate().ok());
  ToyRanker model;
  FakeClock clock;
  EXPECT_NO_THROW(MicroBatcher(model, kToyItems, config, &clock));
}

TEST(ServeConfigValidationTest, DefaultConfigIsValid) {
  EXPECT_TRUE(ServeConfig{}.Validate().ok());
  EXPECT_NO_THROW(ServeConfig{}.ValidateOrThrow());
}

}  // namespace
}  // namespace serve
}  // namespace msgcl
