// Tests for the crash-safe online training loop (DESIGN.md §15): the WAL
// event log (framing, rotation, torn-tail recovery, corrupt-frame resync,
// the zero-committed-records-lost invariant across seeded fault schedules),
// the sliding-window dataset view, the drift monitor, the probation
// publish/rollback controller, and the OnlineTrainer session driver
// (warm-start, poisoned-update quarantine, crash-between-train-and-publish).
//
// These carry the `online` ctest label so the sanitized presets
// (`ctest --preset asan-online` / `tsan-online`) can select them.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/data.h"
#include "data/event_log.h"
#include "gtest/gtest.h"
#include "models/models.h"
#include "nn/serialize.h"
#include "obs/registry.h"
#include "runtime/online.h"
#include "serve/publish.h"
#include "serve/serve.h"

namespace msgcl {
namespace {

using data::EventLogConfig;
using data::EventLogWriter;
using data::InteractionEvent;
using data::ReadEventLog;

/// Fresh per-test directory (removed up front so reruns start clean).
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/online_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

InteractionEvent Ev(int64_t user, int32_t item, int64_t ts) {
  return InteractionEvent{user, item, ts};
}

EventLogConfig SmallSegments(const std::string& dir,
                             runtime::OnlineFaultInjector* inj = nullptr) {
  EventLogConfig c;
  c.dir = dir;
  c.segment_max_bytes = 3 * data::wal::kFrameBytes;  // rotate every 3 records
  c.fault_injector = inj;
  return c;
}

// ---------- WAL framing, rotation, recovery --------------------------------

TEST(EventLogTest, RoundTripAcrossSegmentRotation) {
  const std::string dir = FreshDir("roundtrip");
  EventLogWriter w;
  ASSERT_TRUE(w.Open(SmallSegments(dir)).ok());
  std::vector<InteractionEvent> written;
  for (int i = 0; i < 11; ++i) {
    written.push_back(Ev(i % 3, i + 1, 1000 + i));
    ASSERT_TRUE(w.Append(written.back()).ok());
  }
  ASSERT_TRUE(w.Close().ok());

  auto rec = ReadEventLog(dir);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec.value().clean());
  EXPECT_EQ(rec.value().events, written);
  // 11 records at 3 per segment = at least 3 sealed segments on disk.
  int sealed = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".log") ++sealed;
  }
  EXPECT_GE(sealed, 3);
}

TEST(EventLogTest, ValidateRejectsBadConfig) {
  EventLogConfig c;
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);  // empty dir
  c.dir = "/tmp/x";
  c.segment_max_bytes = 4;  // cannot hold one frame
  EXPECT_EQ(c.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(EventLogTest, ReadingAMissingDirectoryIsTypedNotFound) {
  auto rec = ReadEventLog(FreshDir("never_created"));
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), Status::Code::kNotFound);
}

TEST(EventLogTest, CrashedWriterReopensAndContinuesInPlace) {
  const std::string dir = FreshDir("reopen");
  {
    EventLogWriter w;
    ASSERT_TRUE(w.Open(SmallSegments(dir)).ok());
    ASSERT_TRUE(w.Append(Ev(1, 10, 1)).ok());
    ASSERT_TRUE(w.Append(Ev(1, 11, 2)).ok());
    // Destroyed without Close: models a crash, `.open` stays behind.
  }
  EventLogWriter w2;
  ASSERT_TRUE(w2.Open(SmallSegments(dir)).ok());
  ASSERT_TRUE(w2.Append(Ev(2, 20, 3)).ok());
  ASSERT_TRUE(w2.Close().ok());

  auto rec = ReadEventLog(dir);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().clean());
  const std::vector<InteractionEvent> want = {Ev(1, 10, 1), Ev(1, 11, 2), Ev(2, 20, 3)};
  EXPECT_EQ(rec.value().events, want);
}

TEST(EventLogTest, TornAppendLosesOnlyTheUncommittedRecord) {
  const std::string dir = FreshDir("torn");
  runtime::OnlineFaultPlan plan;
  plan.torn_appends = {2};  // the third append dies mid-frame
  runtime::OnlineFaultInjector inj(plan);
  EventLogWriter w;
  ASSERT_TRUE(w.Open(SmallSegments(dir, &inj)).ok());
  ASSERT_TRUE(w.Append(Ev(1, 10, 1)).ok());
  ASSERT_TRUE(w.Append(Ev(1, 11, 2)).ok());
  const Status torn = w.Append(Ev(1, 12, 3));
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), Status::Code::kDataLoss);
  EXPECT_TRUE(w.dead());
  // A dead writer refuses further appends instead of corrupting the tail.
  EXPECT_EQ(w.Append(Ev(1, 13, 4)).code(), Status::Code::kUnavailable);

  // Recovery: both committed records survive; the torn tail is accounted.
  auto rec = ReadEventLog(dir);
  ASSERT_TRUE(rec.ok());
  const std::vector<InteractionEvent> want = {Ev(1, 10, 1), Ev(1, 11, 2)};
  EXPECT_EQ(rec.value().events, want);
  EXPECT_GT(rec.value().torn_tail_bytes, 0);
  ASSERT_FALSE(rec.value().losses.empty());
  EXPECT_EQ(rec.value().losses[0].code(), Status::Code::kDataLoss);

  // A fresh writer truncates the torn tail and appends cleanly after it.
  EventLogWriter w2;
  ASSERT_TRUE(w2.Open(SmallSegments(dir)).ok());
  ASSERT_TRUE(w2.Append(Ev(2, 20, 5)).ok());
  ASSERT_TRUE(w2.Close().ok());
  auto rec2 = ReadEventLog(dir);
  ASSERT_TRUE(rec2.ok());
  EXPECT_TRUE(rec2.value().clean());
  const std::vector<InteractionEvent> want2 = {Ev(1, 10, 1), Ev(1, 11, 2), Ev(2, 20, 5)};
  EXPECT_EQ(rec2.value().events, want2);
}

TEST(EventLogTest, CorruptFrameIsSkippedAndLaterRecordsSurvive) {
  const std::string dir = FreshDir("corrupt");
  runtime::OnlineFaultPlan plan;
  plan.corrupt_appends = {1};  // the second append's frame rots in flight
  runtime::OnlineFaultInjector inj(plan);
  EventLogWriter w;
  EventLogConfig cfg = SmallSegments(dir, &inj);
  cfg.segment_max_bytes = 100 * data::wal::kFrameBytes;  // keep one segment
  ASSERT_TRUE(w.Open(cfg).ok());
  ASSERT_TRUE(w.Append(Ev(1, 10, 1)).ok());
  EXPECT_EQ(w.Append(Ev(1, 11, 2)).code(), Status::Code::kDataLoss);
  EXPECT_FALSE(w.dead());  // corrupt != crash: the writer carries on
  ASSERT_TRUE(w.Append(Ev(1, 12, 3)).ok());
  ASSERT_TRUE(w.Close().ok());

  auto rec = ReadEventLog(dir);
  ASSERT_TRUE(rec.ok());
  const std::vector<InteractionEvent> want = {Ev(1, 10, 1), Ev(1, 12, 3)};
  EXPECT_EQ(rec.value().events, want) << "reader must resync past the bad frame";
  EXPECT_EQ(rec.value().corrupt_frames, 1);
  EXPECT_GT(rec.value().skipped_bytes, 0);
}

TEST(EventLogTest, AtRestCorruptionOfASealedSegmentIsContained) {
  const std::string dir = FreshDir("atrest");
  EventLogWriter w;
  ASSERT_TRUE(w.Open(SmallSegments(dir)).ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(w.Append(Ev(1, i + 1, i)).ok());
  ASSERT_TRUE(w.Close().ok());

  // Flip one payload byte in the FIRST sealed segment.
  std::string first;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".log" &&
        (first.empty() || e.path().string() < first)) {
      first = e.path().string();
    }
  }
  ASSERT_FALSE(first.empty());
  {
    std::fstream f(first, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);  // inside the first frame's payload
    char b = 0;
    f.seekg(10);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(10);
    f.write(&b, 1);
  }

  auto rec = ReadEventLog(dir);
  ASSERT_TRUE(rec.ok());
  EXPECT_GE(rec.value().corrupt_frames, 1);
  // The other five records all survive (the bad frame's neighbors included).
  EXPECT_EQ(rec.value().events.size(), 5u);
  for (const auto& e : rec.value().events) EXPECT_NE(e.item, 1);
}

// The drill invariant, unit-sized: across 20 seeded random fault schedules,
// every append the writer acknowledged is recovered, in order.
TEST(EventLogTest, ZeroCommittedRecordsLostAcrossTwentySeededSchedules) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::string dir = FreshDir("sweep_" + std::to_string(seed));
    runtime::OnlineFaultPlan plan;
    plan.seed = 0xA5A5 + seed;
    plan.torn_rate = 0.06;
    plan.corrupt_rate = 0.10;
    runtime::OnlineFaultInjector inj(plan);

    std::vector<InteractionEvent> committed;
    int64_t next_ts = 0;
    // Writers die on torn appends; keep reopening, like the real loop.
    for (int lives = 0; lives < 8; ++lives) {
      EventLogWriter w;
      ASSERT_TRUE(w.Open(SmallSegments(dir, &inj)).ok());
      while (!w.dead() && committed.size() < 60) {
        const InteractionEvent e =
            Ev(next_ts % 5, static_cast<int32_t>(next_ts % 7 + 1), next_ts);
        ++next_ts;
        if (w.Append(e).ok()) committed.push_back(e);
      }
      if (committed.size() >= 60) {
        if (!w.dead()) {
          ASSERT_TRUE(w.Close().ok());
        }
        break;
      }
    }

    auto rec = ReadEventLog(dir);
    ASSERT_TRUE(rec.ok()) << "seed " << seed;
    EXPECT_EQ(rec.value().events, committed)
        << "seed " << seed << ": committed records lost or reordered";
  }
}

// ---------- Sliding-window dataset view ------------------------------------

TEST(SlidingWindowTest, GroupsByUserAndAppliesLeaveOneOut) {
  std::vector<InteractionEvent> events;
  for (int i = 0; i < 5; ++i) events.push_back(Ev(7, i + 1, i));       // user 7
  for (int i = 0; i < 4; ++i) events.push_back(Ev(3, 10 + i, 100 + i));  // user 3
  events.push_back(Ev(9, 2, 50));  // user 9: 1 event, dropped by leave-one-out

  data::SlidingWindowOptions opt;
  opt.num_items = 20;
  const data::SequenceDataset ds = data::BuildSlidingWindowDataset(events, opt);
  ASSERT_EQ(ds.num_users(), 2);
  EXPECT_EQ(ds.num_items, 20);
  // std::map order: user 3 first, then user 7.
  EXPECT_EQ(ds.train_seqs[0], (std::vector<int32_t>{10, 11}));
  EXPECT_EQ(ds.valid_targets[0], 12);
  EXPECT_EQ(ds.test_targets[0], 13);
  EXPECT_EQ(ds.train_seqs[1], (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(ds.valid_targets[1], 4);
  EXPECT_EQ(ds.test_targets[1], 5);
}

TEST(SlidingWindowTest, WindowKeepsOnlyTheTrailingEvents) {
  std::vector<InteractionEvent> events;
  for (int i = 0; i < 10; ++i) events.push_back(Ev(1, i + 1, i));
  data::SlidingWindowOptions opt;
  opt.window = 4;
  const data::SequenceDataset ds = data::BuildSlidingWindowDataset(events, opt);
  ASSERT_EQ(ds.num_users(), 1);
  EXPECT_EQ(ds.train_seqs[0], (std::vector<int32_t>{7, 8}));
  EXPECT_EQ(ds.valid_targets[0], 9);
  EXPECT_EQ(ds.test_targets[0], 10);
}

TEST(SlidingWindowTest, MatchesLeaveOneOutSplitOnAReplayedLog) {
  const auto log = data::GenerateSynthetic(data::TinyDataset(11)).value();
  std::vector<InteractionEvent> events;
  int64_t ts = 0;
  for (size_t u = 0; u < log.sequences.size(); ++u) {
    for (int32_t item : log.sequences[u]) {
      events.push_back(Ev(static_cast<int64_t>(u), item, ts++));
    }
  }
  data::SlidingWindowOptions opt;
  opt.num_items = log.num_items;
  const data::SequenceDataset via_wal = data::BuildSlidingWindowDataset(events, opt);
  const data::SequenceDataset direct = data::LeaveOneOutSplit(log);
  EXPECT_EQ(via_wal.train_seqs, direct.train_seqs);
  EXPECT_EQ(via_wal.valid_targets, direct.valid_targets);
  EXPECT_EQ(via_wal.test_targets, direct.test_targets);
  EXPECT_EQ(via_wal.num_items, direct.num_items);
}

TEST(SlidingWindowTest, PaddingAndGarbageItemIdsNeverEnterASequence) {
  std::vector<InteractionEvent> events = {Ev(1, 1, 0), Ev(1, 0, 1),  Ev(1, -5, 2),
                                          Ev(1, 2, 3), Ev(1, 3, 4), Ev(1, 4, 5)};
  const data::SequenceDataset ds = data::BuildSlidingWindowDataset(events, {});
  ASSERT_EQ(ds.num_users(), 1);
  EXPECT_EQ(ds.train_seqs[0], (std::vector<int32_t>{1, 2}));
}

// ---------- Drift monitor ---------------------------------------------------

TEST(DriftMonitorTest, PassesWithoutABaselineAndGatesAgainstOne) {
  runtime::DriftConfig cfg;
  cfg.min_hr_frac = 0.5;
  cfg.min_ndcg_frac = 0.5;
  runtime::DriftMonitor monitor(cfg);

  eval::Metrics good;
  good.hr10 = 0.4;
  good.ndcg10 = 0.2;
  EXPECT_TRUE(monitor.Check(good).ok()) << "no baseline yet: bootstrap must pass";
  monitor.SetBaseline(good);

  eval::Metrics ok_candidate;
  ok_candidate.hr10 = 0.25;  // above 0.5 * 0.4
  ok_candidate.ndcg10 = 0.15;
  EXPECT_TRUE(monitor.Check(ok_candidate).ok());

  eval::Metrics regressed;
  regressed.hr10 = 0.1;  // below 0.5 * 0.4
  regressed.ndcg10 = 0.15;
  const Status s = monitor.Check(regressed);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);

  eval::Metrics ndcg_regressed;
  ndcg_regressed.hr10 = 0.4;
  ndcg_regressed.ndcg10 = 0.05;  // below 0.5 * 0.2
  EXPECT_FALSE(monitor.Check(ndcg_regressed).ok());
}

TEST(DriftMonitorTest, AbsoluteFloorAppliesEvenInBootstrap) {
  runtime::DriftConfig cfg;
  cfg.min_hr = 0.05;
  runtime::DriftMonitor monitor(cfg);
  eval::Metrics dead;
  dead.hr10 = 0.0;  // what a NaN-scoring poisoned model produces
  EXPECT_FALSE(monitor.Check(dead).ok());
  eval::Metrics alive;
  alive.hr10 = 0.2;
  EXPECT_TRUE(monitor.Check(alive).ok());
}

TEST(DriftMonitorTest, ChecksExportDriftGauges) {
  runtime::DriftMonitor monitor;
  eval::Metrics m;
  m.hr10 = 0.33;
  m.ndcg10 = 0.11;
  monitor.SetBaseline(m);
  eval::Metrics cand = m;
  cand.hr10 = 0.30;
  ASSERT_TRUE(monitor.Check(cand).ok());
  auto& reg = obs::Registry::Global();
  EXPECT_DOUBLE_EQ(reg.GetGauge("online.drift.baseline_hr10").value(), 0.33);
  EXPECT_DOUBLE_EQ(reg.GetGauge("online.drift.hr10").value(), 0.30);
  EXPECT_NEAR(reg.GetGauge("online.drift.delta_hr10").value(), -0.03, 1e-12);
}

TEST(DriftMonitorTest, BadConfigIsRejected) {
  runtime::DriftConfig cfg;
  cfg.min_hr_frac = 1.5;
  EXPECT_EQ(cfg.Validate().code(), Status::Code::kInvalidArgument);
  cfg = {};
  cfg.min_hr = 2.0;
  EXPECT_EQ(cfg.Validate().code(), Status::Code::kInvalidArgument);
}

// ---------- Publish controller ---------------------------------------------

/// Two-slot swap fixture around real SasRec models (the swap gate scans
/// weights and smoke-scores, so toy rankers are not enough).
struct SwapFixture {
  data::SequenceDataset ds;
  models::SasRec a, b, candidate;
  serve::SwappableRanker swapper;

  static models::BackboneConfig Backbone(const data::SequenceDataset& d) {
    models::BackboneConfig b;
    b.num_items = d.num_items;
    b.max_len = 12;
    b.dim = 16;
    b.heads = 2;
    b.layers = 1;
    b.dropout = 0.1f;
    return b;
  }

  static serve::SwapConfig Swap() {
    serve::SwapConfig c;
    c.k = 5;
    c.max_len = 12;
    c.golden.histories = {{1, 2, 3}, {2, 3, 4}};
    c.golden.targets = {4, 5};
    return c;
  }

  SwapFixture()
      : ds(data::LeaveOneOutSplit(
            data::GenerateSynthetic(data::TinyDataset(21)).value())),
        a(Backbone(ds), models::TrainConfig{}, Rng(1)),
        b(Backbone(ds), models::TrainConfig{}, Rng(2)),
        candidate(Backbone(ds), models::TrainConfig{}, Rng(3)),
        swapper({&a, &a}, {&b, &b}, ds.num_items, Swap()) {}
};

TEST(PublishControllerTest, ZeroWindowPublishesWithoutProbation) {
  SwapFixture fx;
  serve::ProbationConfig cfg;  // window_us = 0
  serve::PublishController controller(fx.swapper, cfg);
  const serve::PublishOutcome out = controller.PublishAndProbe(fx.candidate);
  EXPECT_TRUE(out.published);
  EXPECT_FALSE(out.rolled_back);
  EXPECT_EQ(fx.swapper.swaps(), 1);
}

TEST(PublishControllerTest, RejectedCandidateLeavesServingUntouched) {
  SwapFixture fx;
  const auto before = fx.swapper.SnapshotActiveWeights();
  // Poison the candidate with a non-finite weight: the swap gate's finite
  // scan must reject it before probation even starts.
  fx.candidate.Parameters()[0].data()[0] = std::numeric_limits<float>::quiet_NaN();
  serve::ProbationConfig cfg;
  serve::PublishController controller(fx.swapper, cfg);
  const serve::PublishOutcome out = controller.PublishAndProbe(fx.candidate);
  EXPECT_FALSE(out.published);
  EXPECT_FALSE(out.rolled_back);
  EXPECT_FALSE(out.reason.empty());
  EXPECT_EQ(fx.swapper.swaps(), 0);
  EXPECT_EQ(fx.swapper.SnapshotActiveWeights(), before);
}

TEST(PublishControllerTest, ExtraTripRollsBackBitExactly) {
  SwapFixture fx;
  const auto before = fx.swapper.SnapshotActiveWeights();
  serve::ProbationConfig cfg;
  cfg.window_us = 60'000'000;  // would be a minute — the trip fires first
  cfg.check_interval_us = 100;
  serve::PublishController controller(fx.swapper, cfg);
  controller.SetExtraTrip([](std::string* why) {
    *why = "holdout drift tripped";
    return true;
  });
  const serve::PublishOutcome out = controller.PublishAndProbe(fx.candidate);
  EXPECT_FALSE(out.published);
  ASSERT_TRUE(out.rolled_back);
  EXPECT_TRUE(out.bit_exact) << "rollback must restore the prior model's bits";
  EXPECT_EQ(out.reason, "holdout drift tripped");
  EXPECT_EQ(fx.swapper.SnapshotActiveWeights(), before);
}

TEST(PublishControllerTest, CleanProbationWindowPublishes) {
  SwapFixture fx;
  serve::ProbationConfig cfg;
  cfg.window_us = 2000;  // 2ms of real time on the SystemClock
  cfg.check_interval_us = 500;
  serve::PublishController controller(fx.swapper, cfg);
  const serve::PublishOutcome out = controller.PublishAndProbe(fx.candidate);
  EXPECT_TRUE(out.published) << out.reason;
  EXPECT_FALSE(out.rolled_back);
}

TEST(PublishControllerTest, BadProbationConfigThrows) {
  SwapFixture fx;
  serve::ProbationConfig cfg;
  cfg.window_us = -1;
  EXPECT_THROW(serve::PublishController(fx.swapper, cfg), std::invalid_argument);
  cfg = {};
  cfg.window_us = 1000;
  cfg.check_interval_us = 0;
  EXPECT_THROW(serve::PublishController(fx.swapper, cfg), std::invalid_argument);
}

// ---------- OnlineTrainer sessions -----------------------------------------

struct LoopFixture {
  std::string root;
  data::InteractionLog log;
  data::SequenceDataset ds;
  models::SasRec model;
  runtime::OnlineTrainerConfig config;

  explicit LoopFixture(const std::string& name, uint64_t seed = 31)
      : root(FreshDir(name)),
        log(data::GenerateSynthetic(data::TinyDataset(seed)).value()),
        ds(data::LeaveOneOutSplit(log)),
        model(SwapFixture::Backbone(ds), BaseTrain(), Rng(5)) {
    std::filesystem::create_directories(root);
    config.wal_dir = root + "/wal";
    config.serving_checkpoint = root + "/serving.ckpt";
    config.candidate_checkpoint = root + "/candidate.ckpt";
    config.quarantine_dir = root + "/quarantine";
    config.num_items = log.num_items;
    config.epochs_per_session = 2;
    // The poisoned model ranks near-randomly (HR@10 ~ 10/60); the trained
    // tiny model clears 0.32 after two epochs. Both floors sit between the
    // two so the gate deterministically separates them (all seeds fixed).
    config.drift.min_hr = 0.25;
    config.drift.min_hr_frac = 0.75;
    config.drift.min_ndcg_frac = 0.5;
    FillWal();
  }

  static models::TrainConfig BaseTrain() {
    models::TrainConfig t;
    t.epochs = 2;
    t.batch_size = 64;
    t.max_len = 12;
    t.lr = 3e-3f;
    t.seed = 99;
    return t;
  }

  void FillWal() {
    EventLogWriter w;
    EventLogConfig c;
    c.dir = config.wal_dir;
    ASSERT_TRUE(w.Open(c).ok());
    int64_t ts = 0;
    for (size_t u = 0; u < log.sequences.size(); ++u) {
      for (int32_t item : log.sequences[u]) {
        ASSERT_TRUE(w.Append(Ev(static_cast<int64_t>(u), item, ts++)).ok());
      }
    }
    ASSERT_TRUE(w.Close().ok());
  }

  runtime::OnlineTrainer MakeTrainer(serve::PublishController* pub = nullptr) {
    return runtime::OnlineTrainer(
        model, model,
        [this](const data::SequenceDataset& d, const models::TrainConfig& c) {
          return model.FitWith(d, c);
        },
        BaseTrain(), config, pub);
  }

  std::vector<std::vector<float>> Weights() {
    std::vector<std::vector<float>> w;
    for (auto& p : model.Parameters()) w.push_back(p.ToVector());
    return w;
  }
};

TEST(OnlineTrainerTest, FirstSessionBootstrapsAndCommitsTheServingCheckpoint) {
  LoopFixture fx("bootstrap");
  auto trainer = fx.MakeTrainer();
  ASSERT_TRUE(trainer.RunSession().ok());
  EXPECT_EQ(trainer.stats().trained, 1);
  EXPECT_EQ(trainer.stats().published, 1);
  EXPECT_TRUE(std::filesystem::exists(fx.config.serving_checkpoint));
  // Session 0 trained epochs [0, 2): the committed state says epoch 1.
  auto epoch = nn::PeekTrainStateEpoch(fx.config.serving_checkpoint);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch.value(), 1);
  EXPECT_TRUE(trainer.drift().has_baseline());
}

TEST(OnlineTrainerTest, SessionsWarmStartFromTheServingCheckpoint) {
  LoopFixture fx("warmstart");
  auto trainer = fx.MakeTrainer();
  ASSERT_TRUE(trainer.RunSession().ok());
  ASSERT_TRUE(trainer.RunSession().ok());
  ASSERT_TRUE(trainer.RunSession().ok());
  // Each session adds epochs_per_session = 2 absolute epochs: 1, 3, 5.
  auto epoch = nn::PeekTrainStateEpoch(fx.config.serving_checkpoint);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch.value(), 5);
  EXPECT_EQ(trainer.stats().sessions, 3);
  EXPECT_EQ(trainer.stats().events_consumed,
            3 * static_cast<int64_t>(fx.log.num_interactions()));
}

TEST(OnlineTrainerTest, TooFewEventsSkipsTheSessionCleanly) {
  LoopFixture fx("skip");
  fx.config.min_events = 1'000'000;
  auto trainer = fx.MakeTrainer();
  ASSERT_TRUE(trainer.RunSession().ok());
  EXPECT_EQ(trainer.stats().skipped, 1);
  EXPECT_EQ(trainer.stats().trained, 0);
  EXPECT_FALSE(std::filesystem::exists(fx.config.serving_checkpoint));
}

TEST(OnlineTrainerTest, PoisonedUpdateIsQuarantinedAndServingStaysIntact) {
  LoopFixture fx("poison");
  runtime::OnlineFaultPlan plan;
  plan.poison_update_sessions = {1};
  runtime::OnlineFaultInjector inj(plan);
  fx.config.fault_injector = &inj;
  auto trainer = fx.MakeTrainer();

  ASSERT_TRUE(trainer.RunSession().ok());  // session 0: clean baseline
  ASSERT_GT(trainer.drift().baseline().hr10, 0.0)
      << "baseline must be alive for the relative floor to mean anything";
  std::string serving_before;
  ASSERT_TRUE(
      nn::internal::ReadFileImage(fx.config.serving_checkpoint, &serving_before).ok());

  ASSERT_TRUE(trainer.RunSession().ok());  // session 1: poisoned
  EXPECT_EQ(trainer.stats().poisoned, 1);
  EXPECT_EQ(trainer.stats().poisoned_blocked, 1);
  EXPECT_EQ(trainer.stats().quarantined, 1);
  EXPECT_EQ(trainer.stats().published, 1) << "the poisoned candidate must not publish";

  // Serving checkpoint bits untouched; the candidate is in quarantine.
  std::string serving_after;
  ASSERT_TRUE(
      nn::internal::ReadFileImage(fx.config.serving_checkpoint, &serving_after).ok());
  EXPECT_EQ(serving_before, serving_after);
  EXPECT_TRUE(std::filesystem::exists(fx.config.quarantine_dir +
                                      "/candidate-session-1.ckpt"));

  // Session 2 warm-starts from the intact serving state and recovers.
  ASSERT_TRUE(trainer.RunSession().ok());
  EXPECT_EQ(trainer.stats().published, 2);
}

TEST(OnlineTrainerTest, CrashBetweenTrainAndPublishLeavesServingIntact) {
  LoopFixture fx("crash");
  runtime::OnlineFaultPlan plan;
  plan.crash_before_publish_sessions = {1};
  runtime::OnlineFaultInjector inj(plan);
  fx.config.fault_injector = &inj;
  auto trainer = fx.MakeTrainer();

  ASSERT_TRUE(trainer.RunSession().ok());
  std::string serving_before;
  ASSERT_TRUE(
      nn::internal::ReadFileImage(fx.config.serving_checkpoint, &serving_before).ok());

  const Status crashed = trainer.RunSession();
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(trainer.stats().crashes, 1);
  std::string serving_after;
  ASSERT_TRUE(
      nn::internal::ReadFileImage(fx.config.serving_checkpoint, &serving_after).ok());
  EXPECT_EQ(serving_before, serving_after)
      << "a crash before publish must not move the serving checkpoint";

  // "Restart": the next session recovers and publishes normally.
  ASSERT_TRUE(trainer.RunSession().ok());
  EXPECT_EQ(trainer.stats().published, 2);
}

TEST(OnlineTrainerTest, FailedTrainingSessionsRetryThenSurface) {
  LoopFixture fx("retry");
  fx.config.max_session_retries = 2;
  int calls = 0;
  runtime::OnlineTrainer trainer(
      fx.model, fx.model,
      [&calls](const data::SequenceDataset&, const models::TrainConfig&) {
        ++calls;
        return Status::Internal("injected training failure");
      },
      LoopFixture::BaseTrain(), fx.config);
  const Status s = trainer.RunSession();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(calls, 3);  // initial + 2 retries
  EXPECT_EQ(trainer.stats().train_failures, 3);
  EXPECT_EQ(trainer.stats().retries, 2);
  EXPECT_FALSE(std::filesystem::exists(fx.config.serving_checkpoint));
}

TEST(OnlineTrainerTest, BadConfigThrowsAtConstruction) {
  LoopFixture fx("badcfg");
  fx.config.candidate_checkpoint = fx.config.serving_checkpoint;
  EXPECT_THROW(fx.MakeTrainer(), std::invalid_argument);
}

TEST(OnlineTrainerTest, FullLoopPublishesIntoAProbedSwapper) {
  LoopFixture fx("fullloop");
  // Serving side: two swap slots, golden batch from the dataset itself.
  models::SasRec slot_a(SwapFixture::Backbone(fx.ds), models::TrainConfig{}, Rng(41));
  models::SasRec slot_b(SwapFixture::Backbone(fx.ds), models::TrainConfig{}, Rng(42));
  serve::SwapConfig swap_cfg;
  swap_cfg.k = 10;
  swap_cfg.max_len = 12;
  for (int32_t u = 0; u < std::min<int32_t>(4, fx.ds.num_users()); ++u) {
    swap_cfg.golden.histories.push_back(fx.ds.ValidInput(u));
    swap_cfg.golden.targets.push_back(fx.ds.valid_targets[u]);
  }
  serve::SwappableRanker swapper({&slot_a, &slot_a}, {&slot_b, &slot_b},
                                 fx.ds.num_items, swap_cfg);
  serve::ProbationConfig probation;
  probation.window_us = 1000;
  probation.check_interval_us = 500;
  serve::PublishController controller(swapper, probation);
  auto trainer = fx.MakeTrainer(&controller);

  ASSERT_TRUE(trainer.RunSession().ok());
  EXPECT_EQ(trainer.stats().published, 1);
  EXPECT_EQ(swapper.swaps(), 1);

  // The fleet now serves the trained weights bit-for-bit.
  const auto served = swapper.SnapshotActiveWeights();
  auto trained = fx.model.Parameters();
  ASSERT_EQ(served.size(), trained.size());
  for (size_t i = 0; i < trained.size(); ++i) {
    EXPECT_EQ(served[i], trained[i].ToVector());
  }
}

}  // namespace
}  // namespace msgcl