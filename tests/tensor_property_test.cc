// Property-based tests for the tensor substrate: algebraic identities,
// broadcast/shape laws, and randomized reference checks, swept over many
// shapes with parameterized gtest.
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace msgcl {
namespace {

using testing::ExpectTensorNear;

Tensor RandomTensor(Shape shape, uint64_t seed, float lo = -2.0f, float hi = 2.0f) {
  Rng rng(seed);
  return Tensor::Rand(std::move(shape), rng, lo, hi);
}

// ---------- Algebraic identities over shape sweeps ----------

class ShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeSweep, AdditionCommutes) {
  Tensor a = RandomTensor(GetParam(), 1);
  Tensor b = RandomTensor(GetParam(), 2);
  ExpectTensorNear(a + b, b + a, 0.0f, 0.0f);
}

TEST_P(ShapeSweep, MultiplicationDistributesOverAddition) {
  Tensor a = RandomTensor(GetParam(), 3);
  Tensor b = RandomTensor(GetParam(), 4);
  Tensor c = RandomTensor(GetParam(), 5);
  ExpectTensorNear(a * (b + c), a * b + a * c, 1e-5f, 1e-4f);
}

TEST_P(ShapeSweep, DoubleNegationIsIdentity) {
  Tensor a = RandomTensor(GetParam(), 6);
  ExpectTensorNear(a.Neg().Neg(), a, 0.0f, 0.0f);
}

TEST_P(ShapeSweep, ExpLogRoundTrip) {
  Tensor a = RandomTensor(GetParam(), 7, 0.1f, 3.0f);
  ExpectTensorNear(a.Log().Exp(), a, 1e-4f, 1e-4f);
}

TEST_P(ShapeSweep, SumEqualsMeanTimesCount) {
  Tensor a = RandomTensor(GetParam(), 8);
  EXPECT_NEAR(a.Sum().item(), a.Mean().item() * static_cast<float>(a.numel()), 1e-3);
}

TEST_P(ShapeSweep, ReshapeRoundTripPreservesValues) {
  Tensor a = RandomTensor(GetParam(), 9);
  Tensor flat = a.Reshape({a.numel()});
  ExpectTensorNear(flat.Reshape(a.shape()), a, 0.0f, 0.0f);
}

TEST_P(ShapeSweep, SoftmaxIsShiftInvariant) {
  Tensor a = RandomTensor(GetParam(), 10);
  ExpectTensorNear(a.SoftmaxLastDim(), a.AddScalar(3.7f).SoftmaxLastDim(), 1e-5f, 1e-4f);
}

TEST_P(ShapeSweep, SquareMatchesSelfMultiply) {
  Tensor a = RandomTensor(GetParam(), 11);
  ExpectTensorNear(a.Square(), a * a, 0.0f, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(Shape{4}, Shape{3, 5}, Shape{2, 3, 4},
                                           Shape{1, 7}, Shape{2, 1, 6}, Shape{8, 2, 2}));

// ---------- MatMul laws over dimension sweeps ----------

class MatMulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulSweep, MatchesNaiveReference) {
  auto [m, k, n] = GetParam();
  Tensor a = RandomTensor({m, k}, 20 + m);
  Tensor b = RandomTensor({k, n}, 30 + n);
  Tensor c = a.MatMul(b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i * k + p)) * b.at(p * n + j);
      }
      ASSERT_NEAR(c.at(i * n + j), acc, 1e-4 + 1e-4 * std::fabs(acc));
    }
  }
}

TEST_P(MatMulSweep, TransposeLaw) {
  // (A B)^T == B^T A^T
  auto [m, k, n] = GetParam();
  Tensor a = RandomTensor({m, k}, 40 + m);
  Tensor b = RandomTensor({k, n}, 50 + n);
  ExpectTensorNear(a.MatMul(b).TransposeLast2(),
                   b.TransposeLast2().MatMul(a.TransposeLast2()), 1e-4f, 1e-4f);
}

TEST_P(MatMulSweep, IdentityIsNeutral) {
  auto [m, k, n] = GetParam();
  (void)n;
  Tensor a = RandomTensor({m, k}, 60 + m);
  Tensor eye = Tensor::Zeros({k, k});
  for (int i = 0; i < k; ++i) eye.set(i * k + i, 1.0f);
  ExpectTensorNear(a.MatMul(eye), a, 1e-5f, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Dims, MatMulSweep,
                         ::testing::Combine(::testing::Values(1, 2, 5),
                                            ::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 4, 7)));

// ---------- Broadcast laws ----------

TEST(BroadcastPropertyTest, ScalarTensorBroadcastMatchesScalarOp) {
  Tensor a = RandomTensor({3, 4}, 70);
  Tensor s = Tensor::FromVector({1}, {2.5f});
  ExpectTensorNear(a * s, a.MulScalar(2.5f), 0.0f, 0.0f);
  ExpectTensorNear(a + s, a.AddScalar(2.5f), 0.0f, 0.0f);
}

TEST(BroadcastPropertyTest, RowBroadcastMatchesManualTile) {
  Tensor a = RandomTensor({3, 4}, 71);
  Tensor row = RandomTensor({4}, 72);
  Tensor tiled = Tensor::Zeros({3, 4});
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) tiled.set(i * 4 + j, row.at(j));
  }
  ExpectTensorNear(a + row, a + tiled, 0.0f, 0.0f);
}

TEST(BroadcastPropertyTest, BidirectionalBroadcast) {
  // [3,1] + [1,4] -> [3,4]
  Tensor col = RandomTensor({3, 1}, 73);
  Tensor row = RandomTensor({1, 4}, 74);
  Tensor out = col + row;
  ASSERT_EQ(out.shape(), (Shape{3, 4}));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      ASSERT_NEAR(out.at(i * 4 + j), col.at(i) + row.at(j), 1e-6);
    }
  }
}

// ---------- Gradient linearity property ----------

TEST(AutogradPropertyTest, GradientOfSumIsOnes) {
  Tensor a = RandomTensor({5, 3}, 80);
  a.set_requires_grad(true);
  a.Sum().Backward();
  for (float g : a.grad()) EXPECT_EQ(g, 1.0f);
}

TEST(AutogradPropertyTest, GradScalesLinearlyWithLossScale) {
  Tensor a = RandomTensor({6}, 81);
  a.set_requires_grad(true);
  a.Square().Sum().Backward();
  std::vector<float> g1(a.grad().begin(), a.grad().end());
  a.ZeroGrad();
  a.Square().Sum().MulScalar(3.0f).Backward();
  for (size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(a.grad()[i], 3.0f * g1[i], 1e-4f);
  }
}

TEST(AutogradPropertyTest, AccumulationAcrossBackwardCalls) {
  Tensor a = RandomTensor({4}, 82);
  a.set_requires_grad(true);
  a.Sum().Backward();
  a.Sum().Backward();  // second graph, same leaf: grads accumulate
  for (float g : a.grad()) EXPECT_EQ(g, 2.0f);
}

// ---------- Softmax/cross-entropy consistency ----------

TEST(LossPropertyTest, CrossEntropyMatchesNllOfLogSoftmax) {
  Tensor logits = RandomTensor({5, 7}, 90);
  std::vector<int32_t> targets = {0, 3, 6, 2, 1};
  Tensor lp = logits.LogSoftmaxLastDim();
  double manual = 0.0;
  for (int r = 0; r < 5; ++r) manual -= lp.at(r * 7 + targets[r]);
  manual /= 5.0;
  EXPECT_NEAR(CrossEntropyLogits(logits, targets).item(), manual, 1e-5);
}

TEST(LossPropertyTest, CrossEntropyLowerBoundedByZero) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Tensor logits = RandomTensor({4, 6}, 100 + seed, -5.0f, 5.0f);
    EXPECT_GE(CrossEntropyLogits(logits, {0, 1, 2, 3}).item(), 0.0f);
  }
}

TEST(LossPropertyTest, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::Zeros({2, 8});
  EXPECT_NEAR(CrossEntropyLogits(logits, {3, 5}).item(), std::log(8.0f), 1e-5);
}

}  // namespace
}  // namespace msgcl
