// Tests for the data substrate: interaction logs, leave-one-out splitting,
// synthetic generation (calibration + determinism + sequential signal),
// batching, augmentation operators, and noise injection.
#include <algorithm>
#include <map>
#include <set>

#include "data/data.h"
#include "gtest/gtest.h"

namespace msgcl {
namespace data {
namespace {

InteractionLog SmallLog() {
  InteractionLog log;
  log.name = "small";
  log.num_items = 10;
  log.sequences = {
      {1, 2, 3, 4, 5},  // user 0
      {6, 7, 8},        // user 1
      {9, 10},          // user 2: too short, dropped by split
  };
  return log;
}

// ---------- InteractionLog ----------

TEST(InteractionLogTest, Statistics) {
  InteractionLog log = SmallLog();
  EXPECT_EQ(log.num_users(), 3);
  EXPECT_EQ(log.num_interactions(), 10);
  EXPECT_NEAR(log.avg_length(), 10.0 / 3.0, 1e-9);
  EXPECT_NEAR(log.sparsity(), 1.0 - 10.0 / 30.0, 1e-9);
}

TEST(InteractionLogTest, ValidateAcceptsGoodLog) {
  EXPECT_TRUE(SmallLog().Validate().ok());
}

TEST(InteractionLogTest, ValidateRejectsOutOfRangeItem) {
  InteractionLog log = SmallLog();
  log.sequences[0].push_back(11);  // > num_items
  EXPECT_EQ(log.Validate().code(), Status::Code::kOutOfRange);
  log.sequences[0].back() = 0;  // padding id is illegal in logs
  EXPECT_FALSE(log.Validate().ok());
}

TEST(InteractionLogTest, ValidateRejectsEmptySequence) {
  InteractionLog log = SmallLog();
  log.sequences.push_back({});
  EXPECT_FALSE(log.Validate().ok());
}

// ---------- Leave-one-out split ----------

TEST(SplitTest, TargetsAreLastAndPenultimate) {
  SequenceDataset ds = LeaveOneOutSplit(SmallLog());
  ASSERT_EQ(ds.num_users(), 2);  // user 2 dropped
  EXPECT_EQ(ds.train_seqs[0], (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(ds.valid_targets[0], 4);
  EXPECT_EQ(ds.test_targets[0], 5);
  EXPECT_EQ(ds.train_seqs[1], (std::vector<int32_t>{6}));
  EXPECT_EQ(ds.valid_targets[1], 7);
  EXPECT_EQ(ds.test_targets[1], 8);
}

TEST(SplitTest, TestInputIncludesValidationItem) {
  SequenceDataset ds = LeaveOneOutSplit(SmallLog());
  EXPECT_EQ(ds.TestInput(0), (std::vector<int32_t>{1, 2, 3, 4}));
  EXPECT_EQ(ds.ValidInput(0), (std::vector<int32_t>{1, 2, 3}));
}

// ---------- Synthetic generation ----------

TEST(SyntheticTest, ConfigValidation) {
  SyntheticConfig bad;
  bad.num_clusters = 0;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
  bad = SyntheticConfig();
  bad.min_length = 2;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
  bad = SyntheticConfig();
  bad.follow_prob = 1.5;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
  bad = SyntheticConfig();
  bad.zipf_exponent = 1.0;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
  EXPECT_TRUE(GenerateSynthetic(SyntheticConfig()).ok());
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticConfig c = TinyDataset(5);
  InteractionLog a = GenerateSynthetic(c).value();
  InteractionLog b = GenerateSynthetic(c).value();
  EXPECT_EQ(a.sequences, b.sequences);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  InteractionLog a = GenerateSynthetic(TinyDataset(1)).value();
  InteractionLog b = GenerateSynthetic(TinyDataset(2)).value();
  EXPECT_NE(a.sequences, b.sequences);
}

TEST(SyntheticTest, RespectsBasicShape) {
  SyntheticConfig c = TinyDataset();
  InteractionLog log = GenerateSynthetic(c).value();
  EXPECT_EQ(log.num_users(), c.num_users);
  EXPECT_EQ(log.num_items, c.num_items);
  EXPECT_TRUE(log.Validate().ok());
  for (const auto& s : log.sequences) {
    EXPECT_GE(static_cast<int32_t>(s.size()), c.min_length);
    EXPECT_LE(static_cast<int32_t>(s.size()), c.max_length);
  }
}

TEST(SyntheticTest, AverageLengthNearTarget) {
  SyntheticConfig c = TinyDataset();
  c.num_users = 2000;
  c.avg_length = 12.0;
  InteractionLog log = GenerateSynthetic(c).value();
  EXPECT_NEAR(log.avg_length(), 12.0, 1.5);
}

TEST(SyntheticTest, PopularitySkewExists) {
  InteractionLog log = GenerateSynthetic(TinyDataset()).value();
  std::map<int32_t, int64_t> counts;
  for (const auto& s : log.sequences) {
    for (int32_t it : s) counts[it]++;
  }
  std::vector<int64_t> freq;
  for (auto& [item, cnt] : counts) freq.push_back(cnt);
  std::sort(freq.rbegin(), freq.rend());
  // The most popular item should dominate the median item.
  ASSERT_GT(freq.size(), 10u);
  EXPECT_GT(freq[0], 3 * freq[freq.size() / 2]);
}

TEST(SyntheticTest, SequentialSignalBeatsChance) {
  // The cluster of the next item should be predictable from the current
  // item's cluster far better than chance: measure P(next cluster ==
  // current + hop) aggregated. Since hops are hidden, test the weaker
  // property that the empirical next-cluster distribution given current
  // cluster is concentrated (max-prob >> 1/K).
  SyntheticConfig c = TinyDataset();
  c.num_users = 1000;
  InteractionLog log = GenerateSynthetic(c).value();
  const int32_t K = c.num_clusters;
  auto cluster_of = [&](int32_t item) { return (item - 1) % K; };
  std::vector<std::map<int32_t, int64_t>> trans(K);
  std::vector<int64_t> totals(K, 0);
  for (const auto& s : log.sequences) {
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      trans[cluster_of(s[i])][cluster_of(s[i + 1])]++;
      totals[cluster_of(s[i])]++;
    }
  }
  double avg_maxprob = 0.0;
  int32_t counted = 0;
  for (int32_t k = 0; k < K; ++k) {
    if (totals[k] < 50) continue;
    int64_t mx = 0;
    for (auto& [to, cnt] : trans[k]) mx = std::max(mx, cnt);
    avg_maxprob += static_cast<double>(mx) / totals[k];
    ++counted;
  }
  ASSERT_GT(counted, 0);
  avg_maxprob /= counted;
  EXPECT_GT(avg_maxprob, 3.0 / K) << "next-cluster distribution not concentrated";
}

TEST(SyntheticTest, PresetsMatchTableIShapes) {
  // At scale 1 the presets should land near 1/10 of Table I counts and
  // reproduce the qualitative sparsity ordering:
  //   Clothing (99.97%) > Toys (99.93%) > ML-1M (95.16%).
  InteractionLog clothing = GenerateSynthetic(ClothingLike(0.25)).value();
  InteractionLog toys = GenerateSynthetic(ToysLike(0.25)).value();
  InteractionLog ml1m = GenerateSynthetic(Ml1mLike(0.25)).value();
  EXPECT_GT(clothing.sparsity(), toys.sparsity());
  EXPECT_GT(toys.sparsity(), ml1m.sparsity());
  EXPECT_GT(ml1m.avg_length(), 3 * toys.avg_length());
  EXPECT_NEAR(clothing.avg_length(), 7.1, 2.0);
  EXPECT_NEAR(toys.avg_length(), 8.6, 2.0);
}

// ---------- Batching ----------

TEST(BatchingTest, PadLeftKeepsMostRecent) {
  EXPECT_EQ(PadLeft({1, 2, 3}, 5), (std::vector<int32_t>{0, 0, 1, 2, 3}));
  EXPECT_EQ(PadLeft({1, 2, 3, 4, 5, 6}, 4), (std::vector<int32_t>{3, 4, 5, 6}));
  EXPECT_EQ(PadLeft({}, 2), (std::vector<int32_t>{0, 0}));
}

TEST(BatchingTest, TrainBatchShiftsTargets) {
  SequenceDataset ds;
  ds.num_items = 10;
  ds.train_seqs = {{1, 2, 3, 4}};
  Batch b = MakeTrainBatch(ds, {0}, 5);
  // inputs: s[0..2] = 1,2,3 left-padded; targets: s[1..3] = 2,3,4.
  EXPECT_EQ(b.inputs, (std::vector<int32_t>{0, 0, 1, 2, 3}));
  EXPECT_EQ(b.targets, (std::vector<int32_t>{0, 0, 2, 3, 4}));
  EXPECT_EQ(b.key_padding, (std::vector<uint8_t>{1, 1, 0, 0, 0}));
  EXPECT_EQ(b.LastTargets(), (std::vector<int32_t>{4}));
}

TEST(BatchingTest, TrainBatchTruncatesLongSequences) {
  SequenceDataset ds;
  ds.num_items = 10;
  ds.train_seqs = {{1, 2, 3, 4, 5, 6}};
  Batch b = MakeTrainBatch(ds, {0}, 3);
  // usable = min(5, 3) = 3 most recent transitions: inputs 3,4,5 -> 4,5,6.
  EXPECT_EQ(b.inputs, (std::vector<int32_t>{3, 4, 5}));
  EXPECT_EQ(b.targets, (std::vector<int32_t>{4, 5, 6}));
}

TEST(BatchingTest, SingleItemSequenceHasNoTargets) {
  SequenceDataset ds;
  ds.num_items = 10;
  ds.train_seqs = {{7}};
  Batch b = MakeTrainBatch(ds, {0}, 3);
  EXPECT_EQ(b.targets, (std::vector<int32_t>{0, 0, 0}));
}

TEST(BatchingTest, OverrideSequencesUsed) {
  SequenceDataset ds;
  ds.num_items = 10;
  ds.train_seqs = {{1, 2, 3}};
  std::vector<std::vector<int32_t>> noisy = {{5, 6, 7}};
  Batch b = MakeTrainBatch(ds, {0}, 3, &noisy);
  EXPECT_EQ(b.inputs, (std::vector<int32_t>{0, 5, 6}));
  EXPECT_EQ(b.targets, (std::vector<int32_t>{0, 6, 7}));
}

TEST(BatchingTest, EvalBatchNoShift) {
  std::vector<std::vector<int32_t>> inputs = {{1, 2, 3}};
  Batch b = MakeEvalBatch(inputs, {0}, 4);
  EXPECT_EQ(b.inputs, (std::vector<int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(b.key_padding, (std::vector<uint8_t>{1, 0, 0, 0}));
}

TEST(BatchingTest, EpochIteratorCoversAllRowsOnce) {
  Rng rng(3);
  EpochIterator it(10, 3, rng);
  EXPECT_EQ(it.num_batches(), 4);
  std::set<int32_t> seen;
  int batches = 0;
  for (auto rows = it.Next(); !rows.empty(); rows = it.Next()) {
    ++batches;
    EXPECT_LE(rows.size(), 3u);
    for (int32_t r : rows) EXPECT_TRUE(seen.insert(r).second) << "duplicate row " << r;
  }
  EXPECT_EQ(batches, 4);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(BatchingTest, EpochIteratorShufflesDeterministically) {
  Rng r1(5), r2(5), r3(6);
  EpochIterator a(20, 20, r1), b(20, 20, r2), c(20, 20, r3);
  EXPECT_EQ(a.Next(), b.Next());
  Rng r4(5);
  EpochIterator d(20, 20, r4);
  EXPECT_NE(c.Next(), d.Next());
}

// ---------- Augmentation operators ----------

TEST(AugmentTest, CropKeepsContiguousSubsequence) {
  Rng rng(1);
  std::vector<int32_t> seq = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (int trial = 0; trial < 20; ++trial) {
    auto out = AugmentCrop(seq, 0.5, rng);
    ASSERT_EQ(out.size(), 5u);
    // Must be a contiguous run of the original.
    const int32_t start = out[0];
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], start + static_cast<int32_t>(i));
  }
}

TEST(AugmentTest, CropFullRatioIsIdentity) {
  Rng rng(2);
  std::vector<int32_t> seq = {1, 2, 3};
  EXPECT_EQ(AugmentCrop(seq, 1.0, rng), seq);
}

TEST(AugmentTest, MaskReplacesAboutRatio) {
  Rng rng(3);
  std::vector<int32_t> seq(1000, 5);
  auto out = AugmentMask(seq, 0.3, 99, rng);
  int masked = 0;
  for (int32_t v : out) masked += (v == 99);
  EXPECT_NEAR(masked / 1000.0, 0.3, 0.05);
}

TEST(AugmentTest, ReorderPreservesMultiset) {
  Rng rng(4);
  std::vector<int32_t> seq = {1, 2, 3, 4, 5, 6, 7, 8};
  auto out = AugmentReorder(seq, 0.5, rng);
  auto a = seq, b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(AugmentTest, ReorderOnlyTouchesWindow) {
  Rng rng(5);
  std::vector<int32_t> seq = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (int trial = 0; trial < 10; ++trial) {
    auto out = AugmentReorder(seq, 0.3, rng);
    int changed_lo = -1, changed_hi = -1;
    for (int i = 0; i < 10; ++i) {
      if (out[i] != seq[i]) {
        if (changed_lo < 0) changed_lo = i;
        changed_hi = i;
      }
    }
    if (changed_lo >= 0) {
      EXPECT_LE(changed_hi - changed_lo + 1, 3);
    }
  }
}

TEST(AugmentTest, RandomPicksSomeOperator) {
  Rng rng(6);
  std::vector<int32_t> seq = {1, 2, 3, 4, 5, 6};
  // Over many draws, at least one output differs from input (mask/reorder) and
  // at least one is shorter (crop).
  bool any_shorter = false, any_modified = false;
  for (int i = 0; i < 50; ++i) {
    auto out = AugmentRandom(seq, 99, rng);
    any_shorter = any_shorter || out.size() < seq.size();
    any_modified = any_modified || (out.size() == seq.size() && out != seq);
  }
  EXPECT_TRUE(any_shorter);
  EXPECT_TRUE(any_modified);
}

// ---------- Noise injection ----------

TEST(NoiseTest, ZeroRatioIsIdentity) {
  SequenceDataset ds;
  ds.num_items = 10;
  ds.train_seqs = {{1, 2, 3, 4}};
  ds.valid_targets = {5};
  ds.test_targets = {6};
  Rng rng(1);
  SequenceDataset out = InjectTrainingNoise(ds, 0.0, rng);
  EXPECT_EQ(out.train_seqs, ds.train_seqs);
}

TEST(NoiseTest, InjectsProportionalItems) {
  SequenceDataset ds;
  ds.num_items = 100;
  ds.train_seqs = {std::vector<int32_t>(20, 1)};
  ds.valid_targets = {5};
  ds.test_targets = {6};
  Rng rng(2);
  SequenceDataset out = InjectTrainingNoise(ds, 0.5, rng);
  EXPECT_EQ(out.train_seqs[0].size(), 30u);  // 20 + 0.5*20
  // Targets untouched.
  EXPECT_EQ(out.valid_targets, ds.valid_targets);
  EXPECT_EQ(out.test_targets, ds.test_targets);
}

TEST(NoiseTest, OriginalItemsPreservedInOrder) {
  SequenceDataset ds;
  ds.num_items = 50;
  ds.train_seqs = {{1, 2, 3, 4, 5, 6, 7, 8}};
  ds.valid_targets = {9};
  ds.test_targets = {10};
  Rng rng(3);
  SequenceDataset out = InjectTrainingNoise(ds, 0.25, rng);
  // The original sequence must be a subsequence of the noisy one.
  const auto& noisy = out.train_seqs[0];
  size_t j = 0;
  for (int32_t v : noisy) {
    if (j < ds.train_seqs[0].size() && v == ds.train_seqs[0][j]) ++j;
  }
  EXPECT_EQ(j, ds.train_seqs[0].size());
}

}  // namespace
}  // namespace data
}  // namespace msgcl
