// Unit tests for the nn layer library: module registry, layers, attention
// masking properties, transformer stack, GRU, optimizers, and a small
// end-to-end training integration test.
#include <cmath>
#include <numeric>
#include <set>

#include "gtest/gtest.h"
#include "nn/nn.h"
#include "test_util.h"

namespace msgcl {
namespace nn {
namespace {

using msgcl::testing::CheckGradients;
using msgcl::testing::ExpectTensorNear;

// ---------- Module registry ----------

class ToyModule : public Module {
 public:
  explicit ToyModule(Rng& rng) : inner_(2, 3, rng) {
    w_ = RegisterParameter("w", Tensor::Ones({4}));
    RegisterChild("inner", &inner_);
  }
  Tensor w_;
  Linear inner_;
};

TEST(ModuleTest, ParameterTraversalAndNames) {
  Rng rng(1);
  ToyModule m(rng);
  auto named = m.NamedParameters();
  std::set<std::string> names;
  for (auto& [n, t] : named) names.insert(n);
  EXPECT_TRUE(names.count("w"));
  EXPECT_TRUE(names.count("inner.weight"));
  EXPECT_TRUE(names.count("inner.bias"));
  EXPECT_EQ(m.NumParameters(), 4 + 2 * 3 + 3);
}

TEST(ModuleTest, ParametersRequireGrad) {
  Rng rng(2);
  ToyModule m(rng);
  for (auto& p : m.Parameters()) EXPECT_TRUE(p.requires_grad());
}

TEST(ModuleTest, SetTrainingPropagates) {
  Rng rng(3);
  ToyModule m(rng);
  EXPECT_TRUE(m.training());
  m.SetTraining(false);
  EXPECT_FALSE(m.training());
  EXPECT_FALSE(m.inner_.training());
}

TEST(ModuleTest, ZeroGradClearsSubtree) {
  Rng rng(4);
  ToyModule m(rng);
  Tensor x = Tensor::Ones({1, 2});
  m.inner_.Forward(x).Sum().Backward();
  bool any = false;
  for (auto& p : m.inner_.Parameters()) {
    for (float g : p.grad()) any = any || g != 0.0f;
  }
  EXPECT_TRUE(any);
  m.ZeroGrad();
  for (auto& p : m.Parameters()) {
    for (float g : p.grad()) EXPECT_EQ(g, 0.0f);
  }
}

// ---------- Linear ----------

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(5);
  Linear lin(3, 2, rng);
  Tensor x = Tensor::Ones({4, 3});
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 2}));
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(6);
  Linear lin(2, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.NumParameters(), 4);
  Tensor zero = Tensor::Zeros({1, 2});
  Tensor y = lin.Forward(zero);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 0.0f);
}

TEST(LinearTest, BatchedInput3D) {
  Rng rng(7);
  Linear lin(4, 5, rng);
  Tensor x = Tensor::Randn({2, 3, 4}, rng);
  EXPECT_EQ(lin.Forward(x).shape(), (Shape{2, 3, 5}));
}

TEST(LinearTest, GradientsFlowToWeights) {
  Rng rng(8);
  Linear lin(2, 2, rng);
  Tensor x = Tensor::Ones({1, 2});
  lin.Forward(x).Sum().Backward();
  for (auto& p : lin.Parameters()) {
    bool nonzero = false;
    for (float g : p.grad()) nonzero = nonzero || g != 0.0f;
    EXPECT_TRUE(nonzero);
  }
}

// ---------- Embedding ----------

TEST(EmbeddingTest, PaddingRowIsZeroInitialized) {
  Rng rng(9);
  Embedding emb(5, 4, rng, /*padding_idx=*/0);
  Tensor y = emb.Forward({0}, {1});
  for (int j = 0; j < 4; ++j) EXPECT_EQ(y.at(j), 0.0f);
}

TEST(EmbeddingTest, LookupShape) {
  Rng rng(10);
  Embedding emb(10, 3, rng);
  Tensor y = emb.Forward({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(y.shape(), (Shape{2, 3, 3}));
  EXPECT_EQ(emb.num_embeddings(), 10);
  EXPECT_EQ(emb.dim(), 3);
}

TEST(EmbeddingTest, PaddingReceivesNoGradient) {
  Rng rng(11);
  Embedding emb(3, 2, rng, /*padding_idx=*/0);
  emb.Forward({0, 1, 2}, {3}).Sum().Backward();
  const auto& g = emb.table().grad();
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 0.0f);
  EXPECT_NE(g[2], 0.0f);
}

// ---------- LayerNorm / Dropout ----------

TEST(LayerNormTest, OutputRowsNormalized) {
  Rng rng(12);
  LayerNorm ln(6);
  Tensor x = Tensor::Randn({3, 6}, rng, 5.0f);
  Tensor y = ln.Forward(x);
  for (int r = 0; r < 3; ++r) {
    double mu = 0.0;
    for (int j = 0; j < 6; ++j) mu += y.at(r * 6 + j);
    EXPECT_NEAR(mu / 6.0, 0.0, 1e-4);
  }
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(13);
  Dropout drop(0.5f);
  drop.SetTraining(false);
  Tensor x = Tensor::Randn({100}, rng);
  ExpectTensorNear(drop.Forward(x, rng), x, 0.0f, 0.0f);
}

TEST(DropoutTest, TrainModeDropsAboutRate) {
  Rng rng(14);
  Dropout drop(0.3f);
  Tensor x = Tensor::Ones({10000});
  Tensor y = drop.Forward(x, rng);
  int zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) zeros += (y.at(i) == 0.0f);
  EXPECT_NEAR(zeros / 10000.0, 0.3, 0.03);
}

TEST(DropoutTest, ZeroRateIsIdentityEvenInTraining) {
  Rng rng(15);
  Dropout drop(0.0f);
  Tensor x = Tensor::Randn({16}, rng);
  ExpectTensorNear(drop.Forward(x, rng), x, 0.0f, 0.0f);
}

TEST(DropoutTest, KeptEntriesScaledByInverseKeepProb) {
  Rng rng(16);
  Dropout drop(0.5f);
  Tensor x = Tensor::Ones({1000});
  Tensor y = drop.Forward(x, rng);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y.at(i) == 0.0f || std::fabs(y.at(i) - 2.0f) < 1e-6);
  }
}

// ---------- Attention ----------

TEST(AttentionTest, OutputShape) {
  Rng rng(17);
  MultiHeadSelfAttention attn(8, 2, 0.0f, rng);
  Tensor x = Tensor::Randn({2, 5, 8}, rng);
  Tensor y = attn.Forward(x, /*causal=*/true, nullptr, rng);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  // Property: with a causal mask, changing x at position t must not change
  // the output at positions < t.
  Rng rng(18);
  MultiHeadSelfAttention attn(4, 2, 0.0f, rng);
  attn.SetTraining(false);
  Rng fwd_rng(1);
  Tensor x1 = Tensor::Randn({1, 4, 4}, rng);
  Tensor x2 = x1.Detach();
  // Perturb the final time step only.
  for (int j = 0; j < 4; ++j) x2.set(3 * 4 + j, x2.at(3 * 4 + j) + 10.0f);
  Rng r1(7), r2(7);
  Tensor y1 = attn.Forward(x1, true, nullptr, r1);
  Tensor y2 = attn.Forward(x2, true, nullptr, r2);
  for (int t = 0; t < 3; ++t) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(y1.at(t * 4 + j), y2.at(t * 4 + j), 1e-5) << "t=" << t;
    }
  }
}

TEST(AttentionTest, NonCausalSeesFuture) {
  Rng rng(19);
  MultiHeadSelfAttention attn(4, 1, 0.0f, rng);
  attn.SetTraining(false);
  Tensor x1 = Tensor::Randn({1, 3, 4}, rng);
  Tensor x2 = x1.Detach();
  for (int j = 0; j < 4; ++j) x2.set(2 * 4 + j, x2.at(2 * 4 + j) + 10.0f);
  Rng r1(7), r2(7);
  Tensor y1 = attn.Forward(x1, false, nullptr, r1);
  Tensor y2 = attn.Forward(x2, false, nullptr, r2);
  float diff = 0.0f;
  for (int j = 0; j < 4; ++j) diff += std::fabs(y1.at(j) - y2.at(j));
  EXPECT_GT(diff, 1e-4);  // position 0 changed because it attends to position 2
}

TEST(AttentionTest, KeyPaddingMaskIgnoresPaddedKeys) {
  Rng rng(20);
  MultiHeadSelfAttention attn(4, 2, 0.0f, rng);
  attn.SetTraining(false);
  Tensor x1 = Tensor::Randn({1, 4, 4}, rng);
  Tensor x2 = x1.Detach();
  // Positions 0..1 are padding; perturb them wildly.
  for (int t = 0; t < 2; ++t) {
    for (int j = 0; j < 4; ++j) x2.set(t * 4 + j, 100.0f);
  }
  std::vector<uint8_t> pad = {1, 1, 0, 0};
  Rng r1(7), r2(7);
  Tensor y1 = attn.Forward(x1, true, &pad, r1);
  Tensor y2 = attn.Forward(x2, true, &pad, r2);
  // Outputs at non-pad positions depend only on non-pad keys... but also on
  // their own query input, which we did not change (positions 2, 3).
  for (int t = 2; t < 4; ++t) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(y1.at(t * 4 + j), y2.at(t * 4 + j), 1e-5) << "t=" << t;
    }
  }
}

TEST(AttentionTest, HeadsMustDivideDim) {
  Rng rng(21);
  EXPECT_DEATH(MultiHeadSelfAttention(6, 4, 0.0f, rng), "divisible");
}

TEST(AttentionTest, GradCheckThroughAttention) {
  Rng rng(22);
  MultiHeadSelfAttention attn(4, 2, 0.0f, rng);
  Tensor x = Tensor::Randn({1, 3, 4}, rng, 0.5f);
  Rng fwd(3);
  CheckGradients(
      [&](std::vector<Tensor>& v) {
        Rng r(3);
        return attn.Forward(v[0], true, nullptr, r).Square().Sum();
      },
      {x});
}

// ---------- Transformer ----------

TEST(TransformerTest, EncoderShapeAndStacking) {
  Rng rng(23);
  TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 3;
  cfg.dropout = 0.0f;
  TransformerEncoder enc(cfg, rng);
  Tensor x = Tensor::Randn({2, 4, 8}, rng);
  Rng fwd(1);
  EXPECT_EQ(enc.Forward(x, true, nullptr, fwd).shape(), (Shape{2, 4, 8}));
}

TEST(TransformerTest, CausalPropertyHoldsThroughStack) {
  Rng rng(24);
  TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.dropout = 0.0f;
  TransformerEncoder enc(cfg, rng);
  enc.SetTraining(false);
  Tensor x1 = Tensor::Randn({1, 5, 8}, rng);
  Tensor x2 = x1.Detach();
  for (int j = 0; j < 8; ++j) x2.set(4 * 8 + j, -50.0f);
  Rng r1(7), r2(7);
  Tensor y1 = enc.Forward(x1, true, nullptr, r1);
  Tensor y2 = enc.Forward(x2, true, nullptr, r2);
  for (int t = 0; t < 4; ++t) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(y1.at(t * 8 + j), y2.at(t * 8 + j), 1e-4) << "t=" << t;
    }
  }
}

TEST(TransformerTest, DeterministicInEvalMode) {
  Rng rng(25);
  TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.dropout = 0.5f;
  TransformerEncoder enc(cfg, rng);
  enc.SetTraining(false);
  Tensor x = Tensor::Randn({1, 3, 8}, rng);
  Rng r1(1), r2(999);  // different rngs must not matter in eval mode
  Tensor y1 = enc.Forward(x, true, nullptr, r1);
  Tensor y2 = enc.Forward(x, true, nullptr, r2);
  ExpectTensorNear(y1, y2, 0.0f, 0.0f);
}

TEST(TransformerTest, ParameterCountMatchesFormula) {
  Rng rng(26);
  TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  TransformerEncoder enc(cfg, rng);
  // Per block: 4 attn linears (d*d + d), 2 ffn linears (d*d + d),
  // 2 layer norms (2d each).
  const int64_t d = 8;
  const int64_t expected = 4 * (d * d + d) + 2 * (d * d + d) + 2 * 2 * d;
  EXPECT_EQ(enc.NumParameters(), expected);
}

// ---------- GRU ----------

TEST(GruTest, OutputShape) {
  Rng rng(27);
  Gru gru(4, 6, rng);
  Tensor x = Tensor::Randn({3, 5, 4}, rng);
  EXPECT_EQ(gru.Forward(x).shape(), (Shape{3, 5, 6}));
}

TEST(GruTest, ZeroInputZeroWeightsGivesZeroState) {
  Rng rng(28);
  Gru gru(2, 3, rng);
  // Zero all parameters: gates r=z=0.5, n=tanh(0)=0; h' = 0.5*h stays 0.
  for (auto& p : gru.Parameters()) {
    for (auto& v : p.data()) v = 0.0f;
  }
  Tensor x = Tensor::Zeros({1, 4, 2});
  Tensor y = gru.Forward(x);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y.at(i), 0.0f);
}

TEST(GruTest, StatePropagatesAcrossTime) {
  Rng rng(29);
  Gru gru(2, 2, rng);
  Tensor x1 = Tensor::Zeros({1, 3, 2});
  Tensor x2 = Tensor::Zeros({1, 3, 2});
  x2.set(0, 5.0f);  // change only t=0
  Tensor y1 = gru.Forward(x1);
  Tensor y2 = gru.Forward(x2);
  // The final step output must differ: information flowed through the state.
  float diff = 0.0f;
  for (int j = 0; j < 2; ++j) diff += std::fabs(y1.at(2 * 2 + j) - y2.at(2 * 2 + j));
  EXPECT_GT(diff, 1e-5);
}

TEST(GruTest, GradCheck) {
  Rng rng(30);
  Gru gru(2, 2, rng);
  Tensor x = Tensor::Randn({1, 3, 2}, rng, 0.5f);
  CheckGradients(
      [&](std::vector<Tensor>& v) { return gru.Forward(v[0]).Square().Sum(); }, {x});
}

// ---------- Optimizers ----------

TEST(OptimTest, SgdStepMovesAgainstGradient) {
  Tensor p = Tensor::FromVector({1}, {1.0f}, true);
  Sgd opt({p}, 0.1f);
  p.Square().Backward();  // dp = 2
  opt.Step();
  EXPECT_NEAR(p.at(0), 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  // Minimise (p - 3)^2.
  Tensor p = Tensor::FromVector({1}, {0.0f}, true);
  Adam opt({p}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    p.AddScalar(-3.0f).Square().Sum().Backward();
    opt.Step();
  }
  EXPECT_NEAR(p.at(0), 3.0f, 1e-2);
}

TEST(OptimTest, AdamFitsLinearRegression) {
  Rng rng(31);
  // y = 2 x0 - x1 + 0.5
  Tensor w = Tensor::Zeros({2, 1}, true);
  Tensor b = Tensor::Zeros({1}, true);
  Tensor x = Tensor::Randn({64, 2}, rng);
  std::vector<float> yv(64);
  for (int i = 0; i < 64; ++i) yv[i] = 2 * x.at(i * 2) - x.at(i * 2 + 1) + 0.5f;
  Tensor y = Tensor::FromVector({64, 1}, yv);
  Adam opt({w, b}, 0.05f);
  for (int e = 0; e < 400; ++e) {
    opt.ZeroGrad();
    Tensor pred = x.MatMul(w).Add(b);
    pred.Sub(y).Square().Mean().Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.at(0), 2.0f, 0.05f);
  EXPECT_NEAR(w.at(1), -1.0f, 0.05f);
  EXPECT_NEAR(b.at(0), 0.5f, 0.05f);
}

TEST(OptimTest, WeightDecayShrinksParameters) {
  Tensor p = Tensor::FromVector({1}, {10.0f}, true);
  Adam opt({p}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  // No loss gradient, only decay pressure.
  p.mutable_grad();  // allocate a zero grad so Step() applies decay
  for (int i = 0; i < 50; ++i) opt.Step();
  EXPECT_LT(std::fabs(p.at(0)), 10.0f);
}

TEST(OptimTest, ClipGradNormScalesDown) {
  Tensor p = Tensor::FromVector({2}, {0.0f, 0.0f}, true);
  auto& g = p.mutable_grad();
  g[0] = 3.0f;
  g[1] = 4.0f;  // norm 5
  const float pre = ClipGradNorm({p}, 1.0f);
  EXPECT_NEAR(pre, 5.0f, 1e-5);
  EXPECT_NEAR(p.grad()[0], 0.6f, 1e-5);
  EXPECT_NEAR(p.grad()[1], 0.8f, 1e-5);
}

TEST(OptimTest, ClipGradNormNoopBelowThreshold) {
  Tensor p = Tensor::FromVector({1}, {0.0f}, true);
  p.mutable_grad()[0] = 0.5f;
  ClipGradNorm({p}, 1.0f);
  EXPECT_NEAR(p.grad()[0], 0.5f, 1e-6);
}

TEST(OptimTest, KlAnnealingRampsLinearly) {
  KlAnnealing anneal(0.4f, 100);
  EXPECT_NEAR(anneal.Weight(0), 0.0f, 1e-6);
  EXPECT_NEAR(anneal.Weight(50), 0.2f, 1e-6);
  EXPECT_NEAR(anneal.Weight(100), 0.4f, 1e-6);
  EXPECT_NEAR(anneal.Weight(1000), 0.4f, 1e-6);
}

TEST(OptimTest, KlAnnealingZeroWarmupIsConstant) {
  KlAnnealing anneal(0.3f, 0);
  EXPECT_NEAR(anneal.Weight(0), 0.3f, 1e-6);
}

// ---------- Integration: tiny next-token model learns a cycle ----------

TEST(IntegrationTest, TransformerLearnsDeterministicCycle) {
  // Vocabulary {1, 2, 3} cycling; model must learn next-token prediction.
  // (0 is padding.)
  Rng rng(32);
  const int64_t V = 4, D = 16, T = 6;
  Embedding item_emb(V, D, rng, 0);
  Embedding pos_emb(T, D, rng);
  TransformerConfig cfg;
  cfg.dim = D;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.dropout = 0.0f;
  TransformerEncoder enc(cfg, rng);

  std::vector<Tensor> params = item_emb.Parameters();
  for (auto& p : pos_emb.Parameters()) params.push_back(p);
  for (auto& p : enc.Parameters()) params.push_back(p);
  Adam opt(params, 0.01f);

  std::vector<int32_t> seq = {1, 2, 3, 1, 2, 3};
  std::vector<int32_t> targets = {2, 3, 1, 2, 3, 1};
  std::vector<int32_t> positions(T);
  std::iota(positions.begin(), positions.end(), 0);

  float final_loss = 1e9f;
  for (int step = 0; step < 150; ++step) {
    opt.ZeroGrad();
    Tensor x = item_emb.Forward(seq, {1, T}).Add(pos_emb.Forward(positions, {1, T}));
    Rng fwd(step);
    Tensor h = enc.Forward(x, true, nullptr, fwd);
    Tensor logits = h.Reshape({T, D}).MatMul(item_emb.table().TransposeLast2());
    Tensor loss = CrossEntropyLogits(logits, targets, 0);
    loss.Backward();
    opt.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.2f) << "model failed to memorise a 3-cycle";
}

}  // namespace
}  // namespace nn
}  // namespace msgcl
