// Tests for the shared SasBackbone: embedding composition, masking, scoring
// contracts, and parameter accounting (the paper's §IV.F space-complexity
// claim O(N d + n d + d^2)).
#include <cmath>

#include "data/batching.h"
#include "gtest/gtest.h"
#include "models/backbone.h"

namespace msgcl {
namespace models {
namespace {

BackboneConfig SmallConfig() {
  BackboneConfig c;
  c.num_items = 20;
  c.max_len = 8;
  c.dim = 16;
  c.heads = 2;
  c.layers = 2;
  c.dropout = 0.0f;
  return c;
}

data::Batch OneRowBatch(std::vector<int32_t> items, int64_t max_len = 8) {
  std::vector<std::vector<int32_t>> inputs = {std::move(items)};
  return data::MakeEvalBatch(inputs, {0}, max_len);
}

TEST(BackboneTest, EmbedShape) {
  Rng rng(1);
  SasBackbone bb(SmallConfig(), rng);
  data::Batch b = OneRowBatch({1, 2, 3});
  Rng fwd(2);
  EXPECT_EQ(bb.Embed(b, fwd).shape(), (Shape{1, 8, 16}));
}

TEST(BackboneTest, EncodeShapeAndDeterminismInEval) {
  Rng rng(3);
  SasBackbone bb(SmallConfig(), rng);
  bb.SetTraining(false);
  data::Batch b = OneRowBatch({4, 5, 6, 7});
  Rng r1(1), r2(2);
  Tensor h1 = bb.Encode(b, true, r1);
  Tensor h2 = bb.Encode(b, true, r2);
  EXPECT_EQ(h1.data(), h2.data());
}

TEST(BackboneTest, LogitsCoverItemsPlusPadding) {
  Rng rng(4);
  SasBackbone bb(SmallConfig(), rng);
  Tensor h = Tensor::Ones({3, 16});
  EXPECT_EQ(bb.LogitsAll(h).shape(), (Shape{3, 21}));
}

TEST(BackboneTest, MaskTokenExcludedFromLogits) {
  Rng rng(5);
  BackboneConfig c = SmallConfig();
  c.with_mask_token = true;
  SasBackbone bb(c, rng);
  EXPECT_EQ(bb.mask_token(), 21);
  Tensor h = Tensor::Ones({1, 16});
  // Still only num_items + 1 columns: the mask row is never scored.
  EXPECT_EQ(bb.LogitsAll(h).shape(), (Shape{1, 21}));
}

TEST(BackboneTest, LastPositionPicksFinalTimeStep) {
  Tensor h = Tensor::FromVector({1, 3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor last = SasBackbone::LastPosition(h);
  EXPECT_EQ(last.shape(), (Shape{1, 2}));
  EXPECT_EQ(last.at(0), 5.0f);
  EXPECT_EQ(last.at(1), 6.0f);
}

TEST(BackboneTest, ParameterCountFollowsSpaceComplexity) {
  // O(N d + n d + d^2): item table (N+1)d + positions n*d + per-layer O(d^2).
  Rng rng(6);
  BackboneConfig c = SmallConfig();
  SasBackbone bb(c, rng);
  const int64_t d = c.dim;
  const int64_t item_emb = (c.num_items + 1) * d;
  const int64_t pos_emb = c.max_len * d;
  const int64_t per_block = 4 * (d * d + d) + 2 * (d * d + d) + 2 * 2 * d;
  const int64_t emb_norm = 2 * d;
  EXPECT_EQ(bb.NumParameters(), item_emb + pos_emb + c.layers * per_block + emb_norm);
}

TEST(BackboneTest, ParameterCountLinearInItems) {
  Rng rng(7);
  BackboneConfig small = SmallConfig();
  BackboneConfig big = SmallConfig();
  big.num_items = small.num_items * 2 + 1;
  Rng rng2(7);
  SasBackbone a(small, rng);
  SasBackbone b(big, rng2);
  EXPECT_EQ(b.NumParameters() - a.NumParameters(),
            (big.num_items - small.num_items) * small.dim);
}

TEST(BackboneTest, PaddingPositionsDoNotAffectRealOnes) {
  // Same suffix with different (padded) prefixes must encode identically at
  // the final position, because padded keys are masked out.
  Rng rng(8);
  SasBackbone bb(SmallConfig(), rng);
  bb.SetTraining(false);
  data::Batch b1 = OneRowBatch({9, 10});
  data::Batch b2 = OneRowBatch({9, 10});
  // Corrupt the *padded* slots of b2's inputs directly (ids stay valid but
  // the padding mask still marks them).
  for (int64_t t = 0; t < 6; ++t) b2.inputs[t] = 3;
  Rng r1(1), r2(1);
  Tensor h1 = SasBackbone::LastPosition(bb.Encode(b1, true, r1));
  Tensor h2 = SasBackbone::LastPosition(bb.Encode(b2, true, r2));
  for (int64_t i = 0; i < h1.numel(); ++i) {
    // Note: corrupted slots still contribute their *query* rows, but the
    // final position only attends to non-padded keys, and its own input
    // embedding is unchanged.
    EXPECT_NEAR(h1.at(i), h2.at(i), 1e-5);
  }
}

// Parameterized sweep: encode works across head/layer combinations.
class BackboneSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BackboneSweep, EncodeProducesFiniteOutput) {
  auto [heads, layers] = GetParam();
  Rng rng(100 + heads * 10 + layers);
  BackboneConfig c = SmallConfig();
  c.heads = heads;
  c.layers = layers;
  SasBackbone bb(c, rng);
  data::Batch b = OneRowBatch({1, 5, 9, 13});
  Rng fwd(3);
  Tensor h = bb.Encode(b, true, fwd);
  for (int64_t i = 0; i < h.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(h.at(i))) << "heads=" << heads << " layers=" << layers;
  }
}

INSTANTIATE_TEST_SUITE_P(HeadsLayers, BackboneSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace models
}  // namespace msgcl
