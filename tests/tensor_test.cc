// Unit tests for the tensor substrate: factories, shape utilities, forward
// values of every op, autograd correctness (numerical gradient checks), and
// RNG determinism.
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"
#include "tensor/rng.h"
#include "tensor/status.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace msgcl {
namespace {

using testing::CheckGradients;
using testing::ExpectTensorNear;

// ---------- Shape utilities ----------

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({3}), 3);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({5, 0, 2}), 0);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

// ---------- Status / Result ----------

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad alpha");
}

TEST(StatusTest, ResultHoldsValueOrError) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.UniformInt(10)]++;
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(13);
  int head = 0, total = 5000;
  for (int i = 0; i < total; ++i) {
    if (rng.Zipf(1000, 1.2) < 10) head++;
  }
  // The top-10 ranks should carry far more than 1% of the mass.
  EXPECT_GT(head, total / 10);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.Split();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

// ---------- Factories and accessors ----------

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.at(i), 0.0f);
  Tensor o = Tensor::Ones({4});
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(o.at(i), 1.0f);
  Tensor f = Tensor::Full({2}, 3.5f);
  EXPECT_EQ(f.at(0), 3.5f);
}

TEST(TensorTest, FromVectorAndItem) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 2);
  EXPECT_EQ(t.at(3), 4.0f);
  Tensor s = Tensor::FromVector({1}, {7.0f});
  EXPECT_EQ(s.item(), 7.0f);
}

TEST(TensorTest, RandnDeterministicGivenRng) {
  Rng r1(3), r2(3);
  Tensor a = Tensor::Randn({8}, r1);
  Tensor b = Tensor::Randn({8}, r2);
  ExpectTensorNear(a, b, 0.0f, 0.0f);
}

TEST(TensorTest, SetAndAt) {
  Tensor t = Tensor::Zeros({3});
  t.set(1, 5.0f);
  EXPECT_EQ(t.at(1), 5.0f);
}

// ---------- Elementwise forward ----------

TEST(OpsTest, AddSubMulDiv) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  ExpectTensorNear(a + b, Tensor::FromVector({3}, {5, 7, 9}));
  ExpectTensorNear(b - a, Tensor::FromVector({3}, {3, 3, 3}));
  ExpectTensorNear(a * b, Tensor::FromVector({3}, {4, 10, 18}));
  ExpectTensorNear(b / a, Tensor::FromVector({3}, {4, 2.5f, 2}));
}

TEST(OpsTest, ScalarOps) {
  Tensor a = Tensor::FromVector({2}, {1, -2});
  ExpectTensorNear(a.AddScalar(1.0f), Tensor::FromVector({2}, {2, -1}));
  ExpectTensorNear(a.MulScalar(-3.0f), Tensor::FromVector({2}, {-3, 6}));
  ExpectTensorNear(a.Neg(), Tensor::FromVector({2}, {-1, 2}));
}

TEST(OpsTest, BroadcastRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::FromVector({3}, {10, 20, 30});
  ExpectTensorNear(a + row, Tensor::FromVector({2, 3}, {11, 22, 33, 14, 25, 36}));
}

TEST(OpsTest, BroadcastColumnVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::FromVector({2, 1}, {10, 100});
  ExpectTensorNear(a * col, Tensor::FromVector({2, 3}, {10, 20, 30, 400, 500, 600}));
}

TEST(OpsTest, BroadcastScalarTensor) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::FromVector({1}, {2.0f});
  ExpectTensorNear(a * s, Tensor::FromVector({2, 2}, {2, 4, 6, 8}));
}

TEST(OpsTest, BroadcastRank0Tensor) {
  // Rank-0 (shape []) operands are normalized to [1] by every broadcasting
  // op, on either side, so they behave exactly like [1]-shaped scalars.
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = Tensor::FromVector({}, {10.0f});
  ExpectTensorNear(a + s, Tensor::FromVector({2, 3}, {11, 12, 13, 14, 15, 16}));
  ExpectTensorNear(s + a, Tensor::FromVector({2, 3}, {11, 12, 13, 14, 15, 16}));
  ExpectTensorNear(s * a, Tensor::FromVector({2, 3}, {10, 20, 30, 40, 50, 60}));
}

TEST(OpsTest, Rank0WithRank0ProducesRank1) {
  Tensor x = Tensor::FromVector({}, {3.0f});
  Tensor y = Tensor::FromVector({}, {4.0f});
  Tensor z = x * y;
  EXPECT_EQ(z.shape(), Shape({1}));  // consistent with reductions -> [1]
  EXPECT_FLOAT_EQ(z.at(0), 12.0f);
  Tensor w = x + Tensor::FromVector({1}, {1.0f});
  EXPECT_EQ(w.shape(), Shape({1}));
  EXPECT_FLOAT_EQ(w.at(0), 4.0f);
}

TEST(OpsTest, Rank0GradientFlows) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::FromVector({}, {2.0f}, /*requires_grad=*/true);
  Tensor loss = a.Mul(s).Sum();
  loss.Backward();
  ASSERT_EQ(s.grad().size(), 1u);
  EXPECT_FLOAT_EQ(s.grad()[0], 10.0f);  // sum of a
}

TEST(OpsTest, UnaryForwardValues) {
  Tensor x = Tensor::FromVector({4}, {-1.0f, 0.0f, 0.5f, 2.0f});
  ExpectTensorNear(x.Relu(), Tensor::FromVector({4}, {0, 0, 0.5f, 2}));
  Tensor t = x.Tanh();
  EXPECT_NEAR(t.at(3), std::tanh(2.0f), 1e-6);
  Tensor s = x.Sigmoid();
  EXPECT_NEAR(s.at(0), 1.0f / (1.0f + std::exp(1.0f)), 1e-6);
  Tensor e = x.Exp();
  EXPECT_NEAR(e.at(3), std::exp(2.0f), 1e-4);
  Tensor sq = x.Square();
  EXPECT_NEAR(sq.at(0), 1.0f, 1e-6);
  Tensor sr = Tensor::FromVector({2}, {4.0f, 9.0f}).Sqrt();
  ExpectTensorNear(sr, Tensor::FromVector({2}, {2, 3}));
}

TEST(OpsTest, LogClampsAtEps) {
  Tensor x = Tensor::FromVector({2}, {0.0f, 1.0f});
  Tensor y = x.Log(1e-6f);
  EXPECT_NEAR(y.at(0), std::log(1e-6f), 1e-3);
  EXPECT_NEAR(y.at(1), 0.0f, 1e-6);
}

TEST(OpsTest, GeluMatchesReference) {
  // Reference values from the tanh-approximation formula.
  Tensor x = Tensor::FromVector({3}, {-1.0f, 0.0f, 1.0f});
  Tensor y = x.Gelu();
  EXPECT_NEAR(y.at(1), 0.0f, 1e-6);
  EXPECT_NEAR(y.at(2), 0.841192f, 1e-4);
  EXPECT_NEAR(y.at(0), -0.158808f, 1e-4);
}

// ---------- Reductions ----------

TEST(OpsTest, SumAndMean) {
  Tensor x = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_NEAR(x.Sum().item(), 10.0f, 1e-6);
  EXPECT_NEAR(x.Mean().item(), 2.5f, 1e-6);
}

TEST(OpsTest, SumLastDim) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  ExpectTensorNear(x.SumLastDim(), Tensor::FromVector({2}, {6, 15}));
  ExpectTensorNear(x.MeanLastDim(), Tensor::FromVector({2}, {2, 5}));
}

TEST(OpsTest, MaxLastDim) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 9, 3, 7, 5, 6});
  ExpectTensorNear(x.MaxLastDim(), Tensor::FromVector({2}, {9, 7}));
}

TEST(OpsTest, SumLastDimOn1D) {
  Tensor x = Tensor::FromVector({3}, {1, 2, 3});
  Tensor s = x.SumLastDim();
  EXPECT_EQ(s.numel(), 1);
  EXPECT_NEAR(s.item(), 6.0f, 1e-6);
}

// ---------- Softmax family ----------

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(1);
  Tensor x = Tensor::Randn({4, 7}, rng);
  Tensor y = x.SoftmaxLastDim();
  for (int r = 0; r < 4; ++r) {
    float s = 0.0f;
    for (int j = 0; j < 7; ++j) s += y.at(r * 7 + j);
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
}

TEST(OpsTest, SoftmaxStableUnderLargeLogits) {
  Tensor x = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor y = x.SoftmaxLastDim();
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(y.at(j), 1.0f / 3.0f, 1e-5);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(2);
  Tensor x = Tensor::Randn({3, 5}, rng);
  Tensor a = x.LogSoftmaxLastDim();
  Tensor b = x.SoftmaxLastDim().Log();
  ExpectTensorNear(a, b, 1e-4f, 1e-3f);
}

TEST(OpsTest, L2NormalizeRowsHaveUnitNorm) {
  Rng rng(3);
  Tensor x = Tensor::Randn({5, 8}, rng);
  Tensor y = x.L2NormalizeLastDim();
  for (int r = 0; r < 5; ++r) {
    double n = 0.0;
    for (int j = 0; j < 8; ++j) n += static_cast<double>(y.at(r * 8 + j)) * y.at(r * 8 + j);
    EXPECT_NEAR(n, 1.0, 1e-5);
  }
}

// ---------- Masking ----------

TEST(OpsTest, MaskedFillReplacesMaskedEntries) {
  Tensor x = Tensor::FromVector({4}, {1, 2, 3, 4});
  std::vector<uint8_t> mask = {0, 1, 0, 1};
  Tensor y = x.MaskedFill(mask, -9.0f);
  ExpectTensorNear(y, Tensor::FromVector({4}, {1, -9, 3, -9}));
}

TEST(OpsTest, DropoutMaskScalesKeptEntries) {
  Tensor x = Tensor::FromVector({4}, {1, 2, 3, 4});
  std::vector<uint8_t> keep = {1, 0, 1, 0};
  Tensor y = x.DropoutMask(keep, 0.5f);
  ExpectTensorNear(y, Tensor::FromVector({4}, {2, 0, 6, 0}));
}

// ---------- Shape ops ----------

TEST(OpsTest, ReshapePreservesData) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = x.Reshape({3, 2});
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  EXPECT_EQ(y.at(5), 6.0f);
}

TEST(OpsTest, TransposeLast2) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = x.TransposeLast2();
  ExpectTensorNear(y, Tensor::FromVector({3, 2}, {1, 4, 2, 5, 3, 6}));
}

TEST(OpsTest, TransposeBatched) {
  Tensor x = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor y = x.TransposeLast2();
  ExpectTensorNear(y, Tensor::FromVector({2, 2, 2}, {1, 3, 2, 4, 5, 7, 6, 8}));
}

TEST(OpsTest, PermuteBHTD) {
  // [B=1, T=2, H=2, D=1] -> [B, H, T, D]
  Tensor x = Tensor::FromVector({1, 2, 2, 1}, {1, 2, 3, 4});
  Tensor y = x.Permute({0, 2, 1, 3});
  ExpectTensorNear(y, Tensor::FromVector({1, 2, 2, 1}, {1, 3, 2, 4}));
}

TEST(OpsTest, NarrowMiddleDim) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = x.Narrow(1, 1, 2);
  ExpectTensorNear(y, Tensor::FromVector({2, 2}, {2, 3, 5, 6}));
}

TEST(OpsTest, ConcatLastDim) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 3});
  Tensor b = Tensor::FromVector({2, 2}, {10, 11, 30, 31});
  Tensor y = Tensor::Concat({a, b}, -1);
  ExpectTensorNear(y, Tensor::FromVector({2, 3}, {1, 10, 11, 3, 30, 31}));
}

TEST(OpsTest, ConcatFirstDim) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor y = Tensor::Concat({a, b}, 0);
  ExpectTensorNear(y, Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6}));
}

// ---------- MatMul ----------

TEST(OpsTest, MatMul2D) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  ExpectTensorNear(a.MatMul(b), Tensor::FromVector({2, 2}, {58, 64, 139, 154}));
}

TEST(OpsTest, MatMulBatched) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {1, 1, 2, 2});
  Tensor y = a.MatMul(b);
  ExpectTensorNear(y, Tensor::FromVector({2, 1, 1}, {3, 14}));
}

TEST(OpsTest, MatMulBroadcastRhs2D) {
  // [2, 2, 2] x [2, 3]: shared weight across batch.
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
  Tensor w = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = a.MatMul(w);
  ExpectTensorNear(y, Tensor::FromVector({2, 2, 3}, {1, 2, 3, 4, 5, 6, 2, 4, 6, 8, 10, 12}));
}

// ---------- Fused ops forward ----------

TEST(OpsTest, EmbeddingLookupGathersRows) {
  Tensor table = Tensor::FromVector({3, 2}, {0, 0, 10, 11, 20, 21});
  Tensor y = EmbeddingLookup(table, {2, 1, 1}, {3});
  ExpectTensorNear(y, Tensor::FromVector({3, 2}, {20, 21, 10, 11, 10, 11}));
}

TEST(OpsTest, EmbeddingLookupShapedIndices) {
  Tensor table = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor y = EmbeddingLookup(table, {0, 1, 1, 0}, {2, 2});
  EXPECT_EQ(y.shape(), (Shape{2, 2, 2}));
}

TEST(OpsTest, GatherTimeStepPicksRows) {
  // x: [2, 3, 2]
  Tensor x = Tensor::FromVector({2, 3, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  Tensor y = GatherTimeStep(x, {2, 0});
  ExpectTensorNear(y, Tensor::FromVector({2, 2}, {5, 6, 7, 8}));
}

TEST(OpsTest, LayerNormNormalizesRows) {
  Tensor x = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 2, 2, 2, 2});
  Tensor gamma = Tensor::Ones({4});
  Tensor beta = Tensor::Zeros({4});
  Tensor y = LayerNormLastDim(x, gamma, beta);
  // Row 0 mean 2.5, var 1.25.
  EXPECT_NEAR(y.at(0), (1.0f - 2.5f) / std::sqrt(1.25f + 1e-5f), 1e-4);
  // Constant row stays ~0.
  for (int j = 4; j < 8; ++j) EXPECT_NEAR(y.at(j), 0.0f, 1e-3);
}

TEST(OpsTest, LayerNormAffine) {
  Tensor x = Tensor::FromVector({1, 2}, {0, 2});
  Tensor gamma = Tensor::FromVector({2}, {2, 2});
  Tensor beta = Tensor::FromVector({2}, {1, 1});
  Tensor y = LayerNormLastDim(x, gamma, beta);
  EXPECT_NEAR(y.at(0), 1.0f - 2.0f, 1e-3);
  EXPECT_NEAR(y.at(1), 1.0f + 2.0f, 1e-3);
}

TEST(OpsTest, CrossEntropyMatchesManual) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, 3, 2, 1});
  Tensor lp = logits.LogSoftmaxLastDim();
  const float expected = -(lp.at(2) + lp.at(3)) / 2.0f;  // targets {2, 0}
  Tensor loss = CrossEntropyLogits(logits, {2, 0});
  EXPECT_NEAR(loss.item(), expected, 1e-5);
}

TEST(OpsTest, CrossEntropyIgnoreIndexSkipsRows) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, 100, 2, 1});
  Tensor lp = logits.LogSoftmaxLastDim();
  Tensor loss = CrossEntropyLogits(logits, {2, -1}, /*ignore_index=*/-1);
  EXPECT_NEAR(loss.item(), -lp.at(2), 1e-5);
}

TEST(OpsTest, CrossEntropyAllIgnoredIsZero) {
  Tensor logits = Tensor::FromVector({1, 2}, {1, 2});
  Tensor loss = CrossEntropyLogits(logits, {0}, /*ignore_index=*/0);
  EXPECT_EQ(loss.item(), 0.0f);
}

TEST(OpsTest, HorizontalConvValidWindows) {
  // x: [1, 3, 2]; one filter of height 2 that sums its window.
  Tensor x = Tensor::FromVector({1, 3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor w = Tensor::Ones({1, 2, 2});
  Tensor b = Tensor::Zeros({1});
  Tensor y = HorizontalConv(x, w, b);
  ExpectTensorNear(y, Tensor::FromVector({1, 2, 1}, {10, 18}));
}

TEST(OpsTest, HorizontalConvBias) {
  Tensor x = Tensor::Zeros({1, 2, 2});
  Tensor w = Tensor::Ones({3, 1, 2});
  Tensor b = Tensor::FromVector({3}, {1, 2, 3});
  Tensor y = HorizontalConv(x, w, b);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 3}));
  EXPECT_NEAR(y.at(0), 1.0f, 1e-6);
  EXPECT_NEAR(y.at(2), 3.0f, 1e-6);
}

// ---------- Autograd ----------

TEST(AutogradTest, SimpleChain) {
  Tensor x = Tensor::FromVector({1}, {3.0f}, /*requires_grad=*/true);
  Tensor y = x.Square().MulScalar(2.0f);  // y = 2 x^2, dy/dx = 4x = 12
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 12.0f, 1e-5);
}

TEST(AutogradTest, DiamondAccumulates) {
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  Tensor a = x.MulScalar(3.0f);
  Tensor b = x.Square();
  Tensor y = (a + b).Sum();  // y = 3x + x^2, dy/dx = 3 + 2x = 7
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 7.0f, 1e-5);
}

TEST(AutogradTest, ReusedNodeBackpropagatesOnce) {
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  Tensor s = x.Square();       // used twice below
  Tensor y = (s * s).Sum();    // y = x^4, dy/dx = 4 x^3 = 32
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 32.0f, 1e-4);
}

TEST(AutogradTest, NoGradGuardSuppressesGraph) {
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(NoGradGuard::GradEnabled());
    Tensor y = x.Square();
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_TRUE(NoGradGuard::GradEnabled());
}

TEST(AutogradTest, DetachCutsHistory) {
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  Tensor d = x.Square().Detach();
  EXPECT_FALSE(d.requires_grad());
  Tensor y = (d * x).Sum();
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 4.0f, 1e-5);  // d treated as constant 4
}

TEST(AutogradTest, BackwardWithExplicitGradOutput) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}, true);
  Tensor y = x.Square();
  std::vector<float> g = {1.0f, 10.0f};
  y.Backward(&g);
  EXPECT_NEAR(x.grad()[0], 2.0f, 1e-5);
  EXPECT_NEAR(x.grad()[1], 40.0f, 1e-5);
}

TEST(AutogradTest, ZeroGradClears) {
  Tensor x = Tensor::FromVector({1}, {3.0f}, true);
  x.Square().Backward();
  EXPECT_NE(x.grad()[0], 0.0f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

// ---------- Numerical gradient checks ----------

TEST(GradCheckTest, ElementwiseBinary) {
  Rng rng(42);
  Tensor a = Tensor::Rand({2, 3}, rng, 0.5f, 1.5f);
  Tensor b = Tensor::Rand({2, 3}, rng, 0.5f, 1.5f);
  CheckGradients([](std::vector<Tensor>& v) { return (v[0] * v[1] + v[0] / v[1]).Sum(); },
                 {a, b});
}

TEST(GradCheckTest, BroadcastBinary) {
  Rng rng(43);
  Tensor a = Tensor::Rand({2, 3}, rng, -1.0f, 1.0f);
  Tensor row = Tensor::Rand({3}, rng, 0.5f, 1.5f);
  CheckGradients([](std::vector<Tensor>& v) { return (v[0] * v[1]).Sum(); }, {a, row});
}

TEST(GradCheckTest, UnaryChain) {
  Rng rng(44);
  Tensor x = Tensor::Rand({6}, rng, -1.0f, 1.0f);
  CheckGradients(
      [](std::vector<Tensor>& v) { return v[0].Tanh().Square().Sum(); }, {x});
}

TEST(GradCheckTest, SigmoidExp) {
  Rng rng(45);
  Tensor x = Tensor::Rand({5}, rng, -1.0f, 1.0f);
  CheckGradients([](std::vector<Tensor>& v) { return (v[0].Sigmoid() * v[0].Exp()).Sum(); },
                 {x});
}

TEST(GradCheckTest, Gelu) {
  Rng rng(46);
  Tensor x = Tensor::Rand({5}, rng, -2.0f, 2.0f);
  CheckGradients([](std::vector<Tensor>& v) { return v[0].Gelu().Sum(); }, {x});
}

TEST(GradCheckTest, SoftmaxLoss) {
  Rng rng(47);
  Tensor x = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  Tensor w = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  CheckGradients(
      [](std::vector<Tensor>& v) { return (v[0].SoftmaxLastDim() * v[1]).Sum(); },
      {x, w});
}

TEST(GradCheckTest, LogSoftmax) {
  Rng rng(48);
  Tensor x = Tensor::Rand({2, 5}, rng, -1.0f, 1.0f);
  CheckGradients(
      [](std::vector<Tensor>& v) {
        Tensor lp = v[0].LogSoftmaxLastDim();
        return lp.Narrow(1, 0, 1).Sum();
      },
      {x});
}

TEST(GradCheckTest, MatMul) {
  Rng rng(49);
  Tensor a = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({4, 2}, rng, -1.0f, 1.0f);
  CheckGradients([](std::vector<Tensor>& v) { return v[0].MatMul(v[1]).Square().Sum(); },
                 {a, b});
}

TEST(GradCheckTest, MatMulBatchedSharedRhs) {
  Rng rng(50);
  Tensor a = Tensor::Rand({2, 3, 4}, rng, -1.0f, 1.0f);
  Tensor w = Tensor::Rand({4, 2}, rng, -1.0f, 1.0f);
  CheckGradients([](std::vector<Tensor>& v) { return v[0].MatMul(v[1]).Square().Sum(); },
                 {a, w});
}

TEST(GradCheckTest, MatMulBothBatched) {
  Rng rng(51);
  Tensor a = Tensor::Rand({2, 2, 3}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({2, 3, 2}, rng, -1.0f, 1.0f);
  CheckGradients([](std::vector<Tensor>& v) { return v[0].MatMul(v[1]).Square().Sum(); },
                 {a, b});
}

TEST(GradCheckTest, Reductions) {
  Rng rng(52);
  Tensor x = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  CheckGradients([](std::vector<Tensor>& v) { return v[0].SumLastDim().Square().Sum(); },
                 {x});
  CheckGradients([](std::vector<Tensor>& v) { return v[0].MeanLastDim().Square().Sum(); },
                 {x});
  CheckGradients([](std::vector<Tensor>& v) { return v[0].Mean().Square(); }, {x});
}

TEST(GradCheckTest, MaxLastDim) {
  // Distinct values so the argmax is stable under perturbation.
  Tensor x = Tensor::FromVector({2, 3}, {0.1f, 0.9f, 0.3f, 0.8f, 0.2f, 0.4f});
  CheckGradients([](std::vector<Tensor>& v) { return v[0].MaxLastDim().Square().Sum(); },
                 {x});
}

TEST(GradCheckTest, ShapeOps) {
  Rng rng(53);
  Tensor x = Tensor::Rand({2, 3, 2}, rng, -1.0f, 1.0f);
  CheckGradients(
      [](std::vector<Tensor>& v) {
        return v[0].Permute({2, 0, 1}).Reshape({4, 3}).Narrow(0, 1, 2).Square().Sum();
      },
      {x});
}

TEST(GradCheckTest, Concat) {
  Rng rng(54);
  Tensor a = Tensor::Rand({2, 2}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({2, 3}, rng, -1.0f, 1.0f);
  CheckGradients(
      [](std::vector<Tensor>& v) {
        return Tensor::Concat({v[0], v[1]}, 1).Square().Sum();
      },
      {a, b});
}

TEST(GradCheckTest, L2Normalize) {
  Rng rng(55);
  Tensor x = Tensor::Rand({3, 4}, rng, 0.5f, 1.5f);
  Tensor w = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  CheckGradients(
      [](std::vector<Tensor>& v) { return (v[0].L2NormalizeLastDim() * v[1]).Sum(); },
      {x, w});
}

TEST(GradCheckTest, MaskedFill) {
  Rng rng(56);
  Tensor x = Tensor::Rand({2, 3}, rng, -1.0f, 1.0f);
  std::vector<uint8_t> mask = {0, 1, 0, 1, 0, 0};
  CheckGradients(
      [mask](std::vector<Tensor>& v) {
        return v[0].MaskedFill(mask, -100.0f).SoftmaxLastDim().Square().Sum();
      },
      {x});
}

TEST(GradCheckTest, DropoutMask) {
  Rng rng(57);
  Tensor x = Tensor::Rand({6}, rng, -1.0f, 1.0f);
  std::vector<uint8_t> keep = {1, 0, 1, 1, 0, 1};
  CheckGradients(
      [keep](std::vector<Tensor>& v) {
        return v[0].DropoutMask(keep, 2.0f / 3.0f).Square().Sum();
      },
      {x});
}

TEST(GradCheckTest, EmbeddingLookup) {
  Rng rng(58);
  Tensor table = Tensor::Rand({4, 3}, rng, -1.0f, 1.0f);
  std::vector<int32_t> idx = {1, 3, 1};
  CheckGradients(
      [idx](std::vector<Tensor>& v) {
        return EmbeddingLookup(v[0], idx, {3}).Square().Sum();
      },
      {table});
}

TEST(GradCheckTest, EmbeddingPaddingIdxGetsNoGrad) {
  Tensor table = Tensor::Ones({3, 2});
  table.set_requires_grad(true);
  Tensor y = EmbeddingLookup(table, {0, 1}, {2}, /*padding_idx=*/0);
  y.Sum().Backward();
  EXPECT_EQ(table.grad()[0], 0.0f);  // row 0 suppressed
  EXPECT_EQ(table.grad()[1], 0.0f);
  EXPECT_EQ(table.grad()[2], 1.0f);  // row 1 receives grad
}

TEST(GradCheckTest, GatherTimeStep) {
  Rng rng(59);
  Tensor x = Tensor::Rand({2, 3, 2}, rng, -1.0f, 1.0f);
  std::vector<int32_t> pos = {2, 1};
  CheckGradients(
      [pos](std::vector<Tensor>& v) {
        return GatherTimeStep(v[0], pos).Square().Sum();
      },
      {x});
}

TEST(GradCheckTest, LayerNorm) {
  Rng rng(60);
  Tensor x = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  Tensor gamma = Tensor::Rand({4}, rng, 0.5f, 1.5f);
  Tensor beta = Tensor::Rand({4}, rng, -0.5f, 0.5f);
  Tensor w = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  CheckGradients(
      [w](std::vector<Tensor>& v) {
        return (LayerNormLastDim(v[0], v[1], v[2]) * w).Sum();
      },
      {x, gamma, beta}, /*eps=*/1e-3f, /*atol=*/5e-2f, /*rtol=*/5e-2f);
}

TEST(GradCheckTest, CrossEntropy) {
  Rng rng(61);
  Tensor logits = Tensor::Rand({4, 5}, rng, -1.0f, 1.0f);
  std::vector<int32_t> targets = {0, 3, -1, 2};
  CheckGradients(
      [targets](std::vector<Tensor>& v) {
        return CrossEntropyLogits(v[0], targets, -1);
      },
      {logits});
}

TEST(GradCheckTest, HorizontalConv) {
  Rng rng(62);
  Tensor x = Tensor::Rand({2, 4, 3}, rng, -1.0f, 1.0f);
  Tensor w = Tensor::Rand({2, 2, 3}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({2}, rng, -0.5f, 0.5f);
  CheckGradients(
      [](std::vector<Tensor>& v) {
        return HorizontalConv(v[0], v[1], v[2]).Square().Sum();
      },
      {x, w, b});
}

// Property sweep: gradcheck a composite expression over several shapes.
class CompositeGradSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompositeGradSweep, MatMulSoftmaxChain) {
  auto [m, k] = GetParam();
  Rng rng(100 + m * 10 + k);
  Tensor a = Tensor::Rand({m, k}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({k, m}, rng, -1.0f, 1.0f);
  testing::CheckGradients(
      [](std::vector<Tensor>& v) {
        return v[0].MatMul(v[1]).SoftmaxLastDim().Square().Sum();
      },
      {a, b});
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompositeGradSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3, 5)));

}  // namespace
}  // namespace msgcl
