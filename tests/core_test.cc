// Tests for the Meta-SGCL core: the Seq2Seq generator, the double-ELBO loss,
// parameter-group split for the meta-optimized two-step strategy, ablation
// variants, and end-to-end learning checks.
#include <cmath>
#include <set>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "gtest/gtest.h"
#include "models/pop.h"

namespace msgcl {
namespace core {
namespace {

data::SequenceDataset TinySplit(uint64_t seed = 7) {
  auto log = data::GenerateSynthetic(data::TinyDataset(seed)).value();
  return data::LeaveOneOutSplit(log);
}

models::TrainConfig QuickTrain(int64_t epochs = 3) {
  models::TrainConfig t;
  t.epochs = epochs;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  t.seed = 99;
  return t;
}

MetaSgclConfig TinyConfig(const data::SequenceDataset& ds) {
  MetaSgclConfig c;
  c.backbone.num_items = ds.num_items;
  c.backbone.max_len = 12;
  c.backbone.dim = 16;
  c.backbone.heads = 2;
  c.backbone.layers = 1;
  c.backbone.dropout = 0.1f;
  c.kl_anneal_steps = 10;
  return c;
}

// ---------- Seq2SeqGenerator ----------

TEST(Seq2SeqGeneratorTest, ForwardShapes) {
  auto ds = TinySplit();
  Rng rng(1);
  Seq2SeqGenerator gen(TinyConfig(ds).backbone, rng);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1, 2}, 12);
  Rng fwd(2);
  Seq2SeqOutput out = gen.Forward(batch, fwd, /*sample=*/true, /*second_view=*/true);
  const Shape expect = {3, 12, 16};
  EXPECT_EQ(out.mu.shape(), expect);
  EXPECT_EQ(out.logvar.shape(), expect);
  EXPECT_EQ(out.logvar_prime.shape(), expect);
  EXPECT_EQ(out.z.shape(), expect);
  EXPECT_EQ(out.z_prime.shape(), expect);
  EXPECT_EQ(out.h_dec.shape(), expect);
  EXPECT_EQ(out.h_dec_prime.shape(), expect);
  EXPECT_TRUE(out.has_second_view());
}

TEST(Seq2SeqGeneratorTest, SingleViewSkipsMetaHead) {
  auto ds = TinySplit();
  Rng rng(3);
  Seq2SeqGenerator gen(TinyConfig(ds).backbone, rng);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1}, 12);
  Rng fwd(4);
  Seq2SeqOutput out = gen.Forward(batch, fwd, true, /*second_view=*/false);
  EXPECT_FALSE(out.has_second_view());
  EXPECT_FALSE(out.z_prime.defined());
}

TEST(Seq2SeqGeneratorTest, NoSampleMakesZEqualMu) {
  auto ds = TinySplit();
  Rng rng(5);
  Seq2SeqGenerator gen(TinyConfig(ds).backbone, rng);
  gen.SetTraining(false);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1}, 12);
  Rng fwd(6);
  Seq2SeqOutput out = gen.Forward(batch, fwd, /*sample=*/false, /*second_view=*/true);
  for (int64_t i = 0; i < out.mu.numel(); ++i) {
    ASSERT_EQ(out.z.at(i), out.mu.at(i));
    ASSERT_EQ(out.z_prime.at(i), out.mu.at(i));
  }
}

TEST(Seq2SeqGeneratorTest, TwoViewsDifferWhenSampling) {
  auto ds = TinySplit();
  Rng rng(7);
  Seq2SeqGenerator gen(TinyConfig(ds).backbone, rng);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1}, 12);
  Rng fwd(8);
  Seq2SeqOutput out = gen.Forward(batch, fwd, /*sample=*/true, /*second_view=*/true);
  float diff = 0.0f;
  for (int64_t i = 0; i < out.z.numel(); ++i) diff += std::fabs(out.z.at(i) - out.z_prime.at(i));
  EXPECT_GT(diff, 1e-3f) << "generated views are identical";
}

TEST(Seq2SeqGeneratorTest, ParameterGroupsPartitionAllParameters) {
  auto ds = TinySplit();
  Rng rng(9);
  Seq2SeqGenerator gen(TinyConfig(ds).backbone, rng);
  auto all = gen.Parameters();
  auto main = gen.MainParameters();
  auto meta = gen.MetaParameters();
  EXPECT_EQ(all.size(), main.size() + meta.size());
  std::set<const void*> main_set, meta_set;
  for (auto& p : main) main_set.insert(p.impl_ptr().get());
  for (auto& p : meta) meta_set.insert(p.impl_ptr().get());
  for (const void* ptr : meta_set) {
    EXPECT_EQ(main_set.count(ptr), 0u) << "parameter groups overlap";
  }
  std::set<const void*> union_set = main_set;
  union_set.insert(meta_set.begin(), meta_set.end());
  for (auto& p : all) EXPECT_EQ(union_set.count(p.impl_ptr().get()), 1u);
  EXPECT_EQ(meta.size(), 2u);  // Enc_sigma' weight + bias
}

// ---------- MetaSgcl losses and training ----------

TEST(MetaSgclTest, FullLossFiniteAndPositive) {
  auto ds = TinySplit();
  MetaSgcl model(TinyConfig(ds), QuickTrain(1), Rng(10));
  model.SetTraining(true);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1, 2, 3}, 12);
  Rng rng(11);
  Tensor loss = model.FullLoss(batch, rng, /*beta_weight=*/0.2f);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(MetaSgclTest, AblationNamesAndModes) {
  auto ds = TinySplit();
  MetaSgclConfig c = TinyConfig(ds);
  EXPECT_EQ(MetaSgcl(c, QuickTrain(), Rng(1)).name(), "Meta-SGCL");
  c.mode = TrainingMode::kJoint;
  EXPECT_EQ(MetaSgcl(c, QuickTrain(), Rng(1)).name(), "Meta-SGCL(joint)");
  c.mode = TrainingMode::kMetaTwoStep;
  c.use_cl = false;
  EXPECT_EQ(MetaSgcl(c, QuickTrain(), Rng(1)).name(), "Meta-SGCL(-cl)");
  c.use_cl = true;
  c.use_kl = false;
  EXPECT_EQ(MetaSgcl(c, QuickTrain(), Rng(1)).name(), "Meta-SGCL(-kl)");
  c.use_cl = false;
  EXPECT_EQ(MetaSgcl(c, QuickTrain(), Rng(1)).name(), "Meta-SGCL(-clkl)");
}

TEST(MetaSgclTest, ConfigValidation) {
  auto ds = TinySplit();
  MetaSgclConfig c = TinyConfig(ds);
  c.tau = 0.0f;
  EXPECT_FALSE(c.Validate().ok());
  c = TinyConfig(ds);
  c.alpha = -1.0f;
  EXPECT_FALSE(c.Validate().ok());
  c = TinyConfig(ds);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(MetaSgclTest, FullLossMatchesManualDoubleElboAssembly) {
  // Regression-wires Eq. 27/28: FullLoss must equal
  //   CE(view1) + CE(view2) + beta*(KL1 + KL2) + alpha*InfoNCE(z, z')
  // recomputed by hand from an identical forward pass (same RNG stream).
  auto ds = TinySplit();
  MetaSgclConfig cfg = TinyConfig(ds);
  cfg.backbone.dropout = 0.0f;  // forward consumes rng only for sampling
  cfg.alpha = 0.07f;
  MetaSgcl model(cfg, QuickTrain(1), Rng(20));
  model.SetTraining(true);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1, 2, 3}, 12);

  const float beta_w = 0.13f;
  Rng r1(77);
  const float loss = model.FullLoss(batch, r1, beta_w).item();

  Rng r2(77);
  Seq2SeqOutput out = model.generator().Forward(batch, r2, /*sample=*/true,
                                                /*second_view=*/true);
  const int64_t D = 16, M = batch.batch_size * batch.seq_len;
  std::vector<uint8_t> valid(batch.key_padding.size());
  for (size_t i = 0; i < valid.size(); ++i) valid[i] = batch.key_padding[i] ? 0 : 1;
  float manual =
      CrossEntropyLogits(model.generator().LogitsAll(out.h_dec.Reshape({M, D})),
                         batch.targets, 0)
          .item();
  manual += CrossEntropyLogits(
                model.generator().LogitsAll(out.h_dec_prime.Reshape({M, D})),
                batch.targets, 0)
                .item();
  manual += beta_w * nn::GaussianKl(out.mu, out.logvar, &valid).item();
  manual += beta_w * nn::GaussianKl(out.mu, out.logvar_prime, &valid).item();
  manual += cfg.alpha * model.ContrastiveLoss(out, batch).item();
  EXPECT_NEAR(loss, manual, 1e-4f);
}

TEST(MetaSgclTest, StageTwoOnlyMovesMetaHead) {
  // Reproduce one two-step update manually and assert the freeze semantics:
  // a contrastive-only step through opt_meta must leave main params intact.
  auto ds = TinySplit();
  Rng rng(12);
  Seq2SeqGenerator gen(TinyConfig(ds).backbone, rng);
  gen.SetTraining(true);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1, 2, 3, 4, 5, 6, 7}, 12);

  auto snapshot = [&](const std::vector<Tensor>& ps) {
    std::vector<std::vector<float>> out;
    for (auto& p : ps) out.push_back(p.ToVector());
    return out;
  };
  auto main_before = snapshot(gen.MainParameters());
  auto meta_before = snapshot(gen.MetaParameters());

  nn::Adam opt_meta(gen.MetaParameters(), 1e-2f);
  Rng fwd(13);
  Seq2SeqOutput out = gen.Forward(batch, fwd, true, true);
  Tensor z = out.z.Narrow(1, 11, 1).Reshape({8, 16});
  Tensor zp = out.z_prime.Narrow(1, 11, 1).Reshape({8, 16});
  nn::InfoNce(z, zp, 1.0f).Backward();
  opt_meta.Step();

  auto main_after = snapshot(gen.MainParameters());
  auto meta_after = snapshot(gen.MetaParameters());
  EXPECT_EQ(main_before, main_after) << "stage 2 leaked into main parameters";
  EXPECT_NE(meta_before, meta_after) << "stage 2 did not update the meta head";
}

TEST(MetaSgclTest, MetaTwoStepTrainingRuns) {
  auto ds = TinySplit();
  MetaSgcl model(TinyConfig(ds), QuickTrain(2), Rng(14));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1}, 12);
  auto scores = model.ScoreAll(b);
  ASSERT_EQ(scores.size(), 2u * (ds.num_items + 1));
  for (float s : scores) ASSERT_TRUE(std::isfinite(s));
}

TEST(MetaSgclTest, JointTrainingRuns) {
  auto ds = TinySplit();
  MetaSgclConfig c = TinyConfig(ds);
  c.mode = TrainingMode::kJoint;
  MetaSgcl model(c, QuickTrain(2), Rng(15));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  for (float s : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(s));
}

TEST(MetaSgclTest, AblationVariantsTrain) {
  auto ds = TinySplit();
  for (bool use_cl : {false, true}) {
    for (bool use_kl : {false, true}) {
      MetaSgclConfig c = TinyConfig(ds);
      c.use_cl = use_cl;
      c.use_kl = use_kl;
      MetaSgcl model(c, QuickTrain(1), Rng(16));
      model.Fit(ds);
      data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
      for (float s : model.ScoreAll(b)) {
        ASSERT_TRUE(std::isfinite(s)) << "cl=" << use_cl << " kl=" << use_kl;
      }
    }
  }
}

TEST(MetaSgclTest, EvalScoringDeterministic) {
  auto ds = TinySplit();
  MetaSgcl model(TinyConfig(ds), QuickTrain(1), Rng(17));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1, 2}, 12);
  EXPECT_EQ(model.ScoreAll(b), model.ScoreAll(b));
}

TEST(MetaSgclIntegrationTest, BeatsPopOnSequentialData) {
  auto ds = TinySplit(123);
  eval::EvalConfig ecfg;
  ecfg.max_len = 12;

  models::Pop pop;
  pop.Fit(ds);
  eval::Metrics mp = eval::Evaluate(pop, ds, eval::Split::kTest, ecfg);

  MetaSgcl model(TinyConfig(ds), QuickTrain(40), Rng(18));
  model.Fit(ds);
  eval::Metrics mm = eval::Evaluate(model, ds, eval::Split::kTest, ecfg);

  EXPECT_GT(mm.hr10, mp.hr10 + 0.05)
      << "Pop " << mp.ToString() << " vs Meta-SGCL " << mm.ToString();
}

}  // namespace
}  // namespace core
}  // namespace msgcl
