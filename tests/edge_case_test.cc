// Contract/edge-case tests: misuse of the tensor API must fail loudly
// (MSGCL_CHECK aborts), and boundary inputs must behave sensibly.
#include "data/data.h"
#include "gtest/gtest.h"
#include "models/model.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace {

// ---------- Tensor misuse aborts ----------

TEST(TensorDeathTest, MatMulInnerDimMismatch) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor b = Tensor::Ones({4, 2});
  EXPECT_DEATH(a.MatMul(b), "matmul inner dims");
}

TEST(TensorDeathTest, MatMulBatchDimMismatch) {
  Tensor a = Tensor::Ones({2, 3, 4});
  Tensor b = Tensor::Ones({3, 4, 5});
  EXPECT_DEATH(a.MatMul(b), "batch dims");
}

TEST(TensorDeathTest, BroadcastIncompatible) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor b = Tensor::Ones({2, 4});
  EXPECT_DEATH(a.Add(b), "broadcast");
}

TEST(TensorDeathTest, ReshapeWrongCount) {
  Tensor a = Tensor::Ones({2, 3});
  EXPECT_DEATH(a.Reshape({7}), "reshape");
}

TEST(TensorDeathTest, NarrowOutOfRange) {
  Tensor a = Tensor::Ones({2, 3});
  EXPECT_DEATH(a.Narrow(1, 2, 2), "out of range");
}

TEST(TensorDeathTest, ItemOnNonScalar) {
  Tensor a = Tensor::Ones({3});
  EXPECT_DEATH(a.item(), "item");
}

TEST(TensorDeathTest, BackwardOnNonScalarWithoutGradOutput) {
  Tensor a = Tensor::Ones({3}, true);
  EXPECT_DEATH(a.Backward(), "scalar");
}

TEST(TensorDeathTest, EmbeddingIndexOutOfRange) {
  Tensor table = Tensor::Ones({3, 2});
  EXPECT_DEATH(EmbeddingLookup(table, {5}, {1}), "embedding index");
}

TEST(TensorDeathTest, CrossEntropyTargetOutOfRange) {
  Tensor logits = Tensor::Ones({1, 3});
  EXPECT_DEATH(CrossEntropyLogits(logits, {7}), "target");
}

TEST(TensorDeathTest, OperationsOnNullTensor) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_DEATH(t.numel(), "null Tensor");
}

TEST(TensorDeathTest, FlatIndexOutOfRange) {
  Tensor t = Tensor::Ones({2});
  EXPECT_DEATH(t.at(5), "out of range");
}

// ---------- Boundary-size tensors ----------

TEST(TensorEdgeTest, SingleElementEverywhere) {
  Tensor a = Tensor::Full({1, 1, 1}, 2.0f);
  EXPECT_EQ(a.MatMul(Tensor::Full({1, 1, 1}, 3.0f)).item(), 6.0f);
  EXPECT_EQ(a.SoftmaxLastDim().item(), 1.0f);
  EXPECT_EQ(a.SumLastDim().numel(), 1);
}

TEST(TensorEdgeTest, ZeroSizedDimension) {
  Tensor a = Tensor::Zeros({0, 4});
  EXPECT_EQ(a.numel(), 0);
  EXPECT_EQ(a.Sum().item(), 0.0f);
}

TEST(TensorEdgeTest, SoftmaxSingleColumnIsOne) {
  Tensor a = Tensor::FromVector({3, 1}, {-5.0f, 0.0f, 5.0f});
  Tensor y = a.SoftmaxLastDim();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(y.at(i), 1.0f);
}

TEST(TensorEdgeTest, ConcatSingleTensorIsCopy) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor c = Tensor::Concat({a}, 0);
  EXPECT_EQ(c.data(), a.data());
}

// ---------- Data-layer edges ----------

TEST(DataEdgeTest, MakeTrainBatchEmptyRows) {
  data::SequenceDataset ds;
  ds.num_items = 5;
  data::Batch b = data::MakeTrainBatch(ds, {}, 4);
  EXPECT_EQ(b.batch_size, 0);
  EXPECT_TRUE(b.inputs.empty());
}

TEST(DataEdgeTest, EpochIteratorSingleRow) {
  Rng rng(1);
  data::EpochIterator it(1, 8, rng);
  auto rows = it.Next();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0);
  EXPECT_TRUE(it.Next().empty());
}

TEST(DataEdgeTest, AugmentCropOnSingletonIsIdentity) {
  Rng rng(2);
  std::vector<int32_t> seq = {7};
  EXPECT_EQ(data::AugmentCrop(seq, 0.5, rng), seq);
}

TEST(DataEdgeTest, AugmentReorderTinyWindowIsIdentity) {
  Rng rng(3);
  std::vector<int32_t> seq = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  // ratio small enough that the window is < 2 elements.
  EXPECT_EQ(data::AugmentReorder(seq, 0.05, rng), seq);
}

TEST(DataEdgeTest, SplitDropsAllShortUsers) {
  data::InteractionLog log;
  log.num_items = 5;
  log.sequences = {{1}, {2, 3}};
  auto ds = data::LeaveOneOutSplit(log);
  EXPECT_EQ(ds.num_users(), 0);
}

TEST(DataEdgeTest, NoiseOnEmptyTrainSeqIsNoop) {
  data::SequenceDataset ds;
  ds.num_items = 5;
  ds.train_seqs = {{}};
  ds.valid_targets = {1};
  ds.test_targets = {2};
  Rng rng(4);
  auto out = data::InjectTrainingNoise(ds, 0.5, rng);
  EXPECT_TRUE(out.train_seqs[0].empty());
}

// ---------- Config validation ----------

TEST(ConfigEdgeTest, TrainConfigRejectsNonPositive) {
  models::TrainConfig t;
  t.epochs = 0;
  EXPECT_FALSE(t.Validate().ok());
  t = models::TrainConfig();
  t.batch_size = -1;
  EXPECT_FALSE(t.Validate().ok());
  t = models::TrainConfig();
  t.lr = 0.0f;
  EXPECT_FALSE(t.Validate().ok());
  EXPECT_TRUE(models::TrainConfig().Validate().ok());
}

TEST(ConfigEdgeTest, SyntheticHostileValues) {
  data::SyntheticConfig c;
  c.num_users = 0;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
  c = data::SyntheticConfig();
  c.num_clusters = c.num_items + 1;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
}

}  // namespace
}  // namespace msgcl
