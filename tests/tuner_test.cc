// Tests for the Meta-SGCL grid-search tuner.
#include "core/core.h"
#include "data/data.h"
#include "gtest/gtest.h"

namespace msgcl {
namespace core {
namespace {

data::SequenceDataset TinySplit() {
  auto log = data::GenerateSynthetic(data::TinyDataset(7)).value();
  return data::LeaveOneOutSplit(log);
}

MetaSgclConfig BaseConfig(const data::SequenceDataset& ds) {
  MetaSgclConfig c;
  c.backbone.num_items = ds.num_items;
  c.backbone.max_len = 12;
  c.backbone.dim = 16;
  c.backbone.layers = 1;
  c.use_decoder = false;
  return c;
}

models::TrainConfig QuickTrain() {
  models::TrainConfig t;
  t.epochs = 2;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  return t;
}

TEST(TunerTest, ExploresFullGridSortedByValidation) {
  auto ds = TinySplit();
  TuneGrid grid;
  grid.alphas = {0.03f, 0.1f};
  grid.betas = {0.2f, 0.4f};
  auto results = GridSearch(BaseConfig(ds), QuickTrain(), ds, grid, /*seed=*/5);
  ASSERT_EQ(results.size(), 4u);  // 2 alphas x 2 betas x 1 tau
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].val_ndcg10, results[i].val_ndcg10);
  }
}

TEST(TunerTest, EmptyAxesUseBaseValues) {
  auto ds = TinySplit();
  MetaSgclConfig base = BaseConfig(ds);
  base.alpha = 0.07f;
  auto results = GridSearch(base, QuickTrain(), ds, TuneGrid{}, 5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FLOAT_EQ(results[0].config.alpha, 0.07f);
}

TEST(TunerTest, DeterministicAcrossRuns) {
  auto ds = TinySplit();
  TuneGrid grid;
  grid.taus = {0.5f, 1.0f};
  auto a = GridSearch(BaseConfig(ds), QuickTrain(), ds, grid, 5);
  auto b = GridSearch(BaseConfig(ds), QuickTrain(), ds, grid, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].val_ndcg10, b[i].val_ndcg10);
    EXPECT_EQ(a[i].config.tau, b[i].config.tau);
  }
}

}  // namespace
}  // namespace core
}  // namespace msgcl
