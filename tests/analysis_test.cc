// Tests for the evaluation analysis utilities: sampled-negative evaluation,
// paired bootstrap significance testing, and popularity-stratified metrics.
#include <numeric>

#include "eval/analysis.h"
#include "gtest/gtest.h"

namespace msgcl {
namespace eval {
namespace {

/// Always ranks `best` first; background scores fall with item id.
class FixedBestRanker : public Ranker {
 public:
  FixedBestRanker(int32_t num_items, int32_t best) : num_items_(num_items), best_(best) {}
  std::string name() const override { return "fixed-best"; }
  std::vector<float> ScoreAll(const data::Batch& batch) override {
    std::vector<float> out(batch.batch_size * (num_items_ + 1));
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      for (int32_t i = 1; i <= num_items_; ++i) {
        out[b * (num_items_ + 1) + i] = -0.001f * i;
      }
      out[b * (num_items_ + 1) + best_] = 1.0f;
    }
    return out;
  }

 private:
  int32_t num_items_;
  int32_t best_;
};

data::SequenceDataset SmallDs() {
  data::SequenceDataset ds;
  ds.num_items = 50;
  for (int u = 0; u < 20; ++u) {
    ds.train_seqs.push_back({1, 2, 3});
    ds.valid_targets.push_back(4);
    ds.test_targets.push_back(u < 10 ? 5 : 40);  // half head-ish, half tail
  }
  return ds;
}

// ---------- Sampled-negative evaluation ----------

TEST(SampledEvalTest, PerfectModelStillPerfect) {
  auto ds = SmallDs();
  FixedBestRanker model(ds.num_items, 5);
  // For the 10 users whose target is 5, the model is perfect.
  data::SequenceDataset subset = ds;
  subset.train_seqs.resize(10);
  subset.valid_targets.resize(10);
  subset.test_targets.resize(10);
  Rng rng(1);
  EvalConfig cfg;
  cfg.max_len = 6;
  Metrics m = EvaluateSampled(model, subset, Split::kTest, 100, rng, cfg);
  EXPECT_EQ(m.hr10, 1.0);
  EXPECT_EQ(m.ndcg10, 1.0);
}

TEST(SampledEvalTest, SampledAtLeastAsGenerousAsFull) {
  // Ranking against a sample of negatives can only improve (or keep) the
  // rank vs ranking against all items.
  auto ds = SmallDs();
  FixedBestRanker model(ds.num_items, 7);  // never the target
  Rng rng(2);
  EvalConfig cfg;
  cfg.max_len = 6;
  Metrics full = Evaluate(model, ds, Split::kTest, cfg);
  Metrics sampled = EvaluateSampled(model, ds, Split::kTest, 20, rng, cfg);
  EXPECT_GE(sampled.hr10 + 1e-9, full.hr10);
  EXPECT_GE(sampled.ndcg10 + 1e-9, full.ndcg10);
}

TEST(SampledEvalTest, DeterministicGivenRngSeed) {
  auto ds = SmallDs();
  FixedBestRanker model(ds.num_items, 7);
  EvalConfig cfg;
  cfg.max_len = 6;
  Rng r1(3), r2(3);
  Metrics a = EvaluateSampled(model, ds, Split::kTest, 30, r1, cfg);
  Metrics b = EvaluateSampled(model, ds, Split::kTest, 30, r2, cfg);
  EXPECT_EQ(a.hr10, b.hr10);
  EXPECT_EQ(a.ndcg10, b.ndcg10);
}

// ---------- Per-user NDCG + paired bootstrap ----------

TEST(BootstrapTest, PerUserNdcgMatchesEvaluatorMean) {
  auto ds = SmallDs();
  FixedBestRanker model(ds.num_items, 5);
  EvalConfig cfg;
  cfg.max_len = 6;
  auto per_user = PerUserNdcg10(model, ds, Split::kTest, cfg);
  ASSERT_EQ(per_user.size(), 20u);
  const double mean =
      std::accumulate(per_user.begin(), per_user.end(), 0.0) / per_user.size();
  Metrics m = Evaluate(model, ds, Split::kTest, cfg);
  EXPECT_NEAR(mean, m.ndcg10, 1e-9);
}

TEST(BootstrapTest, LargeGapIsSignificant) {
  std::vector<double> a(100, 0.9), b(100, 0.1);
  Rng rng(4);
  auto r = PairedBootstrap(a, b, rng, 500);
  EXPECT_NEAR(r.mean_a, 0.9, 1e-9);
  EXPECT_NEAR(r.mean_b, 0.1, 1e-9);
  EXPECT_EQ(r.p_value, 0.0);
}

TEST(BootstrapTest, IdenticalModelsNotSignificant) {
  std::vector<double> a(50), b(50);
  Rng noise(5);
  for (int i = 0; i < 50; ++i) a[i] = b[i] = noise.Uniform();
  Rng rng(6);
  auto r = PairedBootstrap(a, b, rng, 500);
  EXPECT_GT(r.p_value, 0.5);  // ties count as flips
}

TEST(BootstrapTest, NoisyOverlapIsInsignificant) {
  // Two models whose per-user scores are the same distribution.
  Rng gen(7);
  std::vector<double> a(60), b(60);
  for (int i = 0; i < 60; ++i) {
    a[i] = gen.Uniform();
    b[i] = gen.Uniform();
  }
  Rng rng(8);
  auto r = PairedBootstrap(a, b, rng, 1000);
  EXPECT_GT(r.p_value, 0.01);
}

// ---------- Popularity strata ----------

TEST(PopularityStrataTest, BucketsCoverAllUsers) {
  auto ds = SmallDs();
  FixedBestRanker model(ds.num_items, 5);
  EvalConfig cfg;
  cfg.max_len = 6;
  auto strata = PopularityStratifiedHr10(model, ds, Split::kTest, cfg);
  EXPECT_EQ(strata.head_n + strata.mid_n + strata.tail_n, 20);
}

TEST(PopularityStrataTest, HeadTargetModelWinsOnItsBucket) {
  // Targets: item 5 for half the users. Make 5 popular in training so it
  // lands in the head bucket; the model always ranks 5 first.
  data::SequenceDataset ds;
  ds.num_items = 30;
  for (int u = 0; u < 12; ++u) {
    ds.train_seqs.push_back({5, 5, 5, 2});
    ds.valid_targets.push_back(2);
    ds.test_targets.push_back(u % 2 == 0 ? 5 : 25);
  }
  FixedBestRanker model(ds.num_items, 5);
  EvalConfig cfg;
  cfg.max_len = 6;
  auto strata = PopularityStratifiedHr10(model, ds, Split::kTest, cfg);
  EXPECT_EQ(strata.head_hr10, 1.0);   // item 5 targets all hit
  EXPECT_LT(strata.tail_hr10, 1.0);   // item 25 targets mostly missed
}

}  // namespace
}  // namespace eval
}  // namespace msgcl
