// Tests for the CSV interaction-log loader and the paper's preprocessing
// (rating binarisation, iterated k-core, chronological ordering).
#include <sstream>

#include "data/loader.h"
#include "gtest/gtest.h"

namespace msgcl {
namespace data {
namespace {

CsvOptions NoFilter() {
  CsvOptions opt;
  opt.k_core = 1;
  opt.min_rating = 0.0;
  return opt;
}

TEST(CsvParseTest, SplitsFields) {
  auto f = SplitCsvLine("a,b,4.0,100", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[3], "100");
}

TEST(CsvParseTest, ParsesEvents) {
  std::istringstream in("u1,i1,5.0,100\nu2,i2,3.0,50\n");
  auto result = ParseCsvEvents(in, CsvOptions{});
  ASSERT_TRUE(result.ok());
  const auto& events = result.value();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].user, "u1");
  EXPECT_EQ(events[1].rating, 3.0);
  EXPECT_EQ(events[1].timestamp, 50);
}

TEST(CsvParseTest, SkipsHeader) {
  std::istringstream in("user,item,rating,ts\nu1,i1,5.0,1\n");
  CsvOptions opt;
  opt.has_header = true;
  auto result = ParseCsvEvents(in, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

TEST(CsvParseTest, RejectsShortRows) {
  std::istringstream in("u1,i1\n");
  auto result = ParseCsvEvents(in, CsvOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(CsvParseTest, RejectsNonNumericRating) {
  std::istringstream in("u1,i1,great,100\n");
  auto result = ParseCsvEvents(in, CsvOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(CsvParseTest, TrailingDelimiterKeepsEmptyField) {
  // "u,i,4," is four fields, the last one empty; the istream-based splitter
  // used to drop it and misreport the row as three fields.
  auto f = SplitCsvLine("u,i,4,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[3], "");
  EXPECT_EQ(SplitCsvLine(",,", ',').size(), 3u);
  EXPECT_EQ(SplitCsvLine("a", ',').size(), 1u);
}

TEST(CsvParseTest, RejectsPartiallyNumericFields) {
  // std::stod("3abc") happily returns 3; the strict parser must reject any
  // row whose numeric field is not fully consumed.
  {
    std::istringstream in("u1,i1,3abc,100\n");
    auto result = ParseCsvEvents(in, CsvOptions{});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  }
  {
    std::istringstream in("u1,i1,4.5,100xyz\n");
    auto result = ParseCsvEvents(in, CsvOptions{});
    ASSERT_FALSE(result.ok());
  }
  {
    std::istringstream in("u1,i1,4.5,1e3\n");  // float syntax in an int field
    auto result = ParseCsvEvents(in, CsvOptions{});
    EXPECT_FALSE(result.ok());
  }
}

TEST(CsvParseTest, RejectsEmptyNumericFields) {
  {
    std::istringstream in("u1,i1,,100\n");
    auto result = ParseCsvEvents(in, CsvOptions{});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  }
  {
    // Trailing delimiter: empty timestamp. Previously the dropped field made
    // this a "too few fields" error by luck; now it is a proper parse error
    // on the empty field itself.
    std::istringstream in("u1,i1,4.5,\n");
    auto result = ParseCsvEvents(in, CsvOptions{});
    EXPECT_FALSE(result.ok());
  }
}

TEST(CsvParseTest, StrictParsersAcceptNormalNumbers) {
  double d = 0.0;
  int64_t i = 0;
  EXPECT_TRUE(ParseFullDouble("4.5", &d));
  EXPECT_EQ(d, 4.5);
  EXPECT_TRUE(ParseFullDouble("-3e2", &d));
  EXPECT_TRUE(ParseFullInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseFullDouble("", &d));
  EXPECT_FALSE(ParseFullInt64("12 ", &i));
}

TEST(CsvParseTest, NoRatingColumn) {
  std::istringstream in("u1\ti1\n");
  CsvOptions opt;
  opt.delimiter = '\t';
  opt.rating_col = -1;
  opt.timestamp_col = -1;
  auto result = ParseCsvEvents(in, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()[0].item, "i1");
}

TEST(BuildLogTest, RatingBinarisationDiscardsLowRatings) {
  // Paper: "discard ratings of less than four".
  std::vector<RawEvent> events = {
      {"u", "a", 5.0, 1}, {"u", "b", 3.9, 2}, {"u", "c", 4.0, 3}};
  CsvOptions opt = NoFilter();
  opt.min_rating = 4.0;
  auto log = BuildLog(events, opt).value();
  EXPECT_EQ(log.num_interactions(), 2);  // b dropped
}

TEST(BuildLogTest, ChronologicalOrderPerUser) {
  std::vector<RawEvent> events = {
      {"u", "late", 0, 300}, {"u", "early", 0, 100}, {"u", "mid", 0, 200}};
  CsvOptions opt = NoFilter();
  opt.rating_col = -1;
  auto log = BuildLog(events, opt).value();
  ASSERT_EQ(log.sequences.size(), 1u);
  // Ids are assigned by sorted item name: early=1, late=2, mid=3; the
  // sequence must be time-ordered: early, mid, late -> 1, 3, 2.
  EXPECT_EQ(log.sequences[0], (std::vector<int32_t>{1, 3, 2}));
}

TEST(BuildLogTest, KCoreIteratesToFixedPoint) {
  // u1 has 3 events but two of its items are rare; after dropping rare
  // items, u1 falls below the 2-core and must be dropped entirely.
  std::vector<RawEvent> events = {
      {"u1", "rare1", 5, 1}, {"u1", "rare2", 5, 2}, {"u1", "popular", 5, 3},
      {"u2", "popular", 5, 1}, {"u2", "popular2", 5, 2},
      {"u3", "popular", 5, 1}, {"u3", "popular2", 5, 2}};
  CsvOptions opt;
  opt.k_core = 2;
  opt.min_rating = 0.0;
  auto log = BuildLog(events, opt).value();
  // u1 survives only if it has >= 2 events on surviving items: it has 1.
  EXPECT_EQ(log.num_users(), 2);
  for (const auto& s : log.sequences) EXPECT_EQ(s.size(), 2u);
}

TEST(BuildLogTest, DenseIdsFrom1) {
  std::vector<RawEvent> events = {{"u", "zzz", 0, 1}, {"u", "aaa", 0, 2}};
  CsvOptions opt = NoFilter();
  opt.rating_col = -1;
  auto log = BuildLog(events, opt).value();
  EXPECT_EQ(log.num_items, 2);
  EXPECT_TRUE(log.Validate().ok());
}

TEST(BuildLogTest, EmptyAfterFilterIsError) {
  std::vector<RawEvent> events = {{"u", "a", 1.0, 1}};
  CsvOptions opt;
  opt.min_rating = 4.0;
  auto result = BuildLog(events, opt);
  EXPECT_FALSE(result.ok());
}

TEST(LoadCsvTest, MissingFileIsNotFound) {
  auto result = LoadCsv("/nonexistent/file.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(LoadCsvTest, RoundTripThroughTempFile) {
  const std::string path = ::testing::TempDir() + "/msgcl_loader_test.csv";
  {
    std::ofstream out(path);
    // 2 users x 3 shared items, ratings >= 4, shuffled timestamps.
    out << "alice,hat,5,3\nalice,shoe,4,1\nalice,bag,5,2\n";
    out << "bob,hat,4,1\nbob,shoe,5,2\nbob,bag,4,3\n";
  }
  CsvOptions opt;
  opt.k_core = 2;
  auto log = LoadCsv(path, opt).value();
  EXPECT_EQ(log.num_users(), 2);
  EXPECT_EQ(log.num_items, 3);
  EXPECT_EQ(log.num_interactions(), 6);
  // alice's order by timestamp: shoe, bag, hat.
  // ids sorted: bag=1, hat=2, shoe=3 -> sequence {3, 1, 2}.
  EXPECT_EQ(log.sequences[0], (std::vector<int32_t>{3, 1, 2}));
}

// ---------- CRLF / UTF-8 BOM hardening ----------

TEST(CsvParseTest, CrlfLineEndingsParseIdenticallyToLf) {
  std::istringstream lf("u1,i1,5.0,100\nu2,i2,3.0,50\n");
  std::istringstream crlf("u1,i1,5.0,100\r\nu2,i2,3.0,50\r\n");
  auto a = ParseCsvEvents(lf, CsvOptions{});
  auto b = ParseCsvEvents(crlf, CsvOptions{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].user, b.value()[i].user);
    EXPECT_EQ(a.value()[i].item, b.value()[i].item);
    EXPECT_EQ(a.value()[i].rating, b.value()[i].rating);
    EXPECT_EQ(a.value()[i].timestamp, b.value()[i].timestamp);
  }
}

TEST(CsvParseTest, CrlfTimestampInLastColumnIsNotMalformed) {
  // Without the '\r' strip, the last field parses as "100\r" and the strict
  // numeric parser rejects the row.
  std::istringstream in("u1,i1,5.0,100\r\n");
  auto result = ParseCsvEvents(in, CsvOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()[0].timestamp, 100);
}

TEST(CsvParseTest, Utf8BomOnHeaderRowIsStripped) {
  std::istringstream in("\xEF\xBB\xBFuser,item,rating,ts\r\nu1,i1,5.0,1\r\n");
  CsvOptions opt;
  opt.has_header = true;
  auto result = ParseCsvEvents(in, opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].user, "u1");
}

TEST(CsvParseTest, Utf8BomOnHeaderlessFirstDataRowIsStripped) {
  // Without the strip, the BOM is glued onto the first user id, silently
  // splitting one user into two.
  std::istringstream in("\xEF\xBB\xBFu1,i1,5.0,1\nu1,i2,5.0,2\n");
  auto result = ParseCsvEvents(in, CsvOptions{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[0].user, "u1");
  EXPECT_EQ(result.value()[0].user, result.value()[1].user);
}

TEST(CsvParseTest, CrlfOnlyLineIsSkippedAsEmpty) {
  std::istringstream in("u1,i1,5.0,1\r\n\r\nu2,i2,5.0,2\r\n");
  auto result = ParseCsvEvents(in, CsvOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(CsvLoadTest, CrlfBomFixtureSurvivesFullPreprocessing) {
  // End-to-end: a Windows-exported fixture (BOM + CRLF) must produce the
  // same log as its clean LF twin.
  const std::string body =
      "user,item,rating,ts\n"
      "u1,a,5.0,1\nu1,b,5.0,2\nu1,c,5.0,3\n"
      "u2,a,5.0,1\nu2,b,5.0,2\nu2,c,5.0,4\n";
  std::string windows = "\xEF\xBB\xBF";
  for (char c : body) {
    if (c == '\n') windows += "\r\n";
    else windows += c;
  }
  CsvOptions opt = NoFilter();
  opt.has_header = true;
  std::istringstream clean_in(body), windows_in(windows);
  auto clean_events = ParseCsvEvents(clean_in, opt);
  auto windows_events = ParseCsvEvents(windows_in, opt);
  ASSERT_TRUE(clean_events.ok());
  ASSERT_TRUE(windows_events.ok()) << windows_events.status().ToString();
  auto clean_log = BuildLog(std::move(clean_events).value(), opt);
  auto windows_log = BuildLog(std::move(windows_events).value(), opt);
  ASSERT_TRUE(clean_log.ok());
  ASSERT_TRUE(windows_log.ok());
  EXPECT_EQ(clean_log.value().num_items, windows_log.value().num_items);
  EXPECT_EQ(clean_log.value().sequences, windows_log.value().sequences);
}

}  // namespace
}  // namespace data
}  // namespace msgcl
