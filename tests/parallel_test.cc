// Tests for the deterministic intra-op parallel runtime (src/parallel/):
// pool edge cases, partition math, and the determinism contract — forward
// values, gradients, and Adam-trained weights must be BITWISE identical for
// every thread count (DESIGN.md "Determinism under parallelism").
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "nn/optim.h"
#include "parallel/parallel.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace {

/// Bitwise equality (memcmp, not float ==): distinguishes -0.0 from 0.0 and
/// would catch NaN payload differences.
::testing::AssertionResult BitwiseEqual(const std::vector<float>& a,
                                        const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  if (a.empty()) return ::testing::AssertionSuccess();
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first bitwise difference at index " << i << ": " << a[i]
               << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Restores the entry thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallel::MaxThreads()) {}
  ~ThreadCountGuard() { parallel::SetNumThreads(saved_); }

 private:
  int saved_;
};

// ---- Pool / partition edge cases -------------------------------------------

TEST(ParallelForTest, EmptyAndReversedRangeNeverCallBody) {
  int calls = 0;
  parallel::For(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  parallel::For(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  parallel::For(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsOneInlineChunk) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(7);
  int calls = 0;
  int64_t seen_b = -1, seen_e = -1;
  parallel::For(2, 6, 100, [&](int64_t b, int64_t e) {
    ++calls;
    seen_b = b;
    seen_e = e;
    EXPECT_FALSE(parallel::InParallelRegion());  // single chunk stays inline
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_b, 2);
  EXPECT_EQ(seen_e, 6);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 7}) {
    parallel::SetNumThreads(threads);
    for (int64_t n : {1, 7, 64, 1000}) {
      for (int64_t grain : {1, 3, 64}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) h = 0;
        parallel::For(0, n, grain, [&](int64_t b, int64_t e) {
          ASSERT_LE(0, b);
          ASSERT_LE(b, e);
          ASSERT_LE(e, n);
          for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
        });
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1) << "index " << i << " n=" << n
                                       << " grain=" << grain
                                       << " threads=" << threads;
        }
      }
    }
  }
}

TEST(ParallelForTest, NestedCallsRunSerialInline) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  parallel::For(0, 8, 1, [&](int64_t b0, int64_t e0) {
    for (int64_t i = b0; i < e0; ++i) {
      // The inner For must not re-enter the pool: it runs as one inline
      // chunk on the calling worker.
      int inner_calls = 0;
      parallel::For(0, 8, 1, [&](int64_t b1, int64_t e1) {
        ++inner_calls;
        EXPECT_EQ(b1, 0);
        EXPECT_EQ(e1, 8);
        for (int64_t j = b1; j < e1; ++j) hits[i * 8 + j].fetch_add(1);
      });
      EXPECT_EQ(inner_calls, 1);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, SetNumThreadsClampsToAtLeastOne) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(0);
  EXPECT_GE(parallel::MaxThreads(), 1);
  parallel::SetNumThreads(-5);
  EXPECT_GE(parallel::MaxThreads(), 1);
  parallel::SetNumThreads(3);
  EXPECT_EQ(parallel::MaxThreads(), 3);
}

TEST(FixedChunksTest, ChunkCountMath) {
  EXPECT_EQ(parallel::NumFixedChunks(0, 10), 0);
  EXPECT_EQ(parallel::NumFixedChunks(1, 10), 1);
  EXPECT_EQ(parallel::NumFixedChunks(10, 10), 1);
  EXPECT_EQ(parallel::NumFixedChunks(11, 10), 2);
  EXPECT_EQ(parallel::NumFixedChunks(100, 10), 10);
  EXPECT_EQ(parallel::NumFixedChunks(5, 0), 5);  // chunk clamps to >= 1
}

TEST(FixedChunksTest, BoundariesIndependentOfThreadCount) {
  ThreadCountGuard guard;
  const int64_t n = 103, chunk = 10;
  std::vector<std::pair<int64_t, int64_t>> ref;
  for (int threads : {1, 2, 7}) {
    parallel::SetNumThreads(threads);
    const int64_t nchunks = parallel::NumFixedChunks(n, chunk);
    std::vector<std::pair<int64_t, int64_t>> bounds(nchunks);
    parallel::ForFixedChunks(0, n, chunk, [&](int64_t c, int64_t b, int64_t e) {
      bounds[c] = {b, e};
    });
    // Chunks tile [0, n) in order.
    int64_t expect_b = 0;
    for (int64_t c = 0; c < nchunks; ++c) {
      EXPECT_EQ(bounds[c].first, expect_b);
      EXPECT_LE(bounds[c].second - bounds[c].first, chunk);
      expect_b = bounds[c].second;
    }
    EXPECT_EQ(expect_b, n);
    if (ref.empty()) {
      ref = bounds;
    } else {
      EXPECT_EQ(bounds, ref) << "chunk boundaries changed with threads=" << threads;
    }
  }
}

// ---- Kernel-level thread invariance ----------------------------------------

/// Large enough to split into several chunks/shards under every kernel.
std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

TEST(ThreadInvarianceTest, SumReductionBitwise) {
  ThreadCountGuard guard;
  // > 2x the fixed reduction chunk so partials genuinely combine.
  auto vals = RandomVec(20000, 42);
  std::vector<float> results;
  for (int threads : {1, 2, 7}) {
    parallel::SetNumThreads(threads);
    NoGradGuard ng;
    Tensor t = Tensor::FromVector({20000}, vals);
    results.push_back(t.Sum().item());
  }
  EXPECT_TRUE(BitwiseEqual({results[0]}, {results[1]}));
  EXPECT_TRUE(BitwiseEqual({results[0]}, {results[2]}));
}

TEST(ThreadInvarianceTest, MatMulForwardBitwise) {
  ThreadCountGuard guard;
  auto av = RandomVec(64 * 48, 1);
  auto bv = RandomVec(48 * 32, 2);
  std::vector<std::vector<float>> outs;
  for (int threads : {1, 2, 7}) {
    parallel::SetNumThreads(threads);
    NoGradGuard ng;
    Tensor a = Tensor::FromVector({64, 48}, av);
    Tensor b = Tensor::FromVector({48, 32}, bv);
    outs.push_back(a.MatMul(b).ToVector());
  }
  EXPECT_TRUE(BitwiseEqual(outs[0], outs[1]));
  EXPECT_TRUE(BitwiseEqual(outs[0], outs[2]));
}

/// Builds a composite graph over random shapes (embedding -> layernorm ->
/// shared-weight matmul -> softmax + cross-entropy) and returns data and
/// gradients of every leaf after one backward pass.
std::vector<std::vector<float>> ForwardBackwardOnce(int threads) {
  parallel::SetNumThreads(threads);
  Rng rng(777);
  Tensor table = Tensor::Randn({50, 16}, rng, 0.5f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn({16, 50}, rng, 0.5f, /*requires_grad=*/true);
  Tensor gamma = Tensor::Ones({16}, /*requires_grad=*/true);
  Tensor beta = Tensor::Zeros({16}, /*requires_grad=*/true);
  std::vector<int32_t> idx;
  std::vector<int32_t> targets;
  for (int i = 0; i < 96; ++i) {
    idx.push_back(static_cast<int32_t>(rng.UniformInt(50)));
    targets.push_back(static_cast<int32_t>(rng.UniformInt(50)));
  }
  Tensor h = EmbeddingLookup(table, idx, {8, 12}, /*padding_idx=*/0);
  h = LayerNormLastDim(h, gamma, beta, 1e-5f);
  Tensor logits = h.Reshape({96, 16}).MatMul(w);  // shared rank-2 rhs
  Tensor aux = logits.SoftmaxLastDim().Square().Sum();
  Tensor loss = CrossEntropyLogits(logits, targets, -1).Add(aux.MulScalar(0.01f));
  loss.Backward();
  auto vec = [](const FloatBuf& b) {
    return std::vector<float>(b.begin(), b.end());
  };
  return {vec(loss.data()),   vec(table.grad()), vec(w.grad()),
          vec(gamma.grad()),  vec(beta.grad()),  vec(h.data())};
}

TEST(ThreadInvarianceTest, ForwardAndBackwardBitwise) {
  ThreadCountGuard guard;
  auto ref = ForwardBackwardOnce(1);
  for (int threads : {2, 7}) {
    auto got = ForwardBackwardOnce(threads);
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(ref[i], got[i])) << "buffer " << i
                                                << " threads=" << threads;
    }
  }
}

/// Trains the composite model for several Adam steps and returns the final
/// weights.
std::vector<std::vector<float>> TrainWeights(int threads, int steps) {
  parallel::SetNumThreads(threads);
  Rng rng(4242);
  Tensor table = Tensor::Randn({40, 16}, rng, 0.5f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn({16, 40}, rng, 0.5f, /*requires_grad=*/true);
  Tensor gamma = Tensor::Ones({16}, /*requires_grad=*/true);
  Tensor beta = Tensor::Zeros({16}, /*requires_grad=*/true);
  nn::Adam adam({table, w, gamma, beta}, /*lr=*/1e-2f);
  for (int s = 0; s < steps; ++s) {
    std::vector<int32_t> idx;
    std::vector<int32_t> targets;
    for (int i = 0; i < 64; ++i) {
      idx.push_back(static_cast<int32_t>(rng.UniformInt(40)));
      targets.push_back(static_cast<int32_t>(rng.UniformInt(40)));
    }
    adam.ZeroGrad();
    Tensor h = EmbeddingLookup(table, idx, {64}, /*padding_idx=*/0);
    h = LayerNormLastDim(h, gamma, beta, 1e-5f);
    Tensor logits = h.MatMul(w);
    Tensor loss = CrossEntropyLogits(logits, targets, -1);
    loss.Backward();
    adam.Step();
  }
  return {table.ToVector(), w.ToVector(), gamma.ToVector(), beta.ToVector()};
}

TEST(ThreadInvarianceTest, AdamTrainedWeightsBitwise) {
  ThreadCountGuard guard;
  auto ref = TrainWeights(1, 5);
  for (int threads : {2, 7}) {
    auto got = TrainWeights(threads, 5);
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(ref[i], got[i])) << "param " << i
                                                << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace msgcl
