// Tests for the observability layer (src/obs/, DESIGN.md §8): registry
// semantics, hand-computed histogram percentiles, exact RAII self-time
// accounting, thread-count-invariant snapshots, golden JSON/trace exports,
// the shared JSON writer, the telemetry CSV, and a FitLoop run whose op
// counters must match analytically derived counts.
//
// Golden files live in tests/golden/; regenerate with
//   MSGCL_REGEN_GOLDEN=1 ./obs_test
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "data/data.h"
#include "gtest/gtest.h"
#include "models/models.h"
#include "obs/obs.h"
#include "parallel/parallel.h"

namespace msgcl {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void ExpectMatchesGolden(const std::string& got, const std::string& filename) {
  const std::string path = std::string(MSGCL_GOLDEN_DIR) + "/" + filename;
  if (std::getenv("MSGCL_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << got;
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream probe(path);
  ASSERT_TRUE(probe.good()) << "missing golden " << path
                            << " (regenerate with MSGCL_REGEN_GOLDEN=1)";
  EXPECT_EQ(got, ReadFile(path));
}

// Burns a little wall time so nested timer spans are strictly ordered even
// at coarse clock resolution.
void Spin() {
  volatile uint64_t acc = 0;
  for (uint64_t i = 0; i < 20000; ++i) acc = acc + i * i;
}

// ---------- JsonWriter / FormatDouble (the one shared JSON emitter) ----------

TEST(JsonWriterTest, NestedStructuresGetCommasRight) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.Key("b");
  w.BeginArray();
  w.Int(2);
  w.String("x");
  w.BeginObject();
  w.Key("c");
  w.Bool(true);
  w.Key("d");
  w.Null();
  w.EndObject();
  w.BeginArray();
  w.EndArray();
  w.EndArray();
  w.Key("e");
  w.Double(0.5);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,"x",{"c":true,"d":null},[]],"e":0.5})");
}

TEST(JsonWriterTest, EscapesKeysAndStringValues) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("quote\"backslash\\");
  w.String("line\nbreak\ttab\x01");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"quote\\\"backslash\\\\\":\"line\\nbreak\\ttab\\u0001\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.Double(1.0);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null,1]");
}

TEST(FormatDoubleTest, ShortestRoundTripAndNoLocaleArtifacts) {
  EXPECT_EQ(obs::FormatDouble(0.5), "0.5");
  EXPECT_EQ(obs::FormatDouble(13.0), "13");
  EXPECT_EQ(obs::FormatDouble(-2.25), "-2.25");
  EXPECT_EQ(obs::FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(obs::FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  // Shortest-round-trip: parsing the text recovers the exact double.
  const double pi = 3.14159265358979323846;
  EXPECT_EQ(std::stod(obs::FormatDouble(pi)), pi);
  // The decimal separator is '.' regardless of environment (to_chars is
  // locale-independent by specification).
  EXPECT_NE(obs::FormatDouble(0.5).find('.'), std::string::npos);
  EXPECT_EQ(obs::FormatDouble(0.5).find(','), std::string::npos);
}

// ---------- Registry ----------

TEST(RegistryTest, MetricReferencesAreStableAndResetInPlace) {
  obs::Registry reg;
  obs::Counter& c1 = reg.GetCounter("x");
  c1.Add(2);
  obs::Counter& c2 = reg.GetCounter("x");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 2);

  obs::Gauge& g = reg.GetGauge("lr");
  g.Set(0.125);
  EXPECT_EQ(reg.GetGauge("lr").value(), 0.125);

  reg.ResetValues();
  EXPECT_EQ(c1.value(), 0);       // zeroed...
  EXPECT_EQ(g.value(), 0.0);
  c1.Add(5);                      // ...but the cached reference still works
  EXPECT_EQ(reg.GetCounter("x").value(), 5);
}

TEST(RegistryTest, SnapshotIsNameSortedAndSkipsIdleOps) {
  obs::Registry reg;
  reg.GetCounter("zeta").Add(1);
  reg.GetCounter("alpha").Add(2);
  reg.GetCounter("mid").Add(3);
  reg.GetOp("idle");  // never called: must not appear
  obs::OpStats& busy = reg.GetOp("busy");
  busy.calls.store(1);

  obs::Snapshot snap = reg.TakeSnapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
  ASSERT_EQ(snap.ops.size(), 1u);
  EXPECT_EQ(snap.ops[0].name, "busy");
}

// ---------- Histogram ----------

TEST(HistogramTest, PercentilesMatchHandComputedValues) {
  obs::Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int v = 1; v <= 10; ++v) h.Record(static_cast<double>(v));
  // Buckets: (<=1)={1}, (<=2)={2}, (<=4)={3,4}, (<=8)={5..8}, overflow={9,10}.
  EXPECT_EQ(h.count(), 10);
  EXPECT_EQ(h.sum(), 55.0);
  EXPECT_EQ(h.max(), 10.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 2);
  EXPECT_EQ(h.bucket_count(3), 4);
  EXPECT_EQ(h.bucket_count(4), 2);
  // Percentile(p) = upper bound of the bucket with the ceil(p/100*n)-th
  // smallest sample; the overflow bucket reports the recorded max.
  EXPECT_EQ(h.Percentile(10), 1.0);   // rank 1  -> bucket <=1
  EXPECT_EQ(h.Percentile(20), 2.0);   // rank 2  -> bucket <=2
  EXPECT_EQ(h.Percentile(40), 4.0);   // rank 4  -> bucket <=4
  EXPECT_EQ(h.Percentile(50), 8.0);   // rank 5  -> bucket <=8
  EXPECT_EQ(h.Percentile(80), 8.0);   // rank 8  -> bucket <=8
  EXPECT_EQ(h.Percentile(90), 10.0);  // rank 9  -> overflow -> max
  EXPECT_EQ(h.Percentile(100), 10.0);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  obs::Histogram h(obs::Histogram::DefaultBounds());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

// ---------- ScopedTimer self-time accounting ----------

TEST(ScopedTimerTest, SelfTimeExcludesDirectChildrenExactly) {
  obs::Registry reg;
  obs::OpStats& outer = reg.GetOp("outer");
  obs::OpStats& middle = reg.GetOp("middle");
  obs::OpStats& inner = reg.GetOp("inner");
  {
    obs::ScopedTimer t_outer(outer, "outer");
    Spin();
    {
      obs::ScopedTimer t_mid(middle, "middle");
      Spin();
      {
        obs::ScopedTimer t_in(inner, "inner");
        Spin();
      }
    }
    {
      obs::ScopedTimer t_in(inner, "inner");
      Spin();
    }
  }
  EXPECT_EQ(outer.calls.load(), 1);
  EXPECT_EQ(middle.calls.load(), 1);
  EXPECT_EQ(inner.calls.load(), 2);
  // Leaf timers have no instrumented children: self == total.
  EXPECT_EQ(inner.self_ns.load(), inner.total_ns.load());
  // middle's only direct child is the first inner span.
  EXPECT_GT(middle.total_ns.load(), middle.self_ns.load());
  // outer's direct children are middle and the second inner span — the
  // grandchild must not be double-subtracted.
  const int64_t second_inner =
      inner.total_ns.load() - (middle.total_ns.load() - middle.self_ns.load());
  EXPECT_EQ(outer.self_ns.load(),
            outer.total_ns.load() - middle.total_ns.load() - second_inner);
}

TEST(ScopedTimerTest, AccumulatesCallsAndBytes) {
  obs::Registry reg;
  obs::OpStats& op = reg.GetOp("bytes_op");
  { obs::ScopedTimer t(op, "bytes_op", 128); }
  { obs::ScopedTimer t(op, "bytes_op", 128); }
  EXPECT_EQ(op.calls.load(), 2);
  EXPECT_EQ(op.bytes.load(), 256);
  EXPECT_GE(op.total_ns.load(), 0);
}

// ---------- Tracing ----------

TEST(TraceTest, EventsAreRecordedNestedSortedAndCleared) {
  obs::Registry& reg = obs::Registry::Global();
  reg.ClearTrace();
  reg.SetTraceEnabled(true);
  {
    obs::ScopedTimer t_outer(reg.GetOp("obs_test.trace.outer"), "obs_test.trace.outer");
    Spin();
    {
      obs::ScopedTimer t_inner(reg.GetOp("obs_test.trace.inner"), "obs_test.trace.inner");
      Spin();
    }
    Spin();
  }
  reg.SetTraceEnabled(false);
  std::vector<obs::TraceEvent> events = reg.TraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "obs_test.trace.outer");  // started first
  EXPECT_EQ(events[1].name, "obs_test.trace.inner");
  EXPECT_GT(events[1].ts_ns, events[0].ts_ns);
  // The inner span is contained in the outer span.
  EXPECT_LE(events[1].ts_ns + events[1].dur_ns, events[0].ts_ns + events[0].dur_ns);
  EXPECT_EQ(events[0].tid, 0);  // recorded on the main thread

  reg.ClearTrace();
  EXPECT_TRUE(reg.TraceEvents().empty());
}

// ---------- Golden exports ----------

// A private registry with hand-set values so the JSON is byte-deterministic.
obs::Snapshot GoldenSnapshot(obs::Registry& reg) {
  reg.GetCounter("batches").Add(7);
  reg.GetCounter("faults").Add(1);
  reg.GetGauge("lr").Set(0.003);
  obs::Histogram& h = reg.GetHistogram("latency_ms", {1.0, 2.0, 4.0});
  h.Record(1.0);
  h.Record(3.0);
  h.Record(9.0);
  obs::OpStats& op = reg.GetOp("matmul");
  op.calls.store(2);
  op.total_ns.store(3000);
  op.self_ns.store(2500);
  op.bytes.store(4096);
  return reg.TakeSnapshot();
}

TEST(ExportTest, MetricsSnapshotJsonMatchesGolden) {
  obs::Registry reg;
  ExpectMatchesGolden(obs::SnapshotToJson(GoldenSnapshot(reg)), "metrics_snapshot.json");
}

TEST(ExportTest, ChromeTraceJsonMatchesGolden) {
  std::vector<obs::TraceEvent> events(2);
  events[0].name = "train.step_fn";
  events[0].ts_ns = 1000;
  events[0].dur_ns = 500;
  events[0].tid = 0;
  events[1].name = "tensor.matmul.fwd";
  events[1].ts_ns = 1250;
  events[1].dur_ns = 250;
  events[1].tid = 1;
  ExpectMatchesGolden(obs::TraceToJson(events), "chrome_trace.json");
}

TEST(ExportTest, WriteMetricsJsonIsAtomicAndParsesBack) {
  obs::Registry reg;
  const std::string path = ::testing::TempDir() + "/obs_metrics.json";
  ASSERT_TRUE(obs::WriteMetricsJson(GoldenSnapshot(reg), path).ok());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());  // tmp file renamed away
  const std::string body = ReadFile(path);
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '\n');
  EXPECT_NE(body.find("\"batches\":7"), std::string::npos);
  std::remove(path.c_str());
}

// ---------- Step scalars and the telemetry CSV ----------

TEST(TelemetryTest, StepScalarMeansDrainOnce) {
  (void)obs::DrainStepScalarMeans();  // discard leftovers from other code
  obs::RecordStepScalar("a", 1.0);
  obs::RecordStepScalar("a", 3.0);
  obs::RecordStepScalar("b", 5.0);
  std::map<std::string, double> means = obs::DrainStepScalarMeans();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means["a"], 2.0);
  EXPECT_DOUBLE_EQ(means["b"], 5.0);
  EXPECT_TRUE(obs::DrainStepScalarMeans().empty());
}

TEST(TelemetryTest, CsvFixesColumnsOnFirstRowAndBlanksNaN) {
  const std::string path = ::testing::TempDir() + "/obs_telemetry.csv";
  obs::TelemetryCsv csv;
  ASSERT_TRUE(csv.Open(path, /*append=*/false).ok());
  ASSERT_TRUE(csv.WriteRow(0, {{"loss", 0.5}, {"hr", 0.25}}).ok());
  ASSERT_TRUE(
      csv.WriteRow(1, {{"loss", 0.25},
                       {"hr", std::numeric_limits<double>::quiet_NaN()}})
          .ok());
  ASSERT_TRUE(csv.WriteRow(2, {{"loss", 0.125}}).ok());  // hr missing -> blank
  csv.Close();
  EXPECT_EQ(ReadFile(path),
            "epoch,hr,loss\n"
            "0,0.25,0.5\n"
            "1,,0.25\n"
            "2,,0.125\n");
  std::remove(path.c_str());
}

TEST(TelemetryTest, CsvAppendAdoptsExistingHeaderAndColumnOrder) {
  const std::string path = ::testing::TempDir() + "/obs_telemetry_append.csv";
  {
    obs::TelemetryCsv csv;
    ASSERT_TRUE(csv.Open(path, /*append=*/false).ok());
    ASSERT_TRUE(csv.WriteRow(0, {{"loss", 0.5}, {"hr", 0.25}}).ok());
  }
  {
    obs::TelemetryCsv csv;
    ASSERT_TRUE(csv.Open(path, /*append=*/true).ok());
    // Extra keys not in the adopted header are dropped; order is preserved.
    ASSERT_TRUE(csv.WriteRow(1, {{"hr", 0.5}, {"loss", 0.1}, {"extra", 9.0}}).ok());
  }
  EXPECT_EQ(ReadFile(path),
            "epoch,hr,loss\n"
            "0,0.25,0.5\n"
            "1,0.5,0.1\n");
  // Append against a missing file starts a fresh one.
  std::remove(path.c_str());
  obs::TelemetryCsv fresh;
  ASSERT_TRUE(fresh.Open(path, /*append=*/true).ok());
  ASSERT_TRUE(fresh.WriteRow(0, {{"loss", 1.0}}).ok());
  fresh.Close();
  EXPECT_EQ(ReadFile(path), "epoch,loss\n0,1\n");
  std::remove(path.c_str());
}

// ---------- Determinism across thread counts ----------

// Thread-count-invariant view of a snapshot: everything except nanosecond
// timing fields.
struct StableView {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::tuple<std::string, int64_t, int64_t>> ops;  // name, calls, bytes

  bool operator==(const StableView& o) const {
    return counters == o.counters && ops == o.ops;
  }
};

StableView WorkloadSnapshot(int threads) {
  parallel::SetNumThreads(threads);
  obs::Registry::Global().ResetValues();
  Rng rng(7);
  Tensor a = Tensor::Randn({32, 48}, rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({48, 16}, rng, 1.0f, /*requires_grad=*/true);
  Tensor loss = a.MatMul(b).SoftmaxLastDim().Sum();
  loss.Backward();
  MSGCL_OBS_COUNT("obs_test.workload_runs", 1);

  obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  StableView view;
  view.counters = snap.counters;
  for (const auto& op : snap.ops) view.ops.emplace_back(op.name, op.calls, op.bytes);
  return view;
}

TEST(ThreadInvarianceTest, CountersAndCallCountsIdenticalAcross1And2And7Threads) {
  if (!obs::kEnabled) GTEST_SKIP() << "instrumentation compiled out (MSGCL_OBS=OFF)";
  const StableView t1 = WorkloadSnapshot(1);
  const StableView t2 = WorkloadSnapshot(2);
  const StableView t7 = WorkloadSnapshot(7);
  parallel::SetNumThreads(1);
  ASSERT_FALSE(t1.ops.empty());
  EXPECT_TRUE(t1 == t2);
  EXPECT_TRUE(t1 == t7);
  // The workload actually exercised the instrumented kernels.
  std::vector<std::string> names;
  for (const auto& op : t1.ops) names.push_back(std::get<0>(op));
  for (const char* want : {"tensor.matmul.fwd", "tensor.matmul.bwd",
                           "tensor.softmax.fwd", "tensor.reduce.sum"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing op " << want;
  }
}

// ---------- FitLoop op counters vs analytic expectations ----------

TEST(FitLoopCountersTest, OpCallCountsMatchAnalyticExpectations) {
  if (!obs::kEnabled) GTEST_SKIP() << "instrumentation compiled out (MSGCL_OBS=OFF)";
  auto log = data::GenerateSynthetic(data::TinyDataset(7)).value();
  auto ds = data::LeaveOneOutSplit(log);

  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  b.dropout = 0.1f;

  models::TrainConfig t;
  t.epochs = 2;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  t.seed = 99;
  t.eval_every = 0;  // no validation -> no eval ops

  obs::Registry::Global().ResetValues();
  models::SasRec model(b, t, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_TRUE(s.ok()) << s.ToString();

  const int64_t batches_per_epoch =
      (ds.num_users() + t.batch_size - 1) / t.batch_size;
  const int64_t steps = t.epochs * batches_per_epoch;
  ASSERT_GE(steps, 2);

  obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  std::map<std::string, obs::Snapshot::Op> ops;
  for (const auto& op : snap.ops) ops[op.name] = op;

  // One of each phase scope per optimisation step.
  EXPECT_EQ(ops["train.step_fn"].calls, steps);
  EXPECT_EQ(ops["train.forward"].calls, steps);
  EXPECT_EQ(ops["train.backward"].calls, steps);
  EXPECT_EQ(ops["train.step"].calls, steps);
  EXPECT_EQ(ops["nn.adam.step"].calls, steps);
  // One attention forward per layer per loss evaluation (layers = 1).
  EXPECT_EQ(ops["nn.attention.fwd"].calls, steps * b.layers);
  // One cross-entropy per loss evaluation.
  EXPECT_EQ(ops["tensor.cross_entropy.fwd"].calls, steps);
  // No eval and no checkpointing were configured.
  EXPECT_EQ(ops.count("train.eval"), 0u);
  EXPECT_EQ(ops.count("train.checkpoint"), 0u);
  EXPECT_EQ(ops.count("eval.score_all"), 0u);

  // RAII self-time is exact: step_fn's direct instrumented children are
  // forward, backward, and step, so its self time is its total minus theirs.
  EXPECT_EQ(ops["train.step_fn"].self_ns,
            ops["train.step_fn"].total_ns - ops["train.forward"].total_ns -
                ops["train.backward"].total_ns - ops["train.step"].total_ns);

  // The acceptance bar: a real training run profiles at least 8 distinct ops.
  EXPECT_GE(snap.ops.size(), 8u);
  for (const auto& op : snap.ops) {
    EXPECT_GE(op.total_ns, op.self_ns) << op.name;
    EXPECT_GE(op.self_ns, 0) << op.name;
  }
}

}  // namespace
}  // namespace msgcl
