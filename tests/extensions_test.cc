// Tests for the library extensions: checkpoint serialization, the top-K
// recommendation API, MRR, training history, and the FPMC / CL4SRec / SRMA
// baselines.
#include <cstdio>

#include "data/data.h"
#include "eval/eval.h"
#include "gtest/gtest.h"
#include "models/models.h"

namespace msgcl {
namespace {

data::SequenceDataset TinySplit(uint64_t seed = 7) {
  auto log = data::GenerateSynthetic(data::TinyDataset(seed)).value();
  return data::LeaveOneOutSplit(log);
}

models::TrainConfig QuickTrain(int64_t epochs = 2) {
  models::TrainConfig t;
  t.epochs = epochs;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  t.seed = 99;
  return t;
}

models::BackboneConfig TinyBackbone(const data::SequenceDataset& ds) {
  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  b.dropout = 0.1f;
  return b;
}

// ---------- Serialization ----------

TEST(SerializeTest, SaveLoadRoundTripBitExact) {
  auto ds = TinySplit();
  Rng rng(1);
  models::SasBackbone a(TinyBackbone(ds), rng);
  const std::string path = ::testing::TempDir() + "/msgcl_ckpt_roundtrip.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(a, path).ok());

  Rng rng2(999);  // different init
  models::SasBackbone b(TinyBackbone(ds), rng2);
  ASSERT_TRUE(nn::LoadCheckpoint(b, path).ok());
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].second.data(), pb[i].second.data()) << pa[i].first;
  }
}

TEST(SerializeTest, LoadRejectsWrongArchitecture) {
  auto ds = TinySplit();
  Rng rng(2);
  models::SasBackbone a(TinyBackbone(ds), rng);
  const std::string path = ::testing::TempDir() + "/msgcl_ckpt_arch.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(a, path).ok());

  models::BackboneConfig other = TinyBackbone(ds);
  other.dim = 32;  // shape mismatch
  Rng rng2(3);
  models::SasBackbone b(other, rng2);
  Status s = nn::LoadCheckpoint(b, path);
  EXPECT_FALSE(s.ok());
}

TEST(SerializeTest, LoadRejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/msgcl_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  auto ds = TinySplit();
  Rng rng(4);
  models::SasBackbone m(TinyBackbone(ds), rng);
  EXPECT_FALSE(nn::LoadCheckpoint(m, path).ok());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto ds = TinySplit();
  Rng rng(5);
  models::SasBackbone m(TinyBackbone(ds), rng);
  EXPECT_EQ(nn::LoadCheckpoint(m, "/nonexistent/ckpt.bin").code(),
            Status::Code::kNotFound);
}

TEST(SerializeTest, TrainedModelScoresSurviveRoundTrip) {
  auto ds = TinySplit();
  models::SasRec model(TinyBackbone(ds), QuickTrain(3), Rng(6));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1}, 12);
  auto before = model.ScoreAll(b);

  const std::string path = ::testing::TempDir() + "/msgcl_ckpt_trained.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(model, path).ok());
  models::SasRec fresh(TinyBackbone(ds), QuickTrain(3), Rng(777));
  ASSERT_TRUE(nn::LoadCheckpoint(fresh, path).ok());
  fresh.SetTraining(false);
  EXPECT_EQ(fresh.ScoreAll(b), before);
}

// ---------- Top-K recommendation API ----------

class FixedRanker : public eval::Ranker {
 public:
  explicit FixedRanker(std::vector<float> scores) : scores_(std::move(scores)) {}
  std::string name() const override { return "fixed"; }
  std::vector<float> ScoreAll(const data::Batch& batch) override {
    std::vector<float> out;
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      out.insert(out.end(), scores_.begin(), scores_.end());
    }
    return out;
  }

 private:
  std::vector<float> scores_;
};

TEST(RecommendTest, TopKOrderedByScore) {
  FixedRanker model({0.0f, 0.1f, 0.9f, 0.5f, 0.7f});  // items 1..4
  eval::RecommendOptions opt;
  opt.k = 3;
  opt.max_len = 4;
  opt.exclude_seen = false;
  auto recs = eval::RecommendTopK(model, {1}, 4, opt);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].item, 2);
  EXPECT_EQ(recs[1].item, 4);
  EXPECT_EQ(recs[2].item, 3);
  EXPECT_FLOAT_EQ(recs[0].score, 0.9f);
}

TEST(RecommendTest, ExcludeSeenFiltersHistory) {
  FixedRanker model({0.0f, 0.1f, 0.9f, 0.5f, 0.7f});
  eval::RecommendOptions opt;
  opt.k = 2;
  opt.max_len = 4;
  opt.exclude_seen = true;
  auto recs = eval::RecommendTopK(model, {2, 4}, 4, opt);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 3);
  EXPECT_EQ(recs[1].item, 1);
}

TEST(RecommendTest, KLargerThanCatalogue) {
  FixedRanker model({0.0f, 0.1f, 0.2f});
  eval::RecommendOptions opt;
  opt.k = 50;
  opt.max_len = 2;
  opt.exclude_seen = false;
  auto recs = eval::RecommendTopK(model, {1}, 2, opt);
  EXPECT_EQ(recs.size(), 2u);
}

TEST(RecommendTest, DeterministicTieBreakByItemId) {
  FixedRanker model({0.0f, 0.5f, 0.5f, 0.5f});
  eval::RecommendOptions opt;
  opt.k = 3;
  opt.max_len = 2;
  opt.exclude_seen = false;
  auto recs = eval::RecommendTopK(model, {1}, 3, opt);
  EXPECT_EQ(recs[0].item, 1);
  EXPECT_EQ(recs[1].item, 2);
  EXPECT_EQ(recs[2].item, 3);
}

TEST(RecommendTest, BatchMatchesSingle) {
  FixedRanker model({0.0f, 0.3f, 0.9f, 0.1f});
  eval::RecommendOptions opt;
  opt.k = 2;
  opt.max_len = 3;
  std::vector<std::vector<int32_t>> histories = {{1}, {2, 3}};
  auto batched = eval::RecommendTopKBatch(model, histories, 3, opt);
  ASSERT_EQ(batched.size(), 2u);
  for (size_t u = 0; u < histories.size(); ++u) {
    auto single = eval::RecommendTopK(model, histories[u], 3, opt);
    ASSERT_EQ(batched[u].size(), single.size());
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[u][i].item, single[i].item);
    }
  }
}

// ---------- MRR ----------

TEST(MrrTest, AccumulatorComputesReciprocalRanks) {
  eval::MetricAccumulator acc;
  acc.Add(0);  // 1
  acc.Add(1);  // 1/2
  acc.Add(3);  // 1/4
  EXPECT_NEAR(acc.Mrr(), (1.0 + 0.5 + 0.25) / 3.0, 1e-12);
}

TEST(MrrTest, EvaluatorFillsMrr) {
  auto ds = TinySplit();
  models::Pop pop;
  pop.Fit(ds);
  eval::EvalConfig cfg;
  cfg.max_len = 12;
  eval::Metrics m = eval::Evaluate(pop, ds, eval::Split::kTest, cfg);
  EXPECT_GT(m.mrr, 0.0);
  EXPECT_LE(m.mrr, 1.0);
}

// ---------- FitHistory ----------

TEST(FitHistoryTest, RecordsLossesAndValidation) {
  auto ds = TinySplit();
  models::FitHistory history;
  models::TrainConfig t = QuickTrain(6);
  t.eval_every = 2;
  t.patience = 10;
  t.history = &history;
  models::SasRec model(TinyBackbone(ds), t, Rng(7));
  model.Fit(ds);
  EXPECT_EQ(history.epoch_loss.size(), 6u);
  EXPECT_EQ(history.val_epochs.size(), 3u);  // epochs 1, 3, 5
  EXPECT_EQ(history.val_ndcg10.size(), 3u);
  EXPECT_GE(history.best_epoch, 0);
  EXPECT_EQ(history.stopped_epoch, 5);
  // Training loss should broadly decrease.
  EXPECT_LT(history.epoch_loss.back(), history.epoch_loss.front());
}

TEST(FitHistoryTest, EarlyStopRecordsStoppedEpoch) {
  auto ds = TinySplit();
  models::FitHistory history;
  models::TrainConfig t = QuickTrain(50);
  t.eval_every = 1;
  t.patience = 2;
  t.history = &history;
  models::SasRec model(TinyBackbone(ds), t, Rng(8));
  model.Fit(ds);
  EXPECT_LE(history.stopped_epoch, 49);
  EXPECT_EQ(history.epoch_loss.size(), static_cast<size_t>(history.stopped_epoch + 1));
}

// ---------- Extra baselines ----------

TEST(FpmcTest, TrainsAndScores) {
  auto ds = TinySplit();
  models::Fpmc model({16, 1e-5f}, QuickTrain(3), Rng(9));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1}, 12);
  auto scores = model.ScoreAll(b);
  ASSERT_EQ(scores.size(), 2u * (ds.num_items + 1));
  for (float s : scores) ASSERT_TRUE(std::isfinite(s));
}

TEST(FpmcTest, TransitionTermIsSequenceSensitive) {
  auto ds = TinySplit();
  models::Fpmc model({16, 0.0f}, QuickTrain(6), Rng(10));
  model.Fit(ds);
  // Same user, different last item -> different scores.
  std::vector<std::vector<int32_t>> in1 = {{1, 2}};
  std::vector<std::vector<int32_t>> in2 = {{2, 1}};
  auto s1 = model.ScoreAll(data::MakeEvalBatch(in1, {0}, 4));
  auto s2 = model.ScoreAll(data::MakeEvalBatch(in2, {0}, 4));
  EXPECT_NE(s1, s2);
}

TEST(Cl4SRecTest, TrainsAndScoresDeterministically) {
  auto ds = TinySplit();
  models::Cl4SRecConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  models::Cl4SRec model(std::move(cfg), QuickTrain(2), Rng(11));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1}, 12);
  auto s1 = model.ScoreAll(b);
  EXPECT_EQ(s1, model.ScoreAll(b));
  EXPECT_EQ(s1.size(), 2u * (ds.num_items + 1));
}

TEST(SrmaTest, TrainsAndScoresWithLayerDrop) {
  auto ds = TinySplit();
  models::SrmaConfig cfg;
  cfg.backbone = TinyBackbone(ds);
  cfg.backbone.layers = 2;  // layer drop needs > 1 layer
  models::Srma model(cfg, QuickTrain(2), Rng(12));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  for (float s : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(s));
}

TEST(SrmaTest, SingleLayerBackboneStillWorks) {
  auto ds = TinySplit();
  models::SrmaConfig cfg;
  cfg.backbone = TinyBackbone(ds);  // 1 layer: drop is skipped internally
  models::Srma model(cfg, QuickTrain(1), Rng(13));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  for (float s : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(s));
}

TEST(TransformerTest, SkipLayerBypassesBlock) {
  Rng rng(14);
  nn::TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.dropout = 0.0f;
  nn::TransformerEncoder enc(cfg, rng);
  enc.SetTraining(false);
  Tensor x = Tensor::Randn({1, 3, 8}, rng);
  Rng r1(1), r2(1), r3(1);
  Tensor full = enc.Forward(x, true, nullptr, r1);
  Tensor skip0 = enc.Forward(x, true, nullptr, r2, 0);
  Tensor skip_none = enc.Forward(x, true, nullptr, r3, -1);
  // Skipping a layer changes the output; -1 matches the full stack.
  float diff = 0.0f;
  for (int64_t i = 0; i < full.numel(); ++i) diff += std::fabs(full.at(i) - skip0.at(i));
  EXPECT_GT(diff, 1e-4f);
  for (int64_t i = 0; i < full.numel(); ++i) {
    ASSERT_EQ(full.at(i), skip_none.at(i));
  }
}

}  // namespace
}  // namespace msgcl
