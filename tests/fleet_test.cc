// Tests for the replicated serving fleet and validated hot model swap
// (DESIGN.md §11): consistent-hash routing stability and bounded remap
// churn, health-checked failover around killed replicas and Open breakers,
// the shard-kill chaos drill (availability >= 99%, zero garbage), and the
// swap validation gate — corrupted checkpoints rejected without touching
// the traffic path, identical-weights swaps bit-identical on top-k, and
// zero dropped requests across hot swaps under live load.
//
// These carry the `fleet` ctest label so the sanitized presets
// (`ctest --preset asan-serve` / `tsan-serve`) pick them up alongside the
// `serve` and `chaos` suites.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <future>
#include <stdexcept>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "data/data.h"
#include "gtest/gtest.h"
#include "models/models.h"
#include "nn/serialize.h"
#include "obs/registry.h"
#include "runtime/fault_injector.h"
#include "serve/serve.h"

namespace msgcl {
namespace serve {
namespace {

int64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetCounter(name).value();
}

// Same deterministic toy ranker as serve_test.cc / chaos_test.cc.
constexpr int32_t kToyItems = 50;

float ToyScore(int32_t last, int32_t i) {
  return static_cast<float>((i * 31 + last * 7) % 97);
}

class ToyRanker : public eval::Ranker {
 public:
  std::string name() const override { return "Toy"; }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    std::vector<float> scores(batch.batch_size * (kToyItems + 1), 0.0f);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const int32_t last = batch.inputs[(b + 1) * batch.seq_len - 1];
      for (int32_t i = 1; i <= kToyItems; ++i) {
        scores[b * (kToyItems + 1) + i] = ToyScore(last, i);
      }
    }
    return scores;
  }
};

FallbackRanker ToyFallback() {
  return FallbackRanker::FromSequences({{1, 1, 1, 2, 2, 3}}, kToyItems);
}

/// Per-request batches (max_batch=1) so routing/failover tests need no clock
/// advances, plus a fast-opening breaker for the health-check tests.
ServeConfig FleetServeConfig() {
  ServeConfig c;
  c.k = 5;
  c.max_len = 8;
  c.max_batch = 1;
  c.max_wait_us = 100;
  c.breaker.degraded_after = 1;
  c.breaker.open_after = 2;
  c.breaker.open_backoff_us = 1000;
  c.breaker.max_backoff_us = 8000;
  return c;
}

struct ToyFleet {
  std::vector<ToyRanker> rankers;
  std::vector<eval::Ranker*> models;

  explicit ToyFleet(int n) : rankers(static_cast<size_t>(n)) {
    for (ToyRanker& r : rankers) models.push_back(&r);
  }
};

// ---- Consistent-hash routing ----------------------------------------------

TEST(ConsistentHashTest, SameUserAlwaysSameLiveReplicaAndAllReplicasUsed) {
  ToyFleet fleet(3);
  FleetConfig config;
  config.replicas = 3;
  config.serve = FleetServeConfig();
  FakeClock clock;
  Router router(fleet.models, kToyItems, config, &clock);

  std::vector<int> owners(300);
  std::vector<int64_t> per_replica(3, 0);
  for (uint64_t u = 0; u < 300; ++u) {
    owners[u] = router.PickReplica(u);
    ASSERT_GE(owners[u], 0);
    ASSERT_LT(owners[u], 3);
    ++per_replica[static_cast<size_t>(owners[u])];
  }
  // Stability: the mapping is a pure function of (user, live set).
  for (uint64_t u = 0; u < 300; ++u) {
    EXPECT_EQ(router.PickReplica(u), owners[u]) << "user " << u;
  }
  // Spread: with 64 virtual nodes per replica, no replica is starved.
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(per_replica[static_cast<size_t>(r)], 0) << "replica " << r;
  }
  router.Stop();
}

TEST(ConsistentHashTest, ReplicaDeathMovesOnlyItsUsersAndRestartRestores) {
  ToyFleet fleet(3);
  FleetConfig config;
  config.replicas = 3;
  config.serve = FleetServeConfig();
  FakeClock clock;
  Router router(fleet.models, kToyItems, config, &clock);

  constexpr uint64_t kUsers = 400;
  std::vector<int> before(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) before[u] = router.PickReplica(u);

  router.KillReplica(1);
  int64_t moved = 0, owned_by_dead = 0;
  for (uint64_t u = 0; u < kUsers; ++u) {
    const int now = router.PickReplica(u);
    if (before[u] == 1) {
      ++owned_by_dead;
      // Dead replica's users move to a surviving replica...
      EXPECT_TRUE(now == 0 || now == 2) << "user " << u;
      ++moved;
    } else {
      // ...and NOBODY else moves: churn is exactly the dead replica's share.
      EXPECT_EQ(now, before[u]) << "user " << u;
    }
  }
  EXPECT_GT(owned_by_dead, 0);
  EXPECT_EQ(moved, owned_by_dead);

  // The ring never changed, so a restart restores the original map exactly.
  router.RestartReplica(1);
  for (uint64_t u = 0; u < kUsers; ++u) {
    EXPECT_EQ(router.PickReplica(u), before[u]) << "user " << u;
  }
  router.Stop();
}

// ---- Health-checked failover -----------------------------------------------

TEST(RouterTest, FailsOverToHealthyReplicaWhenPrimaryIsKilled) {
  ToyFleet fleet(3);
  FleetConfig config;
  config.replicas = 3;
  config.serve = FleetServeConfig();
  FakeClock clock;
  Router router(fleet.models, kToyItems, config, &clock);

  const uint64_t user = 7;
  const int primary = router.PickReplica(user);
  router.KillReplica(primary);
  EXPECT_FALSE(router.alive(primary));
  EXPECT_EQ(router.healthy_replicas(), 2);

  const int rerouted = router.PickReplica(user);
  EXPECT_NE(rerouted, primary);
  EXPECT_GE(rerouted, 0);

  auto result = router.Submit(user, {{3, 9, 4}, 0}).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().degraded);
  EXPECT_EQ(result.value().topk.size(), 5u);
  router.Stop();
}

TEST(RouterTest, RoutesAroundOpenBreaker) {
  ToyFleet fleet(2);
  runtime::ServeFaultPlan plan;
  plan.fault_batches = {0, 1};  // exactly the first two scored batches throw
  plan.kinds = {runtime::ServeFaultKind::kScoreThrow};
  runtime::ServeFaultInjector injector(plan);
  const FallbackRanker fallback = ToyFallback();

  FleetConfig config;
  config.replicas = 2;
  config.serve = FleetServeConfig();
  config.serve.fallback = &fallback;
  config.serve.fault_injector = &injector;
  FakeClock clock;
  Router router(fleet.models, kToyItems, config, &clock);

  const uint64_t user = 11;
  const int primary = router.PickReplica(user);

  // Two throwing batches on the primary: degraded responses, breaker opens.
  for (int i = 0; i < 2; ++i) {
    auto result = router.Submit(user, {{5, 2}, 0}).get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().degraded);
  }
  EXPECT_EQ(router.replica(primary)->breaker().state(), BreakerState::kOpen);
  EXPECT_EQ(router.healthy_replicas(), 1);

  // The user now routes around the Open breaker and gets model-scored again.
  EXPECT_NE(router.PickReplica(user), primary);
  auto result = router.Submit(user, {{5, 2}, 0}).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().degraded);
  router.Stop();
}

TEST(RouterTest, AllReplicasDeadServesFleetFallbackThenUnavailable) {
  const FallbackRanker fallback = ToyFallback();
  FakeClock clock;
  {
    ToyFleet fleet(2);
    FleetConfig config;
    config.replicas = 2;
    config.serve = FleetServeConfig();
    config.fallback = &fallback;
    Router router(fleet.models, kToyItems, config, &clock);
    router.KillReplica(0);
    router.KillReplica(1);
    EXPECT_EQ(router.PickReplica(3), -1);

    auto result = router.Submit(3, {{4, 1}, 0}).get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().degraded);
    // Most popular non-excluded items, repo total order: 2, 3, then id-asc.
    ASSERT_GE(result.value().topk.size(), 2u);
    EXPECT_EQ(result.value().topk[0].item, 2);
    EXPECT_EQ(result.value().topk[1].item, 3);
    router.Stop();
  }
  {
    ToyFleet fleet(2);
    FleetConfig config;
    config.replicas = 2;
    config.serve = FleetServeConfig();  // no fleet fallback
    Router router(fleet.models, kToyItems, config, &clock);
    router.KillReplica(0);
    router.KillReplica(1);
    auto result = router.Submit(3, {{4, 1}, 0}).get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kUnavailable);
    router.Stop();
  }
}

TEST(RouterTest, KillAndRestartAreIdempotent) {
  ToyFleet fleet(2);
  FleetConfig config;
  config.replicas = 2;
  config.serve = FleetServeConfig();
  FakeClock clock;
  Router router(fleet.models, kToyItems, config, &clock);

  const int64_t kills0 = CounterValue("serve.fleet.kills");
  router.KillReplica(0);
  router.KillReplica(0);  // no-op
  EXPECT_EQ(CounterValue("serve.fleet.kills") - kills0, 1);
  router.RestartReplica(0);
  router.RestartReplica(0);  // no-op
  EXPECT_TRUE(router.alive(0));
  auto result = router.Submit(1, {{2, 8}, 0}).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  router.Stop();
}

// ---- Shard-kill chaos drill (SystemClock) ----------------------------------

TEST(FleetChaosDrillTest, ShardKillMidRunKeepsAvailabilityWithZeroGarbage) {
  ToyFleet fleet(3);
  runtime::ServeFaultPlan plan;
  plan.fault_rate = 0.10;
  plan.kinds = {runtime::ServeFaultKind::kScoreThrow,
                runtime::ServeFaultKind::kNaNScores};
  runtime::ServeFaultInjector injector(plan);
  const FallbackRanker fallback = ToyFallback();

  FleetConfig config;
  config.replicas = 3;
  config.serve.k = 5;
  config.serve.max_len = 8;
  config.serve.max_batch = 4;
  config.serve.max_wait_us = 200;
  config.serve.breaker.degraded_after = 1;
  config.serve.breaker.open_after = 2;
  config.serve.breaker.open_backoff_us = 2000;
  config.serve.breaker.max_backoff_us = 100000;
  config.serve.fallback = &fallback;
  config.serve.fault_injector = &injector;
  config.fallback = &fallback;
  Router router(fleet.models, kToyItems, config);  // real SystemClock

  std::vector<std::vector<int32_t>> histories;
  for (int32_t u = 0; u < 40; ++u) {
    histories.push_back({u % kToyItems + 1, (u * 3) % kToyItems + 1,
                         (u * 7) % kToyItems + 1});
  }
  LoadgenConfig load;
  load.requests = 1500;
  load.clients = 6;
  load.k = 5;
  std::vector<FleetChaosEvent> events;
  events.push_back({2000, 1, FleetChaosEvent::Action::kKill});
  events.push_back({30000, 1, FleetChaosEvent::Action::kRestart});
  const LoadgenReport report = RunFleetLoad(router, histories, load, events);
  router.Stop();

  EXPECT_EQ(report.requests, 1500);
  EXPECT_EQ(report.garbage, 0);
  EXPECT_GE(report.availability, 0.99)
      << "ok=" << report.ok << " degraded=" << report.degraded
      << " errors=" << report.errors << " shed=" << report.shed;
  // The injector really fired and the kill really happened.
  EXPECT_GT(injector.injected_faults(), 0);
  EXPECT_TRUE(router.alive(1));  // restarted (or the restart fired post-run)
}

// ---- Validated hot model swap ----------------------------------------------

/// Golden batch in leave-one-out form from the synthetic training split.
SwapGoldenBatch MakeGolden(const std::vector<std::vector<int32_t>>& seqs,
                           size_t rows) {
  SwapGoldenBatch golden;
  for (const auto& seq : seqs) {
    if (golden.histories.size() >= rows) break;
    if (seq.size() < 2) continue;
    golden.histories.emplace_back(seq.begin(), seq.end() - 1);
    golden.targets.push_back(seq.back());
  }
  return golden;
}

struct SwapFixture {
  data::SequenceDataset ds;
  models::BackboneConfig backbone;
  std::unique_ptr<models::SasRec> active;
  std::unique_ptr<models::SasRec> standby;

  explicit SwapFixture(uint64_t active_seed = 3, uint64_t standby_seed = 4) {
    auto log = data::GenerateSynthetic(data::TinyDataset(7)).value();
    ds = data::LeaveOneOutSplit(log);
    backbone.num_items = ds.num_items;
    backbone.max_len = 12;
    backbone.dim = 16;
    backbone.heads = 2;
    backbone.layers = 1;
    active = std::make_unique<models::SasRec>(backbone, models::TrainConfig{},
                                              Rng(active_seed));
    standby = std::make_unique<models::SasRec>(backbone, models::TrainConfig{},
                                               Rng(standby_seed));
  }

  SwapConfig Config() const {
    SwapConfig c;
    c.k = 10;
    c.max_len = 12;
    c.golden = MakeGolden(ds.train_seqs, 8);
    return c;
  }

  std::unique_ptr<SwappableRanker> MakeSwapper(const SwapConfig& config) {
    return std::make_unique<SwappableRanker>(
        SwappableRanker::Slot{active.get(), active.get()},
        SwappableRanker::Slot{standby.get(), standby.get()}, ds.num_items,
        config);
  }
};

/// Bytewise equality of two top-k lists (same as serve_test.cc).
::testing::AssertionResult ListsBitEqual(const eval::TopKList& a,
                                         const eval::TopKList& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].item != b[i].item ||
        std::memcmp(&a[i].score, &b[i].score, sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "entry " << i << ": (" << a[i].item << ", " << a[i].score << ") vs ("
             << b[i].item << ", " << b[i].score << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<eval::TopKList> ScoreThrough(
    const std::unique_ptr<SwappableRanker>& swapper, const SwapFixture& fx) {
  std::vector<std::vector<int32_t>> histories(fx.ds.train_seqs.begin(),
                                              fx.ds.train_seqs.begin() + 6);
  std::vector<int32_t> rows;
  for (int32_t i = 0; i < 6; ++i) rows.push_back(i);
  eval::TopKOptions opt;
  opt.k = 10;
  opt.num_items = fx.ds.num_items;
  opt.exclude = &histories;
  NoGradGuard guard;
  data::Batch batch = data::MakeEvalBatch(histories, rows, 12);
  return swapper->ScoreTopK(batch, opt);
}

TEST(ModelSwapTest, IdenticalWeightsSwapIsBitIdenticalOnTopK) {
  SwapFixture fx;
  auto swapper = fx.MakeSwapper(fx.Config());
  EXPECT_EQ(swapper->active_slot(), 0);

  const std::vector<eval::TopKList> before = ScoreThrough(swapper, fx);

  const std::string path = ::testing::TempDir() + "/fleet_swap_identical.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(*fx.active, path).ok());
  const Status s = swapper->SwapFromCheckpoint(path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(swapper->active_slot(), 1);
  EXPECT_EQ(swapper->swaps(), 1);

  // The standby slot now holds byte-identical weights: serving must be
  // bit-identical before vs. after the flip.
  const std::vector<eval::TopKList> after = ScoreThrough(swapper, fx);
  ASSERT_EQ(before.size(), after.size());
  for (size_t b = 0; b < before.size(); ++b) {
    EXPECT_TRUE(ListsBitEqual(before[b], after[b])) << "row " << b;
  }
}

TEST(ModelSwapTest, TruncatedCheckpointRejectedWithoutServingArtifacts) {
  SwapFixture fx;
  auto swapper = fx.MakeSwapper(fx.Config());

  const std::string path = ::testing::TempDir() + "/fleet_swap_truncated.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(*fx.standby, path).ok());
  ASSERT_TRUE(runtime::FaultInjector::TruncateFile(path, 64).ok());

  const int64_t degraded0 = CounterValue("serve.degraded");
  const Status s = swapper->SwapFromCheckpoint(path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(swapper->active_slot(), 0);
  EXPECT_EQ(swapper->rejected(), 1);
  EXPECT_EQ(swapper->swaps(), 0);
  // Rollout failures never leak into the traffic path's degraded machinery.
  EXPECT_EQ(CounterValue("serve.degraded"), degraded0);

  // The active model still serves, full-quality.
  const std::vector<eval::TopKList> lists = ScoreThrough(swapper, fx);
  ASSERT_EQ(lists.size(), 6u);
  for (const eval::TopKList& list : lists) {
    EXPECT_EQ(list.size(), 10u);
    for (const eval::ScoredItem& item : list) {
      EXPECT_TRUE(std::isfinite(item.score));
    }
  }
}

TEST(ModelSwapTest, NaNPoisonedCheckpointRejectedByFiniteWeightScan) {
  SwapFixture fx;
  auto swapper = fx.MakeSwapper(fx.Config());

  // A third model instance: same architecture, one weight NaN-poisoned. The
  // checkpoint parses cleanly — only the finite scan can catch it.
  models::SasRec poisoned(fx.backbone, models::TrainConfig{}, Rng(5));
  auto params = poisoned.NamedParameters();
  ASSERT_FALSE(params.empty());
  params[0].second.data()[0] = std::numeric_limits<float>::quiet_NaN();

  const std::string path = ::testing::TempDir() + "/fleet_swap_nan.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(poisoned, path).ok());
  const Status s = swapper->SwapFromCheckpoint(path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("non-finite"), std::string::npos) << s.ToString();
  EXPECT_EQ(swapper->active_slot(), 0);
  EXPECT_EQ(swapper->rejected(), 1);

  // The same weights via module-to-module swap are rejected identically.
  const Status s2 = swapper->SwapFromModule(poisoned);
  EXPECT_FALSE(s2.ok());
  EXPECT_EQ(swapper->active_slot(), 0);
  EXPECT_EQ(swapper->rejected(), 2);
}

TEST(ModelSwapTest, GoldenSmokeFloorRejectsAndPermissiveFloorAccepts) {
  SwapFixture fx;
  SwapConfig strict = fx.Config();
  strict.min_hr = 1.1;  // unattainable: HR@k <= 1
  auto rejecting = fx.MakeSwapper(strict);
  const Status s = rejecting->SwapFromModule(*fx.standby);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("HR@"), std::string::npos) << s.ToString();
  EXPECT_EQ(rejecting->active_slot(), 0);

  SwapFixture fx2;
  SwapConfig permissive = fx2.Config();
  permissive.min_hr = 0.0;   // any finite quality passes
  permissive.min_ndcg = 0.0;
  auto accepting = fx2.MakeSwapper(permissive);
  const Status s2 = accepting->SwapFromModule(*fx2.standby);
  EXPECT_TRUE(s2.ok()) << s2.ToString();
  EXPECT_EQ(accepting->active_slot(), 1);
}

TEST(ModelSwapTest, MidSwapCrashLeavesActiveServingAndRetrySucceeds) {
  SwapFixture fx;
  runtime::ServeFaultPlan plan;
  plan.swap_crash_attempts = {0};  // first attempt dies mid-swap
  runtime::ServeFaultInjector injector(plan);
  SwapConfig config = fx.Config();
  config.fault_injector = &injector;
  auto swapper = fx.MakeSwapper(config);

  const std::string path = ::testing::TempDir() + "/fleet_swap_crash.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(*fx.active, path).ok());

  const Status crash = swapper->SwapFromCheckpoint(path);
  EXPECT_FALSE(crash.ok());
  EXPECT_EQ(crash.code(), Status::Code::kInternal);
  EXPECT_EQ(swapper->active_slot(), 0);
  EXPECT_EQ(swapper->swaps(), 0);

  // Active still serves after the crash; the retry completes the rollout.
  const std::vector<eval::TopKList> lists = ScoreThrough(swapper, fx);
  ASSERT_EQ(lists.size(), 6u);
  const Status retry = swapper->SwapFromCheckpoint(path);
  EXPECT_TRUE(retry.ok()) << retry.ToString();
  EXPECT_EQ(swapper->active_slot(), 1);
  EXPECT_EQ(swapper->swaps(), 1);
}

TEST(ModelSwapTest, HotSwapsUnderLoadDropZeroRequests) {
  SwapFixture fx;
  auto swapper = fx.MakeSwapper(fx.Config());

  const std::string path = ::testing::TempDir() + "/fleet_swap_underload.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(*fx.active, path).ok());

  ServeConfig config;
  config.k = 10;
  config.max_len = 12;
  config.max_batch = 8;
  config.max_wait_us = 200;
  config.num_workers = 2;
  MicroBatcher batcher(*swapper, fx.ds.num_items, config);  // real SystemClock

  constexpr int kSwaps = 5;
  std::thread swap_thread([&] {
    for (int i = 0; i < kSwaps; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const Status s = swapper->SwapFromCheckpoint(path);
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  });

  LoadgenConfig load;
  load.requests = 300;
  load.clients = 4;
  load.k = 10;
  const LoadgenReport report = RunLoad(batcher, fx.ds.train_seqs, load);
  swap_thread.join();
  batcher.Stop();

  // Zero dropped, zero degraded, zero garbage across every hot swap.
  EXPECT_EQ(report.requests, 300);
  EXPECT_EQ(report.ok, 300);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.garbage, 0);
  EXPECT_EQ(swapper->swaps(), kSwaps);
}

// ---- FleetConfig validation at construction -------------------------------

TEST(FleetConfigValidationTest, EachBadKnobIsTypedInvalidArgument) {
  struct Case {
    const char* name;
    std::function<void(FleetConfig&)> set;
    int replicas_for_router;  // matching model count so only the knob fails
  };
  const std::vector<Case> cases = {
      {"replicas = 0", [](FleetConfig& c) { c.replicas = 0; }, 0},
      {"negative replicas", [](FleetConfig& c) { c.replicas = -2; }, 1},
      {"virtual_nodes = 0", [](FleetConfig& c) { c.virtual_nodes = 0; }, 2},
      {"empty shard_owners group",
       [](FleetConfig& c) { c.shard_owners = {{0}, {}}; }, 2},
      {"shard owner index out of range",
       [](FleetConfig& c) { c.shard_owners = {{0, 5}}; }, 2},
      {"negative shard owner index",
       [](FleetConfig& c) { c.shard_owners = {{-1}}; }, 2},
      {"invalid nested serve config",
       [](FleetConfig& c) { c.serve.max_batch = 0; }, 2},
  };
  FakeClock clock;
  for (const Case& c : cases) {
    FleetConfig config;
    config.replicas = 2;
    config.serve = FleetServeConfig();
    c.set(config);
    const Status s = config.Validate();
    ASSERT_FALSE(s.ok()) << c.name;
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << c.name;
    EXPECT_THROW(config.ValidateOrThrow(), std::invalid_argument) << c.name;
    ToyFleet fleet(std::max(c.replicas_for_router, 1));
    std::vector<eval::Ranker*> models(fleet.models.begin(),
                                      fleet.models.begin() + c.replicas_for_router);
    EXPECT_THROW(Router(models, kToyItems, config, &clock), std::invalid_argument)
        << c.name << ": construction must throw, not abort";
  }
}

TEST(FleetConfigValidationTest, ValidConfigConstructs) {
  FleetConfig config;
  config.replicas = 2;
  config.serve = FleetServeConfig();
  EXPECT_TRUE(config.Validate().ok());
  ToyFleet fleet(2);
  FakeClock clock;
  EXPECT_NO_THROW(Router(fleet.models, kToyItems, config, &clock));
}

}  // namespace
}  // namespace serve
}  // namespace msgcl
