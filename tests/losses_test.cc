// Tests for the shared loss functions: InfoNCE (paper Eq. 26) and the
// Gaussian-prior KL divergence (paper Eq. 24/25).
#include <cmath>

#include "gtest/gtest.h"
#include "nn/losses.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace msgcl {
namespace nn {
namespace {

using msgcl::testing::CheckGradients;

// ---------- InfoNCE ----------

TEST(InfoNceTest, AlignedViewsScoreLowerThanRandomViews) {
  Rng rng(1);
  Tensor z = Tensor::Randn({8, 16}, rng);
  Tensor z_same = z.Detach();
  Tensor z_rand = Tensor::Randn({8, 16}, rng);
  const float aligned = InfoNce(z, z_same, 1.0f).item();
  const float random = InfoNce(z, z_rand, 1.0f).item();
  EXPECT_LT(aligned, random);
}

TEST(InfoNceTest, PerfectSeparationApproachesZero) {
  // Strongly scaled identity-like embeddings: the positive dominates.
  Tensor z = Tensor::Zeros({4, 4});
  for (int i = 0; i < 4; ++i) z.set(i * 4 + i, 20.0f);
  Tensor zp = z.Detach();
  EXPECT_LT(InfoNce(z, zp, 1.0f).item(), 1e-3f);
}

TEST(InfoNceTest, TemperatureSharpensLogits) {
  Rng rng(2);
  Tensor z = Tensor::Randn({6, 8}, rng);
  // Positive slightly aligned: z' = z + small noise.
  Tensor zp = z.Detach();
  for (int64_t i = 0; i < zp.numel(); ++i) zp.set(i, zp.at(i) + 0.1f * rng.Normal());
  const float warm = InfoNce(z, zp, 5.0f).item();
  const float cold = InfoNce(z, zp, 0.1f).item();
  // Lower temperature amplifies the (positive) alignment.
  EXPECT_LT(cold, warm);
}

TEST(InfoNceTest, CosineInvariantToScale) {
  Rng rng(3);
  Tensor z = Tensor::Randn({5, 8}, rng);
  Tensor zp = Tensor::Randn({5, 8}, rng);
  const float base = InfoNce(z, zp, 1.0f, Similarity::kCosine).item();
  const float scaled = InfoNce(z.MulScalar(7.0f), zp.MulScalar(0.3f), 1.0f,
                               Similarity::kCosine).item();
  EXPECT_NEAR(base, scaled, 1e-4f);
}

TEST(InfoNceTest, DotSensitiveToScale) {
  Rng rng(4);
  Tensor z = Tensor::Randn({5, 8}, rng);
  Tensor zp = Tensor::Randn({5, 8}, rng);
  const float base = InfoNce(z, zp, 1.0f, Similarity::kDot).item();
  const float scaled = InfoNce(z.MulScalar(3.0f), zp, 1.0f, Similarity::kDot).item();
  EXPECT_GT(std::fabs(base - scaled), 1e-4f);
}

TEST(InfoNceTest, CrossViewNegativesToggleChangesLoss) {
  Rng rng(5);
  Tensor z = Tensor::Randn({6, 8}, rng);
  Tensor zp = Tensor::Randn({6, 8}, rng);
  const float with_cross = InfoNce(z, zp, 1.0f, Similarity::kDot, true).item();
  const float without = InfoNce(z, zp, 1.0f, Similarity::kDot, false).item();
  // Removing negatives can only reduce (or keep) the softmax denominator.
  EXPECT_LE(without, with_cross + 1e-5f);
}

TEST(InfoNceTest, RequiresBatchGreaterThanOne) {
  Tensor z = Tensor::Ones({1, 4});
  EXPECT_DEATH(InfoNce(z, z, 1.0f), "");
}

TEST(InfoNceTest, GradCheck) {
  Rng rng(6);
  Tensor z = Tensor::Rand({4, 5}, rng, -1.0f, 1.0f);
  Tensor zp = Tensor::Rand({4, 5}, rng, -1.0f, 1.0f);
  CheckGradients(
      [](std::vector<Tensor>& v) { return InfoNce(v[0], v[1], 0.7f); }, {z, zp});
}

TEST(InfoNceTest, GradCheckCosine) {
  Rng rng(7);
  Tensor z = Tensor::Rand({3, 4}, rng, 0.5f, 1.5f);
  Tensor zp = Tensor::Rand({3, 4}, rng, 0.5f, 1.5f);
  CheckGradients(
      [](std::vector<Tensor>& v) {
        return InfoNce(v[0], v[1], 1.0f, Similarity::kCosine);
      },
      {z, zp});
}

// ---------- Gaussian KL ----------

TEST(GaussianKlTest, ZeroAtStandardPrior) {
  Tensor mu = Tensor::Zeros({3, 4});
  Tensor logvar = Tensor::Zeros({3, 4});  // sigma = 1
  EXPECT_NEAR(GaussianKl(mu, logvar).item(), 0.0f, 1e-6f);
}

TEST(GaussianKlTest, PositiveAwayFromPrior) {
  Tensor mu = Tensor::Full({2, 4}, 1.0f);
  Tensor logvar = Tensor::Zeros({2, 4});
  // Per-dim KL = 0.5 * mu^2 = 0.5.
  EXPECT_NEAR(GaussianKl(mu, logvar).item(), 0.5f, 1e-5f);
}

TEST(GaussianKlTest, MatchesClosedFormForVariance) {
  Tensor mu = Tensor::Zeros({1, 2});
  Tensor logvar = Tensor::Full({1, 2}, std::log(4.0f));  // sigma^2 = 4
  // Per-dim: 0.5 * (4 - 1 - log 4).
  const float expected = 0.5f * (4.0f - 1.0f - std::log(4.0f));
  EXPECT_NEAR(GaussianKl(mu, logvar).item(), expected, 1e-5f);
}

TEST(GaussianKlTest, ValidMaskExcludesRows) {
  Tensor mu = Tensor::FromVector({2, 2}, {1, 1, 100, 100});
  Tensor logvar = Tensor::Zeros({2, 2});
  std::vector<uint8_t> valid = {1, 0};  // second row excluded
  EXPECT_NEAR(GaussianKl(mu, logvar, &valid).item(), 0.5f, 1e-5f);
}

TEST(GaussianKlTest, AllRowsMaskedGivesZero) {
  Tensor mu = Tensor::Ones({2, 2});
  Tensor logvar = Tensor::Zeros({2, 2});
  std::vector<uint8_t> valid = {0, 0};
  EXPECT_EQ(GaussianKl(mu, logvar, &valid).item(), 0.0f);
}

TEST(GaussianKlTest, GradCheck) {
  Rng rng(8);
  Tensor mu = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  Tensor logvar = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  std::vector<uint8_t> valid = {1, 0, 1};
  CheckGradients(
      [valid](std::vector<Tensor>& v) { return GaussianKl(v[0], v[1], &valid); },
      {mu, logvar});
}

TEST(GaussianKlTest, GradientPushesTowardPrior) {
  Tensor mu = Tensor::Full({1, 2}, 2.0f);
  Tensor logvar = Tensor::Full({1, 2}, 1.0f);
  mu.set_requires_grad(true);
  logvar.set_requires_grad(true);
  GaussianKl(mu, logvar).Backward();
  // dKL/dmu ~ mu > 0; dKL/dlogvar ~ 0.5 (e^lv - 1) > 0 for lv > 0.
  EXPECT_GT(mu.grad()[0], 0.0f);
  EXPECT_GT(logvar.grad()[0], 0.0f);
}

}  // namespace
}  // namespace nn
}  // namespace msgcl
