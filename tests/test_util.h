// Shared helpers for the msgcl test suites: numerical gradient checking and
// tolerant float comparison over tensors.
#ifndef MSGCL_TESTS_TEST_UTIL_H_
#define MSGCL_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace testing {

/// Asserts tensors have equal shapes and element-wise |a-b| <= atol + rtol*|b|.
inline void ExpectTensorNear(const Tensor& a, const Tensor& b, float atol = 1e-5f,
                             float rtol = 1e-4f) {
  ASSERT_EQ(a.shape(), b.shape()) << ShapeToString(a.shape()) << " vs "
                                  << ShapeToString(b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float av = a.at(i), bv = b.at(i);
    EXPECT_NEAR(av, bv, atol + rtol * std::fabs(bv)) << "at flat index " << i;
  }
}

/// Numerical gradient check.
///
/// `fn` must rebuild the graph from the leaves and return a scalar loss.
/// For every element of every leaf, compares the analytic gradient (from one
/// backward pass) against a central finite difference.
inline void CheckGradients(const std::function<Tensor(std::vector<Tensor>&)>& fn,
                           std::vector<Tensor> leaves, float eps = 1e-3f,
                           float atol = 2e-2f, float rtol = 2e-2f) {
  for (auto& leaf : leaves) leaf.set_requires_grad(true);

  Tensor loss = fn(leaves);
  ASSERT_EQ(loss.numel(), 1) << "gradcheck requires a scalar loss";
  for (auto& leaf : leaves) leaf.ZeroGrad();
  loss.Backward();

  for (size_t li = 0; li < leaves.size(); ++li) {
    Tensor& leaf = leaves[li];
    // Snapshot analytic grads: graph rebuilds below will not touch them, but
    // ZeroGrad between probes would.
    std::vector<float> analytic(leaf.grad().begin(), leaf.grad().end());
    if (analytic.empty()) analytic.assign(leaf.numel(), 0.0f);
    for (int64_t i = 0; i < leaf.numel(); ++i) {
      const float orig = leaf.at(i);
      leaf.set(i, orig + eps);
      const float fp = fn(leaves).item();
      leaf.set(i, orig - eps);
      const float fm = fn(leaves).item();
      leaf.set(i, orig);
      const float numeric = (fp - fm) / (2.0f * eps);
      EXPECT_NEAR(analytic[i], numeric, atol + rtol * std::fabs(numeric))
          << "leaf " << li << " element " << i;
    }
  }
}

}  // namespace testing
}  // namespace msgcl

#endif  // MSGCL_TESTS_TEST_UTIL_H_
