// Intra-model sharded scoring gate (DESIGN.md §14), label `shards`.
//
// The load-bearing contract is BIT parity: partitioning the item catalogue
// into S contiguous id-range shards, running the fused score→top-k per
// shard, and merging the per-shard lists under the repo total order must
// reproduce the unsharded ScoreTopKFused lists bit-for-bit — for SASRec and
// Meta-SGCL, at S ∈ {1, 2, 4}, at 1/2/7 threads, under the scalar and AVX2
// kernel dispatch. On top of that:
//   * the NaN-safe comparator regression (the old `a.score != b.score`
//     comparator makes NaN "equivalent" to everything, breaking strict weak
//     ordering — std::sort_heap UB — so this test FAILS pre-fix);
//   * NaN-aware RankOfTarget (a NaN target used to get rank 0, the best);
//   * MergeTopKLists unit tests and shard-partition validation;
//   * adversarial shard layouts: equal scores straddling a boundary, k
//     larger than a shard, an exclusion set wholly inside one shard, 1-item
//     shards;
//   * end-to-end wiring: MicroBatcher over a ShardedRanker (stateless and
//     session paths), slot-level sharding through SwappableRanker (hot swap
//     validates and flips all shards atomically), and fleet scatter-gather
//     over shard-owner groups with failover.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/core.h"
#include "data/batching.h"
#include "gtest/gtest.h"
#include "models/models.h"
#include "obs/registry.h"
#include "parallel/parallel.h"
#include "serve/serve.h"
#include "tensor/kernels.h"

namespace msgcl {
namespace serve {
namespace {

constexpr int32_t kItems = 30;
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Restores the ISA and thread count a test flipped.
class IsaThreadGuard {
 public:
  IsaThreadGuard() : isa_(simd::ActiveIsa()), threads_(parallel::MaxThreads()) {}
  ~IsaThreadGuard() {
    simd::SetIsa(isa_);
    parallel::SetNumThreads(threads_);
  }

 private:
  simd::Isa isa_;
  int threads_;
};

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig b;
  b.num_items = kItems;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 2;
  return b;
}

core::MetaSgclConfig TinyMetaSgcl() {
  core::MetaSgclConfig c;
  c.backbone = TinyBackbone();
  c.use_decoder = true;
  return c;
}

/// Deterministic synthetic history: items in [1, kItems].
std::vector<int32_t> MakeHistory(int64_t len, int64_t salt = 0) {
  std::vector<int32_t> h(static_cast<size_t>(len));
  for (int64_t i = 0; i < len; ++i) {
    h[static_cast<size_t>(i)] =
        static_cast<int32_t>((i * 7 + salt * 13 + 3) % kItems) + 1;
  }
  return h;
}

/// A small eval batch of `users` distinct synthetic histories.
data::Batch MakeBatch(int32_t users, int64_t max_len = 12) {
  std::vector<std::vector<int32_t>> inputs(static_cast<size_t>(users));
  std::vector<int32_t> rows(static_cast<size_t>(users));
  for (int32_t u = 0; u < users; ++u) {
    inputs[static_cast<size_t>(u)] = MakeHistory(4 + (u % 5), u);
    rows[static_cast<size_t>(u)] = u;
  }
  return data::MakeEvalBatch(inputs, rows, max_len);
}

::testing::AssertionResult ListsBitEqual(const eval::TopKList& a,
                                         const eval::TopKList& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].item != b[i].item ||
        std::memcmp(&a[i].score, &b[i].score, sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "entry " << i << ": (" << a[i].item << ", " << a[i].score
             << ") vs (" << b[i].item << ", " << b[i].score << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---- NaN-safe comparator (the satellite bugfix) -----------------------------

TEST(NaNComparatorTest, TotalOrderClassesNaNBelowEverything) {
  const eval::ScoredItem finite{5, 1.0f};
  const eval::ScoredItem low{7, -1.0e30f};
  const eval::ScoredItem pos_inf{3, kInf};
  const eval::ScoredItem neg_inf{9, -kInf};
  const eval::ScoredItem nan_a{2, kNaN};
  const eval::ScoredItem nan_b{6, kNaN};

  // Every non-NaN — including -inf — beats NaN, and never the reverse.
  for (const eval::ScoredItem& real : {finite, low, pos_inf, neg_inf}) {
    EXPECT_TRUE(eval::BetterScored(real, nan_a));
    EXPECT_FALSE(eval::BetterScored(nan_a, real));
  }
  // NaN vs NaN ties deterministically by id.
  EXPECT_TRUE(eval::BetterScored(nan_a, nan_b));
  EXPECT_FALSE(eval::BetterScored(nan_b, nan_a));
  // Finite ordering unchanged.
  EXPECT_TRUE(eval::BetterScored(pos_inf, finite));
  EXPECT_TRUE(eval::BetterScored(finite, low));
  EXPECT_TRUE(eval::BetterScored(low, neg_inf));
  // Irreflexive.
  EXPECT_FALSE(eval::BetterScored(nan_a, nan_a));
  EXPECT_FALSE(eval::BetterScored(finite, finite));
}

TEST(NaNComparatorTest, BoundedTopKTakeIsDeterministicWithNaNAndInf) {
  // Pre-fix, pushing NaNs through the heap violated strict weak ordering
  // (UB in sort_heap) and the output order was garbage; post-fix the order
  // is exact: +inf, finites descending, -inf, then NaNs by ascending id.
  eval::BoundedTopK sel(10);
  sel.Push(1, kNaN);
  sel.Push(2, 0.5f);
  sel.Push(3, kInf);
  sel.Push(4, kNaN);
  sel.Push(5, -kInf);
  sel.Push(6, 2.0f);
  sel.Push(7, kNaN);
  const eval::TopKList out = sel.Take();
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0].item, 3);  // +inf
  EXPECT_EQ(out[1].item, 6);  // 2.0
  EXPECT_EQ(out[2].item, 2);  // 0.5
  EXPECT_EQ(out[3].item, 5);  // -inf
  EXPECT_EQ(out[4].item, 1);  // NaN, id ascending
  EXPECT_EQ(out[5].item, 4);
  EXPECT_EQ(out[6].item, 7);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(), eval::BetterScored));
}

TEST(NaNComparatorTest, NaNFloodNeverDisplacesFiniteScores) {
  // More NaNs than k: the finite candidates must all survive and the NaNs
  // fill the remainder deterministically (smallest ids first).
  eval::BoundedTopK sel(3);
  for (int32_t i = 10; i < 20; ++i) sel.Push(i, kNaN);
  sel.Push(2, -5.0f);
  sel.Push(1, 1.0f);
  for (int32_t i = 20; i < 25; ++i) sel.Push(i, kNaN);
  const eval::TopKList out = sel.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].item, 1);
  EXPECT_EQ(out[1].item, 2);
  EXPECT_EQ(out[2].item, 10);  // best-id NaN holds the last slot
  EXPECT_TRUE(std::isnan(out[2].score));
}

TEST(NaNComparatorTest, RankOfTargetIsNaNAware) {
  // scores[0] is padding. Items: 1 -> 2.0, 2 -> NaN, 3 -> 0.5, 4 -> NaN.
  const std::vector<float> scores = {0.0f, 2.0f, kNaN, 0.5f, kNaN};
  // Finite target: NaN competitors do not count against it.
  EXPECT_EQ(eval::RankOfTarget(scores, 3), 1.0);  // only item 1 is above
  EXPECT_EQ(eval::RankOfTarget(scores, 1), 0.0);
  // NaN target: below every finite item, tied with the other NaN — it used
  // to get rank 0 (the best) because every comparison against NaN is false.
  const eval::RankResult r = eval::RankOfTargetDetailed(
      scores.data(), scores.size(), 2, eval::TiePolicy::kOptimistic);
  EXPECT_EQ(r.rank, 2.0);  // items 1 and 3 are above
  EXPECT_EQ(r.num_tied, 1);
  const eval::RankResult p = eval::RankOfTargetDetailed(
      scores.data(), scores.size(), 2, eval::TiePolicy::kPessimistic);
  EXPECT_EQ(p.rank, 3.0);
}

// ---- TopKOptions typed validation (the serve-path satellite) ----------------

TEST(TopKOptionsTest, ValidateRejectsMalformedOptions) {
  eval::TopKOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.k = 0;
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.k = -3;
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.k = 10;
  opt.num_items = -1;
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.num_items = kItems;
  opt.first_item = 10;
  opt.last_item = 5;  // inverted
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.last_item = kItems + 1;  // beyond the catalogue
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.first_item = 0;
  opt.last_item = 7;  // last without first
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.last_item = 0;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(TopKOptionsTest, ScoreTopKThrowsInsteadOfAborting) {
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  const data::Batch batch = MakeBatch(2);
  eval::TopKOptions opt;
  opt.k = 0;
  EXPECT_THROW(model.ScoreTopK(batch, opt), std::invalid_argument);
  opt.k = 5;
  opt.num_items = -7;
  EXPECT_THROW(model.ScoreTopK(batch, opt), std::invalid_argument);
}

// ---- MergeTopKLists ---------------------------------------------------------

TEST(MergeTopKTest, MergeEqualsSinglePassSelection) {
  // Three disjoint id ranges with interleaved scores; merging the per-range
  // top-k must equal one BoundedTopK pass over the union.
  std::vector<std::pair<int32_t, float>> all;
  for (int32_t i = 1; i <= 30; ++i) {
    all.push_back({i, static_cast<float>((i * 37) % 11) - 5.0f});
  }
  const int64_t k = 8;
  eval::BoundedTopK ref(k);
  std::vector<eval::BoundedTopK> parts;
  for (int s = 0; s < 3; ++s) parts.emplace_back(k);
  for (const auto& [item, score] : all) {
    ref.Push(item, score);
    parts[static_cast<size_t>((item - 1) / 10)].Push(item, score);
  }
  std::vector<eval::TopKList> lists;
  for (auto& p : parts) lists.push_back(p.Take());
  EXPECT_TRUE(ListsBitEqual(eval::MergeTopKLists(lists, k), ref.Take()));
}

TEST(MergeTopKTest, HandlesEmptyListsAndShortInputs) {
  const eval::TopKList a = {{1, 3.0f}, {4, 1.0f}};
  const eval::TopKList empty;
  const eval::TopKList b = {{2, 2.0f}};
  const eval::TopKList merged = eval::MergeTopKLists({a, empty, b}, 10);
  ASSERT_EQ(merged.size(), 3u);  // k > total: everything, still ordered
  EXPECT_EQ(merged[0].item, 1);
  EXPECT_EQ(merged[1].item, 2);
  EXPECT_EQ(merged[2].item, 4);
  EXPECT_TRUE(eval::MergeTopKLists(std::vector<eval::TopKList>{}, 5).empty());
  // Single list passes through unchanged.
  EXPECT_TRUE(ListsBitEqual(eval::MergeTopKLists({a}, 2), a));
}

// ---- Shard partition construction and validation ----------------------------

TEST(ItemShardTest, MakeItemShardsPartitionsTheCatalogue) {
  for (const int s : {1, 2, 4, 7, kItems}) {
    const std::vector<ItemShard> shards = MakeItemShards(kItems, s);
    ASSERT_EQ(static_cast<int>(shards.size()), s);
    ASSERT_TRUE(ValidateItemShards(shards, kItems).ok());
    EXPECT_TRUE(ShardsCoverCatalogue(shards, kItems));
    int32_t min_count = kItems, max_count = 0;
    for (const ItemShard& sh : shards) {
      min_count = std::min(min_count, sh.count());
      max_count = std::max(max_count, sh.count());
    }
    EXPECT_LE(max_count - min_count, 1);  // near-equal split
  }
  // More shards than items clamps to one id per shard.
  const std::vector<ItemShard> tiny = MakeItemShards(5, 9);
  ASSERT_EQ(tiny.size(), 5u);
  for (const ItemShard& sh : tiny) EXPECT_EQ(sh.count(), 1);
  EXPECT_TRUE(ShardsCoverCatalogue(tiny, 5));
}

TEST(ItemShardTest, ValidateRejectsMalformedShardTables) {
  EXPECT_EQ(ValidateItemShards({}, kItems).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ValidateItemShards({{5, 2}}, kItems).code(),
            Status::Code::kInvalidArgument);  // inverted
  EXPECT_EQ(ValidateItemShards({{1, 10}, {10, 20}}, kItems).code(),
            Status::Code::kInvalidArgument);  // overlap
  EXPECT_EQ(ValidateItemShards({{10, 20}, {1, 9}}, kItems).code(),
            Status::Code::kInvalidArgument);  // out of order
  EXPECT_EQ(ValidateItemShards({{1, kItems + 1}}, kItems).code(),
            Status::Code::kInvalidArgument);  // beyond catalogue
  // A subset (fleet partial ownership) is valid but not a cover.
  ASSERT_TRUE(ValidateItemShards({{3, 7}, {20, 25}}, kItems).ok());
  EXPECT_FALSE(ShardsCoverCatalogue({{3, 7}, {20, 25}}, kItems));
}

// ---- The tentpole parity gate ----------------------------------------------
//
// SASRec and Meta-SGCL, S ∈ {1, 2, 4} × 1/2/7 threads × scalar/AVX2: the
// sharded merge is bit-identical to unsharded ScoreTopKFused.

void CheckShardParity(eval::Ranker& model) {
  const data::Batch batch = MakeBatch(6);
  eval::TopKOptions opt;
  opt.k = 10;
  opt.exclude_seen = true;
  opt.num_items = kItems;
  const std::vector<eval::TopKList> ref = model.ScoreTopK(batch, opt);
  for (const int s : {1, 2, 4}) {
    ShardedRanker sharded(model, MakeItemShards(kItems, s));
    const std::vector<eval::TopKList> got = sharded.ScoreTopK(batch, opt);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t b = 0; b < ref.size(); ++b) {
      EXPECT_TRUE(ListsBitEqual(got[b], ref[b])) << "S=" << s << " row " << b;
    }
  }
}

TEST(ShardParityTest, SasRecBitIdenticalAcrossShardsThreadsAndIsa) {
  IsaThreadGuard guard;
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    if (isa == simd::Isa::kAvx2 && !simd::Avx2Supported()) continue;
    simd::SetIsa(isa);
    for (const int threads : {1, 2, 7}) {
      parallel::SetNumThreads(threads);
      models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
      model.SetTraining(false);
      CheckShardParity(model);
    }
  }
}

TEST(ShardParityTest, MetaSgclBitIdenticalAcrossShardsThreadsAndIsa) {
  IsaThreadGuard guard;
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    if (isa == simd::Isa::kAvx2 && !simd::Avx2Supported()) continue;
    simd::SetIsa(isa);
    for (const int threads : {1, 2, 7}) {
      parallel::SetNumThreads(threads);
      core::MetaSgcl model(TinyMetaSgcl(), models::TrainConfig{}, Rng(3));
      model.SetTraining(false);
      CheckShardParity(model);
    }
  }
}

TEST(ShardParityTest, SessionHiddenPathBitIdentical) {
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  eval::SessionState state;
  model.EncodeSession(MakeHistory(8), state);
  eval::TopKOptions opt;
  opt.k = 10;
  opt.num_items = kItems;
  const eval::TopKList ref = model.ScoreSessionHidden(state.h_last, 1, opt)[0];
  for (const int s : {1, 2, 4}) {
    ShardedRanker sharded(model, MakeItemShards(kItems, s));
    ASSERT_TRUE(sharded.session_supported());
    const eval::TopKList got =
        sharded.ScoreSessionHidden(state.h_last, 1, opt)[0];
    EXPECT_TRUE(ListsBitEqual(got, ref)) << "S=" << s;
  }
}

TEST(ShardParityTest, ShardedRankerRejectsPresetItemRange) {
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  ShardedRanker sharded(model, MakeItemShards(kItems, 2));
  eval::TopKOptions opt;
  opt.k = 5;
  opt.first_item = 1;
  opt.last_item = 10;
  EXPECT_THROW(sharded.ScoreTopK(MakeBatch(1), opt), std::invalid_argument);
}

// ---- Adversarial shard layouts (fixed, fully controlled scores) -------------

/// Ranker with an explicit score table, one row repeated for every batch
/// row — every tie and boundary below is constructed, not incidental.
class FixedRanker : public eval::Ranker {
 public:
  FixedRanker(int32_t num_items, std::vector<float> row)
      : num_items_(num_items), row_(std::move(row)) {
    MSGCL_CHECK_EQ(static_cast<int64_t>(row_.size()), num_items_ + 1);
  }

  std::string name() const override { return "Fixed"; }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    std::vector<float> out;
    out.reserve(static_cast<size_t>(batch.batch_size) * row_.size());
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      out.insert(out.end(), row_.begin(), row_.end());
    }
    return out;
  }

 private:
  int64_t num_items_;
  std::vector<float> row_;
};

data::Batch OneRowBatch() {
  const std::vector<std::vector<int32_t>> inputs = {{1, 2}};
  return data::MakeEvalBatch(inputs, {0}, 4);
}

void CheckFixedParity(FixedRanker& model, const std::vector<ItemShard>& shards,
                      const eval::TopKOptions& opt) {
  const data::Batch batch = OneRowBatch();
  const eval::TopKList ref = model.ScoreTopK(batch, opt)[0];
  ShardedRanker sharded(model, shards);
  const eval::TopKList got = sharded.ScoreTopK(batch, opt)[0];
  EXPECT_TRUE(ListsBitEqual(got, ref));
}

TEST(ShardAdversarialTest, EqualScoresStraddlingAShardBoundary) {
  // Items 4..7 all score 1.0 and the boundary splits them 4,5 | 6,7: the
  // merged list must break the tie by id across the boundary, exactly as
  // the unsharded selector does.
  std::vector<float> row(11, 0.0f);
  row[4] = row[5] = row[6] = row[7] = 1.0f;
  row[9] = 2.0f;
  FixedRanker model(10, row);
  eval::TopKOptions opt;
  opt.k = 4;
  opt.num_items = 10;
  CheckFixedParity(model, {{1, 5}, {6, 10}}, opt);
}

TEST(ShardAdversarialTest, KLargerThanOneShardsCandidateCount) {
  // k = 8 but the first shard holds only 3 ids: its whole list is consumed
  // and the remainder must come from the other shards.
  std::vector<float> row(11, 0.0f);
  for (int32_t i = 1; i <= 10; ++i) {
    row[static_cast<size_t>(i)] = static_cast<float>((i * 13) % 7);
  }
  FixedRanker model(10, row);
  eval::TopKOptions opt;
  opt.k = 8;
  opt.num_items = 10;
  CheckFixedParity(model, {{1, 3}, {4, 10}}, opt);
}

TEST(ShardAdversarialTest, ExclusionSetWhollyInsideOneShard) {
  // The exclusions empty out most of shard 1; parity must hold when a
  // shard contributes fewer than k candidates (or none).
  std::vector<float> row(11, 0.0f);
  for (int32_t i = 1; i <= 10; ++i) {
    row[static_cast<size_t>(i)] = static_cast<float>(10 - i);
  }
  FixedRanker model(10, row);
  const std::vector<std::vector<int32_t>> exclude = {{1, 2, 3, 4, 5}};
  eval::TopKOptions opt;
  opt.k = 4;
  opt.num_items = 10;
  opt.exclude = &exclude;
  CheckFixedParity(model, {{1, 5}, {6, 10}}, opt);
}

TEST(ShardAdversarialTest, OneItemShards) {
  // Every shard holds exactly one id — the merge IS the selection.
  std::vector<float> row(11, 0.0f);
  for (int32_t i = 1; i <= 10; ++i) {
    row[static_cast<size_t>(i)] = static_cast<float>((i * 29) % 5);
  }
  FixedRanker model(10, row);
  eval::TopKOptions opt;
  opt.k = 6;
  opt.num_items = 10;
  CheckFixedParity(model, MakeItemShards(10, 10), opt);
}

TEST(ShardAdversarialTest, NaNScoresStayExactAcrossTheMerge) {
  // NaN scores inside one shard: the NaN-safe total order keeps the merge
  // exact (NaNs sink below every finite item in both paths).
  std::vector<float> row(11, 0.0f);
  for (int32_t i = 1; i <= 10; ++i) {
    row[static_cast<size_t>(i)] = static_cast<float>(i % 4);
  }
  row[3] = row[8] = kNaN;
  FixedRanker model(10, row);
  eval::TopKOptions opt;
  opt.k = 10;
  opt.num_items = 10;
  CheckFixedParity(model, {{1, 4}, {5, 10}}, opt);
}

// ---- Serving wiring ---------------------------------------------------------

ServeConfig ShardServeConfig() {
  ServeConfig c;
  c.k = 10;
  c.max_len = 12;
  c.max_batch = 4;
  c.max_wait_us = 0;
  c.num_workers = 1;
  return c;
}

Result<Response> Serve(MicroBatcher& batcher, const std::vector<int32_t>& history,
                       uint64_t session_id = 0) {
  RecommendRequest req;
  req.history = history;
  req.session_id = session_id;
  return batcher.Submit(std::move(req)).get();
}

TEST(ShardServingTest, MicroBatcherOverShardedRankerBitEqualsUnsharded) {
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec twin(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  twin.SetTraining(false);
  ShardedRanker sharded(model, MakeItemShards(kItems, 4));
  MicroBatcher plain(twin, kItems, ShardServeConfig());
  MicroBatcher shard_batcher(sharded, kItems, ShardServeConfig());
  for (int64_t u = 0; u < 6; ++u) {
    const std::vector<int32_t> history = MakeHistory(5 + (u % 4), u);
    const Result<Response> a = Serve(plain, history);
    const Result<Response> b = Serve(shard_batcher, history);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_FALSE(b.value().degraded);
    EXPECT_TRUE(ListsBitEqual(b.value().topk, a.value().topk)) << "user " << u;
  }
  plain.Stop();
  shard_batcher.Stop();
}

TEST(ShardServingTest, SessionPathThroughShardedRankerBitEqualsUnsharded) {
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec twin(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  twin.SetTraining(false);
  ShardedRanker sharded(model, MakeItemShards(kItems, 2));
  SessionCache cache_a(64 << 20), cache_b(64 << 20);
  ServeConfig config = ShardServeConfig();
  config.max_batch = 1;
  ServeConfig config_a = config, config_b = config;
  config_a.session_cache = &cache_a;
  config_b.session_cache = &cache_b;
  MicroBatcher plain(twin, kItems, config_a);
  MicroBatcher shard_batcher(sharded, kItems, config_b);
  std::vector<int32_t> history = MakeHistory(6);
  for (int step = 0; step < 3; ++step) {
    const Result<Response> a = Serve(plain, history, /*session_id=*/42);
    const Result<Response> b = Serve(shard_batcher, history, /*session_id=*/42);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().session_warm, b.value().session_warm);
    EXPECT_TRUE(ListsBitEqual(b.value().topk, a.value().topk)) << "step " << step;
    history.push_back(static_cast<int32_t>(step + 2));
  }
  EXPECT_TRUE(Serve(shard_batcher, history, 42).value().session_warm);
  plain.Stop();
  shard_batcher.Stop();
}

TEST(ShardServingTest, TypedInvalidArgumentSurfacesThroughTheBatcher) {
  // A ShardedRanker given pre-set item-range options throws
  // std::invalid_argument from the scoring path; the batcher must convert
  // that into INVALID_ARGUMENT (not INTERNAL, not a degraded fallback).
  class BadOptRanker : public eval::Ranker {
   public:
    std::string name() const override { return "BadOpt"; }
    std::vector<float> ScoreAll(const data::Batch&) override {
      throw std::invalid_argument("num_items must be >= 0");
    }
  };
  BadOptRanker model;
  MicroBatcher batcher(model, kItems, ShardServeConfig());
  const Result<Response> r = Serve(batcher, MakeHistory(4));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  batcher.Stop();
}

TEST(ShardSwapTest, HotSwapFlipsAllShardsAtomicallyAndStaysExact) {
  // Slot-level sharding: each SwappableRanker slot holds a ShardedRanker
  // over its model, so the smoke score validates the sharded path and the
  // flip covers every shard as one unit. After the swap the served lists
  // must be bit-identical to the new weights scored unsharded.
  const models::BackboneConfig backbone = TinyBackbone();
  models::SasRec active(backbone, models::TrainConfig{}, Rng(3));
  models::SasRec standby(backbone, models::TrainConfig{}, Rng(4));
  models::SasRec rollout(backbone, models::TrainConfig{}, Rng(5));
  models::SasRec reference(backbone, models::TrainConfig{}, Rng(5));
  for (models::SasRec* m : {&active, &standby, &rollout, &reference}) {
    m->SetTraining(false);
  }
  ShardedRanker sharded_active(active, MakeItemShards(kItems, 4));
  ShardedRanker sharded_standby(standby, MakeItemShards(kItems, 4));
  SwapConfig swap_config;
  swap_config.k = 10;
  swap_config.max_len = backbone.max_len;
  SwappableRanker swapper(
      SwappableRanker::Slot{&active, &sharded_active},
      SwappableRanker::Slot{&standby, &sharded_standby}, kItems, swap_config);

  const data::Batch batch = MakeBatch(4);
  eval::TopKOptions opt;
  opt.k = 10;
  opt.exclude_seen = true;
  opt.num_items = kItems;
  // Pre-swap: the swap layer serves the sharded active slot exactly.
  EXPECT_TRUE(ListsBitEqual(swapper.ScoreTopK(batch, opt)[0],
                            active.ScoreTopK(batch, opt)[0]));

  const Status s = swapper.SwapFromModule(rollout);
  ASSERT_TRUE(s.ok()) << s.ToString();
  const std::vector<eval::TopKList> got = swapper.ScoreTopK(batch, opt);
  const std::vector<eval::TopKList> want = reference.ScoreTopK(batch, opt);
  for (size_t b = 0; b < want.size(); ++b) {
    EXPECT_TRUE(ListsBitEqual(got[b], want[b])) << "row " << b;
  }
}

TEST(ShardFleetTest, ScatterGatherOverShardOwnersIsExact) {
  // Two shard groups, each owned by one replica holding HALF the catalogue;
  // a third full-table model is the reference. The merged scatter-gather
  // response must be bit-identical to the reference's fused top-k.
  models::SasRec model_a(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec model_b(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec reference(TinyBackbone(), models::TrainConfig{}, Rng(3));
  for (models::SasRec* m : {&model_a, &model_b, &reference}) {
    m->SetTraining(false);
  }
  const std::vector<ItemShard> shards = MakeItemShards(kItems, 2);
  ShardedRanker owner_a(model_a, {shards[0]});
  ShardedRanker owner_b(model_b, {shards[1]});
  FleetConfig config;
  config.replicas = 2;
  config.serve = ShardServeConfig();
  config.shard_owners = {{0}, {1}};
  Router router({&owner_a, &owner_b}, kItems, config);

  for (uint64_t user = 1; user <= 5; ++user) {
    const std::vector<int32_t> history = MakeHistory(5 + (user % 3), user);
    RecommendRequest req;
    req.history = history;
    const Result<Response> r = router.SubmitSharded(user, std::move(req)).get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.value().degraded);
    // Reference: unsharded fused top-k over the same padded window.
    const std::vector<std::vector<int32_t>> inputs = {history};
    const data::Batch batch = data::MakeEvalBatch(inputs, {0}, 12);
    eval::TopKOptions opt;
    opt.k = config.serve.k;
    opt.exclude_seen = config.serve.exclude_seen;
    opt.num_items = kItems;
    const eval::TopKList want = reference.ScoreTopK(batch, opt)[0];
    EXPECT_TRUE(ListsBitEqual(r.value().topk, want)) << "user " << user;
  }
  router.Stop();
}

TEST(ShardFleetTest, GroupFailoverKeepsTheMergeExact) {
  // Group 0 has two interchangeable owners; killing one must fail over
  // inside the group and keep the merged result exact.
  models::SasRec model_a(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec model_a2(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec model_b(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec reference(TinyBackbone(), models::TrainConfig{}, Rng(3));
  for (models::SasRec* m : {&model_a, &model_a2, &model_b, &reference}) {
    m->SetTraining(false);
  }
  const std::vector<ItemShard> shards = MakeItemShards(kItems, 2);
  ShardedRanker owner_a(model_a, {shards[0]});
  ShardedRanker owner_a2(model_a2, {shards[0]});
  ShardedRanker owner_b(model_b, {shards[1]});
  FleetConfig config;
  config.replicas = 3;
  config.serve = ShardServeConfig();
  config.shard_owners = {{0, 1}, {2}};
  Router router({&owner_a, &owner_a2, &owner_b}, kItems, config);
  router.KillReplica(0);

  const std::vector<int32_t> history = MakeHistory(6);
  RecommendRequest req;
  req.history = history;
  const Result<Response> r = router.SubmitSharded(7, std::move(req)).get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().degraded);
  const std::vector<std::vector<int32_t>> inputs = {history};
  const data::Batch batch = data::MakeEvalBatch(inputs, {0}, 12);
  eval::TopKOptions opt;
  opt.k = config.serve.k;
  opt.exclude_seen = config.serve.exclude_seen;
  opt.num_items = kItems;
  EXPECT_TRUE(ListsBitEqual(r.value().topk,
                            reference.ScoreTopK(batch, opt)[0]));
  router.Stop();
}

TEST(ShardFleetTest, LostGroupFallsBackFleetWideNeverMergesPartials) {
  // Killing the SOLE owner of a group makes an exact merge impossible: the
  // router must serve the fleet-level popularity fallback (degraded), never
  // a merge of surviving partials or a half-table answer.
  models::SasRec model_a(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec model_b(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model_a.SetTraining(false);
  model_b.SetTraining(false);
  const std::vector<ItemShard> shards = MakeItemShards(kItems, 2);
  ShardedRanker owner_a(model_a, {shards[0]});
  ShardedRanker owner_b(model_b, {shards[1]});

  const std::vector<std::vector<int32_t>> train = {{1, 2, 3}, {2, 3, 4}};
  const FallbackRanker fallback = FallbackRanker::FromSequences(train, kItems);
  FleetConfig config;
  config.replicas = 2;
  config.serve = ShardServeConfig();
  config.shard_owners = {{0}, {1}};
  config.fallback = &fallback;
  Router router({&owner_a, &owner_b}, kItems, config);
  router.KillReplica(1);

  RecommendRequest req;
  req.history = MakeHistory(5);
  const Result<Response> r = router.SubmitSharded(3, std::move(req)).get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);

  // Without a fleet fallback the request fails UNAVAILABLE instead.
  FleetConfig bare = config;
  bare.fallback = nullptr;
  models::SasRec model_c(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec model_d(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model_c.SetTraining(false);
  model_d.SetTraining(false);
  ShardedRanker owner_c(model_c, {shards[0]});
  ShardedRanker owner_d(model_d, {shards[1]});
  Router bare_router({&owner_c, &owner_d}, kItems, bare);
  bare_router.KillReplica(0);
  RecommendRequest req2;
  req2.history = MakeHistory(5);
  const Result<Response> r2 = bare_router.SubmitSharded(3, std::move(req2)).get();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), Status::Code::kUnavailable);
  router.Stop();
  bare_router.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace msgcl
