// Tests for the fault-tolerant training runtime: numeric-health scans, the
// deterministic fault injector, the detect->rollback->backoff->abort recovery
// paths in FitLoop, optimizer state snapshots, and v2 resumable checkpoints
// (round-trip, CRC rejection of truncation/bit-flips, bit-exact resume).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "data/data.h"
#include "gtest/gtest.h"
#include "models/models.h"
#include "nn/nn.h"
#include "obs/obs.h"
#include "runtime/runtime.h"

namespace msgcl {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

data::SequenceDataset TinySplit(uint64_t seed = 7) {
  auto log = data::GenerateSynthetic(data::TinyDataset(seed)).value();
  return data::LeaveOneOutSplit(log);
}

models::BackboneConfig TinyBackbone(const data::SequenceDataset& ds) {
  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  b.dropout = 0.1f;
  return b;
}

models::TrainConfig QuickTrain(int64_t epochs = 3) {
  models::TrainConfig t;
  t.epochs = epochs;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  t.seed = 99;
  return t;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) { return std::ifstream(path).good(); }

// ---------- nn::AllFinite ----------

TEST(NumericTest, VectorScan) {
  EXPECT_TRUE(nn::AllFinite(std::vector<float>{}));
  EXPECT_TRUE(nn::AllFinite(std::vector<float>{1.0f, -2.5f, 0.0f}));
  EXPECT_FALSE(nn::AllFinite(std::vector<float>{1.0f, kNaN}));
  EXPECT_FALSE(nn::AllFinite(std::vector<float>{kInf, 0.0f}));
  EXPECT_FALSE(nn::AllFinite(std::vector<float>{-kInf}));
}

TEST(NumericTest, OverflowingSumOfFiniteValuesIsNotAFalsePositive) {
  // The fast path sums the buffer; 3e38 + 3e38 overflows to Inf even though
  // every element is finite. The slow path must rescue this case.
  std::vector<float> big(8, 3e38f);
  EXPECT_TRUE(nn::AllFinite(big));
  big[5] = kNaN;
  EXPECT_FALSE(nn::AllFinite(big));
}

TEST(NumericTest, ParamAndGradScans) {
  Tensor a = Tensor::Full({4}, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Full({3}, 2.0f, /*requires_grad=*/true);
  std::vector<Tensor> params = {a, b};
  EXPECT_TRUE(nn::AllFinite(params));
  EXPECT_TRUE(nn::AllGradsFinite(params));  // empty grads pass

  b.mutable_grad().assign(3, 0.5f);
  EXPECT_TRUE(nn::AllGradsFinite(params));
  b.mutable_grad()[1] = kNaN;
  EXPECT_FALSE(nn::AllGradsFinite(params));
  EXPECT_TRUE(nn::AllFinite(params));  // data still clean

  a.data()[2] = kInf;
  EXPECT_FALSE(nn::AllFinite(params));
}

// ---------- runtime::FaultInjector ----------

TEST(FaultInjectorTest, StepSelection) {
  runtime::FaultPlan plan;
  plan.corrupt_grad_steps = {2, 5};
  plan.corrupt_loss_steps = {3};
  runtime::FaultInjector inj(plan);
  EXPECT_TRUE(inj.ShouldCorruptGradients(2));
  EXPECT_TRUE(inj.ShouldCorruptGradients(5));
  EXPECT_FALSE(inj.ShouldCorruptGradients(3));
  EXPECT_TRUE(inj.ShouldCorruptLoss(3));
  EXPECT_FALSE(inj.ShouldCorruptLoss(2));
}

TEST(FaultInjectorTest, GradientCorruptionIsDeterministic) {
  runtime::FaultPlan plan;
  plan.corrupt_grad_steps = {0};
  plan.grad_fraction = 0.1;
  plan.seed = 42;

  auto poison = [&plan]() {
    Tensor t = Tensor::Zeros({64}, /*requires_grad=*/true);
    t.mutable_grad().assign(64, 1.0f);
    runtime::FaultInjector inj(plan);
    inj.CorruptGradients({t});
    return t.grad();
  };
  auto g1 = poison();
  auto g2 = poison();
  ASSERT_EQ(g1.size(), g2.size());
  int64_t poisoned = 0;
  for (size_t i = 0; i < g1.size(); ++i) {
    EXPECT_EQ(std::isnan(g1[i]), std::isnan(g2[i])) << "index " << i;
    if (std::isnan(g1[i])) ++poisoned;
  }
  EXPECT_GE(poisoned, 1);
}

TEST(FaultInjectorTest, FaultKindsProduceTheAdvertisedValues) {
  runtime::FaultPlan plan;
  plan.kind = runtime::FaultKind::kNaN;
  EXPECT_TRUE(std::isnan(runtime::FaultInjector(plan).CorruptLoss()));
  plan.kind = runtime::FaultKind::kInf;
  EXPECT_TRUE(std::isinf(runtime::FaultInjector(plan).CorruptLoss()));
  plan.kind = runtime::FaultKind::kHugeValue;
  const float huge = runtime::FaultInjector(plan).CorruptLoss();
  EXPECT_TRUE(std::isfinite(huge));
  EXPECT_GT(huge, 1e29f);
}

TEST(FaultInjectorTest, MalformedCsvRowsAreAllRejectedByTheLoader) {
  runtime::FaultInjector inj(runtime::FaultPlan{});
  for (const std::string& row : inj.MalformedCsvRows()) {
    std::istringstream in(row + "\n");
    auto result = data::ParseCsvEvents(in, data::CsvOptions{});
    EXPECT_FALSE(result.ok()) << "loader accepted malformed row: " << row;
  }
}

// ---------- nn::OptimizerState ----------

TEST(OptimizerStateTest, AdamRoundTripRestoresMomentsStepAndLr) {
  Rng rng(3);
  Tensor p = Tensor::Randn({8}, rng, 0.1f, /*requires_grad=*/true);
  nn::Adam opt({p}, /*lr=*/1e-2f);

  p.mutable_grad().assign(8, 0.25f);
  opt.Step();
  const nn::OptimizerState snap = opt.GetState();
  const std::vector<float> weights = p.ToVector();

  // Diverge: more steps and an lr change.
  opt.set_lr(5e-3f);
  opt.Step();
  opt.Step();
  ASSERT_NE(p.ToVector(), weights);

  ASSERT_TRUE(opt.SetState(snap));
  p.data().assign(weights.begin(), weights.end());
  EXPECT_EQ(opt.lr(), 1e-2f);

  // Re-running the same step from the restored state reproduces the same
  // trajectory as a fresh optimizer that took identical steps.
  opt.Step();
  const std::vector<float> replay = p.ToVector();

  Tensor q = Tensor::FromVector({8}, weights, /*requires_grad=*/true);
  nn::Adam fresh({q}, 1e-2f);
  ASSERT_TRUE(fresh.SetState(snap));
  q.mutable_grad().assign(8, 0.25f);
  fresh.Step();
  EXPECT_EQ(replay, q.ToVector());
}

TEST(OptimizerStateTest, AdamRejectsStructurallyIncompatibleState) {
  Tensor p = Tensor::Zeros({4}, /*requires_grad=*/true);
  nn::Adam opt({p}, 1e-3f);
  nn::OptimizerState bad = opt.GetState();
  bad.slots.pop_back();
  EXPECT_FALSE(opt.SetState(bad));
  nn::OptimizerState wrong_size = opt.GetState();
  wrong_size.slots[0].resize(3);
  EXPECT_FALSE(opt.SetState(wrong_size));
}

TEST(OptimizerStateTest, SgdCarriesOnlyLr) {
  Tensor p = Tensor::Zeros({4}, /*requires_grad=*/true);
  nn::Sgd opt({p}, 0.5f);
  nn::OptimizerState s = opt.GetState();
  EXPECT_TRUE(s.slots.empty());
  EXPECT_EQ(s.lr, 0.5f);
  opt.set_lr(0.1f);
  ASSERT_TRUE(opt.SetState(s));
  EXPECT_EQ(opt.lr(), 0.5f);
}

// ---------- recovery paths in FitLoop ----------

TEST(RecoveryTest, RollbackRetrySurvivesInjectedNaNGradient) {
  auto ds = TinySplit();
  runtime::FaultPlan plan;
  plan.corrupt_grad_steps = {4};
  plan.kind = runtime::FaultKind::kNaN;
  runtime::FaultInjector injector(plan);

  models::FitHistory history;
  models::TrainConfig train = QuickTrain(3);
  train.fault_injector = &injector;
  train.history = &history;
  train.recovery.policy = runtime::RecoveryPolicy::kRollbackRetry;
  train.recovery.max_retries = 3;

  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(injector.injected_faults(), 1);
  EXPECT_TRUE(nn::AllFinite(model.Parameters()));
  EXPECT_GE(history.rollback_retries, 1);
  ASSERT_FALSE(history.recovery_events.empty());
  const auto& e = history.recovery_events.front();
  EXPECT_FALSE(e.skipped);
  EXPECT_GE(e.retries, 1);
  // The model still produces finite scores after recovery.
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  for (float score : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(score));
}

TEST(RecoveryTest, SkipBatchAbandonsThePoisonedBatch) {
  auto ds = TinySplit();
  runtime::FaultPlan plan;
  plan.corrupt_loss_steps = {2};
  runtime::FaultInjector injector(plan);

  models::FitHistory history;
  models::TrainConfig train = QuickTrain(3);
  train.fault_injector = &injector;
  train.history = &history;
  train.recovery.policy = runtime::RecoveryPolicy::kSkipBatch;

  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(history.skipped_batches, 1);
  ASSERT_EQ(history.recovery_events.size(), 1u);
  EXPECT_TRUE(history.recovery_events[0].skipped);
  EXPECT_TRUE(nn::AllFinite(model.Parameters()));
}

TEST(RecoveryTest, AbortPolicyFailsFastWithInternal) {
  auto ds = TinySplit();
  runtime::FaultPlan plan;
  plan.corrupt_loss_steps = {1};
  runtime::FaultInjector injector(plan);

  models::TrainConfig train = QuickTrain(3);
  train.fault_injector = &injector;
  train.recovery.policy = runtime::RecoveryPolicy::kAbort;

  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInternal);
}

TEST(RecoveryTest, ExhaustedRetriesReturnInternal) {
  auto ds = TinySplit();
  // Attempts (including retries) advance the loss-fault counter, so a run of
  // consecutive poisoned attempts defeats max_retries = 2.
  runtime::FaultPlan plan;
  plan.corrupt_loss_steps = {2, 3, 4};
  runtime::FaultInjector injector(plan);

  models::FitHistory history;
  models::TrainConfig train = QuickTrain(3);
  train.fault_injector = &injector;
  train.history = &history;
  train.recovery.policy = runtime::RecoveryPolicy::kRollbackRetry;
  train.recovery.max_retries = 2;

  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInternal);
  EXPECT_EQ(history.rollback_retries, 2);
}

TEST(RecoveryTest, InvalidRecoveryConfigIsRejectedUpFront) {
  auto ds = TinySplit();
  models::TrainConfig train = QuickTrain(1);
  train.recovery.lr_decay = 1.5f;
  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  EXPECT_EQ(model.Fit(ds).code(), Status::Code::kInvalidArgument);
}

// ---------- v2 train state: round-trip and corruption rejection ----------

TEST(TrainStateTest, RoundTripRestoresEverything) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_roundtrip.state");

  models::SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(5));
  nn::Adam opt(model.Parameters(), 2e-3f);

  // Give the optimizer non-trivial moments.
  auto params = model.Parameters();
  for (auto& p : params) p.mutable_grad().assign(p.numel(), 0.01f);
  opt.Step();

  nn::TrainerProgress saved;
  saved.epoch = 4;
  Rng stream(123);
  stream.NextU64();
  saved.rng = stream.GetState();
  saved.best_ndcg = 0.375;
  saved.best_epoch = 2;
  saved.bad_evals = 1;
  for (auto& p : params) saved.best_weights.push_back(p.ToVector());

  ASSERT_TRUE(nn::SaveTrainState(model, {&opt}, saved, path).ok());

  const std::vector<std::vector<float>> want_weights = [&] {
    std::vector<std::vector<float>> w;
    for (auto& p : params) w.push_back(p.ToVector());
    return w;
  }();
  const nn::OptimizerState want_opt = opt.GetState();

  // Diverge, then restore.
  for (auto& p : params) p.mutable_grad().assign(p.numel(), 0.2f);
  opt.Step();
  opt.set_lr(9e-4f);

  nn::TrainerProgress loaded;
  ASSERT_TRUE(nn::LoadTrainState(model, {&opt}, &loaded, path).ok());

  for (size_t i = 0; i < params.size(); ++i) EXPECT_EQ(params[i].ToVector(), want_weights[i]);
  const nn::OptimizerState got_opt = opt.GetState();
  EXPECT_EQ(got_opt.slots, want_opt.slots);
  EXPECT_EQ(got_opt.step_count, want_opt.step_count);
  EXPECT_EQ(got_opt.lr, want_opt.lr);

  EXPECT_EQ(loaded.epoch, 4);
  EXPECT_EQ(loaded.best_ndcg, 0.375);
  EXPECT_EQ(loaded.best_epoch, 2);
  EXPECT_EQ(loaded.bad_evals, 1);
  ASSERT_EQ(loaded.best_weights.size(), want_weights.size());
  for (size_t i = 0; i < want_weights.size(); ++i) {
    EXPECT_EQ(loaded.best_weights[i], want_weights[i]);
  }
  // The restored RNG continues the saved stream exactly.
  Rng resumed(0);
  resumed.SetState(loaded.rng);
  EXPECT_EQ(resumed.NextU64(), stream.NextU64());

  std::remove(path.c_str());
}

TEST(TrainStateTest, AtomicWriteLeavesNoTmpFile) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_atomic.state");
  models::SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(5));
  nn::Adam opt(model.Parameters(), 1e-3f);
  ASSERT_TRUE(nn::SaveTrainState(model, {&opt}, nn::TrainerProgress{}, path).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(TrainStateTest, TruncationAtEveryLayerIsRejectedNotCrashed) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_trunc.state");
  const std::string mangled = TempPath("runtime_trunc_mangled.state");

  models::SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(5));
  nn::Adam opt(model.Parameters(), 1e-3f);
  ASSERT_TRUE(nn::SaveTrainState(model, {&opt}, nn::TrainerProgress{}, path).ok());

  std::string image;
  ASSERT_TRUE(nn::internal::ReadFileImage(path, &image).ok());
  const uint64_t size = image.size();

  // Sweep cut points across the whole file: headers, entry table, optimizer
  // section, progress section, and the CRC footer itself.
  std::vector<uint64_t> cuts = {0, 1, 5, size / 7, size / 3, size / 2,
                                size - 5, size - 4, size - 1};
  for (uint64_t i = 8; i < 160 && i < size; i += 13) cuts.push_back(i);
  for (uint64_t keep : cuts) {
    {
      std::ofstream out(mangled, std::ios::binary | std::ios::trunc);
      out.write(image.data(), static_cast<std::streamsize>(keep));
    }
    models::SasRec victim(TinyBackbone(ds), QuickTrain(1), Rng(5));
    nn::Adam vopt(victim.Parameters(), 1e-3f);
    nn::TrainerProgress progress;
    Status s = nn::LoadTrainState(victim, {&vopt}, &progress, mangled);
    EXPECT_FALSE(s.ok()) << "accepted a checkpoint truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST(TrainStateTest, BitFlipAnywhereFailsTheCrc) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_bitflip.state");
  models::SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(5));
  nn::Adam opt(model.Parameters(), 1e-3f);
  ASSERT_TRUE(nn::SaveTrainState(model, {&opt}, nn::TrainerProgress{}, path).ok());

  runtime::FaultInjector injector(runtime::FaultPlan{});
  // Skip the magic so the flip lands in real payload, forcing the CRC (not
  // the magic check) to do the rejecting.
  ASSERT_TRUE(injector.BitFlipFile(path, /*num_flips=*/1, /*skip_prefix=*/16).ok());

  models::SasRec victim(TinyBackbone(ds), QuickTrain(1), Rng(5));
  nn::Adam vopt(victim.Parameters(), 1e-3f);
  const std::vector<std::vector<float>> before = [&] {
    std::vector<std::vector<float>> w;
    for (auto& p : victim.Parameters()) w.push_back(p.ToVector());
    return w;
  }();
  Status s = nn::LoadTrainState(victim, {&vopt}, nullptr, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  // No silent partial load: the victim's weights are untouched.
  auto params = victim.Parameters();
  for (size_t i = 0; i < params.size(); ++i) EXPECT_EQ(params[i].ToVector(), before[i]);
  std::remove(path.c_str());
}

TEST(TrainStateTest, OptimizerCountMismatchIsRejected) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_optcount.state");
  models::SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(5));
  nn::Adam opt(model.Parameters(), 1e-3f);
  ASSERT_TRUE(nn::SaveTrainState(model, {&opt}, nn::TrainerProgress{}, path).ok());
  EXPECT_FALSE(nn::LoadTrainState(model, {}, nullptr, path).ok());
  nn::Adam extra(model.Parameters(), 1e-3f);
  EXPECT_FALSE(nn::LoadTrainState(model, {&opt, &extra}, nullptr, path).ok());
  std::remove(path.c_str());
}

// ---------- v1 checkpoint hardening against hostile headers ----------

TEST(CheckpointHardeningTest, HostileHeadersAreRejected) {
  Rng rng(2);
  nn::Linear module(4, 4, rng);
  const std::string path = TempPath("runtime_hostile.ckpt");

  auto write_image = [&path](const nn::internal::ByteWriter& w) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(w.buffer().data(), static_cast<std::streamsize>(w.buffer().size()));
  };
  auto header = [] {
    nn::internal::ByteWriter w;
    w.Bytes(nn::internal::kCkptMagic, sizeof(nn::internal::kCkptMagic));
    w.Pod(nn::internal::kCkptVersion);
    return w;
  };

  {  // Entry count far beyond any real checkpoint: reject before allocating.
    auto w = header();
    w.Pod(uint64_t{1} << 60);
    write_image(w);
    EXPECT_FALSE(nn::LoadCheckpoint(module, path).ok());
  }
  {  // Hostile name length.
    auto w = header();
    w.Pod(uint64_t{2});  // matches the module's two parameters
    w.Pod(uint32_t{0xFFFFFFFF});
    write_image(w);
    EXPECT_FALSE(nn::LoadCheckpoint(module, path).ok());
  }
  {  // Negative dimension.
    auto w = header();
    w.Pod(uint64_t{2});
    const std::string name = "weight";
    w.Pod(static_cast<uint32_t>(name.size()));
    w.Bytes(name.data(), name.size());
    w.Pod(uint32_t{2});
    w.Pod(int64_t{-4});
    w.Pod(int64_t{4});
    write_image(w);
    EXPECT_FALSE(nn::LoadCheckpoint(module, path).ok());
  }
  {  // Element-count overflow via huge (positive) dims.
    auto w = header();
    w.Pod(uint64_t{2});
    const std::string name = "weight";
    w.Pod(static_cast<uint32_t>(name.size()));
    w.Bytes(name.data(), name.size());
    w.Pod(uint32_t{2});
    w.Pod(int64_t{1} << 40);
    w.Pod(int64_t{1} << 40);
    write_image(w);
    EXPECT_FALSE(nn::LoadCheckpoint(module, path).ok());
  }
  {  // Implausible rank.
    auto w = header();
    w.Pod(uint64_t{2});
    const std::string name = "weight";
    w.Pod(static_cast<uint32_t>(name.size()));
    w.Bytes(name.data(), name.size());
    w.Pod(uint32_t{1000});
    write_image(w);
    EXPECT_FALSE(nn::LoadCheckpoint(module, path).ok());
  }
  std::remove(path.c_str());
}

// ---------- kill + resume == uninterrupted ----------

// Trains a SasRec through FitLoop with the given config and returns its
// final parameter buffers.
std::vector<std::vector<float>> TrainedWeights(const data::SequenceDataset& ds,
                                               const models::TrainConfig& train,
                                               Status* status = nullptr) {
  models::SasRec model(TinyBackbone(ds), train, Rng(11));
  Status s = model.Fit(ds);
  if (status != nullptr) *status = s;
  std::vector<std::vector<float>> w;
  for (auto& p : model.Parameters()) w.push_back(p.ToVector());
  return w;
}

TEST(ResumeTest, ResumedRunIsBitwiseIdenticalToUninterrupted) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_resume.state");

  models::TrainConfig full = QuickTrain(4);
  Status s;
  const auto uninterrupted = TrainedWeights(ds, full, &s);
  ASSERT_TRUE(s.ok());

  models::TrainConfig leg1 = QuickTrain(4);
  leg1.epochs = 2;  // the run "dies" after epoch 2
  leg1.checkpoint_path = path;
  (void)TrainedWeights(ds, leg1, &s);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(FileExists(path));

  models::TrainConfig leg2 = QuickTrain(4);
  leg2.resume_from = path;
  models::FitHistory history;
  leg2.history = &history;
  const auto resumed = TrainedWeights(ds, leg2, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(history.resumed_from_epoch, 1);  // last completed epoch of leg 1

  ASSERT_EQ(resumed.size(), uninterrupted.size());
  for (size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i], uninterrupted[i]) << "parameter " << i << " diverged";
  }
  std::remove(path.c_str());
}

TEST(ResumeTest, ResumeReplaysEarlyStoppingBookkeepingBitExactly) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_resume_eval.state");

  models::TrainConfig full = QuickTrain(6);
  full.eval_every = 2;
  full.patience = 10;  // keep all 6 epochs running
  Status s;
  const auto uninterrupted = TrainedWeights(ds, full, &s);
  ASSERT_TRUE(s.ok());

  models::TrainConfig leg1 = full;
  leg1.epochs = 3;  // dies between evals, with best-weight state pending
  leg1.checkpoint_path = path;
  (void)TrainedWeights(ds, leg1, &s);
  ASSERT_TRUE(s.ok());

  models::TrainConfig leg2 = full;
  leg2.resume_from = path;
  const auto resumed = TrainedWeights(ds, leg2, &s);
  ASSERT_TRUE(s.ok());

  ASSERT_EQ(resumed.size(), uninterrupted.size());
  for (size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i], uninterrupted[i]) << "parameter " << i << " diverged";
  }
  std::remove(path.c_str());
}

TEST(ResumeTest, MissingResumeFileFailsTheRun) {
  auto ds = TinySplit();
  models::TrainConfig train = QuickTrain(2);
  train.resume_from = TempPath("runtime_no_such.state");
  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

TEST(ResumeTest, TruncatedResumeFileFailsTheRunWithoutCrashing) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_resume_trunc.state");

  models::TrainConfig leg1 = QuickTrain(2);
  leg1.checkpoint_path = path;
  Status s;
  (void)TrainedWeights(ds, leg1, &s);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(runtime::FaultInjector::TruncateFile(path, 100).ok());

  models::TrainConfig leg2 = QuickTrain(4);
  leg2.resume_from = path;
  models::SasRec model(TinyBackbone(ds), leg2, Rng(1));
  EXPECT_FALSE(model.Fit(ds).ok());
  std::remove(path.c_str());
}

// ---------- Observability counters (DESIGN.md §8) ----------
//
// The runtime counters are registered directly (not via the gated macros),
// so these drills hold in MSGCL_OBS=OFF builds too. Deltas, not absolute
// values, so the tests are robust to other tests sharing the process.

int64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetCounter(name).value();
}

TEST(ObsCountersTest, RollbackDrillCountsRetriesRecoveriesAndFaults) {
  const int64_t retries0 = CounterValue("runtime.recovery.retries");
  const int64_t rollbacks0 = CounterValue("runtime.recovery.rollbacks");
  const int64_t recovered0 = CounterValue("runtime.recovery.recovered");
  const int64_t faults0 = CounterValue("runtime.faults.injected");

  auto ds = TinySplit();
  runtime::FaultPlan plan;
  plan.corrupt_grad_steps = {4};
  plan.kind = runtime::FaultKind::kNaN;
  runtime::FaultInjector injector(plan);

  models::FitHistory history;
  models::TrainConfig train = QuickTrain(3);
  train.fault_injector = &injector;
  train.history = &history;
  train.recovery.policy = runtime::RecoveryPolicy::kRollbackRetry;
  train.recovery.max_retries = 3;

  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Counters agree with the FitHistory trace and the injector's own count.
  EXPECT_EQ(CounterValue("runtime.recovery.retries") - retries0,
            history.rollback_retries);
  EXPECT_GE(CounterValue("runtime.recovery.rollbacks") - rollbacks0,
            history.rollback_retries);
  EXPECT_GE(CounterValue("runtime.recovery.recovered") - recovered0, 1);
  EXPECT_EQ(CounterValue("runtime.faults.injected") - faults0,
            injector.injected_faults());
}

TEST(ObsCountersTest, SkipBatchDrillCountsSkippedBatches) {
  const int64_t skipped0 = CounterValue("runtime.recovery.skipped_batches");
  const int64_t faults0 = CounterValue("runtime.faults.injected");

  auto ds = TinySplit();
  runtime::FaultPlan plan;
  plan.corrupt_loss_steps = {2};
  runtime::FaultInjector injector(plan);

  models::FitHistory history;
  models::TrainConfig train = QuickTrain(3);
  train.fault_injector = &injector;
  train.history = &history;
  train.recovery.policy = runtime::RecoveryPolicy::kSkipBatch;

  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(CounterValue("runtime.recovery.skipped_batches") - skipped0,
            history.skipped_batches);
  EXPECT_EQ(CounterValue("runtime.faults.injected") - faults0,
            injector.injected_faults());
}

TEST(ObsCountersTest, CheckpointingCountsSavesAndBytes) {
  const int64_t saves0 = CounterValue("runtime.checkpoint.saves");
  const int64_t bytes0 = CounterValue("runtime.checkpoint.bytes");

  auto ds = TinySplit();
  const std::string path = TempPath("runtime_ckpt_counters.state");
  models::TrainConfig train = QuickTrain(2);
  train.checkpoint_path = path;
  train.checkpoint_every = 1;

  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(FileExists(path));

  // One save per epoch; bytes track the serialized train state on disk.
  EXPECT_EQ(CounterValue("runtime.checkpoint.saves") - saves0, train.epochs);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const int64_t file_size = static_cast<int64_t>(in.tellg());
  EXPECT_GE(CounterValue("runtime.checkpoint.bytes") - bytes0, file_size);
  EXPECT_GT(file_size, 0);
  std::remove(path.c_str());
}

TEST(ObsCountersTest, UnwritableCheckpointPathIsNonFatalAndCounted) {
  // Fault drill: checkpoint saves to an unwritable path fail every epoch, but
  // training must finish OK — a flaky checkpoint disk must not kill the run.
  // Each epoch makes two attempts (initial + one retry), so the counter
  // advances by exactly 2 * epochs while `saves` does not move.
  const int64_t failures0 = CounterValue("runtime.checkpoint.save_failures");
  const int64_t saves0 = CounterValue("runtime.checkpoint.saves");

  auto ds = TinySplit();
  models::TrainConfig train = QuickTrain(2);
  train.checkpoint_path = "/nonexistent-msgcl-dir/ck.state";
  train.checkpoint_every = 1;

  models::SasRec model(TinyBackbone(ds), train, Rng(1));
  Status s = model.Fit(ds);
  ASSERT_TRUE(s.ok()) << s.ToString();

  EXPECT_EQ(CounterValue("runtime.checkpoint.save_failures") - failures0,
            2 * train.epochs);
  EXPECT_EQ(CounterValue("runtime.checkpoint.saves") - saves0, 0);
}

TEST(ObsCountersTest, TelemetryCsvSurvivesResumeWithoutDuplicationOrGaps) {
  auto ds = TinySplit();
  const std::string state = TempPath("runtime_resume_telemetry.state");
  const std::string csv = TempPath("runtime_resume_telemetry.csv");
  std::remove(csv.c_str());

  models::TrainConfig leg1 = QuickTrain(4);
  leg1.epochs = 2;  // the run "dies" after epoch 2
  leg1.checkpoint_path = state;
  leg1.telemetry_path = csv;
  Status s;
  (void)TrainedWeights(ds, leg1, &s);
  ASSERT_TRUE(s.ok());

  models::TrainConfig leg2 = QuickTrain(4);
  leg2.resume_from = state;
  leg2.telemetry_path = csv;
  (void)TrainedWeights(ds, leg2, &s);
  ASSERT_TRUE(s.ok());

  // Exactly one header and one row per epoch 0..3, in order: the resumed run
  // appended rows 2..3 without duplicating or re-writing leg 1's rows.
  std::ifstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("epoch,", 0), 0u) << "first line must be the header";
  std::vector<int64_t> epochs;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    epochs.push_back(std::stoll(line.substr(0, line.find(','))));
  }
  ASSERT_EQ(epochs.size(), 4u);
  for (int64_t e = 0; e < 4; ++e) EXPECT_EQ(epochs[e], e);
  std::remove(state.c_str());
  std::remove(csv.c_str());
}

// ---------- v2 checkpoint corruption surface (table-driven) ----------

// Every way a checkpoint file can rot on disk must surface as a typed error
// (never a crash) and leave the in-memory model and optimizer bit-for-bit
// untouched. The named cases cover the on-disk failure modes the WAL/online
// loop can produce: truncation (torn copy), a flipped byte in the CRC footer
// itself, and a short read that cuts the file mid-header.
TEST(TrainStateTest, CorruptionSurfaceIsTypedAndNonDestructive) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_surface.state");
  const std::string mangled = TempPath("runtime_surface_mangled.state");
  models::SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(5));
  nn::Adam opt(model.Parameters(), 1e-3f);
  ASSERT_TRUE(nn::SaveTrainState(model, {&opt}, nn::TrainerProgress{}, path).ok());
  std::string image;
  ASSERT_TRUE(nn::internal::ReadFileImage(path, &image).ok());

  struct Case {
    const char* name;
    std::function<std::string(std::string)> mangle;
  };
  const std::vector<Case> cases = {
      {"truncated file (half)",
       [](std::string img) { return img.substr(0, img.size() / 2); }},
      {"truncated to empty", [](std::string) { return std::string(); }},
      {"flipped CRC footer byte",
       [](std::string img) {
         img[img.size() - 2] = static_cast<char>(img[img.size() - 2] ^ 0xFF);
         return img;
       }},
      {"short read mid-header (8 bytes)",
       [](std::string img) { return img.substr(0, 8); }},
      {"short read inside the magic (3 bytes)",
       [](std::string img) { return img.substr(0, 3); }},
  };

  for (const Case& c : cases) {
    {
      const std::string bad = c.mangle(image);
      std::ofstream out(mangled, std::ios::binary | std::ios::trunc);
      out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    models::SasRec victim(TinyBackbone(ds), QuickTrain(1), Rng(5));
    nn::Adam vopt(victim.Parameters(), 1e-3f);
    std::vector<std::vector<float>> before;
    for (auto& p : victim.Parameters()) before.push_back(p.ToVector());
    const nn::OptimizerState opt_before = vopt.GetState();

    nn::TrainerProgress progress;
    const Status s = nn::LoadTrainState(victim, {&vopt}, &progress, mangled);
    ASSERT_FALSE(s.ok()) << c.name;
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << c.name;
    auto params = victim.Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(params[i].ToVector(), before[i]) << c.name << ": weights modified";
    }
    const nn::OptimizerState opt_after = vopt.GetState();
    EXPECT_EQ(opt_after.slots, opt_before.slots) << c.name << ": optimizer modified";
    EXPECT_EQ(opt_after.step_count, opt_before.step_count) << c.name;

    // The epoch peek walks the same untrusted bytes and must reject too.
    EXPECT_FALSE(nn::PeekTrainStateEpoch(mangled).ok()) << c.name;
  }
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST(TrainStateTest, PeekTrainStateEpochReadsTheEpochWithoutAModule) {
  auto ds = TinySplit();
  const std::string path = TempPath("runtime_peek.state");
  models::SasRec model(TinyBackbone(ds), QuickTrain(1), Rng(5));
  nn::Adam opt(model.Parameters(), 1e-3f);
  nn::TrainerProgress progress;
  progress.epoch = 17;
  ASSERT_TRUE(nn::SaveTrainState(model, {&opt}, progress, path).ok());
  auto peeked = nn::PeekTrainStateEpoch(path);
  ASSERT_TRUE(peeked.ok()) << peeked.status().ToString();
  EXPECT_EQ(peeked.value(), 17);
  EXPECT_FALSE(nn::PeekTrainStateEpoch(TempPath("runtime_peek_missing.state")).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msgcl
