// Systematic finite-difference gradient sweep over every differentiable op
// in src/tensor/ops.cc, at tighter tolerances than the spot checks in
// tensor_test.cc (central differences, rtol 1e-3). Inputs are constructed to
// stay away from non-differentiable points (Relu/Max kinks, Div poles,
// Log/Sqrt near zero) so the numeric estimate is trustworthy at this
// precision.
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace msgcl {
namespace {

using testing::CheckGradients;

constexpr float kEps = 1e-2f;    // central-difference step
constexpr float kAtol = 2e-3f;   // absolute floor (float eval noise)
constexpr float kRtol = 1e-3f;   // per ISSUE: sweep at rtol 1e-3

/// |x| in [mag_lo, mag_hi], random sign: keeps Relu/Div/Log probes at least
/// mag_lo - kEps away from their kinks/poles.
Tensor SignedAwayFromZero(Shape shape, Rng& rng, float mag_lo, float mag_hi) {
  std::vector<float> v(NumElements(shape));
  for (auto& x : v) {
    const float mag = mag_lo + static_cast<float>(rng.Uniform()) * (mag_hi - mag_lo);
    x = rng.Uniform() < 0.5 ? -mag : mag;
  }
  return Tensor::FromVector(std::move(shape), std::move(v));
}

/// Reduces an arbitrary-shaped op output to a scalar with random weights, so
/// every output element contributes a distinct gradient signal. The weights
/// come from a fixed-seed stream: CheckGradients re-invokes the loss for
/// every finite-difference probe, so the loss must be a pure function of the
/// leaves (the caller's rng is accepted but unused to keep call sites tidy).
Tensor WeightedSum(const Tensor& t, Rng& /*rng*/) {
  Rng wrng(31337);
  Tensor w = Tensor::Rand(t.shape(), wrng, 0.5f, 1.5f);
  return t.Mul(w).Sum();
}

// ---- Elementwise binary ----------------------------------------------------

TEST(GradSweepTest, AddSubSameShape) {
  Rng rng(101);
  Tensor a = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].Add(l[1]).Sub(l[0].MulScalar(0.5f)), rng);
      },
      {a, b}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, MulDivSameShape) {
  Rng rng(102);
  Tensor a = Tensor::Rand({2, 5}, rng, -1.0f, 1.0f);
  Tensor b = SignedAwayFromZero({2, 5}, rng, 0.5f, 1.5f);  // denominator
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].Div(l[1]), rng); },
      {a, b}, kEps, kAtol, kRtol);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].Mul(l[1]), rng); },
      {a, b}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, BroadcastRowColumnAndScalar) {
  Rng rng(103);
  Tensor a = Tensor::Rand({2, 3, 4}, rng, -1.0f, 1.0f);
  Tensor row = Tensor::Rand({4}, rng, -1.0f, 1.0f);
  Tensor plane = Tensor::Rand({3, 1}, rng, -1.0f, 1.0f);
  Tensor scalar = Tensor::Rand({1}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].Add(l[1]).Mul(l[2]).Add(l[3]), rng);
      },
      {a, row, plane, scalar}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, BroadcastRank0Leaf) {
  Rng rng(104);
  Tensor scalar = Tensor::FromVector({}, {0.7f});  // rank-0
  Tensor m = Tensor::Rand({2, 3}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].Mul(l[1]), rng); },
      {scalar, m}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, ScalarOps) {
  Rng rng(105);
  Tensor a = Tensor::Rand({3, 3}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].MulScalar(1.7f).AddScalar(-0.3f), rng);
      },
      {a}, kEps, kAtol, kRtol);
}

// ---- Elementwise unary -----------------------------------------------------

TEST(GradSweepTest, ReluAwayFromKink) {
  Rng rng(106);
  Tensor a = SignedAwayFromZero({4, 4}, rng, 0.2f, 1.0f);
  CheckGradients([&](std::vector<Tensor>& l) { return WeightedSum(l[0].Relu(), rng); },
                 {a}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, SmoothUnaries) {
  Rng rng(107);
  Tensor a = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  CheckGradients([&](std::vector<Tensor>& l) { return WeightedSum(l[0].Gelu(), rng); },
                 {a}, kEps, kAtol, kRtol);
  CheckGradients([&](std::vector<Tensor>& l) { return WeightedSum(l[0].Tanh(), rng); },
                 {a}, kEps, kAtol, kRtol);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].Sigmoid(), rng); }, {a},
      kEps, kAtol, kRtol);
  CheckGradients([&](std::vector<Tensor>& l) { return WeightedSum(l[0].Exp(), rng); },
                 {a}, kEps, kAtol, kRtol);
  CheckGradients([&](std::vector<Tensor>& l) { return WeightedSum(l[0].Square(), rng); },
                 {a}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, LogSqrtPositiveDomain) {
  Rng rng(108);
  Tensor a = Tensor::Rand({3, 4}, rng, 0.5f, 2.0f);
  CheckGradients([&](std::vector<Tensor>& l) { return WeightedSum(l[0].Log(), rng); },
                 {a}, kEps, kAtol, kRtol);
  CheckGradients([&](std::vector<Tensor>& l) { return WeightedSum(l[0].Sqrt(), rng); },
                 {a}, kEps, kAtol, kRtol);
}

// ---- Reductions ------------------------------------------------------------

TEST(GradSweepTest, FullReductions) {
  Rng rng(109);
  Tensor a = Tensor::Rand({4, 5}, rng, -1.0f, 1.0f);
  CheckGradients([&](std::vector<Tensor>& l) { return l[0].Sum(); }, {a}, kEps, kAtol,
                 kRtol);
  CheckGradients([&](std::vector<Tensor>& l) { return l[0].Mean(); }, {a}, kEps, kAtol,
                 kRtol);
  CheckGradients([&](std::vector<Tensor>& l) { return l[0].Square().Sum(); }, {a}, kEps,
                 kAtol, kRtol);
}

TEST(GradSweepTest, LastDimReductions) {
  Rng rng(110);
  Tensor a = Tensor::Rand({2, 3, 4}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].SumLastDim(), rng); }, {a},
      kEps, kAtol, kRtol);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].MeanLastDim(), rng); }, {a},
      kEps, kAtol, kRtol);
}

TEST(GradSweepTest, MaxLastDimUniqueMax) {
  // Row maxima separated by > 2*kEps so probes cannot flip the argmax.
  Tensor a = Tensor::FromVector({2, 4}, {0.1f, 0.9f, -0.5f, 0.3f,  //
                                         0.8f, -0.2f, 0.4f, 0.0f});
  Rng rng(111);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].MaxLastDim(), rng); }, {a},
      kEps, kAtol, kRtol);
}

// ---- Softmax family --------------------------------------------------------

TEST(GradSweepTest, SoftmaxLastDim) {
  Rng rng(112);
  Tensor a = Tensor::Rand({3, 5}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].SoftmaxLastDim(), rng); },
      {a}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, LogSoftmaxLastDim) {
  Rng rng(113);
  Tensor a = Tensor::Rand({3, 5}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].LogSoftmaxLastDim(), rng); },
      {a}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, L2NormalizeLastDim) {
  Rng rng(114);
  Tensor a = SignedAwayFromZero({3, 4}, rng, 0.5f, 1.5f);  // norm well above eps
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].L2NormalizeLastDim(), rng);
      },
      {a}, kEps, kAtol, kRtol);
}

// ---- Masking ---------------------------------------------------------------

TEST(GradSweepTest, MaskedFill) {
  Rng rng(115);
  Tensor a = Tensor::Rand({2, 6}, rng, -1.0f, 1.0f);
  std::vector<uint8_t> mask = {0, 1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1};
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].MaskedFill(mask, -5.0f), rng);
      },
      {a}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, DropoutMask) {
  Rng rng(116);
  Tensor a = Tensor::Rand({2, 6}, rng, -1.0f, 1.0f);
  std::vector<uint8_t> keep = {1, 0, 1, 1, 0, 1, 1, 1, 0, 1, 0, 1};
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].DropoutMask(keep, 0.75f), rng);
      },
      {a}, kEps, kAtol, kRtol);
}

// ---- Shape manipulation ----------------------------------------------------

TEST(GradSweepTest, ReshapeTransposePermute) {
  Rng rng(117);
  Tensor a = Tensor::Rand({2, 3, 4}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].Reshape({4, 6}).TransposeLast2(), rng);
      },
      {a}, kEps, kAtol, kRtol);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].Permute({2, 0, 1}), rng);
      },
      {a}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, NarrowAndConcat) {
  Rng rng(118);
  Tensor a = Tensor::Rand({3, 5}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({3, 2}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(l[0].Narrow(1, 1, 3), rng);
      },
      {a}, kEps, kAtol, kRtol);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(Tensor::Concat({l[0], l[1]}, 1), rng);
      },
      {a, b}, kEps, kAtol, kRtol);
}

// ---- MatMul ----------------------------------------------------------------

TEST(GradSweepTest, MatMulRank2) {
  Rng rng(119);
  Tensor a = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({4, 2}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].MatMul(l[1]), rng); },
      {a, b}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, MatMulBatchedBoth) {
  Rng rng(120);
  Tensor a = Tensor::Rand({2, 3, 4}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({2, 4, 2}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].MatMul(l[1]), rng); },
      {a, b}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, MatMulSharedRhs) {
  // Batched A against rank-2 B: exercises the shared-operand grad path that
  // accumulates every batch into one dB.
  Rng rng(121);
  Tensor a = Tensor::Rand({2, 3, 4}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({4, 2}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].MatMul(l[1]), rng); },
      {a, b}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, MatMulSharedLhs) {
  Rng rng(122);
  Tensor a = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({2, 4, 2}, rng, -1.0f, 1.0f);
  CheckGradients(
      [&](std::vector<Tensor>& l) { return WeightedSum(l[0].MatMul(l[1]), rng); },
      {a, b}, kEps, kAtol, kRtol);
}

// ---- Fused primitives ------------------------------------------------------

TEST(GradSweepTest, EmbeddingLookupWithRepeats) {
  Rng rng(123);
  Tensor table = Tensor::Rand({6, 3}, rng, -1.0f, 1.0f);
  // Row 2 repeats: exercises the row-ownership scatter accumulation. The
  // index list avoids the padding row — its forward output still reads the
  // table while its gradient is zero by design, so a finite-difference
  // probe there would legitimately disagree.
  std::vector<int32_t> idx = {2, 3, 5, 2, 1};
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(EmbeddingLookup(l[0], idx, {5}, /*padding_idx=*/0), rng);
      },
      {table}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, EmbeddingPaddingRowGradIsExactlyZero) {
  Rng rng(129);
  Tensor table = Tensor::Rand({6, 3}, rng, -1.0f, 1.0f);
  table.set_requires_grad(true);
  std::vector<int32_t> idx = {2, 0, 5, 0, 1};
  Tensor loss = WeightedSum(EmbeddingLookup(table, idx, {5}, /*padding_idx=*/0), rng);
  loss.Backward();
  const auto& g = table.grad();
  for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(g[j], 0.0f) << "padding row col " << j;
  // Non-padding rows that were looked up must receive gradient.
  EXPECT_NE(g[2 * 3], 0.0f);
}

TEST(GradSweepTest, GatherTimeStep) {
  Rng rng(124);
  Tensor x = Tensor::Rand({3, 4, 2}, rng, -1.0f, 1.0f);
  std::vector<int32_t> pos = {3, 0, 2};
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(GatherTimeStep(l[0], pos), rng);
      },
      {x}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, LayerNormAllThreeInputs) {
  Rng rng(125);
  Tensor x = Tensor::Rand({4, 5}, rng, -1.0f, 1.0f);
  Tensor gamma = Tensor::Rand({5}, rng, 0.5f, 1.5f);
  Tensor beta = Tensor::Rand({5}, rng, -0.5f, 0.5f);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(LayerNormLastDim(l[0], l[1], l[2], 1e-5f), rng);
      },
      {x, gamma, beta}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, CrossEntropyWithIgnoreIndex) {
  Rng rng(126);
  Tensor logits = Tensor::Rand({4, 5}, rng, -1.0f, 1.0f);
  std::vector<int32_t> targets = {1, -1, 4, 0};  // row 1 ignored
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return CrossEntropyLogits(l[0], targets, /*ignore_index=*/-1);
      },
      {logits}, kEps, kAtol, kRtol);
}

TEST(GradSweepTest, HorizontalConvAllThreeInputs) {
  Rng rng(127);
  Tensor x = Tensor::Rand({2, 5, 3}, rng, -1.0f, 1.0f);
  Tensor w = Tensor::Rand({2, 2, 3}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({2}, rng, -0.5f, 0.5f);
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        return WeightedSum(HorizontalConv(l[0], l[1], l[2]), rng);
      },
      {x, w, b}, kEps, kAtol, kRtol);
}

// ---- Tail-odd widths (SIMD remainder lanes) --------------------------------
//
// The vector kernels in src/tensor/kernels.h process 8 floats per AVX2 lane
// and finish each row with a scalar remainder loop. These sweeps pin the
// remainder handling with finite differences at widths that hit every case:
// below one lane (1, 7), exactly one lane (8), one lane + 1 (9), and just
// either side of four lanes (31, 33).

constexpr int64_t kTailWidths[] = {1, 7, 8, 9, 31, 33};

TEST(GradSweepTest, TailOddElementwise) {
  for (const int64_t n : kTailWidths) {
    Rng rng(200 + static_cast<uint64_t>(n));
    Tensor a = Tensor::Rand({2, n}, rng, -1.0f, 1.0f);
    Tensor b = SignedAwayFromZero({2, n}, rng, 0.5f, 1.5f);  // denominator
    CheckGradients(
        [&](std::vector<Tensor>& l) {
          return WeightedSum(l[0].Add(l[1]).Mul(l[0]).Sub(l[1]), rng);
        },
        {a, b}, kEps, kAtol, kRtol);
    CheckGradients(
        [&](std::vector<Tensor>& l) { return WeightedSum(l[0].Div(l[1]), rng); },
        {a, b}, kEps, kAtol, kRtol);
  }
}

TEST(GradSweepTest, TailOddMatMul) {
  for (const int64_t n : kTailWidths) {
    Rng rng(210 + static_cast<uint64_t>(n));
    // n as the contraction depth and as the output width: both the p-loop
    // tail and the j-loop (innermost, vectorized) tail get exercised.
    Tensor a = Tensor::Rand({3, n}, rng, -1.0f, 1.0f);
    Tensor b = Tensor::Rand({n, 2}, rng, -1.0f, 1.0f);
    CheckGradients(
        [&](std::vector<Tensor>& l) { return WeightedSum(l[0].MatMul(l[1]), rng); },
        {a, b}, kEps, kAtol, kRtol);
    Tensor c = Tensor::Rand({2, n}, rng, -1.0f, 1.0f);
    Tensor d = Tensor::Rand({n, n}, rng, -0.7f, 0.7f);
    CheckGradients(
        [&](std::vector<Tensor>& l) { return WeightedSum(l[0].MatMul(l[1]), rng); },
        {c, d}, kEps, kAtol, kRtol);
  }
}

TEST(GradSweepTest, TailOddSoftmaxFamily) {
  for (const int64_t n : kTailWidths) {
    Rng rng(220 + static_cast<uint64_t>(n));
    Tensor a = Tensor::Rand({2, n}, rng, -1.0f, 1.0f);
    CheckGradients(
        [&](std::vector<Tensor>& l) { return WeightedSum(l[0].SoftmaxLastDim(), rng); },
        {a}, kEps, kAtol, kRtol);
    CheckGradients(
        [&](std::vector<Tensor>& l) {
          return WeightedSum(l[0].LogSoftmaxLastDim(), rng);
        },
        {a}, kEps, kAtol, kRtol);
  }
}

TEST(GradSweepTest, TailOddLayerNorm) {
  for (const int64_t n : kTailWidths) {
    Rng rng(230 + static_cast<uint64_t>(n));
    Tensor x = Tensor::Rand({2, n}, rng, -1.0f, 1.0f);
    Tensor gamma = Tensor::Rand({n}, rng, 0.5f, 1.5f);
    Tensor beta = Tensor::Rand({n}, rng, -0.5f, 0.5f);
    CheckGradients(
        [&](std::vector<Tensor>& l) {
          return WeightedSum(LayerNormLastDim(l[0], l[1], l[2], 1e-5f), rng);
        },
        {x, gamma, beta}, kEps, kAtol, kRtol);
  }
}

// ---- Composite graph -------------------------------------------------------

TEST(GradSweepTest, TransformerishComposite) {
  // Embedding -> layernorm -> matmul -> softmax chain touching most kernels
  // in one graph, checking gradient flow through op boundaries.
  Rng rng(128);
  Tensor table = Tensor::Rand({8, 4}, rng, -0.5f, 0.5f);
  Tensor w = Tensor::Rand({4, 4}, rng, -0.5f, 0.5f);
  Tensor gamma = Tensor::Rand({4}, rng, 0.8f, 1.2f);
  Tensor beta = Tensor::Rand({4}, rng, -0.2f, 0.2f);
  std::vector<int32_t> idx = {1, 3, 7, 2, 5, 1};
  CheckGradients(
      [&](std::vector<Tensor>& l) {
        Tensor h = EmbeddingLookup(l[0], idx, {2, 3}, /*padding_idx=*/0);
        h = LayerNormLastDim(h, l[2], l[3], 1e-5f);
        Tensor s = h.MatMul(l[1]).SoftmaxLastDim();
        return WeightedSum(s, rng);
      },
      // Smaller step: the layernorm->softmax chain has enough curvature that
      // eps=1e-2 truncation error breaches the rtol-1e-3 envelope.
      {table, w, gamma, beta}, 5e-3f, 3e-3f, kRtol);
}

}  // namespace
}  // namespace msgcl
