// Tests for the CoSeRec baseline: co-occurrence correlation, informative
// substitute/insert augmentations, and end-to-end training.
#include "data/data.h"
#include "gtest/gtest.h"
#include "models/coserec.h"

namespace msgcl {
namespace models {
namespace {

TEST(ItemCorrelationTest, FindsCooccurringPair) {
  // Items 1 and 2 always adjacent; 3 isolated at distance > window.
  std::vector<std::vector<int32_t>> seqs = {
      {1, 2, 4, 4, 4, 4, 3}, {2, 1, 5, 5, 5, 5, 3}, {1, 2, 6, 6, 6, 6, 3}};
  ItemCorrelation corr(seqs, 6, /*window=*/1);
  EXPECT_EQ(corr.MostCorrelated(1), 2);
  EXPECT_EQ(corr.MostCorrelated(2), 1);
}

TEST(ItemCorrelationTest, UnseenItemHasNoCorrelate) {
  std::vector<std::vector<int32_t>> seqs = {{1, 2}};
  ItemCorrelation corr(seqs, 10);
  EXPECT_EQ(corr.MostCorrelated(7), 0);
}

TEST(ItemCorrelationTest, SelfIsNeverCorrelate) {
  std::vector<std::vector<int32_t>> seqs = {{3, 3, 3, 3, 3, 4}};
  ItemCorrelation corr(seqs, 5);
  EXPECT_NE(corr.MostCorrelated(3), 3);
}

TEST(CoSeRecAugmentTest, SubstituteSwapsToCorrelate) {
  std::vector<std::vector<int32_t>> seqs = {{1, 2, 1, 2, 1, 2, 1, 2}};
  ItemCorrelation corr(seqs, 3, 1);
  Rng rng(1);
  auto out = AugmentSubstitute({1, 1, 1, 1, 1, 1}, corr, 1.0, rng);
  for (int32_t v : out) EXPECT_EQ(v, 2);  // 1's top correlate is 2
}

TEST(CoSeRecAugmentTest, SubstituteZeroRatioIsIdentity) {
  std::vector<std::vector<int32_t>> seqs = {{1, 2, 1, 2}};
  ItemCorrelation corr(seqs, 3, 1);
  Rng rng(2);
  std::vector<int32_t> seq = {1, 2, 1};
  EXPECT_EQ(AugmentSubstitute(seq, corr, 0.0, rng), seq);
}

TEST(CoSeRecAugmentTest, InsertGrowsSequenceWithCorrelates) {
  std::vector<std::vector<int32_t>> seqs = {{1, 2, 1, 2, 1, 2}};
  ItemCorrelation corr(seqs, 3, 1);
  Rng rng(3);
  auto out = AugmentInsert({1, 1, 1, 1}, corr, 1.0, rng);
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); i += 2) {
    EXPECT_EQ(out[i], 1);
    EXPECT_EQ(out[i + 1], 2);
  }
}

TEST(CoSeRecAugmentTest, InsertPreservesOriginalOrder) {
  std::vector<std::vector<int32_t>> seqs = {{1, 2, 3, 1, 2, 3}};
  ItemCorrelation corr(seqs, 4, 1);
  Rng rng(4);
  auto out = AugmentInsert({1, 2, 3}, corr, 0.5, rng);
  // Original items appear as a subsequence.
  std::vector<int32_t> orig = {1, 2, 3};
  size_t j = 0;
  for (int32_t v : out) {
    if (j < orig.size() && v == orig[j]) ++j;
  }
  EXPECT_EQ(j, orig.size());
}

TEST(CoSeRecTest, TrainsAndScores) {
  auto log = data::GenerateSynthetic(data::TinyDataset(7)).value();
  auto ds = data::LeaveOneOutSplit(log);
  CoSeRecConfig cfg;
  cfg.backbone.num_items = ds.num_items;
  cfg.backbone.max_len = 12;
  cfg.backbone.dim = 16;
  cfg.backbone.layers = 1;
  TrainConfig t;
  t.epochs = 2;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  CoSeRec model(cfg, t, Rng(5));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1}, 12);
  auto s1 = model.ScoreAll(b);
  ASSERT_EQ(s1.size(), 2u * (ds.num_items + 1));
  EXPECT_EQ(s1, model.ScoreAll(b));
  for (float s : s1) ASSERT_TRUE(std::isfinite(s));
}

}  // namespace
}  // namespace models
}  // namespace msgcl
