// End-to-end integration tests across module boundaries: the full
// synthetic-data -> split -> train -> checkpoint -> evaluate pipeline,
// training determinism, noise-robustness direction, and the paper's
// core qualitative claims at miniature scale.
#include <cmath>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "gtest/gtest.h"
#include "models/models.h"

namespace msgcl {
namespace {

data::SequenceDataset TinySplit(uint64_t seed = 7) {
  auto log = data::GenerateSynthetic(data::TinyDataset(seed)).value();
  return data::LeaveOneOutSplit(log);
}

models::TrainConfig Train(int64_t epochs) {
  models::TrainConfig t;
  t.epochs = epochs;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  t.seed = 5;
  return t;
}

models::BackboneConfig Backbone(const data::SequenceDataset& ds) {
  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 1;
  b.dropout = 0.1f;
  return b;
}

TEST(PipelineTest, TrainingIsDeterministicGivenSeed) {
  auto ds = TinySplit();
  models::SasRec a(Backbone(ds), Train(3), Rng(11));
  models::SasRec b(Backbone(ds), Train(3), Rng(11));
  a.Fit(ds);
  b.Fit(ds);
  data::Batch batch = data::MakeEvalBatch(ds.train_seqs, {0, 1, 2}, 12);
  EXPECT_EQ(a.ScoreAll(batch), b.ScoreAll(batch));
}

TEST(PipelineTest, DifferentSeedsProduceDifferentModels) {
  auto ds = TinySplit();
  models::SasRec a(Backbone(ds), Train(2), Rng(11));
  models::SasRec b(Backbone(ds), Train(2), Rng(12));
  a.Fit(ds);
  b.Fit(ds);
  data::Batch batch = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  EXPECT_NE(a.ScoreAll(batch), b.ScoreAll(batch));
}

TEST(PipelineTest, CheckpointPreservesEvaluationMetrics) {
  auto ds = TinySplit();
  core::MetaSgclConfig cfg;
  cfg.backbone = Backbone(ds);
  core::MetaSgcl model(cfg, Train(4), Rng(13));
  model.Fit(ds);
  eval::EvalConfig ecfg;
  ecfg.max_len = 12;
  eval::Metrics before = eval::Evaluate(model, ds, eval::Split::kTest, ecfg);

  const std::string path = ::testing::TempDir() + "/msgcl_integration_ckpt.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(model, path).ok());
  core::MetaSgcl restored(cfg, Train(4), Rng(999));
  ASSERT_TRUE(nn::LoadCheckpoint(restored, path).ok());
  restored.SetTraining(false);
  eval::Metrics after = eval::Evaluate(restored, ds, eval::Split::kTest, ecfg);
  EXPECT_EQ(before.hr10, after.hr10);
  EXPECT_EQ(before.ndcg10, after.ndcg10);
}

TEST(PipelineTest, RecommendTopKConsistentWithEvaluatorScores) {
  auto ds = TinySplit();
  models::Pop pop;
  pop.Fit(ds);
  eval::RecommendOptions opt;
  opt.k = 3;
  opt.max_len = 12;
  opt.exclude_seen = false;
  auto recs = eval::RecommendTopK(pop, ds.train_seqs[0], ds.num_items, opt);
  ASSERT_EQ(recs.size(), 3u);
  // Pop's top recommendation must be a globally most frequent item.
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  auto scores = pop.ScoreAll(b);
  for (int32_t i = 1; i <= ds.num_items; ++i) {
    EXPECT_LE(scores[i], recs[0].score + 1e-6f);
  }
}

TEST(PipelineTest, HeavyNoiseDegradesSasRec) {
  auto ds = TinySplit(21);
  eval::EvalConfig ecfg;
  ecfg.max_len = 12;

  models::SasRec clean_model(Backbone(ds), Train(10), Rng(14));
  clean_model.Fit(ds);
  const double clean = eval::Evaluate(clean_model, ds, eval::Split::kTest, ecfg).hr10;

  Rng noise_rng(15);
  auto noisy = data::InjectTrainingNoise(ds, 0.5, noise_rng);
  models::SasRec noisy_model(Backbone(ds), Train(10), Rng(14));
  noisy_model.Fit(noisy);
  const double dirty = eval::Evaluate(noisy_model, ds, eval::Split::kTest, ecfg).hr10;

  EXPECT_LT(dirty, clean + 0.02) << "50% noise should not materially improve training";
}

TEST(PaperClaimTest, GenerativeViewsDiffer) {
  // The Seq2Seq generator must produce two distinct-but-semantically-tied
  // views: distinct latents, yet far closer to each other than to another
  // user's latent (the property InfoNCE exploits).
  auto ds = TinySplit();
  Rng rng(16);
  core::Seq2SeqGenerator gen(Backbone(ds), rng);
  gen.SetTraining(false);
  data::Batch batch = data::MakeTrainBatch(ds, {0, 1, 2, 3, 4, 5, 6, 7}, 12);
  Rng fwd(17);
  auto out = gen.Forward(batch, fwd, /*sample=*/true, /*second_view=*/true);
  const int64_t B = 8, T = 12, D = 16;
  auto vec_at = [&](const Tensor& t, int64_t b) {
    std::vector<float> v(D);
    for (int64_t j = 0; j < D; ++j) v[j] = t.at((b * T + T - 1) * D + j);
    return v;
  };
  auto dist = [&](const std::vector<float>& a, const std::vector<float>& b) {
    double s = 0;
    for (int64_t j = 0; j < D; ++j) s += (a[j] - b[j]) * (a[j] - b[j]);
    return std::sqrt(s);
  };
  double within = 0, between = 0;
  int between_count = 0;
  for (int64_t b = 0; b < B; ++b) {
    auto z = vec_at(out.z, b);
    auto zp = vec_at(out.z_prime, b);
    within += dist(z, zp);
    for (int64_t o = 0; o < B; ++o) {
      if (o == b) continue;
      between += dist(z, vec_at(out.z, o));
      ++between_count;
    }
  }
  within /= B;
  between /= between_count;
  EXPECT_GT(within, 0.0) << "views must differ";
  EXPECT_LT(within, between) << "a user's two views must be closer than other users";
}

TEST(PaperClaimTest, MetaTwoStepAtLeastMatchesJointAtTinyScale) {
  // Fig. 3's direction at miniature scale: the two-step strategy should not
  // be materially worse than joint training (at paper scale it wins).
  auto ds = TinySplit(31);
  eval::EvalConfig ecfg;
  ecfg.max_len = 12;
  auto run = [&](core::TrainingMode mode) {
    core::MetaSgclConfig cfg;
    cfg.backbone = Backbone(ds);
    cfg.mode = mode;
    core::MetaSgcl model(cfg, Train(15), Rng(18));
    model.Fit(ds);
    return eval::Evaluate(model, ds, eval::Split::kTest, ecfg).ndcg10;
  };
  const double joint = run(core::TrainingMode::kJoint);
  const double meta = run(core::TrainingMode::kMetaTwoStep);
  EXPECT_GT(meta, joint - 0.05);
}

TEST(PaperClaimTest, EmbeddingStatsComputableOnTrainedModels) {
  auto ds = TinySplit();
  models::SasRec model(Backbone(ds), Train(4), Rng(19));
  model.Fit(ds);
  Rng stats_rng(20);
  auto stats = eval::ComputeEmbeddingStats(model.backbone().item_embedding().table(),
                                           stats_rng, 2000);
  EXPECT_GE(stats.sv_entropy, 0.0);
  EXPECT_LE(stats.sv_entropy, 1.0);
  EXPECT_GE(stats.mean_cosine, -1.0);
  EXPECT_LE(stats.mean_cosine, 1.0);
  EXPECT_GT(stats.mean_norm, 0.0);
}

}  // namespace
}  // namespace msgcl
