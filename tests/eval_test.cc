// Tests for the evaluation substrate: ranking metrics, the full-ranking
// evaluator against a mock ranker, and embedding-distribution statistics.
#include <cmath>

#include "eval/eval.h"
#include "gtest/gtest.h"
#include "obs/registry.h"

namespace msgcl {
namespace eval {
namespace {

// ---------- Metrics ----------

TEST(MetricsTest, RankOfTargetCountsStrictlyGreater) {
  // scores indexed by item id; id 0 is padding.
  std::vector<float> scores = {0.0f, 0.9f, 0.5f, 0.7f, 0.1f};
  EXPECT_EQ(RankOfTarget(scores, 1), 0);
  EXPECT_EQ(RankOfTarget(scores, 3), 1);
  EXPECT_EQ(RankOfTarget(scores, 2), 2);
  EXPECT_EQ(RankOfTarget(scores, 4), 3);
}

TEST(MetricsTest, RankIgnoresPaddingSlot) {
  std::vector<float> scores = {100.0f, 0.5f, 0.4f};
  EXPECT_EQ(RankOfTarget(scores, 1), 0);  // padding's huge score not counted
}

TEST(MetricsTest, TiesDoNotOutrank) {
  std::vector<float> scores = {0.0f, 0.5f, 0.5f, 0.5f};
  EXPECT_EQ(RankOfTarget(scores, 2), 0);  // default = kOptimistic
}

TEST(MetricsTest, TiePoliciesPlaceTargetTopMidOrBottomOfItsTieGroup) {
  // Item 4 is tied with items 2 and 5; item 1 scores strictly higher.
  std::vector<float> scores = {0.0f, 0.9f, 0.5f, 0.1f, 0.5f, 0.5f};
  const RankResult r = RankOfTargetDetailed(scores.data(), scores.size(), 4);
  EXPECT_EQ(r.num_tied, 2);
  EXPECT_EQ(RankOfTarget(scores, 4, TiePolicy::kOptimistic), 1.0);
  EXPECT_EQ(RankOfTarget(scores, 4, TiePolicy::kAverage), 2.0);  // 1 + 2/2
  EXPECT_EQ(RankOfTarget(scores, 4, TiePolicy::kPessimistic), 3.0);
  // No ties: all policies agree.
  std::vector<float> distinct = {0.0f, 0.9f, 0.5f, 0.7f};
  for (TiePolicy tie :
       {TiePolicy::kOptimistic, TiePolicy::kAverage, TiePolicy::kPessimistic}) {
    EXPECT_EQ(RankOfTarget(distinct, 2, tie), 2.0);
  }
}

TEST(MetricsTest, HitAndNdcgValues) {
  EXPECT_EQ(HitAt(0, 5), 1.0);
  EXPECT_EQ(HitAt(4, 5), 1.0);
  EXPECT_EQ(HitAt(5, 5), 0.0);
  EXPECT_NEAR(NdcgAt(0, 5), 1.0, 1e-12);
  EXPECT_NEAR(NdcgAt(1, 5), 1.0 / std::log2(3.0), 1e-12);
  EXPECT_EQ(NdcgAt(9, 5), 0.0);
}

TEST(MetricsTest, AccumulatorAverages) {
  MetricAccumulator acc({5, 10});
  acc.Add(0);   // hit@5, ndcg 1
  acc.Add(7);   // miss@5, hit@10
  acc.Add(20);  // miss both
  EXPECT_NEAR(acc.Hr(5), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.Hr(10), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.Ndcg(5), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.Ndcg(10), (1.0 + 1.0 / std::log2(9.0)) / 3.0, 1e-12);
  EXPECT_EQ(acc.count(), 3);
}

TEST(MetricsTest, EmptyAccumulatorIsZero) {
  MetricAccumulator acc;
  EXPECT_EQ(acc.Hr(5), 0.0);
  EXPECT_EQ(acc.Ndcg(10), 0.0);
}

TEST(MetricsTest, MetricsToStringFormats) {
  Metrics m;
  m.hr5 = 0.0216;
  EXPECT_NE(m.ToString().find("HR@5=0.0216"), std::string::npos);
}

// ---------- Evaluator with a mock ranker ----------

/// Scores item (sum of input ids + item id) mod 7 — deterministic and
/// sequence-dependent, so ranks are predictable in the test.
class OracleRanker : public Ranker {
 public:
  explicit OracleRanker(int32_t num_items, std::vector<int32_t> best_item_per_user)
      : num_items_(num_items), best_(std::move(best_item_per_user)) {}

  std::string name() const override { return "oracle"; }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    std::vector<float> scores(batch.batch_size * (num_items_ + 1), 0.0f);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      // Tie-free background: lower ids score higher.
      for (int32_t i = 1; i <= num_items_; ++i) {
        scores[b * (num_items_ + 1) + i] = -0.001f * static_cast<float>(i);
      }
      const int32_t u = batch.users[b];
      scores[b * (num_items_ + 1) + best_[u]] = 1.0f;  // predicted item on top
    }
    return scores;
  }

 private:
  int32_t num_items_;
  std::vector<int32_t> best_;
};

/// The degenerate scorer from the BERT4Rec replicability study: every item
/// gets the same score, so reported metrics depend entirely on the tie policy.
class ConstantRanker : public Ranker {
 public:
  explicit ConstantRanker(int32_t num_items) : num_items_(num_items) {}
  std::string name() const override { return "constant"; }
  std::vector<float> ScoreAll(const data::Batch& batch) override {
    return std::vector<float>(batch.batch_size * (num_items_ + 1), 0.5f);
  }

 private:
  int32_t num_items_;
};

data::SequenceDataset TwoUserDataset() {
  data::SequenceDataset ds;
  ds.num_items = 20;
  ds.train_seqs = {{1, 2, 3}, {4, 5, 6}};
  ds.valid_targets = {7, 8};
  ds.test_targets = {9, 10};
  return ds;
}

TEST(EvaluatorTest, PerfectRankerScoresOne) {
  auto ds = TwoUserDataset();
  OracleRanker model(ds.num_items, ds.test_targets);
  EvalConfig cfg;
  cfg.max_len = 5;
  Metrics m = Evaluate(model, ds, Split::kTest, cfg);
  EXPECT_EQ(m.hr5, 1.0);
  EXPECT_EQ(m.hr10, 1.0);
  EXPECT_EQ(m.ndcg5, 1.0);
  EXPECT_EQ(m.ndcg10, 1.0);
}

TEST(EvaluatorTest, WrongRankerScoresBelowOne) {
  auto ds = TwoUserDataset();
  // Model always predicts item 1 -- never the target.
  OracleRanker model(ds.num_items, {1, 1});
  EvalConfig cfg;
  cfg.max_len = 5;
  Metrics m = Evaluate(model, ds, Split::kTest, cfg);
  EXPECT_LT(m.hr5, 1.0);
}

TEST(EvaluatorTest, ConstantScorerMetricsDependOnTiePolicy) {
  // Regression for the tie-handling pitfall: an all-constant scorer must not
  // report perfect accuracy unless the policy is explicitly optimistic.
  data::SequenceDataset ds = TwoUserDataset();
  ds.num_items = 100;
  ConstantRanker model(ds.num_items);
  EvalConfig cfg;
  cfg.max_len = 5;

  cfg.tie_policy = TiePolicy::kOptimistic;  // the historical default
  Metrics optimistic = Evaluate(model, ds, Split::kTest, cfg);
  EXPECT_EQ(optimistic.hr5, 1.0);
  EXPECT_EQ(optimistic.hr10, 1.0);
  EXPECT_EQ(optimistic.ndcg10, 1.0);

  // Under kAverage every target lands mid-pack at rank (N-1)/2 = 49.5,
  // far outside any reported cutoff.
  cfg.tie_policy = TiePolicy::kAverage;
  Metrics average = Evaluate(model, ds, Split::kTest, cfg);
  EXPECT_EQ(average.hr5, 0.0);
  EXPECT_EQ(average.hr10, 0.0);
  EXPECT_NEAR(average.mrr, 1.0 / 50.5, 1e-12);

  cfg.tie_policy = TiePolicy::kPessimistic;
  EXPECT_EQ(Evaluate(model, ds, Split::kTest, cfg).hr10, 0.0);
}

TEST(EvaluatorTest, TiedRowsAreCountedIntoTheRegistry) {
  data::SequenceDataset ds = TwoUserDataset();
  ConstantRanker model(ds.num_items);
  obs::Counter& rows = obs::Registry::Global().GetCounter("eval.score_ties.rows");
  obs::Counter& runs =
      obs::Registry::Global().GetCounter("eval.score_ties.degenerate_runs");
  const int64_t rows_before = rows.value();
  const int64_t runs_before = runs.value();
  EvalConfig cfg;
  cfg.max_len = 5;
  Evaluate(model, ds, Split::kTest, cfg);
  EXPECT_EQ(rows.value() - rows_before, 2);  // both users hit ties
  EXPECT_EQ(runs.value() - runs_before, 1);  // >1% of rows contested
}

TEST(EvaluatorTest, ValidationSplitUsesValidTargets) {
  auto ds = TwoUserDataset();
  OracleRanker model(ds.num_items, ds.valid_targets);
  EvalConfig cfg;
  cfg.max_len = 5;
  EXPECT_EQ(Evaluate(model, ds, Split::kValidation, cfg).hr5, 1.0);
  EXPECT_LT(Evaluate(model, ds, Split::kTest, cfg).hr5, 1.0);
}

TEST(EvaluatorTest, BatchesPartitionUsers) {
  // 5 users with batch_size 2 -> batches of 2/2/1; all must be evaluated.
  data::SequenceDataset ds;
  ds.num_items = 10;
  for (int u = 0; u < 5; ++u) {
    ds.train_seqs.push_back({1, 2});
    ds.valid_targets.push_back(3);
    ds.test_targets.push_back(4);
  }
  OracleRanker model(ds.num_items, std::vector<int32_t>(5, 4));
  EvalConfig cfg;
  cfg.max_len = 4;
  cfg.batch_size = 2;
  Metrics m = Evaluate(model, ds, Split::kTest, cfg);
  EXPECT_EQ(m.hr5, 1.0);
}

// ---------- Embedding stats ----------

TEST(EmbeddingStatsTest, IsotropicEmbeddingsHaveLowCosineHighEntropy) {
  Rng rng(1);
  Tensor table = Tensor::Randn({201, 16}, rng);
  Rng stats_rng(2);
  EmbeddingStats s = ComputeEmbeddingStats(table, stats_rng, 5000);
  EXPECT_NEAR(s.mean_cosine, 0.0, 0.05);
  EXPECT_GT(s.sv_entropy, 0.95);
}

TEST(EmbeddingStatsTest, NarrowConeHasHighCosineLowEntropy) {
  Rng rng(3);
  // Embeddings = shared direction scaled by a per-row magnitude plus small
  // noise: a narrow cone whose variance concentrates in one direction.
  Tensor base = Tensor::Randn({1, 16}, rng);
  Tensor table = Tensor::Zeros({201, 16});
  for (int i = 0; i < 201; ++i) {
    const float mag = 3.0f + 2.0f * static_cast<float>(rng.Uniform());
    for (int j = 0; j < 16; ++j) {
      table.set(i * 16 + j, base.at(j) * mag + rng.Normal() * 0.05f);
    }
  }
  Rng stats_rng(4);
  EmbeddingStats s = ComputeEmbeddingStats(table, stats_rng, 5000);
  EXPECT_GT(s.mean_cosine, 0.9);
  EXPECT_LT(s.sv_entropy, 0.7);
}

TEST(EmbeddingStatsTest, UniformityOrdersConeVsIsotropic) {
  Rng rng(5);
  Tensor iso = Tensor::Randn({101, 8}, rng);
  Tensor cone = Tensor::Ones({101, 8});
  Rng r1(6), r2(6);
  EmbeddingStats si = ComputeEmbeddingStats(iso, r1, 3000);
  EmbeddingStats sc = ComputeEmbeddingStats(cone, r2, 3000);
  EXPECT_LT(si.uniformity, sc.uniformity);  // isotropic is more uniform
}

TEST(EmbeddingStatsTest, MeanNormMatchesConstruction) {
  Tensor table = Tensor::Full({11, 4}, 0.5f);  // per-row norm = 1.0
  Rng rng(7);
  EmbeddingStats s = ComputeEmbeddingStats(table, rng, 100);
  EXPECT_NEAR(s.mean_norm, 1.0, 1e-5);
}

TEST(EmbeddingStatsTest, JacobiEigenvaluesOfDiagonal) {
  std::vector<double> m = {3.0, 0.0, 0.0, 1.0};
  auto eig = internal::SymmetricEigenvalues(m, 2);
  std::sort(eig.begin(), eig.end());
  EXPECT_NEAR(eig[0], 1.0, 1e-9);
  EXPECT_NEAR(eig[1], 3.0, 1e-9);
}

TEST(EmbeddingStatsTest, JacobiEigenvaluesOfRotatedMatrix) {
  // Symmetric [[2, 1], [1, 2]] has eigenvalues {1, 3}.
  std::vector<double> m = {2.0, 1.0, 1.0, 2.0};
  auto eig = internal::SymmetricEigenvalues(m, 2);
  std::sort(eig.begin(), eig.end());
  EXPECT_NEAR(eig[0], 1.0, 1e-8);
  EXPECT_NEAR(eig[1], 3.0, 1e-8);
}

}  // namespace
}  // namespace eval
}  // namespace msgcl
