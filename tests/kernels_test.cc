// Kernel-backend gate (DESIGN.md §13), ctest label `kernels`:
//
//  * raw kernel parity — every simd:: kernel produces BITWISE-identical
//    output under the scalar and AVX2 paths, at widths that exercise the
//    remainder lanes (1..9, 31, 33, ...);
//  * op-level invariance — every rewired tensor op (elementwise, matmul,
//    softmax family, layernorm) is bitwise invariant across ISA x {1, 2, 7}
//    threads, forward AND backward;
//  * arena-vs-heap equality — running a graph inside an ArenaScope changes
//    only where buffers live, never a single bit of the values;
//  * arena properties — 64-byte alignment, O(1) reset-reuse, no aliasing,
//    escape-then-Reset safety with retired-bytes accounting;
//  * plan-cache behavior — hit/miss/eviction counters and bounded size.
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "obs/registry.h"
#include "parallel/parallel.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/plan_cache.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace {

// Widths hitting every AVX2 remainder case: sub-lane, exact lane, lane + 1,
// either side of four lanes, and a larger non-multiple.
constexpr int64_t kWidths[] = {1, 3, 7, 8, 9, 16, 31, 33, 100};

std::vector<float> RandVec(int64_t n, uint64_t seed, float lo, float hi) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = lo + static_cast<float>(rng.Uniform()) * (hi - lo);
  return v;
}

/// Nonzero magnitudes (for denominators).
std::vector<float> RandVecAwayFromZero(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) {
    const float mag = 0.5f + static_cast<float>(rng.Uniform());
    x = rng.Uniform() < 0.5 ? -mag : mag;
  }
  return v;
}

void ExpectBitEq(const float* a, const float* b, size_t n, const std::string& what) {
  for (size_t i = 0; i < n; ++i) {
    uint32_t ua, ub;
    std::memcpy(&ua, a + i, sizeof(ua));
    std::memcpy(&ub, b + i, sizeof(ub));
    ASSERT_EQ(ua, ub) << what << " differs at [" << i << "]: " << a[i]
                      << " vs " << b[i];
  }
}

void ExpectBitEq(const std::vector<float>& a, const std::vector<float>& b,
                 const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ExpectBitEq(a.data(), b.data(), a.size(), what);
}

/// Restores the ISA and thread count a test flipped.
class IsaThreadGuard {
 public:
  IsaThreadGuard()
      : isa_(simd::ActiveIsa()), threads_(parallel::MaxThreads()) {}
  ~IsaThreadGuard() {
    simd::SetIsa(isa_);
    parallel::SetNumThreads(threads_);
  }

 private:
  simd::Isa isa_;
  int threads_;
};

// ---- Raw kernel parity: scalar vs AVX2, bitwise ---------------------------

#define MSGCL_REQUIRE_AVX2()                                   \
  if (!simd::Avx2Supported()) {                                \
    GTEST_SKIP() << "AVX2 not available; scalar-only machine"; \
  }

TEST(KernelParityTest, ElementwiseMaps) {
  MSGCL_REQUIRE_AVX2();
  for (const int64_t n : kWidths) {
    const std::vector<float> a = RandVec(n, 900 + n, -2.0f, 2.0f);
    const std::vector<float> b = RandVecAwayFromZero(n, 901 + n);
    std::vector<float> ys(n), yv(n);
    const std::string tag = "n=" + std::to_string(n);

    simd::scalar::AddVec(ys.data(), a.data(), b.data(), n);
    simd::avx2::AddVec(yv.data(), a.data(), b.data(), n);
    ExpectBitEq(ys, yv, "AddVec " + tag);

    simd::scalar::SubVec(ys.data(), a.data(), b.data(), n);
    simd::avx2::SubVec(yv.data(), a.data(), b.data(), n);
    ExpectBitEq(ys, yv, "SubVec " + tag);

    simd::scalar::MulVec(ys.data(), a.data(), b.data(), n);
    simd::avx2::MulVec(yv.data(), a.data(), b.data(), n);
    ExpectBitEq(ys, yv, "MulVec " + tag);

    simd::scalar::DivVec(ys.data(), a.data(), b.data(), n);
    simd::avx2::DivVec(yv.data(), a.data(), b.data(), n);
    ExpectBitEq(ys, yv, "DivVec " + tag);

    simd::scalar::ScaleVec(ys.data(), a.data(), 1.37f, n);
    simd::avx2::ScaleVec(yv.data(), a.data(), 1.37f, n);
    ExpectBitEq(ys, yv, "ScaleVec " + tag);

    simd::scalar::AddScalarVec(ys.data(), a.data(), -0.61f, n);
    simd::avx2::AddScalarVec(yv.data(), a.data(), -0.61f, n);
    ExpectBitEq(ys, yv, "AddScalarVec " + tag);
  }
}

TEST(KernelParityTest, Accumulations) {
  MSGCL_REQUIRE_AVX2();
  for (const int64_t n : kWidths) {
    const std::vector<float> a = RandVec(n, 910 + n, -2.0f, 2.0f);
    const std::vector<float> b = RandVecAwayFromZero(n, 911 + n);
    const std::vector<float> g = RandVec(n, 912 + n, -1.0f, 1.0f);
    const std::vector<float> y0 = RandVec(n, 913 + n, -1.0f, 1.0f);
    std::vector<float> ys, yv;
    const std::string tag = "n=" + std::to_string(n);

    ys = y0;
    yv = y0;
    simd::scalar::AccumVec(ys.data(), a.data(), n);
    simd::avx2::AccumVec(yv.data(), a.data(), n);
    ExpectBitEq(ys, yv, "AccumVec " + tag);

    ys = y0;
    yv = y0;
    simd::scalar::AxpyVec(ys.data(), a.data(), 0.73f, n);
    simd::avx2::AxpyVec(yv.data(), a.data(), 0.73f, n);
    ExpectBitEq(ys, yv, "AxpyVec " + tag);

    ys = y0;
    yv = y0;
    simd::scalar::MulAccumVec(ys.data(), a.data(), b.data(), n);
    simd::avx2::MulAccumVec(yv.data(), a.data(), b.data(), n);
    ExpectBitEq(ys, yv, "MulAccumVec " + tag);

    ys = y0;
    yv = y0;
    simd::scalar::RecipMulAccumVec(ys.data(), b.data(), g.data(), n);
    simd::avx2::RecipMulAccumVec(yv.data(), b.data(), g.data(), n);
    ExpectBitEq(ys, yv, "RecipMulAccumVec " + tag);

    ys = y0;
    yv = y0;
    simd::scalar::DivGradBVec(ys.data(), a.data(), b.data(), g.data(), n);
    simd::avx2::DivGradBVec(yv.data(), a.data(), b.data(), g.data(), n);
    ExpectBitEq(ys, yv, "DivGradBVec " + tag);
  }
}

TEST(KernelParityTest, RowKernels) {
  MSGCL_REQUIRE_AVX2();
  for (const int64_t n : kWidths) {
    const std::vector<float> x = RandVec(n, 920 + n, -3.0f, 3.0f);
    const std::vector<float> g = RandVec(n, 921 + n, -1.0f, 1.0f);
    const std::vector<float> y0 = RandVec(n, 922 + n, -1.0f, 1.0f);
    const std::string tag = "n=" + std::to_string(n);

    const float ms = simd::scalar::RowMax(x.data(), n);
    const float mv = simd::avx2::RowMax(x.data(), n);
    ExpectBitEq(&ms, &mv, 1, "RowMax " + tag);

    // p as a softmax row, dot as its weighted sum.
    std::vector<float> p = RandVec(n, 923 + n, 0.01f, 1.0f);
    std::vector<float> ys = y0, yv = y0;
    simd::scalar::SoftmaxBwdVec(ys.data(), p.data(), g.data(), 0.42f, n);
    simd::avx2::SoftmaxBwdVec(yv.data(), p.data(), g.data(), 0.42f, n);
    ExpectBitEq(ys, yv, "SoftmaxBwdVec " + tag);

    const std::vector<float> gamma = RandVec(n, 924 + n, 0.5f, 1.5f);
    const std::vector<float> beta = RandVec(n, 925 + n, -0.5f, 0.5f);
    std::vector<float> outs(n), outv(n), xhs(n), xhv(n);
    simd::scalar::LayerNormRowVec(outs.data(), xhs.data(), x.data(),
                                  gamma.data(), beta.data(), 0.11f, 2.7f, n);
    simd::avx2::LayerNormRowVec(outv.data(), xhv.data(), x.data(),
                                gamma.data(), beta.data(), 0.11f, 2.7f, n);
    ExpectBitEq(outs, outv, "LayerNormRowVec.out " + tag);
    ExpectBitEq(xhs, xhv, "LayerNormRowVec.xhat " + tag);
  }
}

TEST(KernelParityTest, ContractionTiles) {
  MSGCL_REQUIRE_AVX2();
  constexpr int64_t kDepth = 37;  // odd contraction depth
  for (const int64_t n : kWidths) {
    const std::vector<float> a = RandVec(kDepth, 930 + n, -1.0f, 1.0f);
    const std::vector<float> b = RandVec(kDepth * n, 931 + n, -1.0f, 1.0f);
    std::vector<float> cs(n, 0.0f), cv(n, 0.0f);
    const std::string tag = "n=" + std::to_string(n);

    simd::scalar::MatMulTile(cs.data(), a.data(), b.data(), 0, kDepth, n);
    simd::avx2::MatMulTile(cv.data(), a.data(), b.data(), 0, kDepth, n);
    ExpectBitEq(cs, cv, "MatMulTile " + tag);

    // p-tiling invariance: splitting [0, P) into uneven tiles must be
    // bitwise identical to one pass — this is what lets ops.cc and
    // ScoreTopKFused block the contraction dimension.
    std::vector<float> ct(n, 0.0f);
    simd::avx2::MatMulTile(ct.data(), a.data(), b.data(), 0, 13, n);
    simd::avx2::MatMulTile(ct.data(), a.data(), b.data(), 13, kDepth, n);
    ExpectBitEq(cv, ct, "MatMulTile p-split " + tag);

    const float ds = simd::scalar::Dot(a.data(), b.data(), kDepth);
    const float dv = simd::avx2::Dot(a.data(), b.data(), kDepth);
    ExpectBitEq(&ds, &dv, 1, "Dot " + tag);
  }
}

TEST(KernelParityTest, DispatcherClampsAndNames) {
  IsaThreadGuard guard;
  const simd::Isa got = simd::SetIsa(simd::Isa::kAvx2);
  if (simd::Avx2Supported()) {
    EXPECT_EQ(got, simd::Isa::kAvx2);
    EXPECT_STREQ(simd::IsaName(got), "avx2");
  } else {
    EXPECT_EQ(got, simd::Isa::kScalar);  // clamped
  }
  EXPECT_EQ(simd::SetIsa(simd::Isa::kScalar), simd::Isa::kScalar);
  EXPECT_STREQ(simd::IsaName(simd::Isa::kScalar), "scalar");
  EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
}

// ---- Op-level invariance: ISA x thread count, forward + backward ----------

struct GraphResult {
  std::vector<float> out;
  std::vector<std::vector<float>> grads;
};

using GraphFn = std::function<Tensor(std::vector<Tensor>&)>;
using LeafSpec = std::pair<Shape, std::vector<float>>;

/// Builds fresh leaves, runs the graph, backprops a weighted sum, and copies
/// outputs + leaf grads to plain heap vectors.
GraphResult RunGraph(const GraphFn& fn, const std::vector<LeafSpec>& specs) {
  std::vector<Tensor> leaves;
  leaves.reserve(specs.size());
  for (const LeafSpec& s : specs) {
    Tensor t = Tensor::FromVector(s.first, s.second);
    t.set_requires_grad(true);
    leaves.push_back(std::move(t));
  }
  Tensor out = fn(leaves);
  GraphResult r;
  r.out.assign(out.data().begin(), out.data().end());
  // Distinct per-element weights so every output bit reaches the loss.
  Rng wrng(4242);
  Tensor w = Tensor::Rand(out.shape(), wrng, 0.5f, 1.5f);
  out.Mul(w).Sum().Backward();
  for (Tensor& l : leaves) {
    r.grads.emplace_back(l.grad().begin(), l.grad().end());
  }
  return r;
}

/// Runs the graph at scalar/1-thread as the reference, then sweeps
/// {scalar, avx2} x {1, 2, 7} threads (and arena-vs-heap at each point)
/// asserting bitwise-identical outputs and gradients everywhere.
void CheckInvariance(const std::string& name, const GraphFn& fn,
                     const std::vector<LeafSpec>& specs) {
  IsaThreadGuard guard;
  simd::SetIsa(simd::Isa::kScalar);
  parallel::SetNumThreads(1);
  const GraphResult ref = RunGraph(fn, specs);
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    if (isa == simd::Isa::kAvx2 && !simd::Avx2Supported()) continue;
    simd::SetIsa(isa);
    for (const int threads : {1, 2, 7}) {
      parallel::SetNumThreads(threads);
      const std::string tag =
          name + " [" + simd::IsaName(isa) + ", t=" + std::to_string(threads) + "]";
      const GraphResult got = RunGraph(fn, specs);
      ExpectBitEq(got.out, ref.out, tag + " out");
      ASSERT_EQ(got.grads.size(), ref.grads.size());
      for (size_t i = 0; i < got.grads.size(); ++i) {
        ExpectBitEq(got.grads[i], ref.grads[i], tag + " grad" + std::to_string(i));
      }
      // Same point again, buffers arena-backed: placement must not change
      // one bit. Graph temporaries die inside the scope; result copies are
      // plain heap vectors.
      arena::Arena step_arena;
      GraphResult arena_got;
      {
        arena::ArenaScope scope(&step_arena);
        arena_got = RunGraph(fn, specs);
      }
      step_arena.Reset();
      ExpectBitEq(arena_got.out, ref.out, tag + " arena out");
      for (size_t i = 0; i < arena_got.grads.size(); ++i) {
        ExpectBitEq(arena_got.grads[i], ref.grads[i],
                    tag + " arena grad" + std::to_string(i));
      }
    }
  }
}

std::vector<LeafSpec> TwoLeaves(Shape sa, Shape sb, uint64_t seed,
                                bool b_away_from_zero = false) {
  const int64_t na = NumElements(sa), nb = NumElements(sb);
  std::vector<LeafSpec> specs;
  specs.emplace_back(std::move(sa), RandVec(na, seed, -1.0f, 1.0f));
  specs.emplace_back(std::move(sb), b_away_from_zero
                                        ? RandVecAwayFromZero(nb, seed + 1)
                                        : RandVec(nb, seed + 1, -1.0f, 1.0f));
  return specs;
}

TEST(OpInvarianceTest, ElementwiseSameShape) {
  CheckInvariance(
      "add-sub-mul",
      [](std::vector<Tensor>& l) {
        return l[0].Add(l[1]).Mul(l[0]).Sub(l[1]);
      },
      TwoLeaves({7, 33}, {7, 33}, 50));
  CheckInvariance(
      "div",
      [](std::vector<Tensor>& l) { return l[0].Div(l[1]); },
      TwoLeaves({5, 31}, {5, 31}, 51, /*b_away_from_zero=*/true));
}

TEST(OpInvarianceTest, ElementwiseBroadcast) {
  CheckInvariance(
      "broadcast-row-scalar",
      [](std::vector<Tensor>& l) {
        return l[0].Add(l[1]).MulScalar(1.3f).AddScalar(-0.2f);
      },
      TwoLeaves({3, 4, 9}, {9}, 52));
}

TEST(OpInvarianceTest, MatMulShapes) {
  CheckInvariance(
      "matmul-rank2",
      [](std::vector<Tensor>& l) { return l[0].MatMul(l[1]); },
      TwoLeaves({9, 33}, {33, 17}, 53));
  CheckInvariance(
      "matmul-batched",
      [](std::vector<Tensor>& l) { return l[0].MatMul(l[1]); },
      TwoLeaves({3, 5, 9}, {3, 9, 7}, 54));
  CheckInvariance(
      "matmul-shared-rhs",
      [](std::vector<Tensor>& l) { return l[0].MatMul(l[1]); },
      TwoLeaves({4, 6, 9}, {9, 5}, 55));
}

TEST(OpInvarianceTest, SoftmaxFamily) {
  CheckInvariance(
      "softmax",
      [](std::vector<Tensor>& l) { return l[0].SoftmaxLastDim(); },
      {{Shape{6, 33}, RandVec(6 * 33, 56, -2.0f, 2.0f)}});
  CheckInvariance(
      "logsoftmax",
      [](std::vector<Tensor>& l) { return l[0].LogSoftmaxLastDim(); },
      {{Shape{6, 31}, RandVec(6 * 31, 57, -2.0f, 2.0f)}});
}

TEST(OpInvarianceTest, LayerNorm) {
  std::vector<LeafSpec> specs;
  specs.emplace_back(Shape{6, 33}, RandVec(6 * 33, 58, -1.0f, 1.0f));
  specs.emplace_back(Shape{33}, RandVec(33, 59, 0.5f, 1.5f));
  specs.emplace_back(Shape{33}, RandVec(33, 60, -0.5f, 0.5f));
  CheckInvariance(
      "layernorm",
      [](std::vector<Tensor>& l) {
        return LayerNormLastDim(l[0], l[1], l[2], 1e-5f);
      },
      specs);
}

TEST(OpInvarianceTest, TransformerishComposite) {
  std::vector<LeafSpec> specs;
  specs.emplace_back(Shape{5, 9}, RandVec(5 * 9, 61, -0.5f, 0.5f));
  specs.emplace_back(Shape{9, 9}, RandVec(9 * 9, 62, -0.5f, 0.5f));
  specs.emplace_back(Shape{9}, RandVec(9, 63, 0.8f, 1.2f));
  specs.emplace_back(Shape{9}, RandVec(9, 64, -0.2f, 0.2f));
  CheckInvariance(
      "composite",
      [](std::vector<Tensor>& l) {
        Tensor h = LayerNormLastDim(l[0], l[2], l[3], 1e-5f);
        return h.MatMul(l[1]).SoftmaxLastDim();
      },
      specs);
}

// ---- ShardPlan fallback ----------------------------------------------------

TEST(ShardPlanTest, FallbackCoversEveryIndexOnceAfterThreadChange) {
  IsaThreadGuard guard;
  parallel::SetNumThreads(7);
  const parallel::ShardPlan plan = parallel::BuildShardPlan(0, 1000, 16);
  EXPECT_EQ(plan.threads, 7);
  parallel::SetNumThreads(2);  // stale plan: For(plan) must fall back
  std::vector<int> hits(1000, 0);
  parallel::For(plan, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

// ---- Arena properties ------------------------------------------------------

TEST(ArenaTest, AlignmentAndNoAliasing) {
  arena::Arena a;
  char* p1 = static_cast<char*>(a.Allocate(100));
  char* p2 = static_cast<char*>(a.Allocate(64));
  char* p3 = static_cast<char*>(a.Allocate(1));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % arena::Arena::kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % arena::Arena::kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p3) % arena::Arena::kAlign, 0u);
  // Payloads are disjoint: writing one never clobbers another.
  std::memset(p1, 0xAA, 100);
  std::memset(p2, 0xBB, 64);
  std::memset(p3, 0xCC, 1);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(static_cast<uint8_t>(p1[i]), 0xAA);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(static_cast<uint8_t>(p2[i]), 0xBB);
  ASSERT_EQ(static_cast<uint8_t>(p3[0]), 0xCC);
  EXPECT_EQ(a.live(), 3);
  arena::BufFree(p1);
  arena::BufFree(p2);
  arena::BufFree(p3);
  EXPECT_EQ(a.live(), 0);
}

TEST(ArenaTest, ResetReusesTheSameMemory) {
  arena::Arena a;
  void* p1 = a.Allocate(512);
  arena::BufFree(p1);
  a.Reset();
  // All allocations were freed, so Reset rewinds in place: the next bump
  // must land on the same base address and reserve no new slab.
  const size_t reserved = a.bytes_reserved();
  void* p2 = a.Allocate(512);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(a.bytes_reserved(), reserved);
  arena::BufFree(p2);
  a.Reset();
  EXPECT_EQ(a.bytes_used(), 0u);
}

TEST(ArenaTest, EscapeThenResetRetiresSafely) {
  const size_t retired0 = arena::Arena::RetiredBytes();
  {
    arena::Arena a;
    char* p = static_cast<char*>(a.Allocate(256));
    std::memset(p, 0x5A, 256);
    a.Reset();  // p still live: epoch must be retired, not recycled
    EXPECT_GT(arena::Arena::RetiredBytes(), retired0);
    // The escaped payload is still intact and writable.
    for (int i = 0; i < 256; ++i) ASSERT_EQ(static_cast<uint8_t>(p[i]), 0x5A);
    // New allocations come from a fresh epoch and cannot alias p.
    char* q = static_cast<char*>(a.Allocate(256));
    std::memset(q, 0xA5, 256);
    for (int i = 0; i < 256; ++i) ASSERT_EQ(static_cast<uint8_t>(p[i]), 0x5A);
    arena::BufFree(q);
    arena::BufFree(p);  // last reference: retired slabs free here
  }
  EXPECT_EQ(arena::Arena::RetiredBytes(), retired0);
}

TEST(ArenaTest, FloatBufRoutesThroughScopedArena) {
  arena::Arena a;
  {
    arena::ArenaScope scope(&a);
    EXPECT_EQ(arena::ArenaScope::Current(), &a);
    FloatBuf buf(1000, 1.0f);
    EXPECT_GE(a.bytes_used(), 1000 * sizeof(float));
    {
      // ArenaExempt suspends arena placement for persistent buffers.
      arena::ArenaExempt exempt;
      EXPECT_EQ(arena::ArenaScope::Current(), nullptr);
      const size_t used = a.bytes_used();
      FloatBuf heap_buf(1000, 2.0f);
      EXPECT_EQ(heap_buf.size(), 1000u);
      EXPECT_EQ(a.bytes_used(), used);
    }
    EXPECT_EQ(arena::ArenaScope::Current(), &a);
  }
  EXPECT_EQ(arena::ArenaScope::Current(), nullptr);
  a.Reset();
  EXPECT_EQ(a.live(), 0);
}

// ---- Plan cache ------------------------------------------------------------

TEST(PlanCacheTest, HitMissAndBoundedEviction) {
  struct Plan {
    int64_t v = 0;
  };
  plans::PlanCache<Plan> cache;
  obs::Counter& hits = obs::Registry::Global().GetCounter("tensor.plan_cache.hits");
  obs::Counter& misses =
      obs::Registry::Global().GetCounter("tensor.plan_cache.misses");
  obs::Counter& evictions =
      obs::Registry::Global().GetCounter("tensor.plan_cache.evictions");
  if (!plans::Enabled()) GTEST_SKIP() << "MSGCL_PLAN_CACHE=off";

  const int64_t h0 = hits.value(), m0 = misses.value();
  auto p1 = cache.GetOrCreate({1, 2, 3}, [] { return Plan{42}; });
  EXPECT_EQ(p1->v, 42);
  EXPECT_EQ(misses.value() - m0, 1);
  auto p2 = cache.GetOrCreate({1, 2, 3}, [] { return Plan{-1}; });
  EXPECT_EQ(p2.get(), p1.get());  // cached object, maker not invoked
  EXPECT_EQ(hits.value() - h0, 1);
  EXPECT_EQ(cache.size(), 1u);

  // Clear never invalidates outstanding plans.
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(p1->v, 42);

  // Fill to the bound; the next insert clears the map (bounded memory).
  const int64_t e0 = evictions.value();
  for (int64_t i = 0; i < static_cast<int64_t>(plans::PlanCache<Plan>::kMaxEntries);
       ++i) {
    cache.GetOrCreate({i}, [i] { return Plan{i}; });
  }
  EXPECT_EQ(cache.size(), plans::PlanCache<Plan>::kMaxEntries);
  cache.GetOrCreate({-7, -8}, [] { return Plan{7}; });
  EXPECT_GE(evictions.value() - e0,
            static_cast<int64_t>(plans::PlanCache<Plan>::kMaxEntries));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
}

TEST(PlanCacheTest, MatMulPlansAreCachedAcrossCalls) {
  if (!plans::Enabled()) GTEST_SKIP() << "MSGCL_PLAN_CACHE=off";
  obs::Counter& hits = obs::Registry::Global().GetCounter("tensor.plan_cache.hits");
  obs::Counter& misses =
      obs::Registry::Global().GetCounter("tensor.plan_cache.misses");
  Rng rng(77);
  // A shape no other test in this binary uses, so the first call must miss.
  Tensor a = Tensor::Rand({13, 41}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({41, 23}, rng, -1.0f, 1.0f);
  const int64_t m0 = misses.value();
  Tensor c1 = a.MatMul(b);
  const int64_t m1 = misses.value();
  EXPECT_GE(m1 - m0, 1);
  const int64_t h0 = hits.value();
  Tensor c2 = a.MatMul(b);
  EXPECT_GE(hits.value() - h0, 1);
  EXPECT_EQ(misses.value(), m1);  // steady state: no new plan builds
  ExpectBitEq(std::vector<float>(c1.data().begin(), c1.data().end()),
              std::vector<float>(c2.data().begin(), c2.data().end()),
              "matmul plan reuse");
}

}  // namespace
}  // namespace msgcl
