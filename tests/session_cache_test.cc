// Tests for incremental per-session scoring and the LRU KV-state cache
// (DESIGN.md §12). The load-bearing contract is BIT parity: a warm append
// against cached K/V must produce the same bits as a cold full re-encode of
// the same session window — same hidden state, same fused top-k lists — at
// every thread count. On top of that: LRU eviction order and byte-exact
// gauge accounting under a FakeClock, a TSan-clean concurrent storm,
// invalidation on hot swap (stale K/V from old weights never scored by new
// weights), and the max_len rolling-window regression (a history crossing
// max_len diverges from the cached prefix and re-encodes cold).
//
// These carry the `kvcache` ctest label so the sanitized serve presets
// (`ctest --preset asan-serve` / `tsan-serve`) pick them up alongside the
// `serve`, `chaos` and `fleet` suites.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/core.h"
#include "gtest/gtest.h"
#include "models/models.h"
#include "nn/serialize.h"
#include "obs/registry.h"
#include "parallel/parallel.h"
#include "serve/serve.h"

namespace msgcl {
namespace serve {
namespace {

constexpr int32_t kItems = 30;

/// Restores the entry thread count when a test exits (parallel_test.cc).
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallel::MaxThreads()) {}
  ~ThreadCountGuard() { parallel::SetNumThreads(saved_); }

 private:
  int saved_;
};

int64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetCounter(name).value();
}

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig b;
  b.num_items = kItems;
  b.max_len = 12;
  b.dim = 16;
  b.heads = 2;
  b.layers = 2;
  return b;
}

core::MetaSgclConfig TinyMetaSgcl(bool use_decoder) {
  core::MetaSgclConfig c;
  c.backbone = TinyBackbone();
  c.use_decoder = use_decoder;
  return c;
}

/// Deterministic synthetic history: items in [1, kItems].
std::vector<int32_t> MakeHistory(int64_t len, int64_t salt = 0) {
  std::vector<int32_t> h(static_cast<size_t>(len));
  for (int64_t i = 0; i < len; ++i) {
    h[static_cast<size_t>(i)] =
        static_cast<int32_t>((i * 7 + salt * 13 + 3) % kItems) + 1;
  }
  return h;
}

/// Bitwise equality (memcmp, not float ==).
::testing::AssertionResult BitwiseEqual(const std::vector<float>& a,
                                        const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "first bitwise difference at index " << i << ": " << a[i]
             << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult ListsBitEqual(const eval::TopKList& a,
                                         const eval::TopKList& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].item != b[i].item ||
        std::memcmp(&a[i].score, &b[i].score, sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "entry " << i << ": (" << a[i].item << ", " << a[i].score
             << ") vs (" << b[i].item << ", " << b[i].score << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

eval::TopKOptions FusedOpt(int64_t k = 10) {
  eval::TopKOptions opt;
  opt.k = k;
  opt.num_items = kItems;
  return opt;
}

/// Cold reference: fresh state, full re-encode of `window`, fused top-k.
eval::TopKList ColdTopK(eval::SessionScorer& scorer,
                        const std::vector<int32_t>& window,
                        std::vector<float>* h_last = nullptr) {
  eval::SessionState state;
  scorer.EncodeSession(window, state);
  if (h_last != nullptr) *h_last = state.h_last;
  return scorer.ScoreSessionHidden(state.h_last, 1, FusedOpt())[0];
}

/// Grows one session via warm appends and asserts, at every step, bitwise
/// parity of the hidden state AND the fused top-k list against a cold full
/// re-encode of the same window.
void CheckWarmColdParity(eval::SessionScorer& scorer) {
  const int64_t cap = scorer.session_capacity();
  const std::vector<int32_t> full = MakeHistory(cap);
  eval::SessionState warm;
  scorer.EncodeSession({full.begin(), full.begin() + 4}, warm);
  for (int64_t len = 5; len <= cap; ++len) {
    scorer.AppendSession(full[static_cast<size_t>(len - 1)], warm);
    ASSERT_EQ(warm.items.size(), static_cast<size_t>(len));
    std::vector<float> cold_h;
    const eval::TopKList cold =
        ColdTopK(scorer, {full.begin(), full.begin() + len}, &cold_h);
    ASSERT_TRUE(BitwiseEqual(warm.h_last, cold_h)) << "len " << len;
    const eval::TopKList warm_topk =
        scorer.ScoreSessionHidden(warm.h_last, 1, FusedOpt())[0];
    ASSERT_TRUE(ListsBitEqual(warm_topk, cold)) << "len " << len;
  }
}

// ---- Warm/cold bit parity ---------------------------------------------------

TEST(SessionParityTest, SasRecWarmAppendBitEqualsColdReencodeAcrossThreads) {
  ThreadCountGuard guard;
  std::vector<float> h_ref;
  eval::TopKList topk_ref;
  for (const int threads : {1, 2, 7}) {
    parallel::SetNumThreads(threads);
    models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
    model.SetTraining(false);
    CheckWarmColdParity(model);
    // The session path is also thread-count invariant (bitwise).
    std::vector<float> h;
    const eval::TopKList topk =
        ColdTopK(model, MakeHistory(model.session_capacity()), &h);
    if (threads == 1) {
      h_ref = h;
      topk_ref = topk;
    } else {
      EXPECT_TRUE(BitwiseEqual(h, h_ref)) << threads << " threads";
      EXPECT_TRUE(ListsBitEqual(topk, topk_ref)) << threads << " threads";
    }
  }
}

TEST(SessionParityTest, MetaSgclWarmAppendBitEqualsColdReencodeAcrossThreads) {
  ThreadCountGuard guard;
  for (const bool use_decoder : {true, false}) {
    for (const int threads : {1, 2, 7}) {
      parallel::SetNumThreads(threads);
      core::MetaSgcl model(TinyMetaSgcl(use_decoder), models::TrainConfig{},
                           Rng(5));
      model.SetTraining(false);
      CheckWarmColdParity(model);
    }
  }
}

TEST(SessionParityTest, ParityHoldsAfterEvictionForcesColdReencodeMidSession) {
  // Two interleaved sessions through a cache that holds exactly ONE entry:
  // every request evicts the other session, so each revisit re-encodes cold
  // mid-session — and must still match the never-evicted reference bits.
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);

  // One encoded entry's byte size (constant by contract — see below).
  auto probe = std::make_shared<eval::SessionState>();
  model.EncodeSession(MakeHistory(4, /*salt=*/0), *probe);
  const int64_t entry_bytes = probe->bytes();
  SessionCache cache(entry_bytes);  // room for exactly one session

  const void* owner = &model;
  auto serve_one = [&](uint64_t id, const std::vector<int32_t>& window)
      -> eval::TopKList {
    auto r = cache.Lookup(id, owner, 0, window);
    std::shared_ptr<eval::SessionState> state = r.state;
    if (r.outcome == SessionLookupOutcome::kWarm) {
      for (size_t i = state->items.size(); i < window.size(); ++i) {
        model.AppendSession(window[i], *state);
      }
    } else {
      state = std::make_shared<eval::SessionState>();
      state->owner = owner;
      model.EncodeSession(window, *state);
    }
    eval::TopKList topk = model.ScoreSessionHidden(state->h_last, 1,
                                                   FusedOpt())[0];
    cache.Put(id, std::move(state));
    return topk;
  };

  const std::vector<int32_t> a = MakeHistory(10, /*salt=*/1);
  const std::vector<int32_t> b = MakeHistory(10, /*salt=*/2);
  for (int64_t len = 4; len <= 10; ++len) {
    const std::vector<int32_t> wa(a.begin(), a.begin() + len);
    const std::vector<int32_t> wb(b.begin(), b.begin() + len);
    EXPECT_TRUE(ListsBitEqual(serve_one(1, wa), ColdTopK(model, wa)))
        << "session a len " << len;
    EXPECT_TRUE(ListsBitEqual(serve_one(2, wb), ColdTopK(model, wb)))
        << "session b len " << len;
  }
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_GT(cache.stats().evictions, 0);
  // Entry bytes really are constant (full-capacity Init + reserve), which is
  // what makes "capacity == one entry" and the exact gauge accounting work.
  EXPECT_EQ(cache.bytes(), entry_bytes);
}

// ---- LRU mechanics under a FakeClock ---------------------------------------

/// Synthetic session state with exactly-controlled bytes() (no model, no
/// K/V stacks; bytes() reads vector capacities, which fresh reserves pin).
std::shared_ptr<eval::SessionState> MakeState(const void* owner,
                                              uint64_t epoch,
                                              std::vector<int32_t> items,
                                              size_t floats) {
  auto s = std::make_shared<eval::SessionState>();
  s->owner = owner;
  s->epoch = epoch;
  s->items = std::move(items);
  s->items.shrink_to_fit();
  s->h_last.reserve(floats);
  s->h_last.resize(floats, 1.0f);
  return s;
}

TEST(SessionCacheLruTest, EvictsInLruOrderAndLookupRefreshesRecency) {
  const int owner_tag = 0;
  const void* owner = &owner_tag;
  FakeClock clock;
  const int64_t entry = MakeState(owner, 0, {1, 2}, 64)->bytes();
  SessionCache cache(2 * entry, &clock);

  cache.Put(10, MakeState(owner, 0, {1, 2}, 64));
  cache.Put(20, MakeState(owner, 0, {1, 2}, 64));
  EXPECT_EQ(cache.IdsMruToLru(), (std::vector<uint64_t>{20, 10}));

  // A warm Lookup moves 10 to the front...
  EXPECT_EQ(cache.Lookup(10, owner, 0, {1, 2}).outcome,
            SessionLookupOutcome::kWarm);
  EXPECT_EQ(cache.IdsMruToLru(), (std::vector<uint64_t>{10, 20}));

  // ...so the third Put evicts 20 (the LRU tail), not 10.
  cache.Put(30, MakeState(owner, 0, {1, 2}, 64));
  EXPECT_EQ(cache.IdsMruToLru(), (std::vector<uint64_t>{30, 10}));
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.Lookup(20, owner, 0, {1, 2}).outcome,
            SessionLookupOutcome::kMissAbsent);
}

TEST(SessionCacheLruTest, BytesGaugeEqualsSummedEntryBytesExactly) {
  const int owner_tag = 0;
  const void* owner = &owner_tag;
  FakeClock clock;
  auto a = MakeState(owner, 0, {1}, 32);
  auto b = MakeState(owner, 0, {1, 2, 3}, 96);
  const int64_t bytes_a = a->bytes();
  const int64_t bytes_b = b->bytes();
  SessionCache cache(1 << 20, &clock);

  cache.Put(1, std::move(a));
  EXPECT_EQ(cache.bytes(), bytes_a);
  cache.Put(2, std::move(b));
  EXPECT_EQ(cache.bytes(), bytes_a + bytes_b);
  // The obs gauges publish the same exact numbers.
  EXPECT_EQ(static_cast<int64_t>(
                obs::Registry::Global().GetGauge("serve.session_cache.bytes")
                    .value()),
            bytes_a + bytes_b);
  EXPECT_EQ(static_cast<int64_t>(
                obs::Registry::Global().GetGauge("serve.session_cache.entries")
                    .value()),
            2);

  // Replacing an entry swaps its bytes out and the new ones in, exactly.
  auto a2 = MakeState(owner, 0, {1, 2}, 128);
  const int64_t bytes_a2 = a2->bytes();
  cache.Put(1, std::move(a2));
  EXPECT_EQ(cache.bytes(), bytes_a2 + bytes_b);

  EXPECT_TRUE(cache.Erase(2));
  EXPECT_EQ(cache.bytes(), bytes_a2);
  cache.InvalidateAll();
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(static_cast<int64_t>(
                obs::Registry::Global().GetGauge("serve.session_cache.bytes")
                    .value()),
            0);
}

TEST(SessionCacheLruTest, HitMissEvictionInvalidationCountersExactDeltas) {
  const int owner_tag = 0;
  const int other_tag = 0;
  const void* owner = &owner_tag;
  const void* other = &other_tag;
  FakeClock clock;
  const int64_t entry = MakeState(owner, 0, {1, 2}, 64)->bytes();
  SessionCache cache(2 * entry, &clock);

  const SessionCache::Stats s0 = cache.stats();
  const int64_t hits0 = CounterValue("serve.session_cache.hits");
  const int64_t misses0 = CounterValue("serve.session_cache.misses");
  const int64_t evict0 = CounterValue("serve.session_cache.evictions");
  const int64_t inval0 = CounterValue("serve.session_cache.invalidations");

  // miss (absent), then a hit, then the four miss flavours + an eviction.
  EXPECT_EQ(cache.Lookup(1, owner, 0, {1, 2}).outcome,
            SessionLookupOutcome::kMissAbsent);
  cache.Put(1, MakeState(owner, 0, {1, 2}, 64));
  EXPECT_EQ(cache.Lookup(1, owner, 0, {1, 2, 9}).outcome,
            SessionLookupOutcome::kWarm);  // cached items prefix of window
  cache.Put(2, MakeState(owner, 0, {1, 2}, 64));
  cache.Put(3, MakeState(owner, 0, {1, 2}, 64));  // capacity 2: evicts LRU id 1
  EXPECT_EQ(cache.Lookup(2, other, 0, {1, 2}).outcome,
            SessionLookupOutcome::kMissStale);  // wrong owner -> invalidated
  cache.Put(2, MakeState(owner, 7, {1, 2}, 64));
  EXPECT_EQ(cache.Lookup(2, owner, 8, {1, 2}).outcome,
            SessionLookupOutcome::kMissStale);  // wrong epoch -> invalidated
  cache.Put(2, MakeState(owner, 8, {4, 5}, 64));
  EXPECT_EQ(cache.Lookup(2, owner, 8, {4, 6}).outcome,
            SessionLookupOutcome::kMissDiverged);  // not a prefix

  const SessionCache::Stats s1 = cache.stats();
  EXPECT_EQ(s1.hits - s0.hits, 1);
  EXPECT_EQ(s1.misses - s0.misses, 4);        // absent + stale*2 + diverged
  EXPECT_EQ(s1.evictions - s0.evictions, 1);  // capacity eviction only
  EXPECT_EQ(s1.invalidations - s0.invalidations, 3);  // stale*2 + diverged
  EXPECT_EQ(CounterValue("serve.session_cache.hits") - hits0, 1);
  EXPECT_EQ(CounterValue("serve.session_cache.misses") - misses0, 4);
  EXPECT_EQ(CounterValue("serve.session_cache.evictions") - evict0, 1);
  EXPECT_EQ(CounterValue("serve.session_cache.invalidations") - inval0, 3);
}

TEST(SessionCacheLruTest, EvictIdleDropsOnlyEntriesPastTheBound) {
  const int owner_tag = 0;
  const void* owner = &owner_tag;
  FakeClock clock;
  SessionCache cache(1 << 20, &clock);
  cache.Put(1, MakeState(owner, 0, {1}, 32));
  clock.Advance(10'000);
  cache.Put(2, MakeState(owner, 0, {1}, 32));
  clock.Advance(5'000);
  // id 1 idle 15ms, id 2 idle 5ms: only id 1 is past a 10ms bound.
  EXPECT_EQ(cache.EvictIdle(10'000), 1);
  EXPECT_EQ(cache.IdsMruToLru(), (std::vector<uint64_t>{2}));
  // A warm Lookup refreshes the timestamp, so id 2 now survives the bound.
  clock.Advance(8'000);
  EXPECT_EQ(cache.Lookup(2, owner, 0, {1}).outcome,
            SessionLookupOutcome::kWarm);
  clock.Advance(4'000);
  EXPECT_EQ(cache.EvictIdle(10'000), 0);
  EXPECT_EQ(cache.entries(), 1);
}

TEST(SessionCacheLruTest, OversizedEntryIsSkippedNotCached) {
  const int owner_tag = 0;
  const void* owner = &owner_tag;
  SessionCache cache(64);  // smaller than any real state
  cache.Put(1, MakeState(owner, 0, {1}, 4096));
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.Lookup(1, owner, 0, {1}).outcome,
            SessionLookupOutcome::kMissAbsent);
}

TEST(SessionCacheConcurrencyTest, ConcurrentGetPutEvictStormStaysConsistent) {
  const int owner_tag = 0;
  const void* owner = &owner_tag;
  const int64_t entry = MakeState(owner, 0, {1, 2}, 64)->bytes();
  SessionCache cache(8 * entry);  // small: constant eviction pressure
  std::atomic<int64_t> warm_hits{0};
  std::atomic<int64_t> lookups{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = static_cast<uint64_t>(t) * 2654435761u + 1;
      for (int i = 0; i < 2000; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t id = (rng >> 33) % 32;
        switch ((rng >> 20) % 4) {
          case 0:
            cache.Put(id, MakeState(owner, 0, {1, 2}, 64));
            break;
          case 1:
            cache.Erase(id);
            break;
          case 2:
            cache.EvictIdle(1);
            break;
          default:
            lookups.fetch_add(1, std::memory_order_relaxed);
            if (cache.Lookup(id, owner, 0, {1, 2}).outcome ==
                SessionLookupOutcome::kWarm) {
              warm_hits.fetch_add(1, std::memory_order_relaxed);
            }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Post-storm invariants: bookkeeping is exact, bounds were never broken.
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, static_cast<int64_t>(cache.IdsMruToLru().size()));
  EXPECT_EQ(stats.bytes, stats.entries * entry);
  EXPECT_LE(stats.bytes, 8 * entry);
  EXPECT_EQ(stats.hits, warm_hits.load());
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
}

// ---- MicroBatcher wiring ----------------------------------------------------

ServeConfig SessionServeConfig(SessionCache* cache) {
  ServeConfig c;
  c.k = 10;
  c.max_len = 12;
  c.max_batch = 1;
  c.max_wait_us = 0;
  c.num_workers = 1;
  c.session_cache = cache;
  return c;
}

Response Serve(MicroBatcher& batcher, uint64_t session_id,
               const std::vector<int32_t>& history) {
  RecommendRequest req;
  req.history = history;
  req.session_id = session_id;
  auto result = batcher.Submit(std::move(req)).get();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(MicroBatcherSessionTest, WarmResponsesBitEqualNeverCachedReplica) {
  // Two identical models (same seed). A serves through a real cache; B's
  // cache is 1 byte, so every Put is skipped and every request re-encodes
  // cold — a never-cached replica on the same session layout.
  models::SasRec model_a(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec model_b(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model_a.SetTraining(false);
  model_b.SetTraining(false);
  SessionCache cache(64 << 20);
  SessionCache never(1);
  MicroBatcher a(model_a, kItems, SessionServeConfig(&cache));
  MicroBatcher b(model_b, kItems, SessionServeConfig(&never));

  std::vector<int32_t> history = MakeHistory(5);
  for (int step = 0; step < 6; ++step) {
    if (step > 0) {
      history.push_back(static_cast<int32_t>((step * 11) % kItems) + 1);
    }
    const Response ra = Serve(a, 77, history);
    const Response rb = Serve(b, 77, history);
    EXPECT_EQ(ra.session_warm, step > 0) << "step " << step;
    EXPECT_FALSE(rb.session_warm) << "step " << step;
    EXPECT_TRUE(ListsBitEqual(ra.topk, rb.topk)) << "step " << step;
  }
  EXPECT_EQ(cache.stats().hits, 5);
  EXPECT_EQ(never.stats().entries, 0);
  a.Stop();
  b.Stop();
}

TEST(MicroBatcherSessionTest, StatelessRequestsIgnoreTheCache) {
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  SessionCache cache(64 << 20);
  MicroBatcher batcher(model, kItems, SessionServeConfig(&cache));
  const Response r = Serve(batcher, /*session_id=*/0, MakeHistory(6));
  EXPECT_FALSE(r.session_warm);
  EXPECT_EQ(r.topk.size(), 10u);
  EXPECT_EQ(cache.entries(), 0);  // session_id 0 never touches the cache
  batcher.Stop();
}

TEST(MicroBatcherSessionTest, HistoryCrossingMaxLenRollsCachedState) {
  // Satellite regression: the batcher windows histories to the last max_len
  // items. Once a session's history crosses max_len the window SLIDES, the
  // cached items are no longer a prefix, and the cache must re-encode cold
  // (kMissDiverged) rather than append against a misaligned K/V stack.
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec reference(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  reference.SetTraining(false);
  SessionCache cache(64 << 20);
  ServeConfig config = SessionServeConfig(&cache);
  MicroBatcher batcher(model, kItems, config);

  std::vector<int32_t> history = MakeHistory(config.max_len);  // == max_len
  EXPECT_FALSE(Serve(batcher, 9, history).session_warm);
  EXPECT_EQ(cache.stats().hits, 0);

  // One more item: history length max_len + 1, window = last max_len items.
  history.push_back(7);
  const Response rolled = Serve(batcher, 9, history);
  EXPECT_FALSE(rolled.session_warm) << "slid window must re-encode cold";
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_GT(cache.stats().invalidations, 0);

  // And the cold re-encode of the slid window is bit-exact: compare against
  // a never-cached replica scoring the same window with the same excludes.
  const std::vector<int32_t> window(history.end() - config.max_len,
                                    history.end());
  eval::SessionState state;
  reference.EncodeSession(window, state);
  eval::TopKOptions opt = FusedOpt(config.k);
  const std::vector<std::vector<int32_t>> exclude = {history};
  opt.exclude = &exclude;
  const eval::TopKList expect =
      reference.ScoreSessionHidden(state.h_last, 1, opt)[0];
  EXPECT_TRUE(ListsBitEqual(rolled.topk, expect));

  // Once past max_len EVERY request slides the window, so the cached items
  // are never again a prefix: a capped session re-encodes cold each time
  // (absolute positions make in-place K/V rolls impossible — which is why
  // the session loadgen retires sessions at max_len instead of growing them
  // forever).
  history.push_back(8);
  EXPECT_FALSE(Serve(batcher, 9, history).session_warm);
  batcher.Stop();
}

TEST(MicroBatcherSessionTest, FleetRoutingKeepsReturningSessionsWarm) {
  // Through the Router: replicas are built from the shared ServeConfig, so
  // one SessionCache serves the whole fleet, and consistent-hash routing on
  // the session id keeps a session's requests on one replica. A returning
  // session must hit the warm path exactly as on a single batcher.
  models::SasRec model_a(TinyBackbone(), models::TrainConfig{}, Rng(3));
  models::SasRec model_b(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model_a.SetTraining(false);
  model_b.SetTraining(false);
  SessionCache cache(64 << 20);
  FleetConfig fleet;
  fleet.replicas = 2;
  fleet.serve = SessionServeConfig(&cache);
  std::vector<eval::Ranker*> rankers = {&model_a, &model_b};
  Router router(rankers, kItems, fleet);

  for (uint64_t session = 1; session <= 8; ++session) {
    std::vector<int32_t> history = MakeHistory(5, static_cast<int64_t>(session));
    RecommendRequest req;
    req.history = history;
    req.session_id = session;
    auto first = router.Submit(session, req).get();
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_FALSE(first.value().session_warm);

    history.push_back(static_cast<int32_t>(session % kItems) + 1);
    req.history = history;
    auto second = router.Submit(session, std::move(req)).get();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_TRUE(second.value().session_warm) << "session " << session;
  }
  EXPECT_EQ(cache.stats().hits, 8);
  router.Stop();
}

// ---- Invalidation on hot swap ----------------------------------------------

TEST(SwapInvalidationTest, SwapToNewWeightsForcesColdReencodeBitEqualToReplica) {
  // Populate the cache through a SwappableRanker, hot-swap to DIFFERENT
  // weights, and assert the next request for a cached session re-encodes
  // cold (stale epoch) and matches a never-cached replica of the NEW
  // weights bit-for-bit: stale K/V from the old model is never scored by
  // the new one.
  const models::BackboneConfig backbone = TinyBackbone();
  models::SasRec active(backbone, models::TrainConfig{}, Rng(3));
  models::SasRec standby(backbone, models::TrainConfig{}, Rng(4));
  models::SasRec rollout(backbone, models::TrainConfig{}, Rng(5));
  models::SasRec replica(backbone, models::TrainConfig{}, Rng(5));
  active.SetTraining(false);
  standby.SetTraining(false);
  rollout.SetTraining(false);
  replica.SetTraining(false);

  SwapConfig swap_config;
  swap_config.k = 10;
  swap_config.max_len = backbone.max_len;
  SwappableRanker swapper(SwappableRanker::Slot{&active, &active},
                          SwappableRanker::Slot{&standby, &standby}, kItems,
                          swap_config);
  ASSERT_TRUE(swapper.session_supported());
  EXPECT_EQ(swapper.session_epoch(), 0u);

  SessionCache cache(64 << 20);
  MicroBatcher batcher(swapper, kItems, SessionServeConfig(&cache));

  std::vector<int32_t> history = MakeHistory(6);
  EXPECT_FALSE(Serve(batcher, 42, history).session_warm);
  history.push_back(9);
  EXPECT_TRUE(Serve(batcher, 42, history).session_warm);
  EXPECT_EQ(cache.entries(), 1);

  // Roll out genuinely different weights (seed 5 != 3).
  const std::string path = ::testing::TempDir() + "/session_swap_rollout.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(rollout, path).ok());
  const Status s = swapper.SwapFromCheckpoint(path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(swapper.session_epoch(), 1u);

  // Next request: same session id, grown history. Must be COLD (the cached
  // epoch is stale) and bit-equal to a never-cached replica of the new
  // weights scoring the same window with the same excludes.
  history.push_back(11);
  const Response r = Serve(batcher, 42, history);
  EXPECT_FALSE(r.session_warm);

  eval::SessionState state;
  replica.EncodeSession(history, state);  // len 8 < max_len: window == full
  eval::TopKOptions opt = FusedOpt(10);
  const std::vector<std::vector<int32_t>> exclude = {history};
  opt.exclude = &exclude;
  const eval::TopKList expect =
      replica.ScoreSessionHidden(state.h_last, 1, opt)[0];
  EXPECT_TRUE(ListsBitEqual(r.topk, expect));

  // The re-encoded state is tagged with the new epoch: warm again next time.
  history.push_back(13);
  EXPECT_TRUE(Serve(batcher, 42, history).session_warm);
  batcher.Stop();
}

TEST(SwapInvalidationTest, RejectedSwapDoesNotBumpEpochOrColdSessions) {
  const models::BackboneConfig backbone = TinyBackbone();
  models::SasRec active(backbone, models::TrainConfig{}, Rng(3));
  models::SasRec standby(backbone, models::TrainConfig{}, Rng(4));
  active.SetTraining(false);
  standby.SetTraining(false);
  SwapConfig swap_config;
  swap_config.k = 10;
  swap_config.max_len = backbone.max_len;
  swap_config.min_hr = 1.1;  // unattainable: every rollout is rejected
  // A non-empty golden batch so the smoke-score stage actually runs.
  for (int i = 0; i < 4; ++i) {
    swap_config.golden.histories.push_back(MakeHistory(5, i));
    swap_config.golden.targets.push_back(static_cast<int32_t>(i + 1));
  }
  SwappableRanker swapper(SwappableRanker::Slot{&active, &active},
                          SwappableRanker::Slot{&standby, &standby}, kItems,
                          swap_config);
  SessionCache cache(64 << 20);
  MicroBatcher batcher(swapper, kItems, SessionServeConfig(&cache));

  std::vector<int32_t> history = MakeHistory(6);
  EXPECT_FALSE(Serve(batcher, 8, history).session_warm);
  EXPECT_FALSE(swapper.SwapFromModule(standby).ok());
  EXPECT_EQ(swapper.session_epoch(), 0u);

  // A failed rollout must NOT cost cached sessions their warm path.
  history.push_back(3);
  EXPECT_TRUE(Serve(batcher, 8, history).session_warm);
  batcher.Stop();
}

// ---- Idle eviction without traffic ------------------------------------------
//
// Before this fix EvictIdle only ran from the batch-scoring path: a cache
// with no traffic kept idle sessions resident forever. Now the worker loop
// ticks on `session_idle_evict_us` (clock-injectable) and Stop() runs one
// final sweep, so idle entries vanish even when no request ever arrives.

TEST(IdleEvictionTest, TimerTickEvictsIdleSessionsWithoutTraffic) {
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  FakeClock clock;  // shared by cache and batcher: one timeline
  SessionCache cache(64 << 20, &clock);
  ServeConfig config = SessionServeConfig(&cache);
  config.session_idle_evict_us = 10'000;
  MicroBatcher batcher(model, kItems, config, &clock);

  Serve(batcher, 8, MakeHistory(6));
  ASSERT_EQ(cache.entries(), 1);

  // No further traffic. Advancing the shared clock past the idle bound
  // wakes the worker's WaitUntil; the tick alone must clear the entry.
  clock.Advance(config.session_idle_evict_us + 1);
  for (int i = 0; i < 500 && cache.entries() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(cache.entries(), 0);
  batcher.Stop();
}

TEST(IdleEvictionTest, StopRunsAFinalIdleSweep) {
  models::SasRec model(TinyBackbone(), models::TrainConfig{}, Rng(3));
  model.SetTraining(false);
  // Split clocks pin the attribution: the cache ages on a FakeClock while
  // the batcher ticks on the system clock with an hour-long bound, so no
  // timer tick can fire within the test — only Stop() can evict.
  FakeClock cache_clock;
  SessionCache cache(64 << 20, &cache_clock);
  ServeConfig config = SessionServeConfig(&cache);
  config.session_idle_evict_us = 3'600'000'000;  // 1h on the batcher clock
  MicroBatcher batcher(model, kItems, config);

  Serve(batcher, 8, MakeHistory(6));
  ASSERT_EQ(cache.entries(), 1);
  cache_clock.Advance(config.session_idle_evict_us + 1);
  ASSERT_EQ(cache.entries(), 1);  // aged out, but nothing has swept yet

  batcher.Stop();
  EXPECT_EQ(cache.entries(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace msgcl
