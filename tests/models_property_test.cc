// Property-style sweeps over the model zoo: every trainable model must
// improve over its untrained self, respect scoring contracts across
// configuration sweeps, and exhibit its architecture's defining behaviour.
#include <cmath>
#include <memory>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "gtest/gtest.h"
#include "models/models.h"

namespace msgcl {
namespace {

data::SequenceDataset TinySplit(uint64_t seed = 7) {
  auto log = data::GenerateSynthetic(data::TinyDataset(seed)).value();
  return data::LeaveOneOutSplit(log);
}

models::TrainConfig Train(int64_t epochs) {
  models::TrainConfig t;
  t.epochs = epochs;
  t.batch_size = 64;
  t.max_len = 12;
  t.lr = 3e-3f;
  t.seed = 3;
  return t;
}

models::BackboneConfig Backbone(const data::SequenceDataset& ds, int64_t dim = 16) {
  models::BackboneConfig b;
  b.num_items = ds.num_items;
  b.max_len = 12;
  b.dim = dim;
  b.heads = 2;
  b.layers = 1;
  b.dropout = 0.1f;
  return b;
}

double TestNdcg(eval::Ranker& model, const data::SequenceDataset& ds) {
  eval::EvalConfig cfg;
  cfg.max_len = 12;
  return eval::Evaluate(model, ds, eval::Split::kTest, cfg).ndcg10;
}

// ---------- Every neural model learns something ----------

enum class ModelKind {
  kSasRec, kGru4Rec, kCaser, kBert4Rec, kVsan, kAcvae,
  kDuoRec, kContrastVae, kCl4SRec, kSrma, kMetaSgcl,
};

std::unique_ptr<models::Recommender> Make(ModelKind kind, const data::SequenceDataset& ds,
                                          const models::TrainConfig& t) {
  Rng rng(11);
  switch (kind) {
    case ModelKind::kSasRec:
      return std::make_unique<models::SasRec>(Backbone(ds), t, rng);
    case ModelKind::kGru4Rec: {
      models::Gru4RecConfig c;
      c.num_items = ds.num_items;
      c.dim = 16;
      return std::make_unique<models::Gru4Rec>(c, t, rng);
    }
    case ModelKind::kCaser: {
      models::CaserConfig c;
      c.num_items = ds.num_items;
      c.dim = 16;
      return std::make_unique<models::Caser>(c, t, rng);
    }
    case ModelKind::kBert4Rec: {
      models::Bert4RecConfig c;
      c.backbone = Backbone(ds);
      return std::make_unique<models::Bert4Rec>(c, t, rng);
    }
    case ModelKind::kVsan: {
      models::VsanConfig c;
      c.backbone = Backbone(ds);
      return std::make_unique<models::Vsan>(c, t, rng);
    }
    case ModelKind::kAcvae: {
      models::AcvaeConfig c;
      c.backbone = Backbone(ds);
      return std::make_unique<models::Acvae>(c, t, rng);
    }
    case ModelKind::kDuoRec: {
      models::DuoRecConfig c;
      c.backbone = Backbone(ds);
      c.tau = 0.5f;
      c.similarity = nn::Similarity::kCosine;
      return std::make_unique<models::DuoRec>(c, t, rng);
    }
    case ModelKind::kContrastVae: {
      models::ContrastVaeConfig c;
      c.backbone = Backbone(ds);
      return std::make_unique<models::ContrastVae>(std::move(c), t, rng);
    }
    case ModelKind::kCl4SRec: {
      models::Cl4SRecConfig c;
      c.backbone = Backbone(ds);
      return std::make_unique<models::Cl4SRec>(std::move(c), t, rng);
    }
    case ModelKind::kSrma: {
      models::SrmaConfig c;
      c.backbone = Backbone(ds);
      c.backbone.layers = 2;
      return std::make_unique<models::Srma>(c, t, rng);
    }
    case ModelKind::kMetaSgcl: {
      core::MetaSgclConfig c;
      c.backbone = Backbone(ds);
      c.use_decoder = false;
      return std::make_unique<core::MetaSgcl>(c, t, rng);
    }
  }
  return nullptr;
}

class ModelZooSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelZooSweep, MoreTrainingDoesNotHurtMaterially) {
  auto ds = TinySplit(99);
  auto baseline = Make(GetParam(), ds, Train(1));
  auto trained = Make(GetParam(), ds, Train(12));
  baseline->Fit(ds);
  trained->Fit(ds);
  const double before = TestNdcg(*baseline, ds);
  const double after = TestNdcg(*trained, ds);
  EXPECT_GE(after, before - 0.03) << "12-epoch model much worse than 1-epoch model";
}

TEST_P(ModelZooSweep, ScoresAreFiniteAndRowComplete) {
  auto ds = TinySplit(98);
  auto model = Make(GetParam(), ds, Train(1));
  model->Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0, 1, 2, 3, 4}, 12);
  auto scores = model->ScoreAll(b);
  ASSERT_EQ(scores.size(), 5u * (ds.num_items + 1));
  for (float s : scores) ASSERT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooSweep,
    ::testing::Values(ModelKind::kSasRec, ModelKind::kGru4Rec, ModelKind::kCaser,
                      ModelKind::kBert4Rec, ModelKind::kVsan, ModelKind::kAcvae,
                      ModelKind::kDuoRec, ModelKind::kContrastVae, ModelKind::kCl4SRec,
                      ModelKind::kSrma, ModelKind::kMetaSgcl));

// ---------- Architecture-defining behaviours ----------

TEST(ModelBehaviourTest, SasRecIsOrderSensitive) {
  auto ds = TinySplit(55);
  models::SasRec model(Backbone(ds), Train(10), Rng(1));
  model.Fit(ds);
  // Score the same multiset of items in two different orders.
  std::vector<std::vector<int32_t>> a = {{1, 5, 9, 13}};
  std::vector<std::vector<int32_t>> b = {{13, 9, 5, 1}};
  auto sa = model.ScoreAll(data::MakeEvalBatch(a, {0}, 12));
  auto sb = model.ScoreAll(data::MakeEvalBatch(b, {0}, 12));
  EXPECT_NE(sa, sb) << "a sequential model must be order-sensitive";
}

TEST(ModelBehaviourTest, PopIsOrderInsensitive) {
  auto ds = TinySplit(55);
  models::Pop model;
  model.Fit(ds);
  std::vector<std::vector<int32_t>> a = {{1, 5, 9}};
  std::vector<std::vector<int32_t>> b = {{9, 5, 1}};
  EXPECT_EQ(model.ScoreAll(data::MakeEvalBatch(a, {0}, 12)),
            model.ScoreAll(data::MakeEvalBatch(b, {0}, 12)));
}

TEST(ModelBehaviourTest, MetaSgclDimensionSweepStaysFinite) {
  auto ds = TinySplit(56);
  for (int64_t dim : {8, 16, 32}) {
    core::MetaSgclConfig c;
    c.backbone = Backbone(ds, dim);
    c.use_decoder = false;
    core::MetaSgcl model(c, Train(2), Rng(2));
    model.Fit(ds);
    data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
    for (float s : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(s)) << "dim=" << dim;
  }
}

TEST(ModelBehaviourTest, MetaSgclTemperatureSweepStaysFinite) {
  auto ds = TinySplit(57);
  for (float tau : {0.05f, 0.5f, 5.0f}) {
    core::MetaSgclConfig c;
    c.backbone = Backbone(ds);
    c.tau = tau;
    c.use_decoder = false;
    core::MetaSgcl model(c, Train(2), Rng(3));
    model.Fit(ds);
    data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
    for (float s : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(s)) << "tau=" << tau;
  }
}

TEST(ModelBehaviourTest, Bert4RecMaskProbSweep) {
  auto ds = TinySplit(58);
  for (float p : {0.1f, 0.3f, 0.6f}) {
    models::Bert4RecConfig c;
    c.backbone = Backbone(ds);
    c.mask_prob = p;
    models::Bert4Rec model(c, Train(2), Rng(4));
    model.Fit(ds);
    data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
    for (float s : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(s)) << "p=" << p;
  }
}

TEST(ModelBehaviourTest, CaserFilterConfigSweep) {
  auto ds = TinySplit(59);
  models::CaserConfig c;
  c.num_items = ds.num_items;
  c.dim = 16;
  c.h_filter_heights = {2, 5};
  c.h_filters_per_height = 2;
  c.v_filters = 3;
  models::Caser model(c, Train(2), Rng(5));
  model.Fit(ds);
  data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
  for (float s : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(s));
}

TEST(ModelBehaviourTest, MetaStepsSweepRuns) {
  auto ds = TinySplit(60);
  for (int64_t steps : {1, 3}) {
    core::MetaSgclConfig c;
    c.backbone = Backbone(ds);
    c.use_decoder = false;
    c.meta_steps = steps;
    core::MetaSgcl model(c, Train(2), Rng(6));
    model.Fit(ds);
    data::Batch b = data::MakeEvalBatch(ds.train_seqs, {0}, 12);
    for (float s : model.ScoreAll(b)) ASSERT_TRUE(std::isfinite(s));
  }
}

}  // namespace
}  // namespace msgcl
