// Tests for dataset statistics (data/stats.h) and learning-rate schedules
// (nn/schedule.h).
#include <cmath>

#include "data/data.h"
#include "gtest/gtest.h"
#include "nn/schedule.h"

namespace msgcl {
namespace {

// ---------- LogStats ----------

TEST(LogStatsTest, LengthsOfKnownLog) {
  data::InteractionLog log;
  log.num_items = 10;
  log.sequences = {{1, 2}, {3, 4, 5, 6}, {7, 8, 9}};
  auto s = data::ComputeLogStats(log);
  EXPECT_NEAR(s.mean_length, 3.0, 1e-9);
  EXPECT_EQ(s.median_length, 3.0);
  EXPECT_EQ(s.max_length, 4);
}

TEST(LogStatsTest, UniformItemsHaveLowGini) {
  data::InteractionLog log;
  log.num_items = 4;
  log.sequences = {{1, 2, 3, 4}, {1, 2, 3, 4}};
  auto s = data::ComputeLogStats(log);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
}

TEST(LogStatsTest, ConcentratedItemsHaveHighGini) {
  data::InteractionLog log;
  log.num_items = 10;
  log.sequences = {std::vector<int32_t>(50, 1)};
  log.sequences[0].push_back(2);
  auto s = data::ComputeLogStats(log);
  EXPECT_GT(s.gini, 0.8);
  EXPECT_GT(s.top10_share, 0.99);
}

TEST(LogStatsTest, DeterministicChainHasZeroTransitionEntropy) {
  data::InteractionLog log;
  log.num_items = 3;
  // 1 -> 2 -> 3 -> 1 -> ... always.
  log.sequences = {{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3}};
  auto s = data::ComputeLogStats(log, /*min_support=*/3);
  EXPECT_NEAR(s.transition_entropy, 0.0, 1e-9);
}

TEST(LogStatsTest, RandomTransitionsHaveHighEntropy) {
  Rng rng(1);
  data::InteractionLog log;
  log.num_items = 8;
  std::vector<int32_t> seq;
  for (int i = 0; i < 4000; ++i) {
    seq.push_back(1 + static_cast<int32_t>(rng.UniformInt(8)));
  }
  log.sequences = {seq};
  auto s = data::ComputeLogStats(log);
  EXPECT_GT(s.transition_entropy, 0.9);
}

TEST(LogStatsTest, SyntheticGeneratorIsPredictableButNotDeterministic) {
  auto log = data::GenerateSynthetic(data::TinyDataset()).value();
  auto s = data::ComputeLogStats(log);
  EXPECT_GT(s.transition_entropy, 0.02);  // noise exists
  EXPECT_LT(s.transition_entropy, 0.75);  // but transitions carry signal
}

// ---------- LR schedules ----------

TEST(ScheduleTest, ConstantIsConstant) {
  nn::ConstantLr s(0.01f);
  EXPECT_EQ(s.Lr(0), 0.01f);
  EXPECT_EQ(s.Lr(100000), 0.01f);
}

TEST(ScheduleTest, StepDecayHalvesAtBoundaries) {
  nn::StepDecayLr s(1.0f, 10, 0.5f);
  EXPECT_EQ(s.Lr(0), 1.0f);
  EXPECT_EQ(s.Lr(9), 1.0f);
  EXPECT_EQ(s.Lr(10), 0.5f);
  EXPECT_EQ(s.Lr(25), 0.25f);
}

TEST(ScheduleTest, WarmupRampsLinearly) {
  nn::WarmupCosineLr s(1.0f, 10, 100);
  EXPECT_NEAR(s.Lr(0), 0.1f, 1e-6);
  EXPECT_NEAR(s.Lr(4), 0.5f, 1e-6);
  EXPECT_NEAR(s.Lr(9), 1.0f, 1e-6);
}

TEST(ScheduleTest, CosineDecaysToMin) {
  nn::WarmupCosineLr s(1.0f, 0, 100, 0.1f);
  EXPECT_NEAR(s.Lr(0), 1.0f, 1e-5);
  EXPECT_NEAR(s.Lr(50), 0.55f, 1e-4);   // halfway point of cosine
  EXPECT_NEAR(s.Lr(100), 0.1f, 1e-5);
  EXPECT_NEAR(s.Lr(100000), 0.1f, 1e-5);  // clamped
}

TEST(ScheduleTest, MonotoneDecreasingAfterWarmup) {
  nn::WarmupCosineLr s(1.0f, 5, 50);
  for (int64_t t = 5; t < 49; ++t) {
    EXPECT_GE(s.Lr(t), s.Lr(t + 1));
  }
}

}  // namespace
}  // namespace msgcl
