#include "parallel/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace msgcl {
namespace parallel {
namespace {

constexpr int kMaxThreadCap = 256;

thread_local bool tl_in_parallel = false;
thread_local int tl_thread_index = 0;

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int InitialThreads() {
  if (const char* env = std::getenv("MSGCL_NUM_THREADS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) {
      return static_cast<int>(std::min<long>(v, kMaxThreadCap));
    }
  }
  return HardwareThreads();
}

std::atomic<int> g_num_threads{0};  // 0 = not yet initialized

/// One loop execution shared between the submitting thread and the workers.
/// Heap-allocated and reference-counted so a worker that wakes late for an
/// already-finished task only touches exhausted counters, never a dead frame.
struct Task {
  const std::function<void(int64_t)>* chunk_fn = nullptr;
  int64_t nchunks = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
};

/// Fixed pool of workers, spawned lazily on the first parallel region that
/// needs them. Chunks are claimed with an atomic counter (dynamic assignment
/// is safe: chunk *boundaries*, not chunk-to-thread placement, determine the
/// numeric result).
class Pool {
 public:
  static Pool& Get() {
    static Pool pool;
    return pool;
  }

  void Run(int nthreads, int64_t nchunks, const std::function<void(int64_t)>& chunk_fn) {
    auto task = std::make_shared<Task>();
    task->chunk_fn = &chunk_fn;
    task->nchunks = nchunks;
    EnsureWorkers(nthreads - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = task;
      active_workers_ = std::min<int64_t>(nthreads - 1, nchunks);
      ++generation_;
    }
    work_cv_.notify_all();
    RunChunks(*task);  // the submitting thread works too
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return task->done.load(std::memory_order_acquire) == task->nchunks;
    });
    current_.reset();
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

 private:
  Pool() = default;

  void EnsureWorkers(int needed) {
    std::lock_guard<std::mutex> lock(spawn_mu_);
    while (static_cast<int>(workers_.size()) < needed) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { WorkerLoop(index); });
    }
  }

  void WorkerLoop(int index) {
    tl_thread_index = index + 1;
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Task> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          return shutdown_ ||
                 (generation_ != seen && index < active_workers_ && current_ != nullptr);
        });
        if (shutdown_) return;
        seen = generation_;
        task = current_;
      }
      RunChunks(*task);
    }
  }

  void RunChunks(Task& task) {
    tl_in_parallel = true;
    for (;;) {
      const int64_t c = task.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= task.nchunks) break;
      (*task.chunk_fn)(c);
      if (task.done.fetch_add(1, std::memory_order_acq_rel) + 1 == task.nchunks) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    tl_in_parallel = false;
  }

  std::mutex mu_;
  std::mutex spawn_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Task> current_;
  uint64_t generation_ = 0;
  int64_t active_workers_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

int MaxThreads() {
  int n = g_num_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    n = InitialThreads();
    int expected = 0;
    if (!g_num_threads.compare_exchange_strong(expected, n)) {
      n = expected;
    }
  }
  return n;
}

void SetNumThreads(int n) {
  n = std::max(1, std::min(n, kMaxThreadCap));
  g_num_threads.store(n, std::memory_order_relaxed);
}

bool InParallelRegion() { return tl_in_parallel; }

int ThreadIndex() { return tl_thread_index; }

void For(int64_t begin, int64_t end, int64_t grain,
         const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t max_chunks = (range + grain - 1) / grain;
  const int64_t nchunks = std::min<int64_t>(MaxThreads(), max_chunks);
  if (nchunks <= 1 || tl_in_parallel) {
    fn(begin, end);
    return;
  }
  // Even static split: first `rem` chunks get one extra index.
  const int64_t base = range / nchunks;
  const int64_t rem = range % nchunks;
  Pool::Get().Run(static_cast<int>(nchunks), nchunks, [&](int64_t c) {
    const int64_t b = begin + c * base + std::min(c, rem);
    fn(b, b + base + (c < rem ? 1 : 0));
  });
}

ShardPlan BuildShardPlan(int64_t begin, int64_t end, int64_t grain) {
  ShardPlan plan;
  plan.begin = begin;
  plan.end = end;
  plan.grain = grain < 1 ? 1 : grain;
  plan.threads = MaxThreads();
  const int64_t range = end - begin;
  if (range <= 0) return plan;
  // Mirror For()'s static split exactly.
  const int64_t max_chunks = (range + plan.grain - 1) / plan.grain;
  const int64_t nchunks = std::min<int64_t>(plan.threads, max_chunks);
  const int64_t base = range / nchunks;
  const int64_t rem = range % nchunks;
  plan.chunks.reserve(nchunks);
  for (int64_t c = 0; c < nchunks; ++c) {
    const int64_t b = begin + c * base + std::min(c, rem);
    plan.chunks.emplace_back(b, b + base + (c < rem ? 1 : 0));
  }
  return plan;
}

void For(const ShardPlan& plan, const std::function<void(int64_t, int64_t)>& fn) {
  if (plan.chunks.empty()) return;
  if (plan.threads != MaxThreads()) {
    // Stale plan: recompute via the pure-function path — identical result.
    For(plan.begin, plan.end, plan.grain, fn);
    return;
  }
  if (plan.chunks.size() == 1 || tl_in_parallel) {
    fn(plan.begin, plan.end);
    return;
  }
  Pool::Get().Run(static_cast<int>(plan.chunks.size()),
                  static_cast<int64_t>(plan.chunks.size()), [&](int64_t c) {
                    const auto& ch = plan.chunks[static_cast<size_t>(c)];
                    fn(ch.first, ch.second);
                  });
}

int64_t NumFixedChunks(int64_t range, int64_t chunk) {
  if (range <= 0) return 0;
  if (chunk < 1) chunk = 1;
  return (range + chunk - 1) / chunk;
}

void ForFixedChunks(int64_t begin, int64_t end, int64_t chunk,
                    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (chunk < 1) chunk = 1;
  const int64_t nchunks = (range + chunk - 1) / chunk;
  auto run_chunk = [&](int64_t c) {
    const int64_t b = begin + c * chunk;
    fn(c, b, std::min(end, b + chunk));
  };
  const int64_t threads = std::min<int64_t>(MaxThreads(), nchunks);
  if (threads <= 1 || tl_in_parallel) {
    for (int64_t c = 0; c < nchunks; ++c) run_chunk(c);
    return;
  }
  Pool::Get().Run(static_cast<int>(threads), nchunks, run_chunk);
}

}  // namespace parallel
}  // namespace msgcl
