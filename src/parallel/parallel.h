// Deterministic intra-op parallelism (see DESIGN.md "Determinism under
// parallelism").
//
// A lazily-initialized fixed-size thread pool executes contiguous index
// chunks of a loop. Determinism contract: every kernel routed through this
// module produces bitwise-identical results for any thread count, because
//
//  * `For` partitions the range by a pure function of (range, grain,
//    MaxThreads()) and is only used for loops whose writes are disjoint per
//    index — any partition yields the same result.
//  * `ForFixedChunks` partitions by a pure function of (range, chunk) ONLY —
//    independent of the thread count — so per-chunk floating-point partials
//    combined serially in chunk index order give one reduction tree
//    regardless of how many threads computed the chunks.
//
// Thread count: `MSGCL_NUM_THREADS` env var at first use, overridable at any
// time with SetNumThreads(); defaults to the hardware concurrency. Nested
// calls run serially inline on the calling thread.
//
// The loop body must not throw and must not invoke tensor-graph operations
// (it may only touch raw buffers); MSGCL_CHECK aborts are fine.
#ifndef MSGCL_PARALLEL_PARALLEL_H_
#define MSGCL_PARALLEL_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace msgcl {
namespace parallel {

/// Configured maximum thread count (>= 1). First call reads
/// MSGCL_NUM_THREADS; unset/invalid falls back to hardware concurrency.
int MaxThreads();

/// Sets the thread count for subsequent parallel regions (clamped to
/// [1, 256]). Safe to call between regions at any point in the program.
void SetNumThreads(int n);

/// True while the calling thread is executing inside a parallel region
/// (nested For/ForFixedChunks therefore run serially inline).
bool InParallelRegion();

/// Stable small id for the calling thread: 0 for any thread outside the
/// pool (including the one submitting a parallel region), 1 + worker index
/// for pool workers. Used by the observability trace to label events.
int ThreadIndex();

/// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end) into at
/// most MaxThreads() contiguous chunks of roughly >= grain indices. The
/// partition is a pure function of (end - begin, grain, MaxThreads()).
///
/// Use ONLY for loops whose writes are disjoint per index (or per row the
/// index owns); then the result is bitwise-invariant under the thread count.
void For(int64_t begin, int64_t end, int64_t grain,
         const std::function<void(int64_t, int64_t)>& fn);

/// A precomputed For() partition: exactly the chunk list For(begin, end,
/// grain, fn) would build for the MaxThreads() captured at build time.
/// Immutable and shareable — the tensor plan cache stores one per op shape
/// so repeated steps skip the shard-grain arithmetic entirely.
struct ShardPlan {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int threads = 1;  // MaxThreads() when the plan was built
  std::vector<std::pair<int64_t, int64_t>> chunks;
};

/// Builds the partition For() would use right now for [begin, end) at the
/// given grain.
ShardPlan BuildShardPlan(int64_t begin, int64_t end, int64_t grain);

/// Runs fn over a prebuilt partition. Falls back to For(begin, end, grain,
/// fn) when the thread count changed since the plan was built (the
/// partition is a pure function of range/grain/threads, so the fallback is
/// the partition a fresh plan would contain). Same disjoint-writes contract
/// as For().
void For(const ShardPlan& plan, const std::function<void(int64_t, int64_t)>& fn);

/// Number of chunks ForFixedChunks will produce: ceil(range / chunk).
int64_t NumFixedChunks(int64_t range, int64_t chunk);

/// Runs fn(chunk_index, chunk_begin, chunk_end) over chunks of exactly
/// `chunk` indices (the last one may be shorter). Chunk boundaries depend
/// only on (range, chunk) — never on the thread count — so order-sensitive
/// reductions store per-chunk partials indexed by chunk_index and combine
/// them serially in index order for a thread-count-invariant result.
void ForFixedChunks(int64_t begin, int64_t end, int64_t chunk,
                    const std::function<void(int64_t, int64_t, int64_t)>& fn);

}  // namespace parallel
}  // namespace msgcl

#endif  // MSGCL_PARALLEL_PARALLEL_H_
