// Publish-with-probation for the hot-swap layer (DESIGN.md §15).
//
// PublishController wraps SwappableRanker's validated swap with the last
// line of defense the drift gate cannot provide: live-signal auto-rollback.
// A candidate that parses, has finite weights, and clears the golden batch
// can still hurt real traffic; so after a successful flip the controller
// holds the new model in *probation* for a configured window, watching
// signals the validation gate cannot see:
//
//   * the serving circuit breaker opening (the score path started failing),
//   * the degraded-response fraction over the window exceeding a ceiling,
//   * an arbitrary caller-supplied trip predicate (the online loop plugs the
//     post-publish holdout drift check in here).
//
// If any signal trips, the controller swaps back to the previous model.
// Rollback is bit-exact by construction — after a successful flip the
// standby slot still holds exactly the bits that were serving before
// (SwappableRanker::SwapBackToPrevious) — and the controller additionally
// *verifies* this against a snapshot pinned before the publish, so the
// outcome reports proven bit-equality rather than assumed.
//
// State machine (per PublishAndProbe call):
//
//     idle --SwapFromModule rejected--> rejected (active model untouched)
//       \--flip ok--> probation --window elapses clean--> published
//                        \--signal trips--> rolled back (bit-verified)
//
// The controller never touches the traffic path: probing reads counters and
// breaker state, and the only writes are the swaps themselves.
#ifndef MSGCL_SERVE_PUBLISH_H_
#define MSGCL_SERVE_PUBLISH_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "obs/registry.h"
#include "serve/clock.h"
#include "serve/micro_batcher.h"
#include "serve/model_swap.h"
#include "tensor/status.h"

namespace msgcl {
namespace serve {

/// Probation-window configuration.
struct ProbationConfig {
  /// How long a freshly published model stays on probation. 0 publishes
  /// without probation (swap-and-done; no rollback arm).
  int64_t window_us = 0;
  /// How often live signals are polled inside the window.
  int64_t check_interval_us = 1000;
  /// Ceiling on degraded responses / total responses over the window; a
  /// negative value disables the check.
  double max_degraded_frac = -1.0;
  /// Roll back if the attached batcher's breaker is open at any poll.
  bool trip_on_breaker_open = true;

  Status Validate() const {
    if (window_us < 0) return Status::InvalidArgument("window_us must be >= 0");
    if (window_us > 0 && check_interval_us <= 0) {
      return Status::InvalidArgument("check_interval_us must be positive");
    }
    if (max_degraded_frac > 1.0) {
      return Status::InvalidArgument("max_degraded_frac must be <= 1");
    }
    return Status::Ok();
  }
};

/// What one PublishAndProbe call did.
struct PublishOutcome {
  bool published = false;    // candidate survived probation and is serving
  bool rolled_back = false;  // a live signal tripped; prior model restored
  bool bit_exact = false;    // rollback verified identical to the pinned snapshot
  std::string reason;        // why it was rejected / rolled back (empty on clean publish)
};

/// Drives SwapFromModule + probation + auto-rollback. One publish runs at a
/// time (serialized internally); the traffic path is never blocked by it.
class PublishController {
 public:
  /// `ranker` must outlive the controller. `clock` defaults to SystemClock;
  /// tests pass a FakeClock and drive the probation window with Advance().
  /// `batcher` (optional, non-owning) supplies the breaker signal.
  PublishController(SwappableRanker& ranker, ProbationConfig config,
                    Clock* clock = nullptr, const MicroBatcher* batcher = nullptr)
      : ranker_(ranker),
        config_(std::move(config)),
        clock_(clock != nullptr ? clock : &SystemClock::Instance()),
        batcher_(batcher) {
    const Status s = config_.Validate();
    if (!s.ok()) throw std::invalid_argument(s.ToString());
  }

  /// Extra trip predicate evaluated at every probation poll. Returns true to
  /// roll back, optionally filling `*why`. The online loop installs its
  /// post-publish holdout drift check here. Not thread-safe against a
  /// concurrent PublishAndProbe.
  using TripFn = std::function<bool(std::string* why)>;
  void SetExtraTrip(TripFn fn) { extra_trip_ = std::move(fn); }

  /// Publishes `candidate` through the validated swap gate, then holds it on
  /// probation. Returns only after the window elapses clean (published), a
  /// signal trips (rolled back), or the swap gate rejects the candidate.
  PublishOutcome PublishAndProbe(const nn::Module& candidate) {
    std::lock_guard<std::mutex> publish_lock(publish_mu_);
    Counter("serve.publish.attempts").Add(1);
    PublishOutcome out;

    // Pin the serving bits. If probation trips, rollback must restore
    // exactly these.
    const std::vector<std::vector<float>> pinned = ranker_.SnapshotActiveWeights();

    if (Status s = ranker_.SwapFromModule(candidate); !s.ok()) {
      Counter("serve.publish.rejected").Add(1);
      out.reason = s.ToString();
      return out;
    }

    if (config_.window_us == 0) {
      Counter("serve.publish.published").Add(1);
      out.published = true;
      return out;
    }

    // Probation: poll live signals until the window elapses or one trips.
    const int64_t start_us = clock_->NowUs();
    const int64_t end_us = start_us + config_.window_us;
    const int64_t degraded0 = Counter("serve.degraded").value();
    const int64_t served0 = Counter("serve.requests_served").value();
    std::string trip_reason;
    int64_t now = start_us;
    for (;;) {
      if (Tripped(degraded0, served0, &trip_reason)) break;
      if (now >= end_us) break;
      const int64_t deadline = std::min(end_us, now + config_.check_interval_us);
      std::unique_lock<std::mutex> lock(probe_mu_);
      clock_->WaitUntil(probe_cv_, lock, deadline,
                        [this, deadline] { return clock_->NowUs() >= deadline; });
      now = clock_->NowUs();
    }

    if (trip_reason.empty()) {
      Counter("serve.publish.published").Add(1);
      out.published = true;
      return out;
    }

    // A live signal tripped: restore the prior model and verify the bits.
    Counter("serve.publish.probation_trips").Add(1);
    out.rolled_back = true;
    out.reason = trip_reason;
    if (Status s = ranker_.SwapBackToPrevious(); !s.ok()) {
      // The prior model failed its own gate on the way back — nothing sane
      // to serve but the candidate; report loudly instead of flapping.
      out.rolled_back = false;
      out.reason += "; rollback FAILED: " + s.ToString();
      return out;
    }
    Counter("serve.publish.rollbacks").Add(1);
    out.bit_exact = ranker_.SnapshotActiveWeights() == pinned;
    return out;
  }

 private:
  static obs::Counter& Counter(const std::string& name) {
    return obs::Registry::Global().GetCounter(name);
  }

  /// Evaluates every live signal against the window-start counter baseline.
  bool Tripped(int64_t degraded0, int64_t served0, std::string* why) {
    if (config_.trip_on_breaker_open && batcher_ != nullptr &&
        batcher_->breaker().state() == BreakerState::kOpen) {
      *why = "circuit breaker open during probation";
      return true;
    }
    if (config_.max_degraded_frac >= 0.0) {
      const int64_t degraded = Counter("serve.degraded").value() - degraded0;
      const int64_t served =
          (Counter("serve.requests_served").value() - served0) + degraded;
      if (served > 0) {
        const double frac = static_cast<double>(degraded) / static_cast<double>(served);
        if (frac > config_.max_degraded_frac) {
          *why = "degraded fraction " + std::to_string(frac) + " exceeds ceiling " +
                 std::to_string(config_.max_degraded_frac);
          return true;
        }
      }
    }
    if (extra_trip_) {
      std::string extra;
      if (extra_trip_(&extra)) {
        *why = extra.empty() ? "external trip signal" : extra;
        return true;
      }
    }
    return false;
  }

  SwappableRanker& ranker_;
  const ProbationConfig config_;
  Clock* clock_;
  const MicroBatcher* batcher_;
  TripFn extra_trip_;

  std::mutex publish_mu_;  // one publish at a time
  std::mutex probe_mu_;    // backs the probation wait only
  std::condition_variable probe_cv_;
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_PUBLISH_H_
