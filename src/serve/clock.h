// Injectable microsecond clock for the serving subsystem.
//
// The MicroBatcher never reads the wall clock directly: all "now", deadline,
// and wait decisions go through a Clock so tests can drive batch formation
// deterministically with FakeClock (same submissions + same Advance calls =>
// same batches, bit for bit), while production uses SystemClock.
#ifndef MSGCL_SERVE_CLOCK_H_
#define MSGCL_SERVE_CLOCK_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace msgcl {
namespace serve {

/// Time source + wait primitive. WaitUntil cooperates with the caller's
/// mutex/condition-variable pair: `lock` must be held on entry, `wake` is
/// evaluated under it, and the call returns once `wake()` is true or the
/// clock has reached `deadline_us` (spurious returns are allowed — callers
/// re-check their own state, as with any condition variable).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds since an arbitrary epoch.
  virtual int64_t NowUs() = 0;

  virtual void WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                         int64_t deadline_us, const std::function<bool()>& wake) = 0;

  /// Waits with no deadline (until `wake()` becomes true).
  virtual void Wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                    const std::function<bool()>& wake) {
    cv.wait(lock, wake);
  }
};

/// Wall-clock implementation on std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  static SystemClock& Instance() {
    static SystemClock clock;
    return clock;
  }

  int64_t NowUs() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                 int64_t deadline_us, const std::function<bool()>& wake) override {
    const auto tp = std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::microseconds(deadline_us)));
    cv.wait_until(lock, tp, [&] { return wake() || NowUs() >= deadline_us; });
  }
};

/// Manually-advanced clock for deterministic tests. Time only moves on
/// Advance(), which wakes every thread blocked in WaitUntil/Wait so waiters
/// re-evaluate their predicates against the new time.
///
/// Lifetime contract: waiters (and the mutex/cv they wait on) must outlive
/// any concurrent Advance() call — in tests both belong to the same fixture.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_us = 0) : now_us_(start_us) {}

  int64_t NowUs() override { return now_us_.load(std::memory_order_relaxed); }

  /// Moves time forward and wakes all registered waiters. Briefly acquires
  /// each waiter's mutex before notifying so a waiter that evaluated its
  /// predicate against the old time has either gone to sleep (and gets the
  /// notification) or will re-read the advanced time — no lost wakeups.
  void Advance(int64_t delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_relaxed);
    std::vector<Waiter> waiters;
    {
      std::lock_guard<std::mutex> g(mu_);
      waiters = waiters_;
    }
    for (const Waiter& w : waiters) {
      { std::lock_guard<std::mutex> g(*w.mu); }
      w.cv->notify_all();
    }
  }

  void WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                 int64_t deadline_us, const std::function<bool()>& wake) override {
    Registration reg(this, &cv, lock.mutex());
    cv.wait(lock, [&] { return wake() || NowUs() >= deadline_us; });
  }

  void Wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
            const std::function<bool()>& wake) override {
    Registration reg(this, &cv, lock.mutex());
    cv.wait(lock, wake);
  }

 private:
  struct Waiter {
    std::condition_variable* cv = nullptr;
    std::mutex* mu = nullptr;
  };

  /// RAII registration of a (cv, mutex) pair for the duration of one wait.
  class Registration {
   public:
    Registration(FakeClock* clock, std::condition_variable* cv, std::mutex* mu)
        : clock_(clock), waiter_{cv, mu} {
      std::lock_guard<std::mutex> g(clock_->mu_);
      clock_->waiters_.push_back(waiter_);
    }
    ~Registration() {
      std::lock_guard<std::mutex> g(clock_->mu_);
      auto& ws = clock_->waiters_;
      for (auto it = ws.begin(); it != ws.end(); ++it) {
        if (it->cv == waiter_.cv && it->mu == waiter_.mu) {
          ws.erase(it);
          break;
        }
      }
    }

   private:
    FakeClock* clock_;
    Waiter waiter_;
  };

  std::atomic<int64_t> now_us_;
  std::mutex mu_;
  std::vector<Waiter> waiters_;
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_CLOCK_H_
