// Circuit breaker + health state machine for the serving layer
// (DESIGN.md §10).
//
// The breaker wraps the MicroBatcher's scoring call and tracks consecutive
// batch failures (scoring exceptions, non-finite scores, timeouts):
//
//   Healthy --(degraded_after consecutive failures)--> Degraded
//   Degraded --(open_after consecutive failures)-----> Open
//   any state --(one success)------------------------> Healthy
//
// While Open, scoring is skipped entirely: batches are served from the
// degraded-mode FallbackRanker (or failed with Unavailable when no fallback
// is configured). After `open_backoff_us` the breaker admits exactly one
// half-open probe batch to the real model; a successful probe closes the
// breaker, a failed probe re-opens it with exponentially grown backoff
// (capped at max_backoff_us). All timing goes through the injected Clock, so
// the full Healthy -> Open -> Healthy cycle is FakeClock-testable.
//
// Observability (ungated, like the runtime counters):
//   serve.breaker.state            gauge   0=Healthy 1=Degraded 2=Open
//   serve.breaker.failures         counter batch failures reported
//   serve.breaker.opens            counter transitions into Open (incl. re-opens)
//   serve.breaker.probes           counter half-open probe batches admitted
//   serve.breaker.probe_successes  counter probes that closed the breaker
#ifndef MSGCL_SERVE_BREAKER_H_
#define MSGCL_SERVE_BREAKER_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "obs/registry.h"
#include "serve/clock.h"
#include "tensor/status.h"

namespace msgcl {
namespace serve {

/// Serving health states, in order of degradation.
enum class BreakerState { kHealthy = 0, kDegraded = 1, kOpen = 2 };

inline const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kHealthy: return "healthy";
    case BreakerState::kDegraded: return "degraded";
    case BreakerState::kOpen: return "open";
  }
  return "unknown";
}

/// Circuit-breaker thresholds and backoff schedule.
struct BreakerConfig {
  int64_t degraded_after = 1;       // consecutive failures to enter Degraded
  int64_t open_after = 3;           // consecutive failures to open
  int64_t open_backoff_us = 100000; // Open hold time before the first probe
  double backoff_multiplier = 2.0;  // backoff growth per failed probe
  int64_t max_backoff_us = 10000000;

  Status Validate() const {
    if (degraded_after < 1) {
      return Status::InvalidArgument("degraded_after must be >= 1");
    }
    if (open_after < degraded_after) {
      return Status::InvalidArgument("open_after must be >= degraded_after");
    }
    if (open_backoff_us <= 0) {
      return Status::InvalidArgument("open_backoff_us must be positive");
    }
    if (backoff_multiplier < 1.0) {
      return Status::InvalidArgument("backoff_multiplier must be >= 1");
    }
    if (max_backoff_us < open_backoff_us) {
      return Status::InvalidArgument("max_backoff_us must be >= open_backoff_us");
    }
    return Status::Ok();
  }

  /// A caller configuration error, so it surfaces as std::invalid_argument —
  /// never an abort. MicroBatcher constructs its breaker in the member-init
  /// list, before its own ValidateOrThrow() runs, so the breaker must throw
  /// typed on its own.
  void ValidateOrThrow() const {
    const Status s = Validate();
    if (!s.ok()) throw std::invalid_argument(s.ToString());
  }
};

/// Thread-safe breaker state machine. Callers bracket each batch with
/// OnBatchStart() (decide: score or fall back) and OnBatchResult(); at most
/// one half-open probe is in flight at a time, so concurrent workers cannot
/// hammer a struggling model.
class CircuitBreaker {
 public:
  enum class Decision { kScore, kFallback };

  /// `clock` is non-owning and must outlive the breaker.
  CircuitBreaker(const BreakerConfig& config, Clock* clock)
      : config_(config), clock_(clock), backoff_us_(config.open_backoff_us) {
    config.ValidateOrThrow();
    StateGauge().Set(static_cast<double>(BreakerState::kHealthy));
  }

  /// Decides what to do with the next batch. kScore either means the
  /// breaker is closed or this batch was admitted as the half-open probe.
  Decision OnBatchStart() {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != BreakerState::kOpen) return Decision::kScore;
    if (probe_in_flight_ || clock_->NowUs() < open_until_us_) {
      return Decision::kFallback;
    }
    probe_in_flight_ = true;
    obs::Registry::Global().GetCounter("serve.breaker.probes").Add(1);
    return Decision::kScore;
  }

  /// Reports the outcome of a batch that was admitted to scoring.
  void OnBatchResult(bool success) {
    std::lock_guard<std::mutex> lock(mu_);
    if (success) {
      if (probe_in_flight_) {
        probe_in_flight_ = false;
        obs::Registry::Global().GetCounter("serve.breaker.probe_successes").Add(1);
      }
      consecutive_failures_ = 0;
      backoff_us_ = config_.open_backoff_us;
      SetState(BreakerState::kHealthy);
      return;
    }
    obs::Registry::Global().GetCounter("serve.breaker.failures").Add(1);
    if (state_ == BreakerState::kOpen) {
      // Failed half-open probe: stay open, grow the backoff.
      probe_in_flight_ = false;
      backoff_us_ = std::min<int64_t>(
          static_cast<int64_t>(static_cast<double>(backoff_us_) *
                               config_.backoff_multiplier),
          config_.max_backoff_us);
      open_until_us_ = clock_->NowUs() + backoff_us_;
      obs::Registry::Global().GetCounter("serve.breaker.opens").Add(1);
      return;
    }
    ++consecutive_failures_;
    if (consecutive_failures_ >= config_.open_after) {
      open_until_us_ = clock_->NowUs() + backoff_us_;
      SetState(BreakerState::kOpen);
      obs::Registry::Global().GetCounter("serve.breaker.opens").Add(1);
    } else if (consecutive_failures_ >= config_.degraded_after) {
      SetState(BreakerState::kDegraded);
    }
  }

  BreakerState state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  int64_t consecutive_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return consecutive_failures_;
  }

  /// Current Open backoff (grows on failed probes; for tests).
  int64_t backoff_us() const {
    std::lock_guard<std::mutex> lock(mu_);
    return backoff_us_;
  }

  const BreakerConfig& config() const { return config_; }

 private:
  static obs::Gauge& StateGauge() {
    return obs::Registry::Global().GetGauge("serve.breaker.state");
  }

  void SetState(BreakerState s) {
    state_ = s;
    StateGauge().Set(static_cast<double>(s));
  }

  const BreakerConfig config_;
  Clock* const clock_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kHealthy;
  int64_t consecutive_failures_ = 0;
  int64_t backoff_us_ = 0;
  int64_t open_until_us_ = 0;
  bool probe_in_flight_ = false;
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_BREAKER_H_
