// Batched recommendation serving: coalesces concurrent RecommendRequests
// into eval batches and scores them through Ranker::ScoreTopK (DESIGN.md §9).
//
// Concurrency model:
//  * Submit() is thread-safe and non-blocking: it validates the request,
//    enqueues it, and returns a future.
//  * Worker threads pop up to `max_batch` requests per batch. A partial
//    batch waits at most `max_wait_us` past the arrival of its oldest
//    request before flushing.
//  * Requests whose deadline passed before scoring fail fast with
//    DEADLINE_EXCEEDED; they are dropped from the batch instead of poisoning
//    it (the surviving requests are still scored and answered).
//  * Scoring is serialized across workers by an internal mutex: the tensor
//    stack's parallel pool executes one region at a time and Module eval
//    toggling is not concurrent-safe, so one batch runs the kernels (itself
//    parallelized via src/parallel) while other workers coalesce and answer.
//
// Observability (existing registry, ungated like the runtime counters):
//  * serve.request_ns   histogram — submit→response latency per request
//  * serve.batch_size   histogram — scored requests per flushed batch
//  * serve.queue_depth  gauge     — pending requests after the last event
//  * serve.requests / serve.batches / serve.deadline_expired / serve.rejected
#ifndef MSGCL_SERVE_MICRO_BATCHER_H_
#define MSGCL_SERVE_MICRO_BATCHER_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/batching.h"
#include "eval/evaluator.h"
#include "eval/topk.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "serve/clock.h"
#include "tensor/status.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace serve {

/// One serving request: the user's interaction history plus an optional
/// absolute deadline on the batcher's clock (0 = no deadline).
struct RecommendRequest {
  std::vector<int32_t> history;
  int64_t deadline_us = 0;
};

/// Serving configuration.
struct ServeConfig {
  int64_t k = 10;              // recommendations per request
  int64_t max_len = 50;        // history window fed to the model
  bool exclude_seen = true;    // drop items already in the full history
  int64_t max_batch = 32;      // flush immediately at this many requests
  int64_t max_wait_us = 1000;  // flush a partial batch after this long
  int num_workers = 1;         // batch-forming worker threads

  Status Validate() const {
    if (k <= 0 || max_len <= 0 || max_batch <= 0) {
      return Status::InvalidArgument("k, max_len and max_batch must be positive");
    }
    if (max_wait_us < 0) return Status::InvalidArgument("max_wait_us must be >= 0");
    if (num_workers < 1) return Status::InvalidArgument("num_workers must be >= 1");
    return Status::Ok();
  }
};

/// Coalesces concurrent recommendation requests into micro-batches.
class MicroBatcher {
 public:
  /// Called after each flush with the submit-order ids of the coalesced
  /// requests (before deadline filtering) — a test/debug hook for asserting
  /// batch formation. Invoked on a worker thread outside the queue lock.
  using BatchObserver = std::function<void(const std::vector<int64_t>&)>;

  /// `model` and `clock` are non-owning and must outlive the batcher.
  /// `clock` == nullptr uses the process SystemClock.
  MicroBatcher(eval::Ranker& model, int32_t num_items, const ServeConfig& config,
               Clock* clock = nullptr)
      : model_(model),
        num_items_(num_items),
        config_(config),
        clock_(clock != nullptr ? clock : &SystemClock::Instance()) {
    MSGCL_CHECK_GT(num_items, 0);
    MSGCL_CHECK_MSG(config.Validate().ok(), config.Validate().ToString());
    workers_.reserve(static_cast<size_t>(config_.num_workers));
    for (int w = 0; w < config_.num_workers; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~MicroBatcher() { Stop(); }

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one request. The future resolves to the top-k list, or to a
  /// non-OK Status: INVALID_ARGUMENT (bad item ids, rejected immediately),
  /// DEADLINE_EXCEEDED (deadline passed before scoring), or UNAVAILABLE
  /// (batcher stopped before the request was scheduled).
  std::future<Result<eval::TopKList>> Submit(RecommendRequest req) {
    std::promise<Result<eval::TopKList>> promise;
    std::future<Result<eval::TopKList>> future = promise.get_future();
    for (const int32_t id : req.history) {
      if (id < 1 || id > num_items_) {
        promise.set_value(Status::InvalidArgument(
            "history item id " + std::to_string(id) + " outside [1, " +
            std::to_string(num_items_) + "]"));
        Counter("serve.rejected").Add(1);
        return future;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        promise.set_value(Status::Unavailable("MicroBatcher is stopped"));
        Counter("serve.rejected").Add(1);
        return future;
      }
      Pending p;
      p.id = next_id_++;
      p.arrival_us = clock_->NowUs();
      p.deadline_us = req.deadline_us;
      p.history = std::move(req.history);
      p.promise = std::move(promise);
      queue_.push_back(std::move(p));
      Gauge("serve.queue_depth").Set(static_cast<double>(queue_.size()));
    }
    Counter("serve.requests").Add(1);
    cv_.notify_all();
    return future;
  }

  /// Stops the workers and fails every still-queued request with
  /// UNAVAILABLE. Idempotent; called by the destructor.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    std::deque<Pending> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drained.swap(queue_);
      Gauge("serve.queue_depth").Set(0.0);
    }
    for (Pending& p : drained) {
      p.promise.set_value(Status::Unavailable("MicroBatcher stopped before scoring"));
    }
  }

  /// Pending (not yet coalesced) requests.
  int64_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(queue_.size());
  }

  /// Test/debug hook; set before submitting traffic.
  void set_batch_observer(BatchObserver observer) {
    std::lock_guard<std::mutex> lock(mu_);
    observer_ = std::move(observer);
  }

 private:
  struct Pending {
    int64_t id = 0;
    int64_t arrival_us = 0;
    int64_t deadline_us = 0;
    std::vector<int32_t> history;
    std::promise<Result<eval::TopKList>> promise;
  };

  // Registry helpers: resolve once per name, then relaxed atomics only.
  static obs::Counter& Counter(const std::string& name) {
    return obs::Registry::Global().GetCounter(name);
  }
  static obs::Gauge& Gauge(const std::string& name) {
    return obs::Registry::Global().GetGauge(name);
  }
  static obs::Histogram& RequestHistogram() {
    // Powers of two from ~1us to ~64s in nanoseconds; the default layout
    // tops out at ~1ms, far too small for request latencies.
    static obs::Histogram& h = []() -> obs::Histogram& {
      std::vector<double> bounds;
      for (int i = 10; i <= 36; ++i) bounds.push_back(static_cast<double>(int64_t{1} << i));
      return obs::Registry::Global().GetHistogram("serve.request_ns", std::move(bounds));
    }();
    return h;
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      clock_->Wait(cv_, lock, [&] { return stopped_ || !queue_.empty(); });
      if (stopped_) return;  // Stop() drains and fails the remainder
      // A batch exists; give it until max_wait_us past its oldest arrival
      // to fill up to max_batch.
      const int64_t flush_at_us = queue_.front().arrival_us + config_.max_wait_us;
      clock_->WaitUntil(cv_, lock, flush_at_us, [&] {
        return stopped_ || static_cast<int64_t>(queue_.size()) >= config_.max_batch;
      });
      if (stopped_) return;
      if (queue_.empty()) continue;  // another worker took the batch
      std::vector<Pending> batch;
      while (!queue_.empty() &&
             static_cast<int64_t>(batch.size()) < config_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      Gauge("serve.queue_depth").Set(static_cast<double>(queue_.size()));
      BatchObserver observer = observer_;
      lock.unlock();
      ProcessBatch(std::move(batch), observer);
      lock.lock();
    }
  }

  void ProcessBatch(std::vector<Pending> batch, const BatchObserver& observer) {
    Counter("serve.batches").Add(1);
    if (observer) {
      std::vector<int64_t> ids;
      ids.reserve(batch.size());
      for (const Pending& p : batch) ids.push_back(p.id);
      observer(ids);
    }
    // Fail expired requests fast; the rest of the batch proceeds.
    std::vector<Pending> live;
    live.reserve(batch.size());
    const int64_t now_us = clock_->NowUs();
    for (Pending& p : batch) {
      if (p.deadline_us > 0 && now_us > p.deadline_us) {
        Counter("serve.deadline_expired").Add(1);
        p.promise.set_value(Status::DeadlineExceeded(
            "deadline passed " + std::to_string(now_us - p.deadline_us) +
            "us before scoring"));
      } else {
        live.push_back(std::move(p));
      }
    }
    if (live.empty()) return;

    std::vector<std::vector<int32_t>> histories;
    std::vector<int32_t> rows;
    histories.reserve(live.size());
    rows.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      histories.push_back(live[i].history);
      rows.push_back(static_cast<int32_t>(i));
    }
    eval::TopKOptions opt;
    opt.k = config_.k;
    opt.num_items = num_items_;
    if (config_.exclude_seen) opt.exclude = &histories;  // full history, not window

    std::vector<eval::TopKList> lists;
    {
      MSGCL_OBS_SCOPE("serve.score_batch");
      // One scoring region at a time (see the concurrency model above).
      std::lock_guard<std::mutex> score_lock(score_mu_);
      NoGradGuard guard;
      data::Batch eval_batch = data::MakeEvalBatch(histories, rows, config_.max_len);
      lists = model_.ScoreTopK(eval_batch, opt);
    }
    Counter("serve.requests_served").Add(static_cast<int64_t>(live.size()));
    obs::Histogram& request_ns = RequestHistogram();
    obs::Registry::Global().GetHistogram("serve.batch_size")
        .Record(static_cast<double>(live.size()));
    const int64_t done_us = clock_->NowUs();
    for (size_t i = 0; i < live.size(); ++i) {
      request_ns.Record(static_cast<double>((done_us - live[i].arrival_us) * 1000));
      live[i].promise.set_value(std::move(lists[i]));
    }
  }

  eval::Ranker& model_;
  const int32_t num_items_;
  const ServeConfig config_;
  Clock* const clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::mutex score_mu_;
  std::deque<Pending> queue_;
  BatchObserver observer_;
  int64_t next_id_ = 0;
  bool stopped_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_MICRO_BATCHER_H_
