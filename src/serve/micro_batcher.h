// Batched recommendation serving: coalesces concurrent RecommendRequests
// into eval batches and scores them through Ranker::ScoreTopK (DESIGN.md §9),
// wrapped in an overload- and fault-resilience layer (DESIGN.md §10).
//
// Concurrency model:
//  * Submit() is thread-safe and non-blocking: it validates the request,
//    enqueues it, and returns a future. When the pending queue is at
//    `queue_capacity` the request is shed immediately (RESOURCE_EXHAUSTED)
//    instead of growing the queue without bound.
//  * Worker threads pop up to `max_batch` requests per batch. A partial
//    batch waits at most `max_wait_us` past the arrival of its oldest
//    request before flushing.
//  * Requests whose deadline passed before scoring fail fast with
//    DEADLINE_EXCEEDED; they are dropped from the batch instead of poisoning
//    it (the surviving requests are still scored and answered).
//  * Scoring is serialized by the process-wide ScoreSerializer() mutex
//    (serve/score_lock.h): the tensor stack's parallel pool executes one
//    region at a time and Module eval toggling is not concurrent-safe, so one
//    batch — from any batcher in the process — runs the kernels (themselves
//    parallelized via src/parallel) while other workers coalesce and answer.
//
// Resilience (DESIGN.md §10): every scoring call runs under a circuit
// breaker and per-batch guards — exceptions are caught, non-finite scores
// and wrong-shape results are rejected, and (when `score_timeout_us` is set)
// overlong scoring calls count as timeouts. A failed batch never returns
// garbage: its requests are served from the popularity FallbackRanker with
// `Response::degraded = true` (when configured) or fail with a typed error.
// While the breaker is Open, scoring is skipped entirely and all traffic
// degrades to the fallback until a half-open probe succeeds.
//
// Observability (existing registry, ungated like the runtime counters):
//  * serve.request_ns   histogram — submit→response latency per request
//  * serve.batch_size   histogram — scored requests per flushed batch
//  * serve.queue_depth  gauge     — pending requests after the last event
//  * serve.requests / serve.batches / serve.deadline_expired / serve.rejected
//  * serve.shed / serve.degraded / serve.score_failures / serve.breaker.*
#ifndef MSGCL_SERVE_MICRO_BATCHER_H_
#define MSGCL_SERVE_MICRO_BATCHER_H_

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/batching.h"
#include "eval/evaluator.h"
#include "eval/session.h"
#include "eval/topk.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "runtime/fault_injector.h"
#include "serve/breaker.h"
#include "serve/clock.h"
#include "serve/fallback.h"
#include "serve/score_lock.h"
#include "serve/session_cache.h"
#include "tensor/arena.h"
#include "tensor/status.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace serve {

/// One serving request: the user's interaction history plus an optional
/// absolute deadline on the batcher's clock (0 = no deadline).
///
/// Truncation policy: histories longer than ServeConfig::max_len are scored
/// on their most recent `max_len` items (left-padded window, as in offline
/// eval), but `exclude_seen` filtering always applies to the FULL history —
/// an item the user touched long ago is still never recommended back.
struct RecommendRequest {
  std::vector<int32_t> history;
  int64_t deadline_us = 0;
  /// Session identity for incremental scoring (DESIGN.md §12). 0 (default)
  /// = stateless: the request scores through the padded-window path.
  /// Nonzero = the request opts into the session layout; when the batcher
  /// has a session cache and a SessionScorer model, repeat requests with a
  /// growing history hit the warm incremental path. Clients must send the
  /// full cumulative history each time — the cache reconciles via a prefix
  /// check and re-encodes cold on any divergence.
  uint64_t session_id = 0;
};

/// One serving response. `degraded` marks best-effort results produced by
/// the popularity FallbackRanker instead of the model (breaker open, or the
/// batch failed its scoring guards).
struct Response {
  eval::TopKList topk;
  bool degraded = false;
  /// True when this request was served from cached session state (warm
  /// incremental path); false for cold session encodes, stateless requests
  /// and degraded responses.
  bool session_warm = false;
};

/// Serving configuration.
struct ServeConfig {
  int64_t k = 10;              // recommendations per request
  int64_t max_len = 50;        // history window fed to the model
  bool exclude_seen = true;    // drop items already in the full history
  int64_t max_batch = 32;      // flush immediately at this many requests
  int64_t max_wait_us = 1000;  // flush a partial batch after this long
  int num_workers = 1;         // batch-forming worker threads

  // ---- Resilience (DESIGN.md §10) ----
  /// Admission control: maximum pending (not yet coalesced) requests; a
  /// Submit beyond this fails fast with RESOURCE_EXHAUSTED and bumps
  /// `serve.shed`. 0 = unbounded (the pre-resilience behaviour).
  int64_t queue_capacity = 0;
  /// When > 0, a scoring call that takes longer than this (on the batcher's
  /// clock) counts as a batch failure — the breaker sees a timeout and the
  /// batch degrades to the fallback instead of returning very late.
  int64_t score_timeout_us = 0;
  /// Circuit-breaker thresholds/backoff for the scoring call.
  BreakerConfig breaker;
  /// Degraded-mode ranker served while the breaker is open or a batch fails
  /// its guards (non-owning; must outlive the batcher). nullptr = failed
  /// batches get typed errors instead of best-effort results.
  const FallbackRanker* fallback = nullptr;
  /// Optional deterministic serve-fault source (non-owning; chaos drills).
  runtime::ServeFaultInjector* fault_injector = nullptr;

  // ---- Incremental session scoring (DESIGN.md §12) ----
  /// Per-session transformer-state cache (non-owning; must outlive the
  /// batcher; may be shared across fleet replicas — scoring is serialized
  /// process-wide). nullptr disables the session path entirely; with a cache
  /// set, requests carrying a nonzero session_id score incrementally when
  /// the model implements eval::SessionScorer.
  SessionCache* session_cache = nullptr;
  /// When > 0 (and a session cache is set), entries idle longer than this
  /// are evicted after each scored batch.
  int64_t session_idle_evict_us = 0;

  Status Validate() const {
    if (k <= 0 || max_len <= 0 || max_batch <= 0) {
      return Status::InvalidArgument("k, max_len and max_batch must be positive");
    }
    if (max_wait_us < 0) return Status::InvalidArgument("max_wait_us must be >= 0");
    if (num_workers < 1) return Status::InvalidArgument("num_workers must be >= 1");
    if (queue_capacity < 0) {
      return Status::InvalidArgument("queue_capacity must be >= 0 (0 = unbounded)");
    }
    if (score_timeout_us < 0) {
      return Status::InvalidArgument("score_timeout_us must be >= 0 (0 = disabled)");
    }
    if (session_idle_evict_us < 0) {
      return Status::InvalidArgument("session_idle_evict_us must be >= 0");
    }
    if (Status s = breaker.Validate(); !s.ok()) return s;
    return Status::Ok();
  }

  /// Construction-time variant: a nonsensical config is a typed
  /// std::invalid_argument the embedding application can catch and report,
  /// not a process abort (eval/topk.h idiom).
  void ValidateOrThrow() const {
    const Status s = Validate();
    if (!s.ok()) throw std::invalid_argument(s.message());
  }
};

/// Coalesces concurrent recommendation requests into micro-batches.
class MicroBatcher {
 public:
  /// Called after each flush with the submit-order ids of the coalesced
  /// requests (before deadline filtering) — a test/debug hook for asserting
  /// batch formation. Invoked on a worker thread outside the queue lock.
  using BatchObserver = std::function<void(const std::vector<int64_t>&)>;

  /// `model` and `clock` are non-owning and must outlive the batcher.
  /// `clock` == nullptr uses the process SystemClock.
  MicroBatcher(eval::Ranker& model, int32_t num_items, const ServeConfig& config,
               Clock* clock = nullptr)
      : model_(model),
        num_items_(num_items),
        config_(config),
        clock_(clock != nullptr ? clock : &SystemClock::Instance()),
        breaker_(config.breaker, clock_) {
    MSGCL_CHECK_GT(num_items, 0);
    config.ValidateOrThrow();
    if (config_.session_cache != nullptr) {
      session_scorer_ = dynamic_cast<eval::SessionScorer*>(&model_);
      if (session_scorer_ != nullptr && !session_scorer_->session_supported()) {
        session_scorer_ = nullptr;
      }
      if (config_.session_idle_evict_us > 0) {
        next_evict_us_ = clock_->NowUs() + config_.session_idle_evict_us;
      }
    }
    workers_.reserve(static_cast<size_t>(config_.num_workers));
    for (int w = 0; w < config_.num_workers; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~MicroBatcher() { Stop(); }

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one request. The future resolves to a Response, or to a
  /// non-OK Status: INVALID_ARGUMENT (empty history / bad item ids, rejected
  /// immediately), RESOURCE_EXHAUSTED (queue at capacity, shed immediately),
  /// DEADLINE_EXCEEDED (deadline passed before scoring), UNAVAILABLE
  /// (batcher stopped, or scoring unavailable with no fallback configured),
  /// or INTERNAL (the batch failed its scoring guards and no fallback is
  /// configured).
  std::future<Result<Response>> Submit(RecommendRequest req) {
    std::promise<Result<Response>> promise;
    std::future<Result<Response>> future = promise.get_future();
    if (req.history.empty()) {
      promise.set_value(Status::InvalidArgument("history must not be empty"));
      Counter("serve.rejected").Add(1);
      return future;
    }
    for (const int32_t id : req.history) {
      if (id < 1 || id > num_items_) {
        promise.set_value(Status::InvalidArgument(
            "history item id " + std::to_string(id) + " outside [1, " +
            std::to_string(num_items_) + "]"));
        Counter("serve.rejected").Add(1);
        return future;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_state_ != StopState::kRunning) {
        promise.set_value(Status::Unavailable("MicroBatcher is stopped"));
        Counter("serve.rejected").Add(1);
        return future;
      }
      if (config_.queue_capacity > 0 &&
          static_cast<int64_t>(queue_.size()) >= config_.queue_capacity) {
        promise.set_value(Status::ResourceExhausted(
            "serving queue full (capacity " +
            std::to_string(config_.queue_capacity) + ")"));
        Counter("serve.shed").Add(1);
        return future;
      }
      Pending p;
      p.id = next_id_++;
      p.arrival_us = clock_->NowUs();
      p.deadline_us = req.deadline_us;
      p.session_id = req.session_id;
      p.history = std::move(req.history);
      p.promise = std::move(promise);
      queue_.push_back(std::move(p));
      Gauge("serve.queue_depth").Set(static_cast<double>(queue_.size()));
    }
    Counter("serve.requests").Add(1);
    cv_.notify_all();
    return future;
  }

  /// Stops the workers and fails every still-queued request with
  /// UNAVAILABLE. Idempotent and fully synchronized: any number of threads
  /// may call Stop() concurrently (the fleet Router stops replicas it has
  /// already failed out, and the destructor calls it again); exactly one
  /// caller performs the shutdown, and every other caller blocks until the
  /// workers are joined and the queue is drained, so no Stop() returns while
  /// promises are still unresolved. A Submit racing with Stop resolves
  /// deterministically: either it enqueued before the stop state flipped
  /// (and is failed by the drain below) or it observes the state and is
  /// rejected synchronously — it never hangs or leaks its promise.
  void Stop() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_state_ == StopState::kStopped) return;
      if (stop_state_ == StopState::kStopping) {
        // Another thread is shutting down; wait for it to finish so Stop()
        // means "stopped and drained" for every caller.
        cv_.wait(lock, [&] { return stop_state_ == StopState::kStopped; });
        return;
      }
      stop_state_ = StopState::kStopping;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    std::deque<Pending> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drained.swap(queue_);
      Gauge("serve.queue_depth").Set(0.0);
    }
    for (Pending& p : drained) {
      p.promise.set_value(Status::Unavailable("MicroBatcher stopped before scoring"));
    }
    // Final idle sweep: entries whose session went idle while the batcher
    // was draining are trimmed even though no further batch will ever score
    // (the cache may be shared with a successor batcher after a restart).
    if (config_.session_cache != nullptr && config_.session_idle_evict_us > 0) {
      config_.session_cache->EvictIdle(config_.session_idle_evict_us);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_state_ = StopState::kStopped;
    }
    cv_.notify_all();
  }

  /// Pending (not yet coalesced) requests.
  int64_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(queue_.size());
  }

  /// The scoring circuit breaker (for state assertions and dashboards).
  const CircuitBreaker& breaker() const { return breaker_; }

  /// Test/debug hook; set before submitting traffic.
  void set_batch_observer(BatchObserver observer) {
    std::lock_guard<std::mutex> lock(mu_);
    observer_ = std::move(observer);
  }

 private:
  struct Pending {
    int64_t id = 0;
    int64_t arrival_us = 0;
    int64_t deadline_us = 0;
    uint64_t session_id = 0;
    std::vector<int32_t> history;
    std::promise<Result<Response>> promise;
  };

  // Registry helpers: resolve once per name, then relaxed atomics only.
  static obs::Counter& Counter(const std::string& name) {
    return obs::Registry::Global().GetCounter(name);
  }
  static obs::Gauge& Gauge(const std::string& name) {
    return obs::Registry::Global().GetGauge(name);
  }
  static obs::Histogram& RequestHistogram() {
    // Powers of two from ~1us to ~64s in nanoseconds; the default layout
    // tops out at ~1ms, far too small for request latencies.
    static obs::Histogram& h = []() -> obs::Histogram& {
      std::vector<double> bounds;
      for (int i = 10; i <= 36; ++i) bounds.push_back(static_cast<double>(int64_t{1} << i));
      return obs::Registry::Global().GetHistogram("serve.request_ns", std::move(bounds));
    }();
    return h;
  }

  void WorkerLoop() {
    // With a session cache and an idle bound configured, the idle wait has a
    // deadline: the worker wakes on the next eviction tick even when no
    // request ever arrives, so idle sessions are trimmed after traffic stops
    // (before this fix EvictIdle only ran from the batch-scoring path).
    const bool evict_timer = config_.session_cache != nullptr &&
                             config_.session_idle_evict_us > 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (evict_timer) {
        clock_->WaitUntil(cv_, lock, next_evict_us_,
                          [&] { return StopRequested() || !queue_.empty(); });
        if (StopRequested()) return;
        if (clock_->NowUs() >= next_evict_us_) {
          // Claim the tick under mu_ (other workers see the new deadline),
          // then evict outside it — EvictIdle takes the cache's own lock.
          next_evict_us_ = clock_->NowUs() + config_.session_idle_evict_us;
          lock.unlock();
          config_.session_cache->EvictIdle(config_.session_idle_evict_us);
          lock.lock();
        }
        if (StopRequested()) return;
        if (queue_.empty()) continue;
      } else {
        clock_->Wait(cv_, lock, [&] { return StopRequested() || !queue_.empty(); });
        if (StopRequested()) return;  // Stop() drains and fails the remainder
      }
      // A batch exists; give it until max_wait_us past its oldest arrival
      // to fill up to max_batch.
      const int64_t flush_at_us = queue_.front().arrival_us + config_.max_wait_us;
      clock_->WaitUntil(cv_, lock, flush_at_us, [&] {
        return StopRequested() ||
               static_cast<int64_t>(queue_.size()) >= config_.max_batch;
      });
      if (StopRequested()) return;
      if (queue_.empty()) continue;  // another worker took the batch
      std::vector<Pending> batch;
      while (!queue_.empty() &&
             static_cast<int64_t>(batch.size()) < config_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      Gauge("serve.queue_depth").Set(static_cast<double>(queue_.size()));
      BatchObserver observer = observer_;
      lock.unlock();
      ProcessBatch(std::move(batch), observer);
      lock.lock();
    }
  }

  void ProcessBatch(std::vector<Pending> batch, const BatchObserver& observer) {
    Counter("serve.batches").Add(1);
    if (observer) {
      std::vector<int64_t> ids;
      ids.reserve(batch.size());
      for (const Pending& p : batch) ids.push_back(p.id);
      observer(ids);
    }
    // Fail expired requests fast; the rest of the batch proceeds.
    std::vector<Pending> live;
    live.reserve(batch.size());
    const int64_t now_us = clock_->NowUs();
    for (Pending& p : batch) {
      if (p.deadline_us > 0 && now_us > p.deadline_us) {
        Counter("serve.deadline_expired").Add(1);
        p.promise.set_value(Status::DeadlineExceeded(
            "deadline passed " + std::to_string(now_us - p.deadline_us) +
            "us before scoring"));
      } else {
        live.push_back(std::move(p));
      }
    }
    if (live.empty()) return;

    // Circuit breaker: while Open (and no probe due), skip scoring entirely.
    if (breaker_.OnBatchStart() == CircuitBreaker::Decision::kFallback) {
      ServeDegraded(std::move(live),
                    Status::Unavailable("scoring circuit breaker is open"));
      return;
    }

    std::vector<eval::TopKList> lists;
    std::vector<uint8_t> warm(live.size(), 0);  // per-row warm-session flag
    std::string failure;  // non-empty => the whole batch failed its guards
    std::string invalid;  // non-empty => malformed options, typed rejection
    {
      MSGCL_OBS_SCOPE("serve.score_batch");
      // One scoring region at a time, process-wide (see score_lock.h): fleet
      // replicas and swap validation share the same parallel pool. The
      // session path also relies on this region for atomicity: a model flip
      // (SwappableRanker) takes the same lock around its epoch bump, so a
      // batch never sees the epoch change between its epoch read and its
      // encodes/appends.
      std::lock_guard<std::mutex> score_lock(ScoreSerializer());
      NoGradGuard guard;
      runtime::ServeFaultInjector* injector = config_.fault_injector;
      const runtime::ServeFaultKind fault =
          injector != nullptr ? injector->NextBatchFault()
                              : runtime::ServeFaultKind::kNone;
      const int64_t score_start_us = clock_->NowUs();
      try {
        if (fault == runtime::ServeFaultKind::kSlowScore) injector->InjectSlow();
        if (fault == runtime::ServeFaultKind::kScoreThrow) injector->ThrowScoreFault();
        // Forward-pass temporaries bump-allocate from the batcher's arena
        // (reset below). First batch on heap — see arena.h: anything the
        // model lazily sizes on first use must not pin a slab. Results
        // (TopKList, session h_last, K/V) are plain heap vectors.
        if (first_score_batch_) {
          lists = ScoreLive(live, warm);
          first_score_batch_ = false;
        } else {
          arena::ArenaScope arena_scope(&score_arena_);
          lists = ScoreLive(live, warm);
        }
      } catch (const std::invalid_argument& e) {
        // Malformed TopKOptions (k <= 0, negative num_items, bad shard
        // range): the scoring layer throws instead of MSGCL_CHECK-aborting
        // (PR 5 typed-error convention) and the batch is rejected below with
        // INVALID_ARGUMENT — a deterministic caller error, so no fallback
        // and no breaker signal.
        invalid = e.what();
      } catch (const std::exception& e) {
        failure = std::string("scoring threw: ") + e.what();
      } catch (...) {
        failure = "scoring threw a non-std exception";
      }
      score_arena_.Reset();
      if (failure.empty() && invalid.empty() &&
          fault == runtime::ServeFaultKind::kNaNScores) {
        std::vector<float*> slots;
        for (eval::TopKList& list : lists) {
          for (eval::ScoredItem& s : list) slots.push_back(&s.score);
        }
        injector->PoisonScores(slots);
      }
      if (failure.empty() && invalid.empty()) {
        failure = CheckBatchHealth(lists, live.size());
      }
      if (failure.empty() && config_.score_timeout_us > 0) {
        const int64_t elapsed_us = clock_->NowUs() - score_start_us;
        if (elapsed_us > config_.score_timeout_us) {
          failure = "scoring timeout: " + std::to_string(elapsed_us) + "us > " +
                    std::to_string(config_.score_timeout_us) + "us";
        }
      }
    }

    if (!invalid.empty()) {
      Counter("serve.rejected").Add(static_cast<int64_t>(live.size()));
      for (Pending& p : live) {
        p.promise.set_value(Status::InvalidArgument(invalid));
      }
      return;
    }
    if (!failure.empty()) {
      Counter("serve.score_failures").Add(1);
      breaker_.OnBatchResult(false);
      ServeDegraded(std::move(live), Status::Internal(failure));
      return;
    }
    breaker_.OnBatchResult(true);

    Counter("serve.requests_served").Add(static_cast<int64_t>(live.size()));
    obs::Histogram& request_ns = RequestHistogram();
    obs::Registry::Global().GetHistogram("serve.batch_size")
        .Record(static_cast<double>(live.size()));
    const int64_t done_us = clock_->NowUs();
    for (size_t i = 0; i < live.size(); ++i) {
      request_ns.Record(static_cast<double>((done_us - live[i].arrival_us) * 1000));
      live[i].promise.set_value(Response{std::move(lists[i]), /*degraded=*/false,
                                         /*session_warm=*/warm[i] != 0});
    }
  }

  /// Scores all live requests, splitting them into the stateless padded
  /// window path and the incremental session path (DESIGN.md §12), and
  /// merges the lists back into submit order. Runs under ScoreSerializer().
  std::vector<eval::TopKList> ScoreLive(const std::vector<Pending>& live,
                                        std::vector<uint8_t>& warm) {
    SessionCache* cache = config_.session_cache;
    const bool sessions_on = cache != nullptr && session_scorer_ != nullptr;
    std::vector<size_t> legacy_rows, session_rows;
    legacy_rows.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      ((sessions_on && live[i].session_id != 0) ? session_rows : legacy_rows)
          .push_back(i);
    }

    std::vector<eval::TopKList> lists(live.size());

    if (!legacy_rows.empty()) {
      std::vector<std::vector<int32_t>> histories;
      std::vector<int32_t> rows;
      histories.reserve(legacy_rows.size());
      rows.reserve(legacy_rows.size());
      for (size_t j = 0; j < legacy_rows.size(); ++j) {
        histories.push_back(live[legacy_rows[j]].history);
        rows.push_back(static_cast<int32_t>(j));
      }
      eval::TopKOptions opt;
      opt.k = config_.k;
      opt.num_items = num_items_;
      if (config_.exclude_seen) opt.exclude = &histories;  // full history, not window
      data::Batch eval_batch = data::MakeEvalBatch(histories, rows, config_.max_len);
      std::vector<eval::TopKList> out = model_.ScoreTopK(eval_batch, opt);
      MSGCL_CHECK_EQ(out.size(), legacy_rows.size());
      for (size_t j = 0; j < legacy_rows.size(); ++j) {
        lists[legacy_rows[j]] = std::move(out[j]);
      }
    }

    if (!session_rows.empty()) {
      // Epoch read FIRST: a model flip after this point can only make the
      // entries we Put conservatively stale (re-encoded cold next time),
      // never let stale K/V pass as fresh. (Flips additionally serialize
      // with this whole region via ScoreSerializer().)
      const void* owner = &model_;
      const uint64_t epoch = session_scorer_->session_epoch();
      const int64_t cap = session_scorer_->session_capacity();
      const int64_t dim = session_scorer_->session_dim();
      std::vector<float> hidden(session_rows.size() * static_cast<size_t>(dim));
      std::vector<std::vector<int32_t>> exclude;
      if (config_.exclude_seen) exclude.reserve(session_rows.size());
      for (size_t j = 0; j < session_rows.size(); ++j) {
        const Pending& p = live[session_rows[j]];
        // Scoring window: the most recent min(len, max_len) items — the
        // same truncation the padded path applies, so cache and batcher
        // always agree on what is being scored.
        const int64_t n = static_cast<int64_t>(p.history.size());
        const int64_t w = std::min<int64_t>(n, cap);
        const std::vector<int32_t> window(p.history.end() - w, p.history.end());
        SessionCache::LookupResult found =
            cache->Lookup(p.session_id, owner, epoch, window);
        std::shared_ptr<eval::SessionState> state = found.state;
        if (found.outcome == SessionLookupOutcome::kWarm) {
          // Append the suffix (possibly empty: an identical replay reuses
          // h_last outright).
          for (size_t t = state->items.size(); t < window.size(); ++t) {
            session_scorer_->AppendSession(window[t], *state);
          }
          warm[session_rows[j]] = 1;
          Counter("serve.session.warm").Add(1);
        } else {
          state = std::make_shared<eval::SessionState>();
          state->owner = owner;
          state->epoch = epoch;
          session_scorer_->EncodeSession(window, *state);
          Counter("serve.session.cold").Add(1);
        }
        MSGCL_CHECK_EQ(static_cast<int64_t>(state->h_last.size()), dim);
        std::copy(state->h_last.begin(), state->h_last.end(),
                  hidden.begin() + static_cast<int64_t>(j) * dim);
        cache->Put(p.session_id, std::move(state));
        if (config_.exclude_seen) exclude.push_back(p.history);  // full history
      }
      eval::TopKOptions opt;
      opt.k = config_.k;
      opt.num_items = num_items_;
      if (config_.exclude_seen) opt.exclude = &exclude;
      std::vector<eval::TopKList> out = session_scorer_->ScoreSessionHidden(
          hidden, static_cast<int64_t>(session_rows.size()), opt);
      MSGCL_CHECK_EQ(out.size(), session_rows.size());
      for (size_t j = 0; j < session_rows.size(); ++j) {
        lists[session_rows[j]] = std::move(out[j]);
      }
      if (config_.session_idle_evict_us > 0) {
        cache->EvictIdle(config_.session_idle_evict_us);
      }
    }
    return lists;
  }

  /// Per-batch numeric/shape guard: the scorer must return one list per live
  /// request, no list longer than k, and every score finite — anything else
  /// fails the batch instead of handing garbage to clients.
  std::string CheckBatchHealth(const std::vector<eval::TopKList>& lists,
                               size_t expected_rows) const {
    if (lists.size() != expected_rows) {
      return "scorer returned " + std::to_string(lists.size()) + " rows for " +
             std::to_string(expected_rows) + " requests";
    }
    for (size_t b = 0; b < lists.size(); ++b) {
      if (static_cast<int64_t>(lists[b].size()) > config_.k) {
        return "row " + std::to_string(b) + " has " +
               std::to_string(lists[b].size()) + " items (k = " +
               std::to_string(config_.k) + ")";
      }
      for (const eval::ScoredItem& s : lists[b]) {
        if (!std::isfinite(s.score)) {
          return "non-finite score for item " + std::to_string(s.item) +
                 " in row " + std::to_string(b);
        }
      }
    }
    return std::string();
  }

  /// Answers a batch the model could not serve: from the fallback ranker
  /// (tagged degraded) when configured, otherwise with `error`.
  void ServeDegraded(std::vector<Pending> live, const Status& error) {
    if (config_.fallback == nullptr || !config_.fallback->ready()) {
      for (Pending& p : live) p.promise.set_value(error);
      return;
    }
    Counter("serve.degraded").Add(static_cast<int64_t>(live.size()));
    obs::Histogram& request_ns = RequestHistogram();
    const int64_t done_us = clock_->NowUs();
    for (Pending& p : live) {
      eval::ExcludeSet exclude;
      if (config_.exclude_seen) {
        exclude.InsertRange(p.history);
        exclude.Seal();
      }
      Response r;
      r.topk = config_.fallback->TopK(config_.k, exclude);
      r.degraded = true;
      request_ns.Record(static_cast<double>((done_us - p.arrival_us) * 1000));
      p.promise.set_value(std::move(r));
    }
  }

  eval::Ranker& model_;
  /// Set when a session cache is configured and the model supports the
  /// incremental path; nullptr sends everything through the padded path.
  eval::SessionScorer* session_scorer_ = nullptr;
  const int32_t num_items_;
  const ServeConfig config_;
  Clock* const clock_;
  CircuitBreaker breaker_;
  /// Scoring-scope temporaries bump-allocate here; only touched under the
  /// process-wide ScoreSerializer() mutex, which also orders Reset() against
  /// the next batch's allocations.
  arena::Arena score_arena_;
  bool first_score_batch_ = true;

  /// Shutdown progression: kRunning -> kStopping (one thread joins workers
  /// and drains the queue) -> kStopped (safe to return from any Stop()).
  enum class StopState { kRunning, kStopping, kStopped };

  /// True once any Stop() has begun. Requires mu_ held.
  bool StopRequested() const { return stop_state_ != StopState::kRunning; }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  BatchObserver observer_;
  int64_t next_id_ = 0;
  /// Next idle-eviction timer tick (µs, guarded by mu_); 0 when the timer is
  /// off (no session cache or no idle bound configured).
  int64_t next_evict_us_ = 0;
  StopState stop_state_ = StopState::kRunning;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_MICRO_BATCHER_H_
