// Validated hot model swap for the serving layer (DESIGN.md §11).
//
// SwappableRanker holds two model slots — active and standby — behind the
// eval::Ranker interface, so a MicroBatcher (or fleet replica) scores
// through it without knowing which snapshot is live. A rollout loads new
// weights into the STANDBY slot while traffic keeps flowing through the
// active one, then runs a validation gate, and only on success atomically
// flips the active index. Requests in flight during the flip score against
// whichever snapshot they entered with; no request is ever dropped, torn
// between snapshots, or answered from unvalidated weights.
//
// Validation gate (all stages must pass, in order):
//   1. shape/name match — enforced structurally: both slots are checked for
//      identical parameter names and shapes at construction, and checkpoint
//      loads go through nn::LoadCheckpoint's staged name/shape-verified
//      path, so a truncated or architecture-mismatched file is rejected
//      before a single byte reaches the standby weights;
//   2. finite weights — every standby parameter element must be finite,
//      catching bit-flipped or NaN-poisoned checkpoints that parse cleanly;
//   3. golden smoke score — the standby model ranks a tiny pinned batch and
//      must return structurally healthy lists (one per row, <= k items, all
//      scores finite) with HR@k / NDCG@k at or above configured floors, so
//      a quality-regressed snapshot cannot ship (the BERT4Rec replicability
//      lesson: gate every rollout on a metrics-parity check).
//
// A rejected swap leaves the active slot serving untouched and the standby
// holding the rejected weights (overwritten by the next attempt). Failures
// never touch the breaker or degraded-mode counters: rollout problems are
// the operator's page, not the traffic path's.
//
// Lock order (deadlock-free with the batcher):
//   * scoring path: ScoreSerializer() -> swap_mu_ (shared);
//   * swap path:    swap_op_mu_ -> ScoreSerializer() (smoke score, released)
//                   then ScoreSerializer() -> swap_mu_ (unique, flip).
//   swap_op_mu_ is never taken by the scoring path, and both paths acquire
//   ScoreSerializer() before swap_mu_, so there is no cycle. Holding
//   ScoreSerializer() across the flip (and the epoch bump) makes a swap
//   atomic with respect to a whole scoring batch — the session path
//   (DESIGN.md §12) relies on this: a batch reads session_epoch() and then
//   encodes/appends K/V state inside one ScoreSerializer() region, so a flip
//   can never interleave and let state from the old weights be extended or
//   tagged by the new ones.
#ifndef MSGCL_SERVE_MODEL_SWAP_H_
#define MSGCL_SERVE_MODEL_SWAP_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "data/batching.h"
#include "eval/evaluator.h"
#include "eval/session.h"
#include "eval/topk.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "obs/registry.h"
#include "runtime/fault_injector.h"
#include "serve/score_lock.h"
#include "tensor/macros.h"
#include "tensor/status.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace serve {

/// Tiny pinned evaluation set for the swap smoke score: leave-one-out style,
/// `histories[i]` must NOT contain `targets[i]` when exclude_seen is on.
struct SwapGoldenBatch {
  std::vector<std::vector<int32_t>> histories;
  std::vector<int32_t> targets;
};

/// Validation-gate configuration for SwappableRanker.
struct SwapConfig {
  int64_t k = 10;        // top-k size for the smoke score
  int64_t max_len = 50;  // history window fed to the model
  bool exclude_seen = true;
  /// Quality floors for the golden smoke score; a negative floor disables
  /// that bound (the structural health checks always apply).
  double min_hr = -1.0;
  double min_ndcg = -1.0;
  SwapGoldenBatch golden;
  /// Optional deterministic mid-swap-crash source (non-owning).
  runtime::ServeFaultInjector* fault_injector = nullptr;

  Status Validate() const {
    if (k <= 0 || max_len <= 0) {
      return Status::InvalidArgument("k and max_len must be positive");
    }
    if (golden.histories.size() != golden.targets.size()) {
      return Status::InvalidArgument("golden histories/targets size mismatch");
    }
    return Status::Ok();
  }
};

/// Double-buffered model snapshot holder with a validated atomic flip.
/// Scoring calls (ScoreAll/ScoreTopK) are safe concurrently with swap
/// attempts from any other thread; swaps themselves are serialized.
class SwappableRanker : public eval::Ranker, public eval::SessionScorer {
 public:
  /// One model snapshot: the Module exposes the weights (for loading and the
  /// finite scan), the Ranker scores them. Both typically point at the same
  /// object; non-owning, must outlive the SwappableRanker.
  struct Slot {
    nn::Module* module = nullptr;
    eval::Ranker* ranker = nullptr;
  };

  SwappableRanker(Slot active, Slot standby, int32_t num_items, SwapConfig config)
      : slots_{active, standby},
        num_items_(num_items),
        config_(std::move(config)) {
    MSGCL_CHECK_GT(num_items, 0);
    MSGCL_CHECK_MSG(config_.Validate().ok(), config_.Validate().ToString());
    for (const Slot& slot : slots_) {
      MSGCL_CHECK(slot.module != nullptr && slot.ranker != nullptr);
      slot.module->SetTraining(false);
    }
    MSGCL_CHECK_MSG(ArchitecturesMatch(*slots_[0].module, *slots_[1].module),
                    "active and standby slots must have identical parameter "
                    "names and shapes");
    for (size_t i = 0; i < 2; ++i) {
      session_inner_[i] = dynamic_cast<eval::SessionScorer*>(slots_[i].ranker);
      if (session_inner_[i] != nullptr && !session_inner_[i]->session_supported()) {
        session_inner_[i] = nullptr;
      }
    }
    Gauge("serve.swap.active_slot").Set(0.0);
  }

  // ---- eval::Ranker (scoring path) ----------------------------------------

  std::string name() const override {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    return slots_[active_].ranker->name();
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    return slots_[active_].ranker->ScoreAll(batch);
  }

  /// Delegates so the active model's fused top-k path (and its bit-identity
  /// guarantee) is preserved through the swap layer.
  std::vector<eval::TopKList> ScoreTopK(const data::Batch& batch,
                                        const eval::TopKOptions& options) override {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    return slots_[active_].ranker->ScoreTopK(batch, options);
  }

  // ---- eval::SessionScorer (session scoring path, DESIGN.md §12) ----------
  //
  // Delegates to the active slot under the same shared lock as ScoreTopK.
  // session_epoch() is the successful-swap count, bumped atomically with the
  // flip while holding ScoreSerializer(): every cached session entry is
  // tagged with the epoch it was encoded under, so after a flip every entry
  // looks stale and is re-encoded cold by the new model — stale K/V from the
  // old weights is never scored by the new ones.

  bool session_supported() const override {
    return session_inner_[0] != nullptr && session_inner_[1] != nullptr;
  }

  uint64_t session_epoch() const override {
    return static_cast<uint64_t>(swaps_.load(std::memory_order_acquire));
  }

  int64_t session_capacity() const override {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    return ActiveSession()->session_capacity();
  }

  int64_t session_dim() const override {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    return ActiveSession()->session_dim();
  }

  void EncodeSession(const std::vector<int32_t>& window,
                     eval::SessionState& state) override {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    ActiveSession()->EncodeSession(window, state);
  }

  void AppendSession(int32_t item, eval::SessionState& state) override {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    ActiveSession()->AppendSession(item, state);
  }

  std::vector<eval::TopKList> ScoreSessionHidden(
      const std::vector<float>& hidden, int64_t rows,
      const eval::TopKOptions& opt) override {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    return ActiveSession()->ScoreSessionHidden(hidden, rows, opt);
  }

  // ---- Swap path ----------------------------------------------------------

  /// Loads `path` into the standby slot (staged, name/shape-verified),
  /// validates, and flips. On any failure the active slot keeps serving and
  /// the returned status says why the rollout was rejected.
  Status SwapFromCheckpoint(const std::string& path) {
    std::lock_guard<std::mutex> swap_lock(swap_op_mu_);
    Counter("serve.swap.attempts").Add(1);
    const size_t standby = active_index() ^ 1;
    if (Status s = nn::LoadCheckpoint(*slots_[standby].module, path); !s.ok()) {
      return Reject("checkpoint load failed: " + s.ToString());
    }
    return ValidateAndFlipLocked(standby);
  }

  /// Copies `source`'s weights into the standby slot (staged, name/shape-
  /// verified against the standby architecture), validates, and flips.
  Status SwapFromModule(const nn::Module& source) {
    std::lock_guard<std::mutex> swap_lock(swap_op_mu_);
    Counter("serve.swap.attempts").Add(1);
    const size_t standby = active_index() ^ 1;
    auto dst = slots_[standby].module->NamedParameters();
    const auto src = source.NamedParameters();
    if (src.size() != dst.size()) {
      return Reject("source has " + std::to_string(src.size()) +
                    " parameters, standby has " + std::to_string(dst.size()));
    }
    // Stage first so a mismatch partway through modifies nothing.
    std::vector<std::vector<float>> staged;
    staged.reserve(src.size());
    for (size_t p = 0; p < src.size(); ++p) {
      if (src[p].first != dst[p].first || src[p].second.shape() != dst[p].second.shape()) {
        return Reject("parameter mismatch at '" + src[p].first + "'");
      }
      staged.push_back(src[p].second.ToVector());
    }
    for (size_t p = 0; p < dst.size(); ++p) {
      dst[p].second.data().assign(staged[p].begin(), staged[p].end());  // shared handle: in-place
    }
    return ValidateAndFlipLocked(standby);
  }

  /// Rolls back to the previous model. After a successful swap the standby
  /// slot still holds exactly the bits that were serving before the flip, so
  /// rollback is another validated flip onto those bits — bit-exact by
  /// construction, no checkpoint reload involved. The golden gate still runs
  /// (the prior model passed it once and must again); the injected mid-swap
  /// crash is skipped — rollback is the recovery path, not the rollout under
  /// test. Fails if no swap has succeeded yet (the standby holds whatever a
  /// rejected attempt last staged, not a known-good model).
  Status SwapBackToPrevious() {
    std::lock_guard<std::mutex> swap_lock(swap_op_mu_);
    if (swaps_.load(std::memory_order_acquire) == 0) {
      return Status::InvalidArgument(
          "rollback: no successful swap yet, standby slot is not a prior model");
    }
    Counter("serve.swap.attempts").Add(1);
    const size_t standby = active_index() ^ 1;
    Status s = ValidateAndFlipLocked(standby, /*is_rollback=*/true);
    if (s.ok()) Counter("serve.swap.rollbacks").Add(1);
    return s;
  }

  /// Copies the active slot's parameter buffers (in NamedParameters order),
  /// for pinning a pre-publish snapshot to verify bit-exact rollback against.
  std::vector<std::vector<float>> SnapshotActiveWeights() const {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    std::vector<std::vector<float>> out;
    for (const auto& [pname, tensor] : slots_[active_].module->NamedParameters()) {
      (void)pname;
      out.push_back(tensor.ToVector());
    }
    return out;
  }

  /// Index of the live slot (0 or 1) — for tests and dashboards.
  int active_slot() const {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    return static_cast<int>(active_);
  }

  /// Per-instance swap outcome counts (the serve.swap.* registry counters
  /// aggregate across every swapper in the process).
  int64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  int64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  static obs::Counter& Counter(const std::string& name) {
    return obs::Registry::Global().GetCounter(name);
  }
  static obs::Gauge& Gauge(const std::string& name) {
    return obs::Registry::Global().GetGauge(name);
  }

  static bool ArchitecturesMatch(const nn::Module& a, const nn::Module& b) {
    const auto pa = a.NamedParameters();
    const auto pb = b.NamedParameters();
    if (pa.size() != pb.size()) return false;
    for (size_t p = 0; p < pa.size(); ++p) {
      if (pa[p].first != pb[p].first) return false;
      if (pa[p].second.shape() != pb[p].second.shape()) return false;
    }
    return true;
  }

  size_t active_index() const {
    std::shared_lock<std::shared_mutex> lock(swap_mu_);
    return active_;
  }

  /// Active slot's session scorer. Requires swap_mu_ held (shared) and
  /// session_supported().
  eval::SessionScorer* ActiveSession() const {
    eval::SessionScorer* s = session_inner_[active_];
    MSGCL_CHECK(s != nullptr);
    return s;
  }

  Status Reject(const std::string& why) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Counter("serve.swap.rejected").Add(1);
    return Status::InvalidArgument("swap rejected: " + why);
  }

  /// Stages 2–3 of the gate plus the flip. Requires swap_op_mu_ held; the
  /// standby slot already holds the candidate weights.
  Status ValidateAndFlipLocked(size_t standby, bool is_rollback = false) {
    // Injected mid-swap crash: the rollout process dies after writing the
    // standby weights but before validation — the flip must never happen.
    // Rollbacks are exempt: they are the recovery arm of the drill.
    if (!is_rollback && config_.fault_injector != nullptr &&
        config_.fault_injector->NextSwapCrash()) {
      Counter("serve.swap.crashes").Add(1);
      return Status::Internal("injected mid-swap crash before validation");
    }

    // Stage 2: every standby weight must be finite.
    for (const auto& [pname, tensor] : slots_[standby].module->NamedParameters()) {
      for (const float v : tensor.data()) {
        if (!std::isfinite(v)) {
          return Reject("non-finite weight in parameter '" + pname + "'");
        }
      }
    }

    // Stage 3: golden smoke score on the standby model.
    if (!config_.golden.histories.empty()) {
      if (Status s = SmokeScore(standby); !s.ok()) return s;
    }

    {
      // ScoreSerializer() makes the flip + epoch bump atomic with respect to
      // an entire scoring batch (see the lock-order comment up top); the
      // unique swap_mu_ inside it still excludes any straggler reader.
      std::lock_guard<std::mutex> score_lock(ScoreSerializer());
      std::unique_lock<std::shared_mutex> lock(swap_mu_);
      active_ = standby;
      swaps_.fetch_add(1, std::memory_order_release);
    }
    Counter("serve.swap.success").Add(1);
    Gauge("serve.swap.active_slot").Set(static_cast<double>(standby));
    return Status::Ok();
  }

  /// Scores the golden batch through the standby slot and checks structural
  /// health and the HR/NDCG floors. Serialized with live scoring via
  /// ScoreSerializer() (the parallel pool runs one region at a time).
  Status SmokeScore(size_t standby) {
    const auto& golden = config_.golden;
    const auto n = static_cast<int64_t>(golden.histories.size());
    std::vector<int32_t> rows(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = static_cast<int32_t>(i);

    eval::TopKOptions opt;
    opt.k = config_.k;
    opt.num_items = num_items_;
    if (config_.exclude_seen) opt.exclude = &golden.histories;

    std::vector<eval::TopKList> lists;
    {
      std::lock_guard<std::mutex> score_lock(ScoreSerializer());
      NoGradGuard guard;
      try {
        data::Batch batch = data::MakeEvalBatch(golden.histories, rows, config_.max_len);
        lists = slots_[standby].ranker->ScoreTopK(batch, opt);
      } catch (const std::exception& e) {
        return Reject(std::string("smoke score threw: ") + e.what());
      } catch (...) {
        return Reject("smoke score threw a non-std exception");
      }
    }

    if (static_cast<int64_t>(lists.size()) != n) {
      return Reject("smoke score returned " + std::to_string(lists.size()) +
                    " rows for " + std::to_string(n) + " golden rows");
    }
    double hits = 0.0, ndcg = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const eval::TopKList& list = lists[static_cast<size_t>(i)];
      if (static_cast<int64_t>(list.size()) > config_.k) {
        return Reject("smoke row " + std::to_string(i) + " has " +
                      std::to_string(list.size()) + " items (k = " +
                      std::to_string(config_.k) + ")");
      }
      for (size_t r = 0; r < list.size(); ++r) {
        if (!std::isfinite(list[r].score)) {
          return Reject("non-finite smoke score in row " + std::to_string(i));
        }
        if (list[r].item == golden.targets[static_cast<size_t>(i)]) {
          hits += 1.0;
          ndcg += 1.0 / std::log2(static_cast<double>(r) + 2.0);
        }
      }
    }
    const double hr = hits / static_cast<double>(n);
    const double mean_ndcg = ndcg / static_cast<double>(n);
    if (config_.min_hr >= 0.0 && hr < config_.min_hr) {
      return Reject("smoke HR@" + std::to_string(config_.k) + " = " +
                    std::to_string(hr) + " below floor " +
                    std::to_string(config_.min_hr));
    }
    if (config_.min_ndcg >= 0.0 && mean_ndcg < config_.min_ndcg) {
      return Reject("smoke NDCG@" + std::to_string(config_.k) + " = " +
                    std::to_string(mean_ndcg) + " below floor " +
                    std::to_string(config_.min_ndcg));
    }
    return Status::Ok();
  }

  Slot slots_[2];
  eval::SessionScorer* session_inner_[2] = {nullptr, nullptr};
  const int32_t num_items_;
  const SwapConfig config_;

  mutable std::shared_mutex swap_mu_;  // guards active_; shared = scoring
  std::mutex swap_op_mu_;              // serializes swap attempts
  size_t active_ = 0;
  std::atomic<int64_t> swaps_{0};
  std::atomic<int64_t> rejected_{0};
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_MODEL_SWAP_H_
