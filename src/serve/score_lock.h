// Process-wide scoring serializer for the serving layer (DESIGN.md §11).
//
// The tensor stack's parallel pool runs ONE region at a time: Pool::Run
// publishes the region's task into a single shared slot, so two threads
// entering parallel kernels concurrently would overwrite each other's work.
// With a single MicroBatcher a per-instance mutex was enough; a replicated
// fleet (serve/fleet.h) runs several batchers in one process, and hot model
// swap (serve/model_swap.h) smoke-scores a standby model from a swap thread
// while traffic flows — so every model-scoring call in the serving layer
// must acquire this one global mutex, not a per-owner one.
//
// Hold discipline: take ScoreSerializer() only around the scoring call
// itself (kernels + NoGradGuard scope), never while holding a queue or swap
// lock that a scoring thread might need — see the lock-order notes in
// model_swap.h.
#ifndef MSGCL_SERVE_SCORE_LOCK_H_
#define MSGCL_SERVE_SCORE_LOCK_H_

#include <mutex>

namespace msgcl {
namespace serve {

inline std::mutex& ScoreSerializer() {
  static std::mutex mu;
  return mu;
}

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_SCORE_LOCK_H_
