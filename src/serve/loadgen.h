// Closed-loop load generator for the serving benchmark and `msgcl
// serve-bench`: `clients` threads each submit requests back to back and wait
// for the response, so concurrency (and therefore batch occupancy) is bounded
// by the client count, as in a thread-per-connection frontend.
//
// Latency is measured wall-clock (SystemClock) from just before Submit() to
// future readiness; percentiles are exact order statistics over the recorded
// latencies, not histogram-bucket bounds. Shed requests (RESOURCE_EXHAUSTED)
// resolve synchronously and are excluded from the latency sample — they
// never entered service.
//
// Chaos accounting (DESIGN.md §10): every OK response is structurally
// verified (size <= k, finite scores); a response failing that check counts
// as `garbage`, which a chaos drill asserts to be zero. `availability` is
// the fraction of requests answered with a usable list — model-scored or
// degraded — over everything submitted.
#ifndef MSGCL_SERVE_LOADGEN_H_
#define MSGCL_SERVE_LOADGEN_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "serve/fleet.h"
#include "serve/micro_batcher.h"
#include "tensor/macros.h"

namespace msgcl {
namespace serve {

struct LoadgenConfig {
  int64_t requests = 1000;  // total across all clients
  int clients = 8;          // concurrent closed-loop client threads
  int64_t deadline_us = 0;  // per-request deadline relative to submit; 0 = none
  int64_t k = 10;           // top-k size: recorded in the report, bounds the
                            // garbage check on returned lists

  Status Validate() const {
    if (requests <= 0) return Status::InvalidArgument("requests must be positive");
    if (clients < 1) return Status::InvalidArgument("clients must be >= 1");
    if (deadline_us < 0) return Status::InvalidArgument("deadline_us must be >= 0");
    if (k <= 0) return Status::InvalidArgument("k must be positive");
    return Status::Ok();
  }
};

struct LoadgenReport {
  int64_t requests = 0;          // completed (any outcome)
  int64_t ok = 0;                // served with a model-scored top-k list
  int64_t degraded = 0;          // served by the fallback ranker (degraded=true)
  int64_t shed = 0;              // failed with RESOURCE_EXHAUSTED (admission)
  int64_t deadline_expired = 0;  // failed with DEADLINE_EXCEEDED
  int64_t errors = 0;            // any other non-OK status
  int64_t garbage = 0;           // OK responses failing the structural check
  double availability = 0.0;     // (ok + degraded - garbage) / requests
  double wall_s = 0.0;
  double qps = 0.0;       // completed requests per second
  double mean_us = 0.0;   // over served (non-shed) requests
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Exact percentile (nearest-rank) of an unsorted sample; sorts a copy.
inline double ExactPercentileUs(std::vector<int64_t> latencies_us, double p) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto n = static_cast<double>(latencies_us.size());
  auto rank = static_cast<size_t>(p / 100.0 * n);
  if (static_cast<double>(rank) < p / 100.0 * n) ++rank;
  rank = std::max<size_t>(rank, 1);
  return static_cast<double>(latencies_us[rank - 1]);
}

/// True when an OK response is structurally usable: at most k items, every
/// score finite. (Content correctness is pinned by the bit-identity tests;
/// this is the runtime garbage detector for chaos drills.)
inline bool ResponseIsUsable(const Response& response, int64_t k) {
  if (static_cast<int64_t>(response.topk.size()) > k) return false;
  for (const eval::ScoredItem& s : response.topk) {
    if (!std::isfinite(s.score)) return false;
  }
  return true;
}

/// Drives `config.requests` requests through `submit`, round-robin over
/// `histories`, and returns throughput + latency statistics. `submit` is
/// called as `submit(user_index, RecommendRequest)` — user_index is the
/// history row, which doubles as the fleet routing key so a given synthetic
/// user's requests stay on one replica — and must return
/// `std::future<Result<Response>>` with the MicroBatcher::Submit contract.
template <typename SubmitFn>
LoadgenReport RunLoadWith(SubmitFn&& submit,
                          const std::vector<std::vector<int32_t>>& histories,
                          const LoadgenConfig& config) {
  MSGCL_CHECK_MSG(config.Validate().ok(), config.Validate().ToString());
  MSGCL_CHECK(!histories.empty());
  Clock& clock = SystemClock::Instance();

  struct ClientStats {
    std::vector<int64_t> latencies_us;
    int64_t ok = 0, degraded = 0, shed = 0, deadline_expired = 0, errors = 0;
    int64_t garbage = 0;
  };
  std::vector<ClientStats> stats(static_cast<size_t>(config.clients));

  const int64_t per_client = config.requests / config.clients;
  const int64_t remainder = config.requests % config.clients;
  const int64_t start_us = clock.NowUs();

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      ClientStats& s = stats[static_cast<size_t>(c)];
      const int64_t n = per_client + (c < remainder ? 1 : 0);
      s.latencies_us.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        const size_t h = static_cast<size_t>(c * per_client + i) % histories.size();
        RecommendRequest req;
        req.history = histories[h];
        const int64_t submit_us = clock.NowUs();
        if (config.deadline_us > 0) req.deadline_us = submit_us + config.deadline_us;
        auto future = submit(h, std::move(req));
        const Result<Response> result = future.get();
        if (result.ok()) {
          if (!ResponseIsUsable(result.value(), config.k)) ++s.garbage;
          if (result.value().degraded) {
            ++s.degraded;
          } else {
            ++s.ok;
          }
          s.latencies_us.push_back(clock.NowUs() - submit_us);
        } else {
          switch (result.status().code()) {
            case Status::Code::kResourceExhausted:
              ++s.shed;  // synchronous rejection, no latency sample
              break;
            case Status::Code::kDeadlineExceeded:
              ++s.deadline_expired;
              s.latencies_us.push_back(clock.NowUs() - submit_us);
              break;
            default:
              ++s.errors;
              s.latencies_us.push_back(clock.NowUs() - submit_us);
              break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const int64_t end_us = clock.NowUs();

  LoadgenReport report;
  std::vector<int64_t> all;
  all.reserve(static_cast<size_t>(config.requests));
  for (const ClientStats& s : stats) {
    report.ok += s.ok;
    report.degraded += s.degraded;
    report.shed += s.shed;
    report.deadline_expired += s.deadline_expired;
    report.errors += s.errors;
    report.garbage += s.garbage;
    all.insert(all.end(), s.latencies_us.begin(), s.latencies_us.end());
  }
  report.requests = report.ok + report.degraded + report.shed +
                    report.deadline_expired + report.errors;
  if (report.requests > 0) {
    report.availability =
        static_cast<double>(report.ok + report.degraded - report.garbage) /
        static_cast<double>(report.requests);
  }
  report.wall_s = static_cast<double>(end_us - start_us) * 1e-6;
  if (report.wall_s > 0.0) {
    report.qps = static_cast<double>(report.requests) / report.wall_s;
  }
  if (!all.empty()) {
    int64_t sum = 0, mx = 0;
    for (const int64_t v : all) {
      sum += v;
      mx = std::max(mx, v);
    }
    report.mean_us = static_cast<double>(sum) / static_cast<double>(all.size());
    report.max_us = static_cast<double>(mx);
    report.p50_us = ExactPercentileUs(all, 50.0);
    report.p95_us = ExactPercentileUs(all, 95.0);
    report.p99_us = ExactPercentileUs(all, 99.0);
  }
  return report;
}

/// Drives `config.requests` requests through a single batcher.
inline LoadgenReport RunLoad(MicroBatcher& batcher,
                             const std::vector<std::vector<int32_t>>& histories,
                             const LoadgenConfig& config) {
  return RunLoadWith(
      [&batcher](size_t /*user*/, RecommendRequest req) {
        return batcher.Submit(std::move(req));
      },
      histories, config);
}

// ---- Returning-user session workload (DESIGN.md §12) -----------------------

/// Configuration for the warm/cold session mix. Each client thread owns a
/// pool of live sessions; every request either revisits a random live
/// session with one new interaction appended (probability `repeat_frac` —
/// the warm-path candidate) or starts a fresh session with `initial_len`
/// random items (always cold). A session whose history reaches
/// `max_session_len` is retired from the pool, modelling users who leave.
struct SessionLoadConfig {
  LoadgenConfig base;
  double repeat_frac = 0.8;     // P(revisit an existing session)
  int64_t initial_len = 40;     // history length of a fresh session
  int64_t max_session_len = 50; // retire sessions at this length
  int32_t num_items = 0;        // catalogue size for synthetic items
  uint64_t seed = 1;

  Status Validate() const {
    if (repeat_frac < 0.0 || repeat_frac > 1.0) {
      return Status::InvalidArgument("repeat_frac must be in [0, 1]");
    }
    if (initial_len < 1) return Status::InvalidArgument("initial_len must be >= 1");
    if (max_session_len <= initial_len) {
      return Status::InvalidArgument("max_session_len must exceed initial_len");
    }
    if (num_items < 1) return Status::InvalidArgument("num_items must be >= 1");
    return base.Validate();
  }
};

/// RunSessionLoad results: the overall report plus warm-vs-cold splits.
/// `warm`/`cold` count non-degraded OK responses by Response::session_warm
/// (server truth, not client guesswork); hit_rate = warm / (warm + cold).
struct SessionLoadReport {
  LoadgenReport all;
  int64_t warm = 0;
  int64_t cold = 0;
  double hit_rate = 0.0;
  double warm_p50_us = 0.0;
  double warm_p95_us = 0.0;
  double cold_p50_us = 0.0;
  double cold_p95_us = 0.0;
};

/// Drives a returning-user mix through `submit` (same contract as
/// RunLoadWith: `submit(user_key, RecommendRequest)`; the user key is the
/// session id, so fleet routing keeps a session on one replica). Clients are
/// closed-loop, so one session is never in flight twice.
template <typename SubmitFn>
SessionLoadReport RunSessionLoadWith(SubmitFn&& submit,
                                     const SessionLoadConfig& config) {
  MSGCL_CHECK_MSG(config.Validate().ok(), config.Validate().ToString());
  Clock& clock = SystemClock::Instance();

  struct ClientStats {
    std::vector<int64_t> latencies_us;
    std::vector<int64_t> warm_us, cold_us;
    int64_t ok = 0, degraded = 0, shed = 0, deadline_expired = 0, errors = 0;
    int64_t garbage = 0, warm = 0, cold = 0;
  };
  const LoadgenConfig& base = config.base;
  std::vector<ClientStats> stats(static_cast<size_t>(base.clients));

  const int64_t per_client = base.requests / base.clients;
  const int64_t remainder = base.requests % base.clients;
  const int64_t start_us = clock.NowUs();

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(base.clients));
  for (int c = 0; c < base.clients; ++c) {
    clients.emplace_back([&, c] {
      ClientStats& s = stats[static_cast<size_t>(c)];
      const int64_t n = per_client + (c < remainder ? 1 : 0);
      s.latencies_us.reserve(static_cast<size_t>(n));
      std::mt19937_64 rng(config.seed * 1000003ULL +
                          static_cast<uint64_t>(c) * 7919ULL);
      auto item = [&]() -> int32_t {
        return static_cast<int32_t>(
            rng() % static_cast<uint64_t>(config.num_items) + 1);
      };
      struct Session {
        uint64_t id;
        std::vector<int32_t> history;
      };
      std::vector<Session> pool;
      uint64_t next_session = 1;
      for (int64_t i = 0; i < n; ++i) {
        const bool revisit =
            !pool.empty() &&
            static_cast<double>(rng() >> 11) * 0x1.0p-53 < config.repeat_frac;
        size_t slot;
        if (revisit) {
          slot = static_cast<size_t>(rng() % pool.size());
          pool[slot].history.push_back(item());
        } else {
          Session fresh;
          // Session ids are globally unique and nonzero: client in the high
          // bits, a per-client counter in the low bits.
          fresh.id = (static_cast<uint64_t>(c) + 1) << 32 | next_session++;
          fresh.history.reserve(static_cast<size_t>(config.max_session_len));
          for (int64_t t = 0; t < config.initial_len; ++t) {
            fresh.history.push_back(item());
          }
          pool.push_back(std::move(fresh));
          slot = pool.size() - 1;
        }
        RecommendRequest req;
        req.history = pool[slot].history;
        req.session_id = pool[slot].id;
        const int64_t submit_us = clock.NowUs();
        if (base.deadline_us > 0) req.deadline_us = submit_us + base.deadline_us;
        auto future = submit(pool[slot].id, std::move(req));
        const Result<Response> result = future.get();
        const int64_t latency_us = clock.NowUs() - submit_us;
        if (result.ok()) {
          if (!ResponseIsUsable(result.value(), base.k)) ++s.garbage;
          if (result.value().degraded) {
            ++s.degraded;
          } else {
            ++s.ok;
            if (result.value().session_warm) {
              ++s.warm;
              s.warm_us.push_back(latency_us);
            } else {
              ++s.cold;
              s.cold_us.push_back(latency_us);
            }
          }
          s.latencies_us.push_back(latency_us);
        } else {
          switch (result.status().code()) {
            case Status::Code::kResourceExhausted:
              ++s.shed;
              break;
            case Status::Code::kDeadlineExceeded:
              ++s.deadline_expired;
              s.latencies_us.push_back(latency_us);
              break;
            default:
              ++s.errors;
              s.latencies_us.push_back(latency_us);
              break;
          }
        }
        if (static_cast<int64_t>(pool[slot].history.size()) >=
            config.max_session_len) {
          pool[slot] = std::move(pool.back());  // retire: swap-remove
          pool.pop_back();
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const int64_t end_us = clock.NowUs();

  SessionLoadReport report;
  std::vector<int64_t> all, warm_us, cold_us;
  all.reserve(static_cast<size_t>(base.requests));
  for (const ClientStats& s : stats) {
    report.all.ok += s.ok;
    report.all.degraded += s.degraded;
    report.all.shed += s.shed;
    report.all.deadline_expired += s.deadline_expired;
    report.all.errors += s.errors;
    report.all.garbage += s.garbage;
    report.warm += s.warm;
    report.cold += s.cold;
    all.insert(all.end(), s.latencies_us.begin(), s.latencies_us.end());
    warm_us.insert(warm_us.end(), s.warm_us.begin(), s.warm_us.end());
    cold_us.insert(cold_us.end(), s.cold_us.begin(), s.cold_us.end());
  }
  LoadgenReport& r = report.all;
  r.requests = r.ok + r.degraded + r.shed + r.deadline_expired + r.errors;
  if (r.requests > 0) {
    r.availability = static_cast<double>(r.ok + r.degraded - r.garbage) /
                     static_cast<double>(r.requests);
  }
  r.wall_s = static_cast<double>(end_us - start_us) * 1e-6;
  if (r.wall_s > 0.0) r.qps = static_cast<double>(r.requests) / r.wall_s;
  if (!all.empty()) {
    int64_t sum = 0, mx = 0;
    for (const int64_t v : all) {
      sum += v;
      mx = std::max(mx, v);
    }
    r.mean_us = static_cast<double>(sum) / static_cast<double>(all.size());
    r.max_us = static_cast<double>(mx);
    r.p50_us = ExactPercentileUs(all, 50.0);
    r.p95_us = ExactPercentileUs(all, 95.0);
    r.p99_us = ExactPercentileUs(all, 99.0);
  }
  if (report.warm + report.cold > 0) {
    report.hit_rate = static_cast<double>(report.warm) /
                      static_cast<double>(report.warm + report.cold);
  }
  report.warm_p50_us = ExactPercentileUs(warm_us, 50.0);
  report.warm_p95_us = ExactPercentileUs(warm_us, 95.0);
  report.cold_p50_us = ExactPercentileUs(cold_us, 50.0);
  report.cold_p95_us = ExactPercentileUs(cold_us, 95.0);
  return report;
}

/// Session mix through a single batcher.
inline SessionLoadReport RunSessionLoad(MicroBatcher& batcher,
                                        const SessionLoadConfig& config) {
  return RunSessionLoadWith(
      [&batcher](uint64_t /*user*/, RecommendRequest req) {
        return batcher.Submit(std::move(req));
      },
      config);
}

/// Session mix through the fleet router (routing key = session id, so a
/// session's requests stay on one replica).
inline SessionLoadReport RunSessionFleetLoad(Router& router,
                                             const SessionLoadConfig& config) {
  return RunSessionLoadWith(
      [&router](uint64_t user, RecommendRequest req) {
        return router.Submit(user, std::move(req));
      },
      config);
}

/// One scheduled fleet-chaos action, fired `at_us` wall-clock microseconds
/// after the load starts. Events firing after the load completes still run
/// (the schedule thread is joined at the end) — the drill simply saw less of
/// them, which only makes its availability bound easier, never flaky.
struct FleetChaosEvent {
  enum class Action { kKill, kRestart };
  int64_t at_us = 0;
  int replica = 0;
  Action action = Action::kKill;
};

/// Drives `config.requests` requests through the fleet router (routing key =
/// history row, i.e. the synthetic user id) while a schedule thread fires
/// kill/restart events against it — the shard-kill chaos drill.
inline LoadgenReport RunFleetLoad(Router& router,
                                  const std::vector<std::vector<int32_t>>& histories,
                                  const LoadgenConfig& config,
                                  std::vector<FleetChaosEvent> events = {}) {
  std::sort(events.begin(), events.end(),
            [](const FleetChaosEvent& a, const FleetChaosEvent& b) {
              return a.at_us < b.at_us;
            });
  Clock& clock = SystemClock::Instance();
  const int64_t start_us = clock.NowUs();
  std::thread chaos([&router, &events, &clock, start_us] {
    for (const FleetChaosEvent& e : events) {
      const int64_t wait_us = start_us + e.at_us - clock.NowUs();
      if (wait_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
      }
      if (e.action == FleetChaosEvent::Action::kKill) {
        router.KillReplica(e.replica);
      } else {
        router.RestartReplica(e.replica);
      }
    }
  });
  LoadgenReport report = RunLoadWith(
      [&router](size_t user, RecommendRequest req) {
        return router.Submit(static_cast<uint64_t>(user), std::move(req));
      },
      histories, config);
  chaos.join();
  return report;
}

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_LOADGEN_H_
