// Closed-loop load generator for the serving benchmark and `msgcl
// serve-bench`: `clients` threads each submit requests back to back and wait
// for the response, so concurrency (and therefore batch occupancy) is bounded
// by the client count, as in a thread-per-connection frontend.
//
// Latency is measured wall-clock (SystemClock) from just before Submit() to
// future readiness; percentiles are exact order statistics over the recorded
// latencies, not histogram-bucket bounds.
#ifndef MSGCL_SERVE_LOADGEN_H_
#define MSGCL_SERVE_LOADGEN_H_

#include <algorithm>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "tensor/macros.h"

namespace msgcl {
namespace serve {

struct LoadgenConfig {
  int64_t requests = 1000;  // total across all clients
  int clients = 8;          // concurrent closed-loop client threads
  int64_t deadline_us = 0;  // per-request deadline relative to submit; 0 = none
  int64_t k = 10;           // recorded in the report only

  Status Validate() const {
    if (requests <= 0) return Status::InvalidArgument("requests must be positive");
    if (clients < 1) return Status::InvalidArgument("clients must be >= 1");
    if (deadline_us < 0) return Status::InvalidArgument("deadline_us must be >= 0");
    return Status::Ok();
  }
};

struct LoadgenReport {
  int64_t requests = 0;          // completed (any outcome)
  int64_t ok = 0;                // served with a top-k list
  int64_t deadline_expired = 0;  // failed with DEADLINE_EXCEEDED
  int64_t errors = 0;            // any other non-OK status
  double wall_s = 0.0;
  double qps = 0.0;       // completed requests per second
  double mean_us = 0.0;   // over completed requests
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Exact percentile (nearest-rank) of an unsorted sample; sorts a copy.
inline double ExactPercentileUs(std::vector<int64_t> latencies_us, double p) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto n = static_cast<double>(latencies_us.size());
  auto rank = static_cast<size_t>(p / 100.0 * n);
  if (static_cast<double>(rank) < p / 100.0 * n) ++rank;
  rank = std::max<size_t>(rank, 1);
  return static_cast<double>(latencies_us[rank - 1]);
}

/// Drives `config.requests` requests through the batcher, round-robin over
/// `histories`, and returns throughput + latency statistics.
inline LoadgenReport RunLoad(MicroBatcher& batcher,
                             const std::vector<std::vector<int32_t>>& histories,
                             const LoadgenConfig& config) {
  MSGCL_CHECK_MSG(config.Validate().ok(), config.Validate().ToString());
  MSGCL_CHECK(!histories.empty());
  Clock& clock = SystemClock::Instance();

  struct ClientStats {
    std::vector<int64_t> latencies_us;
    int64_t ok = 0, deadline_expired = 0, errors = 0;
  };
  std::vector<ClientStats> stats(static_cast<size_t>(config.clients));

  const int64_t per_client = config.requests / config.clients;
  const int64_t remainder = config.requests % config.clients;
  const int64_t start_us = clock.NowUs();

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      ClientStats& s = stats[static_cast<size_t>(c)];
      const int64_t n = per_client + (c < remainder ? 1 : 0);
      s.latencies_us.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        const size_t h = static_cast<size_t>(c * per_client + i) % histories.size();
        RecommendRequest req;
        req.history = histories[h];
        const int64_t submit_us = clock.NowUs();
        if (config.deadline_us > 0) req.deadline_us = submit_us + config.deadline_us;
        auto future = batcher.Submit(std::move(req));
        const Result<eval::TopKList> result = future.get();
        s.latencies_us.push_back(clock.NowUs() - submit_us);
        if (result.ok()) {
          ++s.ok;
        } else if (result.status().code() == Status::Code::kDeadlineExceeded) {
          ++s.deadline_expired;
        } else {
          ++s.errors;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const int64_t end_us = clock.NowUs();

  LoadgenReport report;
  std::vector<int64_t> all;
  all.reserve(static_cast<size_t>(config.requests));
  for (const ClientStats& s : stats) {
    report.ok += s.ok;
    report.deadline_expired += s.deadline_expired;
    report.errors += s.errors;
    all.insert(all.end(), s.latencies_us.begin(), s.latencies_us.end());
  }
  report.requests = static_cast<int64_t>(all.size());
  report.wall_s = static_cast<double>(end_us - start_us) * 1e-6;
  if (report.wall_s > 0.0) {
    report.qps = static_cast<double>(report.requests) / report.wall_s;
  }
  if (!all.empty()) {
    int64_t sum = 0, mx = 0;
    for (const int64_t v : all) {
      sum += v;
      mx = std::max(mx, v);
    }
    report.mean_us = static_cast<double>(sum) / static_cast<double>(all.size());
    report.max_us = static_cast<double>(mx);
    report.p50_us = ExactPercentileUs(all, 50.0);
    report.p95_us = ExactPercentileUs(all, 95.0);
    report.p99_us = ExactPercentileUs(all, 99.0);
  }
  return report;
}

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_LOADGEN_H_
