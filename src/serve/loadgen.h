// Closed-loop load generator for the serving benchmark and `msgcl
// serve-bench`: `clients` threads each submit requests back to back and wait
// for the response, so concurrency (and therefore batch occupancy) is bounded
// by the client count, as in a thread-per-connection frontend.
//
// Latency is measured wall-clock (SystemClock) from just before Submit() to
// future readiness; percentiles are exact order statistics over the recorded
// latencies, not histogram-bucket bounds. Shed requests (RESOURCE_EXHAUSTED)
// resolve synchronously and are excluded from the latency sample — they
// never entered service.
//
// Chaos accounting (DESIGN.md §10): every OK response is structurally
// verified (size <= k, finite scores); a response failing that check counts
// as `garbage`, which a chaos drill asserts to be zero. `availability` is
// the fraction of requests answered with a usable list — model-scored or
// degraded — over everything submitted.
#ifndef MSGCL_SERVE_LOADGEN_H_
#define MSGCL_SERVE_LOADGEN_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "serve/fleet.h"
#include "serve/micro_batcher.h"
#include "tensor/macros.h"

namespace msgcl {
namespace serve {

struct LoadgenConfig {
  int64_t requests = 1000;  // total across all clients
  int clients = 8;          // concurrent closed-loop client threads
  int64_t deadline_us = 0;  // per-request deadline relative to submit; 0 = none
  int64_t k = 10;           // top-k size: recorded in the report, bounds the
                            // garbage check on returned lists

  Status Validate() const {
    if (requests <= 0) return Status::InvalidArgument("requests must be positive");
    if (clients < 1) return Status::InvalidArgument("clients must be >= 1");
    if (deadline_us < 0) return Status::InvalidArgument("deadline_us must be >= 0");
    if (k <= 0) return Status::InvalidArgument("k must be positive");
    return Status::Ok();
  }
};

struct LoadgenReport {
  int64_t requests = 0;          // completed (any outcome)
  int64_t ok = 0;                // served with a model-scored top-k list
  int64_t degraded = 0;          // served by the fallback ranker (degraded=true)
  int64_t shed = 0;              // failed with RESOURCE_EXHAUSTED (admission)
  int64_t deadline_expired = 0;  // failed with DEADLINE_EXCEEDED
  int64_t errors = 0;            // any other non-OK status
  int64_t garbage = 0;           // OK responses failing the structural check
  double availability = 0.0;     // (ok + degraded - garbage) / requests
  double wall_s = 0.0;
  double qps = 0.0;       // completed requests per second
  double mean_us = 0.0;   // over served (non-shed) requests
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Exact percentile (nearest-rank) of an unsorted sample; sorts a copy.
inline double ExactPercentileUs(std::vector<int64_t> latencies_us, double p) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto n = static_cast<double>(latencies_us.size());
  auto rank = static_cast<size_t>(p / 100.0 * n);
  if (static_cast<double>(rank) < p / 100.0 * n) ++rank;
  rank = std::max<size_t>(rank, 1);
  return static_cast<double>(latencies_us[rank - 1]);
}

/// True when an OK response is structurally usable: at most k items, every
/// score finite. (Content correctness is pinned by the bit-identity tests;
/// this is the runtime garbage detector for chaos drills.)
inline bool ResponseIsUsable(const Response& response, int64_t k) {
  if (static_cast<int64_t>(response.topk.size()) > k) return false;
  for (const eval::ScoredItem& s : response.topk) {
    if (!std::isfinite(s.score)) return false;
  }
  return true;
}

/// Drives `config.requests` requests through `submit`, round-robin over
/// `histories`, and returns throughput + latency statistics. `submit` is
/// called as `submit(user_index, RecommendRequest)` — user_index is the
/// history row, which doubles as the fleet routing key so a given synthetic
/// user's requests stay on one replica — and must return
/// `std::future<Result<Response>>` with the MicroBatcher::Submit contract.
template <typename SubmitFn>
LoadgenReport RunLoadWith(SubmitFn&& submit,
                          const std::vector<std::vector<int32_t>>& histories,
                          const LoadgenConfig& config) {
  MSGCL_CHECK_MSG(config.Validate().ok(), config.Validate().ToString());
  MSGCL_CHECK(!histories.empty());
  Clock& clock = SystemClock::Instance();

  struct ClientStats {
    std::vector<int64_t> latencies_us;
    int64_t ok = 0, degraded = 0, shed = 0, deadline_expired = 0, errors = 0;
    int64_t garbage = 0;
  };
  std::vector<ClientStats> stats(static_cast<size_t>(config.clients));

  const int64_t per_client = config.requests / config.clients;
  const int64_t remainder = config.requests % config.clients;
  const int64_t start_us = clock.NowUs();

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      ClientStats& s = stats[static_cast<size_t>(c)];
      const int64_t n = per_client + (c < remainder ? 1 : 0);
      s.latencies_us.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        const size_t h = static_cast<size_t>(c * per_client + i) % histories.size();
        RecommendRequest req;
        req.history = histories[h];
        const int64_t submit_us = clock.NowUs();
        if (config.deadline_us > 0) req.deadline_us = submit_us + config.deadline_us;
        auto future = submit(h, std::move(req));
        const Result<Response> result = future.get();
        if (result.ok()) {
          if (!ResponseIsUsable(result.value(), config.k)) ++s.garbage;
          if (result.value().degraded) {
            ++s.degraded;
          } else {
            ++s.ok;
          }
          s.latencies_us.push_back(clock.NowUs() - submit_us);
        } else {
          switch (result.status().code()) {
            case Status::Code::kResourceExhausted:
              ++s.shed;  // synchronous rejection, no latency sample
              break;
            case Status::Code::kDeadlineExceeded:
              ++s.deadline_expired;
              s.latencies_us.push_back(clock.NowUs() - submit_us);
              break;
            default:
              ++s.errors;
              s.latencies_us.push_back(clock.NowUs() - submit_us);
              break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const int64_t end_us = clock.NowUs();

  LoadgenReport report;
  std::vector<int64_t> all;
  all.reserve(static_cast<size_t>(config.requests));
  for (const ClientStats& s : stats) {
    report.ok += s.ok;
    report.degraded += s.degraded;
    report.shed += s.shed;
    report.deadline_expired += s.deadline_expired;
    report.errors += s.errors;
    report.garbage += s.garbage;
    all.insert(all.end(), s.latencies_us.begin(), s.latencies_us.end());
  }
  report.requests = report.ok + report.degraded + report.shed +
                    report.deadline_expired + report.errors;
  if (report.requests > 0) {
    report.availability =
        static_cast<double>(report.ok + report.degraded - report.garbage) /
        static_cast<double>(report.requests);
  }
  report.wall_s = static_cast<double>(end_us - start_us) * 1e-6;
  if (report.wall_s > 0.0) {
    report.qps = static_cast<double>(report.requests) / report.wall_s;
  }
  if (!all.empty()) {
    int64_t sum = 0, mx = 0;
    for (const int64_t v : all) {
      sum += v;
      mx = std::max(mx, v);
    }
    report.mean_us = static_cast<double>(sum) / static_cast<double>(all.size());
    report.max_us = static_cast<double>(mx);
    report.p50_us = ExactPercentileUs(all, 50.0);
    report.p95_us = ExactPercentileUs(all, 95.0);
    report.p99_us = ExactPercentileUs(all, 99.0);
  }
  return report;
}

/// Drives `config.requests` requests through a single batcher.
inline LoadgenReport RunLoad(MicroBatcher& batcher,
                             const std::vector<std::vector<int32_t>>& histories,
                             const LoadgenConfig& config) {
  return RunLoadWith(
      [&batcher](size_t /*user*/, RecommendRequest req) {
        return batcher.Submit(std::move(req));
      },
      histories, config);
}

/// One scheduled fleet-chaos action, fired `at_us` wall-clock microseconds
/// after the load starts. Events firing after the load completes still run
/// (the schedule thread is joined at the end) — the drill simply saw less of
/// them, which only makes its availability bound easier, never flaky.
struct FleetChaosEvent {
  enum class Action { kKill, kRestart };
  int64_t at_us = 0;
  int replica = 0;
  Action action = Action::kKill;
};

/// Drives `config.requests` requests through the fleet router (routing key =
/// history row, i.e. the synthetic user id) while a schedule thread fires
/// kill/restart events against it — the shard-kill chaos drill.
inline LoadgenReport RunFleetLoad(Router& router,
                                  const std::vector<std::vector<int32_t>>& histories,
                                  const LoadgenConfig& config,
                                  std::vector<FleetChaosEvent> events = {}) {
  std::sort(events.begin(), events.end(),
            [](const FleetChaosEvent& a, const FleetChaosEvent& b) {
              return a.at_us < b.at_us;
            });
  Clock& clock = SystemClock::Instance();
  const int64_t start_us = clock.NowUs();
  std::thread chaos([&router, &events, &clock, start_us] {
    for (const FleetChaosEvent& e : events) {
      const int64_t wait_us = start_us + e.at_us - clock.NowUs();
      if (wait_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
      }
      if (e.action == FleetChaosEvent::Action::kKill) {
        router.KillReplica(e.replica);
      } else {
        router.RestartReplica(e.replica);
      }
    }
  });
  LoadgenReport report = RunLoadWith(
      [&router](size_t user, RecommendRequest req) {
        return router.Submit(static_cast<uint64_t>(user), std::move(req));
      },
      histories, config);
  chaos.join();
  return report;
}

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_LOADGEN_H_
