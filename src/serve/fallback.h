// Degraded-mode fallback ranking for the serving layer (DESIGN.md §10).
//
// When the circuit breaker is open (or a scoring batch fails its guards),
// requests are answered from a popularity ranking computed once from the
// training interactions instead of erroring out: non-personalised, but a
// best-effort recommendation a frontend can still render. Responses served
// this way are tagged `Response::degraded = true` so callers can distinguish
// them from model-scored results.
//
// Ordering matches the repo-wide total order (score descending, item id
// ascending, see eval/topk.h) with score = interaction count, so fallback
// lists are deterministic and independent of request batching.
#ifndef MSGCL_SERVE_FALLBACK_H_
#define MSGCL_SERVE_FALLBACK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "eval/topk.h"
#include "tensor/macros.h"

namespace msgcl {
namespace serve {

/// Popularity-ranked fallback. Build once (FromSequences) at startup; TopK is
/// then a cheap, allocation-light walk over the pre-sorted ranking, safe to
/// call concurrently from any number of workers.
class FallbackRanker {
 public:
  FallbackRanker() = default;

  /// Ranks items 1..num_items by training interaction count (ties broken by
  /// ascending id, matching eval::BetterScored with score = count).
  static FallbackRanker FromSequences(const std::vector<std::vector<int32_t>>& seqs,
                                      int32_t num_items) {
    MSGCL_CHECK_GT(num_items, 0);
    std::vector<float> counts(static_cast<size_t>(num_items) + 1, 0.0f);
    for (const auto& seq : seqs) {
      for (const int32_t item : seq) {
        MSGCL_CHECK(item >= 1 && item <= num_items);
        counts[static_cast<size_t>(item)] += 1.0f;
      }
    }
    FallbackRanker ranker;
    ranker.ranking_.reserve(static_cast<size_t>(num_items));
    for (int32_t i = 1; i <= num_items; ++i) {
      ranker.ranking_.push_back({i, counts[static_cast<size_t>(i)]});
    }
    std::sort(ranker.ranking_.begin(), ranker.ranking_.end(), eval::BetterScored);
    return ranker;
  }

  bool ready() const { return !ranking_.empty(); }

  int32_t num_items() const { return static_cast<int32_t>(ranking_.size()); }

  /// The `min(k, #non-excluded items)` most popular items not in `exclude`,
  /// in descending (count, then ascending id) order.
  eval::TopKList TopK(int64_t k, const eval::ExcludeSet& exclude) const {
    MSGCL_CHECK_GT(k, 0);
    MSGCL_CHECK_MSG(ready(), "FallbackRanker used before FromSequences");
    eval::TopKList out;
    out.reserve(static_cast<size_t>(std::min<int64_t>(k, num_items())));
    for (const eval::ScoredItem& s : ranking_) {
      if (exclude.Contains(s.item)) continue;
      out.push_back(s);
      if (static_cast<int64_t>(out.size()) >= k) break;
    }
    return out;
  }

 private:
  eval::TopKList ranking_;  // all items, best (most popular) first
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_FALLBACK_H_
