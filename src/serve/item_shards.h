// Intra-model sharded scoring (DESIGN.md §14).
//
// The replica tier (fleet.h) scales *throughput* by copying the whole model;
// this layer scales the *catalogue*: the item-embedding id space is split
// into S contiguous ranges ("item shards"), the fused score→top-k runs per
// shard against the same hidden state, and the per-shard bounded lists are
// merged under the repo total order (BetterScored, NaN-safe). Because
//   (a) per-item scores are independent of the block an item is scored in
//       (the fused dot accumulates each column separately, in fixed p-order,
//       under the PR 8 scalar≡AVX2 bitwise kernel contract), and
//   (b) the order is total, so the top-k *set* of a candidate union is the
//       union of per-shard top-k sets intersected with the global top k,
// the merged list is bit-identical to unsharded ScoreTopKFused — the parity
// gate `ctest -L shards` enforces exactly that at 1/2/7 threads × ISA.
#ifndef MSGCL_SERVE_ITEM_SHARDS_H_
#define MSGCL_SERVE_ITEM_SHARDS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "eval/session.h"
#include "eval/topk.h"
#include "obs/registry.h"
#include "tensor/macros.h"
#include "tensor/status.h"

namespace msgcl {
namespace serve {

/// One contiguous id range [first, last] of the item catalogue (1-based,
/// inclusive; id 0 is padding and never belongs to a shard).
struct ItemShard {
  int32_t first = 0;
  int32_t last = 0;

  int32_t count() const { return last - first + 1; }

  friend bool operator==(const ItemShard& a, const ItemShard& b) {
    return a.first == b.first && a.last == b.last;
  }
};

/// Splits 1..num_items into `num_shards` contiguous near-equal ranges (the
/// first `num_items % num_shards` shards carry one extra id). `num_shards`
/// is clamped to num_items so every shard holds at least one id.
inline std::vector<ItemShard> MakeItemShards(int32_t num_items, int num_shards) {
  MSGCL_CHECK_GT(num_items, 0);
  MSGCL_CHECK_GT(num_shards, 0);
  const int32_t s = std::min<int32_t>(num_shards, num_items);
  std::vector<ItemShard> shards(static_cast<size_t>(s));
  const int32_t base = num_items / s;
  const int32_t extra = num_items % s;
  int32_t next = 1;
  for (int32_t i = 0; i < s; ++i) {
    const int32_t count = base + (i < extra ? 1 : 0);
    shards[static_cast<size_t>(i)] = ItemShard{next, next + count - 1};
    next += count;
  }
  return shards;
}

/// Validates a shard list: non-empty, each range well-formed and inside the
/// catalogue, strictly ascending and non-overlapping. Full coverage is NOT
/// required — a fleet replica may own a subset of the catalogue (fleet.h
/// scatter-gather); use `ShardsCoverCatalogue` when a partition is expected.
inline Status ValidateItemShards(const std::vector<ItemShard>& shards,
                                 int32_t num_items) {
  if (shards.empty()) {
    return Status::InvalidArgument("item shards: empty shard list");
  }
  int32_t prev_last = 0;
  for (const ItemShard& s : shards) {
    if (s.first <= prev_last || s.last < s.first) {
      return Status::InvalidArgument(
          "item shards: ranges must be well-formed, ascending, disjoint");
    }
    if (num_items > 0 && s.last > num_items) {
      return Status::InvalidArgument("item shards: range exceeds the catalogue");
    }
    prev_last = s.last;
  }
  return Status::Ok();
}

/// True when `shards` is a full partition of 1..num_items (assumes the list
/// already passed ValidateItemShards).
inline bool ShardsCoverCatalogue(const std::vector<ItemShard>& shards,
                                 int32_t num_items) {
  int32_t next = 1;
  for (const ItemShard& s : shards) {
    if (s.first != next) return false;
    next = s.last + 1;
  }
  return next == num_items + 1;
}

/// Ranker (and SessionScorer) adapter that scores an inner model one item
/// shard at a time and merges the per-shard lists exactly.
///
/// Stateless beyond its shard table, so it is exactly as thread-safe as the
/// inner model; it takes no locks of its own. In particular it must NOT
/// acquire ScoreSerializer() — the MicroBatcher already holds it around
/// every scoring call, and the lock is non-recursive. Swap atomicity comes
/// from placement instead: wrap the ranker *inside* each SwappableRanker
/// slot, so one ScoreTopK under the slot's shared swap_mu_ covers the whole
/// S-shard merge and a hot swap validates (SmokeScore) and flips all shards
/// as one unit (DESIGN.md §14).
class ShardedRanker : public eval::Ranker, public eval::SessionScorer {
 public:
  /// `inner` is non-owning and must outlive this adapter. `shards` is
  /// typically MakeItemShards(num_items, S); a fleet replica may pass the
  /// subset it owns, in which case ScoreTopK returns the exact top-k of
  /// that subset (merged fleet-side by MergeTopKLists).
  ShardedRanker(eval::Ranker& inner, std::vector<ItemShard> shards)
      : inner_(inner),
        session_(dynamic_cast<eval::SessionScorer*>(&inner)),
        shards_(std::move(shards)) {
    const Status s = ValidateItemShards(shards_, /*num_items=*/0);
    MSGCL_CHECK_MSG(s.ok(), s.ToString());
  }

  std::string name() const override { return inner_.name(); }

  const std::vector<ItemShard>& shards() const { return shards_; }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    return inner_.ScoreAll(batch);
  }

  std::vector<eval::TopKList> ScoreTopK(const data::Batch& batch,
                                        const eval::TopKOptions& opt) override {
    return Merged(opt, [&](const eval::TopKOptions& shard_opt) {
      return inner_.ScoreTopK(batch, shard_opt);
    });
  }

  // --- SessionScorer: state calls delegate; scoring calls shard + merge ---

  bool session_supported() const override {
    return session_ != nullptr && session_->session_supported();
  }
  uint64_t session_epoch() const override {
    MSGCL_CHECK(session_ != nullptr);
    return session_->session_epoch();
  }
  int64_t session_capacity() const override {
    MSGCL_CHECK(session_ != nullptr);
    return session_->session_capacity();
  }
  int64_t session_dim() const override {
    MSGCL_CHECK(session_ != nullptr);
    return session_->session_dim();
  }
  void EncodeSession(const std::vector<int32_t>& window,
                     eval::SessionState& state) override {
    MSGCL_CHECK(session_ != nullptr);
    session_->EncodeSession(window, state);
  }
  void AppendSession(int32_t item, eval::SessionState& state) override {
    MSGCL_CHECK(session_ != nullptr);
    session_->AppendSession(item, state);
  }
  std::vector<eval::TopKList> ScoreSessionHidden(
      const std::vector<float>& hidden, int64_t rows,
      const eval::TopKOptions& opt) override {
    MSGCL_CHECK(session_ != nullptr);
    return Merged(opt, [&](const eval::TopKOptions& shard_opt) {
      return session_->ScoreSessionHidden(hidden, rows, shard_opt);
    });
  }

 private:
  /// Runs `score_fn` once per shard with the range narrowed, then merges
  /// each row's S lists to opt.k under BetterScored.
  template <typename ScoreFn>
  std::vector<eval::TopKList> Merged(const eval::TopKOptions& opt,
                                     ScoreFn&& score_fn) {
    opt.ValidateOrThrow();
    if (opt.has_item_range()) {
      // Composing ranges would silently score the intersection; reject.
      throw std::invalid_argument(
          "ShardedRanker: opt.first_item/last_item must be unset (the "
          "shard table owns the range)");
    }
    std::vector<std::vector<eval::TopKList>> parts;
    parts.reserve(shards_.size());
    for (const ItemShard& s : shards_) {
      eval::TopKOptions shard_opt = opt;
      shard_opt.first_item = s.first;
      shard_opt.last_item = s.last;
      parts.push_back(score_fn(shard_opt));
      MSGCL_CHECK_EQ(parts.back().size(), parts.front().size());
    }
    obs::Registry::Global().GetCounter("serve.shards.batches").Add(1);
    if (parts.size() == 1) return std::move(parts.front());
    const size_t rows = parts.front().size();
    std::vector<eval::TopKList> out(rows);
    std::vector<const eval::TopKList*> views(parts.size());
    for (size_t b = 0; b < rows; ++b) {
      for (size_t s = 0; s < parts.size(); ++s) views[s] = &parts[s][b];
      out[b] = eval::MergeTopKLists(views, opt.k);
    }
    obs::Registry::Global()
        .GetCounter("serve.shards.merged_rows")
        .Add(static_cast<int64_t>(rows));
    return out;
  }

  eval::Ranker& inner_;
  eval::SessionScorer* session_;  // non-null iff inner implements sessions
  std::vector<ItemShard> shards_;
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_ITEM_SHARDS_H_
