// Umbrella header for the batched serving subsystem (DESIGN.md §9–10).
#ifndef MSGCL_SERVE_SERVE_H_
#define MSGCL_SERVE_SERVE_H_

#include "serve/breaker.h"       // IWYU pragma: export
#include "serve/clock.h"         // IWYU pragma: export
#include "serve/fallback.h"      // IWYU pragma: export
#include "serve/fleet.h"         // IWYU pragma: export
#include "serve/item_shards.h"   // IWYU pragma: export
#include "serve/loadgen.h"       // IWYU pragma: export
#include "serve/micro_batcher.h" // IWYU pragma: export
#include "serve/model_swap.h"    // IWYU pragma: export
#include "serve/publish.h"       // IWYU pragma: export
#include "serve/score_lock.h"    // IWYU pragma: export
#include "serve/session_cache.h" // IWYU pragma: export

#endif  // MSGCL_SERVE_SERVE_H_
