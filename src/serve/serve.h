// Umbrella header for the batched serving subsystem (DESIGN.md §9).
#ifndef MSGCL_SERVE_SERVE_H_
#define MSGCL_SERVE_SERVE_H_

#include "serve/clock.h"         // IWYU pragma: export
#include "serve/loadgen.h"       // IWYU pragma: export
#include "serve/micro_batcher.h" // IWYU pragma: export

#endif  // MSGCL_SERVE_SERVE_H_
