// Replicated serving fleet with health-checked consistent-hash routing
// (DESIGN.md §11).
//
// A Router owns N MicroBatcher replicas and spreads users across them with
// a consistent-hash ring (virtual nodes): the same user id always lands on
// the same live replica, which keeps a returning user's requests on one
// batcher — so with a ServeConfig::session_cache configured (shared across
// replicas; DESIGN.md §12) repeat users hit the warm incremental path — and
// keeps remapping bounded: when a replica dies, ONLY the users it owned move
// (to their ring successors); everyone else keeps their replica, and a
// restart restores the original mapping exactly.
//
// Health-checked routing: a replica is routable while it is alive (not
// killed) AND its scoring circuit breaker is not Open. Routing around an
// Open breaker keeps traffic on replicas that can still model-score instead
// of pinning a user to one that would only serve degraded fallback results.
//
// Failure handling, in order:
//   1. the ring walk skips dead/Open replicas, so most failovers are free;
//   2. a Submit that resolves synchronously UNAVAILABLE (the replica was
//      killed between the health check and the enqueue) is retried on the
//      next healthy replica — counted in serve.fleet.failovers;
//   3. with no healthy replica left, the fleet-level popularity fallback
//      answers (degraded) when configured, else the request fails
//      UNAVAILABLE.
// Requests already queued inside a replica when it is killed fail
// UNAVAILABLE to their callers — a kill models a crash, and the fleet's
// availability bound (chaos drill: >= 99%) budgets for that small in-flight
// window rather than pretending queued work survives a dead process.
//
// Observability: serve.fleet.requests / failovers / degraded / no_healthy /
// kills / restarts counters and the serve.fleet.alive_replicas gauge.
#ifndef MSGCL_SERVE_FLEET_H_
#define MSGCL_SERVE_FLEET_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "eval/evaluator.h"
#include "eval/topk.h"
#include "obs/registry.h"
#include "serve/breaker.h"
#include "serve/clock.h"
#include "serve/fallback.h"
#include "serve/micro_batcher.h"
#include "tensor/macros.h"
#include "tensor/status.h"

namespace msgcl {
namespace serve {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash for ring points and
/// user ids (sequential ids would otherwise clump on the ring).
inline uint64_t HashMix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Fleet configuration. Every replica runs the same ServeConfig (including
/// any shared fault injector or session cache — both thread-safe by
/// contract; the consistent-hash ring keeps each user's session state warm
/// on one replica's submit path while the cache itself survives failover).
struct FleetConfig {
  int replicas = 2;
  /// Ring points per replica; more points = smoother load spread and finer
  /// remapping granularity when a replica dies.
  int virtual_nodes = 64;
  ServeConfig serve;
  /// Fleet-level last resort served (degraded) when NO replica is healthy;
  /// non-owning, must outlive the Router. nullptr = UNAVAILABLE instead.
  const FallbackRanker* fallback = nullptr;
  /// Intra-model sharding across the fleet (DESIGN.md §14): group g lists
  /// the replica indices that own shard group g of the catalogue. Empty
  /// (default) = every replica scores the full table. The router only
  /// routes and merges — the caller must construct each listed replica's
  /// model as a ShardedRanker (item_shards.h) over exactly that group's id
  /// ranges, so a group's replicas are interchangeable exact partials.
  std::vector<std::vector<int>> shard_owners;

  Status Validate() const {
    if (replicas < 1) return Status::InvalidArgument("replicas must be >= 1");
    if (virtual_nodes < 1) {
      return Status::InvalidArgument("virtual_nodes must be >= 1");
    }
    for (const std::vector<int>& group : shard_owners) {
      if (group.empty()) {
        return Status::InvalidArgument("shard_owners group must not be empty");
      }
      for (const int r : group) {
        if (r < 0 || r >= replicas) {
          return Status::InvalidArgument(
              "shard_owners replica index out of range");
        }
      }
    }
    return serve.Validate();
  }

  /// Construction-time variant: typed std::invalid_argument instead of a
  /// process abort (eval/topk.h idiom).
  void ValidateOrThrow() const {
    const Status s = Validate();
    if (!s.ok()) throw std::invalid_argument(s.message());
  }
};

/// Consistent-hash router over N MicroBatcher replicas.
class Router {
 public:
  /// One Ranker per replica (non-owning, must outlive the Router). Distinct
  /// model instances are typical — scoring is serialized process-wide by
  /// ScoreSerializer(), but replicas restart independently, and hot swap
  /// rolls out per replica.
  Router(std::vector<eval::Ranker*> models, int32_t num_items,
         const FleetConfig& config, Clock* clock = nullptr)
      : models_(std::move(models)),
        num_items_(num_items),
        config_(config),
        clock_(clock) {
    config_.ValidateOrThrow();
    MSGCL_CHECK_EQ(static_cast<int>(models_.size()), config_.replicas);
    replicas_.reserve(models_.size());
    for (eval::Ranker* model : models_) {
      MSGCL_CHECK(model != nullptr);
      replicas_.push_back(ReplicaSlot{
          std::make_shared<MicroBatcher>(*model, num_items_, config_.serve, clock_),
          /*alive=*/true});
    }
    // Ring points are a pure function of (replica, virtual node): replica
    // death does not rebuild the ring, it only changes which walk stops
    // where — that is what bounds remapping churn.
    ring_.reserve(static_cast<size_t>(config_.replicas) *
                  static_cast<size_t>(config_.virtual_nodes));
    for (int r = 0; r < config_.replicas; ++r) {
      for (int v = 0; v < config_.virtual_nodes; ++v) {
        const uint64_t point = HashMix(
            (static_cast<uint64_t>(r) << 32) | static_cast<uint64_t>(v) | 1ULL << 63);
        ring_.push_back({point, r});
      }
    }
    std::sort(ring_.begin(), ring_.end());
    Gauge("serve.fleet.alive_replicas").Set(static_cast<double>(config_.replicas));
  }

  ~Router() { Stop(); }

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one request for `user_id` to its replica, failing over to the
  /// next healthy replica (then the fleet fallback) as described above. The
  /// future's contract matches MicroBatcher::Submit.
  std::future<Result<Response>> Submit(uint64_t user_id, RecommendRequest req) {
    Counter("serve.fleet.requests").Add(1);
    std::vector<int> tried;
    tried.reserve(static_cast<size_t>(config_.replicas));
    while (static_cast<int>(tried.size()) < config_.replicas) {
      std::shared_ptr<MicroBatcher> target;
      int r = -1;
      {
        std::shared_lock<std::shared_mutex> lock(mu_);
        if (stopped_) break;
        r = PickLocked(user_id, tried);
        if (r < 0) break;
        target = replicas_[static_cast<size_t>(r)].batcher;
      }
      if (!tried.empty()) Counter("serve.fleet.failovers").Add(1);
      RecommendRequest attempt = req;  // keep `req` intact for retries
      std::future<Result<Response>> future = target->Submit(std::move(attempt));
      // Only a synchronous UNAVAILABLE (stopped replica) fails over: shed,
      // invalid-argument, and every asynchronous outcome belong to the
      // caller — retrying them would double-serve or mask admission control.
      if (future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        Result<Response> result = future.get();
        if (!result.ok() && result.status().code() == Status::Code::kUnavailable) {
          tried.push_back(r);
          continue;
        }
        std::promise<Result<Response>> ready;
        ready.set_value(std::move(result));
        return ready.get_future();
      }
      return future;
    }
    return ServeFleetFallback(req);
  }

  /// Scatter-gather over FleetConfig::shard_owners (DESIGN.md §14): the
  /// request is fanned to one healthy owner of every shard group and the
  /// per-group top-k partials are merged under the repo total order — exact,
  /// because the groups partition the id space and every partial is the true
  /// top-k of its ranges. Any missing or degraded partial (a popularity
  /// fallback list is not shard-restricted, so it can never be merged with
  /// exact partials) fails the whole request over to the fleet fallback.
  /// With no shard_owners configured this is plain Submit. The returned
  /// future is deferred: the merge runs on the first get()/wait() caller.
  std::future<Result<Response>> SubmitSharded(uint64_t user_id,
                                              RecommendRequest req) {
    if (config_.shard_owners.empty()) return Submit(user_id, std::move(req));
    Counter("serve.fleet.sharded_requests").Add(1);
    auto parts =
        std::make_shared<std::vector<std::future<Result<Response>>>>();
    parts->reserve(config_.shard_owners.size());
    for (const std::vector<int>& group : config_.shard_owners) {
      RecommendRequest attempt = req;  // each group scores the same request
      parts->push_back(SubmitToGroup(user_id, group, std::move(attempt)));
    }
    const int64_t k = config_.serve.k;
    return std::async(
        std::launch::deferred,
        [this, parts, req = std::move(req), k]() -> Result<Response> {
          std::vector<eval::TopKList> partials;
          partials.reserve(parts->size());
          bool all_warm = true;
          for (std::future<Result<Response>>& f : *parts) {
            Result<Response> r = f.get();
            if (!r.ok() || r.value().degraded) continue;
            all_warm = all_warm && r.value().session_warm;
            partials.push_back(std::move(r.value().topk));
          }
          if (partials.size() != parts->size()) {
            Counter("serve.fleet.shard_partials_failed").Add(1);
            return ServeFleetFallback(req).get();
          }
          Response out;
          out.topk = eval::MergeTopKLists(partials, k);
          out.degraded = false;
          out.session_warm = all_warm;
          return out;
        });
  }

  /// The replica `user_id` routes to right now, or -1 when none is healthy.
  /// Stable for a fixed set of live replicas.
  int PickReplica(uint64_t user_id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return PickLocked(user_id, {});
  }

  /// Simulates a replica crash: marks it unroutable, then stops its batcher
  /// (queued requests fail UNAVAILABLE, as in a real process death).
  /// Idempotent; safe concurrently with traffic.
  void KillReplica(int r) {
    MSGCL_CHECK(r >= 0 && r < config_.replicas);
    std::shared_ptr<MicroBatcher> victim;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      ReplicaSlot& slot = replicas_[static_cast<size_t>(r)];
      if (!slot.alive) return;
      slot.alive = false;
      victim = slot.batcher;
      Counter("serve.fleet.kills").Add(1);
      Gauge("serve.fleet.alive_replicas").Set(static_cast<double>(AliveLocked()));
    }
    victim->Stop();  // outside the lock: Stop blocks until drained
  }

  /// Brings a killed replica back with a fresh MicroBatcher over the same
  /// model; its users remap back to it (the ring never changed).
  void RestartReplica(int r) {
    MSGCL_CHECK(r >= 0 && r < config_.replicas);
    std::unique_lock<std::shared_mutex> lock(mu_);
    ReplicaSlot& slot = replicas_[static_cast<size_t>(r)];
    if (stopped_ || slot.alive) return;
    slot.batcher = std::make_shared<MicroBatcher>(
        *models_[static_cast<size_t>(r)], num_items_, config_.serve, clock_);
    slot.alive = true;
    Counter("serve.fleet.restarts").Add(1);
    Gauge("serve.fleet.alive_replicas").Set(static_cast<double>(AliveLocked()));
  }

  /// Stops every replica. Safe to call repeatedly; called by the destructor.
  void Stop() {
    std::vector<std::shared_ptr<MicroBatcher>> batchers;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (stopped_) return;  // MicroBatcher::Stop itself blocks until drained
      stopped_ = true;
      for (ReplicaSlot& slot : replicas_) batchers.push_back(slot.batcher);
    }
    for (auto& b : batchers) b->Stop();
  }

  int replicas() const { return config_.replicas; }

  bool alive(int r) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return replicas_[static_cast<size_t>(r)].alive;
  }

  /// Replicas that are alive with a non-Open breaker (routable right now).
  int healthy_replicas() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    int n = 0;
    for (int r = 0; r < config_.replicas; ++r) {
      if (HealthyLocked(r)) ++n;
    }
    return n;
  }

  /// The replica's current batcher (test/diagnostics; the pointer outlives
  /// kills and restarts, the slot's batcher may be replaced).
  std::shared_ptr<MicroBatcher> replica(int r) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return replicas_[static_cast<size_t>(r)].batcher;
  }

 private:
  struct ReplicaSlot {
    std::shared_ptr<MicroBatcher> batcher;
    bool alive = true;
  };

  static obs::Counter& Counter(const std::string& name) {
    return obs::Registry::Global().GetCounter(name);
  }
  static obs::Gauge& Gauge(const std::string& name) {
    return obs::Registry::Global().GetGauge(name);
  }

  bool HealthyLocked(int r) const {
    const ReplicaSlot& slot = replicas_[static_cast<size_t>(r)];
    return slot.alive && slot.batcher->breaker().state() != BreakerState::kOpen;
  }

  int AliveLocked() const {
    int n = 0;
    for (const ReplicaSlot& slot : replicas_) n += slot.alive ? 1 : 0;
    return n;
  }

  /// Ring walk: first healthy replica at or after the user's hash point,
  /// skipping replicas in `tried` (and, when `allowed` is set, replicas
  /// outside it — the shard-group walk). Requires mu_ held (shared is
  /// enough).
  int PickLocked(uint64_t user_id, const std::vector<int>& tried,
                 const std::vector<int>* allowed = nullptr) const {
    const uint64_t h = HashMix(user_id);
    auto it = std::upper_bound(ring_.begin(), ring_.end(),
                               std::make_pair(h, config_.replicas));
    size_t i = static_cast<size_t>(it - ring_.begin()) % ring_.size();
    for (size_t step = 0; step < ring_.size(); ++step, i = (i + 1) % ring_.size()) {
      const int r = ring_[i].second;
      if (allowed != nullptr &&
          std::find(allowed->begin(), allowed->end(), r) == allowed->end()) {
        continue;
      }
      if (std::find(tried.begin(), tried.end(), r) != tried.end()) continue;
      if (HealthyLocked(r)) return r;
    }
    return -1;
  }

  /// Submit restricted to one shard-owner group, with the same ring-ordered
  /// walk and synchronous-UNAVAILABLE failover as Submit. With no healthy
  /// owner the partial fails UNAVAILABLE (the sharded merge then falls back
  /// fleet-wide; a per-group popularity answer would not be an exact
  /// partial).
  std::future<Result<Response>> SubmitToGroup(uint64_t user_id,
                                              const std::vector<int>& group,
                                              RecommendRequest req) {
    std::vector<int> tried;
    tried.reserve(group.size());
    while (tried.size() < group.size()) {
      std::shared_ptr<MicroBatcher> target;
      int r = -1;
      {
        std::shared_lock<std::shared_mutex> lock(mu_);
        if (stopped_) break;
        r = PickLocked(user_id, tried, &group);
        if (r < 0) break;
        target = replicas_[static_cast<size_t>(r)].batcher;
      }
      if (!tried.empty()) Counter("serve.fleet.failovers").Add(1);
      RecommendRequest attempt = req;
      std::future<Result<Response>> future = target->Submit(std::move(attempt));
      if (future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        Result<Response> result = future.get();
        if (!result.ok() && result.status().code() == Status::Code::kUnavailable) {
          tried.push_back(r);
          continue;
        }
        std::promise<Result<Response>> ready;
        ready.set_value(std::move(result));
        return ready.get_future();
      }
      return future;
    }
    std::promise<Result<Response>> none;
    none.set_value(Status::Unavailable("no healthy owner for shard group"));
    return none.get_future();
  }

  /// No healthy replica (or router stopped): answer from the fleet-level
  /// popularity fallback when possible, else UNAVAILABLE.
  std::future<Result<Response>> ServeFleetFallback(const RecommendRequest& req) {
    std::promise<Result<Response>> promise;
    bool stopped;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      stopped = stopped_;
    }
    if (!stopped && config_.fallback != nullptr && config_.fallback->ready() &&
        !req.history.empty()) {
      Counter("serve.fleet.no_healthy").Add(1);
      Counter("serve.fleet.degraded").Add(1);
      eval::ExcludeSet exclude;
      if (config_.serve.exclude_seen) {
        exclude.InsertRange(req.history);
        exclude.Seal();
      }
      Response resp;
      resp.topk = config_.fallback->TopK(config_.serve.k, exclude);
      resp.degraded = true;
      promise.set_value(std::move(resp));
    } else if (stopped) {
      promise.set_value(Status::Unavailable("fleet router is stopped"));
    } else {
      Counter("serve.fleet.no_healthy").Add(1);
      promise.set_value(Status::Unavailable(
          "no healthy replica and no fleet fallback configured"));
    }
    return promise.get_future();
  }

  const std::vector<eval::Ranker*> models_;
  const int32_t num_items_;
  const FleetConfig config_;
  Clock* const clock_;

  mutable std::shared_mutex mu_;
  std::vector<ReplicaSlot> replicas_;
  std::vector<std::pair<uint64_t, int>> ring_;  // (hash point, replica), sorted
  bool stopped_ = false;
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_FLEET_H_
