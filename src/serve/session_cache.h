// LRU, byte-bounded store of per-session transformer state — the serving
// tier's KV cache (DESIGN.md §12).
//
// Keying and warmness: entries are keyed by the client-chosen session id
// (nonzero uint64). A lookup is WARM only when all of
//   1. an entry exists for the id,
//   2. it was encoded by the live model revision — tag (owner, epoch) equals
//      the scorer's current identity (SwappableRanker bumps the epoch on
//      every validated flip, so stale K/V from old weights is never scored
//      by new weights), and
//   3. the cached items are a PREFIX of the request's scoring window (the
//      most recent min(len, max_len) history items). A history crossing
//      max_len slides the window, the prefix check fails, and the entry is
//      invalidated — the cache can never silently score a stale window.
// Any failed condition erases the entry (counted as an invalidation when an
// entry existed) and the caller re-encodes cold.
//
// Eviction: entries are kept in strict LRU order (Lookup hits and Puts move
// to the front). Put evicts from the tail until total bytes fit
// `capacity_bytes`; EvictIdle drops entries idle longer than a bound on the
// injected clock (FakeClock in tests). Byte accounting is exact: an entry's
// cost is SessionState::bytes(), constant after its cold encode, and the
// `serve.session_cache.bytes` gauge always equals the sum over resident
// entries.
//
// Thread safety: all operations lock an internal mutex; states handed out by
// Lookup are mutated by the caller only under the process-wide scoring lock
// (score_lock.h), so get/put/evict storms from many threads are race-free.
#ifndef MSGCL_SERVE_SESSION_CACHE_H_
#define MSGCL_SERVE_SESSION_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "eval/session.h"
#include "obs/registry.h"
#include "serve/clock.h"
#include "tensor/macros.h"

namespace msgcl {
namespace serve {

/// Why a lookup did or did not return warm state.
enum class SessionLookupOutcome {
  kWarm,          // prefix-valid state from the live model revision
  kMissAbsent,    // no entry for this session id
  kMissStale,     // entry tagged with a different (owner, epoch): model swap
  kMissDiverged,  // cached items not a prefix of the window (e.g. it slid
                  // past max_len, or the client replayed a different history)
};

/// LRU, size-bounded session store. See file comment for semantics.
class SessionCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;         // absent + stale + diverged
    int64_t evictions = 0;      // capacity + idle evictions
    int64_t invalidations = 0;  // stale/diverged erases + InvalidateAll
    int64_t entries = 0;
    int64_t bytes = 0;
  };

  struct LookupResult {
    std::shared_ptr<eval::SessionState> state;  // set iff outcome == kWarm
    SessionLookupOutcome outcome = SessionLookupOutcome::kMissAbsent;
  };

  /// `clock` is non-owning (nullptr = process SystemClock); it timestamps
  /// last accesses for idle eviction.
  explicit SessionCache(int64_t capacity_bytes, Clock* clock = nullptr)
      : capacity_bytes_(capacity_bytes),
        clock_(clock != nullptr ? clock : &SystemClock::Instance()) {
    MSGCL_CHECK_GT(capacity_bytes, 0);
  }

  /// Looks up `id` for the scorer identified by (owner, epoch), scoring the
  /// given window. Warm hits move to the MRU position; any invalid entry is
  /// erased so the follow-up Put starts clean.
  LookupResult Lookup(uint64_t id, const void* owner, uint64_t epoch,
                      const std::vector<int32_t>& window) {
    std::lock_guard<std::mutex> lock(mu_);
    LookupResult result;
    auto it = index_.find(id);
    if (it == index_.end()) {
      result.outcome = SessionLookupOutcome::kMissAbsent;
      ++stats_.misses;
      CounterMisses().Add(1);
      return result;
    }
    const eval::SessionState& state = *it->second->state;
    if (state.owner != owner || state.epoch != epoch) {
      result.outcome = SessionLookupOutcome::kMissStale;
    } else if (!IsPrefix(state.items, window)) {
      result.outcome = SessionLookupOutcome::kMissDiverged;
    } else {
      result.state = it->second->state;
      result.outcome = SessionLookupOutcome::kWarm;
      it->second->last_access_us = clock_->NowUs();
      lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
      ++stats_.hits;
      CounterHits().Add(1);
      return result;
    }
    EraseLocked(it, /*invalidation=*/true);
    ++stats_.misses;
    CounterMisses().Add(1);
    return result;
  }

  /// Inserts (or replaces) the state for `id` at the MRU position, then
  /// evicts LRU entries until total bytes fit the capacity. A state larger
  /// than the whole capacity is not admitted (it would evict everything and
  /// still not fit).
  void Put(uint64_t id, std::shared_ptr<eval::SessionState> state) {
    MSGCL_CHECK(state != nullptr);
    const int64_t entry_bytes = state->bytes();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(id);
    if (it != index_.end()) EraseLocked(it, /*invalidation=*/false);
    if (entry_bytes > capacity_bytes_) {
      PublishGauges();
      return;
    }
    lru_.push_front(Entry{id, std::move(state), entry_bytes, clock_->NowUs()});
    index_[id] = lru_.begin();
    stats_.bytes += entry_bytes;
    ++stats_.entries;
    while (stats_.bytes > capacity_bytes_ && !lru_.empty()) {
      EvictLocked(std::prev(lru_.end()));
    }
    PublishGauges();
  }

  /// Erases one session (e.g. an explicit client logout). Returns whether an
  /// entry existed.
  bool Erase(uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    EraseLocked(it, /*invalidation=*/true);
    PublishGauges();
    return true;
  }

  /// Drops every entry (counted as invalidations). The epoch tag already
  /// keeps swapped-out state from being served; this additionally frees the
  /// memory immediately.
  int64_t InvalidateAll() {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t n = stats_.entries;
    stats_.invalidations += n;
    CounterInvalidations().Add(n);
    lru_.clear();
    index_.clear();
    stats_.entries = 0;
    stats_.bytes = 0;
    PublishGauges();
    return n;
  }

  /// Evicts entries whose last access is more than `max_idle_us` before now
  /// (on the cache's clock). Returns the number evicted.
  int64_t EvictIdle(int64_t max_idle_us) {
    MSGCL_CHECK_GE(max_idle_us, 0);
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t cutoff_us = clock_->NowUs() - max_idle_us;
    int64_t evicted = 0;
    // Tail-first: the LRU order also orders last_access ascending from the
    // tail, so we can stop at the first fresh entry.
    while (!lru_.empty() && std::prev(lru_.end())->last_access_us < cutoff_us) {
      EvictLocked(std::prev(lru_.end()));
      ++evicted;
    }
    if (evicted > 0) PublishGauges();
    return evicted;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  int64_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.entries;
  }
  int64_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.bytes;
  }
  int64_t capacity_bytes() const { return capacity_bytes_; }

  /// Session ids in LRU order, most recent first (tests/debugging).
  std::vector<uint64_t> IdsMruToLru() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> ids;
    ids.reserve(static_cast<size_t>(stats_.entries));
    for (const Entry& e : lru_) ids.push_back(e.id);
    return ids;
  }

 private:
  struct Entry {
    uint64_t id = 0;
    std::shared_ptr<eval::SessionState> state;
    int64_t bytes = 0;  // state->bytes() at insert; constant by contract
    int64_t last_access_us = 0;
  };

  static bool IsPrefix(const std::vector<int32_t>& prefix,
                       const std::vector<int32_t>& full) {
    if (prefix.empty() || prefix.size() > full.size()) return false;
    return std::equal(prefix.begin(), prefix.end(), full.begin());
  }

  // Registry handles resolved once; obs name map lookups stay off hot paths.
  static obs::Counter& CounterHits() {
    static obs::Counter& c =
        obs::Registry::Global().GetCounter("serve.session_cache.hits");
    return c;
  }
  static obs::Counter& CounterMisses() {
    static obs::Counter& c =
        obs::Registry::Global().GetCounter("serve.session_cache.misses");
    return c;
  }
  static obs::Counter& CounterEvictions() {
    static obs::Counter& c =
        obs::Registry::Global().GetCounter("serve.session_cache.evictions");
    return c;
  }
  static obs::Counter& CounterInvalidations() {
    static obs::Counter& c =
        obs::Registry::Global().GetCounter("serve.session_cache.invalidations");
    return c;
  }

  /// Removes an entry without eviction accounting. Requires mu_ held.
  void EraseLocked(std::unordered_map<uint64_t, std::list<Entry>::iterator>::iterator it,
                   bool invalidation) {
    stats_.bytes -= it->second->bytes;
    --stats_.entries;
    if (invalidation) {
      ++stats_.invalidations;
      CounterInvalidations().Add(1);
    }
    lru_.erase(it->second);
    index_.erase(it);
  }

  /// Capacity/idle eviction of one list position. Requires mu_ held.
  void EvictLocked(std::list<Entry>::iterator pos) {
    stats_.bytes -= pos->bytes;
    --stats_.entries;
    ++stats_.evictions;
    CounterEvictions().Add(1);
    index_.erase(pos->id);
    lru_.erase(pos);
  }

  /// Mirrors entry/byte totals into the registry gauges. Requires mu_ held.
  void PublishGauges() {
    obs::Registry::Global()
        .GetGauge("serve.session_cache.bytes")
        .Set(static_cast<double>(stats_.bytes));
    obs::Registry::Global()
        .GetGauge("serve.session_cache.entries")
        .Set(static_cast<double>(stats_.entries));
  }

  const int64_t capacity_bytes_;
  Clock* const clock_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace serve
}  // namespace msgcl

#endif  // MSGCL_SERVE_SESSION_CACHE_H_
