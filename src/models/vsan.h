// VSAN baseline (Zhao et al., ICDE 2021): Variational Self-Attention
// Network — the SASRec backbone with a per-position Gaussian latent
// (mu/log-variance heads + reparameterisation), trained with the single-view
// ELBO: next-item cross-entropy + beta * KL.
#ifndef MSGCL_MODELS_VSAN_H_
#define MSGCL_MODELS_VSAN_H_

#include <vector>

#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// VSAN configuration.
struct VsanConfig {
  BackboneConfig backbone;
  float beta = 0.2f;  // KL weight
};

class Vsan : public Recommender, public nn::Module {
 public:
  Vsan(const VsanConfig& config, const TrainConfig& train, Rng rng)
      : config_(config),
        train_(train),
        rng_(rng),
        backbone_(config.backbone, rng_),
        enc_mu_(config.backbone.dim, config.backbone.dim, rng_),
        enc_logvar_(config.backbone.dim, config.backbone.dim, rng_) {
    RegisterChild("backbone", &backbone_);
    RegisterChild("enc_mu", &enc_mu_);
    RegisterChild("enc_logvar", &enc_logvar_);
    enc_logvar_.InitBiasConstant(-4.0f);  // start at small sigma
  }

  std::string name() const override { return "VSAN"; }

  Status Fit(const data::SequenceDataset& ds) override {
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(*this, opt, train_,
                             [this](const data::Batch& batch, Rng& rng) {
                               return Loss(batch, rng);
                             });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  Tensor Loss(const data::Batch& batch, Rng& rng) const {
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor mu = enc_mu_.Forward(h);
    Tensor logvar = enc_logvar_.Forward(h);
    Tensor z = Reparameterize(mu, logvar, rng);
    Tensor logits = backbone_.LogitsAll(
        z.Reshape({batch.batch_size * batch.seq_len, backbone_.config().dim}));
    Tensor ce = CrossEntropyLogits(logits, batch.targets, /*ignore_index=*/0);
    std::vector<uint8_t> valid(batch.key_padding.size());
    for (size_t i = 0; i < valid.size(); ++i) valid[i] = batch.key_padding[i] ? 0 : 1;
    Tensor kl = nn::GaussianKl(mu, logvar, &valid);
    return ce.Add(kl.MulScalar(config_.beta));
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor mu = enc_mu_.Forward(SasBackbone::LastPosition(h));  // posterior mean at eval
    Tensor logits = backbone_.LogitsAll(mu);
    SetTraining(was_training);
    return logits.ToVector();
  }

  /// z = mu + sigma * eps with eps ~ N(0, I) (Eq. 12). In eval mode, z = mu.
  Tensor Reparameterize(const Tensor& mu, const Tensor& logvar, Rng& rng) const {
    if (!training()) return mu;
    Tensor sigma = logvar.MulScalar(0.5f).Exp();
    Tensor eps = Tensor::Randn(mu.shape(), rng);
    return mu.Add(sigma.Mul(eps));
  }

 private:
  VsanConfig config_;
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
  nn::Linear enc_mu_;
  nn::Linear enc_logvar_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_VSAN_H_
