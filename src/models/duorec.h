// DuoRec baseline (Qiu et al., WSDM 2022): SASRec plus contrastive
// regularisation where the two views of a sequence are (a) the same input
// passed twice through the encoder with independent dropout masks
// (unsupervised, model-level augmentation) and (b) optionally a different
// sequence sharing the same target item (supervised positive sampling).
#ifndef MSGCL_MODELS_DUOREC_H_
#define MSGCL_MODELS_DUOREC_H_

#include <unordered_map>
#include <vector>

#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// DuoRec configuration.
struct DuoRecConfig {
  BackboneConfig backbone;
  float lambda = 0.1f;  // weight of the contrastive term
  float tau = 1.0f;     // InfoNCE temperature
  bool supervised_positives = true;
  nn::Similarity similarity = nn::Similarity::kDot;
};

class DuoRec : public Recommender, public nn::Module {
 public:
  DuoRec(const DuoRecConfig& config, const TrainConfig& train, Rng rng)
      : config_(config), train_(train), rng_(rng), backbone_(config.backbone, rng_) {
    RegisterChild("backbone", &backbone_);
  }

  std::string name() const override { return "DuoRec"; }

  Status Fit(const data::SequenceDataset& ds) override {
    // Index training rows by their final target for supervised sampling.
    std::unordered_map<int32_t, std::vector<int32_t>> by_target;
    if (config_.supervised_positives) {
      for (int32_t u = 0; u < ds.num_users(); ++u) {
        const auto& s = ds.train_seqs[u];
        if (s.size() >= 2) by_target[s.back()].push_back(u);
      }
    }
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(
        *this, opt, train_, [this, &ds, &by_target](const data::Batch& batch, Rng& rng) {
          Tensor h1 = backbone_.Encode(batch, /*causal=*/true, rng);
          Tensor logits = backbone_.LogitsAll(
              h1.Reshape({batch.batch_size * batch.seq_len, backbone_.config().dim}));
          Tensor loss = CrossEntropyLogits(logits, batch.targets, 0);
          if (config_.lambda > 0.0f && batch.batch_size > 1) {
            Tensor z1 = SasBackbone::LastPosition(h1);
            // Unsupervised view: identical input, fresh dropout masks.
            Tensor z2 =
                SasBackbone::LastPosition(backbone_.Encode(batch, /*causal=*/true, rng));
            Tensor cl = nn::InfoNce(z1, z2, config_.tau, config_.similarity);
            if (config_.supervised_positives) {
              // Supervised view: a different sequence with the same target.
              data::Batch pos = batch;
              std::vector<int32_t> rows(batch.batch_size);
              for (int64_t b = 0; b < batch.batch_size; ++b) {
                const int32_t u = batch.users[b];
                const auto& s = ds.train_seqs[u];
                rows[b] = u;
                if (s.size() >= 2) {
                  auto it = by_target.find(s.back());
                  if (it != by_target.end() && it->second.size() > 1) {
                    rows[b] = it->second[rng.UniformInt(it->second.size())];
                  }
                }
              }
              pos = data::MakeTrainBatch(ds, rows, batch.seq_len);
              Tensor z3 =
                  SasBackbone::LastPosition(backbone_.Encode(pos, /*causal=*/true, rng));
              cl = cl.Add(nn::InfoNce(z1, z3, config_.tau, config_.similarity))
                       .MulScalar(0.5f);
            }
            loss = loss.Add(cl.MulScalar(config_.lambda));
          }
          return loss;
        });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor logits = backbone_.LogitsAll(SasBackbone::LastPosition(h));
    SetTraining(was_training);
    return logits.ToVector();
  }

  const SasBackbone& backbone() const { return backbone_; }

 private:
  DuoRecConfig config_;
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_DUOREC_H_
