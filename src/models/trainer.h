// Epoch/batch orchestration shared by every trainable model: shuffled
// mini-batches, a model-supplied step function, and early stopping on
// validation NDCG@10 with best-weight restore (paper §V.A).
//
// The loop is fault-tolerant (DESIGN.md "Fault-tolerant training runtime"):
// after every step a numeric-health guard scans the loss and parameters, and
// a non-finite value triggers the configured RecoveryPolicy (skip the batch,
// or roll back to the last healthy snapshot, decay the learning rate, and
// retry with exponential backoff). Training state — weights, optimizer
// moments, RNG stream, early-stopping bookkeeping — can be checkpointed
// every k epochs and resumed bit-exactly via TrainConfig::checkpoint_path /
// resume_from.
#ifndef MSGCL_MODELS_TRAINER_H_
#define MSGCL_MODELS_TRAINER_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/batching.h"
#include "eval/evaluator.h"
#include "models/model.h"
#include "nn/nn.h"
#include "obs/obs.h"
#include "parallel/parallel.h"
#include "runtime/runtime.h"

namespace msgcl {
namespace models {

/// Performs one optimisation step on a batch and returns the loss value.
/// The callee owns backward() and optimizer stepping (some models, like
/// Meta-SGCL, take two sub-steps per batch).
using StepFn = std::function<float(const data::Batch& batch, Rng& rng)>;

/// Runs the training loop for `model` with early stopping, numeric-health
/// recovery, and resumable checkpoints.
///
/// `ranker` is evaluated on the validation split every `config.eval_every`
/// epochs (when > 0); training stops after `config.patience` evaluations
/// without NDCG@10 improvement, and the best-scoring weights are restored.
///
/// `optimizers` lists every optimizer the step function drives (non-owning).
/// They are what recovery rolls back / backs off and what v2 checkpoints
/// capture; an empty list still gets parameter-only rollback but no lr
/// backoff and no optimizer-state resume.
///
/// Returns non-OK instead of training through poison: Internal when the
/// recovery policy is exhausted (or kAbort fires), and the resume/telemetry
/// I/O status when those fail. Periodic checkpoint-save failures are NOT
/// fatal: the save is retried once after a short backoff, counted in
/// `runtime.checkpoint.save_failures`, logged, and training continues. On
/// error the model's weights are unspecified.
inline Status FitLoop(nn::Module& model, eval::Ranker& ranker,
                      const data::SequenceDataset& ds, const TrainConfig& config,
                      const StepFn& step, std::vector<nn::Optimizer*> optimizers = {}) {
  if (Status s = config.Validate(); !s.ok()) return s;
  if (config.num_threads > 0) {
    parallel::SetNumThreads(static_cast<int>(config.num_threads));
  }
  Rng rng(config.seed);
  model.SetTraining(true);
  if (config.history != nullptr) config.history->Clear();

  auto params = model.Parameters();
  nn::TrainerProgress progress;
  int64_t start_epoch = 0;

  if (!config.resume_from.empty()) {
    if (Status s = nn::LoadTrainState(model, optimizers, &progress, config.resume_from);
        !s.ok()) {
      return s;
    }
    rng.SetState(progress.rng);
    start_epoch = progress.epoch + 1;
    if (config.history != nullptr) config.history->resumed_from_epoch = progress.epoch;
    if (config.verbose) {
      std::fprintf(stderr, "[%s] resumed from %s at epoch %ld\n", ranker.name().c_str(),
                   config.resume_from.c_str(), static_cast<long>(start_epoch));
    }
  }

  double best_ndcg = progress.best_ndcg;
  int64_t best_epoch = progress.best_epoch;
  int64_t bad_evals = progress.bad_evals;
  std::vector<std::vector<float>> best_weights = std::move(progress.best_weights);

  runtime::HealthGuard guard(config.recovery, params, optimizers);
  guard.Snapshot();
  runtime::FaultInjector* injector = config.fault_injector;
  int64_t attempt_counter = 0;  // step attempts, including retries
  int64_t healthy_steps = 0;

  eval::EvalConfig eval_cfg;
  eval_cfg.max_len = config.max_len;

  // Telemetry CSV: fresh runs truncate; resumed runs append so the epoch
  // series continues without duplicated or misaligned rows. Stale per-step
  // scalars from any earlier run in this process are discarded so epoch
  // means only aggregate this run's steps.
  obs::TelemetryCsv telemetry;
  if (!config.telemetry_path.empty()) {
    if (Status s = telemetry.Open(config.telemetry_path, !config.resume_from.empty());
        !s.ok()) {
      return s;
    }
  }
  (void)obs::DrainStepScalarMeans();

  const auto save_checkpoint = [&](int64_t epoch) -> Status {
    if (config.checkpoint_path.empty()) return Status::Ok();
    MSGCL_OBS_SCOPE("train.checkpoint");
    nn::TrainerProgress p;
    p.epoch = epoch;
    p.rng = rng.GetState();
    p.best_ndcg = best_ndcg;
    p.best_epoch = best_epoch;
    p.bad_evals = bad_evals;
    p.best_weights = best_weights;
    std::vector<const nn::Optimizer*> copts(optimizers.begin(), optimizers.end());
    return nn::SaveTrainState(model, copts, p, config.checkpoint_path);
  };

  // Per-step temporaries (activations, backward scratch) bump-allocate from
  // this arena and are reclaimed wholesale after every attempt. The very
  // first attempt runs on the heap: lazily-created persistent buffers (the
  // parameters' grad vectors, sized by the first EnsureGrad) must not pin
  // arena slabs (see arena.h "first batch on heap").
  arena::Arena step_arena;

  bool stopped_early = false;
  for (int64_t epoch = start_epoch; epoch < config.epochs && !stopped_early; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    double loss_sum = 0.0;
    int64_t steps = 0;
    data::EpochIterator it(ds.num_users(), config.batch_size, rng);
    for (auto rows = it.Next(); !rows.empty(); rows = it.Next()) {
      data::Batch batch = data::MakeTrainBatch(ds, rows, config.max_len);

      // detect -> rollback -> backoff -> abort (see DESIGN.md).
      int64_t retries = 0;
      for (;;) {
        float loss;
        {
          MSGCL_OBS_SCOPE("train.step_fn");
          if (attempt_counter == 0) {
            loss = step(batch, rng);
          } else {
            arena::ArenaScope arena_scope(&step_arena);
            loss = step(batch, rng);
          }
        }
        step_arena.Reset();
        if (injector != nullptr && injector->ShouldCorruptLoss(attempt_counter)) {
          loss = injector->CorruptLoss();
        }
        ++attempt_counter;

        if (guard.Healthy(loss)) {
          if (retries > 0) {
            guard.RestoreLr();
            obs::Registry::Global().GetCounter("runtime.recovery.recovered").Add(1);
            if (config.history != nullptr) {
              config.history->recovery_events.push_back(
                  {epoch, attempt_counter - 1, retries, /*skipped=*/false,
                   "recovered after " + std::to_string(retries) + " retr" +
                       (retries == 1 ? "y" : "ies")});
            }
          }
          loss_sum += loss;
          ++steps;
          ++healthy_steps;
          guard.MaybeSnapshot(healthy_steps);
          break;
        }

        const std::string detail = guard.Diagnose(loss);
        switch (config.recovery.policy) {
          case runtime::RecoveryPolicy::kAbort:
            return Status::Internal("numeric health check failed at epoch " +
                                    std::to_string(epoch) + ": " + detail);
          case runtime::RecoveryPolicy::kSkipBatch:
            guard.Rollback();
            obs::Registry::Global().GetCounter("runtime.recovery.skipped_batches").Add(1);
            if (config.history != nullptr) {
              ++config.history->skipped_batches;
              config.history->recovery_events.push_back(
                  {epoch, attempt_counter - 1, retries, /*skipped=*/true,
                   detail + " (batch skipped)"});
            }
            break;  // out of the switch; flag below exits the retry loop
          case runtime::RecoveryPolicy::kRollbackRetry:
            if (retries >= config.recovery.max_retries) {
              return Status::Internal(
                  "numeric health check failed at epoch " + std::to_string(epoch) +
                  " after " + std::to_string(retries) + " retries: " + detail);
            }
            guard.Rollback();
            ++retries;
            guard.ApplyBackoff(retries);
            obs::Registry::Global().GetCounter("runtime.recovery.retries").Add(1);
            if (config.history != nullptr) ++config.history->rollback_retries;
            continue;  // retry the same batch
        }
        break;  // kSkipBatch: abandon this batch
      }
    }
    if (config.verbose) {
      std::fprintf(stderr, "[%s] epoch %ld loss %.4f\n", ranker.name().c_str(),
                   static_cast<long>(epoch), steps ? loss_sum / steps : 0.0);
    }
    if (config.history != nullptr) {
      config.history->epoch_loss.push_back(steps ? loss_sum / steps : 0.0);
      config.history->stopped_epoch = epoch;
    }

    // Per-epoch telemetry row. Step-scalar means (loss components, grad
    // norm) are drained every epoch even without a CSV so they never leak
    // across epochs. Validation columns are always present when evaluation
    // is configured; epochs without an eval leave them blank (NaN).
    std::map<std::string, double> row = obs::DrainStepScalarMeans();
    row["loss"] = steps ? loss_sum / steps : 0.0;
    if (config.eval_every > 0) {
      row["val_hr10"] = std::numeric_limits<double>::quiet_NaN();
      row["val_ndcg10"] = std::numeric_limits<double>::quiet_NaN();
    }

    if (config.eval_every > 0 && (epoch + 1) % config.eval_every == 0) {
      model.SetTraining(false);
      eval::Metrics val;
      {
        MSGCL_OBS_SCOPE("train.eval");
        NoGradGuard no_grad;
        val = eval::Evaluate(ranker, ds, eval::Split::kValidation, eval_cfg);
      }
      const double ndcg = val.ndcg10;
      model.SetTraining(true);
      row["val_hr10"] = val.hr10;
      row["val_ndcg10"] = val.ndcg10;
      if (config.history != nullptr) {
        config.history->val_epochs.push_back(epoch);
        config.history->val_ndcg10.push_back(ndcg);
      }
      if (ndcg > best_ndcg) {
        best_ndcg = ndcg;
        best_epoch = epoch;
        bad_evals = 0;
        best_weights.clear();
        best_weights.reserve(params.size());
        for (auto& p : params) best_weights.push_back(p.ToVector());
      } else if (++bad_evals >= config.patience) {
        if (config.verbose) {
          std::fprintf(stderr, "[%s] early stop at epoch %ld (best NDCG@10 %.4f)\n",
                       ranker.name().c_str(), static_cast<long>(epoch), best_ndcg);
        }
        stopped_early = true;
      }
    }

    if (telemetry.is_open()) {
      row["wall_seconds"] = std::chrono::duration_cast<std::chrono::duration<double>>(
                                std::chrono::steady_clock::now() - epoch_start)
                                .count();
      if (Status s = telemetry.WriteRow(epoch, row); !s.ok()) return s;
    }

    const bool final_epoch = stopped_early || epoch + 1 >= config.epochs;
    if (final_epoch ||
        (config.checkpoint_every > 0 && (epoch + 1) % config.checkpoint_every == 0)) {
      // A failed checkpoint save must not kill an otherwise healthy run:
      // retry once after a short backoff, then log and train on — losing one
      // periodic checkpoint is strictly better than losing the run. Failures
      // are counted (ungated) so drills and dashboards see them.
      if (Status s = save_checkpoint(epoch); !s.ok()) {
        obs::Registry::Global().GetCounter("runtime.checkpoint.save_failures").Add(1);
        std::fprintf(stderr, "[%s] checkpoint save failed at epoch %ld (%s); retrying\n",
                     ranker.name().c_str(), static_cast<long>(epoch),
                     s.ToString().c_str());
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (Status retry = save_checkpoint(epoch); !retry.ok()) {
          obs::Registry::Global().GetCounter("runtime.checkpoint.save_failures").Add(1);
          std::fprintf(stderr,
                       "[%s] checkpoint retry failed (%s); continuing without a "
                       "checkpoint for this epoch\n",
                       ranker.name().c_str(), retry.ToString().c_str());
        }
      }
    }
  }

  if (!best_weights.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].data().assign(best_weights[i].begin(), best_weights[i].end());
    }
  }
  if (config.history != nullptr) config.history->best_epoch = best_epoch;
  model.SetTraining(false);
  return Status::Ok();
}

/// The common single-optimizer step: zero grads, compute `loss_fn`, backward,
/// clip, (optionally inject a configured gradient fault), step.
inline StepFn StandardStep(nn::Module& model, nn::Optimizer& opt, const TrainConfig& config,
                           std::function<Tensor(const data::Batch&, Rng&)> loss_fn) {
  return [&model, &opt, grad_clip = config.grad_clip, injector = config.fault_injector,
          loss_fn = std::move(loss_fn), call = int64_t{0}](const data::Batch& batch,
                                                          Rng& rng) mutable {
    opt.ZeroGrad();
    Tensor loss = [&] {
      MSGCL_OBS_SCOPE("train.forward");
      return loss_fn(batch, rng);
    }();
    {
      MSGCL_OBS_SCOPE("train.backward");
      loss.Backward();
    }
    if (grad_clip > 0.0f) {
      obs::RecordStepScalar("grad_norm", nn::ClipGradNorm(model.Parameters(), grad_clip));
    }
    if (injector != nullptr && injector->ShouldCorruptGradients(call)) {
      injector->CorruptGradients(model.Parameters());
    }
    ++call;
    {
      MSGCL_OBS_SCOPE("train.step");
      opt.Step();
    }
    return loss.item();
  };
}

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_TRAINER_H_
