// Epoch/batch orchestration shared by every trainable model: shuffled
// mini-batches, a model-supplied step function, and early stopping on
// validation NDCG@10 with best-weight restore (paper §V.A).
#ifndef MSGCL_MODELS_TRAINER_H_
#define MSGCL_MODELS_TRAINER_H_

#include <cstdio>
#include <functional>
#include <vector>

#include "data/batching.h"
#include "eval/evaluator.h"
#include "models/model.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// Performs one optimisation step on a batch and returns the loss value.
/// The callee owns backward() and optimizer stepping (some models, like
/// Meta-SGCL, take two sub-steps per batch).
using StepFn = std::function<float(const data::Batch& batch, Rng& rng)>;

/// Runs the training loop for `model` with early stopping.
///
/// `ranker` is evaluated on the validation split every
/// `config.eval_every` epochs (when > 0); training stops after
/// `config.patience` evaluations without NDCG@10 improvement, and the
/// best-scoring weights are restored.
inline void FitLoop(nn::Module& model, eval::Ranker& ranker,
                    const data::SequenceDataset& ds, const TrainConfig& config,
                    const StepFn& step) {
  MSGCL_CHECK_MSG(config.Validate().ok(), config.Validate().ToString());
  Rng rng(config.seed);
  model.SetTraining(true);
  if (config.history != nullptr) config.history->Clear();

  auto params = model.Parameters();
  std::vector<std::vector<float>> best_weights;
  double best_ndcg = -1.0;
  int64_t best_epoch = -1;
  int64_t bad_evals = 0;

  eval::EvalConfig eval_cfg;
  eval_cfg.max_len = config.max_len;

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double loss_sum = 0.0;
    int64_t steps = 0;
    data::EpochIterator it(ds.num_users(), config.batch_size, rng);
    for (auto rows = it.Next(); !rows.empty(); rows = it.Next()) {
      data::Batch batch = data::MakeTrainBatch(ds, rows, config.max_len);
      loss_sum += step(batch, rng);
      ++steps;
    }
    if (config.verbose) {
      std::fprintf(stderr, "[%s] epoch %ld loss %.4f\n", ranker.name().c_str(),
                   static_cast<long>(epoch), steps ? loss_sum / steps : 0.0);
    }
    if (config.history != nullptr) {
      config.history->epoch_loss.push_back(steps ? loss_sum / steps : 0.0);
      config.history->stopped_epoch = epoch;
    }

    if (config.eval_every > 0 && (epoch + 1) % config.eval_every == 0) {
      model.SetTraining(false);
      double ndcg;
      {
        NoGradGuard guard;
        ndcg = eval::Evaluate(ranker, ds, eval::Split::kValidation, eval_cfg).ndcg10;
      }
      model.SetTraining(true);
      if (config.history != nullptr) {
        config.history->val_epochs.push_back(epoch);
        config.history->val_ndcg10.push_back(ndcg);
      }
      if (ndcg > best_ndcg) {
        best_ndcg = ndcg;
        best_epoch = epoch;
        bad_evals = 0;
        best_weights.clear();
        best_weights.reserve(params.size());
        for (auto& p : params) best_weights.push_back(p.data());
      } else if (++bad_evals >= config.patience) {
        if (config.verbose) {
          std::fprintf(stderr, "[%s] early stop at epoch %ld (best NDCG@10 %.4f)\n",
                       ranker.name().c_str(), static_cast<long>(epoch), best_ndcg);
        }
        break;
      }
    }
  }

  if (!best_weights.empty()) {
    for (size_t i = 0; i < params.size(); ++i) params[i].data() = best_weights[i];
  }
  if (config.history != nullptr) config.history->best_epoch = best_epoch;
  model.SetTraining(false);
}

/// The common single-optimizer step: zero grads, compute `loss_fn`, backward,
/// clip, step.
inline StepFn StandardStep(nn::Module& model, nn::Optimizer& opt, float grad_clip,
                           std::function<Tensor(const data::Batch&, Rng&)> loss_fn) {
  return [&model, &opt, grad_clip, loss_fn = std::move(loss_fn)](const data::Batch& batch,
                                                                 Rng& rng) {
    opt.ZeroGrad();
    Tensor loss = loss_fn(batch, rng);
    loss.Backward();
    if (grad_clip > 0.0f) nn::ClipGradNorm(model.Parameters(), grad_clip);
    opt.Step();
    return loss.item();
  };
}

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_TRAINER_H_
