// CL4SRec baseline (Xie et al., 2020 — "CLS4Rec" in the paper's §I): SASRec
// plus contrastive learning whose two views are random *data* augmentations
// of the sequence (item crop / item mask / item reorder). This is the
// canonical hand-crafted-augmentation method whose semantic damage motivates
// Meta-SGCL's generative views (paper Fig. 1a).
#ifndef MSGCL_MODELS_CL4SREC_H_
#define MSGCL_MODELS_CL4SREC_H_

#include <utility>
#include <vector>

#include "data/augment.h"
#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// CL4SRec configuration.
struct Cl4SRecConfig {
  BackboneConfig backbone;
  float lambda = 0.1f;  // contrastive weight
  float tau = 0.5f;
  nn::Similarity similarity = nn::Similarity::kCosine;
  double crop_ratio = 0.6;
  double mask_ratio = 0.3;
  double reorder_ratio = 0.3;
};

class Cl4SRec : public Recommender, public nn::Module {
 public:
  Cl4SRec(Cl4SRecConfig config, const TrainConfig& train, Rng rng)
      : config_((config.backbone.with_mask_token = true, std::move(config))),
        train_(train),
        rng_(rng),
        backbone_(config_.backbone, rng_) {
    RegisterChild("backbone", &backbone_);
  }

  std::string name() const override { return "CL4SRec"; }

  Status Fit(const data::SequenceDataset& ds) override {
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(
        *this, opt, train_, [this, &ds](const data::Batch& batch, Rng& rng) {
          // Main task: next-item prediction on the un-augmented sequence.
          Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
          Tensor logits = backbone_.LogitsAll(
              h.Reshape({batch.batch_size * batch.seq_len, backbone_.config().dim}));
          Tensor loss = CrossEntropyLogits(logits, batch.targets, 0);
          if (config_.lambda > 0.0f && batch.batch_size > 1) {
            Tensor z1 = EncodeAugmented(ds, batch, rng);
            Tensor z2 = EncodeAugmented(ds, batch, rng);
            loss = loss.Add(nn::InfoNce(z1, z2, config_.tau, config_.similarity)
                                .MulScalar(config_.lambda));
          }
          return loss;
        });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor logits = backbone_.LogitsAll(SasBackbone::LastPosition(h));
    SetTraining(was_training);
    return logits.ToVector();
  }

 private:
  /// Sequence-level representation of a randomly augmented copy of each row.
  Tensor EncodeAugmented(const data::SequenceDataset& ds, const data::Batch& batch,
                         Rng& rng) const {
    std::vector<std::vector<int32_t>> aug(ds.train_seqs.size());
    for (int32_t u : batch.users) {
      aug[u] = data::AugmentRandom(ds.train_seqs[u], backbone_.mask_token(), rng,
                                   config_.crop_ratio, config_.mask_ratio,
                                   config_.reorder_ratio);
      if (aug[u].empty()) aug[u] = ds.train_seqs[u];
    }
    data::Batch view = data::MakeTrainBatch(ds, batch.users, batch.seq_len, &aug);
    Tensor h = backbone_.Encode(view, /*causal=*/true, rng);
    return SasBackbone::LastPosition(h);
  }

  Cl4SRecConfig config_;
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_CL4SREC_H_
