// CoSeRec baseline (Liu et al., 2021, paper §I): contrastive learning with
// *robust* data augmentations — instead of CL4SRec's random crop/mask/
// reorder, CoSeRec substitutes items with highly-correlated ones and inserts
// correlated items, preserving semantics better. Correlation here is the
// training-data co-occurrence within a sliding window (the original offers
// item-CF or embedding similarity; co-occurrence is its model-free variant).
#ifndef MSGCL_MODELS_COSEREC_H_
#define MSGCL_MODELS_COSEREC_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// Most-correlated item lookup built from windowed co-occurrence counts.
class ItemCorrelation {
 public:
  /// Builds the top-1 correlate per item from `seqs` with a +-window.
  ItemCorrelation(const std::vector<std::vector<int32_t>>& seqs, int32_t num_items,
                  int64_t window = 3) {
    std::vector<std::unordered_map<int32_t, int64_t>> co(num_items + 1);
    for (const auto& s : seqs) {
      const int64_t n = static_cast<int64_t>(s.size());
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = std::max<int64_t>(0, i - window);
             j < std::min(n, i + window + 1); ++j) {
          if (i == j || s[i] == s[j]) continue;
          co[s[i]][s[j]]++;
        }
      }
    }
    best_.assign(num_items + 1, 0);
    for (int32_t item = 1; item <= num_items; ++item) {
      int64_t mx = 0;
      for (const auto& [other, cnt] : co[item]) {
        if (cnt > mx) {
          mx = cnt;
          best_[item] = other;
        }
      }
    }
  }

  /// The most co-occurring item, or 0 when the item was never seen.
  int32_t MostCorrelated(int32_t item) const {
    MSGCL_CHECK_GE(item, 0);
    MSGCL_CHECK_LT(static_cast<size_t>(item), best_.size());
    return best_[item];
  }

 private:
  std::vector<int32_t> best_;
};

/// Substitute: replaces a `ratio` fraction of positions with their most
/// correlated item (falls back to keeping the item when no correlate).
inline std::vector<int32_t> AugmentSubstitute(const std::vector<int32_t>& seq,
                                              const ItemCorrelation& corr, double ratio,
                                              Rng& rng) {
  std::vector<int32_t> out = seq;
  for (auto& it : out) {
    if (rng.Bernoulli(ratio)) {
      const int32_t sub = corr.MostCorrelated(it);
      if (sub != 0) it = sub;
    }
  }
  return out;
}

/// Insert: after a `ratio` fraction of positions, inserts the position's
/// most correlated item.
inline std::vector<int32_t> AugmentInsert(const std::vector<int32_t>& seq,
                                          const ItemCorrelation& corr, double ratio,
                                          Rng& rng) {
  std::vector<int32_t> out;
  out.reserve(seq.size() * 2);
  for (int32_t it : seq) {
    out.push_back(it);
    if (rng.Bernoulli(ratio)) {
      const int32_t ins = corr.MostCorrelated(it);
      if (ins != 0) out.push_back(ins);
    }
  }
  return out;
}

/// CoSeRec configuration.
struct CoSeRecConfig {
  BackboneConfig backbone;
  float lambda = 0.1f;
  float tau = 0.5f;
  nn::Similarity similarity = nn::Similarity::kCosine;
  double substitute_ratio = 0.3;
  double insert_ratio = 0.3;
  int64_t correlation_window = 3;
};

class CoSeRec : public Recommender, public nn::Module {
 public:
  CoSeRec(const CoSeRecConfig& config, const TrainConfig& train, Rng rng)
      : config_(config), train_(train), rng_(rng), backbone_(config.backbone, rng_) {
    RegisterChild("backbone", &backbone_);
  }

  std::string name() const override { return "CoSeRec"; }

  Status Fit(const data::SequenceDataset& ds) override {
    corr_ = std::make_unique<ItemCorrelation>(ds.train_seqs, ds.num_items,
                                              config_.correlation_window);
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(
        *this, opt, train_, [this, &ds](const data::Batch& batch, Rng& rng) {
          Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
          Tensor logits = backbone_.LogitsAll(
              h.Reshape({batch.batch_size * batch.seq_len, backbone_.config().dim}));
          Tensor loss = CrossEntropyLogits(logits, batch.targets, 0);
          if (config_.lambda > 0.0f && batch.batch_size > 1) {
            Tensor z1 = EncodeAugmented(ds, batch, rng);
            Tensor z2 = EncodeAugmented(ds, batch, rng);
            loss = loss.Add(nn::InfoNce(z1, z2, config_.tau, config_.similarity)
                                .MulScalar(config_.lambda));
          }
          return loss;
        });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor logits = backbone_.LogitsAll(SasBackbone::LastPosition(h));
    SetTraining(was_training);
    return logits.ToVector();
  }

 private:
  Tensor EncodeAugmented(const data::SequenceDataset& ds, const data::Batch& batch,
                         Rng& rng) const {
    std::vector<std::vector<int32_t>> aug(ds.train_seqs.size());
    for (int32_t u : batch.users) {
      const auto& seq = ds.train_seqs[u];
      aug[u] = rng.Bernoulli(0.5)
                   ? AugmentSubstitute(seq, *corr_, config_.substitute_ratio, rng)
                   : AugmentInsert(seq, *corr_, config_.insert_ratio, rng);
      if (aug[u].empty()) aug[u] = seq;
    }
    data::Batch view = data::MakeTrainBatch(ds, batch.users, batch.seq_len, &aug);
    Tensor h = backbone_.Encode(view, /*causal=*/true, rng);
    return SasBackbone::LastPosition(h);
  }

  CoSeRecConfig config_;
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
  std::unique_ptr<ItemCorrelation> corr_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_COSEREC_H_
