// ContrastVAE baseline (Wang et al., CIKM 2022): a variational sequence
// model with *two* views per sequence — the original input and a
// data-augmented copy (CL4SRec crop/mask/reorder), each passing through the
// encoder with independent dropout (model augmentation). Both views get an
// ELBO (cross-entropy + KL) and their sequence-level latents are pulled
// together with InfoNCE. Meta-SGCL's pitch is that these random-edit views
// can destroy sequence semantics; this baseline makes that comparison live.
#ifndef MSGCL_MODELS_CONTRAST_VAE_H_
#define MSGCL_MODELS_CONTRAST_VAE_H_

#include <vector>

#include "data/augment.h"
#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// ContrastVAE configuration.
struct ContrastVaeConfig {
  BackboneConfig backbone;
  float alpha = 0.1f;  // contrastive weight
  float beta = 0.2f;   // KL weight
  float tau = 1.0f;
};

class ContrastVae : public Recommender, public nn::Module {
 public:
  ContrastVae(ContrastVaeConfig config, const TrainConfig& train, Rng rng)
      : config_((config.backbone.with_mask_token = true, std::move(config))),
        train_(train),
        rng_(rng),
        backbone_(config_.backbone, rng_),
        enc_mu_(config_.backbone.dim, config_.backbone.dim, rng_),
        enc_logvar_(config_.backbone.dim, config_.backbone.dim, rng_) {
    RegisterChild("backbone", &backbone_);
    RegisterChild("enc_mu", &enc_mu_);
    RegisterChild("enc_logvar", &enc_logvar_);
    enc_logvar_.InitBiasConstant(-4.0f);  // start at small sigma
  }

  std::string name() const override { return "ContrastVAE"; }

  Status Fit(const data::SequenceDataset& ds) override {
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(
        *this, opt, train_, [this, &ds](const data::Batch& batch, Rng& rng) {
          // View 2: CL4SRec augmentation of each row's training sequence.
          std::vector<std::vector<int32_t>> aug(ds.train_seqs.size());
          for (int32_t u : batch.users) {
            aug[u] = data::AugmentRandom(ds.train_seqs[u], backbone_.mask_token(), rng);
            if (aug[u].size() < 2) aug[u] = ds.train_seqs[u];
          }
          data::Batch batch2 =
              data::MakeTrainBatch(ds, batch.users, batch.seq_len, &aug);
          // Masked items can appear as next-item targets in the augmented
          // view; they are not scorable (logits exclude the mask row), so
          // they are ignored in the reconstruction loss.
          for (auto& t : batch2.targets) {
            if (t == backbone_.mask_token()) t = 0;
          }

          auto view = [&](const data::Batch& b) {
            Tensor h = backbone_.Encode(b, /*causal=*/true, rng);
            Tensor mu = enc_mu_.Forward(h);
            Tensor logvar = enc_logvar_.Forward(h);
            Tensor z = mu.Add(logvar.MulScalar(0.5f).Exp().Mul(
                Tensor::Randn(mu.shape(), rng)));
            Tensor logits = backbone_.LogitsAll(
                z.Reshape({b.batch_size * b.seq_len, backbone_.config().dim}));
            Tensor ce = CrossEntropyLogits(logits, b.targets, 0);
            std::vector<uint8_t> valid(b.key_padding.size());
            for (size_t i = 0; i < valid.size(); ++i) valid[i] = b.key_padding[i] ? 0 : 1;
            Tensor elbo = ce.Add(nn::GaussianKl(mu, logvar, &valid).MulScalar(config_.beta));
            Tensor z_last = z.Narrow(1, b.seq_len - 1, 1)
                                .Reshape({b.batch_size, backbone_.config().dim});
            return std::make_pair(elbo, z_last);
          };
          auto [elbo1, z1] = view(batch);
          auto [elbo2, z2] = view(batch2);
          Tensor loss = elbo1.Add(elbo2);
          if (config_.alpha > 0.0f && batch.batch_size > 1) {
            loss = loss.Add(nn::InfoNce(z1, z2, config_.tau).MulScalar(config_.alpha));
          }
          return loss;
        });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor mu = enc_mu_.Forward(SasBackbone::LastPosition(h));
    Tensor logits = backbone_.LogitsAll(mu);
    SetTraining(was_training);
    return logits.ToVector();
  }

 private:
  ContrastVaeConfig config_;
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
  nn::Linear enc_mu_;
  nn::Linear enc_logvar_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_CONTRAST_VAE_H_
