// SASRec baseline (Kang & McAuley, ICDM 2018): causal self-attention over
// the interaction sequence, trained with next-item cross-entropy at every
// position. Also serves as the paper's "-clkl" ablation reference.
#ifndef MSGCL_MODELS_SASREC_H_
#define MSGCL_MODELS_SASREC_H_

#include <vector>

#include "eval/session.h"
#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

class SasRec : public Recommender, public nn::Module, public eval::SessionScorer {
 public:
  SasRec(const BackboneConfig& config, const TrainConfig& train, Rng rng)
      : train_(train), rng_(rng), backbone_(config, rng_) {
    RegisterChild("backbone", &backbone_);
  }

  std::string name() const override { return "SASRec"; }

  Status Fit(const data::SequenceDataset& ds) override { return FitWith(ds, train_); }

  /// Fit with a caller-supplied config instead of the constructor's — the
  /// online trainer builds a per-session config (resume_from the serving
  /// checkpoint, a few extra epochs, eval disabled) around the same loop.
  Status FitWith(const data::SequenceDataset& ds, const TrainConfig& config) {
    nn::Adam opt(Parameters(), config.lr);
    auto step = StandardStep(*this, opt, config,
                             [this](const data::Batch& batch, Rng& rng) {
                               return Loss(batch, rng);
                             });
    return FitLoop(*this, *this, ds, config, step, {&opt});
  }

  /// Next-item cross-entropy over all non-padded positions.
  Tensor Loss(const data::Batch& batch, Rng& rng) const {
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor logits = backbone_.LogitsAll(
        h.Reshape({batch.batch_size * batch.seq_len, backbone_.config().dim}));
    return CrossEntropyLogits(logits, batch.targets, /*ignore_index=*/0);
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Tensor logits = backbone_.LogitsAll(LastHidden(batch));
    SetTraining(was_training);
    return logits.ToVector();
  }

  /// Fused serving path: same encode as ScoreAll, then the backbone's
  /// blocked dot + bounded-heap selection instead of full logits.
  std::vector<eval::TopKList> ScoreTopK(const data::Batch& batch,
                                        const eval::TopKOptions& opt) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    std::vector<eval::TopKList> out = backbone_.ScoreTopKFused(LastHidden(batch), batch, opt);
    SetTraining(was_training);
    return out;
  }

  // ---- eval::SessionScorer (incremental serving, DESIGN.md §12) -----------

  int64_t session_capacity() const override { return backbone_.config().max_len; }
  int64_t session_dim() const override { return backbone_.config().dim; }

  void EncodeSession(const std::vector<int32_t>& window,
                     eval::SessionState& state) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);  // unused in eval mode
    state.items.clear();
    state.items.reserve(static_cast<size_t>(session_capacity()));
    state.stacks.assign(1, nn::KvCache());
    backbone_.InitSessionCache(state.stacks[0]);
    Tensor h = backbone_.EncodeSessionCold(window, state.stacks[0], rng);
    state.h_last = SasBackbone::LastPosition(h).ToVector();
    state.items.assign(window.begin(), window.end());
    SetTraining(was_training);
  }

  void AppendSession(int32_t item, eval::SessionState& state) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = backbone_.AppendSessionItem(
        item, static_cast<int64_t>(state.items.size()), state.stacks[0], rng);
    state.h_last = h.ToVector();  // [1, 1, dim] — dim floats
    state.items.push_back(item);
    SetTraining(was_training);
  }

  std::vector<eval::TopKList> ScoreSessionHidden(
      const std::vector<float>& hidden, int64_t rows,
      const eval::TopKOptions& opt) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Tensor h = Tensor::FromVector({rows, backbone_.config().dim}, hidden);
    std::vector<eval::TopKList> out = backbone_.ScoreTopKFusedRows(h, opt);
    SetTraining(was_training);
    return out;
  }

  const SasBackbone& backbone() const { return backbone_; }

 private:
  /// Eval-mode hidden state of the final position: [B, dim]. Shared by
  /// ScoreAll and ScoreTopK so both paths see bit-identical representations.
  Tensor LastHidden(const data::Batch& batch) const {
    Rng rng(0);  // unused in eval mode
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    return SasBackbone::LastPosition(h);
  }

  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_SASREC_H_
