// SASRec baseline (Kang & McAuley, ICDM 2018): causal self-attention over
// the interaction sequence, trained with next-item cross-entropy at every
// position. Also serves as the paper's "-clkl" ablation reference.
#ifndef MSGCL_MODELS_SASREC_H_
#define MSGCL_MODELS_SASREC_H_

#include <vector>

#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

class SasRec : public Recommender, public nn::Module {
 public:
  SasRec(const BackboneConfig& config, const TrainConfig& train, Rng rng)
      : train_(train), rng_(rng), backbone_(config, rng_) {
    RegisterChild("backbone", &backbone_);
  }

  std::string name() const override { return "SASRec"; }

  Status Fit(const data::SequenceDataset& ds) override {
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(*this, opt, train_,
                             [this](const data::Batch& batch, Rng& rng) {
                               return Loss(batch, rng);
                             });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  /// Next-item cross-entropy over all non-padded positions.
  Tensor Loss(const data::Batch& batch, Rng& rng) const {
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor logits = backbone_.LogitsAll(
        h.Reshape({batch.batch_size * batch.seq_len, backbone_.config().dim}));
    return CrossEntropyLogits(logits, batch.targets, /*ignore_index=*/0);
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);  // unused in eval mode
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor logits = backbone_.LogitsAll(SasBackbone::LastPosition(h));
    SetTraining(was_training);
    return logits.data();
  }

  const SasBackbone& backbone() const { return backbone_; }

 private:
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_SASREC_H_
