// FPMC baseline (Rendle et al., WWW 2010): Factorizing Personalized Markov
// Chains. Scores combine a user-item matrix-factorisation term with a
// last-item-to-next-item transition term:
//   score(u, i | last = l) = <V_u^{UI}, V_i^{IU}> + <V_l^{LI}, V_i^{IL}>
// Trained with BPR over (user, last item, positive next, sampled negative).
// A classic MC-based sequential model (paper §VI.A related work).
#ifndef MSGCL_MODELS_FPMC_H_
#define MSGCL_MODELS_FPMC_H_

#include <memory>
#include <vector>

#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// FPMC configuration.
struct FpmcConfig {
  int64_t dim = 32;
  float weight_decay = 1e-5f;
};

class Fpmc : public Recommender, public nn::Module {
 public:
  Fpmc(const FpmcConfig& config, const TrainConfig& train, Rng rng)
      : config_(config), train_(train), rng_(rng) {}

  std::string name() const override { return "FPMC"; }

  Status Fit(const data::SequenceDataset& ds) override {
    num_items_ = ds.num_items;
    user_ui_ = std::make_unique<nn::Embedding>(ds.num_users(), config_.dim, rng_);
    item_iu_ = std::make_unique<nn::Embedding>(ds.num_items + 1, config_.dim, rng_, 0);
    last_li_ = std::make_unique<nn::Embedding>(ds.num_items + 1, config_.dim, rng_, 0);
    item_il_ = std::make_unique<nn::Embedding>(ds.num_items + 1, config_.dim, rng_, 0);
    RegisterChild("user_ui", user_ui_.get());
    RegisterChild("item_iu", item_iu_.get());
    RegisterChild("last_li", last_li_.get());
    RegisterChild("item_il", item_il_.get());

    nn::Adam opt(Parameters(), train_.lr, 0.9f, 0.999f, 1e-8f, config_.weight_decay);
    auto step = [&](const data::Batch& batch, Rng& rng) {
      const int64_t B = batch.batch_size;
      std::vector<int32_t> users(B), last(B), pos(B), neg(B);
      for (int64_t b = 0; b < B; ++b) {
        const int32_t u = batch.users[b];
        users[b] = u;
        const auto& seq = ds.train_seqs[u];
        // A random transition (l -> p) from the user's history.
        if (seq.size() >= 2) {
          const size_t t = rng.UniformInt(seq.size() - 1);
          last[b] = seq[t];
          pos[b] = seq[t + 1];
        } else {
          last[b] = seq[0];
          pos[b] = seq[0];
        }
        neg[b] = 1 + static_cast<int32_t>(rng.UniformInt(ds.num_items));
      }
      opt.ZeroGrad();
      Tensor eu = user_ui_->Forward(users, {B});
      Tensor el = last_li_->Forward(last, {B});
      auto score = [&](const std::vector<int32_t>& items) {
        Tensor iu = item_iu_->Forward(items, {B});
        Tensor il = item_il_->Forward(items, {B});
        return eu.Mul(iu).SumLastDim().Add(el.Mul(il).SumLastDim());
      };
      Tensor diff = score(pos).Sub(score(neg));
      Tensor loss = diff.Sigmoid().Log().Neg().Mean();
      loss.Backward();
      opt.Step();
      return loss.item();
    };
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    MSGCL_CHECK_MSG(user_ui_ != nullptr, "Fpmc::Fit must be called before ScoreAll");
    NoGradGuard guard;
    const int64_t B = batch.batch_size;
    std::vector<int32_t> last(B);
    for (int64_t b = 0; b < B; ++b) {
      last[b] = batch.inputs[(b + 1) * batch.seq_len - 1];  // most recent item
    }
    Tensor eu = user_ui_->Forward(batch.users, {B});
    Tensor el = last_li_->Forward(last, {B});
    Tensor mf = eu.MatMul(item_iu_->table().TransposeLast2());
    Tensor mc = el.MatMul(item_il_->table().TransposeLast2());
    return mf.Add(mc).ToVector();
  }

 private:
  FpmcConfig config_;
  TrainConfig train_;
  Rng rng_;
  int32_t num_items_ = 0;
  std::unique_ptr<nn::Embedding> user_ui_, item_iu_, last_li_, item_il_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_FPMC_H_
