// BERT4Rec baseline (Sun et al., CIKM 2019): bidirectional self-attention
// trained as masked-item prediction (Cloze task). At inference the [mask]
// token is appended after the history and its hidden state scores all items.
#ifndef MSGCL_MODELS_BERT4REC_H_
#define MSGCL_MODELS_BERT4REC_H_

#include <vector>

#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// BERT4Rec configuration: backbone + masking probability.
struct Bert4RecConfig {
  BackboneConfig backbone;
  float mask_prob = 0.2f;
};

class Bert4Rec : public Recommender, public nn::Module {
 public:
  Bert4Rec(Bert4RecConfig config, const TrainConfig& train, Rng rng)
      : config_(std::move(config)), train_(train), rng_(rng),
        backbone_((config_.backbone.with_mask_token = true, config_.backbone), rng_) {
    RegisterChild("backbone", &backbone_);
  }

  std::string name() const override { return "BERT4Rec"; }

  Status Fit(const data::SequenceDataset& ds) override {
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(*this, opt, train_,
                             [this](const data::Batch& batch, Rng& rng) {
                               return Loss(batch, rng);
                             });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  /// Cloze loss: randomly replace non-pad inputs with [mask] and predict the
  /// original item at masked positions only. The final position is always
  /// masked with probability 0.5 to align training with inference.
  Tensor Loss(const data::Batch& batch, Rng& rng) const {
    data::Batch masked = batch;
    std::vector<int32_t> mlm_targets(batch.inputs.size(), 0);
    const int32_t mask_id = backbone_.mask_token();
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      bool any = false;
      for (int64_t t = 0; t < batch.seq_len; ++t) {
        const int64_t i = b * batch.seq_len + t;
        if (batch.inputs[i] == 0) continue;
        const bool is_last = t == batch.seq_len - 1;
        const double p = is_last ? 0.5 : config_.mask_prob;
        if (rng.Bernoulli(p)) {
          mlm_targets[i] = batch.inputs[i];
          masked.inputs[i] = mask_id;
          any = true;
        }
      }
      if (!any) {
        // Guarantee a training signal: mask the final real position.
        for (int64_t t = batch.seq_len - 1; t >= 0; --t) {
          const int64_t i = b * batch.seq_len + t;
          if (batch.inputs[i] != 0) {
            mlm_targets[i] = batch.inputs[i];
            masked.inputs[i] = mask_id;
            break;
          }
        }
      }
    }
    Tensor h = backbone_.Encode(masked, /*causal=*/false, rng);
    Tensor logits = backbone_.LogitsAll(
        h.Reshape({batch.batch_size * batch.seq_len, backbone_.config().dim}));
    return CrossEntropyLogits(logits, mlm_targets, /*ignore_index=*/0);
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    // Shift the history left by one and append [mask]; predict at the mask.
    data::Batch shifted = batch;
    const int32_t mask_id = backbone_.mask_token();
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      for (int64_t t = 0; t + 1 < batch.seq_len; ++t) {
        shifted.inputs[b * batch.seq_len + t] = batch.inputs[b * batch.seq_len + t + 1];
        shifted.key_padding[b * batch.seq_len + t] =
            batch.key_padding[b * batch.seq_len + t + 1];
      }
      shifted.inputs[(b + 1) * batch.seq_len - 1] = mask_id;
      shifted.key_padding[(b + 1) * batch.seq_len - 1] = 0;
    }
    Rng rng(0);
    Tensor h = backbone_.Encode(shifted, /*causal=*/false, rng);
    Tensor logits = backbone_.LogitsAll(SasBackbone::LastPosition(h));
    SetTraining(was_training);
    return logits.ToVector();
  }

 private:
  Bert4RecConfig config_;
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_BERT4REC_H_
