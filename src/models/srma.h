// SRMA baseline (Yu et al., 2022, per the paper's §I): SASRec plus
// *model-level* augmentation — beyond DuoRec's neuron dropout, SRMA also
// drops whole encoder layers to build the second contrastive view. This
// reproduction implements the neuron-drop + layer-drop combination (the
// third SRMA component, an encoder-complement model, is a separately trained
// network and is out of scope; documented in DESIGN.md).
#ifndef MSGCL_MODELS_SRMA_H_
#define MSGCL_MODELS_SRMA_H_

#include <vector>

#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// SRMA configuration.
struct SrmaConfig {
  BackboneConfig backbone;
  float lambda = 0.1f;
  float tau = 0.5f;
  nn::Similarity similarity = nn::Similarity::kCosine;
  double layer_drop_prob = 0.5;  // P(second view drops one random layer)
};

class Srma : public Recommender, public nn::Module {
 public:
  Srma(const SrmaConfig& config, const TrainConfig& train, Rng rng)
      : config_(config), train_(train), rng_(rng), backbone_(config.backbone, rng_) {
    RegisterChild("backbone", &backbone_);
  }

  std::string name() const override { return "SRMA"; }

  Status Fit(const data::SequenceDataset& ds) override {
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(
        *this, opt, train_, [this](const data::Batch& batch, Rng& rng) {
          Tensor h1 = backbone_.Encode(batch, /*causal=*/true, rng);
          Tensor logits = backbone_.LogitsAll(
              h1.Reshape({batch.batch_size * batch.seq_len, backbone_.config().dim}));
          Tensor loss = CrossEntropyLogits(logits, batch.targets, 0);
          if (config_.lambda > 0.0f && batch.batch_size > 1) {
            // Second view: fresh dropout masks, and with probability
            // layer_drop_prob one random encoder block is skipped.
            int64_t skip = -1;
            if (backbone_.num_layers() > 1 && rng.Bernoulli(config_.layer_drop_prob)) {
              skip = static_cast<int64_t>(rng.UniformInt(backbone_.num_layers()));
            }
            Tensor h2 = backbone_.Encode(batch, /*causal=*/true, rng, skip);
            Tensor cl = nn::InfoNce(SasBackbone::LastPosition(h1),
                                    SasBackbone::LastPosition(h2), config_.tau,
                                    config_.similarity);
            loss = loss.Add(cl.MulScalar(config_.lambda));
          }
          return loss;
        });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor logits = backbone_.LogitsAll(SasBackbone::LastPosition(h));
    SetTraining(was_training);
    return logits.ToVector();
  }

 private:
  SrmaConfig config_;
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_SRMA_H_
