// BPR-MF baseline (Rendle et al., UAI 2009): matrix factorisation trained
// with the Bayesian Personalised Ranking pairwise loss on implicit feedback.
// Non-sequential: order within a user's history is ignored.
#ifndef MSGCL_MODELS_BPR_MF_H_
#define MSGCL_MODELS_BPR_MF_H_

#include <memory>
#include <set>
#include <vector>

#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// BPR-MF configuration.
struct BprMfConfig {
  int64_t dim = 32;
  float weight_decay = 1e-5f;
};

class BprMf : public Recommender, public nn::Module {
 public:
  BprMf(const BprMfConfig& config, const TrainConfig& train, Rng rng)
      : config_(config), train_(train), rng_(rng) {}

  std::string name() const override { return "BPR-MF"; }

  Status Fit(const data::SequenceDataset& ds) override {
    num_items_ = ds.num_items;
    user_emb_ = std::make_unique<nn::Embedding>(ds.num_users(), config_.dim, rng_);
    item_emb_ = std::make_unique<nn::Embedding>(ds.num_items + 1, config_.dim, rng_,
                                                /*padding_idx=*/0);
    RegisterChild("user_emb", user_emb_.get());
    RegisterChild("item_emb", item_emb_.get());

    // Per-user positive sets for negative sampling.
    std::vector<std::set<int32_t>> seen(ds.num_users());
    for (int32_t u = 0; u < ds.num_users(); ++u) {
      seen[u].insert(ds.train_seqs[u].begin(), ds.train_seqs[u].end());
    }

    nn::Adam opt(Parameters(), train_.lr, 0.9f, 0.999f, 1e-8f, config_.weight_decay);
    auto step = [&](const data::Batch& batch, Rng& rng) {
      // One (user, positive, negative) triple per row; the positive is a
      // uniformly drawn item from the user's history.
      const int64_t B = batch.batch_size;
      std::vector<int32_t> users(B), pos(B), neg(B);
      for (int64_t b = 0; b < B; ++b) {
        const int32_t u = batch.users[b];
        users[b] = u;
        const auto& seq = ds.train_seqs[u];
        pos[b] = seq[rng.UniformInt(seq.size())];
        int32_t n;
        do {
          n = 1 + static_cast<int32_t>(rng.UniformInt(ds.num_items));
        } while (seen[u].count(n) > 0);
        neg[b] = n;
      }
      opt.ZeroGrad();
      Tensor eu = user_emb_->Forward(users, {B});
      Tensor ep = item_emb_->Forward(pos, {B});
      Tensor en = item_emb_->Forward(neg, {B});
      Tensor diff = eu.Mul(ep).SumLastDim().Sub(eu.Mul(en).SumLastDim());
      // -log sigmoid(diff), numerically safe via the sigmoid op itself.
      Tensor loss = diff.Sigmoid().Log().Neg().Mean();
      loss.Backward();
      opt.Step();
      return loss.item();
    };
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    MSGCL_CHECK_MSG(user_emb_ != nullptr, "BprMf::Fit must be called before ScoreAll");
    NoGradGuard guard;
    Tensor eu = user_emb_->Forward(batch.users, {batch.batch_size});
    Tensor logits = eu.MatMul(item_emb_->table().TransposeLast2());
    return logits.ToVector();
  }

 private:
  BprMfConfig config_;
  TrainConfig train_;
  Rng rng_;
  int32_t num_items_ = 0;
  std::unique_ptr<nn::Embedding> user_emb_;
  std::unique_ptr<nn::Embedding> item_emb_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_BPR_MF_H_
