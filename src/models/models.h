// Umbrella header for all baseline recommenders.
#ifndef MSGCL_MODELS_MODELS_H_
#define MSGCL_MODELS_MODELS_H_

#include "models/acvae.h"         // IWYU pragma: export
#include "models/backbone.h"     // IWYU pragma: export
#include "models/bert4rec.h"     // IWYU pragma: export
#include "models/bpr_mf.h"       // IWYU pragma: export
#include "models/caser.h"        // IWYU pragma: export
#include "models/cl4srec.h"      // IWYU pragma: export
#include "models/contrast_vae.h" // IWYU pragma: export
#include "models/coserec.h"      // IWYU pragma: export
#include "models/duorec.h"       // IWYU pragma: export
#include "models/fpmc.h"         // IWYU pragma: export
#include "models/gru4rec.h"      // IWYU pragma: export
#include "models/model.h"        // IWYU pragma: export
#include "models/pop.h"          // IWYU pragma: export
#include "models/sasrec.h"       // IWYU pragma: export
#include "models/srma.h"         // IWYU pragma: export
#include "models/trainer.h"      // IWYU pragma: export
#include "models/vsan.h"         // IWYU pragma: export

#endif  // MSGCL_MODELS_MODELS_H_
