// Caser baseline (Tang & Wang, WSDM 2018): treats the last T item embeddings
// as a T x d "image" and applies horizontal (per-window) and vertical
// (per-dimension) convolutions, concatenated with a user embedding for
// prediction. Trained with all-item cross-entropy at the sequence level.
#ifndef MSGCL_MODELS_CASER_H_
#define MSGCL_MODELS_CASER_H_

#include <memory>
#include <vector>

#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// Caser configuration.
struct CaserConfig {
  int64_t num_items = 0;
  int64_t dim = 32;
  std::vector<int64_t> h_filter_heights = {2, 3, 4};
  int64_t h_filters_per_height = 4;  // n_h in the paper
  int64_t v_filters = 2;             // n_v in the paper
  float dropout = 0.2f;
};

class Caser : public Recommender, public nn::Module {
 public:
  Caser(const CaserConfig& config, const TrainConfig& train, Rng rng)
      : config_(config),
        train_(train),
        rng_(rng),
        item_emb_(config.num_items + 1, config.dim, rng_, /*padding_idx=*/0),
        dropout_(config.dropout) {
    RegisterChild("item_emb", &item_emb_);
    RegisterChild("dropout", &dropout_);
    for (int64_t h : config_.h_filter_heights) {
      h_weights_.push_back(RegisterParameter(
          "hconv" + std::to_string(h) + ".weight",
          nn::NormalInit({config_.h_filters_per_height, h, config_.dim}, rng_, 0.1f)));
      h_biases_.push_back(RegisterParameter("hconv" + std::to_string(h) + ".bias",
                                            Tensor::Zeros({config_.h_filters_per_height})));
    }
    // Vertical filters contract the time axis: [v_filters, T].
    v_weight_ = RegisterParameter(
        "vconv.weight", nn::NormalInit({config_.v_filters, train_.max_len}, rng_, 0.1f));
    const int64_t conv_out = static_cast<int64_t>(config_.h_filter_heights.size()) *
                                 config_.h_filters_per_height +
                             config_.v_filters * config_.dim;
    fc_ = std::make_unique<nn::Linear>(conv_out, config_.dim, rng_);
    RegisterChild("fc", fc_.get());
  }

  std::string name() const override { return "Caser"; }

  Status Fit(const data::SequenceDataset& ds) override {
    // The user embedding table is sized by the dataset, so it is created here.
    if (user_emb_ == nullptr) {
      user_emb_ = std::make_unique<nn::Embedding>(ds.num_users(), config_.dim, rng_);
      RegisterChild("user_emb", user_emb_.get());
      out_ = std::make_unique<nn::Linear>(2 * config_.dim, config_.num_items + 1, rng_);
      RegisterChild("out", out_.get());
    }
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(*this, opt, train_,
                             [this](const data::Batch& batch, Rng& rng) {
                               Tensor logits = Logits(batch, rng, /*use_user=*/true);
                               return CrossEntropyLogits(logits, batch.LastTargets(),
                                                         /*ignore_index=*/0);
                             });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    MSGCL_CHECK_MSG(user_emb_ != nullptr, "Caser::Fit must be called before ScoreAll");
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor logits = Logits(batch, rng, /*use_user=*/true);
    SetTraining(was_training);
    return logits.ToVector();
  }

 private:
  /// Full Caser pipeline: embeddings -> conv features -> fc -> user concat ->
  /// all-item logits [B, num_items + 1].
  Tensor Logits(const data::Batch& batch, Rng& rng, bool use_user) const {
    const int64_t B = batch.batch_size, T = batch.seq_len;
    MSGCL_CHECK_EQ(T, train_.max_len);
    Tensor x = item_emb_.Forward(batch.inputs, {B, T});  // [B, T, d]

    std::vector<Tensor> feats;
    for (size_t i = 0; i < h_weights_.size(); ++i) {
      // [B, L, F] -> max over time -> [B, F]
      Tensor c = HorizontalConv(x, h_weights_[i], h_biases_[i]).Relu();
      feats.push_back(c.TransposeLast2().MaxLastDim());
    }
    // Vertical: [F_v, T] @ [B, T, d] -> [B, F_v, d] -> flatten.
    Tensor v = v_weight_.MatMul(x).Reshape({B, config_.v_filters * config_.dim});
    feats.push_back(v);

    Tensor conv = dropout_.Forward(Tensor::Concat(feats, 1), rng);
    Tensor zc = fc_->Forward(conv).Relu();  // [B, d]
    Tensor zu = use_user ? user_emb_->Forward(batch.users, {B})
                         : Tensor::Zeros({B, config_.dim});
    return out_->Forward(Tensor::Concat({zc, zu}, 1));
  }

  CaserConfig config_;
  TrainConfig train_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Dropout dropout_;
  std::vector<Tensor> h_weights_, h_biases_;
  Tensor v_weight_;
  std::unique_ptr<nn::Linear> fc_;
  std::unique_ptr<nn::Linear> out_;
  std::unique_ptr<nn::Embedding> user_emb_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_CASER_H_
