// Pop baseline: recommends the globally most popular items (paper §V.A).
#ifndef MSGCL_MODELS_POP_H_
#define MSGCL_MODELS_POP_H_

#include <vector>

#include "models/model.h"

namespace msgcl {
namespace models {

/// Non-personalised popularity ranking over the training interactions.
class Pop : public Recommender {
 public:
  std::string name() const override { return "Pop"; }

  Status Fit(const data::SequenceDataset& ds) override {
    counts_.assign(ds.num_items + 1, 0.0f);
    for (const auto& seq : ds.train_seqs) {
      for (int32_t item : seq) counts_[item] += 1.0f;
    }
    counts_[0] = -1.0f;  // padding must never be recommended
    return Status::Ok();
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    MSGCL_CHECK_MSG(!counts_.empty(), "Pop::Fit must be called before ScoreAll");
    std::vector<float> scores(batch.batch_size * counts_.size());
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      std::copy(counts_.begin(), counts_.end(),
                scores.begin() + b * static_cast<int64_t>(counts_.size()));
    }
    return scores;
  }

 private:
  std::vector<float> counts_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_POP_H_
