// ACVAE baseline (Xie et al., WWW 2021): Adversarial and Contrastive
// Variational AutoEncoder for sequential recommendation.
//
// Faithful-to-structure reproduction: a variational sequence model whose
// prior matching is *adversarial* (an AAE/AVB-style discriminator separates
// posterior samples from prior samples, and the encoder is trained to fool
// it) instead of an analytic KL, plus a contrastive mutual-information term
// between the latent views. The paper's extra sequence-level discriminator
// conditioning is simplified to latent-only (DESIGN.md §1).
#ifndef MSGCL_MODELS_ACVAE_H_
#define MSGCL_MODELS_ACVAE_H_

#include <vector>

#include "models/backbone.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// ACVAE configuration.
struct AcvaeConfig {
  BackboneConfig backbone;
  float beta = 0.2f;   // weight of the adversarial prior-matching term
  float gamma = 0.1f;  // latent contrastive weight
  float tau = 1.0f;
  float disc_lr_scale = 1.0f;  // discriminator lr = scale * model lr
};

class Acvae : public Recommender, public nn::Module {
 public:
  Acvae(const AcvaeConfig& config, const TrainConfig& train, Rng rng)
      : config_(config),
        train_(train),
        rng_(rng),
        backbone_(config.backbone, rng_),
        enc_mu_(config.backbone.dim, config.backbone.dim, rng_),
        enc_logvar_(config.backbone.dim, config.backbone.dim, rng_),
        disc_hidden_(config.backbone.dim, config.backbone.dim, rng_),
        disc_out_(config.backbone.dim, 1, rng_) {
    RegisterChild("backbone", &backbone_);
    RegisterChild("enc_mu", &enc_mu_);
    RegisterChild("enc_logvar", &enc_logvar_);
    RegisterChild("disc_hidden", &disc_hidden_);
    RegisterChild("disc_out", &disc_out_);
    enc_logvar_.InitBiasConstant(-4.0f);  // start at small sigma
  }

  std::string name() const override { return "ACVAE"; }

  Status Fit(const data::SequenceDataset& ds) override {
    // Separate optimizers: the adversarial game alternates between the
    // discriminator and the generator (encoder/decoder) sides.
    std::vector<Tensor> model_params = backbone_.Parameters();
    for (auto& p : enc_mu_.Parameters()) model_params.push_back(p);
    for (auto& p : enc_logvar_.Parameters()) model_params.push_back(p);
    std::vector<Tensor> disc_params = disc_hidden_.Parameters();
    for (auto& p : disc_out_.Parameters()) disc_params.push_back(p);

    nn::Adam opt_model(model_params, train_.lr);
    nn::Adam opt_disc(disc_params, train_.lr * config_.disc_lr_scale);

    auto step = [&](const data::Batch& batch, Rng& rng) {
      const int64_t B = batch.batch_size, T = batch.seq_len;
      const int64_t D = backbone_.config().dim;

      // ---- Discriminator update: prior -> 1, posterior -> 0.
      ZeroGrad();
      {
        Tensor h = backbone_.Encode(batch, true, rng);
        Tensor mu = enc_mu_.Forward(h);
        Tensor sigma = enc_logvar_.Forward(h).MulScalar(0.5f).Exp();
        Tensor z_post = mu.Add(sigma.Mul(Tensor::Randn(mu.shape(), rng)))
                            .Narrow(1, T - 1, 1)
                            .Reshape({B, D})
                            .Detach();
        Tensor z_prior = Tensor::Randn({B, D}, rng);
        Tensor d_prior = Discriminate(z_prior);
        Tensor d_post = Discriminate(z_post);
        // BCE: -log sigmoid(prior) - log(1 - sigmoid(post)).
        Tensor d_loss = d_prior.Sigmoid().Log().Neg().Mean().Add(
            d_post.Neg().Sigmoid().Log().Neg().Mean());
        d_loss.Backward();
        opt_disc.Step();
      }

      // ---- Generator update: reconstruction + fool the discriminator +
      // latent contrastive term.
      ZeroGrad();
      Tensor h = backbone_.Encode(batch, true, rng);
      Tensor mu = enc_mu_.Forward(h);
      Tensor sigma = enc_logvar_.Forward(h).MulScalar(0.5f).Exp();
      Tensor z1 = mu.Add(sigma.Mul(Tensor::Randn(mu.shape(), rng)));
      Tensor logits = backbone_.LogitsAll(z1.Reshape({B * T, D}));
      Tensor loss = CrossEntropyLogits(logits, batch.targets, 0);

      Tensor z1_last = z1.Narrow(1, T - 1, 1).Reshape({B, D});
      // Adversarial prior matching: make the posterior look like the prior.
      Tensor adv = Discriminate(z1_last).Sigmoid().Log().Neg().Mean();
      loss = loss.Add(adv.MulScalar(config_.beta));

      if (config_.gamma > 0.0f && B > 1) {
        Tensor z2 = mu.Add(sigma.Mul(Tensor::Randn(mu.shape(), rng)));
        Tensor z2_last = z2.Narrow(1, T - 1, 1).Reshape({B, D});
        loss = loss.Add(nn::InfoNce(z1_last, z2_last, config_.tau).MulScalar(config_.gamma));
      }
      loss.Backward();
      if (train_.grad_clip > 0.0f) nn::ClipGradNorm(model_params, train_.grad_clip);
      opt_model.Step();
      ZeroGrad();
      return loss.item();
    };
    return FitLoop(*this, *this, ds, train_, step, {&opt_model, &opt_disc});
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = backbone_.Encode(batch, /*causal=*/true, rng);
    Tensor mu = enc_mu_.Forward(SasBackbone::LastPosition(h));
    Tensor logits = backbone_.LogitsAll(mu);
    SetTraining(was_training);
    return logits.ToVector();
  }

 private:
  /// Discriminator logit D(z): MLP d -> d -> 1.
  Tensor Discriminate(const Tensor& z) const {
    return disc_out_.Forward(disc_hidden_.Forward(z).Relu());
  }

  AcvaeConfig config_;
  TrainConfig train_;
  Rng rng_;
  SasBackbone backbone_;
  nn::Linear enc_mu_;
  nn::Linear enc_logvar_;
  nn::Linear disc_hidden_;
  nn::Linear disc_out_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_ACVAE_H_
