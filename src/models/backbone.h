// Shared self-attention backbone: item + position embeddings feeding a
// Transformer encoder, with weight-tied all-item scoring. SASRec, BERT4Rec,
// VSAN, DuoRec, ContrastVAE, ACVAE and Meta-SGCL all build on this, so their
// comparison isolates the training objective (DESIGN.md §4.3).
#ifndef MSGCL_MODELS_BACKBONE_H_
#define MSGCL_MODELS_BACKBONE_H_

#include <algorithm>
#include <vector>

#include "data/batching.h"
#include "eval/topk.h"
#include "nn/nn.h"
#include "obs/profiler.h"
#include "parallel/parallel.h"
#include "tensor/kernels.h"

namespace msgcl {
namespace models {

/// Backbone hyper-parameters.
struct BackboneConfig {
  int64_t num_items = 0;  // valid ids 1..num_items
  int64_t max_len = 50;
  int64_t dim = 32;
  int64_t heads = 2;
  int64_t layers = 2;
  float dropout = 0.2f;
  bool with_mask_token = false;  // reserve id num_items+1 (BERT4Rec)
};

/// Embedding layer + Transformer encoder + tied output projection.
class SasBackbone : public nn::Module {
 public:
  SasBackbone(const BackboneConfig& config, Rng& rng)
      : config_(config),
        item_emb_(config.num_items + (config.with_mask_token ? 2 : 1), config.dim, rng,
                  /*padding_idx=*/0),
        pos_emb_(config.max_len, config.dim, rng),
        encoder_({config.dim, config.heads, config.layers, config.dropout}, rng),
        emb_dropout_(config.dropout),
        emb_norm_(config.dim) {
    RegisterChild("item_emb", &item_emb_);
    RegisterChild("pos_emb", &pos_emb_);
    RegisterChild("encoder", &encoder_);
    RegisterChild("emb_dropout", &emb_dropout_);
    RegisterChild("emb_norm", &emb_norm_);
  }

  /// Embeds a batch: item embedding + position embedding, LayerNorm, dropout
  /// (Eq. 4). Returns [B, T, dim].
  Tensor Embed(const data::Batch& batch, Rng& rng) const {
    Tensor e = item_emb_.Forward(batch.inputs, {batch.batch_size, batch.seq_len});
    Tensor p = pos_emb_.Forward(batch.positions, {batch.batch_size, batch.seq_len});
    return emb_dropout_.Forward(emb_norm_.Forward(e.Add(p)), rng);
  }

  /// Embed + encode. `causal` selects unidirectional (SASRec) vs
  /// bidirectional (BERT4Rec) attention. `skip_layer` bypasses one encoder
  /// block (SRMA's layer-drop augmentation; -1 = full stack). Returns hidden
  /// states [B, T, dim].
  Tensor Encode(const data::Batch& batch, bool causal, Rng& rng,
                int64_t skip_layer = -1) const {
    Tensor x = Embed(batch, rng);
    return encoder_.Forward(x, causal, &batch.key_padding, rng, skip_layer);
  }

  /// Number of encoder blocks (for layer-drop sampling).
  int64_t num_layers() const { return encoder_.num_layers(); }

  // ---- Incremental session path (serving, DESIGN.md §12) -------------------
  //
  // Session layout: B = 1, seq_len = window length (<= max_len), no padding,
  // absolute positions 0..L-1 — unlike MakeEvalBatch's left-padded window,
  // appending an item extends the sequence without shifting earlier
  // positions, which is what makes K/V reuse bit-exact.

  /// Builds the session-layout batch for one window.
  static data::Batch MakeSessionBatch(const std::vector<int32_t>& window) {
    data::Batch b;
    b.batch_size = 1;
    b.seq_len = static_cast<int64_t>(window.size());
    b.inputs = window;
    b.positions.resize(window.size());
    for (size_t t = 0; t < window.size(); ++t) {
      b.positions[t] = static_cast<int32_t>(t);
    }
    b.key_padding.assign(window.size(), 0);
    return b;
  }

  /// Sizes a session cache for this backbone's encoder stack.
  void InitSessionCache(nn::KvCache& cache) const {
    encoder_.InitCache(cache, config_.max_len);
  }

  /// Cold session encode: embeds `window` in the session layout and runs the
  /// causal encoder, capturing every layer's K/V into `cache`. Returns
  /// hidden states [1, L, dim].
  Tensor EncodeSessionCold(const std::vector<int32_t>& window, nn::KvCache& cache,
                           Rng& rng) const {
    MSGCL_CHECK(!window.empty());
    MSGCL_CHECK_LE(static_cast<int64_t>(window.size()), config_.max_len);
    data::Batch batch = MakeSessionBatch(window);
    Tensor x = Embed(batch, rng);
    return encoder_.Forward(x, /*causal=*/true, &batch.key_padding, rng,
                            /*skip_layer=*/-1, &cache);
  }

  /// Embeds one appended item at absolute position `pos` (= current session
  /// length) in the session layout: [1, 1, dim]. Same Embed path as the cold
  /// encode, so the row is bit-identical to the cold embedding of that
  /// position.
  Tensor EmbedSessionItem(int32_t item, int64_t pos, Rng& rng) const {
    MSGCL_CHECK_GE(pos, 0);
    MSGCL_CHECK_LT(pos, config_.max_len);
    data::Batch b;
    b.batch_size = 1;
    b.seq_len = 1;
    b.inputs = {item};
    b.positions = {static_cast<int32_t>(pos)};
    b.key_padding = {0};
    return Embed(b, rng);
  }

  /// Warm session step: appends `item` at position `pos` against `cache` and
  /// returns the new position's hidden state [1, 1, dim] — bit-identical to
  /// the last row of EncodeSessionCold over the extended window.
  Tensor AppendSessionItem(int32_t item, int64_t pos, nn::KvCache& cache,
                           Rng& rng) const {
    MSGCL_CHECK_EQ(pos, cache.len());
    Tensor x = EmbedSessionItem(item, pos, rng);
    return encoder_.ForwardIncremental(x, cache, rng);
  }

  /// ScoreTopKFused over bare hidden rows (no eval batch): used by the
  /// session path, where exclusion comes via `opt.exclude` (one entry per
  /// row) rather than batch contents. `opt.exclude_seen` must be false —
  /// there is no batch window to read seen items from.
  std::vector<eval::TopKList> ScoreTopKFusedRows(const Tensor& h_last,
                                                 const eval::TopKOptions& opt) const {
    MSGCL_CHECK(!opt.exclude_seen);
    data::Batch dummy;
    dummy.batch_size = h_last.dim(0);
    dummy.seq_len = 0;
    return ScoreTopKFused(h_last, dummy, opt);
  }

  /// Weight-tied logits against rows 0..num_items of the item table
  /// (the mask-token row, when present, is excluded so it is never
  /// recommended). h: [M, dim] -> [M, num_items + 1].
  Tensor LogitsAll(const Tensor& h) const {
    Tensor table = item_emb_.table();
    if (config_.with_mask_token) table = table.Narrow(0, 0, config_.num_items + 1);
    return h.MatMul(table.TransposeLast2());
  }

  /// Fused weight-tied score→top-k for the serving path (DESIGN.md §9).
  ///
  /// For each row of `h_last` [B, dim], dots against item rows 1..num_items
  /// of the embedding table in blocks (a kItemBlock×dim tile stays cache-hot
  /// across the rows of a shard) and keeps a per-row bounded heap — the
  /// B×(num_items+1) logit matrix of LogitsAll is never materialized.
  ///
  /// Bitwise contract: each dot accumulates over the hidden dimension in the
  /// same ascending order as the matmul kernel behind LogitsAll, so the
  /// scores — and therefore the selected (item, score) lists under the total
  /// BetterScored order — are bit-identical to the ScoreAll + sort reference.
  /// Rows are sharded via parallel::For with disjoint writes, so the result
  /// is also invariant under the thread count (DESIGN.md §6).
  std::vector<eval::TopKList> ScoreTopKFused(const Tensor& h_last,
                                             const data::Batch& batch,
                                             const eval::TopKOptions& opt) const {
    MSGCL_CHECK_EQ(h_last.ndim(), 2);
    const int64_t B = h_last.dim(0), D = h_last.dim(1);
    MSGCL_CHECK_EQ(B, batch.batch_size);
    MSGCL_CHECK_EQ(D, config_.dim);
    // Typed validation (PR 5 convention): a malformed k / num_items / item
    // range throws std::invalid_argument, which the serving layer converts
    // to Status::InvalidArgument instead of aborting the process.
    opt.ValidateOrThrow();
    const int32_t N = static_cast<int32_t>(config_.num_items);
    if (opt.num_items > 0) MSGCL_CHECK_EQ(opt.num_items, N);
    // Optional contiguous shard range (DESIGN.md §14). Each item's dot is
    // accumulated independently of its position in the tile block, so
    // restricting the walk to [lo, hi] yields bit-identical per-item scores
    // and the per-shard lists merge exactly under BetterScored.
    const int32_t lo = opt.has_item_range() ? opt.first_item : 1;
    const int32_t hi = opt.has_item_range() ? std::min(opt.last_item, N) : N;
    MSGCL_OBS_SCOPE_BYTES("serve.score_topk.fused",
                          (B * D + static_cast<int64_t>(N) * D) * 4);
    const float* hd = h_last.data().data();
    // Rows 1..num_items only; the padding row 0 and the mask-token row (when
    // present) are never pushed, matching LogitsAll's narrowed table.
    const float* table = item_emb_.table().data().data();
    std::vector<eval::ExcludeSet> exclude = eval::BuildExcludeSets(batch, opt);
    std::vector<eval::TopKList> out(B);
    constexpr int64_t kItemBlock = 256;
    parallel::For(0, B, 1, [&](int64_t b0, int64_t b1) {
      std::vector<eval::BoundedTopK> sel;
      sel.reserve(static_cast<size_t>(b1 - b0));
      for (int64_t b = b0; b < b1; ++b) sel.emplace_back(opt.k);
      // Per-shard scratch: a transposed [D, block] tile of the embedding
      // table and one [block] score row. The tile is what TransposeLast2
      // materializes inside LogitsAll, block-sized instead of N-sized.
      std::vector<float> tile(static_cast<size_t>(D) * kItemBlock);
      std::vector<float> scores(kItemBlock);
      for (int64_t i0 = lo; i0 <= hi; i0 += kItemBlock) {
        const int64_t block = std::min<int64_t>(hi - i0 + 1, kItemBlock);
        for (int64_t j = 0; j < block; ++j) {
          const float* e = table + (i0 + j) * D;
          for (int64_t p = 0; p < D; ++p) tile[p * block + j] = e[p];
        }
        for (int64_t b = b0; b < b1; ++b) {
          // Scores flow through simd::MatMulTile — the SAME inner tile the
          // tensor matmul kernel uses (p-blocked, j innermost, fma) — so the
          // fused path stays bit-identical to LogitsAll under every ISA.
          std::fill(scores.begin(), scores.begin() + block, 0.0f);
          const float* arow = hd + b * D;
          float* crow = scores.data();
          constexpr int64_t kPBlock = 64;
          for (int64_t pb0 = 0; pb0 < D; pb0 += kPBlock) {
            const int64_t pb1 = std::min(D, pb0 + kPBlock);
            simd::MatMulTile(crow, arow, tile.data(), pb0, pb1, block);
          }
          for (int64_t j = 0; j < block; ++j) {
            const int32_t item = static_cast<int32_t>(i0 + j);
            if (exclude[b].Contains(item)) continue;
            sel[b - b0].Push(item, scores[j]);
          }
        }
      }
      for (int64_t b = b0; b < b1; ++b) out[b] = sel[b - b0].Take();
    });
    return out;
  }

  /// Hidden state of the final (most recent) position: [B, dim].
  static Tensor LastPosition(const Tensor& h) {
    const int64_t B = h.dim(0), T = h.dim(1), D = h.dim(2);
    return h.Narrow(1, T - 1, 1).Reshape({B, D});
  }

  const nn::Embedding& item_embedding() const { return item_emb_; }
  const BackboneConfig& config() const { return config_; }
  int32_t mask_token() const {
    MSGCL_CHECK(config_.with_mask_token);
    return static_cast<int32_t>(config_.num_items + 1);
  }

 private:
  BackboneConfig config_;
  nn::Embedding item_emb_;
  nn::Embedding pos_emb_;
  nn::TransformerEncoder encoder_;
  nn::Dropout emb_dropout_;
  nn::LayerNorm emb_norm_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_BACKBONE_H_
