// Shared self-attention backbone: item + position embeddings feeding a
// Transformer encoder, with weight-tied all-item scoring. SASRec, BERT4Rec,
// VSAN, DuoRec, ContrastVAE, ACVAE and Meta-SGCL all build on this, so their
// comparison isolates the training objective (DESIGN.md §4.3).
#ifndef MSGCL_MODELS_BACKBONE_H_
#define MSGCL_MODELS_BACKBONE_H_

#include <vector>

#include "data/batching.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// Backbone hyper-parameters.
struct BackboneConfig {
  int64_t num_items = 0;  // valid ids 1..num_items
  int64_t max_len = 50;
  int64_t dim = 32;
  int64_t heads = 2;
  int64_t layers = 2;
  float dropout = 0.2f;
  bool with_mask_token = false;  // reserve id num_items+1 (BERT4Rec)
};

/// Embedding layer + Transformer encoder + tied output projection.
class SasBackbone : public nn::Module {
 public:
  SasBackbone(const BackboneConfig& config, Rng& rng)
      : config_(config),
        item_emb_(config.num_items + (config.with_mask_token ? 2 : 1), config.dim, rng,
                  /*padding_idx=*/0),
        pos_emb_(config.max_len, config.dim, rng),
        encoder_({config.dim, config.heads, config.layers, config.dropout}, rng),
        emb_dropout_(config.dropout),
        emb_norm_(config.dim) {
    RegisterChild("item_emb", &item_emb_);
    RegisterChild("pos_emb", &pos_emb_);
    RegisterChild("encoder", &encoder_);
    RegisterChild("emb_dropout", &emb_dropout_);
    RegisterChild("emb_norm", &emb_norm_);
  }

  /// Embeds a batch: item embedding + position embedding, LayerNorm, dropout
  /// (Eq. 4). Returns [B, T, dim].
  Tensor Embed(const data::Batch& batch, Rng& rng) const {
    Tensor e = item_emb_.Forward(batch.inputs, {batch.batch_size, batch.seq_len});
    Tensor p = pos_emb_.Forward(batch.positions, {batch.batch_size, batch.seq_len});
    return emb_dropout_.Forward(emb_norm_.Forward(e.Add(p)), rng);
  }

  /// Embed + encode. `causal` selects unidirectional (SASRec) vs
  /// bidirectional (BERT4Rec) attention. `skip_layer` bypasses one encoder
  /// block (SRMA's layer-drop augmentation; -1 = full stack). Returns hidden
  /// states [B, T, dim].
  Tensor Encode(const data::Batch& batch, bool causal, Rng& rng,
                int64_t skip_layer = -1) const {
    Tensor x = Embed(batch, rng);
    return encoder_.Forward(x, causal, &batch.key_padding, rng, skip_layer);
  }

  /// Number of encoder blocks (for layer-drop sampling).
  int64_t num_layers() const { return encoder_.num_layers(); }

  /// Weight-tied logits against rows 0..num_items of the item table
  /// (the mask-token row, when present, is excluded so it is never
  /// recommended). h: [M, dim] -> [M, num_items + 1].
  Tensor LogitsAll(const Tensor& h) const {
    Tensor table = item_emb_.table();
    if (config_.with_mask_token) table = table.Narrow(0, 0, config_.num_items + 1);
    return h.MatMul(table.TransposeLast2());
  }

  /// Hidden state of the final (most recent) position: [B, dim].
  static Tensor LastPosition(const Tensor& h) {
    const int64_t B = h.dim(0), T = h.dim(1), D = h.dim(2);
    return h.Narrow(1, T - 1, 1).Reshape({B, D});
  }

  const nn::Embedding& item_embedding() const { return item_emb_; }
  const BackboneConfig& config() const { return config_; }
  int32_t mask_token() const {
    MSGCL_CHECK(config_.with_mask_token);
    return static_cast<int32_t>(config_.num_items + 1);
  }

 private:
  BackboneConfig config_;
  nn::Embedding item_emb_;
  nn::Embedding pos_emb_;
  nn::TransformerEncoder encoder_;
  nn::Dropout emb_dropout_;
  nn::LayerNorm emb_norm_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_BACKBONE_H_
