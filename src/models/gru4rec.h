// GRU4Rec baseline (Hidasi et al., ICLR 2016): a GRU over the interaction
// sequence with weight-tied all-item output. The original's session-parallel
// mini-batches and pairwise losses are replaced by the repo-wide padded-batch
// + cross-entropy protocol so every model trains on identical batches.
#ifndef MSGCL_MODELS_GRU4REC_H_
#define MSGCL_MODELS_GRU4REC_H_

#include <vector>

#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"

namespace msgcl {
namespace models {

/// GRU4Rec configuration.
struct Gru4RecConfig {
  int64_t num_items = 0;
  int64_t dim = 32;
  float dropout = 0.2f;
};

class Gru4Rec : public Recommender, public nn::Module {
 public:
  Gru4Rec(const Gru4RecConfig& config, const TrainConfig& train, Rng rng)
      : config_(config),
        train_(train),
        rng_(rng),
        item_emb_(config.num_items + 1, config.dim, rng_, /*padding_idx=*/0),
        gru_(config.dim, config.dim, rng_),
        dropout_(config.dropout) {
    RegisterChild("item_emb", &item_emb_);
    RegisterChild("gru", &gru_);
    RegisterChild("dropout", &dropout_);
  }

  std::string name() const override { return "GRU4Rec"; }

  Status Fit(const data::SequenceDataset& ds) override {
    nn::Adam opt(Parameters(), train_.lr);
    auto step = StandardStep(*this, opt, train_,
                             [this](const data::Batch& batch, Rng& rng) {
                               return Loss(batch, rng);
                             });
    return FitLoop(*this, *this, ds, train_, step, {&opt});
  }

  Tensor Loss(const data::Batch& batch, Rng& rng) const {
    Tensor h = Encode(batch, rng);
    Tensor logits = h.Reshape({batch.batch_size * batch.seq_len, config_.dim})
                        .MatMul(item_emb_.table().TransposeLast2());
    return CrossEntropyLogits(logits, batch.targets, /*ignore_index=*/0);
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = Encode(batch, rng);
    Tensor last = h.Narrow(1, batch.seq_len - 1, 1).Reshape({batch.batch_size, config_.dim});
    Tensor logits = last.MatMul(item_emb_.table().TransposeLast2());
    SetTraining(was_training);
    return logits.ToVector();
  }

 private:
  Tensor Encode(const data::Batch& batch, Rng& rng) const {
    Tensor e = item_emb_.Forward(batch.inputs, {batch.batch_size, batch.seq_len});
    return gru_.Forward(dropout_.Forward(e, rng));
  }

  Gru4RecConfig config_;
  TrainConfig train_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Gru gru_;
  nn::Dropout dropout_;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_GRU4REC_H_
