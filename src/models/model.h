// Common interfaces and configuration for all recommenders.
#ifndef MSGCL_MODELS_MODEL_H_
#define MSGCL_MODELS_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/evaluator.h"
#include "runtime/fault_injector.h"
#include "runtime/recovery.h"
#include "tensor/status.h"

namespace msgcl {
namespace models {

/// Shared training hyper-parameters (paper §V.A "Implementation Details":
/// Adam, lr 1e-3, dim 64, heads 2, dropout 0.2, early stopping on
/// validation; everything here is scaled per DESIGN.md).
/// Per-epoch training trace filled by FitLoop when requested via
/// TrainConfig::history.
struct FitHistory {
  std::vector<double> epoch_loss;       // mean step loss per epoch
  std::vector<int64_t> val_epochs;      // epochs at which validation ran
  std::vector<double> val_ndcg10;       // NDCG@10 at those epochs
  int64_t best_epoch = -1;              // epoch of the restored weights
  int64_t stopped_epoch = -1;           // last epoch executed

  // Fault-tolerance trace: every detect->rollback action the numeric-health
  // guard took, plus summary counters.
  std::vector<runtime::RecoveryEvent> recovery_events;
  int64_t skipped_batches = 0;          // batches abandoned by kSkipBatch
  int64_t rollback_retries = 0;         // retry attempts consumed
  int64_t resumed_from_epoch = -1;      // >= 0 when the run resumed mid-way

  void Clear() { *this = FitHistory(); }
};

struct TrainConfig {
  int64_t epochs = 30;
  int64_t batch_size = 128;
  float lr = 1e-3f;
  int64_t max_len = 50;
  float grad_clip = 5.0f;
  uint64_t seed = 1234;

  /// Intra-op worker threads for the tensor kernels. 0 keeps the process-wide
  /// setting (MSGCL_NUM_THREADS env or hardware concurrency); > 0 pins the
  /// pool to that many threads before training starts. Results are bitwise
  /// identical for every value (DESIGN.md "Determinism under parallelism").
  int64_t num_threads = 0;

  /// Optional training-trace sink (non-owning; must outlive Fit).
  FitHistory* history = nullptr;

  // Early stopping: evaluate validation NDCG@10 every `eval_every` epochs and
  // stop after `patience` evaluations without improvement (0 disables). The
  // best-scoring weights are restored at the end.
  int64_t eval_every = 0;
  int64_t patience = 3;

  // ---- Fault-tolerant runtime (see src/runtime/ and DESIGN.md) ----
  // Numeric-health guard policy applied after every optimisation step.
  runtime::RecoveryConfig recovery;
  // Optional deterministic fault source (non-owning; testing/chaos drills).
  runtime::FaultInjector* fault_injector = nullptr;
  // Resumable checkpointing: when checkpoint_path is non-empty, a v2 train
  // state (weights + optimizer moments + RNG + early-stop bookkeeping) is
  // written atomically every `checkpoint_every` epochs (<=0: only at the
  // end). When resume_from is non-empty, training restarts from that v2
  // checkpoint instead of from scratch.
  std::string checkpoint_path;
  int64_t checkpoint_every = 1;
  std::string resume_from;

  // ---- Observability (see src/obs/ and DESIGN.md §8) ----
  // When non-empty, FitLoop appends one telemetry CSV row per epoch (loss
  // terms, grad norm, validation HR/NDCG, wall time) to this path. A resumed
  // run (resume_from non-empty) appends to the existing file, keeping its
  // column order, so the series survives checkpoint restarts.
  std::string telemetry_path;

  bool verbose = false;

  Status Validate() const {
    if (epochs <= 0 || batch_size <= 0 || max_len <= 0) {
      return Status::InvalidArgument("epochs, batch_size and max_len must be positive");
    }
    if (lr <= 0.0f) return Status::InvalidArgument("lr must be positive");
    if (num_threads < 0) return Status::InvalidArgument("num_threads must be >= 0");
    return recovery.Validate();
  }
};

/// A trainable recommender: fit on the training split, then rank via
/// eval::Ranker::ScoreAll.
class Recommender : public eval::Ranker {
 public:
  /// Trains on `ds.train_seqs` (validation data is used only for early
  /// stopping when enabled). Returns non-OK when training could not
  /// complete — e.g. the numeric-health guard exhausted its retries, or a
  /// resume checkpoint was missing/corrupt. Weights are unspecified after a
  /// failure.
  virtual Status Fit(const data::SequenceDataset& ds) = 0;
};

}  // namespace models
}  // namespace msgcl

#endif  // MSGCL_MODELS_MODEL_H_
