// Umbrella header for the data substrate.
#ifndef MSGCL_DATA_DATA_H_
#define MSGCL_DATA_DATA_H_

#include "data/augment.h"   // IWYU pragma: export
#include "data/batching.h"  // IWYU pragma: export
#include "data/dataset.h"   // IWYU pragma: export
#include "data/loader.h"    // IWYU pragma: export
#include "data/noise.h"     // IWYU pragma: export
#include "data/stats.h"     // IWYU pragma: export
#include "data/synthetic.h" // IWYU pragma: export

#endif  // MSGCL_DATA_DATA_H_
