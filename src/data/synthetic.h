// Synthetic interaction-log generators standing in for the paper's datasets.
//
// The real Amazon Clothing / Toys and MovieLens-1M files are not available in
// this offline environment (see DESIGN.md §1, substitution 1). The generator
// here produces logs from a latent cluster-Markov process that preserves the
// properties the paper's experiments exercise:
//   * a *sequential* signal — the next item's cluster depends on the current
//     item's cluster, so order-aware models beat order-free ones;
//   * *personalisation* — each user has a static taste over clusters, so
//     personalised models beat Pop;
//   * *popularity skew* — within-cluster item choice is Zipf-distributed,
//     making Pop a meaningful floor and negative sampling realistic;
//   * *stochasticity/noise* — with probability (1 - follow_prob) a step
//     ignores the chain, which bounds achievable HR/NDCG like real data.
// The three presets are calibrated (at scale=1) to ~1/10 of Table I's user,
// item and interaction counts, keeping single-core training tractable.
#ifndef MSGCL_DATA_SYNTHETIC_H_
#define MSGCL_DATA_SYNTHETIC_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace msgcl {
namespace data {

/// Parameters of the cluster-Markov generator.
struct SyntheticConfig {
  std::string name = "synthetic";
  int32_t num_users = 500;
  int32_t num_items = 500;
  int32_t num_clusters = 25;
  double avg_length = 8.0;   // mean sequence length (geometric above min_length)
  int32_t min_length = 5;    // 5-core style floor
  int32_t max_length = 400;
  double follow_prob = 0.75;  // P(next cluster follows the Markov chain)
  double zipf_exponent = 1.3; // within-cluster popularity skew
  int32_t tastes_per_user = 3;
  uint64_t seed = 42;

  /// Rejects nonsensical parameter combinations.
  Status Validate() const {
    if (num_users <= 0 || num_items <= 0) {
      return Status::InvalidArgument("num_users and num_items must be positive");
    }
    if (num_clusters <= 0 || num_clusters > num_items) {
      return Status::InvalidArgument("num_clusters must be in [1, num_items]");
    }
    if (min_length < 3) {
      return Status::InvalidArgument("min_length must be >= 3 for leave-one-out");
    }
    if (avg_length < min_length) {
      return Status::InvalidArgument("avg_length must be >= min_length");
    }
    if (follow_prob < 0.0 || follow_prob > 1.0) {
      return Status::InvalidArgument("follow_prob must be in [0, 1]");
    }
    if (zipf_exponent <= 1.0) {
      return Status::InvalidArgument("zipf_exponent must be > 1");
    }
    return Status::Ok();
  }
};

/// Generates an interaction log from the cluster-Markov process.
inline Result<InteractionLog> GenerateSynthetic(const SyntheticConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  Rng rng(config.seed);

  const int32_t K = config.num_clusters;
  // Items are dealt round-robin into clusters; cluster c owns the item ids
  // {c+1, c+1+K, c+1+2K, ...} so every cluster has ~num_items/K members.
  auto cluster_size = [&](int32_t c) {
    return (config.num_items - c + K - 1) / K;  // count of ids == c (mod K)
  };
  auto item_of = [&](int32_t c, int64_t rank) {
    return static_cast<int32_t>(c + 1 + rank * K);
  };

  // Markov chain over clusters: from c, follow to (c + hop) % K, where hop is
  // a per-cluster constant in {1, 2, 3}. This yields deterministic-ish paths
  // a sequence model can learn.
  std::vector<int32_t> hop(K);
  for (auto& h : hop) h = 1 + static_cast<int32_t>(rng.UniformInt(3));

  InteractionLog log;
  log.name = config.name;
  log.num_items = config.num_items;
  log.sequences.resize(config.num_users);

  for (int32_t u = 0; u < config.num_users; ++u) {
    // Static taste: a few preferred clusters per user.
    std::vector<int32_t> taste(config.tastes_per_user);
    for (auto& t : taste) t = static_cast<int32_t>(rng.UniformInt(K));

    // Geometric tail above the floor => mean = min_length + tail_mean.
    const double tail_mean = config.avg_length - config.min_length;
    int32_t len = config.min_length;
    if (tail_mean > 0.0) {
      const double p = 1.0 / (tail_mean + 1.0);
      while (rng.Uniform() > p && len < config.max_length) ++len;
    }

    auto& seq = log.sequences[u];
    seq.reserve(len);
    int32_t cluster = taste[rng.UniformInt(taste.size())];
    for (int32_t t = 0; t < len; ++t) {
      const int32_t sz = cluster_size(cluster);
      const int64_t rank =
          sz == 1 ? 0 : static_cast<int64_t>(rng.Zipf(static_cast<uint64_t>(sz),
                                                      config.zipf_exponent));
      seq.push_back(item_of(cluster, std::min<int64_t>(rank, sz - 1)));
      if (rng.Bernoulli(config.follow_prob)) {
        cluster = (cluster + hop[cluster]) % K;
      } else {
        cluster = taste[rng.UniformInt(taste.size())];
      }
    }
  }
  MSGCL_CHECK(log.Validate().ok());
  return log;
}

/// Presets calibrated against Table I (scaled ~10x down at scale = 1.0).
/// `scale` grows users/items proportionally toward paper scale.
inline SyntheticConfig ClothingLike(double scale = 1.0, uint64_t seed = 42) {
  SyntheticConfig c;
  c.name = "clothing-like";
  c.num_users = static_cast<int32_t>(3900 * scale);
  c.num_items = static_cast<int32_t>(2300 * scale);
  c.num_clusters = 64;
  c.avg_length = 7.1;
  c.min_length = 5;
  c.follow_prob = 0.62;  // sparsest, noisiest domain in Table II
  c.seed = seed;
  return c;
}

inline SyntheticConfig ToysLike(double scale = 1.0, uint64_t seed = 43) {
  SyntheticConfig c;
  c.name = "toys-like";
  c.num_users = static_cast<int32_t>(1940 * scale);
  c.num_items = static_cast<int32_t>(1190 * scale);
  c.num_clusters = 48;
  c.avg_length = 8.6;
  c.min_length = 5;
  c.follow_prob = 0.72;
  c.seed = seed;
  return c;
}

inline SyntheticConfig Ml1mLike(double scale = 1.0, uint64_t seed = 44) {
  SyntheticConfig c;
  c.name = "ml1m-like";
  c.num_users = static_cast<int32_t>(600 * scale);
  c.num_items = static_cast<int32_t>(340 * scale);
  c.num_clusters = 24;
  c.avg_length = 80.0;  // dense, long sequences (paper: 165.5 at full scale)
  c.min_length = 16;
  c.max_length = 200;
  c.follow_prob = 0.8;
  c.seed = seed;
  return c;
}

/// Tiny preset for unit tests and the quickstart example.
inline SyntheticConfig TinyDataset(uint64_t seed = 7) {
  SyntheticConfig c;
  c.name = "tiny";
  c.num_users = 120;
  c.num_items = 60;
  c.num_clusters = 12;
  c.avg_length = 10.0;
  c.min_length = 5;
  c.follow_prob = 0.85;
  c.seed = seed;
  return c;
}

}  // namespace data
}  // namespace msgcl

#endif  // MSGCL_DATA_SYNTHETIC_H_
