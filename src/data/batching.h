// Mini-batch construction: left-padded fixed-length sequences with
// next-item targets at every position (the SASRec training scheme shared by
// all sequence models here).
#ifndef MSGCL_DATA_BATCHING_H_
#define MSGCL_DATA_BATCHING_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace msgcl {
namespace data {

/// One training/eval mini-batch of fixed-length, left-padded sequences.
///
/// Left padding keeps the most recent item at position T-1 for every row, so
/// sequence-level representations are always read at the final time step.
struct Batch {
  int64_t batch_size = 0;
  int64_t seq_len = 0;
  std::vector<int32_t> inputs;       // [B*T], 0 = padding
  std::vector<int32_t> targets;      // [B*T], next item per position, 0 = ignore
  std::vector<uint8_t> key_padding;  // [B*T], 1 = padded position
  std::vector<int32_t> positions;    // [B*T], position-embedding indices
  std::vector<int32_t> users;        // [B], dataset row of each sequence

  /// Target at the final position of each row (for sequence-level losses).
  std::vector<int32_t> LastTargets() const {
    std::vector<int32_t> out(batch_size);
    for (int64_t b = 0; b < batch_size; ++b) out[b] = targets[(b + 1) * seq_len - 1];
    return out;
  }
};

/// Left-pads/truncates `seq` to `max_len`, keeping the most recent items.
inline std::vector<int32_t> PadLeft(const std::vector<int32_t>& seq, int64_t max_len) {
  std::vector<int32_t> out(max_len, 0);
  const int64_t n = static_cast<int64_t>(seq.size());
  const int64_t keep = std::min(n, max_len);
  for (int64_t i = 0; i < keep; ++i) out[max_len - keep + i] = seq[n - keep + i];
  return out;
}

/// Builds a training batch from dataset rows `rows`.
///
/// For each training sequence s[0..m-1], the model input is s[0..m-2] and the
/// target at each position i is s[i+1]; rows with m < 2 yield all-ignore
/// targets. When `override_seqs` is non-null it supplies the (possibly
/// augmented/noised) sequences instead of `ds.train_seqs`.
inline Batch MakeTrainBatch(const SequenceDataset& ds, const std::vector<int32_t>& rows,
                            int64_t max_len,
                            const std::vector<std::vector<int32_t>>* override_seqs = nullptr) {
  Batch batch;
  batch.batch_size = static_cast<int64_t>(rows.size());
  batch.seq_len = max_len;
  batch.inputs.assign(batch.batch_size * max_len, 0);
  batch.targets.assign(batch.batch_size * max_len, 0);
  batch.key_padding.assign(batch.batch_size * max_len, 1);
  batch.positions.resize(batch.batch_size * max_len);
  batch.users.assign(rows.begin(), rows.end());
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    const auto& seq =
        override_seqs != nullptr ? (*override_seqs)[rows[b]] : ds.train_seqs[rows[b]];
    const int64_t m = static_cast<int64_t>(seq.size());
    // Use the last max_len+1 items: inputs are s[..m-2], targets shift by one.
    const int64_t usable = std::min<int64_t>(m - 1, max_len);
    for (int64_t i = 0; i < usable; ++i) {
      const int64_t col = max_len - usable + i;
      const int64_t src = m - 1 - usable + i;
      batch.inputs[b * max_len + col] = seq[src];
      batch.targets[b * max_len + col] = seq[src + 1];
      batch.key_padding[b * max_len + col] = 0;
    }
    for (int64_t col = 0; col < max_len; ++col) {
      batch.positions[b * max_len + col] = static_cast<int32_t>(col);
    }
  }
  return batch;
}

/// Builds an evaluation batch: full input sequences (no shift), targets left
/// empty — the caller ranks `eval_targets` against model scores.
inline Batch MakeEvalBatch(const std::vector<std::vector<int32_t>>& inputs,
                           const std::vector<int32_t>& rows, int64_t max_len) {
  Batch batch;
  batch.batch_size = static_cast<int64_t>(rows.size());
  batch.seq_len = max_len;
  batch.inputs.assign(batch.batch_size * max_len, 0);
  batch.key_padding.assign(batch.batch_size * max_len, 1);
  batch.positions.resize(batch.batch_size * max_len);
  batch.users.assign(rows.begin(), rows.end());
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    auto padded = PadLeft(inputs[rows[b]], max_len);
    for (int64_t col = 0; col < max_len; ++col) {
      batch.inputs[b * max_len + col] = padded[col];
      if (padded[col] != 0) batch.key_padding[b * max_len + col] = 0;
      batch.positions[b * max_len + col] = static_cast<int32_t>(col);
    }
  }
  return batch;
}

/// Shuffled epoch iterator over dataset rows.
class EpochIterator {
 public:
  EpochIterator(int32_t num_rows, int64_t batch_size, Rng& rng)
      : batch_size_(batch_size), rows_(num_rows) {
    std::iota(rows_.begin(), rows_.end(), 0);
    // Fisher-Yates shuffle driven by the caller's rng.
    for (int32_t i = num_rows - 1; i > 0; --i) {
      std::swap(rows_[i], rows_[rng.UniformInt(static_cast<uint64_t>(i) + 1)]);
    }
  }

  /// Next chunk of row indices, or empty when the epoch is done.
  std::vector<int32_t> Next() {
    if (cursor_ >= rows_.size()) return {};
    const size_t end = std::min(rows_.size(), cursor_ + static_cast<size_t>(batch_size_));
    std::vector<int32_t> out(rows_.begin() + cursor_, rows_.begin() + end);
    cursor_ = end;
    return out;
  }

  int64_t num_batches() const {
    return (static_cast<int64_t>(rows_.size()) + batch_size_ - 1) / batch_size_;
  }

 private:
  int64_t batch_size_;
  std::vector<int32_t> rows_;
  size_t cursor_ = 0;
};

}  // namespace data
}  // namespace msgcl

#endif  // MSGCL_DATA_BATCHING_H_
