// Loading real interaction logs from CSV, with the paper's preprocessing
// (§V.A): ratings below a threshold are discarded (binarised implicit
// feedback), events are sorted per user by timestamp, and an iterated k-core
// filter keeps only users and items with at least k interactions.
//
// This makes the library runnable on the actual Amazon / MovieLens dumps
// when they are available; the synthetic generators (synthetic.h) stand in
// for them offline.
#ifndef MSGCL_DATA_LOADER_H_
#define MSGCL_DATA_LOADER_H_

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "tensor/status.h"

namespace msgcl {
namespace data {

/// One parsed interaction event.
struct RawEvent {
  std::string user;
  std::string item;
  double rating = 0.0;
  int64_t timestamp = 0;
};

/// CSV loading options.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = false;
  // 0-based column indices; rating_col / timestamp_col may be -1 (absent).
  int user_col = 0;
  int item_col = 1;
  int rating_col = 2;
  int timestamp_col = 3;
  // Paper preprocessing: "binarize explicit data by discarding ratings of
  // less than four". Ignored when rating_col < 0.
  double min_rating = 4.0;
  // Paper preprocessing: 5-core ("filter out users who have interacted with
  // less than five items"), applied iteratively to users AND items until a
  // fixed point.
  int32_t k_core = 5;
};

/// Parses one CSV line into fields (no quoting support — the rec-sys dumps
/// this targets are plain "u,i,r,t" files). A trailing delimiter yields a
/// trailing empty field ("u,i,4," is four fields), matching every other CSV
/// tool; istream-based splitting would silently drop it.
inline std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t end = line.find(delim, start);
    if (end == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, end - start));
    start = end + 1;
  }
}

/// Strict numeric field parsers: the whole field must be consumed, so
/// "3abc" or an empty field is rejected instead of silently truncated the
/// way raw std::stod/std::stoll would.
inline bool ParseFullDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  try {
    size_t pos = 0;
    const double v = std::stod(field, &pos);
    if (pos != field.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

inline bool ParseFullInt64(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  try {
    size_t pos = 0;
    const int64_t v = std::stoll(field, &pos);
    if (pos != field.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Parses raw events from a CSV stream; returns a Status error for malformed
/// rows rather than guessing.
inline Result<std::vector<RawEvent>> ParseCsvEvents(std::istream& in,
                                                    const CsvOptions& opt) {
  std::vector<RawEvent> events;
  std::string line;
  int64_t line_no = 0;
  const int needed = std::max({opt.user_col, opt.item_col, opt.rating_col,
                               opt.timestamp_col}) + 1;
  while (std::getline(in, line)) {
    ++line_no;
    // CRLF dumps: getline splits on '\n', leaving the '\r' glued to the last
    // field (making "1396" parse as "1396\r" — malformed). Strip it here so
    // Windows-exported CSVs parse identically to LF ones.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_no == 1) {
      // Spreadsheet exports often prepend a UTF-8 BOM; it would otherwise be
      // glued onto the first field (or the header name being skipped).
      if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' && line[2] == '\xBF') {
        line.erase(0, 3);
      }
      if (opt.has_header) continue;
    }
    if (line.empty()) continue;
    auto fields = SplitCsvLine(line, opt.delimiter);
    if (static_cast<int>(fields.size()) < needed) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": expected >= " +
                                     std::to_string(needed) + " fields, got " +
                                     std::to_string(fields.size()));
    }
    RawEvent e;
    e.user = fields[opt.user_col];
    e.item = fields[opt.item_col];
    if (opt.rating_col >= 0 && !ParseFullDouble(fields[opt.rating_col], &e.rating)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": malformed rating '" + fields[opt.rating_col] + "'");
    }
    if (opt.timestamp_col >= 0 &&
        !ParseFullInt64(fields[opt.timestamp_col], &e.timestamp)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": malformed timestamp '" +
                                     fields[opt.timestamp_col] + "'");
    }
    events.push_back(std::move(e));
  }
  return events;
}

/// Applies rating filtering, iterated k-core, per-user time ordering, and
/// dense id remapping (items become 1..N; id 0 stays the padding id).
inline Result<InteractionLog> BuildLog(std::vector<RawEvent> events, const CsvOptions& opt,
                                       std::string name = "csv") {
  if (opt.rating_col >= 0) {
    std::erase_if(events, [&](const RawEvent& e) { return e.rating < opt.min_rating; });
  }
  if (events.empty()) return Status::InvalidArgument("no events after rating filter");

  // Iterated k-core over users and items.
  bool changed = true;
  while (changed && opt.k_core > 1) {
    changed = false;
    std::unordered_map<std::string, int32_t> user_count, item_count;
    for (const auto& e : events) {
      user_count[e.user]++;
      item_count[e.item]++;
    }
    const size_t before = events.size();
    std::erase_if(events, [&](const RawEvent& e) {
      return user_count[e.user] < opt.k_core || item_count[e.item] < opt.k_core;
    });
    changed = events.size() != before;
  }
  if (events.empty()) {
    return Status::InvalidArgument("no events survive the " + std::to_string(opt.k_core) +
                                   "-core filter");
  }

  // Dense ids. std::map gives deterministic (sorted) id assignment.
  std::map<std::string, int32_t> item_ids;
  for (const auto& e : events) item_ids.emplace(e.item, 0);
  int32_t next_item = 1;
  for (auto& [key, id] : item_ids) id = next_item++;

  std::map<std::string, std::vector<const RawEvent*>> by_user;
  for (const auto& e : events) by_user[e.user].push_back(&e);

  InteractionLog log;
  log.name = std::move(name);
  log.num_items = next_item - 1;
  log.sequences.reserve(by_user.size());
  for (auto& [user, evs] : by_user) {
    std::stable_sort(evs.begin(), evs.end(), [](const RawEvent* a, const RawEvent* b) {
      return a->timestamp < b->timestamp;
    });
    std::vector<int32_t> seq;
    seq.reserve(evs.size());
    for (const RawEvent* e : evs) seq.push_back(item_ids[e->item]);
    log.sequences.push_back(std::move(seq));
  }
  if (Status s = log.Validate(); !s.ok()) return s;
  return log;
}

/// Loads an interaction log from a CSV file with the paper's preprocessing.
inline Result<InteractionLog> LoadCsv(const std::string& path, const CsvOptions& opt = {}) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  auto events = ParseCsvEvents(in, opt);
  if (!events.ok()) return events.status();
  return BuildLog(std::move(events).value(), opt, path);
}

}  // namespace data
}  // namespace msgcl

#endif  // MSGCL_DATA_LOADER_H_
