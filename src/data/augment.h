// Hand-crafted sequence augmentation operators from CL4SRec/CoSeRec, used by
// the contrastive baselines (and by Fig. 1's motivating comparison). The
// paper's core claim is that its generative views beat these random edits.
#ifndef MSGCL_DATA_AUGMENT_H_
#define MSGCL_DATA_AUGMENT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tensor/macros.h"
#include "tensor/rng.h"

namespace msgcl {
namespace data {

/// Item crop: keeps a random contiguous sub-sequence of length
/// ceil(ratio * n) (CL4SRec's "item crop").
inline std::vector<int32_t> AugmentCrop(const std::vector<int32_t>& seq, double ratio,
                                        Rng& rng) {
  MSGCL_CHECK_MSG(ratio > 0.0 && ratio <= 1.0, "crop ratio " << ratio);
  const int64_t n = static_cast<int64_t>(seq.size());
  if (n <= 1) return seq;
  const int64_t keep = std::max<int64_t>(1, static_cast<int64_t>(ratio * n + 0.999));
  if (keep >= n) return seq;
  const int64_t start = static_cast<int64_t>(rng.UniformInt(n - keep + 1));
  return std::vector<int32_t>(seq.begin() + start, seq.begin() + start + keep);
}

/// Item mask: replaces a `ratio` fraction of positions with `mask_id`
/// (CL4SRec's "item mask"). `mask_id` is conventionally num_items + 1.
inline std::vector<int32_t> AugmentMask(const std::vector<int32_t>& seq, double ratio,
                                        int32_t mask_id, Rng& rng) {
  MSGCL_CHECK_MSG(ratio >= 0.0 && ratio < 1.0, "mask ratio " << ratio);
  std::vector<int32_t> out = seq;
  for (auto& it : out) {
    if (rng.Bernoulli(ratio)) it = mask_id;
  }
  return out;
}

/// Item reorder: shuffles a random contiguous window of length
/// ceil(ratio * n) (CL4SRec's "item reorder").
inline std::vector<int32_t> AugmentReorder(const std::vector<int32_t>& seq, double ratio,
                                           Rng& rng) {
  MSGCL_CHECK_MSG(ratio >= 0.0 && ratio <= 1.0, "reorder ratio " << ratio);
  const int64_t n = static_cast<int64_t>(seq.size());
  std::vector<int32_t> out = seq;
  const int64_t len = static_cast<int64_t>(ratio * n + 0.999);
  if (len < 2) return out;
  const int64_t start = static_cast<int64_t>(rng.UniformInt(n - len + 1));
  for (int64_t i = len - 1; i > 0; --i) {
    std::swap(out[start + i], out[start + rng.UniformInt(static_cast<uint64_t>(i) + 1)]);
  }
  return out;
}

/// One of the three CL4SRec operators, chosen uniformly.
inline std::vector<int32_t> AugmentRandom(const std::vector<int32_t>& seq, int32_t mask_id,
                                          Rng& rng, double crop_ratio = 0.6,
                                          double mask_ratio = 0.3,
                                          double reorder_ratio = 0.3) {
  switch (rng.UniformInt(3)) {
    case 0: return AugmentCrop(seq, crop_ratio, rng);
    case 1: return AugmentMask(seq, mask_ratio, mask_id, rng);
    default: return AugmentReorder(seq, reorder_ratio, rng);
  }
}

}  // namespace data
}  // namespace msgcl

#endif  // MSGCL_DATA_AUGMENT_H_
