// Crash-safe append-only interaction log (WAL idiom) feeding the online
// training loop (DESIGN.md §15).
//
// On-disk layout: a directory of numbered segment files. The active segment
// carries an `.open` suffix (`events-00000003.open`); sealed segments are
// atomically renamed to `.log` after an fsync, so a `.log` file is always a
// complete, fully-synced image. Records are framed as
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload: i64 user | i32 item | i64 timestamp   (little-endian, 20 bytes)
//
// Durability contract: an Append() that returns OK is committed — the frame
// (and with `fsync_each_append`, its bytes) reached the file before the call
// returned, and no crash afterwards can lose it. An Append() that returns an
// error wrote nothing durable (at worst a torn partial frame that recovery
// drops).
//
// Recovery rules (ReadEventLog):
//   * a partial frame at the very end of the newest segment is a torn tail —
//     the normal artifact of a crash mid-append. It is dropped and accounted
//     (typed DataLoss in `losses`, `torn_tail_bytes`), never an error;
//   * a frame whose CRC fails, whose length field is implausible, or that is
//     cut short anywhere else is a corrupt frame: the reader skips forward
//     byte-by-byte until the next parseable frame, accounts the gap
//     (`corrupt_frames`, `skipped_bytes`, typed DataLoss), and keeps going —
//     one rotten frame never takes down the records after it;
//   * segments are replayed in numeric order, so the recovered event stream
//     preserves append order.
//
// A crashed writer's `.open` segment is recovered on the next
// EventLogWriter::Open: the tail is scanned, any torn suffix truncated away,
// and appending continues in place.
#ifndef MSGCL_DATA_EVENT_LOG_H_
#define MSGCL_DATA_EVENT_LOG_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "data/dataset.h"
#include "nn/serialize.h"  // Crc32 + ReadFileImage (shared WAL/checkpoint plumbing)
#include "obs/registry.h"
#include "runtime/fault_injector.h"
#include "tensor/status.h"

namespace msgcl {
namespace data {

/// One interaction appended to the log. `user` is an opaque id (the sliding
/// window groups by it); `item` uses the serving catalogue's dense 1-based
/// ids; `timestamp` is informational (WAL order is already time order).
struct InteractionEvent {
  int64_t user = 0;
  int32_t item = 0;
  int64_t timestamp = 0;

  bool operator==(const InteractionEvent& o) const {
    return user == o.user && item == o.item && timestamp == o.timestamp;
  }
};

namespace wal {
inline constexpr int64_t kPayloadBytes = 20;  // i64 + i32 + i64
inline constexpr int64_t kFrameBytes = kPayloadBytes + 2 * static_cast<int64_t>(sizeof(uint32_t));
// Frames are fixed-size today, but the length field keeps the format
// self-describing; anything above this bound is corruption, not data.
inline constexpr uint32_t kMaxPayloadBytes = 4096;

inline std::string SegmentName(int64_t index, bool sealed) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "events-%08lld.%s", static_cast<long long>(index),
                sealed ? "log" : "open");
  return buf;
}

inline void EncodePayload(const InteractionEvent& e, char* out) {
  std::memcpy(out, &e.user, sizeof(e.user));
  std::memcpy(out + 8, &e.item, sizeof(e.item));
  std::memcpy(out + 12, &e.timestamp, sizeof(e.timestamp));
}

inline InteractionEvent DecodePayload(const char* in) {
  InteractionEvent e;
  std::memcpy(&e.user, in, sizeof(e.user));
  std::memcpy(&e.item, in + 8, sizeof(e.item));
  std::memcpy(&e.timestamp, in + 12, sizeof(e.timestamp));
  return e;
}

/// Builds the full frame (header + payload) for one event.
inline std::string EncodeFrame(const InteractionEvent& e) {
  std::string frame(static_cast<size_t>(kFrameBytes), '\0');
  char payload[kPayloadBytes];
  EncodePayload(e, payload);
  const uint32_t len = static_cast<uint32_t>(kPayloadBytes);
  const uint32_t crc = nn::internal::Crc32(payload, sizeof(payload));
  std::memcpy(frame.data(), &len, sizeof(len));
  std::memcpy(frame.data() + 4, &crc, sizeof(crc));
  std::memcpy(frame.data() + 8, payload, sizeof(payload));
  return frame;
}

/// Tries to parse one frame at `data + pos`. Returns true and advances
/// `*next` past the frame on success. `*incomplete` distinguishes "ran off
/// the end of the buffer" (a candidate torn tail) from a CRC / length
/// failure.
inline bool ParseFrameAt(const char* data, size_t size, size_t pos, InteractionEvent* out,
                         size_t* next, bool* incomplete) {
  *incomplete = false;
  if (size - pos < 2 * sizeof(uint32_t)) {
    *incomplete = true;
    return false;
  }
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, data + pos, sizeof(len));
  std::memcpy(&crc, data + pos + 4, sizeof(crc));
  if (len == 0 || len > kMaxPayloadBytes) return false;
  if (size - pos - 2 * sizeof(uint32_t) < len) {
    *incomplete = true;
    return false;
  }
  const char* payload = data + pos + 8;
  if (nn::internal::Crc32(payload, len) != crc) return false;
  if (len != static_cast<uint32_t>(kPayloadBytes)) return false;  // unknown record type
  *out = DecodePayload(payload);
  *next = pos + 8 + len;
  return true;
}
}  // namespace wal

/// Event-log configuration.
struct EventLogConfig {
  std::string dir;
  /// Rotate (seal + fsync + atomic rename) once the active segment reaches
  /// this many bytes.
  int64_t segment_max_bytes = 1 << 20;
  /// fsync after every committed append. The durability contract above only
  /// holds across power loss with this on; off still survives process
  /// crashes (the page cache keeps the bytes).
  bool fsync_each_append = true;
  /// Optional deterministic torn/corrupt-append source (non-owning).
  runtime::OnlineFaultInjector* fault_injector = nullptr;

  Status Validate() const {
    if (dir.empty()) return Status::InvalidArgument("EventLogConfig.dir must be set");
    if (segment_max_bytes < wal::kFrameBytes) {
      return Status::InvalidArgument("segment_max_bytes must hold at least one frame");
    }
    return Status::Ok();
  }
};

/// What ReadEventLog recovered, with typed accounting for everything it had
/// to drop. `events` holds every committed record in append order.
struct EventLogRecovery {
  std::vector<InteractionEvent> events;
  int64_t segments = 0;
  int64_t torn_tail_bytes = 0;  // partial frame dropped at the newest tail
  int64_t corrupt_frames = 0;   // resync gaps skipped mid-log
  int64_t skipped_bytes = 0;    // total bytes in those gaps
  std::vector<Status> losses;   // one typed DataLoss per drop, in file order

  bool clean() const { return torn_tail_bytes == 0 && corrupt_frames == 0; }
};

/// Appends length+CRC-framed records to the active segment, rotating into
/// sealed segments. Single-writer by design (the online trainer owns it);
/// not thread-safe.
class EventLogWriter {
 public:
  EventLogWriter() = default;
  ~EventLogWriter() { CloseFile(); }

  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;
  EventLogWriter(EventLogWriter&& o) noexcept { *this = std::move(o); }
  EventLogWriter& operator=(EventLogWriter&& o) noexcept {
    if (this != &o) {
      CloseFile();
      config_ = std::move(o.config_);
      file_ = o.file_;
      o.file_ = nullptr;
      segment_index_ = o.segment_index_;
      segment_bytes_ = o.segment_bytes_;
      appended_ = o.appended_;
      dead_ = o.dead_;
    }
    return *this;
  }

  /// Opens (or creates) the log directory. An `.open` segment left behind by
  /// a crashed writer is recovered in place: its committed prefix is kept,
  /// any torn tail truncated away, and appending continues there.
  Status Open(EventLogConfig config) {
    if (Status s = config.Validate(); !s.ok()) return s;
    CloseFile();
    config_ = std::move(config);
    dead_ = false;
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
    if (ec) return Status::Internal("cannot create " + config_.dir + ": " + ec.message());

    int64_t max_sealed = -1;
    int64_t open_index = -1;
    for (const auto& entry : std::filesystem::directory_iterator(config_.dir, ec)) {
      const std::string name = entry.path().filename().string();
      int64_t idx = 0;
      bool sealed = false;
      if (!ParseSegmentName(name, &idx, &sealed)) continue;
      if (sealed) {
        max_sealed = std::max(max_sealed, idx);
      } else {
        open_index = std::max(open_index, idx);
      }
    }
    if (ec) return Status::Internal("cannot list " + config_.dir + ": " + ec.message());

    if (open_index >= 0) {
      // Crash recovery: keep the committed prefix, drop the torn suffix.
      segment_index_ = open_index;
      const std::string path = SegmentPath(segment_index_, /*sealed=*/false);
      std::string image;
      if (Status s = nn::internal::ReadFileImage(path, &image); !s.ok()) return s;
      const size_t good = CommittedPrefix(image.data(), image.size());
      if (good != image.size()) {
        if (::truncate(path.c_str(), static_cast<off_t>(good)) != 0) {
          return Status::Internal("cannot truncate torn tail of " + path);
        }
        obs::Registry::Global().GetCounter("online.log.recovered_truncations").Add(1);
      }
      file_ = std::fopen(path.c_str(), "ab");
      if (file_ == nullptr) return Status::Internal("cannot reopen " + path);
      segment_bytes_ = static_cast<int64_t>(good);
      return Status::Ok();
    }
    segment_index_ = max_sealed + 1;
    return StartSegment();
  }

  /// Appends one record. OK means committed (see the durability contract in
  /// the header comment); any error means the record is NOT in the log and
  /// the caller decides whether to retry — after a kDataLoss "writer died"
  /// error, retry through a fresh Open() on the same directory.
  Status Append(const InteractionEvent& e) {
    if (file_ == nullptr || dead_) {
      return Status::Unavailable("event-log writer is not open (crashed or closed)");
    }
    const std::string frame = wal::EncodeFrame(e);

    auto fault = runtime::OnlineAppendFault::kNone;
    if (config_.fault_injector != nullptr) fault = config_.fault_injector->NextAppendFault();
    if (fault == runtime::OnlineAppendFault::kTorn) {
      // Crash mid-append: a prefix of the frame reaches the disk, then the
      // writer dies. Everything committed before this call stays intact.
      const int64_t keep =
          config_.fault_injector->TornPrefixBytes(static_cast<int64_t>(frame.size()));
      std::fwrite(frame.data(), 1, static_cast<size_t>(keep), file_);
      std::fflush(file_);
      CloseFile();
      dead_ = true;
      obs::Registry::Global().GetCounter("online.log.torn_appends").Add(1);
      return Status::DataLoss("injected torn append: writer died mid-frame");
    }
    if (fault == runtime::OnlineAppendFault::kCorrupt) {
      // In-flight bit rot: the full frame lands but a payload byte flipped
      // after the CRC was computed, so recovery must skip it.
      std::string bad = frame;
      const int64_t off = 8 + config_.fault_injector->CorruptByteOffset(wal::kPayloadBytes);
      bad[static_cast<size_t>(off)] = static_cast<char>(bad[static_cast<size_t>(off)] ^ 0xFF);
      if (std::fwrite(bad.data(), 1, bad.size(), file_) != bad.size()) {
        return Status::Internal("short write to segment " + std::to_string(segment_index_));
      }
      std::fflush(file_);
      segment_bytes_ += static_cast<int64_t>(bad.size());
      obs::Registry::Global().GetCounter("online.log.corrupt_appends").Add(1);
      return Status::DataLoss("injected corrupt frame: CRC will not match");
    }

    if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
      return Status::Internal("short write to segment " + std::to_string(segment_index_));
    }
    if (std::fflush(file_) != 0) {
      return Status::Internal("flush failed for segment " + std::to_string(segment_index_));
    }
    if (config_.fsync_each_append && ::fsync(::fileno(file_)) != 0) {
      return Status::Internal("fsync failed for segment " + std::to_string(segment_index_));
    }
    segment_bytes_ += static_cast<int64_t>(frame.size());
    ++appended_;
    obs::Registry::Global().GetCounter("online.log.appends").Add(1);
    if (segment_bytes_ >= config_.segment_max_bytes) {
      return Seal();  // Seal() opens the next segment itself
    }
    return Status::Ok();
  }

  /// Seals the active segment: fsync, close, atomic rename `.open` ->
  /// `.log`, fsync the directory so the rename itself is durable. A sealed
  /// segment is immutable. No-op when the active segment is empty.
  Status Seal() {
    if (file_ == nullptr || dead_) return Status::Ok();
    if (segment_bytes_ == 0) return Status::Ok();
    if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
      return Status::Internal("fsync failed sealing segment " +
                              std::to_string(segment_index_));
    }
    CloseFile();
    const std::string open_path = SegmentPath(segment_index_, /*sealed=*/false);
    const std::string sealed_path = SegmentPath(segment_index_, /*sealed=*/true);
    if (std::rename(open_path.c_str(), sealed_path.c_str()) != 0) {
      return Status::Internal("cannot seal " + open_path);
    }
    if (Status s = SyncDir(); !s.ok()) return s;
    obs::Registry::Global().GetCounter("online.log.segments_sealed").Add(1);
    ++segment_index_;
    return StartSegment();
  }

  /// Graceful shutdown: seal whatever is buffered. (Destroying the writer
  /// without Close models a crash — the `.open` segment stays behind for the
  /// next Open to recover.)
  Status Close() {
    if (file_ == nullptr) return Status::Ok();
    Status s = Seal();
    CloseFile();
    return s;
  }

  /// Records committed by this writer instance.
  int64_t appended() const { return appended_; }
  int64_t segment_index() const { return segment_index_; }
  /// True after an injected torn append killed this writer.
  bool dead() const { return dead_; }

 private:
  static bool ParseSegmentName(const std::string& name, int64_t* index, bool* sealed) {
    // events-XXXXXXXX.log | events-XXXXXXXX.open
    if (name.rfind("events-", 0) != 0) return false;
    const size_t dot = name.rfind('.');
    if (dot == std::string::npos) return false;
    const std::string ext = name.substr(dot + 1);
    if (ext == "log") *sealed = true;
    else if (ext == "open") *sealed = false;
    else return false;
    const std::string digits = name.substr(7, dot - 7);
    if (digits.empty()) return false;
    for (char c : digits) {
      if (c < '0' || c > '9') return false;
    }
    *index = std::stoll(digits);
    return true;
  }

  std::string SegmentPath(int64_t index, bool sealed) const {
    return config_.dir + "/" + wal::SegmentName(index, sealed);
  }

  /// Prefix of `data` that must be preserved on crash recovery: everything up
  /// to the end of the last parseable frame, including any corrupt-but-
  /// complete regions before it (the reader resyncs past those — committed
  /// frames AFTER a rotten one must survive the reopen). Only the trailing
  /// region that never parses again — the torn tail — is truncated away.
  static size_t CommittedPrefix(const char* data, size_t size) {
    size_t pos = 0;
    size_t keep = 0;
    InteractionEvent e;
    while (pos < size) {
      size_t next = 0;
      bool incomplete = false;
      if (wal::ParseFrameAt(data, size, pos, &e, &next, &incomplete)) {
        pos = next;
        keep = pos;
        continue;
      }
      // Unparseable byte: resync forward. `incomplete` here does NOT mean
      // torn tail — a misaligned read inside a corrupt region can look
      // "incomplete" (plausible length, short payload) while a committed
      // frame still follows it. Only bytes after the LAST parseable frame
      // are the torn tail, and `keep` already excludes exactly those.
      ++pos;
    }
    return keep;
  }

  Status StartSegment() {
    CloseFile();
    const std::string path = SegmentPath(segment_index_, /*sealed=*/false);
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) return Status::Internal("cannot create " + path);
    segment_bytes_ = 0;
    return Status::Ok();
  }

  Status SyncDir() const {
    const int fd = ::open(config_.dir.c_str(), O_RDONLY);
    if (fd < 0) return Status::Internal("cannot open " + config_.dir + " for fsync");
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::Internal("directory fsync failed for " + config_.dir);
    return Status::Ok();
  }

  void CloseFile() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  EventLogConfig config_;
  std::FILE* file_ = nullptr;
  int64_t segment_index_ = 0;
  int64_t segment_bytes_ = 0;
  int64_t appended_ = 0;
  bool dead_ = false;
};

/// Replays every segment in `dir` (sealed `.log` files in numeric order,
/// then the `.open` active segment) applying the recovery rules from the
/// header comment. Only an unreadable directory is an error; data problems
/// are recovered around and accounted in the result.
inline Result<EventLogRecovery> ReadEventLog(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    return Status::NotFound("event log directory " + dir + " does not exist");
  }
  std::map<int64_t, std::string> sealed;
  int64_t open_index = -1;
  std::string open_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("events-", 0) != 0) continue;
    const size_t dot = name.rfind('.');
    if (dot == std::string::npos || dot <= 7) continue;
    const std::string digits = name.substr(7, dot - 7);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    const int64_t idx = std::stoll(digits);
    const std::string ext = name.substr(dot + 1);
    if (ext == "log") {
      sealed[idx] = entry.path().string();
    } else if (ext == "open" && idx > open_index) {
      open_index = idx;
      open_path = entry.path().string();
    }
  }
  if (ec) return Status::Internal("cannot list " + dir + ": " + ec.message());

  std::vector<std::pair<std::string, bool>> segments;  // path, is_newest
  for (const auto& [idx, path] : sealed) segments.emplace_back(path, false);
  if (open_index >= 0) segments.emplace_back(open_path, false);
  if (!segments.empty()) segments.back().second = true;

  EventLogRecovery out;
  for (const auto& [path, newest] : segments) {
    ++out.segments;
    std::string image;
    if (Status s = nn::internal::ReadFileImage(path, &image); !s.ok()) return s;
    size_t pos = 0;
    while (pos < image.size()) {
      InteractionEvent e;
      size_t next = 0;
      bool incomplete = false;
      if (wal::ParseFrameAt(image.data(), image.size(), pos, &e, &next, &incomplete)) {
        out.events.push_back(e);
        pos = next;
        continue;
      }
      if (incomplete && newest) {
        // Torn tail of the newest segment: the crash artifact recovery is
        // specified to absorb. Accounted, not an error.
        const int64_t torn = static_cast<int64_t>(image.size() - pos);
        out.torn_tail_bytes += torn;
        out.losses.push_back(Status::DataLoss(
            path + ": dropped torn tail of " + std::to_string(torn) + " bytes"));
        break;
      }
      // Corrupt frame (bad CRC / hostile length) or a short frame inside a
      // sealed segment: resync byte-by-byte to the next parseable frame.
      const size_t gap_start = pos;
      ++pos;
      while (pos < image.size()) {
        size_t n2 = 0;
        bool inc2 = false;
        InteractionEvent probe;
        if (wal::ParseFrameAt(image.data(), image.size(), pos, &probe, &n2, &inc2)) break;
        if (inc2 && newest && image.size() - pos < static_cast<size_t>(wal::kFrameBytes)) {
          // The remainder cannot hold a frame; fold it into this gap.
          pos = image.size();
          break;
        }
        ++pos;
      }
      const int64_t gap = static_cast<int64_t>(pos - gap_start);
      ++out.corrupt_frames;
      out.skipped_bytes += gap;
      out.losses.push_back(Status::DataLoss(path + ": skipped corrupt frame region of " +
                                            std::to_string(gap) + " bytes at offset " +
                                            std::to_string(gap_start)));
    }
  }
  auto& reg = obs::Registry::Global();
  reg.GetCounter("online.log.records_recovered").Add(static_cast<int64_t>(out.events.size()));
  if (out.torn_tail_bytes > 0) reg.GetCounter("online.log.torn_tails").Add(1);
  reg.GetCounter("online.log.corrupt_frames").Add(out.corrupt_frames);
  return out;
}

/// Sliding-window view options for BuildSlidingWindowDataset.
struct SlidingWindowOptions {
  /// Keep at most the newest `window` events per user (0 = all).
  int64_t window = 0;
  /// Catalogue size. 0 infers the max item id seen — fine for tests, but the
  /// online loop passes the serving catalogue so the model and dataset agree.
  int32_t num_items = 0;
};

/// Groups recovered events by user (preserving append order, which is time
/// order), trims each user to the trailing window, and applies the paper's
/// leave-one-out protocol — the validation target per user is the trailing
/// holdout the drift gate scores against. Users with < 3 windowed events are
/// dropped, exactly like LeaveOneOutSplit.
inline SequenceDataset BuildSlidingWindowDataset(const std::vector<InteractionEvent>& events,
                                                 const SlidingWindowOptions& opt = {}) {
  std::map<int64_t, std::vector<int32_t>> by_user;  // deterministic user order
  int32_t max_item = 0;
  for (const InteractionEvent& e : events) {
    if (e.item < 1) continue;  // padding id / garbage never enters a sequence
    by_user[e.user].push_back(e.item);
    max_item = std::max(max_item, e.item);
  }
  InteractionLog log;
  log.name = "event_log";
  log.num_items = opt.num_items > 0 ? opt.num_items : max_item;
  for (auto& [user, seq] : by_user) {
    if (opt.window > 0 && static_cast<int64_t>(seq.size()) > opt.window) {
      seq.erase(seq.begin(), seq.end() - opt.window);
    }
    log.sequences.push_back(std::move(seq));
  }
  return LeaveOneOutSplit(log);
}

}  // namespace data
}  // namespace msgcl

#endif  // MSGCL_DATA_EVENT_LOG_H_
