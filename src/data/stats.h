// Dataset diagnostics: the quantities that make two interaction logs
// "behave alike" for sequential recommendation — length distribution,
// popularity concentration, and sequential predictability. Used to verify
// that the synthetic stand-ins are calibrated to Table I (tests) and for
// exploratory analysis of user-supplied CSV logs.
#ifndef MSGCL_DATA_STATS_H_
#define MSGCL_DATA_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace msgcl {
namespace data {

/// Summary statistics of an interaction log.
struct LogStats {
  // Sequence lengths.
  double mean_length = 0.0;
  double median_length = 0.0;
  int64_t max_length = 0;

  // Popularity concentration.
  double gini = 0.0;        // Gini coefficient of item frequencies, [0, 1)
  double top10_share = 0.0; // interaction share of the 10 most popular items

  // Sequential predictability: entropy (in bits) of the empirical next-item
  // distribution conditioned on the current item, averaged over items with
  // enough support, normalised by log2(num_items). 0 = deterministic
  // transitions, 1 = uniformly random next item.
  double transition_entropy = 1.0;

  std::string ToString() const {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "len(mean=%.1f median=%.0f max=%lld) gini=%.3f top10=%.1f%% "
                  "trans_entropy=%.3f",
                  mean_length, median_length, static_cast<long long>(max_length), gini,
                  100.0 * top10_share, transition_entropy);
    return buf;
  }
};

/// Computes LogStats. `min_support` is the minimum number of observed
/// transitions from an item for it to enter the entropy average.
inline LogStats ComputeLogStats(const InteractionLog& log, int64_t min_support = 5) {
  LogStats s;
  if (log.sequences.empty()) return s;

  // Lengths.
  std::vector<int64_t> lengths;
  lengths.reserve(log.sequences.size());
  for (const auto& seq : log.sequences) {
    lengths.push_back(static_cast<int64_t>(seq.size()));
  }
  std::sort(lengths.begin(), lengths.end());
  s.max_length = lengths.back();
  s.median_length = static_cast<double>(lengths[lengths.size() / 2]);
  s.mean_length = log.avg_length();

  // Popularity.
  std::vector<int64_t> freq(log.num_items + 1, 0);
  for (const auto& seq : log.sequences) {
    for (int32_t it : seq) freq[it]++;
  }
  std::vector<int64_t> f(freq.begin() + 1, freq.end());
  std::sort(f.begin(), f.end());
  const double total = static_cast<double>(log.num_interactions());
  if (total > 0 && !f.empty()) {
    // Gini via the sorted-frequency formula.
    double weighted = 0.0;
    const int64_t n = static_cast<int64_t>(f.size());
    for (int64_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(2 * (i + 1) - n - 1) * static_cast<double>(f[i]);
    }
    s.gini = weighted / (static_cast<double>(f.size()) * total);
    double top10 = 0.0;
    for (size_t i = f.size() >= 10 ? f.size() - 10 : 0; i < f.size(); ++i) top10 += f[i];
    s.top10_share = top10 / total;
  }

  // Transition entropy.
  std::map<int32_t, std::map<int32_t, int64_t>> trans;
  std::map<int32_t, int64_t> support;
  for (const auto& seq : log.sequences) {
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      trans[seq[i]][seq[i + 1]]++;
      support[seq[i]]++;
    }
  }
  double entropy_sum = 0.0;
  int64_t counted = 0;
  const double log2_items = std::log2(std::max<double>(2.0, log.num_items));
  for (auto& [item, nexts] : trans) {
    const int64_t n = support[item];
    if (n < min_support) continue;
    double h = 0.0;
    for (auto& [next, cnt] : nexts) {
      const double p = static_cast<double>(cnt) / static_cast<double>(n);
      h -= p * std::log2(p);
    }
    entropy_sum += h / log2_items;
    ++counted;
  }
  if (counted > 0) s.transition_entropy = entropy_sum / counted;
  return s;
}

}  // namespace data
}  // namespace msgcl

#endif  // MSGCL_DATA_STATS_H_
