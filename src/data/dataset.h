// Interaction-log container and the leave-one-out split protocol used by the
// paper (§V.A: "For each user, we use the last clicked item for testing, the
// penultimate one for validation, and the remaining clicked items for
// training").
#ifndef MSGCL_DATA_DATASET_H_
#define MSGCL_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/macros.h"
#include "tensor/status.h"

namespace msgcl {
namespace data {

/// A chronological user->item interaction log. Item ids are 1-based; id 0 is
/// reserved for padding everywhere in this repo.
struct InteractionLog {
  std::string name;
  int32_t num_items = 0;  // valid ids are 1..num_items
  std::vector<std::vector<int32_t>> sequences;  // sequences[u] in time order

  int32_t num_users() const { return static_cast<int32_t>(sequences.size()); }

  int64_t num_interactions() const {
    int64_t n = 0;
    for (const auto& s : sequences) n += static_cast<int64_t>(s.size());
    return n;
  }

  double avg_length() const {
    return sequences.empty() ? 0.0
                             : static_cast<double>(num_interactions()) / sequences.size();
  }

  /// 1 - |interactions| / (|users| * |items|), as reported in Table I.
  double sparsity() const {
    const double cells = static_cast<double>(num_users()) * num_items;
    return cells == 0.0 ? 0.0 : 1.0 - static_cast<double>(num_interactions()) / cells;
  }

  /// Validates invariants: ids in range, no empty sequences.
  Status Validate() const {
    for (size_t u = 0; u < sequences.size(); ++u) {
      if (sequences[u].empty()) {
        return Status::InvalidArgument("user " + std::to_string(u) + " has empty sequence");
      }
      for (int32_t it : sequences[u]) {
        if (it < 1 || it > num_items) {
          return Status::OutOfRange("item id " + std::to_string(it) + " for user " +
                                    std::to_string(u) + " outside [1, " +
                                    std::to_string(num_items) + "]");
        }
      }
    }
    return Status::Ok();
  }
};

/// Leave-one-out split of an InteractionLog.
///
/// For a full sequence s[0..n-1]:
///  * test target   = s[n-1], test input  = s[0..n-2]
///  * valid target  = s[n-2], valid input = s[0..n-3]
///  * training uses s[0..n-3]: inputs s[0..m-2] predict targets s[1..m-1].
/// Users with fewer than 3 interactions are dropped (they cannot be split).
struct SequenceDataset {
  std::string name;
  int32_t num_items = 0;
  std::vector<std::vector<int32_t>> train_seqs;  // s[0..n-3] per kept user
  std::vector<int32_t> valid_targets;            // s[n-2]
  std::vector<int32_t> test_targets;             // s[n-1]

  int32_t num_users() const { return static_cast<int32_t>(train_seqs.size()); }

  /// Input sequence for validation ranking: the training items.
  const std::vector<int32_t>& ValidInput(int32_t u) const { return train_seqs[u]; }

  /// Input sequence for test ranking: training items plus the validation item.
  std::vector<int32_t> TestInput(int32_t u) const {
    std::vector<int32_t> s = train_seqs[u];
    s.push_back(valid_targets[u]);
    return s;
  }
};

/// Applies the paper's leave-one-out protocol. Users with < 3 interactions
/// are dropped.
inline SequenceDataset LeaveOneOutSplit(const InteractionLog& log) {
  SequenceDataset ds;
  ds.name = log.name;
  ds.num_items = log.num_items;
  for (const auto& s : log.sequences) {
    if (s.size() < 3) continue;
    const size_t n = s.size();
    ds.train_seqs.emplace_back(s.begin(), s.end() - 2);
    ds.valid_targets.push_back(s[n - 2]);
    ds.test_targets.push_back(s[n - 1]);
  }
  return ds;
}

}  // namespace data
}  // namespace msgcl

#endif  // MSGCL_DATA_DATASET_H_
