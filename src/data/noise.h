// Training-noise injection for the robustness study (paper §V.F / Fig. 5):
// "randomly add a certain proportion of negative items into the input
// sequences during training".
#ifndef MSGCL_DATA_NOISE_H_
#define MSGCL_DATA_NOISE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace msgcl {
namespace data {

/// Returns a copy of `ds` whose *training* sequences have `ratio * len`
/// random items inserted at random positions. Validation/test targets are
/// untouched, so the evaluation protocol measures robustness of training.
inline SequenceDataset InjectTrainingNoise(const SequenceDataset& ds, double ratio,
                                           Rng& rng) {
  MSGCL_CHECK_MSG(ratio >= 0.0 && ratio <= 1.0, "noise ratio " << ratio);
  SequenceDataset out = ds;
  if (ratio == 0.0) return out;
  for (auto& seq : out.train_seqs) {
    const int64_t n = static_cast<int64_t>(seq.size());
    const int64_t inject = static_cast<int64_t>(ratio * n + 0.5);
    for (int64_t i = 0; i < inject; ++i) {
      const int32_t item = 1 + static_cast<int32_t>(rng.UniformInt(ds.num_items));
      const size_t pos = rng.UniformInt(seq.size() + 1);
      seq.insert(seq.begin() + pos, item);
    }
  }
  return out;
}

}  // namespace data
}  // namespace msgcl

#endif  // MSGCL_DATA_NOISE_H_
