#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace msgcl {

namespace {

thread_local bool g_grad_enabled = true;

std::shared_ptr<detail::TensorImpl> MakeImpl(Shape shape, FloatBuf data,
                                             bool requires_grad) {
  auto impl = std::make_shared<detail::TensorImpl>();
  MSGCL_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()));
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad && g_grad_enabled;
  return impl;
}

}  // namespace

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    MSGCL_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }
bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

// ---- Factories ----------------------------------------------------------

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  int64_t n = NumElements(shape);
  return FromImpl(MakeImpl(std::move(shape), FloatBuf(n, 0.0f), requires_grad));
}

Tensor Tensor::Ones(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  int64_t n = NumElements(shape);
  return FromImpl(MakeImpl(std::move(shape), FloatBuf(n, value), requires_grad));
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  int64_t n = NumElements(shape);
  FloatBuf v(n);
  for (auto& x : v) x = rng.Normal(0.0f, stddev);
  return FromImpl(MakeImpl(std::move(shape), std::move(v), requires_grad));
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi, bool requires_grad) {
  int64_t n = NumElements(shape);
  FloatBuf v(n);
  for (auto& x : v) x = rng.UniformFloat(lo, hi);
  return FromImpl(MakeImpl(std::move(shape), std::move(v), requires_grad));
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values, bool requires_grad) {
  return FromImpl(MakeImpl(std::move(shape),
                           FloatBuf(values.begin(), values.end()), requires_grad));
}

Tensor Tensor::FromImpl(std::shared_ptr<detail::TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

// ---- Introspection -------------------------------------------------------

int64_t Tensor::dim(int i) const {
  const auto& s = impl()->shape;
  int n = static_cast<int>(s.size());
  if (i < 0) i += n;
  MSGCL_CHECK_MSG(i >= 0 && i < n, "dim " << i << " out of range for " << ShapeToString(s));
  return s[i];
}

float Tensor::item() const {
  MSGCL_CHECK_MSG(numel() == 1, "item() on tensor of shape " << ShapeToString(shape()));
  return impl()->data[0];
}

float Tensor::at(int64_t flat_index) const {
  MSGCL_CHECK_MSG(flat_index >= 0 && flat_index < numel(),
                  "flat index " << flat_index << " out of range " << numel());
  return impl()->data[flat_index];
}

void Tensor::set(int64_t flat_index, float value) {
  MSGCL_CHECK_MSG(flat_index >= 0 && flat_index < numel(),
                  "flat index " << flat_index << " out of range " << numel());
  impl()->data[flat_index] = value;
}

// ---- Autograd -------------------------------------------------------------

void Tensor::Backward(const std::vector<float>* grad_output) {
  detail::TensorImpl* root = impl();
  root->EnsureGrad();
  if (grad_output != nullptr) {
    MSGCL_CHECK_EQ(static_cast<int64_t>(grad_output->size()), root->numel());
    for (int64_t i = 0; i < root->numel(); ++i) root->grad[i] += (*grad_output)[i];
  } else {
    MSGCL_CHECK_MSG(root->numel() == 1,
                    "Backward() without grad_output requires a scalar; got "
                        << ShapeToString(root->shape));
    root->grad[0] += 1.0f;
  }

  // Topological order via iterative post-order DFS over parents.
  std::vector<detail::TensorImpl*> topo;
  std::unordered_set<detail::TensorImpl*> visited;
  struct Frame {
    detail::TensorImpl* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < f.node->parents.size()) {
      detail::TensorImpl* child = f.node->parents[f.next_child++].get();
      if (visited.insert(child).second) stack.push_back({child, 0});
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }
  // topo is post-order: parents before children in vector order; we need
  // to process the root first, so iterate in reverse.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    detail::TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

void Tensor::ZeroGrad() {
  auto& g = impl()->grad;
  std::fill(g.begin(), g.end(), 0.0f);
}

Tensor Tensor::Detach() const {
  return FromImpl(MakeImpl(impl()->shape, impl()->data, /*requires_grad=*/false));
}

}  // namespace msgcl
