// Operator implementations for Tensor: elementwise ops with broadcasting,
// reductions, matmul, shape manipulation, and fused neural-net primitives.
// Each op records a backward closure that accumulates into parent gradients.
//
// Hot kernels run through parallel::For / parallel::ForFixedChunks and are
// deterministic under any thread count (DESIGN.md "Determinism under
// parallelism"): loops parallelized with For write disjoint outputs, and
// every floating-point reduction either keeps its serial accumulation order
// per output element or combines fixed-boundary chunk partials in chunk
// index order.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/profiler.h"
#include "parallel/parallel.h"
#include "tensor/kernels.h"
#include "tensor/plan_cache.h"
#include "tensor/tensor.h"

namespace msgcl {

namespace {

using detail::TensorImpl;

// Work-granularity knobs: minimum indices (or flops) per shard so tiny ops
// skip the pool entirely. Values are pure constants — they affect only how
// work is split, never what is computed.
constexpr int64_t kElemGrain = 8192;       // elementwise indices per shard
constexpr int64_t kReduceChunk = 8192;     // fixed chunk for flat reductions
constexpr int64_t kRowReduceChunk = 64;    // fixed row chunk for row partials
constexpr int64_t kMatMulGrainFlops = 1 << 15;  // min flops per matmul shard

/// Rows per shard for row-parallel kernels of width `row_width`.
int64_t RowGrain(int64_t row_width) {
  return std::max<int64_t>(1, kElemGrain / std::max<int64_t>(row_width, 1));
}

// ---- Kernel plans (plan_cache.h) -----------------------------------------
//
// Repeated steps run the same op shapes; these caches make the second and
// every later call skip broadcast/stride resolution and shard-grain
// arithmetic. Plans are immutable; keys include the thread count wherever
// the plan embeds a parallel::ShardPlan.

void AppendShapeKey(std::vector<int64_t>& key, const Shape& s) {
  key.push_back(static_cast<int64_t>(s.size()));
  key.insert(key.end(), s.begin(), s.end());
}

Shape BroadcastShape(const Shape& a, const Shape& b);
std::vector<int64_t> BroadcastStrides(const Shape& shape, const Shape& out);

/// Broadcast resolution for one (a_shape, b_shape) pair plus the forward
/// shard partition over the output.
struct BinaryPlan {
  Shape out_shape;
  std::vector<int64_t> sa, sb;
  bool same_shape = false;
  int64_t out_numel = 0;
  parallel::ShardPlan fwd_shards;
};

plans::PlanCache<BinaryPlan>& BinaryPlans() {
  static auto* cache = new plans::PlanCache<BinaryPlan>();
  return *cache;
}

std::shared_ptr<const BinaryPlan> GetBinaryPlan(const Shape& a_shape,
                                                const Shape& b_shape) {
  std::vector<int64_t> key;
  key.reserve(a_shape.size() + b_shape.size() + 3);
  key.push_back(parallel::MaxThreads());
  AppendShapeKey(key, a_shape);
  AppendShapeKey(key, b_shape);
  return BinaryPlans().GetOrCreate(std::move(key), [&] {
    BinaryPlan plan;
    plan.out_shape = BroadcastShape(a_shape, b_shape);
    plan.sa = BroadcastStrides(a_shape, plan.out_shape);
    plan.sb = BroadcastStrides(b_shape, plan.out_shape);
    plan.same_shape = a_shape == b_shape;
    plan.out_numel = NumElements(plan.out_shape);
    plan.fwd_shards = parallel::BuildShardPlan(0, plan.out_numel, kElemGrain);
    return plan;
  });
}

/// Stride table for one (in_shape, perm) pair.
struct PermutePlan {
  Shape out_shape;
  std::vector<int64_t> strides_by_out;
};

plans::PlanCache<PermutePlan>& PermutePlans() {
  static auto* cache = new plans::PlanCache<PermutePlan>();
  return *cache;
}

/// Shard grains (and the forward row partition) for one matmul shape.
struct MatMulPlan {
  int64_t fwd_grain = 1;
  int64_t grain_a = 1;
  int64_t grain_b = 1;
  parallel::ShardPlan row_shards;
};

plans::PlanCache<MatMulPlan>& MatMulPlans() {
  static auto* cache = new plans::PlanCache<MatMulPlan>();
  return *cache;
}

// ---- Vectorized elementwise kernel hooks ---------------------------------

/// Same-shape fast-path kernels for a binary op: forward plus the two
/// backward accumulators (ga/gb updated from a, b and the output grad g).
/// All three are kernel-layer calls, so SIMD-vs-scalar stays bitwise equal.
struct BinaryKernels {
  void (*fwd)(float* out, const float* a, const float* b, int64_t n);
  void (*da)(float* ga, const float* a, const float* b, const float* g,
             int64_t n);
  void (*db)(float* gb, const float* a, const float* b, const float* g,
             int64_t n);
};

constexpr BinaryKernels kAddKernels = {
    [](float* out, const float* a, const float* b, int64_t n) {
      simd::AddVec(out, a, b, n);
    },
    [](float* ga, const float*, const float*, const float* g, int64_t n) {
      simd::AccumVec(ga, g, n);
    },
    [](float* gb, const float*, const float*, const float* g, int64_t n) {
      simd::AccumVec(gb, g, n);
    },
};

constexpr BinaryKernels kSubKernels = {
    [](float* out, const float* a, const float* b, int64_t n) {
      simd::SubVec(out, a, b, n);
    },
    [](float* ga, const float*, const float*, const float* g, int64_t n) {
      simd::AccumVec(ga, g, n);
    },
    [](float* gb, const float*, const float*, const float* g, int64_t n) {
      simd::AxpyVec(gb, g, -1.0f, n);
    },
};

constexpr BinaryKernels kMulKernels = {
    [](float* out, const float* a, const float* b, int64_t n) {
      simd::MulVec(out, a, b, n);
    },
    [](float* ga, const float*, const float* b, const float* g, int64_t n) {
      simd::MulAccumVec(ga, b, g, n);
    },
    [](float* gb, const float* a, const float*, const float* g, int64_t n) {
      simd::MulAccumVec(gb, a, g, n);
    },
};

constexpr BinaryKernels kDivKernels = {
    [](float* out, const float* a, const float* b, int64_t n) {
      simd::DivVec(out, a, b, n);
    },
    [](float* ga, const float*, const float* b, const float* g, int64_t n) {
      simd::RecipMulAccumVec(ga, b, g, n);
    },
    [](float* gb, const float* a, const float* b, const float* g, int64_t n) {
      simd::DivGradBVec(gb, a, b, g, n);
    },
};

bool AnyRequiresGrad(const std::vector<Tensor>& parents) {
  if (!NoGradGuard::GradEnabled()) return false;
  for (const auto& p : parents) {
    if (p.requires_grad()) return true;
  }
  return false;
}

/// Creates an op-output node. `bw` may be empty when no parent needs grad.
Tensor MakeNode(Shape shape, FloatBuf data, const std::vector<Tensor>& parents,
                std::function<void(TensorImpl&)> bw) {
  auto impl = std::make_shared<TensorImpl>();
  MSGCL_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()));
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  if (AnyRequiresGrad(parents)) {
    impl->requires_grad = true;
    impl->parents.reserve(parents.size());
    for (const auto& p : parents) impl->parents.push_back(p.impl_ptr());
    impl->backward_fn = std::move(bw);
  }
  return Tensor::FromImpl(std::move(impl));
}

/// Rank-0 (scalar) tensors broadcast as shape [1]: every broadcasting op
/// sees rank >= 1 operands and produces a rank >= 1 result, consistent with
/// the reductions (which return [1]). Without this, rank-0 inputs leak a
/// rank-0 output from some ops but not others.
Shape NormalizeScalarShape(const Shape& s) { return s.empty() ? Shape{1} : s; }

/// NumPy broadcasting of two shapes; aborts on incompatibility.
/// Callers must pass rank >= 1 shapes (see NormalizeScalarShape).
Shape BroadcastShape(const Shape& a, const Shape& b) {
  MSGCL_CHECK_MSG(!a.empty() && !b.empty(),
                  "BroadcastShape requires rank >= 1; normalize rank-0 to [1] first");
  Shape out;
  int na = static_cast<int>(a.size()), nb = static_cast<int>(b.size());
  int n = std::max(na, nb);
  out.resize(n);
  for (int i = 0; i < n; ++i) {
    int64_t da = i < n - na ? 1 : a[i - (n - na)];
    int64_t db = i < n - nb ? 1 : b[i - (n - nb)];
    MSGCL_CHECK_MSG(da == db || da == 1 || db == 1,
                    "cannot broadcast " << ShapeToString(a) << " with " << ShapeToString(b));
    out[i] = std::max(da, db);
  }
  return out;
}

/// Row-major strides of a shape, with 0 for broadcast (size-1) dims when
/// aligned to `out_rank` dims on the right.
/// Callers must pass rank >= 1 shapes (see NormalizeScalarShape).
std::vector<int64_t> BroadcastStrides(const Shape& shape, const Shape& out) {
  MSGCL_CHECK_MSG(!shape.empty() && !out.empty(),
                  "BroadcastStrides requires rank >= 1; normalize rank-0 to [1] first");
  int n = static_cast<int>(out.size());
  int ns = static_cast<int>(shape.size());
  std::vector<int64_t> strides(n, 0);
  int64_t running = 1;
  for (int i = ns - 1; i >= 0; --i) {
    int oi = i + (n - ns);
    strides[oi] = (shape[i] == 1 && out[oi] != 1) ? 0 : running;
    running *= shape[i];
  }
  return strides;
}

/// Walks coordinates [flat_begin, flat_end) of `out_shape`, calling
/// fn(out_flat, a_off, b_off). Offsets advance incrementally (odometer, no
/// div/mod per element); the odometer is seeded at flat_begin so disjoint
/// ranges can run on different threads.
template <typename Fn>
void ForEachBroadcastRange(const Shape& out_shape, const std::vector<int64_t>& sa,
                           const std::vector<int64_t>& sb, int64_t flat_begin,
                           int64_t flat_end, Fn&& fn) {
  if (flat_begin >= flat_end) return;
  const int n = static_cast<int>(out_shape.size());
  if (n == 0) {
    fn(0, 0, 0);
    return;
  }
  std::vector<int64_t> idx(n, 0);
  int64_t ao = 0, bo = 0;
  int64_t rem = flat_begin;
  for (int d = n - 1; d >= 0; --d) {
    idx[d] = rem % out_shape[d];
    rem /= out_shape[d];
    ao += idx[d] * sa[d];
    bo += idx[d] * sb[d];
  }
  for (int64_t flat = flat_begin; flat < flat_end; ++flat) {
    fn(flat, ao, bo);
    // Increment odometer from the last dim.
    for (int d = n - 1; d >= 0; --d) {
      idx[d]++;
      ao += sa[d];
      bo += sb[d];
      if (idx[d] < out_shape[d]) break;
      idx[d] = 0;
      ao -= sa[d] * out_shape[d];
      bo -= sb[d] * out_shape[d];
    }
  }
}

/// Walks every coordinate of `out_shape` serially.
template <typename Fn>
void ForEachBroadcast(const Shape& out_shape, const std::vector<int64_t>& sa,
                      const std::vector<int64_t>& sb, Fn&& fn) {
  ForEachBroadcastRange(out_shape, sa, sb, 0, NumElements(out_shape),
                        std::forward<Fn>(fn));
}

/// Elementwise binary op with broadcasting. The same-shape fast path runs
/// through `vk` (kernel layer: vectorized, bitwise ISA-stable); the
/// broadcast path keeps the serial odometer walk with the per-element
/// `fwd`/`da_fn`/`db_fn` lambdas (one accumulation order regardless of
/// thread count). Broadcast resolution and forward sharding come from the
/// plan cache.
template <typename Fwd, typename DA, typename DB>
Tensor BinaryOp(const Tensor& a, const Tensor& b, const BinaryKernels& vk,
                Fwd fwd, DA da_fn, DB db_fn) {
  MSGCL_OBS_SCOPE_BYTES("tensor.elemwise.binary",
                        (a.numel() + b.numel() + std::max(a.numel(), b.numel())) * 4);
  const Shape a_shape = NormalizeScalarShape(a.shape());
  const Shape b_shape = NormalizeScalarShape(b.shape());
  auto plan = GetBinaryPlan(a_shape, b_shape);
  const auto& ad = a.data();
  const auto& bd = b.data();
  FloatBuf out(plan->out_numel);
  if (plan->same_shape) {
    // Fast path: identical shapes, vectorized kernel per shard.
    parallel::For(plan->fwd_shards, [&](int64_t i0, int64_t i1) {
      vk.fwd(out.data() + i0, ad.data() + i0, bd.data() + i0, i1 - i0);
    });
  } else {
    parallel::For(plan->fwd_shards, [&](int64_t i0, int64_t i1) {
      ForEachBroadcastRange(plan->out_shape, plan->sa, plan->sb, i0, i1,
                            [&](int64_t o, int64_t ao, int64_t bo) {
                              out[o] = fwd(ad[ao], bd[bo]);
                            });
    });
  }
  auto ai = a.impl_ptr();
  auto bi = b.impl_ptr();
  return MakeNode(
      plan->out_shape, std::move(out), {a, b},
      [ai, bi, plan, vk, da_fn, db_fn](TensorImpl& self) {
        MSGCL_OBS_SCOPE("tensor.elemwise.binary.bwd");
        const bool need_a = ai->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_a) ai->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        const auto& g = self.grad;
        const auto& ad = ai->data;
        const auto& bd = bi->data;
        if (plan->same_shape) {
          // Disjoint per-index writes into both parents. Per element the
          // da-then-db order of the old fused loop is preserved (the a==b
          // aliasing case accumulates identically).
          parallel::For(0, static_cast<int64_t>(g.size()), kElemGrain,
                        [&](int64_t i0, int64_t i1) {
                          if (need_a) {
                            vk.da(ai->grad.data() + i0, ad.data() + i0,
                                  bd.data() + i0, g.data() + i0, i1 - i0);
                          }
                          if (need_b) {
                            vk.db(bi->grad.data() + i0, ad.data() + i0,
                                  bd.data() + i0, g.data() + i0, i1 - i0);
                          }
                        });
        } else {
          // Broadcast scatter: several output elements fold into one parent
          // element, so this path stays serial to keep one accumulation
          // order (flat output order) regardless of thread count.
          ForEachBroadcast(plan->out_shape, plan->sa, plan->sb,
                           [&](int64_t o, int64_t ao, int64_t bo) {
            if (need_a) ai->grad[ao] += da_fn(ad[ao], bd[bo]) * g[o];
            if (need_b) bi->grad[bo] += db_fn(ad[ao], bd[bo]) * g[o];
          });
        }
      });
}

/// Elementwise unary op. bwd receives (x, y, gout) and returns dx.
template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& x, Fwd fwd, Bwd bwd) {
  MSGCL_OBS_SCOPE_BYTES("tensor.elemwise.unary", x.numel() * 2 * 4);
  const auto& xd = x.data();
  FloatBuf out(xd.size());
  parallel::For(0, static_cast<int64_t>(xd.size()), kElemGrain,
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) out[i] = fwd(xd[i]);
                });
  auto xi = x.impl_ptr();
  return MakeNode(x.shape(), std::move(out), {x}, [xi, bwd](TensorImpl& self) {
    MSGCL_OBS_SCOPE("tensor.elemwise.unary.bwd");
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const auto& g = self.grad;
    const auto& xd = xi->data;
    const auto& yd = self.data;
    parallel::For(0, static_cast<int64_t>(g.size()), kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) {
                      xi->grad[i] += bwd(xd[i], yd[i]) * g[i];
                    }
                  });
  });
}

// C rows [i0, i1) of one batch: C[i,:] += A[i,:] * B. The contraction dim is
// blocked so a kPBlock x n tile of B stays cache-hot across the row range;
// per output element the p-accumulation order stays globally ascending, so
// the result is bitwise-identical to the naive i-p-j loop.
void MatMulRowsKernel(const float* a, const float* b, float* c, int64_t k, int64_t n,
                      int64_t i0, int64_t i1) {
  constexpr int64_t kPBlock = 64;
  for (int64_t p0 = 0; p0 < k; p0 += kPBlock) {
    const int64_t p1 = std::min(k, p0 + kPBlock);
    for (int64_t i = i0; i < i1; ++i) {
      simd::MatMulTile(c + i * n, a + i * k, b, p0, p1, n);
    }
  }
}

// dA rows [i0, i1) of one batch: dA[i,p] += sum_j dC[i,j] B[p,j].
void MatMulGradARows(const float* dc, const float* b, float* da, int64_t k, int64_t n,
                     int64_t i0, int64_t i1) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* dcrow = dc + i * n;
    float* darow = da + i * k;
    for (int64_t p = 0; p < k; ++p) {
      darow[p] += simd::Dot(dcrow, b + p * n, n);
    }
  }
}

// dB rows [p0, p1) of one batch: dB[p,j] += sum_i A[i,p] dC[i,j]. The i loop
// ascends inside each row so per-element accumulation order matches the
// serial i-outer kernel bitwise.
void MatMulGradBRows(const float* a, const float* dc, float* db, int64_t m, int64_t k,
                     int64_t n, int64_t p0, int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    float* dbrow = db + p * n;
    for (int64_t i = 0; i < m; ++i) {
      simd::AxpyVec(dbrow, dc + i * n, a[i * k + p], n);
    }
  }
}

/// Splits the flattened (batch, row) range [r0, r1) into per-batch segments
/// and calls fn(batch_index, local_row_begin, local_row_end).
template <typename Fn>
void ForEachBatchSegment(int64_t r0, int64_t r1, int64_t rows_per_batch, Fn&& fn) {
  int64_t r = r0;
  while (r < r1) {
    const int64_t bi = r / rows_per_batch;
    const int64_t seg_end = std::min(r1, (bi + 1) * rows_per_batch);
    fn(bi, r - bi * rows_per_batch, seg_end - bi * rows_per_batch);
    r = seg_end;
  }
}

}  // namespace

// ---- Elementwise binary ---------------------------------------------------

Tensor Tensor::Add(const Tensor& o) const {
  return BinaryOp(
      *this, o, kAddKernels, [](float a, float b) { return a + b; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Tensor::Sub(const Tensor& o) const {
  return BinaryOp(
      *this, o, kSubKernels, [](float a, float b) { return a - b; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Tensor::Mul(const Tensor& o) const {
  return BinaryOp(
      *this, o, kMulKernels, [](float a, float b) { return a * b; },
      [](float, float b) { return b; }, [](float a, float) { return a; });
}

Tensor Tensor::Div(const Tensor& o) const {
  return BinaryOp(
      *this, o, kDivKernels, [](float a, float b) { return a / b; },
      [](float, float b) { return 1.0f / b; },
      [](float a, float b) { return -a / (b * b); });
}

Tensor Tensor::AddScalar(float s) const {
  MSGCL_OBS_SCOPE_BYTES("tensor.elemwise.unary", numel() * 2 * 4);
  const auto& xd = data();
  FloatBuf out(xd.size());
  parallel::For(0, static_cast<int64_t>(xd.size()), kElemGrain,
                [&](int64_t i0, int64_t i1) {
                  simd::AddScalarVec(out.data() + i0, xd.data() + i0, s, i1 - i0);
                });
  auto xi = impl_ptr();
  return MakeNode(shape(), std::move(out), {*this}, [xi](TensorImpl& self) {
    MSGCL_OBS_SCOPE("tensor.elemwise.unary.bwd");
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const auto& g = self.grad;
    parallel::For(0, static_cast<int64_t>(g.size()), kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    simd::AccumVec(xi->grad.data() + i0, g.data() + i0, i1 - i0);
                  });
  });
}

Tensor Tensor::MulScalar(float s) const {
  MSGCL_OBS_SCOPE_BYTES("tensor.elemwise.unary", numel() * 2 * 4);
  const auto& xd = data();
  FloatBuf out(xd.size());
  parallel::For(0, static_cast<int64_t>(xd.size()), kElemGrain,
                [&](int64_t i0, int64_t i1) {
                  simd::ScaleVec(out.data() + i0, xd.data() + i0, s, i1 - i0);
                });
  auto xi = impl_ptr();
  return MakeNode(shape(), std::move(out), {*this}, [xi, s](TensorImpl& self) {
    MSGCL_OBS_SCOPE("tensor.elemwise.unary.bwd");
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const auto& g = self.grad;
    parallel::For(0, static_cast<int64_t>(g.size()), kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    simd::AxpyVec(xi->grad.data() + i0, g.data() + i0, s, i1 - i0);
                  });
  });
}

// ---- Elementwise unary -----------------------------------------------------

Tensor Tensor::Relu() const {
  return UnaryOp(
      *this, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tensor::Gelu() const {
  // tanh approximation of GELU and its analytic derivative.
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  return UnaryOp(
      *this,
      [](float x) {
        const float inner = kC * (x + kA * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float inner = kC * (x + kA * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kC * (1.0f + 3.0f * kA * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor Tensor::Tanh() const {
  return UnaryOp(
      *this, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Tensor::Sigmoid() const {
  return UnaryOp(
      *this, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tensor::Exp() const {
  return UnaryOp(
      *this, [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Tensor Tensor::Log(float eps) const {
  return UnaryOp(
      *this, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x, float) { return 1.0f / std::max(x, eps); });
}

Tensor Tensor::Sqrt() const {
  return UnaryOp(
      *this, [](float x) { return std::sqrt(x); },
      [](float, float y) { return y > 0.0f ? 0.5f / y : 0.0f; });
}

Tensor Tensor::Square() const {
  return UnaryOp(
      *this, [](float x) { return x * x; }, [](float x, float) { return 2.0f * x; });
}

// ---- Reductions ------------------------------------------------------------

Tensor Tensor::Sum() const {
  MSGCL_OBS_SCOPE_BYTES("tensor.reduce.sum", numel() * 4);
  const auto& xd = data();
  const int64_t total = static_cast<int64_t>(xd.size());
  // Fixed-boundary chunk partials combined in chunk index order: the
  // reduction tree depends only on (total, kReduceChunk), never on threads.
  const int64_t nchunks = parallel::NumFixedChunks(total, kReduceChunk);
  std::vector<double> partial(nchunks, 0.0);
  parallel::ForFixedChunks(0, total, kReduceChunk,
                           [&](int64_t c, int64_t b, int64_t e) {
                             double acc = 0.0;
                             for (int64_t i = b; i < e; ++i) acc += xd[i];
                             partial[c] = acc;
                           });
  double acc = 0.0;
  for (double p : partial) acc += p;
  auto xi = impl_ptr();
  return MakeNode({1}, {static_cast<float>(acc)}, {*this}, [xi](TensorImpl& self) {
    MSGCL_OBS_SCOPE("tensor.reduce.sum.bwd");
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const float g = self.grad[0];
    parallel::For(0, static_cast<int64_t>(xi->grad.size()), kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) xi->grad[i] += g;
                  });
  });
}

Tensor Tensor::Mean() const {
  const int64_t n = numel();
  MSGCL_CHECK_GT(n, 0);
  return Sum().MulScalar(1.0f / static_cast<float>(n));
}

Tensor Tensor::SumLastDim() const {
  MSGCL_OBS_SCOPE_BYTES("tensor.reduce.rows", numel() * 4);
  MSGCL_CHECK_GE(ndim(), 1);
  const int64_t c = dim(-1);
  const int64_t rows = numel() / std::max<int64_t>(c, 1);
  const auto& xd = data();
  FloatBuf out(rows, 0.0f);
  parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double acc = 0.0;
      for (int64_t j = 0; j < c; ++j) acc += xd[r * c + j];
      out[r] = static_cast<float>(acc);
    }
  });
  Shape out_shape(shape().begin(), shape().end() - 1);
  if (out_shape.empty()) out_shape = {1};
  auto xi = impl_ptr();
  return MakeNode(std::move(out_shape), std::move(out), {*this}, [xi, c](TensorImpl& self) {
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const int64_t rows = static_cast<int64_t>(self.grad.size());
    parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float g = self.grad[r];
        for (int64_t j = 0; j < c; ++j) xi->grad[r * c + j] += g;
      }
    });
  });
}

Tensor Tensor::MeanLastDim() const {
  const int64_t c = dim(-1);
  MSGCL_CHECK_GT(c, 0);
  return SumLastDim().MulScalar(1.0f / static_cast<float>(c));
}

Tensor Tensor::MaxLastDim() const {
  MSGCL_CHECK_GE(ndim(), 1);
  const int64_t c = dim(-1);
  MSGCL_CHECK_GT(c, 0);
  const int64_t rows = numel() / c;
  const auto& xd = data();
  FloatBuf out(rows);
  auto argmax = std::make_shared<std::vector<int64_t>>(rows);
  parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      int64_t best = 0;
      float bv = xd[r * c];
      for (int64_t j = 1; j < c; ++j) {
        if (xd[r * c + j] > bv) {
          bv = xd[r * c + j];
          best = j;
        }
      }
      out[r] = bv;
      (*argmax)[r] = best;
    }
  });
  Shape out_shape(shape().begin(), shape().end() - 1);
  if (out_shape.empty()) out_shape = {1};
  auto xi = impl_ptr();
  return MakeNode(std::move(out_shape), std::move(out), {*this},
                  [xi, c, argmax](TensorImpl& self) {
                    if (!xi->requires_grad) return;
                    xi->EnsureGrad();
                    const int64_t rows = static_cast<int64_t>(self.grad.size());
                    parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        xi->grad[r * c + (*argmax)[r]] += self.grad[r];
                      }
                    });
                  });
}

// ---- Softmax family ---------------------------------------------------------

Tensor Tensor::SoftmaxLastDim() const {
  MSGCL_OBS_SCOPE_BYTES("tensor.softmax.fwd", numel() * 2 * 4);
  MSGCL_CHECK_GE(ndim(), 1);
  const int64_t c = dim(-1);
  MSGCL_CHECK_GT(c, 0);
  const int64_t rows = numel() / c;
  const auto& xd = data();
  FloatBuf out(xd.size());
  parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = xd.data() + r * c;
      float* yr = out.data() + r * c;
      const float mx = simd::RowMax(xr, c);
      // The exp/sum pass stays serial double precision: z is an
      // order-sensitive reduction pinned by the telemetry goldens.
      double z = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        yr[j] = std::exp(xr[j] - mx);
        z += yr[j];
      }
      const float inv = static_cast<float>(1.0 / z);
      simd::ScaleVec(yr, yr, inv, c);
    }
  });
  auto xi = impl_ptr();
  return MakeNode(shape(), std::move(out), {*this}, [xi, c](TensorImpl& self) {
    MSGCL_OBS_SCOPE("tensor.softmax.bwd");
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const int64_t rows = static_cast<int64_t>(self.data.size()) / c;
    parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* y = self.data.data() + r * c;
        const float* g = self.grad.data() + r * c;
        double dot = 0.0;
        for (int64_t j = 0; j < c; ++j) dot += static_cast<double>(y[j]) * g[j];
        float* gx = xi->grad.data() + r * c;
        simd::SoftmaxBwdVec(gx, y, g, static_cast<float>(dot), c);
      }
    });
  });
}

Tensor Tensor::LogSoftmaxLastDim() const {
  MSGCL_OBS_SCOPE_BYTES("tensor.log_softmax.fwd", numel() * 2 * 4);
  MSGCL_CHECK_GE(ndim(), 1);
  const int64_t c = dim(-1);
  MSGCL_CHECK_GT(c, 0);
  const int64_t rows = numel() / c;
  const auto& xd = data();
  FloatBuf out(xd.size());
  parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = xd.data() + r * c;
      float* yr = out.data() + r * c;
      const float mx = simd::RowMax(xr, c);
      // Serial double z: order-sensitive reduction, stays scalar.
      double z = 0.0;
      for (int64_t j = 0; j < c; ++j) z += std::exp(xr[j] - mx);
      const float lse = mx + static_cast<float>(std::log(z));
      simd::AddScalarVec(yr, xr, -lse, c);  // x - lse == x + (-lse) exactly
    }
  });
  auto xi = impl_ptr();
  return MakeNode(shape(), std::move(out), {*this}, [xi, c](TensorImpl& self) {
    MSGCL_OBS_SCOPE("tensor.log_softmax.bwd");
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const int64_t rows = static_cast<int64_t>(self.data.size()) / c;
    parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* y = self.data.data() + r * c;  // log-softmax values
        const float* g = self.grad.data() + r * c;
        double gsum = 0.0;
        for (int64_t j = 0; j < c; ++j) gsum += g[j];
        float* gx = xi->grad.data() + r * c;
        for (int64_t j = 0; j < c; ++j) {
          gx[j] += g[j] - std::exp(y[j]) * static_cast<float>(gsum);
        }
      }
    });
  });
}

Tensor Tensor::L2NormalizeLastDim(float eps) const {
  MSGCL_CHECK_GE(ndim(), 1);
  const int64_t c = dim(-1);
  MSGCL_CHECK_GT(c, 0);
  const int64_t rows = numel() / c;
  const auto& xd = data();
  FloatBuf out(xd.size());
  auto norms = std::make_shared<std::vector<float>>(rows);
  parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = xd.data() + r * c;
      double sq = 0.0;
      for (int64_t j = 0; j < c; ++j) sq += static_cast<double>(xr[j]) * xr[j];
      const float norm = std::max(static_cast<float>(std::sqrt(sq)), eps);
      (*norms)[r] = norm;
      for (int64_t j = 0; j < c; ++j) out[r * c + j] = xr[j] / norm;
    }
  });
  auto xi = impl_ptr();
  return MakeNode(shape(), std::move(out), {*this}, [xi, c, norms](TensorImpl& self) {
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const int64_t rows = static_cast<int64_t>(self.data.size()) / c;
    parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* y = self.data.data() + r * c;
        const float* g = self.grad.data() + r * c;
        double dot = 0.0;
        for (int64_t j = 0; j < c; ++j) dot += static_cast<double>(y[j]) * g[j];
        const float inv_norm = 1.0f / (*norms)[r];
        float* gx = xi->grad.data() + r * c;
        for (int64_t j = 0; j < c; ++j) {
          gx[j] += (g[j] - y[j] * static_cast<float>(dot)) * inv_norm;
        }
      }
    });
  });
}

// ---- Masking ----------------------------------------------------------------

Tensor Tensor::MaskedFill(const std::vector<uint8_t>& mask, float value) const {
  MSGCL_CHECK_EQ(static_cast<int64_t>(mask.size()), numel());
  const auto& xd = data();
  FloatBuf out(xd.size());
  parallel::For(0, static_cast<int64_t>(xd.size()), kElemGrain,
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) out[i] = mask[i] ? value : xd[i];
                });
  auto xi = impl_ptr();
  auto mask_copy = std::make_shared<std::vector<uint8_t>>(mask);
  return MakeNode(shape(), std::move(out), {*this}, [xi, mask_copy](TensorImpl& self) {
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    parallel::For(0, static_cast<int64_t>(self.grad.size()), kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) {
                      if (!(*mask_copy)[i]) xi->grad[i] += self.grad[i];
                    }
                  });
  });
}

Tensor Tensor::DropoutMask(const std::vector<uint8_t>& keep, float keep_prob) const {
  MSGCL_CHECK_EQ(static_cast<int64_t>(keep.size()), numel());
  MSGCL_CHECK_GT(keep_prob, 0.0f);
  const float scale = 1.0f / keep_prob;
  const auto& xd = data();
  FloatBuf out(xd.size());
  parallel::For(0, static_cast<int64_t>(xd.size()), kElemGrain,
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) {
                    out[i] = keep[i] ? xd[i] * scale : 0.0f;
                  }
                });
  auto xi = impl_ptr();
  auto keep_copy = std::make_shared<std::vector<uint8_t>>(keep);
  return MakeNode(shape(), std::move(out), {*this},
                  [xi, keep_copy, scale](TensorImpl& self) {
                    if (!xi->requires_grad) return;
                    xi->EnsureGrad();
                    parallel::For(0, static_cast<int64_t>(self.grad.size()), kElemGrain,
                                  [&](int64_t i0, int64_t i1) {
                                    for (int64_t i = i0; i < i1; ++i) {
                                      if ((*keep_copy)[i]) {
                                        xi->grad[i] += self.grad[i] * scale;
                                      }
                                    }
                                  });
                  });
}

// ---- Shape manipulation -------------------------------------------------------

Tensor Tensor::Reshape(Shape new_shape) const {
  MSGCL_CHECK_MSG(NumElements(new_shape) == numel(),
                  "reshape " << ShapeToString(shape()) << " -> " << ShapeToString(new_shape));
  auto xi = impl_ptr();
  return MakeNode(std::move(new_shape), data(), {*this}, [xi](TensorImpl& self) {
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    parallel::For(0, static_cast<int64_t>(self.grad.size()), kElemGrain,
                  [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) xi->grad[i] += self.grad[i];
                  });
  });
}

Tensor Tensor::TransposeLast2() const {
  const int n = ndim();
  MSGCL_CHECK_GE(n, 2);
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[n - 1], perm[n - 2]);
  return Permute(perm);
}

Tensor Tensor::Permute(const std::vector<int>& perm) const {
  const int n = ndim();
  MSGCL_CHECK_EQ(static_cast<int>(perm.size()), n);
  const Shape& in_shape = shape();

  // Stride layout is a pure function of (in_shape, perm): cacheable.
  std::vector<int64_t> key;
  key.reserve(1 + 2 * n);
  key.push_back(n);
  key.insert(key.end(), in_shape.begin(), in_shape.end());
  for (int p : perm) key.push_back(p);
  auto plan = PermutePlans().GetOrCreate(std::move(key), [&] {
    PermutePlan p;
    p.out_shape.resize(n);
    for (int i = 0; i < n; ++i) p.out_shape[i] = in_shape[perm[i]];
    // in_strides in input layout; then arrange by perm so that walking the
    // output row-major advances the input offset by strides_by_out.
    std::vector<int64_t> in_strides(n, 1);
    for (int i = n - 2; i >= 0; --i) in_strides[i] = in_strides[i + 1] * in_shape[i + 1];
    p.strides_by_out.resize(n);
    for (int i = 0; i < n; ++i) p.strides_by_out[i] = in_strides[perm[i]];
    return p;
  });

  const auto& xd = data();
  FloatBuf out(xd.size());
  std::vector<int64_t> zero(n, 0);
  parallel::For(0, static_cast<int64_t>(xd.size()), kElemGrain,
                [&](int64_t i0, int64_t i1) {
                  ForEachBroadcastRange(plan->out_shape, plan->strides_by_out, zero,
                                        i0, i1, [&](int64_t o, int64_t io, int64_t) {
                                          out[o] = xd[io];
                                        });
                });

  auto xi = impl_ptr();
  return MakeNode(plan->out_shape, std::move(out), {*this},
                  [xi, plan](TensorImpl& self) {
                    if (!xi->requires_grad) return;
                    xi->EnsureGrad();
                    // A permutation is a bijection: each output element maps
                    // to a distinct input slot, so parallel scatter is safe.
                    std::vector<int64_t> zero(plan->out_shape.size(), 0);
                    parallel::For(0, static_cast<int64_t>(self.grad.size()), kElemGrain,
                                  [&](int64_t i0, int64_t i1) {
                                    ForEachBroadcastRange(
                                        plan->out_shape, plan->strides_by_out, zero,
                                        i0, i1, [&](int64_t o, int64_t io, int64_t) {
                                          xi->grad[io] += self.grad[o];
                                        });
                                  });
                  });
}

Tensor Tensor::Narrow(int d, int64_t start, int64_t length) const {
  const int n = ndim();
  if (d < 0) d += n;
  MSGCL_CHECK_MSG(d >= 0 && d < n, "Narrow dim out of range");
  MSGCL_CHECK_MSG(start >= 0 && start + length <= shape()[d],
                  "Narrow [" << start << ", " << start + length << ") out of range for dim "
                             << shape()[d]);
  const Shape& in_shape = shape();
  int64_t outer = 1, inner = 1;
  for (int i = 0; i < d; ++i) outer *= in_shape[i];
  for (int i = d + 1; i < n; ++i) inner *= in_shape[i];
  const int64_t in_dim = in_shape[d];

  Shape out_shape = in_shape;
  out_shape[d] = length;
  const auto& xd = data();
  FloatBuf out(outer * length * inner);
  parallel::For(0, outer, RowGrain(length * inner), [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      const float* src = xd.data() + (o * in_dim + start) * inner;
      float* dst = out.data() + o * length * inner;
      std::copy(src, src + length * inner, dst);
    }
  });
  auto xi = impl_ptr();
  return MakeNode(std::move(out_shape), std::move(out), {*this},
                  [xi, outer, inner, in_dim, start, length](TensorImpl& self) {
                    if (!xi->requires_grad) return;
                    xi->EnsureGrad();
                    parallel::For(0, outer, RowGrain(length * inner),
                                  [&](int64_t o0, int64_t o1) {
                                    for (int64_t o = o0; o < o1; ++o) {
                                      const float* gs =
                                          self.grad.data() + o * length * inner;
                                      float* gd =
                                          xi->grad.data() + (o * in_dim + start) * inner;
                                      for (int64_t i = 0; i < length * inner; ++i) {
                                        gd[i] += gs[i];
                                      }
                                    }
                                  });
                  });
}

Tensor Tensor::Concat(const std::vector<Tensor>& tensors, int d) {
  MSGCL_CHECK_GT(tensors.size(), 0u);
  const int n = tensors[0].ndim();
  if (d < 0) d += n;
  MSGCL_CHECK_MSG(d >= 0 && d < n, "Concat dim out of range");
  Shape out_shape = tensors[0].shape();
  int64_t total_dim = 0;
  for (const auto& t : tensors) {
    MSGCL_CHECK_EQ(t.ndim(), n);
    for (int i = 0; i < n; ++i) {
      if (i != d) MSGCL_CHECK_EQ(t.shape()[i], out_shape[i]);
    }
    total_dim += t.shape()[d];
  }
  out_shape[d] = total_dim;

  int64_t outer = 1, inner = 1;
  for (int i = 0; i < d; ++i) outer *= out_shape[i];
  for (int i = d + 1; i < n; ++i) inner *= out_shape[i];

  FloatBuf out(NumElements(out_shape));
  std::vector<int64_t> dim_sizes;
  dim_sizes.reserve(tensors.size());
  int64_t offset_dim = 0;
  for (const auto& t : tensors) {
    const int64_t td = t.shape()[d];
    dim_sizes.push_back(td);
    const auto& src = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(src.data() + o * td * inner, src.data() + (o + 1) * td * inner,
                out.data() + (o * total_dim + offset_dim) * inner);
    }
    offset_dim += td;
  }

  std::vector<std::shared_ptr<TensorImpl>> parent_impls;
  parent_impls.reserve(tensors.size());
  for (const auto& t : tensors) parent_impls.push_back(t.impl_ptr());
  return MakeNode(std::move(out_shape), std::move(out), tensors,
                  [parent_impls, dim_sizes, outer, inner, total_dim](TensorImpl& self) {
                    int64_t offset_dim = 0;
                    for (size_t p = 0; p < parent_impls.size(); ++p) {
                      auto& pi = *parent_impls[p];
                      const int64_t td = dim_sizes[p];
                      if (pi.requires_grad) {
                        pi.EnsureGrad();
                        parallel::For(
                            0, outer, RowGrain(td * inner), [&](int64_t o0, int64_t o1) {
                              for (int64_t o = o0; o < o1; ++o) {
                                const float* gs = self.grad.data() +
                                                  (o * total_dim + offset_dim) * inner;
                                float* gd = pi.grad.data() + o * td * inner;
                                for (int64_t i = 0; i < td * inner; ++i) gd[i] += gs[i];
                              }
                            });
                      }
                      offset_dim += td;
                    }
                  });
}

// ---- MatMul -------------------------------------------------------------------

Tensor Tensor::MatMul(const Tensor& other) const {
  const Tensor& A = *this;
  const Tensor& B = other;
  MSGCL_CHECK_GE(A.ndim(), 2);
  MSGCL_CHECK_GE(B.ndim(), 2);
  const int64_t m = A.dim(-2), ka = A.dim(-1);
  const int64_t kb = B.dim(-2), nn = B.dim(-1);
  MSGCL_CHECK_MSG(ka == kb, "matmul inner dims " << ka << " vs " << kb << " ("
                                                 << ShapeToString(A.shape()) << " x "
                                                 << ShapeToString(B.shape()) << ")");
  Shape batch_a(A.shape().begin(), A.shape().end() - 2);
  Shape batch_b(B.shape().begin(), B.shape().end() - 2);
  MSGCL_CHECK_MSG(batch_a == batch_b || batch_a.empty() || batch_b.empty(),
                  "matmul batch dims must match or one side must be rank-2: "
                      << ShapeToString(A.shape()) << " x " << ShapeToString(B.shape()));
  const Shape& batch = batch_a.empty() ? batch_b : batch_a;
  const int64_t nbatch = NumElements(batch);
  const bool a_batched = !batch_a.empty();
  const bool b_batched = !batch_b.empty();
  MSGCL_OBS_SCOPE_BYTES("tensor.matmul.fwd", (m * ka + ka * nn + m * nn) * 4 * nbatch);

  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(nn);
  FloatBuf out(NumElements(out_shape), 0.0f);
  const auto& ad = A.data();
  const auto& bd = B.data();
  const int64_t a_stride = a_batched ? m * ka : 0;
  const int64_t b_stride = b_batched ? ka * nn : 0;
  const int64_t k = ka;
  // Output rows are disjoint across (batch, i): parallelize the flattened
  // row space. Grains keep >= kMatMulGrainFlops of work per shard; the plan
  // cache remembers grains and the forward row partition per shape.
  std::vector<int64_t> key{parallel::MaxThreads(), nbatch, m, k, nn,
                           a_batched ? 1 : 0, b_batched ? 1 : 0};
  auto plan = MatMulPlans().GetOrCreate(std::move(key), [&] {
    MatMulPlan p;
    const int64_t row_flops = std::max<int64_t>(2 * k * nn, 1);
    p.fwd_grain = std::max<int64_t>(1, kMatMulGrainFlops / row_flops);
    p.grain_a = p.fwd_grain;
    const int64_t col_flops = std::max<int64_t>(2 * m * nn, 1);
    p.grain_b = std::max<int64_t>(1, kMatMulGrainFlops / col_flops);
    p.row_shards = parallel::BuildShardPlan(0, nbatch * m, p.fwd_grain);
    return p;
  });
  parallel::For(plan->row_shards, [&](int64_t r0, int64_t r1) {
    ForEachBatchSegment(r0, r1, m, [&](int64_t bi, int64_t i0, int64_t i1) {
      MatMulRowsKernel(ad.data() + bi * a_stride, bd.data() + bi * b_stride,
                       out.data() + bi * m * nn, k, nn, i0, i1);
    });
  });

  auto ai = A.impl_ptr();
  auto bimp = B.impl_ptr();
  return MakeNode(
      std::move(out_shape), std::move(out), {A, B},
      [ai, bimp, plan, m, k, nn, nbatch, a_stride, b_stride, a_batched,
       b_batched](TensorImpl& self) {
        MSGCL_OBS_SCOPE_BYTES("tensor.matmul.bwd", (m * k + k * nn + m * nn) * 8 * nbatch);
        const bool need_a = ai->requires_grad;
        const bool need_b = bimp->requires_grad;
        if (need_a) ai->EnsureGrad();
        if (need_b) bimp->EnsureGrad();
        const float* gd = self.grad.data();
        const float* adata = ai->data.data();
        const float* bdata = bimp->data.data();
        const int64_t grain_a = plan->grain_a;
        const int64_t grain_b = plan->grain_b;
        if (need_a) {
          if (a_batched) {
            // dA rows are disjoint across (batch, i).
            parallel::For(0, nbatch * m, grain_a, [&](int64_t r0, int64_t r1) {
              ForEachBatchSegment(r0, r1, m, [&](int64_t bi, int64_t i0, int64_t i1) {
                MatMulGradARows(gd + bi * m * nn, bdata + bi * b_stride,
                                ai->grad.data() + bi * a_stride, k, nn, i0, i1);
              });
            });
          } else {
            // Shared A: every batch accumulates into the same dA. Shard by
            // row i and walk batches in ascending order inside the shard so
            // per-element accumulation order matches the serial kernel.
            parallel::For(0, m, grain_a, [&](int64_t i0, int64_t i1) {
              for (int64_t bi = 0; bi < nbatch; ++bi) {
                MatMulGradARows(gd + bi * m * nn, bdata + bi * b_stride,
                                ai->grad.data(), k, nn, i0, i1);
              }
            });
          }
        }
        if (need_b) {
          if (b_batched) {
            // dB rows are disjoint across (batch, p).
            parallel::For(0, nbatch * k, grain_b, [&](int64_t r0, int64_t r1) {
              ForEachBatchSegment(r0, r1, k, [&](int64_t bi, int64_t p0, int64_t p1) {
                MatMulGradBRows(adata + bi * a_stride, gd + bi * m * nn,
                                bimp->grad.data() + bi * b_stride, m, k, nn, p0, p1);
              });
            });
          } else {
            // Shared B: shard by row p, batches ascending inside the shard.
            parallel::For(0, k, grain_b, [&](int64_t p0, int64_t p1) {
              for (int64_t bi = 0; bi < nbatch; ++bi) {
                MatMulGradBRows(adata + bi * a_stride, gd + bi * m * nn,
                                bimp->grad.data(), m, k, nn, p0, p1);
              }
            });
          }
        }
      });
}

// ---- Fused neural-net primitives -----------------------------------------------

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int32_t>& indices,
                       const Shape& index_shape, int32_t padding_idx) {
  MSGCL_OBS_SCOPE_BYTES("tensor.embedding.fwd",
                        static_cast<int64_t>(indices.size()) * table.dim(1) * 2 * 4);
  MSGCL_CHECK_EQ(table.ndim(), 2);
  MSGCL_CHECK_EQ(NumElements(index_shape), static_cast<int64_t>(indices.size()));
  const int64_t rows = table.dim(0);
  const int64_t width = table.dim(1);
  const auto& td = table.data();
  FloatBuf out(indices.size() * width);
  parallel::For(0, static_cast<int64_t>(indices.size()), RowGrain(width),
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) {
                    const int32_t id = indices[i];
                    MSGCL_CHECK_MSG(id >= 0 && id < rows,
                                    "embedding index " << id << " out of [0, " << rows
                                                       << ")");
                    std::copy(td.data() + id * width, td.data() + (id + 1) * width,
                              out.data() + i * width);
                  }
                });
  Shape out_shape = index_shape;
  out_shape.push_back(width);
  auto ti = table.impl_ptr();
  auto idx = std::make_shared<std::vector<int32_t>>(indices);
  return MakeNode(std::move(out_shape), std::move(out), {table},
                  [ti, idx, rows, width, padding_idx](TensorImpl& self) {
                    MSGCL_OBS_SCOPE_BYTES(
                        "tensor.embedding.scatter",
                        static_cast<int64_t>(idx->size()) * width * 2 * 4);
                    if (!ti->requires_grad) return;
                    ti->EnsureGrad();
                    // Scatter sharded by table-row ownership: each shard owns
                    // a contiguous row range and scans the whole index list
                    // in ascending order, so a given row always accumulates
                    // its occurrences in the same order — race-free and
                    // bitwise-invariant under the thread count.
                    parallel::For(0, rows, 1, [&](int64_t r0, int64_t r1) {
                      const int64_t count = static_cast<int64_t>(idx->size());
                      for (int64_t i = 0; i < count; ++i) {
                        const int32_t id = (*idx)[i];
                        if (id == padding_idx || id < r0 || id >= r1) continue;
                        const float* gs = self.grad.data() + i * width;
                        float* gd = ti->grad.data() + static_cast<int64_t>(id) * width;
                        for (int64_t j = 0; j < width; ++j) gd[j] += gs[j];
                      }
                    });
                  });
}

Tensor GatherTimeStep(const Tensor& x, const std::vector<int32_t>& positions) {
  MSGCL_CHECK_EQ(x.ndim(), 3);
  const int64_t B = x.dim(0), T = x.dim(1), D = x.dim(2);
  MSGCL_CHECK_EQ(static_cast<int64_t>(positions.size()), B);
  const auto& xd = x.data();
  FloatBuf out(B * D);
  parallel::For(0, B, RowGrain(D), [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const int32_t t = positions[b];
      MSGCL_CHECK_MSG(t >= 0 && t < T, "position " << t << " out of [0, " << T << ")");
      std::copy(xd.data() + (b * T + t) * D, xd.data() + (b * T + t + 1) * D,
                out.data() + b * D);
    }
  });
  auto xi = x.impl_ptr();
  auto pos = std::make_shared<std::vector<int32_t>>(positions);
  return MakeNode({B, D}, std::move(out), {x}, [xi, pos, T, D](TensorImpl& self) {
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const int64_t B = static_cast<int64_t>(pos->size());
    // One target row per batch element -> disjoint writes.
    parallel::For(0, B, RowGrain(D), [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) {
        const int32_t t = (*pos)[b];
        const float* gs = self.grad.data() + b * D;
        float* gd = xi->grad.data() + (b * T + t) * D;
        for (int64_t j = 0; j < D; ++j) gd[j] += gs[j];
      }
    });
  });
}

Tensor LayerNormLastDim(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                        float eps) {
  MSGCL_OBS_SCOPE_BYTES("tensor.layernorm.fwd", x.numel() * 2 * 4);
  MSGCL_CHECK_GE(x.ndim(), 1);
  const int64_t c = x.dim(-1);
  MSGCL_CHECK_GT(c, 0);
  MSGCL_CHECK_EQ(gamma.numel(), c);
  MSGCL_CHECK_EQ(beta.numel(), c);
  const int64_t rows = x.numel() / c;
  const auto& xd = x.data();
  const auto& gd = gamma.data();
  const auto& bd = beta.data();
  FloatBuf out(xd.size());
  auto xhat = std::make_shared<std::vector<float>>(xd.size());
  auto inv_std = std::make_shared<std::vector<float>>(rows);
  parallel::For(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = xd.data() + r * c;
      // mu/var stay serial double reductions (order-sensitive, golden-pinned).
      double mu = 0.0;
      for (int64_t j = 0; j < c; ++j) mu += xr[j];
      mu /= static_cast<double>(c);
      double var = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        const double d = xr[j] - mu;
        var += d * d;
      }
      var /= static_cast<double>(c);
      const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
      (*inv_std)[r] = is;
      simd::LayerNormRowVec(out.data() + r * c, xhat->data() + r * c, xr,
                            gd.data(), bd.data(), static_cast<float>(mu), is, c);
    }
  });
  auto xi = x.impl_ptr();
  auto gi = gamma.impl_ptr();
  auto bi = beta.impl_ptr();
  return MakeNode(
      x.shape(), std::move(out), {x, gamma, beta},
      [xi, gi, bi, xhat, inv_std, c](TensorImpl& self) {
        MSGCL_OBS_SCOPE("tensor.layernorm.bwd");
        const int64_t rows = static_cast<int64_t>(self.data.size()) / c;
        const bool need_x = xi->requires_grad;
        const bool need_g = gi->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_x) xi->EnsureGrad();
        if (need_g) gi->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        // dgamma/dbeta reduce over rows: per-chunk partials with fixed
        // (thread-count independent) chunk boundaries, combined below in
        // chunk index order. dx rows are disjoint and need no partials.
        const int64_t nchunks = parallel::NumFixedChunks(rows, kRowReduceChunk);
        std::vector<float> pgamma(need_g ? nchunks * c : 0, 0.0f);
        std::vector<float> pbeta(need_b ? nchunks * c : 0, 0.0f);
        parallel::ForFixedChunks(0, rows, kRowReduceChunk, [&](int64_t chunk, int64_t r0,
                                                               int64_t r1) {
          float* pg = need_g ? pgamma.data() + chunk * c : nullptr;
          float* pb = need_b ? pbeta.data() + chunk * c : nullptr;
          for (int64_t r = r0; r < r1; ++r) {
            const float* g = self.grad.data() + r * c;
            const float* xh = xhat->data() + r * c;
            if (need_g) simd::MulAccumVec(pg, g, xh, c);
            if (need_b) simd::AccumVec(pb, g, c);
            if (need_x) {
              // dx = inv_std/c * (c*dy*gamma - sum(dy*gamma)
              //        - xhat * sum(dy*gamma*xhat))
              double s1 = 0.0, s2 = 0.0;
              for (int64_t j = 0; j < c; ++j) {
                const double dg = static_cast<double>(g[j]) * gi->data[j];
                s1 += dg;
                s2 += dg * xh[j];
              }
              const float is = (*inv_std)[r];
              float* gx = xi->grad.data() + r * c;
              const float invc = 1.0f / static_cast<float>(c);
              for (int64_t j = 0; j < c; ++j) {
                const float dg = g[j] * gi->data[j];
                gx[j] += is * (dg - invc * static_cast<float>(s1) -
                               xh[j] * invc * static_cast<float>(s2));
              }
            }
          }
        });
        for (int64_t chunk = 0; chunk < nchunks; ++chunk) {
          for (int64_t j = 0; j < c; ++j) {
            if (need_g) gi->grad[j] += pgamma[chunk * c + j];
            if (need_b) bi->grad[j] += pbeta[chunk * c + j];
          }
        }
      });
}

Tensor CrossEntropyLogits(const Tensor& logits, const std::vector<int32_t>& targets,
                          int32_t ignore_index) {
  MSGCL_OBS_SCOPE_BYTES("tensor.cross_entropy.fwd", logits.numel() * 2 * 4);
  MSGCL_CHECK_EQ(logits.ndim(), 2);
  const int64_t M = logits.dim(0), C = logits.dim(1);
  MSGCL_CHECK_EQ(static_cast<int64_t>(targets.size()), M);
  const auto& xd = logits.data();
  // Forward: mean over non-ignored rows of (logsumexp - logit[target]).
  // Loss reduces over rows: fixed-chunk partials combined in chunk order.
  auto log_probs = std::make_shared<std::vector<float>>(xd.size());
  const int64_t nchunks = parallel::NumFixedChunks(M, kRowReduceChunk);
  std::vector<double> ploss(nchunks, 0.0);
  std::vector<int64_t> pvalid(nchunks, 0);
  parallel::ForFixedChunks(0, M, kRowReduceChunk, [&](int64_t chunk, int64_t r0,
                                                      int64_t r1) {
    double loss = 0.0;
    int64_t valid = 0;
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = xd.data() + r * C;
      float mx = xr[0];
      for (int64_t j = 1; j < C; ++j) mx = std::max(mx, xr[j]);
      double z = 0.0;
      for (int64_t j = 0; j < C; ++j) z += std::exp(xr[j] - mx);
      const float lse = mx + static_cast<float>(std::log(z));
      for (int64_t j = 0; j < C; ++j) (*log_probs)[r * C + j] = xr[j] - lse;
      const int32_t t = targets[r];
      if (t == ignore_index) continue;
      MSGCL_CHECK_MSG(t >= 0 && t < C, "target " << t << " out of [0, " << C << ")");
      loss -= (*log_probs)[r * C + t];
      ++valid;
    }
    ploss[chunk] = loss;
    pvalid[chunk] = valid;
  });
  double loss = 0.0;
  int64_t valid = 0;
  for (int64_t chunk = 0; chunk < nchunks; ++chunk) {
    loss += ploss[chunk];
    valid += pvalid[chunk];
  }
  const float mean_loss =
      valid > 0 ? static_cast<float>(loss / static_cast<double>(valid)) : 0.0f;
  auto li = logits.impl_ptr();
  auto tgt = std::make_shared<std::vector<int32_t>>(targets);
  return MakeNode({1}, {mean_loss}, {logits},
                  [li, tgt, log_probs, ignore_index, C, valid](TensorImpl& self) {
                    MSGCL_OBS_SCOPE("tensor.cross_entropy.bwd");
                    if (!li->requires_grad || valid == 0) return;
                    li->EnsureGrad();
                    const float g = self.grad[0] / static_cast<float>(valid);
                    const int64_t M = static_cast<int64_t>(tgt->size());
                    parallel::For(0, M, RowGrain(C), [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        const int32_t t = (*tgt)[r];
                        if (t == ignore_index) continue;
                        const float* lp = log_probs->data() + r * C;
                        float* gx = li->grad.data() + r * C;
                        for (int64_t j = 0; j < C; ++j) {
                          const float softmax = std::exp(lp[j]);
                          gx[j] += g * (softmax - (j == t ? 1.0f : 0.0f));
                        }
                      }
                    });
                  });
}

Tensor HorizontalConv(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  MSGCL_CHECK_EQ(x.ndim(), 3);
  MSGCL_CHECK_EQ(weight.ndim(), 3);
  MSGCL_CHECK_EQ(bias.ndim(), 1);
  const int64_t B = x.dim(0), T = x.dim(1), D = x.dim(2);
  const int64_t F = weight.dim(0), h = weight.dim(1);
  MSGCL_CHECK_EQ(weight.dim(2), D);
  MSGCL_CHECK_EQ(bias.dim(0), F);
  MSGCL_CHECK_MSG(h <= T, "filter height " << h << " exceeds sequence length " << T);
  const int64_t L = T - h + 1;
  const auto& xd = x.data();
  const auto& wd = weight.data();
  const auto& bd = bias.data();
  FloatBuf out(B * L * F);
  // Output rows (b, t) are disjoint.
  parallel::For(0, B * L, RowGrain(F * h * D), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / L, t = r % L;
      float* orow = out.data() + (b * L + t) * F;
      for (int64_t f = 0; f < F; ++f) {
        const float* w = wd.data() + f * h * D;
        const float* xwin = xd.data() + (b * T + t) * D;
        double acc = bd[f];
        for (int64_t i = 0; i < h * D; ++i) acc += w[i] * xwin[i];
        orow[f] = static_cast<float>(acc);
      }
    }
  });
  auto xi = x.impl_ptr();
  auto wi = weight.impl_ptr();
  auto bi = bias.impl_ptr();
  return MakeNode({B, L, F}, std::move(out), {x, weight, bias},
                  [xi, wi, bi, B, T, D, F, h, L](TensorImpl& self) {
                    const bool need_x = xi->requires_grad;
                    const bool need_w = wi->requires_grad;
                    const bool need_b = bi->requires_grad;
                    if (need_x) xi->EnsureGrad();
                    if (need_w) wi->EnsureGrad();
                    if (need_b) bi->EnsureGrad();
                    // Serial: dw/db reduce over every (b, t) window and dx
                    // windows overlap along t, so there is no disjoint
                    // sharding. Caser-only and off the Meta-SGCL hot path.
                    for (int64_t b = 0; b < B; ++b) {
                      for (int64_t t = 0; t < L; ++t) {
                        const float* g = self.grad.data() + (b * L + t) * F;
                        for (int64_t f = 0; f < F; ++f) {
                          const float gv = g[f];
                          if (gv == 0.0f) continue;
                          if (need_b) bi->grad[f] += gv;
                          const float* w = wi->data.data() + f * h * D;
                          const float* xwin = xi->data.data() + (b * T + t) * D;
                          if (need_w) {
                            float* gw = wi->grad.data() + f * h * D;
                            for (int64_t i = 0; i < h * D; ++i) gw[i] += gv * xwin[i];
                          }
                          if (need_x) {
                            float* gx = xi->grad.data() + (b * T + t) * D;
                            for (int64_t i = 0; i < h * D; ++i) gx[i] += gv * w[i];
                          }
                        }
                      }
                    }
                  });
}

}  // namespace msgcl
