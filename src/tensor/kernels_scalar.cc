// Scalar reference path for the kernel layer (DESIGN.md §13).
//
// This TU is compiled with `-fno-tree-vectorize -fno-tree-slp-vectorize`
// (see src/tensor/CMakeLists.txt) so these loops stay genuinely scalar even
// under `-O3 -march=native` — they are the reference the AVX2 path is
// bitwise-compared against, and the baseline the speedup drill measures.
//
// Contraction policy: every product feeding an accumulation goes through
// std::fma (a single rounding). On FMA-capable hardware GCC inlines it to a
// scalar vfmadd; elsewhere it lowers to the correctly-rounded libm fma, so
// the result is bitwise identical either way.
#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

namespace msgcl {
namespace simd {
namespace scalar {

void AddVec(float* y, const float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void SubVec(float* y, const float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] - b[i];
}

void MulVec(float* y, const float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] * b[i];
}

void DivVec(float* y, const float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] / b[i];
}

void ScaleVec(float* y, const float* x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] * s;
}

void AddScalarVec(float* y, const float* x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] + s;
}

void AccumVec(float* y, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

void AxpyVec(float* y, const float* x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fma(x[i], s, y[i]);
}

void MulAccumVec(float* y, const float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fma(a[i], b[i], y[i]);
}

void RecipMulAccumVec(float* y, const float* b, const float* g, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fma(1.0f / b[i], g[i], y[i]);
}

void DivGradBVec(float* y, const float* a, const float* b, const float* g,
                 int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] = std::fma(-a[i] / (b[i] * b[i]), g[i], y[i]);
  }
}

float RowMax(const float* x, int64_t n) {
  float mx = x[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  return mx;
}

void SoftmaxBwdVec(float* y, const float* p, const float* g, float dot,
                   int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fma(p[i], g[i] - dot, y[i]);
}

void LayerNormRowVec(float* out, float* xhat, const float* x,
                     const float* gamma, const float* beta, float mu,
                     float inv_std, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float xh = (x[i] - mu) * inv_std;
    xhat[i] = xh;
    out[i] = std::fma(gamma[i], xh, beta[i]);
  }
}

void MatMulTile(float* c, const float* a, const float* b, int64_t p0,
                int64_t p1, int64_t n) {
  for (int64_t p = p0; p < p1; ++p) {
    const float av = a[p];
    const float* brow = b + p * n;
    for (int64_t j = 0; j < n; ++j) c[j] = std::fma(av, brow[j], c[j]);
  }
}

float Dot(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc = std::fma(a[i], b[i], acc);
  return acc;
}

}  // namespace scalar
}  // namespace simd
}  // namespace msgcl
