// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component (weight init, dropout masks, reparameterisation
// noise, dataset synthesis, negative sampling) draws from an explicitly
// seeded Rng so that runs are bit-exactly repeatable. The generator is
// xoshiro256** seeded via SplitMix64, following the reference
// implementations by Blackman & Vigna.
#ifndef MSGCL_TENSOR_RNG_H_
#define MSGCL_TENSOR_RNG_H_

#include <cmath>
#include <cstdint>

#include "tensor/macros.h"

namespace msgcl {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + (hi - lo) * static_cast<float>(Uniform());
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    MSGCL_CHECK_GT(n, 0u);
    // Lemire-style rejection-free-enough bounded sampling; the modulo bias
    // for n << 2^64 is negligible at our scales, but debias anyway.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box-Muller (cached second draw).
  float Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = Uniform();
    } while (u1 <= 1e-12);
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = static_cast<float>(r * std::sin(theta));
    has_cached_ = true;
    return static_cast<float>(r * std::cos(theta));
  }

  /// Normal with the given mean and standard deviation.
  float Normal(float mean, float stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Geometric-like Zipf sampler over [0, n) with exponent s (popularity skew).
  /// Uses inverse-CDF over precomputation-free rejection; adequate for data
  /// synthesis where exact Zipf tail behaviour is not load-bearing.
  uint64_t Zipf(uint64_t n, double s) {
    MSGCL_CHECK_GT(n, 0u);
    // Rejection sampling from the Zipf distribution (Devroye).
    const double b = std::pow(2.0, s - 1.0);
    for (;;) {
      const double u = Uniform();
      const double v = Uniform();
      const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
      const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
      if (v * x * (t - 1.0) / (b - 1.0) <= t / b && x <= static_cast<double>(n)) {
        return static_cast<uint64_t>(x) - 1;
      }
    }
  }

  /// Derives an independent stream; use to give each component its own RNG.
  Rng Split() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ULL); }

  /// Serializable generator state, exposed so resumable training checkpoints
  /// can restore a run mid-stream bit-exactly (see nn/serialize.h v2).
  struct State {
    uint64_t words[4] = {0, 0, 0, 0};
    float cached = 0.0f;
    bool has_cached = false;
  };

  State GetState() const {
    State s;
    for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
    s.cached = cached_;
    s.has_cached = has_cached_;
    return s;
  }

  void SetState(const State& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    cached_ = s.cached;
    has_cached_ = s.has_cached;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

}  // namespace msgcl

#endif  // MSGCL_TENSOR_RNG_H_
