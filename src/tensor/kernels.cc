// Runtime ISA dispatch for the kernel layer (DESIGN.md §13).
#include "tensor/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace msgcl {
namespace simd {

namespace {

// -1 = not yet initialized from MSGCL_SIMD; otherwise a valid Isa value.
std::atomic<int> g_isa{-1};

bool CpuHasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Isa IsaFromEnv() {
  const char* env = std::getenv("MSGCL_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return Avx2Supported() ? Isa::kAvx2 : Isa::kScalar;
    }
    // Anything else (including "auto") falls through to auto-detection.
  }
  return Avx2Supported() ? Isa::kAvx2 : Isa::kScalar;
}

}  // namespace

bool Avx2Supported() {
  static const bool supported = avx2::Compiled() && CpuHasAvx2();
  return supported;
}

Isa ActiveIsa() {
  int cur = g_isa.load(std::memory_order_relaxed);
  if (cur >= 0) return static_cast<Isa>(cur);
  Isa chosen = IsaFromEnv();
  int expected = -1;
  // First caller wins; a concurrent SetIsa keeps its explicit choice.
  g_isa.compare_exchange_strong(expected, static_cast<int>(chosen),
                                std::memory_order_relaxed);
  return static_cast<Isa>(g_isa.load(std::memory_order_relaxed));
}

Isa SetIsa(Isa isa) {
  if (isa == Isa::kAvx2 && !Avx2Supported()) isa = Isa::kScalar;
  g_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

const char* IsaName(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

// Dispatchers. One relaxed atomic load + branch per kernel call; the work
// inside each kernel amortizes it (the plan cache removes the remaining
// per-call setup — see plan_cache.h).
#define MSGCL_DISPATCH(fn, ...)                              \
  if (ActiveIsa() == Isa::kAvx2) return avx2::fn(__VA_ARGS__); \
  return scalar::fn(__VA_ARGS__)

void AddVec(float* y, const float* a, const float* b, int64_t n) {
  MSGCL_DISPATCH(AddVec, y, a, b, n);
}
void SubVec(float* y, const float* a, const float* b, int64_t n) {
  MSGCL_DISPATCH(SubVec, y, a, b, n);
}
void MulVec(float* y, const float* a, const float* b, int64_t n) {
  MSGCL_DISPATCH(MulVec, y, a, b, n);
}
void DivVec(float* y, const float* a, const float* b, int64_t n) {
  MSGCL_DISPATCH(DivVec, y, a, b, n);
}
void ScaleVec(float* y, const float* x, float s, int64_t n) {
  MSGCL_DISPATCH(ScaleVec, y, x, s, n);
}
void AddScalarVec(float* y, const float* x, float s, int64_t n) {
  MSGCL_DISPATCH(AddScalarVec, y, x, s, n);
}
void AccumVec(float* y, const float* x, int64_t n) {
  MSGCL_DISPATCH(AccumVec, y, x, n);
}
void AxpyVec(float* y, const float* x, float s, int64_t n) {
  MSGCL_DISPATCH(AxpyVec, y, x, s, n);
}
void MulAccumVec(float* y, const float* a, const float* b, int64_t n) {
  MSGCL_DISPATCH(MulAccumVec, y, a, b, n);
}
void RecipMulAccumVec(float* y, const float* b, const float* g, int64_t n) {
  MSGCL_DISPATCH(RecipMulAccumVec, y, b, g, n);
}
void DivGradBVec(float* y, const float* a, const float* b, const float* g,
                 int64_t n) {
  MSGCL_DISPATCH(DivGradBVec, y, a, b, g, n);
}
float RowMax(const float* x, int64_t n) { MSGCL_DISPATCH(RowMax, x, n); }
void SoftmaxBwdVec(float* y, const float* p, const float* g, float dot,
                   int64_t n) {
  MSGCL_DISPATCH(SoftmaxBwdVec, y, p, g, dot, n);
}
void LayerNormRowVec(float* out, float* xhat, const float* x,
                     const float* gamma, const float* beta, float mu,
                     float inv_std, int64_t n) {
  MSGCL_DISPATCH(LayerNormRowVec, out, xhat, x, gamma, beta, mu, inv_std, n);
}
void MatMulTile(float* c, const float* a, const float* b, int64_t p0,
                int64_t p1, int64_t n) {
  MSGCL_DISPATCH(MatMulTile, c, a, b, p0, p1, n);
}
float Dot(const float* a, const float* b, int64_t n) {
  MSGCL_DISPATCH(Dot, a, b, n);
}

#undef MSGCL_DISPATCH

}  // namespace simd
}  // namespace msgcl
