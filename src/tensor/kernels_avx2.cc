// AVX2+FMA path for the kernel layer (DESIGN.md §13).
//
// Built with GCC/Clang `target("avx2,fma")` function attributes so this TU
// can live in a build whose baseline ISA is older (the sanitizer presets
// compile with MSGCL_NATIVE_ARCH=OFF); callers gate on
// simd::Avx2Supported(), which checks both that these bodies exist and that
// the CPU executes AVX2.
//
// Bitwise rules (see kernels.h): per-element accumulation order over the
// contraction index is ascending exactly as in the scalar path — lanes are
// independent output elements, never partial sums of one element — and every
// product-accumulate is a single-rounding fma. Tails run scalar std::fma
// loops, which on this TU's targets inline to scalar vfmadd.
#include <cmath>

#include "tensor/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MSGCL_HAVE_AVX2_TU 1
#include <immintrin.h>
#else
#define MSGCL_HAVE_AVX2_TU 0
#include <cstdlib>
#endif

namespace msgcl {
namespace simd {
namespace avx2 {

#if MSGCL_HAVE_AVX2_TU

#define MSGCL_AVX2 __attribute__((target("avx2,fma")))

bool Compiled() { return true; }

MSGCL_AVX2 void AddVec(float* y, const float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] + b[i];
}

MSGCL_AVX2 void SubVec(float* y, const float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] - b[i];
}

MSGCL_AVX2 void MulVec(float* y, const float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] * b[i];
}

MSGCL_AVX2 void DivVec(float* y, const float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_div_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] / b[i];
}

MSGCL_AVX2 void ScaleVec(float* y, const float* x, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) y[i] = x[i] * s;
}

MSGCL_AVX2 void AddScalarVec(float* y, const float* x, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) y[i] = x[i] + s;
}

MSGCL_AVX2 void AccumVec(float* y, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                                          _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

MSGCL_AVX2 void AxpyVec(float* y, const float* x, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(_mm256_loadu_ps(x + i), vs,
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(x[i], s, y[i]);
}

MSGCL_AVX2 void MulAccumVec(float* y, const float* a, const float* b,
                            int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(a[i], b[i], y[i]);
}

MSGCL_AVX2 void RecipMulAccumVec(float* y, const float* b, const float* g,
                                 int64_t n) {
  const __m256 ones = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // IEEE divide, not rcpps — must round identically to the scalar 1/b.
    const __m256 r = _mm256_div_ps(ones, _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(r, _mm256_loadu_ps(g + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(1.0f / b[i], g[i], y[i]);
}

MSGCL_AVX2 void DivGradBVec(float* y, const float* a, const float* b,
                            const float* g, int64_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256 bb = _mm256_mul_ps(vb, vb);
    const __m256 na = _mm256_xor_ps(_mm256_loadu_ps(a + i), sign);  // -a, exact
    const __m256 t = _mm256_div_ps(na, bb);
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(t, _mm256_loadu_ps(g + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(-a[i] / (b[i] * b[i]), g[i], y[i]);
}

MSGCL_AVX2 float RowMax(const float* x, int64_t n) {
  if (n < 8) {
    float mx = x[0];
    for (int64_t i = 1; i < n; ++i) mx = mx < x[i] ? x[i] : mx;
    return mx;
  }
  __m256 vm = _mm256_loadu_ps(x);
  int64_t i = 8;
  for (; i + 8 <= n; i += 8) vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + i));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vm);
  float mx = lanes[0];
  for (int k = 1; k < 8; ++k) mx = mx < lanes[k] ? lanes[k] : mx;
  for (; i < n; ++i) mx = mx < x[i] ? x[i] : mx;
  return mx;
}

MSGCL_AVX2 void SoftmaxBwdVec(float* y, const float* p, const float* g,
                              float dot, int64_t n) {
  const __m256 vd = _mm256_set1_ps(dot);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_sub_ps(_mm256_loadu_ps(g + i), vd);
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(_mm256_loadu_ps(p + i), t,
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(p[i], g[i] - dot, y[i]);
}

MSGCL_AVX2 void LayerNormRowVec(float* out, float* xhat, const float* x,
                                const float* gamma, const float* beta,
                                float mu, float inv_std, int64_t n) {
  const __m256 vmu = _mm256_set1_ps(mu);
  const __m256 vis = _mm256_set1_ps(inv_std);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xh =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmu), vis);
    _mm256_storeu_ps(xhat + i, xh);
    _mm256_storeu_ps(
        out + i, _mm256_fmadd_ps(_mm256_loadu_ps(gamma + i), xh,
                                 _mm256_loadu_ps(beta + i)));
  }
  for (; i < n; ++i) {
    const float xh = (x[i] - mu) * inv_std;
    xhat[i] = xh;
    out[i] = std::fma(gamma[i], xh, beta[i]);
  }
}

MSGCL_AVX2 void MatMulTile(float* c, const float* a, const float* b,
                           int64_t p0, int64_t p1, int64_t n) {
  // Output accumulators stay in registers across the whole p-walk: each
  // lane is one output element c[j], accumulated over p ascending — the
  // same per-element order as the scalar path, just 32 elements at a time.
  int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    float* cj = c + j;
    __m256 c0 = _mm256_loadu_ps(cj);
    __m256 c1 = _mm256_loadu_ps(cj + 8);
    __m256 c2 = _mm256_loadu_ps(cj + 16);
    __m256 c3 = _mm256_loadu_ps(cj + 24);
    for (int64_t p = p0; p < p1; ++p) {
      const __m256 av = _mm256_set1_ps(a[p]);
      const float* brow = b + p * n + j;
      c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), c0);
      c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), c1);
      c2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), c2);
      c3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), c3);
    }
    _mm256_storeu_ps(cj, c0);
    _mm256_storeu_ps(cj + 8, c1);
    _mm256_storeu_ps(cj + 16, c2);
    _mm256_storeu_ps(cj + 24, c3);
  }
  for (; j + 8 <= n; j += 8) {
    float* cj = c + j;
    __m256 c0 = _mm256_loadu_ps(cj);
    for (int64_t p = p0; p < p1; ++p) {
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(a[p]),
                           _mm256_loadu_ps(b + p * n + j), c0);
    }
    _mm256_storeu_ps(cj, c0);
  }
  for (; j < n; ++j) {
    float acc = c[j];
    for (int64_t p = p0; p < p1; ++p) acc = std::fma(a[p], b[p * n + j], acc);
    c[j] = acc;
  }
}

MSGCL_AVX2 float Dot(const float* a, const float* b, int64_t n) {
  // A serial float fma chain cannot be vectorized without reassociating;
  // run the exact scalar recurrence (still benefits from the AVX2 TU's
  // scalar vfmadd codegen).
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc = std::fma(a[i], b[i], acc);
  return acc;
}

#undef MSGCL_AVX2

#else  // !MSGCL_HAVE_AVX2_TU — stubs; unreachable because Avx2Supported()
       // is false on these builds.

bool Compiled() { return false; }

namespace {
[[noreturn]] void Unreachable() { std::abort(); }
}  // namespace

void AddVec(float*, const float*, const float*, int64_t) { Unreachable(); }
void SubVec(float*, const float*, const float*, int64_t) { Unreachable(); }
void MulVec(float*, const float*, const float*, int64_t) { Unreachable(); }
void DivVec(float*, const float*, const float*, int64_t) { Unreachable(); }
void ScaleVec(float*, const float*, float, int64_t) { Unreachable(); }
void AddScalarVec(float*, const float*, float, int64_t) { Unreachable(); }
void AccumVec(float*, const float*, int64_t) { Unreachable(); }
void AxpyVec(float*, const float*, float, int64_t) { Unreachable(); }
void MulAccumVec(float*, const float*, const float*, int64_t) { Unreachable(); }
void RecipMulAccumVec(float*, const float*, const float*, int64_t) {
  Unreachable();
}
void DivGradBVec(float*, const float*, const float*, const float*, int64_t) {
  Unreachable();
}
float RowMax(const float*, int64_t) { Unreachable(); }
void SoftmaxBwdVec(float*, const float*, const float*, float, int64_t) {
  Unreachable();
}
void LayerNormRowVec(float*, float*, const float*, const float*, const float*,
                     float, float, int64_t) {
  Unreachable();
}
void MatMulTile(float*, const float*, const float*, int64_t, int64_t,
                int64_t) {
  Unreachable();
}
float Dot(const float*, const float*, int64_t) { Unreachable(); }

#endif  // MSGCL_HAVE_AVX2_TU

}  // namespace avx2
}  // namespace simd
}  // namespace msgcl
