// Internal invariant checking for the msgcl libraries.
//
// MSGCL_CHECK* abort with a readable message on violation. They guard
// programmer errors (shape mismatches, out-of-range indices) that indicate a
// bug rather than a recoverable condition; recoverable conditions use
// msgcl::Status (see status.h).
#ifndef MSGCL_TENSOR_MACROS_H_
#define MSGCL_TENSOR_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace msgcl {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "MSGCL_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " -- ", msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace msgcl

#define MSGCL_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::msgcl::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                  \
  } while (0)

#define MSGCL_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream msgcl_oss_;                                   \
      msgcl_oss_ << msg;                                               \
      ::msgcl::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                     msgcl_oss_.str());                \
    }                                                                  \
  } while (0)

#define MSGCL_CHECK_EQ(a, b) MSGCL_CHECK_MSG((a) == (b), "expected " << (a) << " == " << (b))
#define MSGCL_CHECK_NE(a, b) MSGCL_CHECK_MSG((a) != (b), "expected " << (a) << " != " << (b))
#define MSGCL_CHECK_LT(a, b) MSGCL_CHECK_MSG((a) < (b), "expected " << (a) << " < " << (b))
#define MSGCL_CHECK_LE(a, b) MSGCL_CHECK_MSG((a) <= (b), "expected " << (a) << " <= " << (b))
#define MSGCL_CHECK_GT(a, b) MSGCL_CHECK_MSG((a) > (b), "expected " << (a) << " > " << (b))
#define MSGCL_CHECK_GE(a, b) MSGCL_CHECK_MSG((a) >= (b), "expected " << (a) << " >= " << (b))

#endif  // MSGCL_TENSOR_MACROS_H_
