// Vectorized inner kernels for the hot tensor ops (DESIGN.md §13).
//
// Every kernel here has two implementations — a scalar reference
// (kernels_scalar.cc, compiled with auto-vectorization disabled so it is a
// true one-element-at-a-time loop) and an AVX2+FMA version
// (kernels_avx2.cc, compiled via GCC/Clang `target` attributes so the rest
// of the build keeps its baseline ISA) — selected at runtime by ActiveIsa().
//
// Bitwise contract: for any input, the scalar and AVX2 paths produce
// BITWISE-IDENTICAL outputs. This holds because
//
//  * no kernel reorders a floating-point reduction: accumulations run in
//    the same per-element order in both paths (MatMulTile walks p
//    ascending for every output j; Dot is a serial fma chain in both);
//  * wherever a product feeds an accumulation both paths use a FUSED
//    multiply-add (std::fma scalar, vfmadd in AVX2) — one rounding, the
//    same contraction the repo's default `-O3 -march=native
//    -ffp-contract=fast` codegen produced before this layer existed, which
//    is what the checked-in telemetry golden records;
//  * elementwise maps (add/sub/mul/div/scale) are exact per lane — IEEE
//    addps/mulps/divps round identically to their scalar forms;
//  * RowMax is a max reduction: max is exact, so any association gives the
//    same value for finite inputs (for rows mixing +0.0f/-0.0f the sign of
//    the max may differ between paths, which is invisible downstream
//    because `x - mx` and `exp` erase it; NaN inputs are already rejected
//    by the numeric-health guard).
//
// Dispatch: MSGCL_SIMD=auto|avx2|scalar env var at first use; SetIsa()
// overrides at any time (tests and the micro-benchmarks flip it to compare
// paths). Kernels never touch the dispatch state themselves, so a given op
// call uses one ISA end to end.
#ifndef MSGCL_TENSOR_KERNELS_H_
#define MSGCL_TENSOR_KERNELS_H_

#include <cstdint>

namespace msgcl {
namespace simd {

/// Instruction-set target for the kernel layer.
enum class Isa { kScalar = 0, kAvx2 = 1 };

/// True when the AVX2+FMA path is compiled in AND the CPU supports it.
bool Avx2Supported();

/// Currently selected path. First call reads MSGCL_SIMD (auto|avx2|scalar;
/// auto picks AVX2 when supported), later calls return the cached choice.
Isa ActiveIsa();

/// Overrides the dispatch target (clamped to supported ISAs — requesting
/// kAvx2 on a machine without it selects kScalar). Returns what was chosen.
Isa SetIsa(Isa isa);

/// "scalar" / "avx2".
const char* IsaName(Isa isa);

// ---- Elementwise maps (exact per lane in any ISA) -------------------------

/// y[i] = a[i] + b[i]
void AddVec(float* y, const float* a, const float* b, int64_t n);
/// y[i] = a[i] - b[i]
void SubVec(float* y, const float* a, const float* b, int64_t n);
/// y[i] = a[i] * b[i]
void MulVec(float* y, const float* a, const float* b, int64_t n);
/// y[i] = a[i] / b[i]
void DivVec(float* y, const float* a, const float* b, int64_t n);
/// y[i] = x[i] * s
void ScaleVec(float* y, const float* x, float s, int64_t n);
/// y[i] = x[i] + s
void AddScalarVec(float* y, const float* x, float s, int64_t n);

// ---- Accumulations (fma where a product feeds the sum) --------------------

/// y[i] += x[i]
void AccumVec(float* y, const float* x, int64_t n);
/// y[i] = fma(x[i], s, y[i])
void AxpyVec(float* y, const float* x, float s, int64_t n);
/// y[i] = fma(a[i], b[i], y[i])
void MulAccumVec(float* y, const float* a, const float* b, int64_t n);
/// y[i] = fma(g[i] / b[i] is NOT what this does — see ops.cc Div backward:
/// y[i] = fma(1.0f / b[i], g[i], y[i])   (da of Div)
void RecipMulAccumVec(float* y, const float* b, const float* g, int64_t n);
/// y[i] = fma(-a[i] / (b[i] * b[i]), g[i], y[i])   (db of Div)
void DivGradBVec(float* y, const float* a, const float* b, const float* g,
                 int64_t n);

// ---- Row kernels ----------------------------------------------------------

/// max over x[0..n); n >= 1. Exact for finite inputs in any ISA.
float RowMax(const float* x, int64_t n);

/// Softmax backward row update: y[i] = fma(p[i], g[i] - dot, y[i]).
void SoftmaxBwdVec(float* y, const float* p, const float* g, float dot,
                   int64_t n);

/// LayerNorm forward row tail: xhat[i] = (x[i] - mu) * inv_std;
/// out[i] = fma(gamma[i], xhat[i], beta[i]).
void LayerNormRowVec(float* out, float* xhat, const float* x,
                     const float* gamma, const float* beta, float mu,
                     float inv_std, int64_t n);

// ---- Contraction tiles ----------------------------------------------------

/// The shared matmul / fused-top-k inner tile:
///   for p in [p0, p1) ascending:  c[j] = fma(a[p], b[p * n + j], c[j])
/// Per output element j the p-accumulation order is globally ascending, so
/// tiling p outside this call keeps results bitwise identical to the naive
/// i-p-j loop. Both MatMulRowsKernel (ops.cc) and SasBackbone::ScoreTopKFused
/// route through this ONE function, which is what keeps the fused serving
/// path bit-identical to the LogitsAll reference under every ISA.
void MatMulTile(float* c, const float* a, const float* b, int64_t p0,
                int64_t p1, int64_t n);

/// Serial-order dot product: acc = fma(a[i], b[i], acc) ascending, float
/// accumulator. A serial dependence chain cannot be vectorized without
/// reassociating, so BOTH paths run the same scalar chain — it lives here so
/// every contraction in the rewired ops flows through the kernel layer.
float Dot(const float* a, const float* b, int64_t n);

// ---- Implementation namespaces (kernels_scalar.cc / kernels_avx2.cc) ------

namespace scalar {
void AddVec(float* y, const float* a, const float* b, int64_t n);
void SubVec(float* y, const float* a, const float* b, int64_t n);
void MulVec(float* y, const float* a, const float* b, int64_t n);
void DivVec(float* y, const float* a, const float* b, int64_t n);
void ScaleVec(float* y, const float* x, float s, int64_t n);
void AddScalarVec(float* y, const float* x, float s, int64_t n);
void AccumVec(float* y, const float* x, int64_t n);
void AxpyVec(float* y, const float* x, float s, int64_t n);
void MulAccumVec(float* y, const float* a, const float* b, int64_t n);
void RecipMulAccumVec(float* y, const float* b, const float* g, int64_t n);
void DivGradBVec(float* y, const float* a, const float* b, const float* g,
                 int64_t n);
float RowMax(const float* x, int64_t n);
void SoftmaxBwdVec(float* y, const float* p, const float* g, float dot,
                   int64_t n);
void LayerNormRowVec(float* out, float* xhat, const float* x,
                     const float* gamma, const float* beta, float mu,
                     float inv_std, int64_t n);
void MatMulTile(float* c, const float* a, const float* b, int64_t p0,
                int64_t p1, int64_t n);
float Dot(const float* a, const float* b, int64_t n);
}  // namespace scalar

namespace avx2 {
// Present only when the build can target AVX2 (x86-64 GCC/Clang); callers
// must gate on Avx2Supported(). Declarations are unconditional so the
// dispatchers compile everywhere; definitions are stubbed out to abort on
// non-x86 builds.
void AddVec(float* y, const float* a, const float* b, int64_t n);
void SubVec(float* y, const float* a, const float* b, int64_t n);
void MulVec(float* y, const float* a, const float* b, int64_t n);
void DivVec(float* y, const float* a, const float* b, int64_t n);
void ScaleVec(float* y, const float* x, float s, int64_t n);
void AddScalarVec(float* y, const float* x, float s, int64_t n);
void AccumVec(float* y, const float* x, int64_t n);
void AxpyVec(float* y, const float* x, float s, int64_t n);
void MulAccumVec(float* y, const float* a, const float* b, int64_t n);
void RecipMulAccumVec(float* y, const float* b, const float* g, int64_t n);
void DivGradBVec(float* y, const float* a, const float* b, const float* g,
                 int64_t n);
float RowMax(const float* x, int64_t n);
void SoftmaxBwdVec(float* y, const float* p, const float* g, float dot,
                   int64_t n);
void LayerNormRowVec(float* out, float* xhat, const float* x,
                     const float* gamma, const float* beta, float mu,
                     float inv_std, int64_t n);
void MatMulTile(float* c, const float* a, const float* b, int64_t p0,
                int64_t p1, int64_t n);
float Dot(const float* a, const float* b, int64_t n);
bool Compiled();  // true when this TU was built with real AVX2 bodies
}  // namespace avx2

}  // namespace simd
}  // namespace msgcl

#endif  // MSGCL_TENSOR_KERNELS_H_
