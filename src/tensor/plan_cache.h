// Shape-keyed kernel-plan cache (DESIGN.md §13).
//
// Training and serving run the same op shapes every step, but each op call
// used to redo its setup from scratch: broadcast-shape resolution and stride
// tables, permute stride tables, shard-grain arithmetic. This is the
// program-cache idiom: the first call with a given (op, shapes) key builds
// an immutable Plan and caches it; every later call fetches it under a
// mutex and skips straight to the kernel.
//
// Plans are `shared_ptr<const Plan>` — backward closures capture the same
// plan the forward used, and a cache Clear() never invalidates a plan
// somebody still holds. Caches are bounded (kMaxEntries, clear-on-overflow:
// shape churn beyond the bound degrades to miss-per-call, never unbounded
// memory). MSGCL_PLAN_CACHE=0 disables caching entirely (every call builds
// a fresh plan) — plans only describe HOW to run, never WHAT is computed,
// so this knob is a determinism bisection aid.
//
// Metrics (obs): tensor.plan_cache.hits / .misses / .evictions counters and
// the tensor.plan_cache.entries gauge (total across all plan caches).
#ifndef MSGCL_TENSOR_PLAN_CACHE_H_
#define MSGCL_TENSOR_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace msgcl {
namespace plans {

namespace detail {

inline obs::Counter& HitCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("tensor.plan_cache.hits");
  return c;
}
inline obs::Counter& MissCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("tensor.plan_cache.misses");
  return c;
}
inline obs::Counter& EvictionCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("tensor.plan_cache.evictions");
  return c;
}
inline obs::Gauge& EntriesGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("tensor.plan_cache.entries");
  return g;
}

/// Total live entries across every PlanCache instance (mirrored into the
/// entries gauge).
inline std::atomic<int64_t>& GlobalEntries() {
  static std::atomic<int64_t> n{0};
  return n;
}

struct KeyHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    // FNV-1a over the key words.
    uint64_t h = 1469598103934665603ull;
    for (int64_t v : key) {
      uint64_t u = static_cast<uint64_t>(v);
      for (int b = 0; b < 8; ++b) {
        h ^= (u >> (b * 8)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace detail

/// False when MSGCL_PLAN_CACHE is "0" or "off" (read once).
inline bool Enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("MSGCL_PLAN_CACHE");
    return env == nullptr ||
           (std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0);
  }();
  return enabled;
}

/// One shape-keyed cache of immutable plans. Keys are flat int64 vectors
/// encoding whatever identifies the plan (shapes, flags, thread count);
/// the caller owns the encoding, the cache owns lookup, bounding and
/// metrics. Thread-safe.
template <typename Plan>
class PlanCache {
 public:
  using Key = std::vector<int64_t>;
  static constexpr size_t kMaxEntries = 4096;

  /// Returns the cached plan for `key`, building it with `make()` on miss.
  template <typename Make>
  std::shared_ptr<const Plan> GetOrCreate(Key key, Make&& make) {
    if (!Enabled()) {
      detail::MissCounter().Add(1);
      return std::make_shared<const Plan>(make());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        detail::HitCounter().Add(1);
        return it->second;
      }
    }
    // Build outside the lock: plan construction can be arbitrarily heavy
    // and is pure. A racing builder for the same key just loses its copy.
    detail::MissCounter().Add(1);
    auto plan = std::make_shared<const Plan>(make());
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.size() >= kMaxEntries) {
      detail::EvictionCounter().Add(static_cast<int64_t>(map_.size()));
      detail::GlobalEntries().fetch_sub(static_cast<int64_t>(map_.size()),
                                        std::memory_order_relaxed);
      map_.clear();
    }
    auto [it, inserted] = map_.emplace(std::move(key), plan);
    if (inserted) {
      detail::EntriesGauge().Set(static_cast<double>(
          detail::GlobalEntries().fetch_add(1, std::memory_order_relaxed) +
          1));
    }
    return it->second;
  }

  /// Drops every entry (outstanding shared_ptrs stay valid).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    detail::GlobalEntries().fetch_sub(static_cast<int64_t>(map_.size()),
                                      std::memory_order_relaxed);
    map_.clear();
    detail::EntriesGauge().Set(static_cast<double>(
        detail::GlobalEntries().load(std::memory_order_relaxed)));
  }

  size_t size() {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const Plan>, detail::KeyHash> map_;
};

}  // namespace plans
}  // namespace msgcl

#endif  // MSGCL_TENSOR_PLAN_CACHE_H_
