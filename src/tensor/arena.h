// Bump/arena allocation for tensor storage (DESIGN.md §13).
//
// Training, evaluation and serving all allocate the same per-step temporary
// tensors over and over. `Arena` is a slab bump allocator: a step runs
// inside an `ArenaScope`, every tensor buffer created on that thread bump-
// allocates out of the arena, and `Reset()` at the end of the step makes the
// memory reusable in O(1) — the steady state does zero malloc/free in the
// hot loops.
//
// Safety model — escaping buffers stay valid:
//   Every allocation carries a 64-byte header recording its owner. Heap
//   blocks (owner = null) free individually. Arena blocks point at their
//   `Epoch`, a refcounted slab group: the arena holds one reference, each
//   live allocation holds one. `Reset()` with live allocations RETIRES the
//   epoch — the slabs survive until the last escapee frees — and starts a
//   fresh one, so code that keeps a tensor past the scope (checkpoints,
//   captures, caches) is memory-safe, it merely costs the retired bytes
//   until those tensors die. The `tensor.arena.retired_bytes` gauge makes
//   that cost visible; keeping it at zero is the wiring rule: run the FIRST
//   batch of a loop on the heap so lazily-created persistent buffers
//   (e.g. parameter grads) never land in the arena.
//
// Threading: an Arena is single-owner — only the thread inside its
// ArenaScope may Allocate/Reset. Freeing is safe from ANY thread at any
// time (header + atomic refcount only). The current arena is thread-local,
// so concurrent serve workers each scope their own arena.
//
// Determinism: placement never changes values — arena-vs-heap outputs are
// bitwise identical (covered by tests/kernels_test.cc).
#ifndef MSGCL_TENSOR_ARENA_H_
#define MSGCL_TENSOR_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace msgcl {
namespace arena {

namespace detail {

struct Slab {
  char* base = nullptr;
  size_t cap = 0;
};

/// Refcounted slab group. The owning Arena holds one reference; every live
/// allocation holds one. Slabs are mutated only by the owning Arena while
/// it holds the epoch; after retirement the group is immutable until the
/// last reference frees it.
struct Epoch {
  std::atomic<int64_t> refs{1};
  std::vector<Slab> slabs;
  size_t reserved = 0;    // sum of slab caps
  bool retired = false;   // set (by the owner, pre-release) when abandoned
};

}  // namespace detail

/// Slab bump allocator for tensor buffers. See file comment for the model.
class Arena {
 public:
  static constexpr size_t kAlign = 64;
  static constexpr size_t kDefaultSlabBytes = size_t{1} << 20;  // 1 MiB

  explicit Arena(size_t slab_bytes = kDefaultSlabBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 64-byte-aligned payload of `bytes` bytes, owner-tagged. Owner thread
  /// only.
  void* Allocate(size_t bytes);

  /// Makes all arena memory reusable. If every allocation has been freed the
  /// slabs are rewound in place (no malloc); otherwise the current epoch is
  /// retired (slabs freed when the last escapee dies) and a fresh one
  /// starts. Owner thread only.
  void Reset();

  /// Sum of slab capacities currently owned (excludes retired epochs).
  size_t bytes_reserved() const { return epoch_->reserved; }
  /// Bytes bump-allocated since the last Reset (header + padding included).
  size_t bytes_used() const { return bytes_used_; }
  /// Allocations minus frees against the CURRENT epoch.
  int64_t live() const {
    return epoch_->refs.load(std::memory_order_relaxed) - 1;
  }

  /// Process-wide bytes pinned in retired epochs by escaped allocations.
  static size_t RetiredBytes();

 private:
  void* AllocateSlow(size_t total);

  detail::Epoch* epoch_;
  size_t slab_bytes_;
  size_t active_ = 0;      // index into epoch_->slabs
  size_t offset_ = 0;      // bump offset within the active slab
  size_t bytes_used_ = 0;  // since last Reset
};

/// Allocation entry points used by BufAllocator: route to the thread's
/// current arena (or the heap when none is in scope). BufFree accepts any
/// pointer BufAlloc returned, from any thread.
void* BufAlloc(size_t bytes);
void BufFree(void* p) noexcept;

/// Scopes the thread's current arena for RAII; nestable. `ArenaScope(nullptr)`
/// (or ArenaExempt) suspends arena allocation inside an outer scope.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* a);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// The thread's current arena, or nullptr (heap).
  static Arena* Current();

 private:
  Arena* prev_;
};

/// Forces heap allocation for its lifetime — for code inside an arena scope
/// that creates buffers meant to outlive the step (captures, snapshots).
class ArenaExempt {
 public:
  ArenaExempt() : scope_(nullptr) {}

 private:
  ArenaScope scope_;
};

}  // namespace arena

/// Tensor storage buffer: a float vector whose memory comes from the
/// thread's current arena when one is in scope, else the heap. All
/// BufAllocator instances compare equal (the block header knows its owner),
/// so buffers move freely between containers.
template <typename T>
struct BufAllocator {
  using value_type = T;
  BufAllocator() = default;
  template <typename U>
  BufAllocator(const BufAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(arena::BufAlloc(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) noexcept { arena::BufFree(p); }

  friend bool operator==(const BufAllocator&, const BufAllocator&) {
    return true;
  }
  friend bool operator!=(const BufAllocator&, const BufAllocator&) {
    return false;
  }
};

using FloatBuf = std::vector<float, BufAllocator<float>>;

}  // namespace msgcl

#endif  // MSGCL_TENSOR_ARENA_H_
