// A small dense float32 tensor library with reverse-mode automatic
// differentiation — the numerics substrate for the Meta-SGCL reproduction.
//
// Design:
//  * `Tensor` is a cheap shared handle onto a `TensorImpl` node. Operations
//    build a define-by-run graph; `backward()` runs a topological sweep and
//    accumulates gradients into every node with `requires_grad()`.
//  * Data is row-major contiguous float32. Shapes are dynamic
//    (`std::vector<int64_t>`). Integer index inputs (item ids) are plain
//    `std::vector<int32_t>` passed alongside a shape, not tensors.
//  * Binary elementwise ops broadcast NumPy-style. `matmul` contracts the
//    last two dims and broadcasts leading batch dims (either side may also
//    be rank-2, shared across the batch).
//  * Gradient recording can be suspended with `NoGradGuard` for inference.
//
// All shape violations abort via MSGCL_CHECK — they are programmer errors.
#ifndef MSGCL_TENSOR_TENSOR_H_
#define MSGCL_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/arena.h"
#include "tensor/macros.h"
#include "tensor/rng.h"

namespace msgcl {

/// Dynamic tensor shape, row-major.
using Shape = std::vector<int64_t>;

/// Number of elements in a shape.
int64_t NumElements(const Shape& shape);

/// Human-readable "[2, 3, 4]" rendering of a shape.
std::string ShapeToString(const Shape& shape);

class Tensor;

namespace detail {

/// Graph node: storage, gradient buffer and backward closure. Buffers are
/// FloatBuf: inside an arena::ArenaScope they bump-allocate from the scoped
/// arena (per-step temporaries cost no malloc), outside they use the heap.
struct TensorImpl {
  Shape shape;
  FloatBuf data;
  FloatBuf grad;  // allocated lazily, same size as data
  bool requires_grad = false;

  // Autograd bookkeeping. `backward_fn` reads this node's grad and
  // accumulates into the parents' grads. Empty for leaves.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;

  int64_t numel() const { return static_cast<int64_t>(data.size()); }
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace detail

/// Suspends gradient recording for its lifetime (thread-local).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when gradients are currently being recorded.
  static bool GradEnabled();

 private:
  bool prev_;
};

/// Shared handle onto a tensor graph node. Copying is O(1) and aliases.
class Tensor {
 public:
  /// Null tensor; most operations on it abort. Use factories below.
  Tensor() = default;

  // ---- Factories -----------------------------------------------------

  /// All-zeros tensor of the given shape.
  static Tensor Zeros(Shape shape, bool requires_grad = false);
  /// All-ones tensor of the given shape.
  static Tensor Ones(Shape shape, bool requires_grad = false);
  /// Tensor filled with `value`.
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  /// I.i.d. N(0, stddev^2) entries drawn from `rng`.
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// I.i.d. Uniform[lo, hi) entries drawn from `rng`.
  static Tensor Rand(Shape shape, Rng& rng, float lo, float hi,
                     bool requires_grad = false);
  /// Takes ownership of `values`; NumElements(shape) must match.
  static Tensor FromVector(Shape shape, std::vector<float> values,
                           bool requires_grad = false);

  // ---- Introspection -------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl()->shape; }
  int64_t dim(int i) const;  // negative i counts from the back
  int ndim() const { return static_cast<int>(impl()->shape.size()); }
  int64_t numel() const { return impl()->numel(); }
  bool requires_grad() const { return impl()->requires_grad; }

  /// Mutable raw storage. Writing through this on a graph interior node
  /// invalidates recorded gradients; intended for leaves and tests.
  FloatBuf& data() { return impl()->data; }
  const FloatBuf& data() const { return impl()->data; }
  /// Gradient buffer (empty until backward touches this node).
  const FloatBuf& grad() const { return impl()->grad; }
  FloatBuf& mutable_grad() { impl()->EnsureGrad(); return impl()->grad; }

  /// Plain-vector copy of the storage (interop with snapshot/serialize code
  /// that keeps long-lived std::vector<float> buffers).
  std::vector<float> ToVector() const {
    return std::vector<float>(impl()->data.begin(), impl()->data.end());
  }

  /// Scalar value of a 1-element tensor.
  float item() const;

  /// Flat element accessors.
  float at(int64_t flat_index) const;
  void set(int64_t flat_index, float value);

  // ---- Autograd ------------------------------------------------------

  /// Backpropagates from this node. If the tensor is not a scalar,
  /// `grad_output` must be supplied with matching size.
  void Backward(const std::vector<float>* grad_output = nullptr);

  /// Zeroes this node's gradient buffer.
  void ZeroGrad();

  /// A leaf copy sharing no graph history (same data, detached).
  Tensor Detach() const;

  /// Marks this (leaf) tensor as a trainable parameter.
  void set_requires_grad(bool value) { impl()->requires_grad = value; }

  // ---- Shape ops -----------------------------------------------------

  /// View with a new shape; element count must match. O(numel) copy-free
  /// forward (shares storage is NOT done — data is copied to keep the
  /// implementation simple and the graph acyclic).
  Tensor Reshape(Shape new_shape) const;
  /// Swaps the last two dimensions.
  Tensor TransposeLast2() const;
  /// General permutation of dimensions (copying).
  Tensor Permute(const std::vector<int>& perm) const;
  /// Narrows dimension `dim` to `[start, start+length)`.
  Tensor Narrow(int dim, int64_t start, int64_t length) const;

  /// Concatenates tensors along dimension `dim` (all other dims equal).
  static Tensor Concat(const std::vector<Tensor>& tensors, int dim);

  // ---- Elementwise / reductions (see ops.cc) --------------------------

  Tensor Add(const Tensor& other) const;
  Tensor Sub(const Tensor& other) const;
  Tensor Mul(const Tensor& other) const;
  Tensor Div(const Tensor& other) const;
  Tensor AddScalar(float s) const;
  Tensor MulScalar(float s) const;
  Tensor Neg() const { return MulScalar(-1.0f); }

  Tensor Relu() const;
  Tensor Gelu() const;
  Tensor Tanh() const;
  Tensor Sigmoid() const;
  Tensor Exp() const;
  /// Natural log of max(x, eps) for numerical safety.
  Tensor Log(float eps = 1e-12f) const;
  Tensor Sqrt() const;
  Tensor Square() const;

  /// Sum of all elements -> scalar tensor.
  Tensor Sum() const;
  /// Mean of all elements -> scalar tensor.
  Tensor Mean() const;
  /// Sum over the last dimension (keepdim=false).
  Tensor SumLastDim() const;
  /// Mean over the last dimension (keepdim=false).
  Tensor MeanLastDim() const;
  /// Max over the last dimension (keepdim=false); gradient flows to argmax.
  Tensor MaxLastDim() const;

  /// Softmax over the last dimension.
  Tensor SoftmaxLastDim() const;
  /// Log-softmax over the last dimension (numerically stable).
  Tensor LogSoftmaxLastDim() const;
  /// Rows scaled to unit L2 norm over the last dimension.
  Tensor L2NormalizeLastDim(float eps = 1e-12f) const;

  /// Where mask != 0, replaces the element with `value` (no grad there).
  /// `mask` has NumElements == numel() and is not differentiated through.
  Tensor MaskedFill(const std::vector<uint8_t>& mask, float value) const;

  /// Multiplies by a constant 0/1 mask divided by keep-prob (inverted
  /// dropout); `mask` entries are 1=keep.
  Tensor DropoutMask(const std::vector<uint8_t>& keep, float keep_prob) const;

  // Operator sugar.
  Tensor operator+(const Tensor& o) const { return Add(o); }
  Tensor operator-(const Tensor& o) const { return Sub(o); }
  Tensor operator*(const Tensor& o) const { return Mul(o); }
  Tensor operator/(const Tensor& o) const { return Div(o); }

  /// Matrix product contracting the last two dims; leading batch dims
  /// broadcast (must be equal, or one operand may be rank-2).
  Tensor MatMul(const Tensor& other) const;

  // ---- Implementation access (for op authors) -------------------------
  const std::shared_ptr<detail::TensorImpl>& impl_ptr() const { return impl_; }
  detail::TensorImpl* impl() const {
    MSGCL_CHECK_MSG(impl_ != nullptr, "operation on a null Tensor");
    return impl_.get();
  }

  /// Wraps an impl (op-author API).
  static Tensor FromImpl(std::shared_ptr<detail::TensorImpl> impl);

 private:
  std::shared_ptr<detail::TensorImpl> impl_;
};

// ---- Free-function ops (fused / multi-input; see ops.cc) ----------------

/// Rows of `table` ([num_rows, width]) gathered by `indices`; the result has
/// shape `index_shape + [width]`. Backward scatter-adds into `table`.
/// Gradient to row `padding_idx` is suppressed when `padding_idx >= 0`.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int32_t>& indices,
                       const Shape& index_shape, int32_t padding_idx = -1);

/// Gathers one row per batch element: x is [B, T, D], positions has B entries
/// in [0, T); the result is [B, D].
Tensor GatherTimeStep(const Tensor& x, const std::vector<int32_t>& positions);

/// Layer normalisation over the last dimension with affine gamma/beta
/// (both rank-1 of size = last dim).
Tensor LayerNormLastDim(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                        float eps = 1e-5f);

/// Mean cross-entropy of `logits` ([M, C]) against integer `targets`
/// (size M). Rows whose target equals `ignore_index` contribute nothing.
/// Fused log-softmax + NLL, numerically stable.
Tensor CrossEntropyLogits(const Tensor& logits, const std::vector<int32_t>& targets,
                          int32_t ignore_index = -1);

/// Horizontal convolution for Caser: x is [B, T, D], weight is [F, h, D],
/// bias is [F]; output is [B, T-h+1, F] (valid convolution down the time
/// axis with full-width filters).
Tensor HorizontalConv(const Tensor& x, const Tensor& weight, const Tensor& bias);

}  // namespace msgcl

#endif  // MSGCL_TENSOR_TENSOR_H_
