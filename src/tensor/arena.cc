#include "tensor/arena.h"

#include <algorithm>
#include <new>

#include "obs/registry.h"
#include "tensor/macros.h"

namespace msgcl {
namespace arena {

namespace {

// Every payload is preceded by a kAlign-byte header whose first word is the
// owning Epoch (nullptr = individually-heap-allocated block).
struct BlockHeader {
  detail::Epoch* epoch;
};
static_assert(sizeof(BlockHeader) <= Arena::kAlign, "header must fit");

// Bytes pinned in retired epochs by escaped allocations, process-wide.
// Plain atomic (no obs calls) so epoch teardown is safe at any shutdown
// stage; Arena methods mirror it into the gauge.
std::atomic<size_t> g_retired_bytes{0};

thread_local Arena* g_current_arena = nullptr;

size_t RoundUp(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

void FreeEpoch(detail::Epoch* e) {
  for (auto& s : e->slabs) {
    ::operator delete(s.base, std::align_val_t{Arena::kAlign});
  }
  if (e->retired) {
    g_retired_bytes.fetch_sub(e->reserved, std::memory_order_relaxed);
  }
  delete e;
}

void ReleaseEpochRef(detail::Epoch* e) {
  if (e->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) FreeEpoch(e);
}

obs::Gauge& ReservedGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("tensor.arena.bytes_reserved");
  return g;
}
obs::Gauge& UsedGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("tensor.arena.bytes_used");
  return g;
}
obs::Gauge& RetiredGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("tensor.arena.retired_bytes");
  return g;
}
obs::Counter& ResetCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("tensor.arena.resets");
  return c;
}
obs::Counter& RetireCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("tensor.arena.retired_epochs");
  return c;
}

}  // namespace

Arena::Arena(size_t slab_bytes)
    : epoch_(new detail::Epoch()),
      slab_bytes_(std::max(slab_bytes, size_t{4} * kAlign)) {}

Arena::~Arena() {
  if (g_current_arena == this) g_current_arena = nullptr;
  if (epoch_->refs.load(std::memory_order_acquire) > 1) {
    // Live escapees: the epoch outlives the arena as a retired group.
    epoch_->retired = true;
    g_retired_bytes.fetch_add(epoch_->reserved, std::memory_order_relaxed);
  }
  ReleaseEpochRef(epoch_);
}

void* Arena::Allocate(size_t bytes) {
  const size_t total = RoundUp(kAlign + bytes, kAlign);
  auto& slabs = epoch_->slabs;
  while (active_ < slabs.size() && offset_ + total > slabs[active_].cap) {
    ++active_;
    offset_ = 0;
  }
  if (active_ >= slabs.size()) return AllocateSlow(total);
  char* base = slabs[active_].base + offset_;
  offset_ += total;
  bytes_used_ += total;
  epoch_->refs.fetch_add(1, std::memory_order_relaxed);
  reinterpret_cast<BlockHeader*>(base)->epoch = epoch_;
  return base + kAlign;
}

void* Arena::AllocateSlow(size_t total) {
  const size_t cap = std::max(slab_bytes_, total);
  char* base = static_cast<char*>(
      ::operator new(cap, std::align_val_t{kAlign}));
  epoch_->slabs.push_back({base, cap});
  epoch_->reserved += cap;
  active_ = epoch_->slabs.size() - 1;
  offset_ = total;
  bytes_used_ += total;
  epoch_->refs.fetch_add(1, std::memory_order_relaxed);
  reinterpret_cast<BlockHeader*>(base)->epoch = epoch_;
  ReservedGauge().Set(static_cast<double>(epoch_->reserved));
  return base + kAlign;
}

void Arena::Reset() {
  ResetCounter().Add(1);
  if (epoch_->refs.load(std::memory_order_acquire) == 1) {
    // Nothing escaped: rewind in place, slabs are reused as-is.
    active_ = 0;
    offset_ = 0;
  } else {
    // Escapees hold references into these slabs — retire the whole group
    // (freed when the last escapee dies) and start a fresh epoch.
    RetireCounter().Add(1);
    epoch_->retired = true;
    g_retired_bytes.fetch_add(epoch_->reserved, std::memory_order_relaxed);
    ReleaseEpochRef(epoch_);
    epoch_ = new detail::Epoch();
    active_ = 0;
    offset_ = 0;
  }
  bytes_used_ = 0;
  UsedGauge().Set(0.0);
  ReservedGauge().Set(static_cast<double>(epoch_->reserved));
  RetiredGauge().Set(
      static_cast<double>(g_retired_bytes.load(std::memory_order_relaxed)));
}

size_t Arena::RetiredBytes() {
  return g_retired_bytes.load(std::memory_order_relaxed);
}

void* BufAlloc(size_t bytes) {
  Arena* a = g_current_arena;
  if (a != nullptr) return a->Allocate(bytes);
  char* base = static_cast<char*>(
      ::operator new(Arena::kAlign + bytes, std::align_val_t{Arena::kAlign}));
  reinterpret_cast<BlockHeader*>(base)->epoch = nullptr;
  return base + Arena::kAlign;
}

void BufFree(void* p) noexcept {
  if (p == nullptr) return;
  char* base = static_cast<char*>(p) - Arena::kAlign;
  detail::Epoch* e = reinterpret_cast<BlockHeader*>(base)->epoch;
  if (e == nullptr) {
    ::operator delete(base, std::align_val_t{Arena::kAlign});
    return;
  }
  ReleaseEpochRef(e);
}

ArenaScope::ArenaScope(Arena* a) : prev_(g_current_arena) {
  g_current_arena = a;
}

ArenaScope::~ArenaScope() { g_current_arena = prev_; }

Arena* ArenaScope::Current() { return g_current_arena; }

}  // namespace arena
}  // namespace msgcl
