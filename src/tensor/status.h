// RocksDB-style Status / Result<T> error handling for fallible public APIs.
//
// Library code never throws across the public API boundary; operations that
// can fail for reasons outside the programmer's control (bad configuration
// values, malformed input data) return Status or Result<T>.
#ifndef MSGCL_TENSOR_STATUS_H_
#define MSGCL_TENSOR_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "tensor/macros.h"

namespace msgcl {

/// Outcome of a fallible operation: OK or an error code plus message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kInternal,
    kDeadlineExceeded,
    kUnavailable,
    kResourceExhausted,
    kDataLoss,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(Code::kNotFound, std::move(msg)); }
  static Status OutOfRange(std::string msg) { return Status(Code::kOutOfRange, std::move(msg)); }
  static Status Internal(std::string msg) { return Status(Code::kInternal, std::move(msg)); }
  /// The caller's deadline passed before the operation could run (serving).
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// The service cannot take the request right now (e.g. shut down).
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// A bounded resource (e.g. the serving admission queue) is full; the
  /// caller should back off and retry rather than wait.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// Durable data was lost or is unrecoverable (torn WAL tail, a frame that
  /// fails its CRC, an append that died mid-write). Distinct from
  /// InvalidArgument: the caller's request was fine, the bytes were not.
  static Status DataLoss(std::string msg) { return Status(Code::kDataLoss, std::move(msg)); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case Code::kNotFound: name = "NOT_FOUND"; break;
      case Code::kOutOfRange: name = "OUT_OF_RANGE"; break;
      case Code::kInternal: name = "INTERNAL"; break;
      case Code::kDeadlineExceeded: name = "DEADLINE_EXCEEDED"; break;
      case Code::kUnavailable: name = "UNAVAILABLE"; break;
      case Code::kResourceExhausted: name = "RESOURCE_EXHAUSTED"; break;
      case Code::kDataLoss: name = "DATA_LOSS"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value or an error Status. Access to value() on an error aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}         // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    MSGCL_CHECK_MSG(!status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MSGCL_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return *value_;
  }
  T& value() & {
    MSGCL_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return *value_;
  }
  T&& value() && {
    MSGCL_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace msgcl

#endif  // MSGCL_TENSOR_STATUS_H_
