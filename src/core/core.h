// Umbrella header for the Meta-SGCL core library.
#ifndef MSGCL_CORE_CORE_H_
#define MSGCL_CORE_CORE_H_

#include "core/meta_sgcl.h"          // IWYU pragma: export
#include "core/seq2seq_generator.h"  // IWYU pragma: export
#include "core/tuner.h"              // IWYU pragma: export

#endif  // MSGCL_CORE_CORE_H_
